package blastfunction

// Live-vs-DES consistency: the discrete-event experiments are only valid
// evidence if they agree with the live system where both can run. This
// test executes the same tiny scenario twice — once on the real stack
// (TCP + Device Manager + board with faithful TimeScale=1 sleeps) and once
// on the discrete-event engine — and requires the FPGA time utilizations
// to agree.

import (
	"sync"
	"testing"
	"time"

	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
	"blastfunction/internal/sim"
)

// tickKernelTime is the synthetic kernel duration: long enough that RPC
// overhead (~100us) is noise, short enough for a fast test.
const tickKernelTime = 5 * time.Millisecond

const (
	consistencyTenants = 2
	consistencyRate    = 20.0 // rq/s per tenant
	consistencyRun     = 2 * time.Second
)

func tickCatalog() *fpga.Catalog {
	return fpga.NewCatalog(&fpga.Bitstream{
		ID:          "tick",
		Accelerator: "tick",
		Kernels: []fpga.KernelSpec{{
			Name:    "tick",
			NumArgs: 0,
			Model:   func([]ocl.Arg, []int) time.Duration { return tickKernelTime },
		}},
	})
}

// runLive drives the real stack and returns the measured utilization.
func runLive(t *testing.T) float64 {
	t.Helper()
	cfg := fpga.DE5aNet(model.WorkerNode())
	cfg.TimeScale = 1.0 // faithful: modelled time = wall time
	board := fpga.NewBoard(cfg, tickCatalog())
	mgr := manager.New(manager.Config{Node: "live", DeviceID: "tick0"}, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); mgr.Close() }()

	binary := (&fpga.Bitstream{ID: "tick"}).Binary()

	// Setup phase: every tenant connects, builds (the first Build pays the
	// faithful 2s reconfiguration) and creates its queue before the
	// measured window opens.
	type tenantState struct {
		client *remote.Client
		q      ocl.CommandQueue
		k      ocl.Kernel
	}
	tenants := make([]tenantState, consistencyTenants)
	for i := range tenants {
		client, err := remote.Dial(remote.Config{
			ClientName: "live-tenant",
			Managers:   []string{addr},
			Transport:  remote.TransportGRPC,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		ps, _ := client.Platforms()
		devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
		ctx, err := client.CreateContext(devs[:1])
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ctx.CreateProgramWithBinary(devs[0], binary)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Build(""); err != nil {
			t.Fatal(err)
		}
		k, err := prog.CreateKernel("tick")
		if err != nil {
			t.Fatal(err)
		}
		q, err := ctx.CreateCommandQueue(devs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = tenantState{client: client, q: q, k: k}
	}

	// Measured window.
	var wg sync.WaitGroup
	start := time.Now()
	busy0 := board.BusyTime()
	for i := range tenants {
		wg.Add(1)
		go func(ts tenantState) {
			defer wg.Done()
			interval := time.Duration(float64(time.Second) / consistencyRate)
			next := time.Now()
			for time.Since(start) < consistencyRun {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				if _, err := ts.q.EnqueueTask(ts.k, nil); err != nil {
					t.Error(err)
					return
				}
				if err := ts.q.Finish(); err != nil {
					t.Error(err)
					return
				}
			}
		}(tenants[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	busy := board.BusyTime() - busy0
	return busy.Seconds() / elapsed.Seconds()
}

// runDES runs the same scenario on the discrete-event engine.
func runDES(t *testing.T) float64 {
	t.Helper()
	engine := sim.NewEngine()
	server := engine.NewServer()
	interval := time.Duration(float64(time.Second) / consistencyRate)
	for tenant := 0; tenant < consistencyTenants; tenant++ {
		var issue func()
		next := time.Duration(tenant) * time.Millisecond // phase offset
		issue = func() {
			if engine.Now() >= consistencyRun {
				return
			}
			server.Enqueue(tickKernelTime, func(wait, service time.Duration) {
				next += interval
				if next < engine.Now() {
					next = engine.Now()
				}
				engine.At(next, issue)
			})
		}
		engine.At(next, issue)
	}
	engine.Run(consistencyRun)
	return server.BusyTime().Seconds() / consistencyRun.Seconds()
}

func TestLiveMatchesDiscreteEventSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("2s faithful-time run; skipped with -short")
	}
	live := runLive(t)
	des := runDES(t)
	// Expected utilization: 2 tenants x 20 rq/s x 5 ms = 20%.
	if des < 0.18 || des > 0.22 {
		t.Fatalf("DES utilization = %.3f, want ~0.20", des)
	}
	diff := live - des
	if diff < 0 {
		diff = -diff
	}
	// The live run adds real RPC/scheduling noise; agreement within 15%
	// relative validates that the DES models the same system.
	if diff > des*0.15 {
		t.Fatalf("live utilization %.3f vs DES %.3f diverge by more than 15%%", live, des)
	}
	t.Logf("utilization: live %.3f, DES %.3f", live, des)
}
