package blastfunction

// Observability-tax trajectory: what the SLO/exemplar/profiling plane
// costs on the metrics hot path. `make bench-obs` runs this and writes
// BENCH_obs.json at the repo root so the numbers accumulate across
// revisions. The budget that matters: at default sampling almost every
// observation arrives with an empty trace ID, and that path must cost
// within 2% of a plain Observe.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"blastfunction/internal/flightrec"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
	"blastfunction/internal/remote"
)

// obsReport is the BENCH_obs.json schema.
type obsReport struct {
	GeneratedBy string `json:"generated_by"`

	// Per-observation cost of the three histogram paths, ns (best of 5
	// runs over 1000-observation batches).
	ObservePlainNs            float64 `json:"observe_plain_ns"`
	ObserveUnsampledNs        float64 `json:"observe_unsampled_exemplar_ns"`
	ObserveSampledNs          float64 `json:"observe_sampled_exemplar_ns"`
	UnsampledOverheadPct      float64 `json:"unsampled_overhead_pct"`
	RuntimeSampleNs           float64 `json:"runtime_collector_sample_ns"`
	RenderPlainNs             float64 `json:"render_50_histograms_plain_ns"`
	RenderWithExemplarsNs     float64 `json:"render_50_histograms_exemplars_ns"`
	RenderExemplarOverheadPct float64 `json:"render_exemplar_overhead_pct"`

	// Flight-recorder tax. FlightLifecycleNs is the total recorder work
	// one task costs across both processes (the client library's key
	// reservation + batched completion, the manager's key reservation +
	// cache probe + batched completion), measured in isolation where a
	// nanosecond-scale number is reproducible. RecorderOverheadPct — the
	// ≤2% gate — is that work relative to the measured recorder-free 4K
	// round trip. The in-situ on/off pair is recorded alongside as a
	// sanity signal (RoundTripRecorderDeltaPct) but not gated: a 2%
	// budget is ~1µs here, below what back-to-back ~40µs round-trip
	// runs can resolve against machine drift.
	FlightLifecycleNs         float64 `json:"flight_lifecycle_ns"`
	RoundTripRecorderOffNs    float64 `json:"round_trip_4k_recorder_off_ns"`
	RoundTripRecorderOnNs     float64 `json:"round_trip_4k_recorder_on_ns"`
	RoundTripRecorderDeltaPct float64 `json:"round_trip_recorder_delta_pct"`
	RecorderOverheadPct       float64 `json:"recorder_overhead_pct"`
}

// benchWriteReadFlight is the live write->kernel->read round trip with
// the flight recorder toggled on both ends of the path: the Remote
// Library's (Dial creates one unless told not to) and the Device
// Manager's. Mirrors bench_test.go's benchWriteRead otherwise.
func benchWriteReadFlight(b *testing.B, size int, off bool) {
	b.Helper()
	tb, err := NewTestbed(NodeConfig{Name: "bench", NoFlightRecorder: off})
	if err != nil {
		b.Fatal(err)
	}
	client, err := remote.Dial(remote.Config{
		ClientName:       "bench",
		Managers:         []string{tb.Nodes[0].Addr},
		Transport:        remote.TransportGRPC,
		NoFlightRecorder: off,
	})
	if err != nil {
		tb.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		client.Close()
		tb.Close()
	})
	_, q, k, in, out := setupCopy(b, client, size)
	for i, arg := range []any{in, out, int32(size)} {
		if err := k.SetArg(i, arg); err != nil {
			b.Fatal(err)
		}
	}
	payload := bytes.Repeat([]byte{0xAB}, size)
	dst := make([]byte, size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := q.EnqueueTask(k, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
			b.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// minBench runs a benchmark five times and keeps the fastest ns/op —
// minimums are far more stable than means for sub-microsecond paths.
func minBench(f func(b *testing.B)) float64 {
	best := math.MaxFloat64
	for i := 0; i < 5; i++ {
		if v := float64(testing.Benchmark(f).NsPerOp()); v < best {
			best = v
		}
	}
	return best
}

// minBenchPair interleaves two benchmarks (a,b,a,b,...) and keeps each
// one's fastest ns/op. For comparisons whose difference is small against
// machine drift — the flight-recorder round-trip gate — interleaving
// exposes both variants to the same drift phases; running all of one
// then all of the other would attribute the drift to the code change.
func minBenchPair(fa, fb func(b *testing.B)) (float64, float64) {
	bestA, bestB := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < 5; i++ {
		if v := float64(testing.Benchmark(fa).NsPerOp()); v < bestA {
			bestA = v
		}
		if v := float64(testing.Benchmark(fb).NsPerOp()); v < bestB {
			bestB = v
		}
	}
	return bestA, bestB
}

// pairedMinNs compares two loops whose difference is below what even
// benchmark-granularity interleaving can resolve (the 2%-of-30ns
// observe gate is ~0.6ns): it alternates them in back-to-back slices of
// sliceOps iterations — milliseconds, far shorter than machine drift
// phases, so each pair of slices sees the same machine — and keeps each
// side's fastest per-op time over all rounds. The first rounds warm
// caches and are discarded.
func pairedMinNs(sliceOps, rounds int, fa, fb func(n int)) (float64, float64) {
	const warmup = 3
	bestA, bestB := math.MaxFloat64, math.MaxFloat64
	for r := 0; r < warmup+rounds; r++ {
		t0 := time.Now()
		fa(sliceOps)
		da := time.Since(t0)
		t1 := time.Now()
		fb(sliceOps)
		db := time.Since(t1)
		if r < warmup {
			continue
		}
		if v := float64(da.Nanoseconds()) / float64(sliceOps); v < bestA {
			bestA = v
		}
		if v := float64(db.Nanoseconds()) / float64(sliceOps); v < bestB {
			bestB = v
		}
	}
	return bestA, bestB
}

const obsBatch = 1000

// TestBenchObsArtifact measures the observability plane's tax and records
// BENCH_obs.json. Gated behind BF_BENCH_OBS so `go test ./...` stays fast.
func TestBenchObsArtifact(t *testing.T) {
	if os.Getenv("BF_BENCH_OBS") == "" {
		t.Skip("set BF_BENCH_OBS=1 (or run `make bench-obs`) to record the artifact")
	}

	newHist := func() metrics.Histogram {
		return metrics.NewRegistry().Histogram("bf_bench_latency_seconds", "bench",
			metrics.Labels{"tenant": "bench"}, nil)
	}
	// Values sweep the bucket range so every branch of the bucket walk runs.
	vals := make([]float64, obsBatch)
	for i := range vals {
		vals[i] = 0.0001 * float64(1+i%50)
	}

	report := obsReport{GeneratedBy: "make bench-obs"}
	// Plain vs unsampled-exemplar run tightly paired: the gated
	// difference is well under a nanosecond per observation, which only
	// millisecond-scale alternation can attribute correctly when the
	// machine drifts.
	hPlain, hUnsampled := newHist(), newHist()
	plainNs, unsampledNs := pairedMinNs(300, 200,
		func(n int) {
			for i := 0; i < n; i++ {
				for _, v := range vals {
					hPlain.Observe(v)
				}
			}
		},
		func(n int) {
			for i := 0; i < n; i++ {
				for _, v := range vals {
					hUnsampled.ObserveExemplar(v, "") // the default-sampling path: no trace attached
				}
			}
		})
	report.ObservePlainNs = plainNs / obsBatch
	report.ObserveUnsampledNs = unsampledNs / obsBatch
	report.ObserveSampledNs = minBench(func(b *testing.B) {
		h := newHist()
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				h.ObserveExemplar(v, "00000000deadbeef")
			}
		}
	}) / obsBatch
	report.UnsampledOverheadPct = 100 * (report.ObserveUnsampledNs - report.ObservePlainNs) / report.ObservePlainNs

	report.RuntimeSampleNs = minBench(func(b *testing.B) {
		col := obs.NewRuntimeCollector(metrics.NewRegistry(), metrics.Labels{"component": "bench"})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			col.SampleOnce()
		}
	})

	// Scrape-path cost: rendering 50 histogram series, with and without
	// an exemplar pinned in every bucket.
	renderCost := func(exemplars bool) float64 {
		reg := metrics.NewRegistry()
		for i := 0; i < 50; i++ {
			h := reg.Histogram("bf_bench_latency_seconds", "bench",
				metrics.Labels{"tenant": fmt.Sprintf("t%02d", i)}, nil)
			for _, v := range vals[:100] {
				if exemplars {
					h.ObserveExemplar(v, "00000000deadbeef")
				} else {
					h.Observe(v)
				}
			}
		}
		return minBench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(reg.Render()) == 0 {
					b.Fatal("empty render")
				}
			}
		})
	}
	report.RenderPlainNs = renderCost(false)
	report.RenderWithExemplarsNs = renderCost(true)
	report.RenderExemplarOverheadPct = 100 * (report.RenderWithExemplarsNs - report.RenderPlainNs) / report.RenderPlainNs

	// The flight recorder's per-task cost: everything both processes'
	// recorders do for one write->kernel->read round trip, in the exact
	// shape the hot paths use — the client library reserves a key and
	// applies its batched wire-send milestone at the terminal
	// notification; the manager reserves a key, records the session's
	// cache probe, and applies the worker's batched milestones at
	// completion. Runs at the default ring size so steady-state FIFO
	// eviction is included.
	report.FlightLifecycleNs = minBench(func(b *testing.B) {
		cli := flightrec.New(flightrec.Config{Process: "library/bench"})
		mgr := flightrec.New(flightrec.Config{Process: "manager/bench"})
		defer cli.Close()
		defer mgr.Close()
		cliBatch := []flightrec.Event{
			{Kind: flightrec.KindUpload, Dur: time.Microsecond, Detail: "wire-send"},
		}
		mgrBatch := []flightrec.Event{
			{Kind: flightrec.KindEnqueued, Depth: 1, Pos: 1, Detail: "3 ops"},
			{Kind: flightrec.KindScheduled, Dur: time.Millisecond, Detail: "fifo"},
			{Kind: flightrec.KindUpload, Dur: time.Millisecond, Detail: "device-write"},
			{Kind: flightrec.KindExecute, Dur: time.Millisecond, Detail: "3 ops"},
			{Kind: flightrec.KindNotify, Dur: time.Microsecond},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ck := cli.Alloc(0)
			mk := mgr.Alloc(0)
			mgr.Record(mk, flightrec.Event{Kind: flightrec.KindBufferHit})
			mgr.CompleteWith(mk, "bench", mgrBatch, 3*time.Millisecond, false, "")
			cli.CompleteWith(ck, "bench", cliBatch, 4*time.Millisecond, false, "")
		}
	})

	// The same tax in situ: the live 4K gRPC round trip with the flight
	// recorders disabled on both the library and the manager, then with
	// the always-on default — interleaved so machine drift cancels.
	report.RoundTripRecorderOffNs, report.RoundTripRecorderOnNs = minBenchPair(
		func(b *testing.B) { benchWriteReadFlight(b, 4<<10, true) },
		func(b *testing.B) { benchWriteReadFlight(b, 4<<10, false) },
	)
	report.RoundTripRecorderDeltaPct = 100 * (report.RoundTripRecorderOnNs - report.RoundTripRecorderOffNs) / report.RoundTripRecorderOffNs
	// The gated number: the recorder's measured per-task work against the
	// measured recorder-free round trip.
	report.RecorderOverheadPct = 100 * report.FlightLifecycleNs / report.RoundTripRecorderOffNs

	t.Logf("observe: plain=%.1fns unsampled-exemplar=%.1fns (%.2f%%) sampled=%.1fns",
		report.ObservePlainNs, report.ObserveUnsampledNs, report.UnsampledOverheadPct, report.ObserveSampledNs)
	t.Logf("runtime collector sample: %.0fns", report.RuntimeSampleNs)
	t.Logf("render 50 histograms: plain=%.0fns exemplars=%.0fns (%.1f%%)",
		report.RenderPlainNs, report.RenderWithExemplarsNs, report.RenderExemplarOverheadPct)
	t.Logf("flight recorder: lifecycle=%.0fns (%.2f%% of round trip) in-situ off=%.0fns on=%.0fns (delta %.2f%%)",
		report.FlightLifecycleNs, report.RecorderOverheadPct,
		report.RoundTripRecorderOffNs, report.RoundTripRecorderOnNs, report.RoundTripRecorderDeltaPct)

	// Quality bar: the unsampled observation path — what every request
	// pays at default sampling — must stay within 2% of a plain Observe.
	if report.UnsampledOverheadPct > 2 {
		t.Fatalf("unsampled exemplar path costs %.2f%% over plain Observe, budget 2%%",
			report.UnsampledOverheadPct)
	}
	// And the always-on flight recorder's per-task work must stay within
	// 2% of the recorder-free round trip — it has no sampling knob to
	// hide behind.
	if report.RecorderOverheadPct > 2 {
		t.Fatalf("flight recorder work is %.2f%% of the 4K round trip, budget 2%%",
			report.RecorderOverheadPct)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_obs.json")
}
