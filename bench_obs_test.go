package blastfunction

// Observability-tax trajectory: what the SLO/exemplar/profiling plane
// costs on the metrics hot path. `make bench-obs` runs this and writes
// BENCH_obs.json at the repo root so the numbers accumulate across
// revisions. The budget that matters: at default sampling almost every
// observation arrives with an empty trace ID, and that path must cost
// within 2% of a plain Observe.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
)

// obsReport is the BENCH_obs.json schema.
type obsReport struct {
	GeneratedBy string `json:"generated_by"`

	// Per-observation cost of the three histogram paths, ns (best of 5
	// runs over 1000-observation batches).
	ObservePlainNs            float64 `json:"observe_plain_ns"`
	ObserveUnsampledNs        float64 `json:"observe_unsampled_exemplar_ns"`
	ObserveSampledNs          float64 `json:"observe_sampled_exemplar_ns"`
	UnsampledOverheadPct      float64 `json:"unsampled_overhead_pct"`
	RuntimeSampleNs           float64 `json:"runtime_collector_sample_ns"`
	RenderPlainNs             float64 `json:"render_50_histograms_plain_ns"`
	RenderWithExemplarsNs     float64 `json:"render_50_histograms_exemplars_ns"`
	RenderExemplarOverheadPct float64 `json:"render_exemplar_overhead_pct"`
}

// minBench runs a benchmark five times and keeps the fastest ns/op —
// minimums are far more stable than means for sub-microsecond paths.
func minBench(f func(b *testing.B)) float64 {
	best := math.MaxFloat64
	for i := 0; i < 5; i++ {
		if v := float64(testing.Benchmark(f).NsPerOp()); v < best {
			best = v
		}
	}
	return best
}

const obsBatch = 1000

// TestBenchObsArtifact measures the observability plane's tax and records
// BENCH_obs.json. Gated behind BF_BENCH_OBS so `go test ./...` stays fast.
func TestBenchObsArtifact(t *testing.T) {
	if os.Getenv("BF_BENCH_OBS") == "" {
		t.Skip("set BF_BENCH_OBS=1 (or run `make bench-obs`) to record the artifact")
	}

	newHist := func() metrics.Histogram {
		return metrics.NewRegistry().Histogram("bf_bench_latency_seconds", "bench",
			metrics.Labels{"tenant": "bench"}, nil)
	}
	// Values sweep the bucket range so every branch of the bucket walk runs.
	vals := make([]float64, obsBatch)
	for i := range vals {
		vals[i] = 0.0001 * float64(1+i%50)
	}

	report := obsReport{GeneratedBy: "make bench-obs"}
	report.ObservePlainNs = minBench(func(b *testing.B) {
		h := newHist()
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				h.Observe(v)
			}
		}
	}) / obsBatch
	report.ObserveUnsampledNs = minBench(func(b *testing.B) {
		h := newHist()
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				h.ObserveExemplar(v, "") // the default-sampling path: no trace attached
			}
		}
	}) / obsBatch
	report.ObserveSampledNs = minBench(func(b *testing.B) {
		h := newHist()
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				h.ObserveExemplar(v, "00000000deadbeef")
			}
		}
	}) / obsBatch
	report.UnsampledOverheadPct = 100 * (report.ObserveUnsampledNs - report.ObservePlainNs) / report.ObservePlainNs

	report.RuntimeSampleNs = minBench(func(b *testing.B) {
		col := obs.NewRuntimeCollector(metrics.NewRegistry(), metrics.Labels{"component": "bench"})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			col.SampleOnce()
		}
	})

	// Scrape-path cost: rendering 50 histogram series, with and without
	// an exemplar pinned in every bucket.
	renderCost := func(exemplars bool) float64 {
		reg := metrics.NewRegistry()
		for i := 0; i < 50; i++ {
			h := reg.Histogram("bf_bench_latency_seconds", "bench",
				metrics.Labels{"tenant": fmt.Sprintf("t%02d", i)}, nil)
			for _, v := range vals[:100] {
				if exemplars {
					h.ObserveExemplar(v, "00000000deadbeef")
				} else {
					h.Observe(v)
				}
			}
		}
		return minBench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(reg.Render()) == 0 {
					b.Fatal("empty render")
				}
			}
		})
	}
	report.RenderPlainNs = renderCost(false)
	report.RenderWithExemplarsNs = renderCost(true)
	report.RenderExemplarOverheadPct = 100 * (report.RenderWithExemplarsNs - report.RenderPlainNs) / report.RenderPlainNs

	t.Logf("observe: plain=%.1fns unsampled-exemplar=%.1fns (%.2f%%) sampled=%.1fns",
		report.ObservePlainNs, report.ObserveUnsampledNs, report.UnsampledOverheadPct, report.ObserveSampledNs)
	t.Logf("runtime collector sample: %.0fns", report.RuntimeSampleNs)
	t.Logf("render 50 histograms: plain=%.0fns exemplars=%.0fns (%.1f%%)",
		report.RenderPlainNs, report.RenderWithExemplarsNs, report.RenderExemplarOverheadPct)

	// Quality bar: the unsampled observation path — what every request
	// pays at default sampling — must stay within 2% of a plain Observe.
	if report.UnsampledOverheadPct > 2 {
		t.Fatalf("unsampled exemplar path costs %.2f%% over plain Observe, budget 2%%",
			report.UnsampledOverheadPct)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_obs.json")
}
