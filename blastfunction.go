// Package blastfunction is the public façade of the BlastFunction
// reproduction: an FPGA-as-a-Service system that time-shares (simulated)
// FPGA boards between serverless functions and microservices, after
// "BlastFunction: an FPGA-as-a-Service system for Accelerated Serverless
// Computing" (Bacis, Brondolin, Santambrogio — DATE 2020).
//
// The package offers an in-process testbed that wires simulated boards,
// Device Managers and RPC servers together, which is what the runnable
// examples and most integration tests build on. Production-style
// deployments run the pieces as separate processes via cmd/devicemanager,
// cmd/registry and cmd/gateway instead.
package blastfunction

import (
	"errors"
	"fmt"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
)

// NodeConfig describes one simulated node of a Testbed.
type NodeConfig struct {
	// Name is the node name ("A", "B", ...).
	Name string
	// Master selects the master-node cost model (PCIe Gen2, slower host)
	// instead of the worker model.
	Master bool
	// TimeScale converts modelled hardware time into real sleeps; 0
	// disables sleeping (fast functional runs), 1.0 is faithful.
	TimeScale float64
	// Log, when non-nil, receives the node's Device Manager structured
	// events (nil keeps the manager silent at zero cost).
	Log *logx.Logger
	// Memoize enables kernel-result memoization on the node's Device
	// Manager (the content-addressed buffer cache is on regardless).
	Memoize bool
	// NoFlightRecorder disables the manager's always-on task flight
	// recorder — benchmark baselines only.
	NoFlightRecorder bool
}

// Node is one running node of a Testbed: a simulated DE5a-Net board, its
// Device Manager, and the manager's RPC endpoint.
type Node struct {
	Name    string
	Addr    string
	Manager *manager.Manager
	Board   *fpga.Board

	server *rpc.Server
}

// Testbed is an in-process BlastFunction deployment.
type Testbed struct {
	Nodes []*Node
}

// NewTestbed starts one board + Device Manager per node configuration,
// each serving RPC on a loopback port.
func NewTestbed(nodes ...NodeConfig) (*Testbed, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("blastfunction: testbed needs at least one node")
	}
	tb := &Testbed{}
	for i, nc := range nodes {
		if nc.Name == "" {
			nc.Name = fmt.Sprintf("node-%d", i)
		}
		cost := model.WorkerNode()
		if nc.Master {
			cost = model.MasterNode()
		}
		cfg := fpga.DE5aNet(cost)
		cfg.TimeScale = nc.TimeScale
		board := fpga.NewBoard(cfg, accel.Catalog())
		mgr := manager.New(manager.Config{
			Node:             nc.Name,
			DeviceID:         "fpga-" + nc.Name,
			Log:              nc.Log,
			MemoizeKernels:   nc.Memoize,
			NoFlightRecorder: nc.NoFlightRecorder,
		}, board)
		srv := rpc.NewServer(mgr)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			tb.Close()
			return nil, fmt.Errorf("blastfunction: node %s: %w", nc.Name, err)
		}
		tb.Nodes = append(tb.Nodes, &Node{
			Name:    nc.Name,
			Addr:    addr,
			Manager: mgr,
			Board:   board,
			server:  srv,
		})
	}
	return tb, nil
}

// Addrs lists every node's Device Manager RPC address.
func (tb *Testbed) Addrs() []string {
	addrs := make([]string, len(tb.Nodes))
	for i, n := range tb.Nodes {
		addrs[i] = n.Addr
	}
	return addrs
}

// Client opens a Remote OpenCL Library client named name, connected to the
// given nodes (all of them when none specified). Transport follows the
// paper's policy: shared memory when possible, RPC otherwise.
func (tb *Testbed) Client(name string, nodeNames ...string) (*remote.Client, error) {
	var addrs []string
	if len(nodeNames) == 0 {
		addrs = tb.Addrs()
	} else {
		for _, want := range nodeNames {
			found := false
			for _, n := range tb.Nodes {
				if n.Name == want {
					addrs = append(addrs, n.Addr)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("blastfunction: unknown node %q", want)
			}
		}
	}
	return remote.Dial(remote.Config{
		ClientName: name,
		Managers:   addrs,
		Transport:  remote.TransportAuto,
	})
}

// Close tears the testbed down.
func (tb *Testbed) Close() error {
	var errs []error
	for _, n := range tb.Nodes {
		if n.server != nil {
			errs = append(errs, n.server.Close())
		}
		if n.Manager != nil {
			n.Manager.Close()
		}
	}
	return errors.Join(errs...)
}
