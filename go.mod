module blastfunction

go 1.22
