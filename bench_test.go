package blastfunction

// Benchmark harness: one benchmark per paper figure/table plus the
// micro-benchmarks and ablation studies DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks report the paper-comparable quantities as
// custom metrics (ms of RTT, rq/s processed, utilization %) in addition
// to the usual ns/op of generating them.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/apps"
	"blastfunction/internal/bench"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/model"
	"blastfunction/internal/native"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/registry"
	"blastfunction/internal/remote"
	"blastfunction/internal/shm"
	"blastfunction/internal/sim"
	"blastfunction/internal/simcluster"
	"blastfunction/internal/wire"
)

// --- Paper figures (overhead study) ---

func benchFigure(b *testing.B, build func() *bench.Figure) {
	b.Helper()
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		fig = build()
	}
	last := fig.Points[len(fig.Points)-1]
	b.ReportMetric(float64(last.Native.Microseconds())/1000, "native_ms")
	b.ReportMetric(float64(last.GRPC.Microseconds())/1000, "grpc_ms")
	b.ReportMetric(float64(last.Shm.Microseconds())/1000, "shm_ms")
}

func BenchmarkFig4aRW(b *testing.B)    { benchFigure(b, bench.Fig4a) }
func BenchmarkFig4bSobel(b *testing.B) { benchFigure(b, bench.Fig4b) }
func BenchmarkFig4cMM(b *testing.B)    { benchFigure(b, bench.Fig4c) }

// --- Paper tables (utilization studies on the DES) ---

func benchStudy(b *testing.B, uc simcluster.UseCase) {
	b.Helper()
	var study *bench.UtilizationStudy
	for i := 0; i < b.N; i++ {
		var err error
		study, err = bench.RunStudy(uc)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the high-load BlastFunction vs Native aggregates.
	for _, run := range study.Runs {
		if run.Level != simcluster.HighLoad {
			continue
		}
		prefix := "bf"
		if run.System == "Native" {
			prefix = "native"
		}
		b.ReportMetric(run.Result.Processed, prefix+"_rqps")
		b.ReportMetric(run.Result.TotalUtilization*100, prefix+"_util_pct")
	}
}

func BenchmarkTable2Sobel(b *testing.B)   { benchStudy(b, simcluster.UseSobel) }
func BenchmarkTable3MM(b *testing.B)      { benchStudy(b, simcluster.UseMM) }
func BenchmarkTable4AlexNet(b *testing.B) { benchStudy(b, simcluster.UseAlexNet) }

// --- Live-system micro-benchmarks ---

// liveRig starts a single-board testbed (no modelled sleeping) and a
// client with the requested transport.
func liveRig(b *testing.B, mode remote.TransportMode) (*Testbed, *remote.Client) {
	return liveRigWith(b, mode, nil)
}

// liveRigWith is liveRig with a distributed-tracing tracer attached to
// the client (nil disables tracing, the default path).
func liveRigWith(b *testing.B, mode remote.TransportMode, tracer *obs.Tracer) (*Testbed, *remote.Client) {
	b.Helper()
	tb, err := NewTestbed(NodeConfig{Name: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	client, err := remote.Dial(remote.Config{
		ClientName: "bench",
		Managers:   []string{tb.Nodes[0].Addr},
		Transport:  mode,
		ShmDir:     b.TempDir(),
		Tracer:     tracer,
	})
	if err != nil {
		tb.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		client.Close()
		tb.Close()
	})
	return tb, client
}

func setupCopy(b *testing.B, client ocl.Client, size int) (ocl.Context, ocl.CommandQueue, ocl.Kernel, ocl.Buffer, ocl.Buffer) {
	b.Helper()
	platforms, err := client.Platforms()
	if err != nil {
		b.Fatal(err)
	}
	devs, err := platforms[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := client.CreateContext(devs[:1])
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ctx.CreateProgramWithBinary(devs[0], accel.LoopbackBitstream().Binary())
	if err != nil {
		b.Fatal(err)
	}
	if err := prog.Build(""); err != nil {
		b.Fatal(err)
	}
	k, err := prog.CreateKernel("copy")
	if err != nil {
		b.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		b.Fatal(err)
	}
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, size, nil)
	if err != nil {
		b.Fatal(err)
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, size, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ctx, q, k, in, out
}

// benchWriteRead measures the live write->kernel->read round trip through
// the full RPC + manager + board stack.
func benchWriteRead(b *testing.B, mode remote.TransportMode, size int) {
	benchWriteReadTraced(b, mode, size, nil)
}

func benchWriteReadTraced(b *testing.B, mode remote.TransportMode, size int, tracer *obs.Tracer) {
	_, client := liveRigWith(b, mode, tracer)
	_, q, k, in, out := setupCopy(b, client, size)
	if err := k.SetArg(0, in); err != nil {
		b.Fatal(err)
	}
	if err := k.SetArg(1, out); err != nil {
		b.Fatal(err)
	}
	if err := k.SetArg(2, int32(size)); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, size)
	dst := make([]byte, size)
	b.SetBytes(int64(2 * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := q.EnqueueTask(k, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
			b.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveRoundTripGRPC4K(b *testing.B) { benchWriteRead(b, remote.TransportGRPC, 4<<10) }
func BenchmarkLiveRoundTripGRPC1M(b *testing.B) { benchWriteRead(b, remote.TransportGRPC, 1<<20) }
func BenchmarkLiveRoundTripShm4K(b *testing.B)  { benchWriteRead(b, remote.TransportShm, 4<<10) }
func BenchmarkLiveRoundTripShm1M(b *testing.B)  { benchWriteRead(b, remote.TransportShm, 1<<20) }

// BenchmarkTraceOverhead measures the tracing tax on the hot RPC path:
// the 4K gRPC round trip with tracing disabled entirely (the nil-tracer
// baseline, comparable to BenchmarkLiveRoundTripGRPC4K), with a tracer
// attached but sampling at 1% (production setting), and sampling every
// task (worst case). The acceptance budget is <2% for the off case.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchWriteReadTraced(b, remote.TransportGRPC, 4<<10, nil)
	})
	b.Run("sampled-0pct", func(b *testing.B) {
		benchWriteReadTraced(b, remote.TransportGRPC, 4<<10,
			obs.New(obs.Config{Component: "library", SampleRate: 0}))
	})
	b.Run("sampled-1pct", func(b *testing.B) {
		benchWriteReadTraced(b, remote.TransportGRPC, 4<<10,
			obs.New(obs.Config{Component: "library", SampleRate: 0.01}))
	})
	b.Run("sampled-100pct", func(b *testing.B) {
		benchWriteReadTraced(b, remote.TransportGRPC, 4<<10,
			obs.New(obs.Config{Component: "library", SampleRate: 1}))
	})
}

// benchWriteReadLogged is the 4K gRPC round trip with structured
// loggers attached to both ends of the path: mgrLog feeds the Device
// Manager's per-task events, clientLog the Remote Library's.
func benchWriteReadLogged(b *testing.B, size int, mgrLog, clientLog *logx.Logger) {
	b.Helper()
	tb, err := NewTestbed(NodeConfig{Name: "bench", Log: mgrLog})
	if err != nil {
		b.Fatal(err)
	}
	client, err := remote.Dial(remote.Config{
		ClientName: "bench",
		Managers:   []string{tb.Nodes[0].Addr},
		Transport:  remote.TransportGRPC,
		Log:        clientLog,
	})
	if err != nil {
		tb.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		client.Close()
		tb.Close()
	})
	_, q, k, in, out := setupCopy(b, client, size)
	if err := k.SetArg(0, in); err != nil {
		b.Fatal(err)
	}
	if err := k.SetArg(1, out); err != nil {
		b.Fatal(err)
	}
	if err := k.SetArg(2, int32(size)); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, size)
	dst := make([]byte, size)
	b.SetBytes(int64(2 * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := q.EnqueueTask(k, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
			b.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogOverhead measures the structured-logging tax on the hot
// RPC path: the 4K gRPC round trip with logging disabled entirely (the
// nil-logger baseline, comparable to BenchmarkLiveRoundTripGRPC4K),
// with loggers attached at Info (the per-task debug events are gated
// out — the production setting), and at Debug with every task recorded
// into both rings (worst case). The acceptance budget is <1% for the
// off case: a nil logger costs one nil check per task on each side.
func BenchmarkLogOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchWriteReadLogged(b, 4<<10, nil, nil)
	})
	b.Run("ring-info", func(b *testing.B) {
		benchWriteReadLogged(b, 4<<10,
			logx.New(logx.Config{Component: "manager", Level: logx.LevelInfo}),
			logx.New(logx.Config{Component: "library", Level: logx.LevelInfo}))
	})
	b.Run("ring-debug", func(b *testing.B) {
		benchWriteReadLogged(b, 4<<10,
			logx.New(logx.Config{Component: "manager"}),
			logx.New(logx.Config{Component: "library"}))
	})
}

// BenchmarkNativeRoundTrip1M is the no-manager baseline for the live
// round-trip benches.
func BenchmarkNativeRoundTrip1M(b *testing.B) {
	const size = 1 << 20
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	client := native.New(board)
	_, q, k, in, out := setupCopy(b, client, size)
	k.SetArg(0, in)
	k.SetArg(1, out)
	k.SetArg(2, int32(size))
	payload := bytes.Repeat([]byte{0xAB}, size)
	dst := make([]byte, size)
	b.SetBytes(2 * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.EnqueueWriteBuffer(in, false, 0, payload, nil)
		q.EnqueueTask(k, nil)
		q.EnqueueReadBuffer(out, false, 0, dst, nil)
		if err := q.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkWireEncodeDecodeNotification(b *testing.B) {
	n := &wire.OpNotification{Tag: 42, State: wire.OpComplete, DeviceNanos: 12345,
		Data: bytes.Repeat([]byte{1}, 256)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := wire.NewEncoder(512)
		n.Encode(e)
		var out wire.OpNotification
		out.Decode(wire.NewDecoder(e.Bytes()))
	}
}

func BenchmarkShmArenaAllocFree(b *testing.B) {
	arena := shm.NewArena(64 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, err := arena.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		arena.Free(off, 4096)
	}
}

func BenchmarkEventStateMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := ocl.NewEvent(ocl.CommandWriteBuffer)
		ev.SetStatus(ocl.Submitted)
		ev.SetStatus(ocl.Running)
		ev.Complete()
		if err := ev.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSobelKernelCompute(b *testing.B) {
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	if _, err := board.Configure(accel.SobelBitstream().Binary()); err != nil {
		b.Fatal(err)
	}
	const w, h = 256, 256
	in, _ := board.Alloc(accel.SobelImageBytes(w, h))
	out, _ := board.Alloc(accel.SobelImageBytes(w, h))
	board.Write(in, 0, apps.SyntheticImage(w, h))
	wArg, _ := ocl.PackArg(int32(w))
	hArg, _ := ocl.PackArg(int32(h))
	args := []ocl.Arg{ocl.BufferArg(in), ocl.BufferArg(out), wArg, hArg}
	b.SetBytes(int64(w * h * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := board.Run("sobel", args, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMMKernelCompute(b *testing.B) {
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	if _, err := board.Configure(accel.MMBitstream().Binary()); err != nil {
		b.Fatal(err)
	}
	const n = 128
	bufA, _ := board.Alloc(accel.MMMatrixBytes(n))
	bufB, _ := board.Alloc(accel.MMMatrixBytes(n))
	bufC, _ := board.Alloc(accel.MMMatrixBytes(n))
	mat := make([]byte, accel.MMMatrixBytes(n))
	accel.PutFloat32Slice(mat, apps.RandomMatrix(n, 1))
	board.Write(bufA, 0, mat)
	board.Write(bufB, 0, mat)
	nArg, _ := ocl.PackArg(int32(n))
	args := []ocl.Arg{ocl.BufferArg(bufA), ocl.BufferArg(bufB), ocl.BufferArg(bufC), nArg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := board.Run("mm", args, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocationAlgorithm(b *testing.B) {
	src := registry.StaticMetrics{}
	reg, err := registry.New(registry.DefaultPolicy(src))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		reg.RegisterDevice(registry.Device{
			ID: fmt.Sprintf("fpga-%02d", i), Node: fmt.Sprintf("n%02d", i),
			Vendor: "Intel(R) Corporation", Platform: "SDK",
		})
		src[fmt.Sprintf("fpga-%02d", i)] = registry.DeviceMetrics{Utilization: float64(i) / 20}
	}
	reg.RegisterFunction(registry.Function{Name: "f", Query: registry.DeviceQuery{Accelerator: "sobel"}, Bitstream: "spector-sobel"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := reg.Allocate(registry.AllocRequest{
			InstanceUID:  fmt.Sprintf("u%d", i),
			InstanceName: fmt.Sprintf("i%d", i),
			Function:     "f",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		s := e.NewServer()
		for j := 0; j < 1000; j++ {
			s.Enqueue(time.Millisecond, nil)
		}
		e.Run(time.Hour)
	}
	b.ReportMetric(1000, "jobs/run")
}

// --- Ablation studies (DESIGN.md section 6) ---

// BenchmarkAblationTaskBatching compares per-operation flushing against
// multi-operation tasks on the live stack: batching amortizes the control
// round trip, the reason the Device Manager accumulates tasks.
func BenchmarkAblationTaskBatching(b *testing.B) {
	const ops = 8
	const size = 4 << 10
	run := func(b *testing.B, flushEach bool) {
		_, client := liveRig(b, remote.TransportShm)
		ctx, q, _, in, _ := setupCopy(b, client, size)
		_ = ctx
		payload := bytes.Repeat([]byte{1}, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < ops; j++ {
				if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
					b.Fatal(err)
				}
				if flushEach {
					if err := q.Finish(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := q.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("flush-per-op", func(b *testing.B) { run(b, true) })
	b.Run("batched-task", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationSyncVsAsync compares the blocking flow (every call
// waits) against the asynchronous event flow the paper's library favors.
func BenchmarkAblationSyncVsAsync(b *testing.B) {
	const size = 16 << 10
	run := func(b *testing.B, blocking bool) {
		_, client := liveRig(b, remote.TransportShm)
		_, q, k, in, out := setupCopy(b, client, size)
		k.SetArg(0, in)
		k.SetArg(1, out)
		k.SetArg(2, int32(size))
		payload := bytes.Repeat([]byte{1}, size)
		dst := make([]byte, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := q.EnqueueWriteBuffer(in, blocking, 0, payload, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := q.EnqueueTask(k, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := q.EnqueueReadBuffer(out, blocking, 0, dst, nil); err != nil {
				b.Fatal(err)
			}
			if err := q.Finish(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("synchronous", func(b *testing.B) { run(b, true) })
	b.Run("asynchronous", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationAllocation compares allocation policies on the Sobel
// high-load scenario: utilization-aware ordering (Algorithm 1's default),
// connected-count ordering, and no ordering at all (first compatible
// device).
func BenchmarkAblationAllocation(b *testing.B) {
	policies := []struct {
		name  string
		order []registry.Criterion
	}{
		{"utilization-aware", nil}, // default policy
		{"least-connected", []registry.Criterion{{Metric: registry.MetricConnected}}},
		{"first-fit", []registry.Criterion{{Metric: registry.MetricQueueDepth, Quantum: 1e9}}},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			var res *simcluster.Result
			for i := 0; i < b.N; i++ {
				exp, err := simcluster.BlastFunctionExperiment(simcluster.UseSobel, simcluster.HighLoad)
				if err != nil {
					b.Fatal(err)
				}
				exp.Order = p.order
				res, err = simcluster.Run(exp)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Processed, "rqps")
			b.ReportMetric(res.TotalUtilization*100, "util_pct")
			b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "latency_ms")
		})
	}
}

// BenchmarkAblationScheduling compares the paper's FIFO central queue with
// per-client round-robin service under high Sobel load.
func BenchmarkAblationScheduling(b *testing.B) {
	for _, d := range []struct {
		name string
		disc simcluster.Discipline
	}{
		{"fifo", simcluster.FIFO},
		{"round-robin", simcluster.RoundRobin},
	} {
		b.Run(d.name, func(b *testing.B) {
			var res *simcluster.Result
			for i := 0; i < b.N; i++ {
				exp, err := simcluster.BlastFunctionExperiment(simcluster.UseSobel, simcluster.HighLoad)
				if err != nil {
					b.Fatal(err)
				}
				exp.Scheduling = d.disc
				res, err = simcluster.Run(exp)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Processed, "rqps")
			b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "latency_ms")
		})
	}
}

// BenchmarkAblationTransport sweeps the three data paths over the DES MM
// scenario — the paper's own shm-vs-gRPC ablation at cluster scale.
func BenchmarkAblationTransport(b *testing.B) {
	for _, tr := range []model.Transport{model.TransportNative, model.TransportGRPC, model.TransportShm} {
		b.Run(tr.String(), func(b *testing.B) {
			var res *simcluster.Result
			for i := 0; i < b.N; i++ {
				exp, err := simcluster.BlastFunctionExperiment(simcluster.UseMM, simcluster.MediumLoad)
				if err != nil {
					b.Fatal(err)
				}
				exp.Transport = tr
				res, err = simcluster.Run(exp)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Processed, "rqps")
			b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "latency_ms")
		})
	}
}

// BenchmarkAblationSpaceSharing compares time-sharing (one resident
// bitstream per board, Algorithm 1 segregates accelerators) against the
// paper's future-work space-sharing mode (two resident designs per board
// at an area penalty) on a mixed Sobel+MM scenario.
func BenchmarkAblationSpaceSharing(b *testing.B) {
	for _, mode := range []struct {
		name  string
		space bool
	}{
		{"time-sharing", false},
		{"space-sharing", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var res *simcluster.Result
			for i := 0; i < b.N; i++ {
				exp, err := simcluster.MixedExperiment(simcluster.MediumLoad, mode.space)
				if err != nil {
					b.Fatal(err)
				}
				res, err = simcluster.Run(exp)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Processed, "rqps")
			b.ReportMetric(res.TotalUtilization*100, "util_pct")
			b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "latency_ms")
		})
	}
}

// BenchmarkAblationPipelining asks whether a separate DMA engine
// (overlapping one task's transfers with another's kernel) would pay off —
// the Device Manager the paper built executes one operation at a time.
func BenchmarkAblationPipelining(b *testing.B) {
	for _, mode := range []struct {
		name    string
		overlap bool
	}{
		{"serialized", false},
		{"dma-overlap", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var res *simcluster.Result
			for i := 0; i < b.N; i++ {
				exp, err := simcluster.BlastFunctionExperiment(simcluster.UseSobel, simcluster.HighLoad)
				if err != nil {
					b.Fatal(err)
				}
				exp.OverlapDMA = mode.overlap
				res, err = simcluster.Run(exp)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Processed, "rqps")
			b.ReportMetric(float64(res.AvgLatency.Microseconds())/1000, "latency_ms")
		})
	}
}
