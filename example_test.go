package blastfunction_test

import (
	"fmt"
	"log"

	"blastfunction"
	"blastfunction/internal/apps"
)

// Example shares one simulated board between two tenants through the full
// BlastFunction stack (RPC + Device Manager + board) and verifies both see
// identical results — the transparency property.
func Example() {
	tb, err := blastfunction.NewTestbed(blastfunction.NodeConfig{Name: "B"})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	const n = 8
	a := apps.RandomMatrix(n, 1)
	b := apps.RandomMatrix(n, 2)

	var first []float32
	for tenant := 1; tenant <= 2; tenant++ {
		client, err := tb.Client(fmt.Sprintf("tenant-%d", tenant))
		if err != nil {
			log.Fatal(err)
		}
		app, err := apps.NewMM(client, 0, n)
		if err != nil {
			log.Fatal(err)
		}
		out, err := app.Multiply(a, b, n)
		if err != nil {
			log.Fatal(err)
		}
		if first == nil {
			first = out
		} else {
			same := true
			for i := range out {
				if out[i] != first[i] {
					same = false
					break
				}
			}
			fmt.Printf("tenant results identical: %t\n", same)
		}
		app.Close()
		client.Close()
	}
	fmt.Printf("kernel launches on the shared board: %d\n", tb.Nodes[0].Board.Stats().KernelRuns)
	// Output:
	// tenant results identical: true
	// kernel launches on the shared board: 2
}
