// Command blastbench regenerates the paper's figures and tables.
//
//	blastbench -exp all       everything, in paper order
//	blastbench -exp fig4a     R/W overhead sweep (Figure 4a)
//	blastbench -exp fig4b     Sobel overhead sweep (Figure 4b)
//	blastbench -exp fig4c     MM overhead sweep (Figure 4c)
//	blastbench -exp table1    load configurations (Table I)
//	blastbench -exp table2    Sobel multi-function study (Table II)
//	blastbench -exp table3    MM multi-function study (Table III)
//	blastbench -exp table4    AlexNet multi-function study (Table IV)
//	blastbench -check         verify the qualitative claims and exit
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"blastfunction/internal/bench"
	"blastfunction/internal/simcluster"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (fig4a..c, table1..4, spaceshare, all)")
		check  = flag.Bool("check", false, "run the qualitative shape checks and exit non-zero on violation")
		format = flag.String("format", "text", "output format for figures: text or csv")
		detail = flag.Bool("detail", false, "print per-function rows for table3/table4")
	)
	flag.Parse()

	if *check {
		problems := bench.FigureShapeChecks()
		for _, uc := range []simcluster.UseCase{simcluster.UseSobel, simcluster.UseMM, simcluster.UseAlexNet} {
			study, err := bench.RunStudy(uc)
			if err != nil {
				log.Fatalf("blastbench: %v", err)
			}
			problems = append(problems, study.CheckShape()...)
		}
		if len(problems) == 0 {
			fmt.Println("all qualitative claims hold")
			return
		}
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "VIOLATED:", p)
		}
		os.Exit(1)
	}

	renderFig := func(f *bench.Figure) string {
		if *format == "csv" {
			return f.RenderCSV()
		}
		return f.Render()
	}
	run := func(id string) {
		switch id {
		case "fig4a":
			fmt.Println(renderFig(bench.Fig4a()))
		case "fig4b":
			fmt.Println(renderFig(bench.Fig4b()))
		case "fig4c":
			fmt.Println(renderFig(bench.Fig4c()))
		case "table1":
			fmt.Println(bench.RenderTable1())
		case "table2":
			study, err := bench.RunStudy(simcluster.UseSobel)
			if err != nil {
				log.Fatalf("blastbench: %v", err)
			}
			fmt.Println(study.RenderPerFunction())
			fmt.Println(study.RenderAggregate())
		case "table3":
			study, err := bench.RunStudy(simcluster.UseMM)
			if err != nil {
				log.Fatalf("blastbench: %v", err)
			}
			if *detail {
				fmt.Println(study.RenderPerFunction())
			}
			fmt.Println(study.RenderAggregate())
		case "table4":
			study, err := bench.RunStudy(simcluster.UseAlexNet)
			if err != nil {
				log.Fatalf("blastbench: %v", err)
			}
			if *detail {
				fmt.Println(study.RenderPerFunction())
			}
			fmt.Println(study.RenderAggregate())
		case "spaceshare":
			study, err := bench.RunSpaceSharingStudy(simcluster.MediumLoad)
			if err != nil {
				log.Fatalf("blastbench: %v", err)
			}
			fmt.Println(study.Render())
		default:
			log.Fatalf("blastbench: unknown experiment %q", id)
		}
	}

	if *exp == "all" {
		for _, id := range []string{"fig4a", "fig4b", "fig4c", "table1", "table2", "table3", "table4"} {
			run(id)
		}
		return
	}
	run(*exp)
}
