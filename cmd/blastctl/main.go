// Command blastctl inspects a running BlastFunction deployment.
//
//	blastctl -registry http://localhost:8080 devices
//	blastctl -registry http://localhost:8080 functions
//	blastctl -manager http://localhost:5101 traces
//	blastctl -manager http://localhost:5101 tenants
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"text/tabwriter"
)

func main() {
	registryURL := flag.String("registry", "http://127.0.0.1:8080", "registry base URL")
	managerURL := flag.String("manager", "http://127.0.0.1:5101", "Device Manager HTTP base URL (for traces)")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "devices"
	}
	switch cmd {
	case "devices":
		showDevices(*registryURL)
	case "functions":
		showFunctions(*registryURL)
	case "traces":
		showTraces(*managerURL)
	case "tenants":
		showTenants(*managerURL)
	default:
		log.Fatalf("blastctl: unknown command %q (want devices|functions|traces|tenants)", cmd)
	}
}

// showTenants joins the manager's scheduling snapshot with its trace ring
// into a per-tenant fairness view: occupancy share, queue depth, and p95
// queue wait over the recently executed tasks.
func showTenants(base string) {
	var stats struct {
		Discipline string `json:"discipline"`
		Depth      int    `json:"depth"`
		Tenants    []struct {
			Tenant         string  `json:"tenant"`
			Weight         int     `json:"weight"`
			Depth          int     `json:"depth"`
			Popped         uint64  `json:"popped"`
			MaxWaitNanos   int64   `json:"max_wait_ns"`
			DeviceNanos    int64   `json:"device_ns"`
			OccupancyShare float64 `json:"occupancy_share"`
		}
	}
	fetch(base+"/debug/sched", &stats)
	var traces []struct {
		Client         string `json:"client"`
		QueueWaitNanos int64  `json:"queue_wait_ns"`
	}
	fetch(base+"/debug/tasks", &traces)
	// p95 queue wait per tenant over the trace ring's window.
	waits := make(map[string][]int64)
	for _, tr := range traces {
		waits[tr.Client] = append(waits[tr.Client], tr.QueueWaitNanos)
	}
	p95 := func(v []int64) float64 {
		if len(v) == 0 {
			return 0
		}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return float64(v[(len(v)-1)*95/100]) / 1e6
	}
	fmt.Printf("discipline: %s, queued: %d\n", stats.Discipline, stats.Depth)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TENANT\tWEIGHT\tQUEUED\tTASKS\tSHARE\tP95_WAIT_MS\tMAX_WAIT_MS\tDEVICE_MS")
	for _, ts := range stats.Tenants {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f%%\t%.3f\t%.3f\t%.3f\n",
			ts.Tenant, ts.Weight, ts.Depth, ts.Popped, ts.OccupancyShare*100,
			p95(waits[ts.Tenant]), float64(ts.MaxWaitNanos)/1e6, float64(ts.DeviceNanos)/1e6)
	}
	w.Flush()
}

func showTraces(base string) {
	var traces []struct {
		Seq         uint64 `json:"seq"`
		Client      string `json:"client"`
		Ops         int    `json:"ops"`
		DeviceNanos int64  `json:"device_ns"`
		Failed      bool   `json:"failed"`
		CompletedAt string `json:"completed_at"`
	}
	fetch(base+"/debug/tasks", &traces)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SEQ\tCLIENT\tOPS\tDEVICE_MS\tSTATUS\tCOMPLETED")
	for _, tr := range traces {
		status := "ok"
		if tr.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%.3f\t%s\t%s\n",
			tr.Seq, tr.Client, tr.Ops, float64(tr.DeviceNanos)/1e6, status, tr.CompletedAt)
	}
	w.Flush()
}

func fetch(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("blastctl: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("blastctl: %s answered %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("blastctl: decoding %s: %v", url, err)
	}
}

func showDevices(base string) {
	var devices []struct {
		ID, Node, ManagerAddr, Bitstream, Accelerator string
		Healthy                                       bool
		Metrics                                       *struct {
			Utilization, Connected, QueueDepth float64
		}
		Connected []string
	}
	fetch(base+"/devices", &devices)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "DEVICE\tNODE\tHEALTHY\tMANAGER\tBITSTREAM\tUTIL\tCLIENTS\tINSTANCES")
	for _, d := range devices {
		util, clients := "-", "-"
		if d.Metrics != nil {
			util = fmt.Sprintf("%.1f%%", d.Metrics.Utilization*100)
			clients = fmt.Sprintf("%.0f", d.Metrics.Connected)
		}
		bit := d.Bitstream
		if bit == "" {
			bit = "(unconfigured)"
		}
		fmt.Fprintf(w, "%s\t%s\t%t\t%s\t%s\t%s\t%s\t%d\n",
			d.ID, d.Node, d.Healthy, d.ManagerAddr, bit, util, clients, len(d.Connected))
	}
	w.Flush()
}

func showFunctions(base string) {
	var functions []struct {
		Name      string
		Bitstream string
		Query     struct{ Vendor, Platform, Accelerator string }
	}
	fetch(base+"/functions", &functions)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "FUNCTION\tACCELERATOR\tBITSTREAM\tVENDOR")
	for _, f := range functions {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", f.Name, f.Query.Accelerator, f.Bitstream, f.Query.Vendor)
	}
	w.Flush()
}
