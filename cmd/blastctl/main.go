// Command blastctl inspects a running BlastFunction deployment.
//
//	blastctl -registry http://localhost:8080 devices
//	blastctl -registry http://localhost:8080 functions
//	blastctl -manager http://localhost:5101 traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"text/tabwriter"
)

func main() {
	registryURL := flag.String("registry", "http://127.0.0.1:8080", "registry base URL")
	managerURL := flag.String("manager", "http://127.0.0.1:5101", "Device Manager HTTP base URL (for traces)")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "devices"
	}
	switch cmd {
	case "devices":
		showDevices(*registryURL)
	case "functions":
		showFunctions(*registryURL)
	case "traces":
		showTraces(*managerURL)
	default:
		log.Fatalf("blastctl: unknown command %q (want devices|functions|traces)", cmd)
	}
}

func showTraces(base string) {
	var traces []struct {
		Seq         uint64 `json:"seq"`
		Client      string `json:"client"`
		Ops         int    `json:"ops"`
		DeviceNanos int64  `json:"device_ns"`
		Failed      bool   `json:"failed"`
		CompletedAt string `json:"completed_at"`
	}
	fetch(base+"/debug/tasks", &traces)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SEQ\tCLIENT\tOPS\tDEVICE_MS\tSTATUS\tCOMPLETED")
	for _, tr := range traces {
		status := "ok"
		if tr.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%.3f\t%s\t%s\n",
			tr.Seq, tr.Client, tr.Ops, float64(tr.DeviceNanos)/1e6, status, tr.CompletedAt)
	}
	w.Flush()
}

func fetch(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("blastctl: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("blastctl: %s answered %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("blastctl: decoding %s: %v", url, err)
	}
}

func showDevices(base string) {
	var devices []struct {
		ID, Node, ManagerAddr, Bitstream, Accelerator string
		Healthy                                       bool
		Metrics                                       *struct {
			Utilization, Connected, QueueDepth float64
		}
		Connected []string
	}
	fetch(base+"/devices", &devices)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "DEVICE\tNODE\tHEALTHY\tMANAGER\tBITSTREAM\tUTIL\tCLIENTS\tINSTANCES")
	for _, d := range devices {
		util, clients := "-", "-"
		if d.Metrics != nil {
			util = fmt.Sprintf("%.1f%%", d.Metrics.Utilization*100)
			clients = fmt.Sprintf("%.0f", d.Metrics.Connected)
		}
		bit := d.Bitstream
		if bit == "" {
			bit = "(unconfigured)"
		}
		fmt.Fprintf(w, "%s\t%s\t%t\t%s\t%s\t%s\t%s\t%d\n",
			d.ID, d.Node, d.Healthy, d.ManagerAddr, bit, util, clients, len(d.Connected))
	}
	w.Flush()
}

func showFunctions(base string) {
	var functions []struct {
		Name      string
		Bitstream string
		Query     struct{ Vendor, Platform, Accelerator string }
	}
	fetch(base+"/functions", &functions)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "FUNCTION\tACCELERATOR\tBITSTREAM\tVENDOR")
	for _, f := range functions {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", f.Name, f.Query.Accelerator, f.Bitstream, f.Query.Vendor)
	}
	w.Flush()
}
