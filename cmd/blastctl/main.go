// Command blastctl inspects a running BlastFunction deployment.
//
//	blastctl -registry http://localhost:8080 devices
//	blastctl -registry http://localhost:8080 functions
//	blastctl -manager http://localhost:5101 traces
//	blastctl -manager http://localhost:5101 tenants
//	blastctl -gateway http://localhost:8081 -manager http://localhost:5101 trace <trace-id>
//	blastctl explain <trace-id>
//	blastctl logs -level warn -trace <trace-id>
//	blastctl alerts
//	blastctl slo
//	blastctl top
//	blastctl flash list
//	blastctl flash status <board>
//	blastctl flash history <board> -n 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"blastfunction/internal/alert"
	"blastfunction/internal/flash"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/logx"
	"blastfunction/internal/obs"
	"blastfunction/internal/slo"
)

func main() {
	registryURL := flag.String("registry", "http://127.0.0.1:8080", "registry base URL")
	managerURL := flag.String("manager", "http://127.0.0.1:5101", "Device Manager HTTP base URL (for traces)")
	gatewayURL := flag.String("gateway", "http://127.0.0.1:8081", "gateway HTTP base URL (for trace)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout; a hung process can no longer wedge blastctl")
	flag.Parse()
	httpClient.Timeout = *timeout
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "devices"
	}
	// The ops commands merge views across every process that answers; a
	// single blastctl works against both the split (registry + managers)
	// and the all-in-one gateway deployments.
	bases := dedup(*registryURL, *gatewayURL, *managerURL)
	switch cmd {
	case "devices":
		showDevices(*registryURL)
	case "functions":
		showFunctions(*registryURL)
	case "traces":
		showTraces(*managerURL)
	case "tenants":
		showTenants(*managerURL)
	case "trace":
		id := flag.Arg(1)
		if id == "" {
			log.Fatal("blastctl: trace needs a trace id (the hex form printed in span dumps)")
		}
		showTrace(*gatewayURL, *managerURL, id)
	case "explain":
		showExplain(bases, flag.Args()[1:])
	case "logs":
		showLogs(bases, flag.Args()[1:])
	case "alerts":
		showAlerts(dedup(*registryURL, *gatewayURL))
	case "slo":
		showSLO(dedup(*registryURL, *gatewayURL), flag.Args()[1:])
	case "top":
		showTop(*registryURL, *gatewayURL, *managerURL, flag.Args()[1:])
	case "flash":
		showFlash(bases, flag.Args()[1:])
	default:
		log.Fatalf("blastctl: unknown command %q (want devices|functions|traces|tenants|trace|explain|logs|alerts|slo|top|flash)", cmd)
	}
}

// dedup drops duplicate base URLs while preserving order, so pointing
// two flags at the same process doesn't fetch (or print) twice.
func dedup(bases ...string) []string {
	seen := make(map[string]bool, len(bases))
	var out []string
	for _, b := range bases {
		b = strings.TrimSuffix(b, "/")
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return out
}

// showLogs fetches the /debug/logs rings of every reachable process and
// prints the merged timeline — the cluster-wide `kubectl logs` with
// level, component and trace filters pushed down to each ring.
func showLogs(bases []string, args []string) {
	fs := flag.NewFlagSet("logs", flag.ExitOnError)
	level := fs.String("level", "", "minimum severity (debug|info|warn|error)")
	component := fs.String("component", "", "only this component's events")
	trace := fs.String("trace", "", "only events correlated to this trace id (hex)")
	n := fs.Int("n", 0, "only the most recent N events per process (0 = all)")
	fs.Parse(args)

	var q logx.Query
	if *level != "" {
		lv, err := logx.ParseLevel(*level)
		if err != nil {
			log.Fatalf("blastctl: %v", err)
		}
		q.MinLevel = lv
	}
	q.Component = *component
	if *trace != "" {
		id, err := obs.ParseTraceID(*trace)
		if err != nil {
			log.Fatalf("blastctl: trace id %q: %v", *trace, err)
		}
		q.Trace = id
	}
	q.N = *n

	fetched := make([][]logx.Event, len(bases))
	errs := make([]error, len(bases))
	forEachBase(bases, func(i int, base string) {
		fetched[i], errs[i] = logx.FetchRing(base, q)
	})
	var rings [][]logx.Event
	for i := range bases {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "blastctl: warning: %v (timeline may be partial)\n", errs[i])
			continue
		}
		rings = append(rings, fetched[i])
	}
	if len(rings) == 0 {
		log.Fatal("blastctl: no log source reachable (tried the registry's, gateway's and manager's /debug/logs)")
	}
	for _, ev := range logx.Merge(rings...) {
		fmt.Println(ev.Format())
	}
}

// showAlerts renders the merged /debug/alerts view: every rule series
// that has left inactive, firing first, with how long it has been there.
func showAlerts(bases []string) {
	parts := make([][]alert.Status, len(bases))
	errs := make([]error, len(bases))
	forEachBase(bases, func(i int, base string) {
		errs[i] = fetch(base+"/debug/alerts", &parts[i])
	})
	var statuses []alert.Status
	sources := 0
	for i := range bases {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "blastctl: warning: %v\n", errs[i])
			continue
		}
		sources++
		statuses = append(statuses, parts[i]...)
	}
	if sources == 0 {
		log.Fatal("blastctl: no alert source reachable (tried the registry's and gateway's /debug/alerts)")
	}
	if len(statuses) == 0 {
		fmt.Println("no alerts: every rule series is inactive")
		return
	}
	// SLO burn alerts carry a culprit: join /debug/slo so the firing line
	// ends in a trace id `blastctl trace` can decompose.
	exemplars := make(map[string]string)
	for _, st := range statuses {
		if strings.HasPrefix(st.Rule, "SLO") {
			reports, _ := sloReports(bases)
			for _, r := range reports {
				if r.Latency.ExemplarTrace != "" {
					exemplars[r.Name] = r.Latency.ExemplarTrace
				}
			}
			break
		}
	}
	now := time.Now()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "RULE\tSTATE\tLABELS\tVALUE\tCONDITION\tAGE\tEXEMPLAR")
	for _, st := range statuses {
		age := "-"
		if !st.Since.IsZero() {
			age = now.Sub(st.Since).Round(time.Second).String()
		}
		labels := st.Labels.String()
		if labels == "" {
			labels = "-"
		}
		exemplar := "-"
		if tr := exemplars[st.Labels["slo"]]; tr != "" {
			exemplar = tr
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3g\t%s %g\t%s\t%s\n",
			st.Rule, st.State, labels, st.Value, st.Op, st.Threshold, age, exemplar)
	}
	w.Flush()
}

// sloReports fetches /debug/slo from every base concurrently and merges
// the answers, deduping by objective name (the registry and the gateway
// may be started with the same -slo flags). errs is aligned to bases so
// callers can decide between warning and ignoring.
func sloReports(bases []string) (reports []slo.Report, errs []error) {
	parts := make([][]slo.Report, len(bases))
	errs = make([]error, len(bases))
	forEachBase(bases, func(i int, base string) {
		errs[i] = fetch(base+"/debug/slo", &parts[i])
	})
	seen := make(map[string]bool)
	for _, part := range parts {
		for _, r := range part {
			if seen[r.Name] {
				continue
			}
			seen[r.Name] = true
			reports = append(reports, r)
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Name < reports[j].Name })
	return reports, errs
}

// sliState summarises one SLI's burn conditions: the severest breached
// window wins, an untouched budget reads ok.
func sliState(s slo.SLIReport) string {
	state := "ok"
	for _, bs := range s.Burns {
		if !bs.Breached {
			continue
		}
		if bs.Window.Severity == "page" {
			return "PAGE"
		}
		state = "WARN"
	}
	return state
}

// showSLO renders each declared objective's error-budget accounting:
// budget remaining per SLI, current burn rates, and — when the budget is
// burning — the exemplar trace id to feed straight into `blastctl trace`.
func showSLO(bases []string, args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	name := fs.String("name", "", "only this objective")
	fs.Parse(args)
	reports, errs := sloReports(bases)
	sources := 0
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "blastctl: warning: %v\n", err)
		} else {
			sources++
		}
	}
	if sources == 0 {
		log.Fatal("blastctl: no SLO source reachable (tried the registry's and gateway's /debug/slo)")
	}
	if *name != "" {
		kept := reports[:0]
		for _, r := range reports {
			if r.Name == *name {
				kept = append(kept, r)
			}
		}
		reports = kept
	}
	if len(reports) == 0 {
		fmt.Println("no objectives declared (start the registry or gateway with -slo name:p99<50ms:99.9%)")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SLO\tSPEC\tSLI\tWINDOW\tBUDGET_LEFT\tBURN\tSTATE\tEXEMPLAR")
	for _, r := range reports {
		for _, s := range []slo.SLIReport{r.Latency, r.Availability} {
			sli := s.Kind
			if s.Kind == "latency" && s.HasData {
				sli = fmt.Sprintf("latency (p%g=%.3gms)", s.Goal*100, s.ActualQuantile*1e3)
			}
			if !s.HasData {
				fmt.Fprintf(w, "%s\t%s\t%s\t%s\t-\t-\tno data\t-\n",
					r.Name, r.Spec, sli, r.Window)
				continue
			}
			// The worst burn across windows is the one the alert rules act on.
			burn := 0.0
			for _, bs := range s.Burns {
				if v := minf(bs.LongBurn, bs.ShortBurn); v > burn {
					burn = v
				}
			}
			exemplar := s.ExemplarTrace
			if exemplar == "" {
				exemplar = "-"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%5.1f%% %s\t%.2fx\t%s\t%s\n",
				r.Name, r.Spec, sli, r.Window,
				s.BudgetRemaining*100, utilBar(s.BudgetRemaining, 10),
				burn, sliState(s), exemplar)
		}
	}
	w.Flush()
	for _, r := range reports {
		if r.Latency.ExemplarTrace != "" && sliState(r.Latency) != "ok" {
			fmt.Printf("hint: `blastctl trace %s` decomposes a request behind %s's burning p%g\n",
				r.Latency.ExemplarTrace, r.Name, r.Latency.Goal*100)
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// topDevice mirrors the registry's /devices JSON for the fields top needs.
type topDevice struct {
	ID, Node, Bitstream string
	Healthy             bool
	Metrics             *struct {
		Utilization, Connected, QueueDepth float64
	}
	Connected []string
}

// topFront mirrors the gateway's /debug/gateway JSON for top.
type topFront struct {
	Router    string `json:"router"`
	Admission bool   `json:"admission"`
	Functions []struct {
		Function  string  `json:"function"`
		Requests  int64   `json:"requests"`
		Errors    int64   `json:"errors"`
		InFlight  int64   `json:"inflight"`
		Replicas  int     `json:"replicas"`
		Admitted  int64   `json:"admitted"`
		Rejected  int64   `json:"rejected"`
		AvgMillis float64 `json:"avg_ms"`
	} `json:"functions"`
	Tenants []struct {
		Tenant   string  `json:"tenant"`
		Rate     float64 `json:"rate"`
		Priority int     `json:"priority"`
		Admitted uint64  `json:"admitted"`
		Rejected uint64  `json:"rejected"`
	} `json:"tenants"`
}

// topSched mirrors the manager's /debug/sched JSON for top.
type topSched struct {
	Discipline string `json:"discipline"`
	Depth      int    `json:"depth"`
	Tenants    []struct {
		Tenant         string  `json:"tenant"`
		Weight         int     `json:"weight"`
		Depth          int     `json:"depth"`
		OccupancyShare float64 `json:"occupancy_share"`
	}
}

// topCache mirrors the manager's /debug/cache JSON for top.
type topCache struct {
	BufferCache struct {
		Entries       int    `json:"entries"`
		ResidentBytes int64  `json:"resident_bytes"`
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		BytesSaved    int64  `json:"bytes_saved"`
		Evictions     uint64 `json:"evictions"`
	} `json:"buffer_cache"`
	MemoEnabled bool `json:"memo_enabled"`
	MemoCache   struct {
		Entries       int    `json:"entries"`
		ResidentBytes int64  `json:"resident_bytes"`
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		Invalidations uint64 `json:"invalidations"`
	} `json:"memo_cache"`
	CopyOps   int64 `json:"copy_ops"`
	CopyBytes int64 `json:"copy_bytes"`
}

// showTop renders a one-screen live cluster view — devices with
// utilization bars, queue depth, firing alerts, and the manager's tenant
// shares — refreshed every -interval until interrupted. -once prints a
// single frame (scripting and tests).
func showTop(registryBase, gatewayBase, managerBase string, args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one frame and exit")
	fs.Parse(args)
	for {
		frame := topFrame(dedup(registryBase, gatewayBase), dedup(registryBase, gatewayBase), gatewayBase, managerBase)
		if *once {
			fmt.Print(frame)
			return
		}
		// ANSI home+clear keeps the view flicker-free in place.
		fmt.Print("\033[H\033[2J" + frame)
		time.Sleep(*interval)
	}
}

// parallel runs every fn concurrently and waits for all of them.
func parallel(fns ...func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}

// topFrame builds one rendering of the cluster view. Every section is
// best-effort: an unreachable process leaves a note, not a dead screen.
// All sections are gathered concurrently before rendering, so a dead
// process costs the frame one -timeout, not one per section.
func topFrame(deviceBases, alertBases []string, gatewayBase, managerBase string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "BlastFunction cluster — %s\n\n", time.Now().Format("15:04:05"))

	var (
		devices  []topDevice
		devErr   error
		statuses []alert.Status
		alertsOK bool
		reports  []slo.Report
		sloOK    bool
		front    topFront
		frontErr error
		sched    topSched
		schedErr error
		cache    topCache
		cacheErr error
	)
	parallel(
		func() {
			for _, base := range deviceBases {
				if devErr = fetch(base+"/devices", &devices); devErr == nil {
					break
				}
			}
		},
		func() {
			parts := make([][]alert.Status, len(alertBases))
			errs := make([]error, len(alertBases))
			forEachBase(alertBases, func(i int, base string) {
				errs[i] = fetch(base+"/debug/alerts", &parts[i])
			})
			for i := range alertBases {
				if errs[i] == nil {
					alertsOK = true
					statuses = append(statuses, parts[i]...)
				}
			}
		},
		func() {
			var errs []error
			reports, errs = sloReports(alertBases)
			for _, err := range errs {
				if err == nil {
					sloOK = true
				}
			}
		},
		func() { frontErr = fetch(strings.TrimSuffix(gatewayBase, "/")+"/debug/gateway", &front) },
		func() { schedErr = fetch(strings.TrimSuffix(managerBase, "/")+"/debug/sched", &sched) },
		func() { cacheErr = fetch(strings.TrimSuffix(managerBase, "/")+"/debug/cache", &cache) },
	)

	if devErr != nil {
		fmt.Fprintf(&b, "devices: unreachable: %v\n", devErr)
	} else {
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "DEVICE\tNODE\tHEALTHY\tBITSTREAM\tUTIL\tQUEUE\tCLIENTS\tINSTANCES")
		for _, d := range devices {
			util, queue, clients := "-", "-", "-"
			bar := ""
			if d.Metrics != nil {
				util = fmt.Sprintf("%5.1f%%", d.Metrics.Utilization*100)
				queue = fmt.Sprintf("%.0f", d.Metrics.QueueDepth)
				clients = fmt.Sprintf("%.0f", d.Metrics.Connected)
				bar = " " + utilBar(d.Metrics.Utilization, 10)
			}
			bit := d.Bitstream
			if bit == "" {
				bit = "(unconfigured)"
			}
			fmt.Fprintf(w, "%s\t%s\t%t\t%s\t%s%s\t%s\t%s\t%d\n",
				d.ID, d.Node, d.Healthy, bit, util, bar, queue, clients, len(d.Connected))
		}
		w.Flush()
	}

	firing := 0
	for _, st := range statuses {
		if st.State == alert.StateFiring {
			firing++
		}
	}
	b.WriteByte('\n')
	switch {
	case !alertsOK:
		b.WriteString("alerts: unreachable\n")
	case firing == 0:
		b.WriteString("alerts: none firing\n")
	default:
		fmt.Fprintf(&b, "alerts: %d firing\n", firing)
		now := time.Now()
		for _, st := range statuses {
			if st.State != alert.StateFiring {
				continue
			}
			fmt.Fprintf(&b, "  %s %s value=%.3g (%s %g) for %s\n",
				st.Rule, st.Labels.String(), st.Value, st.Op, st.Threshold,
				now.Sub(st.Since).Round(time.Second))
		}
	}

	b.WriteByte('\n')
	switch {
	case !sloOK:
		b.WriteString("slo: unreachable\n")
	case len(reports) == 0:
		b.WriteString("slo: no objectives declared\n")
	default:
		burning := 0
		for _, r := range reports {
			if sliState(r.Latency) != "ok" || sliState(r.Availability) != "ok" {
				burning++
			}
		}
		if burning == 0 {
			fmt.Fprintf(&b, "slo: %d objectives, budgets healthy\n", len(reports))
		} else {
			fmt.Fprintf(&b, "slo: %d of %d objectives burning\n", burning, len(reports))
			for _, r := range reports {
				for _, s := range []slo.SLIReport{r.Latency, r.Availability} {
					if st := sliState(s); st != "ok" {
						line := fmt.Sprintf("  %s %s %s: budget %.1f%% left", r.Name, s.Kind, st, s.BudgetRemaining*100)
						if s.ExemplarTrace != "" {
							line += " exemplar " + s.ExemplarTrace
						}
						b.WriteString(line + "\n")
					}
				}
			}
		}
	}

	b.WriteByte('\n')
	if frontErr != nil {
		fmt.Fprintf(&b, "front door: unreachable\n")
	} else {
		admission := "admission off"
		if front.Admission {
			admission = "admission on"
		}
		fmt.Fprintf(&b, "front door: router %s, %s\n", front.Router, admission)
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  FUNCTION\tREPLICAS\tREQS\tERRS\tINFLIGHT\tADMITTED\tREJECTED\tAVG")
		for _, f := range front.Functions {
			fmt.Fprintf(w, "  %s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1fms\n",
				f.Function, f.Replicas, f.Requests, f.Errors, f.InFlight,
				f.Admitted, f.Rejected, f.AvgMillis)
		}
		w.Flush()
		throttled := 0
		for _, tn := range front.Tenants {
			if tn.Rejected > 0 {
				throttled++
			}
		}
		if throttled > 0 {
			fmt.Fprintf(&b, "  throttled tenants (%d):\n", throttled)
			for _, tn := range front.Tenants {
				if tn.Rejected == 0 {
					continue
				}
				fmt.Fprintf(&b, "    %s rate=%.1f/s prio=%d admitted=%d rejected=%d\n",
					tn.Tenant, tn.Rate, tn.Priority, tn.Admitted, tn.Rejected)
			}
		}
	}

	b.WriteByte('\n')
	if schedErr != nil {
		fmt.Fprintf(&b, "scheduler: unreachable (-manager not pointed at a Device Manager?)\n")
	} else {
		fmt.Fprintf(&b, "scheduler: %s, %d queued\n", sched.Discipline, sched.Depth)
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  TENANT\tWEIGHT\tQUEUED\tSHARE")
		for _, ts := range sched.Tenants {
			fmt.Fprintf(w, "  %s\t%d\t%d\t%.1f%% %s\n",
				ts.Tenant, ts.Weight, ts.Depth, ts.OccupancyShare*100, utilBar(ts.OccupancyShare, 10))
		}
		w.Flush()
	}

	b.WriteByte('\n')
	if cacheErr != nil {
		fmt.Fprintf(&b, "data-plane reuse: unreachable\n")
	} else {
		bc := cache.BufferCache
		fmt.Fprintf(&b, "data-plane reuse: buffer cache %d entries / %s resident, %d hits / %d misses, %s upload saved, %d evicted\n",
			bc.Entries, fmtBytes(bc.ResidentBytes), bc.Hits, bc.Misses, fmtBytes(bc.BytesSaved), bc.Evictions)
		if cache.MemoEnabled {
			mc := cache.MemoCache
			fmt.Fprintf(&b, "  kernel memo: %d entries / %s resident, %d hits / %d misses, %d invalidated\n",
				mc.Entries, fmtBytes(mc.ResidentBytes), mc.Hits, mc.Misses, mc.Invalidations)
		} else {
			b.WriteString("  kernel memo: disabled\n")
		}
		fmt.Fprintf(&b, "  device copies: %d ops / %s chained without a client hop\n",
			cache.CopyOps, fmtBytes(cache.CopyBytes))
	}
	return b.String()
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// utilBar renders a fraction as a fixed-width block bar.
func utilBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("|", full) + strings.Repeat(" ", width-full) + "]"
}

// span mirrors obs.Span's JSON form.
type span struct {
	Trace      string    `json:"trace"`
	ID         string    `json:"id"`
	Parent     string    `json:"parent"`
	Component  string    `json:"component"`
	Stage      string    `json:"stage"`
	Note       string    `json:"note"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
}

// showTrace fetches one trace's spans from the gateway's and the
// manager's span rings and renders the merged timeline: the latency
// decomposition of a single accelerated call across the Remote Library
// and the Device Manager.
func showTrace(gatewayBase, managerBase, id string) {
	if _, err := strconv.ParseUint(id, 16, 64); err != nil {
		log.Fatalf("blastctl: trace id %q: want the hex form printed in span dumps", id)
	}
	spanBases := dedup(gatewayBase, managerBase)
	parts := make([][]span, len(spanBases))
	headers := make([]http.Header, len(spanBases))
	errs := make([]error, len(spanBases))
	forEachBase(spanBases, func(i int, base string) {
		headers[i], errs[i] = fetchHeaders(base+"/debug/spans?trace="+id, &parts[i])
	})
	var spans []span
	sources, evicted := 0, 0
	evictedExact := true
	for i := range spanBases {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "blastctl: warning: %v (timeline may be partial)\n", errs[i])
			continue
		}
		sources++
		spans = append(spans, parts[i]...)
		// Rings annotate evictions in headers so the JSON body keeps its
		// plain []span shape for older consumers.
		if n, err := strconv.Atoi(headers[i].Get("X-Spans-Evicted")); err == nil && n > 0 {
			evicted += n
			if headers[i].Get("X-Spans-Evicted-Exact") == "false" {
				evictedExact = false
			}
		}
	}
	if evicted > 0 {
		qualifier := ""
		if !evictedExact {
			qualifier = "at least "
		}
		fmt.Fprintf(os.Stderr, "blastctl: warning: %s%d spans evicted, timeline partial\n", qualifier, evicted)
	}
	if sources == 0 {
		log.Fatal("blastctl: no span source reachable (tried the gateway's and the manager's /debug/spans)")
	}
	if len(spans) == 0 {
		log.Fatalf("blastctl: no spans recorded for trace %s (sampling on, and recent enough for the span rings?)", id)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	t0 := spans[0].Start
	t1 := t0
	for _, s := range spans {
		if end := s.Start.Add(time.Duration(s.DurationNS)); end.After(t1) {
			t1 = end
		}
	}
	total := t1.Sub(t0)
	if total <= 0 {
		total = time.Nanosecond
	}
	fmt.Printf("trace %s: %d spans, %.3f ms end to end\n", id, len(spans), float64(total)/1e6)
	const width = 40
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "COMPONENT\tSTAGE\tNOTE\tSTART_MS\tDUR_MS\tTIMELINE")
	for _, s := range spans {
		off := s.Start.Sub(t0)
		dur := time.Duration(s.DurationNS)
		lead := int(float64(off) / float64(total) * width)
		if lead > width-1 {
			lead = width - 1
		}
		bar := int(float64(dur) / float64(total) * width)
		if bar < 1 {
			bar = 1
		}
		if lead+bar > width {
			bar = width - lead
		}
		line := strings.Repeat(".", lead) + strings.Repeat("#", bar) + strings.Repeat(".", width-lead-bar)
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\t%.3f\t%s\n",
			s.Component, s.Stage, s.Note, float64(off)/1e6, float64(dur)/1e6, line)
	}
	w.Flush()
}

// showExplain runs the cross-signal postmortem engine: it fetches flight
// events, spans, log rings, alerts, SLO reports and flash state from
// every reachable process, merges one causal timeline, and renders the
// wait breakdown with a dominant-contributor verdict.
func showExplain(bases []string, args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the raw postmortem as JSON")
	fs.Parse(args)
	id := fs.Arg(0)
	if id == "" {
		log.Fatal("blastctl: explain needs a trace id (hex; `blastctl slo` and span dumps print them)")
	}
	trace, err := obs.ParseTraceID(id)
	if err != nil {
		log.Fatalf("blastctl: trace id %q: %v", id, err)
	}
	ex := &flightrec.Explainer{Bases: bases, Client: httpClient}
	pm, err := ex.Explain(trace)
	if err != nil {
		log.Fatalf("blastctl: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(pm)
		return
	}
	pm.Render(os.Stdout)
}

// showTenants joins the manager's scheduling snapshot with its trace ring
// into a per-tenant fairness view: occupancy share, queue depth, and p95
// queue wait over the recently executed tasks.
func showTenants(base string) {
	var stats struct {
		Discipline string `json:"discipline"`
		Depth      int    `json:"depth"`
		Tenants    []struct {
			Tenant         string  `json:"tenant"`
			Weight         int     `json:"weight"`
			Depth          int     `json:"depth"`
			Popped         uint64  `json:"popped"`
			MaxWaitNanos   int64   `json:"max_wait_ns"`
			DeviceNanos    int64   `json:"device_ns"`
			OccupancyShare float64 `json:"occupancy_share"`
		}
	}
	mustFetch(base+"/debug/sched", &stats)
	var traces []struct {
		Client         string `json:"client"`
		QueueWaitNanos int64  `json:"queue_wait_ns"`
	}
	mustFetch(base+"/debug/tasks", &traces)
	// p95 queue wait per tenant over the trace ring's window.
	waits := make(map[string][]int64)
	for _, tr := range traces {
		waits[tr.Client] = append(waits[tr.Client], tr.QueueWaitNanos)
	}
	p95 := func(v []int64) float64 {
		if len(v) == 0 {
			return 0
		}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return float64(v[(len(v)-1)*95/100]) / 1e6
	}
	fmt.Printf("discipline: %s, queued: %d\n", stats.Discipline, stats.Depth)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TENANT\tWEIGHT\tQUEUED\tTASKS\tSHARE\tP95_WAIT_MS\tMAX_WAIT_MS\tDEVICE_MS")
	for _, ts := range stats.Tenants {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f%%\t%.3f\t%.3f\t%.3f\n",
			ts.Tenant, ts.Weight, ts.Depth, ts.Popped, ts.OccupancyShare*100,
			p95(waits[ts.Tenant]), float64(ts.MaxWaitNanos)/1e6, float64(ts.DeviceNanos)/1e6)
	}
	w.Flush()
}

func showTraces(base string) {
	var traces []struct {
		Seq         uint64 `json:"seq"`
		Client      string `json:"client"`
		Ops         int    `json:"ops"`
		DeviceNanos int64  `json:"device_ns"`
		Failed      bool   `json:"failed"`
		CompletedAt string `json:"completed_at"`
	}
	mustFetch(base+"/debug/tasks", &traces)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SEQ\tCLIENT\tOPS\tDEVICE_MS\tSTATUS\tCOMPLETED")
	for _, tr := range traces {
		status := "ok"
		if tr.Failed {
			status = "FAILED"
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%.3f\t%s\t%s\n",
			tr.Seq, tr.Client, tr.Ops, float64(tr.DeviceNanos)/1e6, status, tr.CompletedAt)
	}
	w.Flush()
}

// httpClient is the shared client behind every fetch; main overwrites
// its Timeout from -timeout so one hung process fails the request
// instead of wedging the whole command.
var httpClient = &http.Client{Timeout: 5 * time.Second}

// fetch GETs url and decodes the JSON response into v. Connection
// failures, non-200 answers and malformed bodies are all errors — the
// response is never decoded blindly.
func fetch(url string, v any) error {
	resp, err := httpClient.Get(url)
	if err != nil {
		return fmt.Errorf("fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s answered %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding %s: %v", url, err)
	}
	return nil
}

// fetchHeaders is fetch plus the response headers, for endpoints that
// annotate their JSON body through headers (/debug/spans?trace= reports
// ring evictions in X-Spans-Evicted).
func fetchHeaders(url string, v any) (http.Header, error) {
	resp, err := httpClient.Get(url)
	if err != nil {
		return nil, fmt.Errorf("fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.Header, fmt.Errorf("%s answered %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.Header, fmt.Errorf("decoding %s: %v", url, err)
	}
	return resp.Header, nil
}

// mustFetch is fetch for the single-source commands: any failure is
// fatal with a non-zero exit.
func mustFetch(url string, v any) {
	if err := fetch(url, v); err != nil {
		log.Fatalf("blastctl: %v", err)
	}
}

// forEachBase runs fn for every base concurrently and waits. The ops
// commands hit several processes per invocation; with -timeout bounding
// each request, the slowest (or deadest) target costs one timeout
// total instead of one per process.
func forEachBase(bases []string, fn func(i int, base string)) {
	var wg sync.WaitGroup
	for i, base := range bases {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			fn(i, base)
		}(i, base)
	}
	wg.Wait()
}

func showDevices(base string) {
	var devices []struct {
		ID, Node, ManagerAddr, Bitstream, Accelerator string
		Healthy                                       bool
		Metrics                                       *struct {
			Utilization, Connected, QueueDepth float64
		}
		Connected []string
	}
	mustFetch(base+"/devices", &devices)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "DEVICE\tNODE\tHEALTHY\tMANAGER\tBITSTREAM\tUTIL\tCLIENTS\tINSTANCES")
	for _, d := range devices {
		util, clients := "-", "-"
		if d.Metrics != nil {
			util = fmt.Sprintf("%.1f%%", d.Metrics.Utilization*100)
			clients = fmt.Sprintf("%.0f", d.Metrics.Connected)
		}
		bit := d.Bitstream
		if bit == "" {
			bit = "(unconfigured)"
		}
		fmt.Fprintf(w, "%s\t%s\t%t\t%s\t%s\t%s\t%s\t%d\n",
			d.ID, d.Node, d.Healthy, d.ManagerAddr, bit, util, clients, len(d.Connected))
	}
	w.Flush()
}

func showFunctions(base string) {
	var functions []struct {
		Name      string
		Bitstream string
		Query     struct{ Vendor, Platform, Accelerator string }
	}
	mustFetch(base+"/functions", &functions)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "FUNCTION\tACCELERATOR\tBITSTREAM\tVENDOR")
	for _, f := range functions {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", f.Name, f.Query.Accelerator, f.Bitstream, f.Query.Vendor)
	}
	w.Flush()
}

// showFlash inspects the bitstream lifecycle service of every reachable
// process (Device Managers flash locally; the registry/gateway plans
// windows). Subcommands: "list" (live jobs + queue depths), "status"
// (one board's pipeline), "history" (the durable reflash ledger).
func showFlash(bases []string, args []string) {
	sub := "list"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub = args[0]
		args = args[1:]
	}
	fs := flag.NewFlagSet("flash", flag.ExitOnError)
	board := fs.String("board", "", "only this board")
	n := fs.Int("n", 0, "history entries per board (0 = all kept)")
	fs.Parse(args)
	if *board == "" && fs.NArg() > 0 {
		*board = fs.Arg(0)
	}
	if sub != "list" && sub != "status" && sub != "history" {
		log.Fatalf("blastctl: unknown flash subcommand %q (want list|status|history)", sub)
	}

	type payload struct {
		Jobs    []flash.Job            `json:"jobs"`
		Queues  map[string]int         `json:"queue_depths"`
		History map[string][]flash.Job `json:"history"`
	}
	merged := payload{Queues: make(map[string]int), History: make(map[string][]flash.Job)}
	reachable := 0
	for _, base := range bases {
		url := base + "/debug/flash"
		sep := "?"
		if *board != "" {
			url += sep + "board=" + *board
			sep = "&"
		}
		if *n > 0 {
			url += sep + "limit=" + strconv.Itoa(*n)
		}
		var p payload
		if err := fetch(url, &p); err != nil {
			continue
		}
		reachable++
		merged.Jobs = append(merged.Jobs, p.Jobs...)
		for b, d := range p.Queues {
			merged.Queues[b] += d
		}
		for b, h := range p.History {
			merged.History[b] = append(merged.History[b], h...)
		}
	}
	if reachable == 0 {
		log.Fatalf("blastctl: no /debug/flash endpoint reachable (tried %s)", strings.Join(bases, ", "))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	printJob := func(j flash.Job) {
		riders := ""
		if len(j.BatchedRequesters) > 0 {
			riders = fmt.Sprintf("+%d", len(j.BatchedRequesters))
		}
		detail := ""
		switch j.State {
		case flash.StateDone:
			detail = fmt.Sprintf("wait=%.2fs flash=%.2fs", j.WaitSeconds, j.FlashSeconds)
			if j.DrainedSessions > 0 {
				detail += fmt.Sprintf(" drained=%d", j.DrainedSessions)
			}
		case flash.StateFailed:
			detail = j.Error
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s%s\t%s\t%s\n",
			j.ID, j.Board, j.Bitstream, j.State, j.Requester, riders,
			j.Queued.Format(time.TimeOnly), detail)
	}

	switch sub {
	case "list":
		fmt.Fprintln(w, "ID\tBOARD\tBITSTREAM\tSTATE\tREQUESTER\tQUEUED\t")
		sort.Slice(merged.Jobs, func(i, j int) bool { return merged.Jobs[i].ID < merged.Jobs[j].ID })
		for _, j := range merged.Jobs {
			printJob(j)
		}
		if len(merged.Jobs) == 0 {
			fmt.Fprintln(w, "(no live flash jobs)\t")
		}
	case "status":
		boards := make([]string, 0, len(merged.Queues))
		for b := range merged.Queues {
			boards = append(boards, b)
		}
		sort.Strings(boards)
		fmt.Fprintln(w, "BOARD\tDEPTH\tACTIVE\t")
		for _, b := range boards {
			active := "-"
			for _, j := range merged.Jobs {
				if j.Board == b && j.State == flash.StateFlashing {
					active = fmt.Sprintf("#%d %s (%s)", j.ID, j.Bitstream, j.Requester)
				}
			}
			fmt.Fprintf(w, "%s\t%d\t%s\n", b, merged.Queues[b], active)
		}
		if len(boards) == 0 {
			fmt.Fprintln(w, "(no boards with flash activity)\t")
		}
	case "history":
		var all []flash.Job
		for _, h := range merged.History {
			all = append(all, h...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Board != all[j].Board {
				return all[i].Board < all[j].Board
			}
			return all[i].ID < all[j].ID
		})
		fmt.Fprintln(w, "ID\tBOARD\tBITSTREAM\tOUTCOME\tREQUESTER\tQUEUED\tDETAIL\t")
		for _, j := range all {
			printJob(j)
		}
		if len(all) == 0 {
			fmt.Fprintln(w, "(no flash history)\t")
		}
	}
}
