// Command devicemanager serves one simulated FPGA board as a BlastFunction
// Device Manager: the RPC service on -listen, Prometheus-style metrics on
// -metrics, optional self-registration with an Accelerators Registry.
//
// Example:
//
//	devicemanager -node B -device fpga-B -listen :5100 -metrics :5101 \
//	    -register http://registry:8080 -timescale 0.01
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/metrics"
	"blastfunction/internal/model"
	"blastfunction/internal/obs"
	"blastfunction/internal/rpc"
	"blastfunction/internal/sched"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:5100", "RPC listen address")
		metricsAt = flag.String("metrics", "127.0.0.1:5101", "metrics HTTP listen address")
		node      = flag.String("node", "local", "node name (shared-memory co-location check)")
		device    = flag.String("device", "fpga0", "device identifier")
		master    = flag.Bool("master", false, "use the master-node cost model (PCIe Gen2, slower host)")
		timescale = flag.Float64("timescale", 0.01, "wall seconds per modelled second (0 disables sleeping)")
		register  = flag.String("register", "", "registry base URL for self-registration (optional)")
		lease     = flag.Duration("lease", 30*time.Second, "session lease duration; silent clients are reclaimed after this (0 disables)")
		schedFlag = flag.String("sched", "fifo", "central-queue discipline: fifo, drr or deadline")
		weights   = flag.String("weights", "", "per-tenant drr weights as name=w,name=w (overrides Hello-declared weights)")
		guard     = flag.Duration("starvation-guard", 0, "drr starvation guard: max queue wait before a tenant is served out of turn (0 = default 2s, negative disables)")
		traceRing = flag.Int("trace-ring", 0, "distributed-tracing span ring size served at /debug/spans (0 = default 4096)")
		logLevel  = flag.String("log-level", "info", "minimum level mirrored to stderr (debug|info|warn|error)")
		logRing   = flag.Int("log-ring", 4096, "events kept in the /debug/logs ring")
		bufCache  = flag.Int64("buffer-cache-bytes", 0, "content-addressed buffer cache capacity (0 = default 256 MiB, negative disables)")
		memoize   = flag.Bool("memoize", false, "memoize idempotent kernel results keyed by bitstream/kernel/argument content")
		memoCache = flag.Int64("memo-cache-bytes", 0, "memoized-result cache capacity (0 = default 64 MiB)")
		flashHist = flag.String("flash-history", "", "append-only JSONL file persisting the bitstream flash history across restarts")
		flashKeep = flag.Int("flash-history-limit", 0, "flash history entries kept per board (0 = default 64)")
		flightRing   = flag.Int("flight-ring", 0, "flight-recorder ring size served at /debug/flight (0 = default 1024)")
		flightLedger = flag.String("flight-ledger", "", "durable JSONL spill file for notable flights (failures, tail outliers)")
	)
	flag.Parse()

	sinkLevel, err := logx.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("devicemanager: -log-level: %v", err)
	}
	rootLog := logx.New(logx.Config{
		Component: "manager",
		RingSize:  *logRing,
		Sink:      logx.TextSink(os.Stderr),
		SinkLevel: sinkLevel,
	})

	weightTable, err := parseWeights(*weights)
	if err != nil {
		log.Fatalf("devicemanager: -weights: %v", err)
	}
	if _, err := sched.ParseDiscipline(*schedFlag); err != nil {
		log.Fatalf("devicemanager: -sched: %v", err)
	}

	cost := model.WorkerNode()
	if *master {
		cost = model.MasterNode()
	}
	cfg := fpga.DE5aNet(cost)
	cfg.TimeScale = *timescale
	board := fpga.NewBoard(cfg, accel.Catalog())
	mgr := manager.New(manager.Config{
		Node:              *node,
		DeviceID:          *device,
		LeaseDuration:     *lease,
		Scheduler:         *schedFlag,
		TenantWeights:     weightTable,
		StarvationGuard:   *guard,
		TraceRing:         *traceRing,
		Log:               rootLog,
		BufferCacheBytes:  *bufCache,
		MemoizeKernels:    *memoize,
		MemoCacheBytes:    *memoCache,
		FlashHistoryPath:  *flashHist,
		FlashHistoryLimit: *flashKeep,
		FlightRing:        *flightRing,
		FlightLedgerPath:  *flightLedger,
	}, board)
	defer mgr.Close()

	// Runtime health rides the manager's own /metrics: the registry
	// scrapes it into the TSDB where GoroutineLeak/HeapGrowth watch it.
	runtimeCol := obs.NewRuntimeCollector(mgr.Metrics(),
		metrics.Labels{"component": "manager", "device": *device, "node": *node})
	ctx, cancelCol := context.WithCancel(context.Background())
	defer cancelCol()
	go runtimeCol.Run(ctx, 5*time.Second)

	srv := rpc.NewServer(mgr)
	srv.Log = rootLog.Named("rpc")
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("devicemanager: listen: %v", err)
	}
	defer srv.Close()
	rootLog.Info("serving RPC", "device", *device, "node", *node, "addr", addr)

	mux := http.NewServeMux()
	mux.Handle("/metrics", mgr.MetricsHandler())
	mux.Handle("/debug/tasks", mgr.TraceHandler())
	mux.Handle("/debug/spans", mgr.SpanHandler())
	mux.Handle("/debug/sched", mgr.SchedStatsHandler())
	mux.Handle("/debug/cache", mgr.CacheStatsHandler())
	mux.Handle("/debug/flash", mgr.Flash().Handler())
	mux.Handle("/debug/flight", mgr.FlightHandler())
	mux.Handle("/debug/logs", rootLog.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	metricsSrv := &http.Server{Addr: *metricsAt, Handler: mux}
	go func() {
		if err := metricsSrv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("devicemanager: metrics server: %v", err)
		}
	}()
	rootLog.Info("metrics endpoint up", "url", "http://"+*metricsAt+"/metrics")

	if *register != "" {
		if err := selfRegister(*register, *device, *node, addr, "http://"+*metricsAt+"/metrics", board); err != nil {
			log.Fatalf("devicemanager: registration: %v", err)
		}
		rootLog.Info("registered with registry", "registry", *register)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	rootLog.Info("shutting down")
	metricsSrv.Close()
}

// parseWeights parses the -weights table: "tenant=w,tenant=w" with
// positive integer weights.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	table := make(map[string]int)
	for _, entry := range strings.Split(s, ",") {
		kv := strings.SplitN(entry, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("malformed entry %q (want name=weight)", entry)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weight %q of %q: want a positive integer", kv[1], kv[0])
		}
		table[kv[0]] = w
	}
	return table, nil
}

func selfRegister(base, device, node, rpcAddr, metricsURL string, board *fpga.Board) error {
	body, err := json.Marshal(map[string]string{
		"ID":          device,
		"Node":        node,
		"Vendor":      board.Config().Vendor,
		"Platform":    "Intel(R) FPGA SDK for OpenCL(TM)",
		"ManagerAddr": rpcAddr,
		"MetricsURL":  metricsURL,
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/devices", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("registry answered %s", resp.Status)
	}
	return nil
}
