// Command registry serves the Accelerators Registry API: device and
// function registration plus live metrics, backed by a scraper that polls
// every registered Device Manager's metrics endpoint, an alert engine
// evaluating the gathered series, and a structured log ring.
//
// Example:
//
//	registry -listen :8080 -scrape 2s -alert-interval 5s
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blastfunction/internal/alert"
	"blastfunction/internal/flash"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
	"blastfunction/internal/registry"
	"blastfunction/internal/slo"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		interval      = flag.Duration("scrape", 2*time.Second, "metrics scrape interval")
		window        = flag.Duration("window", 30*time.Second, "utilization rate window")
		alertInterval = flag.Duration("alert-interval", 5*time.Second, "alert rule evaluation interval")
		grace         = flag.Duration("grace", 30*time.Second, "unhealthy grace before the DeviceUnhealthy alert fires")
		logLevel      = flag.String("log-level", "info", "minimum level mirrored to stderr (debug|info|warn|error)")
		logRing       = flag.Int("log-ring", 4096, "events kept in the /debug/logs ring")
		flashHist     = flag.String("flash-history", "", "append-only JSONL file persisting the flash-window history across restarts")
		profileDir    = flag.String("profile-dir", "", "directory receiving alert-triggered pprof snapshots and SLO fast-burn explain reports (empty disables)")
		flightLedger  = flag.String("flight-ledger", "", "durable JSONL spill file for notable flights")
		sloFlag       slo.Flag
	)
	flag.Var(&sloFlag, "slo", "service-level objective as name:p99<50ms:99.9%[:window] (repeatable)")
	flag.Parse()

	sinkLevel, err := logx.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("registry: %v", err)
	}
	rootLog := logx.New(logx.Config{
		Component: "registry",
		RingSize:  *logRing,
		Sink:      logx.TextSink(os.Stderr),
		SinkLevel: sinkLevel,
	})

	db := metrics.NewTSDB(15 * time.Minute)
	scraper := metrics.NewScraper(db, *interval)
	scraper.OnHealth = func(target string, up bool, err error) {
		if up {
			rootLog.Info("scrape target recovered", "target", target)
		} else {
			rootLog.Warn("scrape target down", "target", target, "err", err)
		}
	}
	gatherer := registry.NewGatherer(db)
	gatherer.Window = *window
	reg, err := registry.New(registry.DefaultPolicy(gatherer))
	if err != nil {
		log.Fatalf("registry: %v", err)
	}
	// Planning-mode lifecycle service: Allocate opens a flash window per
	// committed reprogram, the Build call closes it through the
	// reconfiguration gate, and -flash-history makes the ledger survive
	// registry restarts. Served at /debug/flash for blastctl.
	flashSvc, err := flash.New(flash.Config{
		HistoryPath: *flashHist,
		Log:         rootLog.Named("flash"),
	})
	if err != nil {
		log.Fatalf("registry: flash history: %v", err)
	}
	defer flashSvc.Close()
	reg.SetFlash(flashSvc)

	// The alert engine evaluates the same series Algorithm 1 reads, plus
	// the registry's own health verdicts; its firing gauge is exported
	// through a local metrics registry at /metrics. The registry's own
	// runtime series feed the TSDB through a local scrape target so the
	// GoroutineLeak/HeapGrowth rules cover this process too.
	alertReg := metrics.NewRegistry()
	runtimeCol := obs.NewRuntimeCollector(alertReg, metrics.Labels{"component": "registry"})
	scraper.AddLocalTarget("registry", alertReg)
	capture := &obs.ProfileCapture{Dir: *profileDir}
	sloEngine := slo.NewEngine(db)
	sloEngine.Add(sloFlag.Objectives...)
	flightRec := flightrec.New(flightrec.Config{
		Process:    "registry",
		LedgerPath: *flightLedger,
	})
	defer flightRec.Close()
	engine := alert.NewEngine(alert.Config{
		Log:      rootLog.Named("alert"),
		Registry: alertReg,
		OnFire: func(rule alert.Rule, st alert.Status) {
			if paths, err := capture.Capture(rule.Name); err != nil {
				rootLog.Warn("profile capture failed", "rule", rule.Name, "err", err)
			} else if paths != nil {
				rootLog.Info("profile captured", "rule", rule.Name, "files", len(paths))
			}
			// An SLO fast-burn page writes a postmortem next to the pprof
			// snapshots: the breaching objective's exemplar trace explained
			// across every device manager the registry knows about.
			if rule.Name != "SLOFastBurn" || *profileDir == "" {
				return
			}
			trace := exemplarTrace(sloEngine, st.Labels["slo"])
			if trace == 0 {
				rootLog.Warn("no exemplar trace for explain capture", "slo", st.Labels["slo"])
				return
			}
			bases := []string{"http://" + *listen}
			for _, d := range reg.Devices() {
				if d.MetricsURL != "" {
					bases = append(bases, strings.TrimSuffix(d.MetricsURL, "/metrics"))
				}
			}
			go func() {
				if path, err := flightrec.CaptureExplain(*profileDir, rule.Name, bases, trace); err != nil {
					rootLog.Warn("explain capture failed", "rule", rule.Name, "err", err)
				} else {
					rootLog.Info("explain captured", "rule", rule.Name, "file", path, "trace", trace)
				}
			}()
		},
	})
	engine.Add(alert.DefaultRules(db)...)
	engine.Add(sloEngine.Rules()...)
	engine.Add(alert.Rule{
		Name: "DeviceUnhealthy",
		Help: "device unreachable past the migration grace period",
		Source: alert.Func(func(now time.Time) []alert.Observation {
			var out []alert.Observation
			for _, id := range reg.UnhealthyPastGrace(*grace) {
				out = append(out, alert.Observation{Labels: metrics.Labels{"device": id}, Value: 1})
			}
			return out
		}),
		Op:        alert.OpGreater,
		Threshold: 0,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go scraper.Run(ctx)
	go engine.Run(ctx, *alertInterval)
	go runtimeCol.Run(ctx, *interval)

	// Keep scrape targets synced with registered devices.
	go func() {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				for _, d := range reg.Devices() {
					if d.MetricsURL == "" {
						continue
					}
					scraper.AddTarget(d.ID, d.MetricsURL)
					// Propagate scrape health: unreachable managers drop
					// out of allocation until they answer again.
					reg.SetDeviceHealth(d.ID, scraper.LastError(d.ID))
				}
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/debug/flash", flashSvc.Handler())
	mux.Handle("/debug/flight", flightRec.Handler())
	mux.Handle("/debug/logs", rootLog.Handler())
	mux.Handle("/debug/alerts", engine.Handler())
	mux.Handle("/debug/slo", sloEngine.Handler())
	mux.Handle("/metrics", alertReg.Handler())
	registerPprof(mux)
	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		rootLog.Info("serving", "addr", "http://"+*listen)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("registry: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	rootLog.Info("shutting down")
	srv.Close()
}

// exemplarTrace pulls the named objective's freshest latency exemplar:
// the concrete over-target request behind the burning quantile. An empty
// objective name matches any objective carrying an exemplar.
func exemplarTrace(eng *slo.Engine, objective string) obs.TraceID {
	for _, r := range eng.ReportAt(time.Now()) {
		if objective != "" && r.Name != objective {
			continue
		}
		if r.Latency.ExemplarTrace == "" {
			continue
		}
		if id, err := obs.ParseTraceID(r.Latency.ExemplarTrace); err == nil && id != 0 {
			return id
		}
	}
	return 0
}

// registerPprof mounts net/http/pprof on an explicit mux (the package's
// init only touches http.DefaultServeMux, which we do not serve).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
