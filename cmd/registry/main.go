// Command registry serves the Accelerators Registry API: device and
// function registration plus live metrics, backed by a scraper that polls
// every registered Device Manager's metrics endpoint.
//
// Example:
//
//	registry -listen :8080 -scrape 2s
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blastfunction/internal/metrics"
	"blastfunction/internal/registry"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		interval = flag.Duration("scrape", 2*time.Second, "metrics scrape interval")
		window   = flag.Duration("window", 30*time.Second, "utilization rate window")
	)
	flag.Parse()

	db := metrics.NewTSDB(15 * time.Minute)
	scraper := metrics.NewScraper(db, *interval)
	gatherer := registry.NewGatherer(db)
	gatherer.Window = *window
	reg, err := registry.New(registry.DefaultPolicy(gatherer))
	if err != nil {
		log.Fatalf("registry: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go scraper.Run(ctx)

	// Keep scrape targets synced with registered devices.
	go func() {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				for _, d := range reg.Devices() {
					if d.MetricsURL == "" {
						continue
					}
					scraper.AddTarget(d.ID, d.MetricsURL)
					// Propagate scrape health: unreachable managers drop
					// out of allocation until they answer again.
					reg.SetDeviceHealth(d.ID, scraper.LastError(d.ID))
				}
			}
		}
	}()

	srv := &http.Server{Addr: *listen, Handler: reg.Handler()}
	go func() {
		log.Printf("registry: serving at http://%s", *listen)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("registry: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("registry: shutting down")
	srv.Close()
}
