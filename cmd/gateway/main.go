// Command gateway runs the BlastFunction control plane and serverless
// endpoint in one process: the in-memory cluster orchestrator, the
// Accelerators Registry with its controller and Metrics Gatherer, and the
// OpenFaaS-style gateway that materializes functions over remote Device
// Managers.
//
// Example (two managers already running):
//
//	gateway -listen :8081 \
//	    -manager node=B,id=fpga-B,addr=127.0.0.1:5100,metrics=http://127.0.0.1:5101/metrics \
//	    -manager node=C,id=fpga-C,addr=127.0.0.1:5200,metrics=http://127.0.0.1:5201/metrics \
//	    -deploy sobel-1=sobel -deploy sobel-2=sobel -deploy mm-1=mm
//
// Invoke with: curl http://localhost:8081/function/sobel-1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/alert"
	"blastfunction/internal/apps"
	"blastfunction/internal/cluster"
	"blastfunction/internal/flash"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/gateway"
	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
	"blastfunction/internal/registry"
	"blastfunction/internal/remote"
	"blastfunction/internal/slo"
)

// listFlag collects repeated string flags.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// managerSpec is one -manager flag value.
type managerSpec struct {
	node, id, addr, metrics string
}

func parseManager(v string) (managerSpec, error) {
	var m managerSpec
	for _, part := range strings.Split(v, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("malformed -manager element %q", part)
		}
		switch kv[0] {
		case "node":
			m.node = kv[1]
		case "id":
			m.id = kv[1]
		case "addr":
			m.addr = kv[1]
		case "metrics":
			m.metrics = kv[1]
		default:
			return m, fmt.Errorf("unknown -manager key %q", kv[0])
		}
	}
	if m.node == "" || m.id == "" || m.addr == "" {
		return m, fmt.Errorf("-manager needs node=, id= and addr=")
	}
	return m, nil
}

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:8081", "gateway HTTP listen address")
		scrape        = flag.Duration("scrape", 2*time.Second, "metrics scrape interval")
		grace         = flag.Duration("grace", 30*time.Second, "unhealthy-device grace window before instances are migrated (0 disables)")
		traceSample   = flag.Float64("trace-sample", 0, "distributed-tracing sample rate 0..1 (0 disables; spans served at /debug/spans)")
		alertInterval = flag.Duration("alert-interval", 5*time.Second, "alert rule evaluation interval")
		logLevel      = flag.String("log-level", "info", "minimum level mirrored to stderr (debug|info|warn|error)")
		logRing       = flag.Int("log-ring", 4096, "events kept in the /debug/logs ring")
		routerName    = flag.String("router", "roundrobin", "routing policy: roundrobin|least-inflight|locality|weighted")
		profileDir    = flag.String("profile-dir", "", "directory receiving alert-triggered pprof snapshots and SLO fast-burn explain reports (empty disables)")
		flightRing    = flag.Int("flight-ring", 0, "front-door flight-recorder ring size served at /debug/flight (0 = default 1024)")
		flightLedger  = flag.String("flight-ledger", "", "durable JSONL spill file for notable front-door flights")
		managers      listFlag
		deploys       listFlag
		admissions    listFlag
		sloFlag       slo.Flag
	)
	flag.Var(&sloFlag, "slo", "service-level objective as name:p99<50ms:99.9%[:window] (repeatable)")
	flag.Var(&managers, "manager", "Device Manager spec: node=N,id=I,addr=H:P[,metrics=URL] (repeatable)")
	flag.Var(&deploys, "deploy", "function deployment: name=usecase (usecase: sobel|mm|cnn; repeatable)")
	flag.Var(&admissions, "admission", "per-tenant admission budget: rate:burst[:priority] default, tenant=rate:burst[:priority] override (repeatable; absent disables admission control)")
	flag.Parse()
	if len(managers) == 0 {
		log.Fatal("gateway: at least one -manager is required")
	}

	sinkLevel, err := logx.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	rootLog := logx.New(logx.Config{
		Component: "gateway",
		RingSize:  *logRing,
		Sink:      logx.TextSink(os.Stderr),
		SinkLevel: sinkLevel,
	})

	cl := cluster.New()
	db := metrics.NewTSDB(15 * time.Minute)
	scraper := metrics.NewScraper(db, *scrape)
	scraper.OnHealth = func(target string, up bool, err error) {
		if up {
			rootLog.Info("scrape target recovered", "target", target)
		} else {
			rootLog.Warn("scrape target down", "target", target, "err", err)
		}
	}
	gatherer := registry.NewGatherer(db)
	reg, err := registry.New(registry.DefaultPolicy(gatherer))
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	// Planning-mode lifecycle service: the Registry opens a flash window
	// per board reprogram it commits to, the controller attributes drained
	// sessions, and the managers' Build calls close the windows through
	// the reconfiguration gate. Served at /debug/flash for blastctl.
	flashSvc, err := flash.New(flash.Config{Log: rootLog.Named("flash")})
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	defer flashSvc.Close()
	reg.SetFlash(flashSvc)

	// explainBases are the process base URLs the postmortem engine queries
	// when an SLO fast-burn fires: this gateway plus every manager that
	// advertises a metrics URL (its debug endpoints ride the same mux).
	explainBases := []string{"http://" + *listen}
	for _, raw := range managers {
		m, err := parseManager(raw)
		if err != nil {
			log.Fatalf("gateway: %v", err)
		}
		if m.metrics != "" {
			explainBases = append(explainBases, strings.TrimSuffix(m.metrics, "/metrics"))
		}
		if err := cl.AddNode(cluster.Node{Name: m.node}); err != nil && !strings.Contains(err.Error(), "already") {
			log.Fatalf("gateway: %v", err)
		}
		if err := reg.RegisterDevice(registry.Device{
			ID: m.id, Node: m.node,
			Vendor:      "Intel(R) Corporation",
			Platform:    "Intel(R) FPGA SDK for OpenCL(TM)",
			ManagerAddr: m.addr, MetricsURL: m.metrics,
		}); err != nil {
			log.Fatalf("gateway: %v", err)
		}
		if m.metrics != "" {
			scraper.AddTarget(m.id, m.metrics)
		}
	}

	// The gateway process owns the TSDB here, so it also runs the alert
	// engine over it; the firing gauge rides a local metrics registry.
	// That registry is itself a local scrape target: the gateway's
	// per-function SLI counters and bf_runtime_* series land in the TSDB
	// next to the managers' series, so SLO and leak rules see them.
	alertReg := metrics.NewRegistry()
	runtimeCol := obs.NewRuntimeCollector(alertReg, metrics.Labels{"component": "gateway"})
	scraper.AddLocalTarget("gateway", alertReg)
	capture := &obs.ProfileCapture{Dir: *profileDir}
	sloEngine := slo.NewEngine(db)
	// Gateway objectives name functions, and the series that carry a
	// function label are the gateway's own front-door SLIs — the
	// manager-side bf_task_latency_seconds is labelled per replica
	// (tenant="sobel-1-1") and would never match. Point unset latency
	// SLIs at the front-door histogram scraped just above.
	for i := range sloFlag.Objectives {
		if sloFlag.Objectives[i].LatencyMetric == "" {
			sloFlag.Objectives[i].LatencyMetric = "bf_function_latency_seconds"
		}
	}
	sloEngine.Add(sloFlag.Objectives...)
	engine := alert.NewEngine(alert.Config{
		Log:      rootLog.Named("alert"),
		Registry: alertReg,
		OnFire: func(rule alert.Rule, st alert.Status) {
			if paths, err := capture.Capture(rule.Name); err != nil {
				rootLog.Warn("profile capture failed", "rule", rule.Name, "err", err)
			} else if paths != nil {
				rootLog.Info("profile captured", "rule", rule.Name, "files", len(paths))
			}
			// An SLO fast-burn page captures a postmortem next to the pprof
			// snapshots: the breaching objective's exemplar trace, explained
			// across every process the gateway knows about.
			if rule.Name != "SLOFastBurn" || *profileDir == "" {
				return
			}
			trace := exemplarTrace(sloEngine, st.Labels["slo"])
			if trace == 0 {
				rootLog.Warn("no exemplar trace for explain capture", "slo", st.Labels["slo"])
				return
			}
			go func() {
				if path, err := flightrec.CaptureExplain(*profileDir, rule.Name, explainBases, trace); err != nil {
					rootLog.Warn("explain capture failed", "rule", rule.Name, "err", err)
				} else {
					rootLog.Info("explain captured", "rule", rule.Name, "file", path, "trace", trace)
				}
			}()
		},
	})
	engine.Add(alert.DefaultRules(db)...)
	engine.Add(sloEngine.Rules()...)
	engine.Add(alert.Rule{
		Name: "DeviceUnhealthy",
		Help: "device unreachable past the migration grace period",
		Source: alert.Func(func(now time.Time) []alert.Observation {
			var out []alert.Observation
			for _, id := range reg.UnhealthyPastGrace(*grace) {
				out = append(out, alert.Observation{Labels: metrics.Labels{"device": id}, Value: 1})
			}
			return out
		}),
		Op:        alert.OpGreater,
		Threshold: 0,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go scraper.Run(ctx)
	go engine.Run(ctx, *alertInterval)
	go runtimeCol.Run(ctx, *scrape)
	// Propagate scrape health into allocation decisions.
	go func() {
		ticker := time.NewTicker(*scrape)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				for _, d := range reg.Devices() {
					if d.MetricsURL != "" {
						reg.SetDeviceHealth(d.ID, scraper.LastError(d.ID))
					}
				}
			}
		}
	}()
	ctrl := registry.NewController(reg, cl)
	ctrl.Grace = *grace
	ctrl.Log = rootLog.Named("registry")
	go ctrl.Run(ctx)
	gw := gateway.New(cl)
	gw.Log = rootLog
	gw.Metrics = alertReg
	// Front-door flight recorder: every request leaves a milestone
	// skeleton at /debug/flight, notable ones spill to the ledger.
	gwFlight := flightrec.New(flightrec.Config{
		Process:    "gateway",
		Flights:    *flightRing,
		LedgerPath: *flightLedger,
	})
	defer gwFlight.Close()
	gw.Flight = gwFlight
	// A factory returning a live endpoint means the instance's program
	// build landed on its board: close the flash window the allocation
	// opened so /debug/flash shows only genuinely pending reprograms.
	gw.OnReady = func(in cluster.Instance) { reg.BuildLanded(in.Name) }
	router, err := gateway.NewRouter(*routerName)
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	gw.Router = router
	if len(admissions) > 0 {
		adm, err := gateway.ParseAdmission(admissions)
		if err != nil {
			log.Fatalf("gateway: %v", err)
		}
		gw.Admission = adm
		rootLog.Info("admission control enabled", "specs", strings.Join(admissions, " "))
	}
	// One shared tracer for every function instance in this process: the
	// Remote Library samples traces at the configured rate and the spans
	// are served from the gateway's /debug/spans.
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.New(obs.Config{Component: "library", SampleRate: *traceSample})
		gw.Tracer = tracer
	}
	go gw.Run(ctx)

	for _, d := range deploys {
		kv := strings.SplitN(d, "=", 2)
		if len(kv) != 2 {
			log.Fatalf("gateway: malformed -deploy %q", d)
		}
		name, usecase := kv[0], kv[1]
		// An optional "@N" suffix sets the function's fair-share weight,
		// e.g. -deploy sobel-1=sobel@3.
		weight := 0
		if at := strings.LastIndex(usecase, "@"); at >= 0 {
			w, err := strconv.Atoi(usecase[at+1:])
			if err != nil || w < 1 {
				log.Fatalf("gateway: malformed weight in -deploy %q", d)
			}
			usecase, weight = usecase[:at], w
		}
		if err := reg.RegisterFunction(registry.Function{
			Name:      name,
			Query:     registry.DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: accelerator(usecase)},
			Bitstream: bitstream(usecase),
			Weight:    weight,
		}); err != nil {
			log.Fatalf("gateway: %v", err)
		}
		if err := gw.Deploy(name, 1, factory(name, usecase, tracer, rootLog.Named("library"))); err != nil {
			log.Fatalf("gateway: deploy %s: %v", name, err)
		}
		rootLog.Info("deployed function", "function", name, "usecase", usecase)
	}

	mux := http.NewServeMux()
	mux.Handle("/", gw.Handler())
	// The in-process registry's API rides the same port, so blastctl
	// devices/top work against the all-in-one deployment too.
	regAPI := reg.Handler()
	mux.Handle("/devices", regAPI)
	mux.Handle("/functions", regAPI)
	mux.Handle("/healthz", regAPI)
	mux.Handle("/debug/logs", rootLog.Handler())
	mux.Handle("/debug/alerts", engine.Handler())
	mux.Handle("/debug/flash", flashSvc.Handler())
	mux.Handle("/debug/slo", sloEngine.Handler())
	mux.Handle("/metrics", alertReg.Handler())
	registerPprof(mux)
	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		rootLog.Info("serving", "addr", "http://"+*listen+"/function/<name>")
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("gateway: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	rootLog.Info("shutting down")
	srv.Close()
}

// exemplarTrace pulls the named objective's freshest latency exemplar:
// the concrete over-target request behind the burning quantile. An empty
// objective name matches any objective carrying an exemplar.
func exemplarTrace(eng *slo.Engine, objective string) obs.TraceID {
	for _, r := range eng.ReportAt(time.Now()) {
		if objective != "" && r.Name != objective {
			continue
		}
		if r.Latency.ExemplarTrace == "" {
			continue
		}
		if id, err := obs.ParseTraceID(r.Latency.ExemplarTrace); err == nil && id != 0 {
			return id
		}
	}
	return 0
}

// registerPprof mounts net/http/pprof on an explicit mux (the package's
// init only touches http.DefaultServeMux, which we do not serve).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func accelerator(usecase string) string {
	switch usecase {
	case "cnn":
		return "pipecnn"
	default:
		return usecase
	}
}

func bitstream(usecase string) string {
	switch usecase {
	case "sobel":
		return accel.SobelBitstreamID
	case "mm":
		return accel.MMBitstreamID
	case "cnn":
		return accel.PipeCNNBitstreamID
	}
	return usecase
}

// factory materializes a function instance: it dials the Device Manager
// the Registry injected into the environment and builds the matching app.
// A non-nil tracer enables distributed tracing in the instance's Remote
// Library; lg carries its structured events into the process log ring.
func factory(name, usecase string, tracer *obs.Tracer, lg *logx.Logger) gateway.Factory {
	return func(in cluster.Instance) (gateway.Endpoint, error) {
		addr := in.Env[registry.EnvManagerAddr]
		if addr == "" {
			return nil, fmt.Errorf("instance %s has no %s", in.Name, registry.EnvManagerAddr)
		}
		// The Registry-propagated fair-share weight rides the binding; a
		// missing or malformed value means unweighted.
		weight, _ := strconv.Atoi(in.Env[registry.EnvWeight])
		client, err := remote.Dial(remote.Config{
			ClientName: in.Name,
			Managers:   []string{addr},
			Transport:  remote.TransportAuto,
			Weight:     weight,
			Tracer:     tracer,
			Log:        lg,
		})
		if err != nil {
			return nil, err
		}
		var handler http.Handler
		switch usecase {
		case "sobel":
			app, err := apps.NewSobel(client, 0, 1920, 1080)
			if err != nil {
				client.Close()
				return nil, err
			}
			handler = apps.SobelHandler(app, 1920, 1080)
		case "mm":
			app, err := apps.NewMM(client, 0, 1024)
			if err != nil {
				client.Close()
				return nil, err
			}
			handler = apps.MMHandler(app, 512)
		case "cnn":
			app, err := apps.NewCNN(client, 0, accel.TinyCNN())
			if err != nil {
				client.Close()
				return nil, err
			}
			handler = apps.CNNHandler(app)
		default:
			client.Close()
			return nil, fmt.Errorf("unknown use case %q for %s", usecase, name)
		}
		return gateway.HandlerEndpoint{Handler: handler, CloseFunc: client.Close}, nil
	}
}
