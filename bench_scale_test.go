package blastfunction

// Cluster-scale front-door trajectory: tail latency and rejection rate at
// 100 boards / 500 tenants past saturation, bare round-robin vs
// admission + least-inflight, plus the placement pass's metric-query
// cost. `make bench-scale` runs this and writes BENCH_scale.json at the
// repo root so the numbers accumulate across revisions.

import (
	"encoding/json"
	"os"
	"testing"

	"blastfunction/internal/simcluster"
)

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	GeneratedBy string `json:"generated_by"`

	Baseline  *simcluster.ScaleResult `json:"baseline_roundrobin"`
	Treatment *simcluster.ScaleResult `json:"admission_least_inflight"`

	// P99ImprovementX is baseline p99 / treatment p99 — the headline the
	// admission/routing exemplar reports near saturation.
	P99ImprovementX float64 `json:"p99_improvement_x"`
}

// TestBenchScaleArtifact runs the cluster-scale DES and records
// BENCH_scale.json. Gated behind BF_BENCH_SCALE so `go test ./...`
// stays fast.
func TestBenchScaleArtifact(t *testing.T) {
	if os.Getenv("BF_BENCH_SCALE") == "" {
		t.Skip("set BF_BENCH_SCALE=1 (or run `make bench-scale`) to record the artifact")
	}

	base := simcluster.ScaleConfig{Boards: 100, Tenants: 500}
	baseline, err := simcluster.RunScale(base)
	if err != nil {
		t.Fatal(err)
	}
	treated := base
	treated.Admission = true
	treated.Router = "least-inflight"
	treatment, err := simcluster.RunScale(treated)
	if err != nil {
		t.Fatal(err)
	}

	report := scaleReport{
		GeneratedBy: "make bench-scale",
		Baseline:    baseline,
		Treatment:   treatment,
	}
	if treatment.P99Ms > 0 {
		report.P99ImprovementX = baseline.P99Ms / treatment.P99Ms
	}

	t.Logf("baseline:  p50=%.2fms p99=%.2fms rejected=%.1f%%",
		baseline.P50Ms, baseline.P99Ms, 100*baseline.RejectionRate)
	t.Logf("treatment: p50=%.2fms p99=%.2fms rejected=%.1f%%",
		treatment.P50Ms, treatment.P99Ms, 100*treatment.RejectionRate)
	t.Logf("p99 improvement: %.1fx; placement: %d allocations, %d gatherer computes, %d cache hits, %.1fms",
		report.P99ImprovementX, baseline.Allocations,
		baseline.GathererComputes, baseline.GathererCacheHits, baseline.AllocWallMs)

	// Quality bars: the front door must beat the baseline tail at least
	// 2x past saturation, and the placement pass must not recompute TSDB
	// rates per candidate (one compute per board per scrape generation).
	if report.P99ImprovementX < 2 {
		t.Fatalf("p99 improvement %.2fx under the 2x bar", report.P99ImprovementX)
	}
	if treatment.Rejected == 0 {
		t.Fatal("admission past saturation must reject something")
	}
	for _, r := range []*simcluster.ScaleResult{baseline, treatment} {
		if r.GathererComputes > uint64(base.Boards) {
			t.Fatalf("gatherer computed %d device views for %d boards", r.GathererComputes, base.Boards)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_scale.json")
}
