package remote

import (
	"sync"
	"time"

	"blastfunction/internal/datacache"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/logx"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/wire"
)

// context implements ocl.Context over one Device Manager session.
type context struct {
	mc      *managerConn
	id      uint64
	devices []ocl.Device

	mu     sync.Mutex
	queues []*commandQueue
}

func (mc *managerConn) createContext(devices []ocl.Device) (ocl.Context, error) {
	resp, err := mc.rpc.Call(wire.MethodCreateContext)
	if err != nil {
		return nil, err
	}
	var id wire.IDResponse
	id.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)
	return &context{mc: mc, id: id.ID, devices: devices}, nil
}

// Devices implements ocl.Context.
func (c *context) Devices() []ocl.Device { return c.devices }

// callID performs a unary call built from an IDRequest and returns the
// decoded IDResponse (zero for methods without a response body). The
// response buffer is released here, so callers never touch pooled memory.
func callID(mc *managerConn, m wire.Method, id uint64) (wire.IDResponse, error) {
	e := wire.GetEncoder(8)
	(&wire.IDRequest{ID: id}).Encode(e)
	resp, err := mc.rpc.Call(m, e.Bytes())
	e.Release()
	if err != nil {
		return wire.IDResponse{}, err
	}
	var out wire.IDResponse
	if len(resp) > 0 {
		out.Decode(wire.NewDecoder(resp))
	}
	wire.PutBuf(resp)
	return out, nil
}

// CreateCommandQueue implements ocl.Context.
func (c *context) CreateCommandQueue(d ocl.Device, props ocl.QueueProps) (ocl.CommandQueue, error) {
	if rd, ok := d.(*device); !ok || rd.mc != c.mc {
		return nil, ocl.Errf(ocl.ErrInvalidDevice, "device does not belong to this context")
	}
	id, err := callID(c.mc, wire.MethodCreateQueue, c.id)
	if err != nil {
		return nil, err
	}
	q := &commandQueue{ctx: c, id: id.ID}
	c.mu.Lock()
	c.queues = append(c.queues, q)
	c.mu.Unlock()
	return q, nil
}

// CreateBuffer implements ocl.Context. Buffer creation (with optional
// initialization data) is a synchronous context/information method.
//
// Full-size read-only payloads go through the manager's content-addressed
// buffer cache when the session speaks wire.ProtoVersionReuse: a hash-only
// probe first (a resident hit makes the create a metadata-only RPC — the
// paper's repeated CNN weights upload once per board), then the payload
// with its hash on a miss so the next create hits.
func (c *context) CreateBuffer(flags ocl.MemFlags, size int, hostData []byte) (ocl.Buffer, error) {
	if !flags.Valid() {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "buffer flags %#x", uint32(flags))
	}
	if size <= 0 || (hostData != nil && len(hostData) > size) {
		return nil, ocl.Errf(ocl.ErrInvalidBufferSize, "size %d, init %d", size, len(hostData))
	}
	mc := c.mc
	var hash uint64
	if mc.reuseWire() && !mc.cfg.DisableContentCache &&
		flags == ocl.MemReadOnly && len(hostData) == size {
		// Cacheable: contents fully determined by (hash, size) and nobody
		// may write the buffer afterwards.
		hash = datacache.ContentHash64(hostData)
		e := wire.GetEncoder(40)
		(&wire.CreateBufferRequest{
			Context: c.id, Flags: uint32(flags), Size: int64(size), ContentHash: hash,
		}).Encode(e)
		resp, err := mc.rpc.Call(wire.MethodCreateBuffer, e.Bytes())
		e.Release()
		if err != nil {
			return nil, err
		}
		var id wire.IDResponse
		id.Decode(wire.NewDecoder(resp))
		wire.PutBuf(resp)
		if id.ID != 0 { // cache hit: the payload never moved
			return &buffer{ctx: c, id: id.ID, size: size, flags: flags, shared: true}, nil
		}
	}
	req := wire.CreateBufferRequest{
		Context: c.id, Flags: uint32(flags), Size: int64(size),
		InitData: hostData, ContentHash: hash,
	}
	// The init payload rides as its own segment between the encoded head
	// (which ends with the payload length) and the content-hash tail, so
	// the transport vectors the user's bytes straight into the socket.
	e := wire.GetEncoder(48)
	req.EncodeHead(e)
	head := e.Len()
	req.EncodeTail(e)
	buf := e.Bytes()
	resp, err := mc.rpc.Call(wire.MethodCreateBuffer, buf[:head], hostData, buf[head:])
	e.Release()
	if err != nil {
		return nil, err
	}
	var id wire.IDResponse
	id.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)
	return &buffer{ctx: c, id: id.ID, size: size, flags: flags, shared: hash != 0}, nil
}

// CreateProgramWithBinary implements ocl.Context.
func (c *context) CreateProgramWithBinary(d ocl.Device, binary []byte) (ocl.Program, error) {
	if rd, ok := d.(*device); !ok || rd.mc != c.mc {
		return nil, ocl.Errf(ocl.ErrInvalidDevice, "device does not belong to this context")
	}
	e := wire.GetEncoder(16)
	e.U64(c.id)
	e.U32(uint32(len(binary)))
	resp, err := c.mc.rpc.Call(wire.MethodCreateProgram, e.Bytes(), binary)
	e.Release()
	if err != nil {
		return nil, err
	}
	var pr wire.CreateProgramResponse
	pr.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)
	return &program{ctx: c, id: pr.ID, kernels: pr.Kernels}, nil
}

// Release implements ocl.Context.
func (c *context) Release() error {
	c.mu.Lock()
	queues := append([]*commandQueue(nil), c.queues...)
	c.queues = nil
	c.mu.Unlock()
	for _, q := range queues {
		q.Release()
	}
	_, err := callID(c.mc, wire.MethodReleaseContext, c.id)
	return err
}

// flushAll seals the current task on every queue of the context; waits on
// cross-queue event dependencies rely on it.
func (c *context) flushAll() {
	c.mu.Lock()
	queues := append([]*commandQueue(nil), c.queues...)
	c.mu.Unlock()
	for _, q := range queues {
		q.Flush()
	}
}

// buffer implements ocl.Buffer.
type buffer struct {
	ctx   *context
	id    uint64
	size  int
	flags ocl.MemFlags
	// shared marks a handle backed by the manager's content-addressed
	// cache: the device bytes may be shared with other sessions, so
	// writes and copy destinations are rejected client-side.
	shared bool
}

// Size implements ocl.Buffer.
func (b *buffer) Size() int { return b.size }

// Flags implements ocl.Buffer.
func (b *buffer) Flags() ocl.MemFlags { return b.flags }

// Release implements ocl.Buffer.
func (b *buffer) Release() error {
	_, err := callID(b.ctx.mc, wire.MethodReleaseBuffer, b.id)
	return err
}

// program implements ocl.Program.
type program struct {
	ctx     *context
	id      uint64
	kernels []string
}

// Build implements ocl.Program: the board reconfiguration request, the one
// blocking context/information method. Its deadline is derived from the
// manager's advertised reprogramming cost — the generic call timeout can
// fire mid-flash on slow boards, leaving the library believing a build
// failed that the board completed.
func (p *program) Build(options string) error {
	mc := p.ctx.mc
	e := wire.GetEncoder(8)
	(&wire.IDRequest{ID: p.id}).Encode(e)
	resp, err := mc.rpc.CallWithTimeout(wire.MethodBuildProgram, mc.buildTimeout(), e.Bytes())
	e.Release()
	if err != nil {
		return err
	}
	wire.PutBuf(resp)
	return nil
}

// KernelNames implements ocl.Program.
func (p *program) KernelNames() []string { return append([]string(nil), p.kernels...) }

// CreateKernel implements ocl.Program.
func (p *program) CreateKernel(name string) (ocl.Kernel, error) {
	e := wire.GetEncoder(32)
	(&wire.CreateKernelRequest{Program: p.id, Name: name}).Encode(e)
	resp, err := p.ctx.mc.rpc.Call(wire.MethodCreateKernel, e.Bytes())
	e.Release()
	if err != nil {
		return nil, err
	}
	var id wire.IDResponse
	id.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)
	return &kernel{ctx: p.ctx, id: id.ID, name: name}, nil
}

// Release implements ocl.Program.
func (p *program) Release() error { return nil }

// kernel implements ocl.Kernel.
type kernel struct {
	ctx  *context
	id   uint64
	name string
}

// Name implements ocl.Kernel.
func (k *kernel) Name() string { return k.name }

// SetArg implements ocl.Kernel.
func (k *kernel) SetArg(i int, value any) error {
	if i < 0 {
		return ocl.Errf(ocl.ErrInvalidArgIndex, "index %d", i)
	}
	var arg ocl.Arg
	if b, ok := value.(ocl.Buffer); ok {
		rb, ok := b.(*buffer)
		if !ok || rb.ctx != k.ctx {
			return ocl.Errf(ocl.ErrInvalidMemObject, "buffer from a different context")
		}
		arg = ocl.BufferArg(rb.id)
	} else {
		var err error
		arg, err = ocl.PackArg(value)
		if err != nil {
			return err
		}
	}
	e := wire.GetEncoder(32)
	(&wire.SetKernelArgRequest{Kernel: k.id, Index: uint32(i), Arg: arg}).Encode(e)
	resp, err := k.ctx.mc.rpc.Call(wire.MethodSetKernelArg, e.Bytes())
	e.Release()
	wire.PutBuf(resp)
	return err
}

// Release implements ocl.Kernel.
func (k *kernel) Release() error {
	_, err := callID(k.ctx.mc, wire.MethodReleaseKernel, k.id)
	return err
}

// commandQueue implements ocl.CommandQueue. Operations enqueued between
// flushes form the client's current task on the manager.
type commandQueue struct {
	ctx *context
	id  uint64

	mu        sync.Mutex
	events    []*remoteEvent // not yet known-complete
	unflushed []*remoteEvent // members of the current task
	deadline  time.Duration  // soft completion hint attached to flushed tasks
	released  bool

	// Tracing state of the current (unflushed) task. Sampling is decided
	// once per task, at its first operation; every operation then shares
	// the trace with the task's root span as parent. Flush resets it.
	traceLive bool        // sampling decided for the current task
	trace     obs.TraceID // zero: task unsampled
	taskSpan  obs.SpanID  // the task's root span
	taskStart time.Time
	// flightKey keys the current task's always-on flight-recorder skeleton:
	// the sampled trace when one exists, a synthetic local key otherwise.
	flightKey obs.TraceID
	// flightEvs accumulates the current task's client-side flight
	// milestones under q.mu; Flush hands them to the task's terminal
	// event, whose completion notification applies them in one batched
	// recorder call (one recorder-mutex acquisition per task — that mutex
	// bounces between the application and connection goroutines).
	flightEvs []flightrec.Event
}

// beginOp joins an operation to the current task's trace and flight,
// deciding trace sampling at the task's first operation. It stamps the
// event's flight identity (always on) and returns the operation's
// trace/span identity and issue time — all zero when tracing is off or
// the task is unsampled.
func (q *commandQueue) beginOp(ev *remoteEvent) (trace obs.TraceID, span, parent obs.SpanID, issued time.Time) {
	mc := q.ctx.mc
	tr := mc.tracer
	q.mu.Lock()
	if !q.traceLive {
		q.traceLive = true
		q.taskStart = time.Now()
		if tr != nil {
			q.trace = tr.Sample()
			if q.trace != 0 {
				q.taskSpan = tr.NewSpan()
			}
		}
		// First op of the task: reserve the flight key (sampled trace when
		// one exists, synthetic otherwise). Alloc is one atomic — the
		// flight itself is admitted by the terminal notification's
		// CompleteWith, together with the batched milestones.
		q.flightKey = mc.flight.Alloc(q.trace)
	}
	trace, parent = q.trace, q.taskSpan
	ev.flight, ev.taskStart = q.flightKey, q.taskStart
	q.mu.Unlock()
	if trace == 0 {
		return 0, 0, 0, time.Time{}
	}
	return trace, tr.NewSpan(), parent, time.Now()
}

// DeadlineHinter is the optional command-queue extension for attaching a
// soft completion deadline to flushed tasks. Managers running the
// deadline discipline order tasks by the hint (earliest first); other
// disciplines — and managers predating the field — ignore it, so hinting
// is always safe.
type DeadlineHinter interface {
	// SetDeadlineHint attaches d (relative to submission) to every task
	// this queue flushes from now on; zero clears the hint.
	SetDeadlineHint(d time.Duration)
}

// SetDeadlineHint implements DeadlineHinter.
func (q *commandQueue) SetDeadlineHint(d time.Duration) {
	q.mu.Lock()
	if d < 0 {
		d = 0
	}
	q.deadline = d
	q.mu.Unlock()
}

// track registers an event as in-flight and part of the current task.
func (q *commandQueue) track(ev *remoteEvent) {
	ev.queue = q
	q.mu.Lock()
	q.events = append(q.events, ev)
	q.unflushed = append(q.unflushed, ev)
	q.mu.Unlock()
}

// waitDependencies implements event wait lists. In-order queues already
// serialize same-queue dependencies; cross-queue dependencies are honored
// by flushing the context and waiting, which keeps the in-order guarantee
// of this queue intact at the cost of host-side synchronization.
func (q *commandQueue) waitDependencies(waitList []ocl.Event) error {
	if len(waitList) == 0 {
		return nil
	}
	q.ctx.flushAll()
	return ocl.WaitForEvents(waitList...)
}

// EnqueueWriteBuffer implements ocl.CommandQueue.
func (q *commandQueue) EnqueueWriteBuffer(b ocl.Buffer, blocking bool, offset int, data []byte, waitList []ocl.Event) (ocl.Event, error) {
	rb, ok := b.(*buffer)
	if !ok || rb.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "buffer from a different context")
	}
	if offset < 0 || offset+len(data) > rb.size {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "write range [%d,%d) on buffer of %d", offset, offset+len(data), rb.size)
	}
	if rb.shared {
		return nil, ocl.Errf(ocl.ErrInvalidOperation,
			"buffer is shared through the manager's content cache and immutable")
	}
	if err := q.waitDependencies(waitList); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return ocl.CompletedEvent(ocl.CommandWriteBuffer), nil
	}
	mc := q.ctx.mc
	tag := mc.newTag()
	ev := mc.register(ocl.CommandWriteBuffer, tag)
	req := wire.EnqueueWriteRequest{
		Tag:    tag,
		Queue:  q.id,
		Buffer: rb.id,
		Offset: int64(offset),
		Via:    wire.ViaInline,
		Data:   data,
	}
	// Prefer the shared-memory path: one staging copy into the segment.
	if mc.arena != nil {
		if off, err := mc.arena.Alloc(int64(len(data))); err == nil {
			dst, rerr := mc.seg.Range(off, int64(len(data)))
			if rerr == nil {
				copy(dst, data)
				req.Via = wire.ViaShm
				req.ShmOff = off
				req.ShmLen = int64(len(data))
				req.Data = nil
				ev.shmOff, ev.shmLen, ev.freeArena = off, int64(len(data)), true
			} else {
				mc.arena.Free(off, int64(len(data)))
			}
		}
	}
	trace, span, parent, issued := q.beginOp(ev)
	ev.trace, ev.span, ev.parent, ev.issued = trace, span, parent, issued
	if trace != 0 && mc.traceWire() {
		req.TraceID, req.SpanID = uint64(trace), uint64(span)
	}
	mc.enroll(ev)
	// EncodeHead + a separate data segment: for the inline path the user's
	// bytes go from their slice straight into the socket (writev), never
	// through an intermediate concatenation. The trace tail lands in the
	// same pooled buffer, after the head, and rides as a third segment.
	e := wire.GetEncoder(64)
	req.EncodeHead(e)
	head := e.Len()
	req.EncodeTail(e)
	buf := e.Bytes()
	sendStart := time.Now()
	err := mc.rpc.Send(wire.MethodEnqueueWrite, buf[:head], req.Data, buf[head:])
	if err == nil {
		// The client side of the upload stage: wire-send of the payload
		// (the manager's device-write is the other half). Joins the task's
		// milestone batch rather than paying the recorder mutex here.
		sendEnd := time.Now()
		q.mu.Lock()
		q.flightEvs = append(q.flightEvs, flightrec.Event{
			Kind: flightrec.KindUpload, Dur: sendEnd.Sub(sendStart), Detail: "wire-send", Time: sendEnd})
		q.mu.Unlock()
		if trace != 0 {
			mc.tracer.End(trace, mc.tracer.NewSpan(), span, "send", "", sendStart)
		}
	}
	e.Release()
	if err != nil {
		mc.pending.Delete(tag)
		ev.releaseStaging(mc)
		return nil, err
	}
	q.track(ev)
	if blocking {
		q.Flush()
		if err := ev.Wait(); err != nil {
			return ev, err
		}
	}
	return ev, nil
}

// EnqueueReadBuffer implements ocl.CommandQueue.
func (q *commandQueue) EnqueueReadBuffer(b ocl.Buffer, blocking bool, offset int, dst []byte, waitList []ocl.Event) (ocl.Event, error) {
	rb, ok := b.(*buffer)
	if !ok || rb.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "buffer from a different context")
	}
	if offset < 0 || offset+len(dst) > rb.size {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "read range [%d,%d) on buffer of %d", offset, offset+len(dst), rb.size)
	}
	if err := q.waitDependencies(waitList); err != nil {
		return nil, err
	}
	if len(dst) == 0 {
		return ocl.CompletedEvent(ocl.CommandReadBuffer), nil
	}
	mc := q.ctx.mc
	tag := mc.newTag()
	ev := mc.register(ocl.CommandReadBuffer, tag)
	ev.dst = dst
	req := wire.EnqueueReadRequest{
		Tag:    tag,
		Queue:  q.id,
		Buffer: rb.id,
		Offset: int64(offset),
		Length: int64(len(dst)),
		Via:    wire.ViaInline,
	}
	if mc.arena != nil {
		if off, err := mc.arena.Alloc(int64(len(dst))); err == nil {
			req.Via = wire.ViaShm
			req.ShmOff = off
			ev.shmOff, ev.shmLen, ev.freeArena = off, int64(len(dst)), true
		}
	}
	trace, span, parent, issued := q.beginOp(ev)
	ev.trace, ev.span, ev.parent, ev.issued = trace, span, parent, issued
	if trace != 0 && mc.traceWire() {
		req.TraceID, req.SpanID = uint64(trace), uint64(span)
	}
	mc.enroll(ev)
	e := wire.GetEncoder(64)
	req.Encode(e)
	var sendStart time.Time
	if trace != 0 {
		sendStart = time.Now()
	}
	err := mc.rpc.Send(wire.MethodEnqueueRead, e.Bytes())
	if err == nil && trace != 0 {
		mc.tracer.End(trace, mc.tracer.NewSpan(), span, "send", "", sendStart)
	}
	e.Release()
	if err != nil {
		mc.pending.Delete(tag)
		ev.releaseStaging(mc)
		return nil, err
	}
	q.track(ev)
	if blocking {
		q.Flush()
		if err := ev.Wait(); err != nil {
			return ev, err
		}
	}
	return ev, nil
}

// EnqueueCopyBuffer implements ocl.CommandQueue: a device-to-device move
// that joins the current task without routing the bytes through the
// client. Against managers predating wire.ProtoVersionReuse it degrades to
// a read+write through host memory — transparent, just not zero-copy.
func (q *commandQueue) EnqueueCopyBuffer(src, dst ocl.Buffer, srcOffset, dstOffset, n int, waitList []ocl.Event) (ocl.Event, error) {
	rs, ok := src.(*buffer)
	if !ok || rs.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "src buffer from a different context")
	}
	rd, ok := dst.(*buffer)
	if !ok || rd.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "dst buffer from a different context")
	}
	if n < 0 || srcOffset < 0 || srcOffset+n > rs.size || dstOffset < 0 || dstOffset+n > rd.size {
		return nil, ocl.Errf(ocl.ErrInvalidValue,
			"copy range: src [%d,%d) of %d, dst [%d,%d) of %d",
			srcOffset, srcOffset+n, rs.size, dstOffset, dstOffset+n, rd.size)
	}
	if rd.shared {
		return nil, ocl.Errf(ocl.ErrInvalidOperation,
			"buffer is shared through the manager's content cache and immutable")
	}
	if err := q.waitDependencies(waitList); err != nil {
		return nil, err
	}
	if n == 0 {
		return ocl.CompletedEvent(ocl.CommandCopyBuffer), nil
	}
	mc := q.ctx.mc
	if !mc.reuseWire() {
		// Pre-reuse manager: emulate through the client. A blocking read
		// into a temp keeps the in-order semantics; the write joins the
		// current task like the wire copy would.
		tmp := make([]byte, n)
		if _, err := q.EnqueueReadBuffer(rs, true, srcOffset, tmp, nil); err != nil {
			return nil, err
		}
		return q.EnqueueWriteBuffer(rd, false, dstOffset, tmp, nil)
	}
	tag := mc.newTag()
	ev := mc.register(ocl.CommandCopyBuffer, tag)
	req := wire.EnqueueCopyRequest{
		Tag:       tag,
		Queue:     q.id,
		SrcBuffer: rs.id,
		DstBuffer: rd.id,
		SrcOffset: int64(srcOffset),
		DstOffset: int64(dstOffset),
		Length:    int64(n),
	}
	trace, span, parent, issued := q.beginOp(ev)
	ev.trace, ev.span, ev.parent, ev.issued = trace, span, parent, issued
	if trace != 0 && mc.traceWire() {
		req.TraceID, req.SpanID = uint64(trace), uint64(span)
	}
	mc.enroll(ev)
	e := wire.GetEncoder(64)
	req.Encode(e)
	var sendStart time.Time
	if trace != 0 {
		sendStart = time.Now()
	}
	err := mc.rpc.Send(wire.MethodEnqueueCopy, e.Bytes())
	if err == nil && trace != 0 {
		mc.tracer.End(trace, mc.tracer.NewSpan(), span, "send", "", sendStart)
	}
	e.Release()
	if err != nil {
		mc.pending.Delete(tag)
		return nil, err
	}
	q.track(ev)
	return ev, nil
}

// EnqueueNDRangeKernel implements ocl.CommandQueue.
func (q *commandQueue) EnqueueNDRangeKernel(k ocl.Kernel, global, local []int, waitList []ocl.Event) (ocl.Event, error) {
	rk, ok := k.(*kernel)
	if !ok || rk.ctx != q.ctx {
		return nil, ocl.Errf(ocl.ErrInvalidKernel, "kernel from a different context")
	}
	if err := q.waitDependencies(waitList); err != nil {
		return nil, err
	}
	toI64 := func(v []int) []int64 {
		if v == nil {
			return nil
		}
		out := make([]int64, len(v))
		for i, x := range v {
			out[i] = int64(x)
		}
		return out
	}
	mc := q.ctx.mc
	tag := mc.newTag()
	ev := mc.register(ocl.CommandNDRangeKernel, tag)
	req := wire.EnqueueKernelRequest{
		Tag:    tag,
		Queue:  q.id,
		Kernel: rk.id,
		Global: toI64(global),
		Local:  toI64(local),
	}
	trace, span, parent, issued := q.beginOp(ev)
	ev.trace, ev.span, ev.parent, ev.issued = trace, span, parent, issued
	if trace != 0 && mc.traceWire() {
		req.TraceID, req.SpanID = uint64(trace), uint64(span)
	}
	mc.enroll(ev)
	e := wire.GetEncoder(64)
	req.Encode(e)
	var sendStart time.Time
	if trace != 0 {
		sendStart = time.Now()
	}
	err := mc.rpc.Send(wire.MethodEnqueueKernel, e.Bytes())
	if err == nil && trace != 0 {
		mc.tracer.End(trace, mc.tracer.NewSpan(), span, "send", "", sendStart)
	}
	e.Release()
	if err != nil {
		mc.pending.Delete(tag)
		return nil, err
	}
	q.track(ev)
	return ev, nil
}

// EnqueueTask implements ocl.CommandQueue: a single work-item launch, the
// usual form for Intel FPGA pipeline kernels.
func (q *commandQueue) EnqueueTask(k ocl.Kernel, waitList []ocl.Event) (ocl.Event, error) {
	return q.EnqueueNDRangeKernel(k, []int{1}, nil, waitList)
}

// EnqueueMarker implements ocl.CommandQueue client-side: the marker
// completes when every operation currently in flight on the queue has
// terminated.
func (q *commandQueue) EnqueueMarker() (ocl.Event, error) {
	q.mu.Lock()
	snapshot := append([]*remoteEvent(nil), q.events...)
	q.mu.Unlock()
	if len(snapshot) == 0 {
		return ocl.CompletedEvent(ocl.CommandMarker), nil
	}
	marker := ocl.NewEvent(ocl.CommandMarker)
	go func() {
		for _, ev := range snapshot {
			ev.Wait()
		}
		marker.Complete()
	}()
	return marker, nil
}

// EnqueueBarrier implements ocl.CommandQueue. Like blocking calls and
// clFinish/clFlush, a barrier seals the current task (paper Section
// III-B); in-order task execution then provides the barrier semantics.
func (q *commandQueue) EnqueueBarrier() error { return q.Flush() }

// ensureFlushed seals the current task if ev belongs to it, so a Wait on
// the event can terminate.
func (q *commandQueue) ensureFlushed(ev *remoteEvent) {
	q.mu.Lock()
	member := false
	for _, e := range q.unflushed {
		if e == ev {
			member = true
			break
		}
	}
	q.mu.Unlock()
	if member {
		q.Flush()
	}
}

// Flush implements ocl.CommandQueue: it seals the current
// multi-operation task and submits it to the manager's central queue.
// Sealing also ends the task's trace: the Flush frame carries the trace
// identity (so the manager parents its spans under the task root) and the
// root "task" span — first enqueue through flush — is recorded here.
func (q *commandQueue) Flush() error {
	q.mu.Lock()
	hadOps := len(q.unflushed) > 0
	if hadOps {
		// Sealing the task fixes its final operation: that op's terminal
		// notification completes the flight (client-observed total) and
		// applies the milestones batched on the queue. Safe to set here —
		// the manager only executes flushed tasks, so the terminal
		// notification cannot race this store.
		last := q.unflushed[len(q.unflushed)-1]
		last.flightEvs = q.flightEvs
		q.flightEvs = nil
		last.taskEnd.Store(true)
	}
	q.unflushed = q.unflushed[:0]
	deadline := q.deadline
	trace, taskSpan, taskStart := q.trace, q.taskSpan, q.taskStart
	q.traceLive, q.trace, q.taskSpan = false, 0, 0
	q.flightKey = 0
	q.mu.Unlock()
	if !hadOps {
		return nil
	}
	mc := q.ctx.mc
	req := wire.FlushRequest{Queue: q.id, DeadlineMillis: uint32(deadline / time.Millisecond)}
	if trace != 0 && mc.traceWire() {
		req.TraceID, req.SpanID = uint64(trace), uint64(taskSpan)
	}
	e := wire.GetEncoder(32)
	req.Encode(e)
	err := mc.rpc.Send(wire.MethodFlush, e.Bytes())
	e.Release()
	if trace != 0 {
		mc.tracer.End(trace, taskSpan, 0, "task", "", taskStart)
	}
	// Hot path: one nil/level check per flushed task when logging is off.
	if mc.log.Enabled(logx.LevelDebug) {
		mc.log.Debug("task flushed", "queue", q.id, "manager", mc.addr,
			"err", err, "trace", trace)
	}
	return err
}

// Finish implements ocl.CommandQueue: flush, then wait for every
// submitted operation.
func (q *commandQueue) Finish() error {
	if err := q.Flush(); err != nil {
		return err
	}
	q.mu.Lock()
	snapshot := append([]*remoteEvent(nil), q.events...)
	q.mu.Unlock()
	var firstErr error
	for _, ev := range snapshot {
		if err := ev.BaseEvent.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Prune completed events so long-lived queues do not grow unbounded.
	q.mu.Lock()
	kept := q.events[:0]
	for _, ev := range q.events {
		if !ev.Status().Done() {
			kept = append(kept, ev)
		}
	}
	q.events = kept
	q.mu.Unlock()
	return firstErr
}

// Release implements ocl.CommandQueue.
func (q *commandQueue) Release() error {
	q.mu.Lock()
	if q.released {
		q.mu.Unlock()
		return nil
	}
	q.released = true
	q.mu.Unlock()
	if err := q.Finish(); err != nil {
		return err
	}
	_, err := callID(q.ctx.mc, wire.MethodReleaseQueue, q.id)
	return err
}

// Compile-time checks: the Remote OpenCL Library implements the full ocl
// API surface, the transparency contract shared with the native runtime.
var (
	_ ocl.Client         = (*Client)(nil)
	_ ocl.Platform       = (*platform)(nil)
	_ ocl.Device         = (*device)(nil)
	_ ocl.Context        = (*context)(nil)
	_ ocl.Buffer         = (*buffer)(nil)
	_ ocl.Program        = (*program)(nil)
	_ ocl.Kernel         = (*kernel)(nil)
	_ ocl.CommandQueue   = (*commandQueue)(nil)
	_ ocl.ProfilingEvent = (*remoteEvent)(nil)
)
