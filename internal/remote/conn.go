package remote

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/flightrec"
	"blastfunction/internal/logx"
	"blastfunction/internal/model"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/shm"
	"blastfunction/internal/wire"
)

// managerConn is the library's connection to one Device Manager: the RPC
// client, the negotiated data path, the tag table of in-flight events and
// the connection thread that drains the completion queue.
type managerConn struct {
	cfg  *Config
	addr string
	rpc  *rpc.Client

	sessionID uint64
	node      string
	proto     uint32 // protocol revision negotiated at Hello
	info      wire.DeviceInfoResponse

	seg   *shm.Segment
	arena *shm.Arena
	mode  model.Transport

	tags    atomic.Uint64
	pending sync.Map // tag uint64 -> *remoteEvent

	// tracer records client-side spans; nil when tracing is disabled.
	tracer *obs.Tracer
	// log records structured events; nil-safe.
	log *logx.Logger
	// flight is the Client's always-on flight recorder (nil-safe).
	// connFlight is the connection's synthetic session flight: lease
	// renewals and connection-level failures land there, task milestones
	// on their own per-task flights.
	flight     *flightrec.Recorder
	connFlight obs.TraceID

	// lease is the session lease the manager advertised at Hello (zero:
	// leases disabled); stopBeat stops the heartbeat goroutine renewing it.
	lease    time.Duration
	stopBeat chan struct{}

	closedMu sync.Mutex
	closed   bool
}

func dialManager(cfg *Config, addr string) (*managerConn, error) {
	var cl *rpc.Client
	if cfg.DialConn != nil {
		conn, err := cfg.DialConn(addr)
		if err != nil {
			return nil, err
		}
		cl = rpc.NewClient(conn)
	} else {
		var err error
		cl, err = rpc.Dial(addr)
		if err != nil {
			return nil, err
		}
	}
	cl.CallTimeout = cfg.CallTimeout
	mc := &managerConn{cfg: cfg, addr: addr, rpc: cl, mode: model.TransportGRPC, tracer: cfg.Tracer, log: cfg.Log, flight: cfg.flight}
	mc.connFlight = mc.flight.Begin(0, cfg.ClientName)

	// Hello: open the session. Not retried — a timed-out Hello may still
	// have created a session on the manager, and retrying would leak it.
	e := wire.GetEncoder(64)
	(&wire.HelloRequest{ClientName: cfg.ClientName, ProtoVersion: wire.ProtoVersion, Weight: uint32(max(cfg.Weight, 0))}).Encode(e)
	resp, err := cl.Call(wire.MethodHello, e.Bytes())
	e.Release()
	if err != nil {
		cl.Close()
		return nil, err
	}
	var hello wire.HelloResponse
	hello.Decode(wire.NewDecoder(resp))
	mc.sessionID = hello.SessionID
	mc.node = hello.Node
	mc.proto = hello.Proto
	mc.lease = time.Duration(hello.LeaseMillis) * time.Millisecond
	wire.PutBuf(resp)

	// Device information for the platform list. Idempotent, so a slow
	// manager gets retried with jittered backoff; the session ID makes the
	// schedule deterministic per session.
	resp, err = cl.CallRetry(rpc.DefaultBackoff(mc.sessionID), 0, wire.MethodDeviceInfo, nil)
	if err != nil {
		cl.Close()
		return nil, err
	}
	mc.info.Decode(wire.NewDecoder(resp))
	wire.PutBuf(resp)

	// Negotiate the data path. Shared memory requires co-location: the
	// manager must report the client's node (or the check is disabled).
	wantShm := cfg.Transport != TransportGRPC
	colocated := cfg.Node == "" || cfg.Node == mc.node
	if wantShm && colocated {
		if err := mc.setupShm(); err != nil {
			if cfg.Transport == TransportShm {
				cl.Close()
				return nil, err
			}
			// TransportAuto degrades to the RPC data path, like the paper
			// when "it is not possible to create a shared memory area".
			mc.log.Info("shared memory unavailable, using rpc data path",
				"manager", addr, "err", err)
		}
	} else if cfg.Transport == TransportShm {
		cl.Close()
		return nil, ocl.Errf(ocl.ErrInvalidOperation,
			"shm transport requires co-location (client node %q, manager node %q)", cfg.Node, mc.node)
	}

	mc.log.Debug("connected to manager",
		"manager", addr, "node", mc.node, "session", mc.sessionID,
		"proto", int(mc.proto), "transport", mc.mode.String())
	go mc.connectionThread()
	if mc.lease > 0 {
		mc.stopBeat = make(chan struct{})
		go mc.heartbeatLoop()
	}
	return mc, nil
}

// heartbeatLoop renews the session lease. A third of the lease gives the
// manager two missed beats of slack before expiry, mirroring common lease
// protocols. A deadline-expired beat is retried at the next tick (the lease
// has slack for that); a dead connection ends the loop — reconnection is a
// new session.
func (mc *managerConn) heartbeatLoop() {
	t := time.NewTicker(mc.lease / 3)
	defer t.Stop()
	for {
		select {
		case <-mc.stopBeat:
			return
		case <-t.C:
			body, err := mc.rpc.CallWithTimeout(wire.MethodHeartbeat, mc.lease/3)
			wire.PutBuf(body)
			if err != nil && (errors.Is(err, rpc.ErrManagerDown) || errors.Is(err, rpc.ErrClosed)) {
				mc.flight.Record(mc.connFlight, flightrec.Event{
					Kind: flightrec.KindFailure, Detail: "heartbeat stopped: manager connection down"})
				mc.log.Warn("heartbeat stopped: manager connection down", "manager", mc.addr)
				return
			}
			// Renewals coalesce into one counted milestone on the
			// connection's flight.
			mc.flight.Record(mc.connFlight, flightrec.Event{Kind: flightrec.KindLease})
		}
	}
}

func (mc *managerConn) setupShm() error {
	seg, err := shm.Create(mc.cfg.ShmDir, mc.cfg.ShmBytes)
	if err != nil {
		return err
	}
	e := wire.GetEncoder(64)
	(&wire.SetupShmRequest{Path: seg.Path(), Size: seg.Size()}).Encode(e)
	resp, err := mc.rpc.Call(wire.MethodSetupShm, e.Bytes())
	e.Release()
	wire.PutBuf(resp)
	if err != nil {
		seg.Close()
		return err
	}
	mc.seg = seg
	mc.arena = shm.NewArena(seg.Size())
	mc.mode = model.TransportShm
	return nil
}

func (mc *managerConn) transport() model.Transport { return mc.mode }

// buildTimeout sizes the BuildProgram deadline: the configured call
// timeout plus twice the manager's advertised reprogramming cost (queue
// wait behind another flash plus the flash itself). Managers that do not
// advertise fall back to the plain call timeout.
func (mc *managerConn) buildTimeout() time.Duration {
	base := mc.cfg.CallTimeout
	if base <= 0 {
		base = rpc.DefaultCallTimeout
	}
	if ms := mc.info.ReconfigMillis; ms > 0 {
		return base + 2*time.Duration(ms)*time.Millisecond
	}
	return base
}

// traceWire reports whether trace IDs may be put on the wire: the
// session must have negotiated the trace-capable protocol revision.
// Client-side spans are recorded regardless — against an old manager the
// timeline simply lacks the manager stages.
func (mc *managerConn) traceWire() bool { return mc.proto >= wire.ProtoVersionTrace }

// reuseWire reports whether the session may use the data-plane reuse
// features (content-hashed creates, device-to-device copies): the manager
// must have negotiated the reuse-capable protocol revision.
func (mc *managerConn) reuseWire() bool { return mc.proto >= wire.ProtoVersionReuse }

func (mc *managerConn) isClosed() bool {
	mc.closedMu.Lock()
	defer mc.closedMu.Unlock()
	return mc.closed
}

func (mc *managerConn) close() error {
	mc.closedMu.Lock()
	if mc.closed {
		mc.closedMu.Unlock()
		return nil
	}
	mc.closed = true
	mc.closedMu.Unlock()
	if mc.stopBeat != nil {
		close(mc.stopBeat)
	}
	err := mc.rpc.Close()
	if mc.seg != nil {
		mc.seg.Close()
	}
	return err
}

// connectionThread is the paper's connection thread: it pulls tags from
// the completion queue, retrieves the corresponding events and calls their
// state machines (steps 5 and 6 of Figure 2). Batch frames (one per task
// under proto v2) unwind into the same per-notification flow, preserving
// the state machine unchanged. Frame payloads are pooled: decoded Data
// aliases them, which is safe because finishRead copies read results into
// the user buffer synchronously inside machine.
func (mc *managerConn) connectionThread() {
	var d wire.Decoder
	var n wire.OpNotification
	legacy := mc.proto < wire.ProtoVersionBatch // v1 managers send the old field order
	for note := range mc.rpc.Notifications() {
		d.Reset(note.Payload)
		count := 1
		if note.Batch {
			count = int(d.U32())
		}
		for i := 0; i < count; i++ {
			if legacy {
				n.DecodeV1(&d)
			} else {
				n.Decode(&d)
			}
			if d.Err() != nil {
				break // malformed notification; drop rather than crash
			}
			mc.dispatch(&n)
		}
		wire.PutBuf(note.Payload)
	}
	// Connection gone: fail everything still in flight, promptly and with
	// the transport sentinel attached so callers can errors.Is the failure
	// against rpc.ErrManagerDown and trigger fail-over instead of treating
	// it like an application error.
	lost := 0
	failedFlights := make(map[obs.TraceID]bool)
	mc.pending.Range(func(k, v any) bool {
		ev := v.(*remoteEvent)
		lost++
		if ev.trace != 0 {
			// Correlate the connection loss with every traced in-flight
			// operation it kills.
			mc.log.Warn("in-flight operation failed: connection lost",
				"manager", mc.addr, "trace", ev.trace)
		}
		if ev.flight != 0 && !failedFlights[ev.flight] {
			// One terminal milestone per task flight, not one per op.
			failedFlights[ev.flight] = true
			mc.flight.CompleteWith(ev.flight, mc.cfg.ClientName,
				append(ev.flightEvs, flightrec.Event{Kind: flightrec.KindFailure, Detail: "connection to manager lost"}),
				time.Since(ev.taskStart), true, "connection lost")
		}
		ev.Fail(ocl.ErrfCause(ocl.ErrDeviceNotAvailable, rpc.ErrManagerDown,
			"connection to %s lost", mc.addr))
		mc.pending.Delete(k)
		return true
	})
	if lost > 0 {
		mc.flight.Record(mc.connFlight, flightrec.Event{
			Kind: flightrec.KindFailure, Detail: "connection lost with operations in flight"})
		mc.flight.MarkNotable(mc.connFlight, "connection lost")
		mc.log.Warn("connection to manager lost", "manager", mc.addr, "in_flight", lost)
	}
}

// dispatch routes one notification to its event's state machine.
func (mc *managerConn) dispatch(n *wire.OpNotification) {
	v, ok := mc.pending.Load(n.Tag)
	if !ok {
		return // event already failed locally (e.g. connection race)
	}
	ev := v.(*remoteEvent)
	ev.machine(mc, n)
	if ev.Status().Done() {
		mc.pending.Delete(n.Tag)
	}
}

// newTag allocates a fresh event tag. Tags start at 1; 0 is reserved.
func (mc *managerConn) newTag() uint64 { return mc.tags.Add(1) }

// register creates an event for an enqueue. The caller publishes it with
// enroll once every field is set — publishing here would let concurrent
// readers of mc.pending (the connection thread's teardown sweep) observe
// a half-initialized event.
func (mc *managerConn) register(cmd ocl.CommandType, tag uint64) *remoteEvent {
	return &remoteEvent{BaseEvent: ocl.NewEvent(cmd), tag: tag}
}

// enroll publishes a fully initialized event into the pending map. Must
// happen before the request frame is sent, so the notification path can
// always find its event.
func (mc *managerConn) enroll(ev *remoteEvent) {
	mc.pending.Store(ev.tag, ev)
}

// remoteEvent is an ocl event driven by manager notifications. Its state
// machine mirrors the paper's: INIT is the freshly created event, the
// OpAccepted notification is the FIRST step (command enqueued by the
// manager), OpRunning marks device execution (the BUFFER step carries the
// payload for reads), and OpComplete/OpFailed terminate it.
type remoteEvent struct {
	*ocl.BaseEvent
	tag uint64

	// queue backlink for implicit flush on Wait (clWaitForEvents flushes).
	queue *commandQueue

	// Tracing identity of the operation (zero when untraced): span is the
	// op's "call" span, parent the task's root span, issued the enqueue
	// time the call span starts at.
	trace  obs.TraceID
	span   obs.SpanID
	parent obs.SpanID
	issued time.Time

	// Flight-recorder identity: flight keys the task's always-on milestone
	// skeleton, taskStart anchors the client-observed total. taskEnd marks
	// the task's final op (set by Flush on the application thread, read by
	// the connection thread once the terminal notification arrives — which
	// cannot precede the flush that sent the task). flightEvs rides on the
	// terminal op: the task's client-side milestones, batched on the queue
	// and applied by the completion in one recorder call (written before
	// the taskEnd store, read after its load).
	flight    obs.TraceID
	taskStart time.Time
	taskEnd   atomic.Bool
	flightEvs []flightrec.Event

	// Read completion plumbing.
	dst       []byte // user destination for reads
	shmOff    int64  // staging range for shm transfers
	shmLen    int64
	freeArena bool // release the staging range on completion
}

// Wait implements ocl.Event with clWaitForEvents semantics: waiting on an
// event of an unflushed command implicitly flushes its queue, otherwise
// the wait could never terminate.
func (ev *remoteEvent) Wait() error {
	if q := ev.queue; q != nil {
		q.ensureFlushed(ev)
	}
	return ev.BaseEvent.Wait()
}

// machine advances the event from a manager notification.
func (ev *remoteEvent) machine(mc *managerConn, n *wire.OpNotification) {
	switch n.State {
	case wire.OpAccepted:
		// The deferred-ack wait: enqueue issue until the manager's
		// (possibly flush-batched) Accepted confirmation arrived.
		if ev.trace != 0 {
			mc.tracer.End(ev.trace, mc.tracer.NewSpan(), ev.span, "ack-wait", "", ev.issued)
		}
		ev.SetStatus(ocl.Submitted)
	case wire.OpRunning:
		ev.SetStatus(ocl.Running)
	case wire.OpComplete:
		ev.SetDeviceTime(time.Duration(n.DeviceNanos))
		ev.finishRead(mc, n)
		ev.endCallSpan(mc, "")
		if ev.taskEnd.Load() {
			// Last op of the flush-formed task: the client-observed total is
			// first enqueue through final completion, and the milestones the
			// application goroutine batched on the queue land in the same
			// recorder call.
			mc.flight.CompleteWith(ev.flight, mc.cfg.ClientName, ev.flightEvs, time.Since(ev.taskStart), false, "")
		}
		ev.Complete()
	case wire.OpFailed:
		ev.releaseStaging(mc)
		ev.endCallSpan(mc, "failed")
		mc.log.Warn("operation failed", "manager", mc.addr, "error", n.Error, "trace", ev.trace)
		if ev.taskEnd.Load() {
			mc.flight.CompleteWith(ev.flight, mc.cfg.ClientName,
				append(ev.flightEvs, flightrec.Event{Kind: flightrec.KindFailure, Detail: n.Error}),
				time.Since(ev.taskStart), true, n.Error)
		} else {
			mc.flight.Record(ev.flight, flightrec.Event{
				Kind: flightrec.KindFailure, Detail: n.Error})
			mc.flight.MarkNotable(ev.flight, "operation failed")
		}
		ev.Fail(ocl.Errf(ocl.Status(n.Status), "%s", n.Error))
	}
}

// endCallSpan closes the operation's end-to-end "call" span: enqueue
// issue through terminal notification, the client's view of the whole
// operation.
func (ev *remoteEvent) endCallSpan(mc *managerConn, note string) {
	if ev.trace == 0 {
		return
	}
	if note == "" {
		note = ev.CommandType().String()
	}
	mc.tracer.End(ev.trace, ev.span, ev.parent, "call", note, ev.issued)
}

// finishRead lands read payloads in the user buffer: the BUFFER step of
// the paper's state machine. For the shm path this is the data plane's
// single copy.
func (ev *remoteEvent) finishRead(mc *managerConn, n *wire.OpNotification) {
	if ev.dst != nil {
		if n.Data != nil {
			copy(ev.dst, n.Data)
		} else if n.ShmLen > 0 && mc.seg != nil {
			if src, err := mc.seg.Range(ev.shmOff, n.ShmLen); err == nil {
				copy(ev.dst, src)
			}
		}
	}
	ev.releaseStaging(mc)
}

func (ev *remoteEvent) releaseStaging(mc *managerConn) {
	if ev.freeArena && mc.arena != nil {
		mc.arena.Free(ev.shmOff, ev.shmLen)
		ev.freeArena = false
	}
}
