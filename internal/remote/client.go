// Package remote implements the BlastFunction Remote OpenCL Library.
//
// This is the paper's transparent integration layer (Section III-A): a
// custom OpenCL host-library implementation that applications link instead
// of the vendor runtime. Host code written against package ocl runs
// unchanged; underneath, calls travel to Device Managers over the RPC
// channel, with buffer payloads moved inline (the gRPC path) or through a
// mmap'd shared-memory segment when the manager is co-located.
//
// The asynchronous flow matches the paper's Figure 2: an enqueue creates
// an event, registers it under a fresh tag (the "pointer to the newly
// created event"), and fires an asynchronous request. The manager's
// notifications land in the connection's completion queue; the connection
// thread pulls each tag, finds the event, and drives its state machine
// (INIT -> FIRST -> BUFFER -> COMPLETE maps onto Queued -> Submitted ->
// Running -> Complete), finally waking any application thread polling or
// waiting on the event.
package remote

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"blastfunction/internal/flightrec"
	"blastfunction/internal/logx"
	"blastfunction/internal/model"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
)

// TransportMode selects how buffer payloads reach the Device Manager.
type TransportMode int

// Transport modes.
const (
	// TransportAuto uses shared memory when the manager reports the same
	// node and a segment can be created, falling back to the RPC channel
	// otherwise — the paper's policy.
	TransportAuto TransportMode = iota
	// TransportGRPC forces inline payloads (the paper's "BlastFunction"
	// series).
	TransportGRPC
	// TransportShm requires shared memory and fails if unavailable (the
	// paper's "BlastFunction shm" series).
	TransportShm
)

// Config parameterizes the Remote OpenCL Library.
type Config struct {
	// ClientName identifies this function instance to managers and the
	// Registry.
	ClientName string
	// Managers lists Device Manager addresses. Each one appears as a
	// device of the BlastFunction platform, the router's platform list.
	Managers []string
	// Node is the local node name; shared memory is attempted only when a
	// manager reports the same node. Empty disables the co-location check
	// (useful in single-process tests where both ends share /dev/shm).
	Node string
	// Transport selects the data path; default TransportAuto.
	Transport TransportMode
	// ShmDir is where segments are created (shm.DefaultDir when empty).
	ShmDir string
	// ShmBytes sizes each manager's segment; default 64 MiB.
	ShmBytes int64
	// CallTimeout bounds each unary control call; zero selects
	// rpc.DefaultCallTimeout. Command-queue traffic is asynchronous and
	// unaffected.
	CallTimeout time.Duration
	// DialConn, when set, replaces net.Dial for manager connections. Chaos
	// tests wrap the returned connection in an rpc.FaultConn.
	DialConn func(addr string) (net.Conn, error)
	// Weight is the instance's fair-share weight, declared to managers at
	// Hello; weighted disciplines serve tenants proportionally to it. Zero
	// means unweighted (managers treat it as 1). Deployed instances
	// receive it from the Registry binding via BF_TENANT_WEIGHT.
	Weight int
	// Log receives the library's structured events (connection loss,
	// operation failures, transport fallbacks), trace-correlated where a
	// task caused them. A nil logger logs nothing at zero hot-path cost.
	Log *logx.Logger
	// DisableContentCache stops the library from content-hashing full-size
	// read-only buffer payloads, so every CreateBuffer uploads its bytes
	// even when the manager's content-addressed cache holds them. Used by
	// benchmarks to measure the cache-off baseline and by tenants whose
	// handles must never alias shared device memory.
	DisableContentCache bool
	// Tracer enables distributed tracing: the library samples a trace at
	// the first operation of each flush-formed task, records client-side
	// spans (call, send, ack-wait, task) into it, and propagates the IDs
	// to managers that negotiated wire.ProtoVersionTrace. Nil disables
	// tracing entirely — the hot path then pays one nil check.
	Tracer *obs.Tracer
	// FlightRing bounds the library's flight-recorder ring (whole task
	// skeletons; zero selects the flightrec default). Unlike sampled
	// spans, the recorder is always on: every flush-formed task leaves a
	// milestone skeleton, keyed by its trace ID when sampled and a
	// synthetic local key otherwise.
	FlightRing int
	// FlightLedgerPath is the durable JSONL spill file for notable
	// flights (failures, tail-latency outliers); empty keeps flights in
	// memory only.
	FlightLedgerPath string
	// NoFlightRecorder disables the flight recorder entirely — the
	// recorder-overhead benchmark's baseline, not a production knob.
	NoFlightRecorder bool

	// flight is the per-Client recorder, created in Dial and shared by
	// every manager connection.
	flight *flightrec.Recorder
}

// Client is the Remote OpenCL Library entry point; it implements
// ocl.Client. It is the paper's "central router component, which keeps the
// list of the available platforms": one BlastFunction platform whose
// devices are the connected Device Managers.
type Client struct {
	cfg Config

	mu     sync.Mutex
	conns  []*managerConn
	closed bool
}

// Dial connects to every configured Device Manager.
func Dial(cfg Config) (*Client, error) {
	if len(cfg.Managers) == 0 {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "remote: no Device Manager addresses configured")
	}
	if cfg.ClientName == "" {
		cfg.ClientName = fmt.Sprintf("client-%d", os.Getpid())
	}
	if cfg.ShmBytes <= 0 {
		cfg.ShmBytes = 64 << 20
	}
	if !cfg.NoFlightRecorder {
		cfg.flight = flightrec.New(flightrec.Config{
			Process:    "library/" + cfg.ClientName,
			Flights:    cfg.FlightRing,
			LedgerPath: cfg.FlightLedgerPath,
		})
	}
	c := &Client{cfg: cfg}
	for _, addr := range cfg.Managers {
		mc, err := dialManager(&cfg, addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("remote: manager %s: %w", addr, err)
		}
		c.conns = append(c.conns, mc)
	}
	return c, nil
}

// Platforms implements ocl.Client. BlastFunction exposes one platform
// holding every remote device.
func (c *Client) Platforms() ([]ocl.Platform, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ocl.Errf(ocl.ErrInvalidOperation, "client closed")
	}
	return []ocl.Platform{&platform{client: c}}, nil
}

// CreateContext implements ocl.Client. All devices must live on the same
// Device Manager: BlastFunction contexts do not span boards (neither do
// Intel FPGA runtime contexts span PCIe devices usefully; one board per
// context is the deployment the paper evaluates).
func (c *Client) CreateContext(devices []ocl.Device) (ocl.Context, error) {
	if len(devices) == 0 {
		return nil, ocl.Errf(ocl.ErrInvalidValue, "no devices")
	}
	var mc *managerConn
	for _, d := range devices {
		rd, ok := d.(*device)
		if !ok {
			return nil, ocl.Errf(ocl.ErrInvalidDevice, "foreign device %T", d)
		}
		if mc == nil {
			mc = rd.mc
		} else if mc != rd.mc {
			return nil, ocl.Errf(ocl.ErrInvalidDevice, "context cannot span Device Managers")
		}
	}
	return mc.createContext(devices)
}

// Transport reports the negotiated data path of the i-th manager
// connection (diagnostics and experiments).
func (c *Client) Transport(i int) model.Transport {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.conns) {
		return model.TransportGRPC
	}
	return c.conns[i].transport()
}

// Close implements ocl.Client.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.mu.Unlock()
	var errs []error
	for _, mc := range conns {
		if err := mc.close(); err != nil {
			errs = append(errs, err)
		}
	}
	c.cfg.flight.Close()
	return errors.Join(errs...)
}

// Flight exposes the library's flight recorder (nil-safe; nil when
// disabled). Embedding binaries mount its Handler at /debug/flight.
func (c *Client) Flight() *flightrec.Recorder { return c.cfg.flight }

// platform is the BlastFunction OpenCL platform.
type platform struct{ client *Client }

// Name implements ocl.Platform.
func (p *platform) Name() string { return "BlastFunction Remote OpenCL" }

// Vendor implements ocl.Platform.
func (p *platform) Vendor() string { return "Politecnico di Milano (reproduction)" }

// Version implements ocl.Platform.
func (p *platform) Version() string { return "OpenCL 1.2 blastfunction-remote" }

// Devices implements ocl.Platform.
func (p *platform) Devices(typ ocl.DeviceType) ([]ocl.Device, error) {
	if typ&(ocl.DeviceTypeAccelerator|ocl.DeviceTypeDefault) == 0 && typ != ocl.DeviceTypeAll {
		return nil, ocl.Errf(ocl.ErrDeviceNotFound, "platform has only accelerator devices")
	}
	p.client.mu.Lock()
	defer p.client.mu.Unlock()
	devs := make([]ocl.Device, 0, len(p.client.conns))
	for _, mc := range p.client.conns {
		devs = append(devs, &device{mc: mc})
	}
	return devs, nil
}

// device is one remote board.
type device struct{ mc *managerConn }

// Name implements ocl.Device.
func (d *device) Name() string { return d.mc.info.Name }

// Vendor implements ocl.Device.
func (d *device) Vendor() string { return d.mc.info.Vendor }

// Type implements ocl.Device.
func (d *device) Type() ocl.DeviceType { return ocl.DeviceTypeAccelerator }

// GlobalMemSize implements ocl.Device.
func (d *device) GlobalMemSize() int64 { return d.mc.info.GlobalMem }

// Available implements ocl.Device.
func (d *device) Available() bool { return !d.mc.isClosed() }

// Node returns the node the device's manager runs on (BlastFunction
// extension used by schedulers and tests).
func (d *device) Node() string { return d.mc.node }
