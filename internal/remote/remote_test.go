package remote

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
	"blastfunction/internal/rpc"
	"blastfunction/internal/wire"
)

// rig is a live manager over TCP for white-box client tests.
type rig struct {
	mgr   *manager.Manager
	srv   *rpc.Server
	addr  string
	board *fpga.Board
}

func newRig(t *testing.T) *rig {
	t.Helper()
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	mgr := manager.New(manager.Config{Node: "rignode", DeviceID: "rig0"}, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); mgr.Close() })
	return &rig{mgr: mgr, srv: srv, addr: addr, board: board}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(Config{}); err == nil {
		t.Fatal("no managers must fail")
	}
	if _, err := Dial(Config{Managers: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("unreachable manager must fail")
	}
}

func TestDialDefaultsClientName(t *testing.T) {
	r := newRig(t)
	c, err := Dial(Config{Managers: []string{r.addr}, Transport: TransportGRPC})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.cfg.ClientName == "" {
		t.Fatal("client name not defaulted")
	}
}

func TestPlatformAndDeviceInfo(t *testing.T) {
	r := newRig(t)
	c, err := Dial(Config{ClientName: "info", Managers: []string{r.addr}, Transport: TransportGRPC})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ps, err := c.Platforms()
	if err != nil || len(ps) != 1 {
		t.Fatalf("platforms = %v, %v", ps, err)
	}
	if ps[0].Name() == "" || ps[0].Vendor() == "" || ps[0].Version() == "" {
		t.Fatal("platform strings empty")
	}
	devs, err := ps[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil || len(devs) != 1 {
		t.Fatalf("devices = %v, %v", devs, err)
	}
	d := devs[0]
	if d.Type() != ocl.DeviceTypeAccelerator {
		t.Fatalf("type = %v", d.Type())
	}
	if d.GlobalMemSize() != 8<<30 {
		t.Fatalf("mem = %d", d.GlobalMemSize())
	}
	if !d.Available() {
		t.Fatal("device must be available")
	}
	if d.(*device).Node() != "rignode" {
		t.Fatalf("node = %q", d.(*device).Node())
	}
	if _, err := ps[0].Devices(ocl.DeviceTypeGPU); !errors.Is(err, ocl.ErrDeviceNotFound) {
		t.Fatalf("GPU query err = %v", err)
	}
}

func TestCreateContextValidation(t *testing.T) {
	r1, r2 := newRig(t), newRig(t)
	c, err := Dial(Config{ClientName: "ctx", Managers: []string{r1.addr, r2.addr}, Transport: TransportGRPC})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	if _, err := c.CreateContext(nil); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("empty devices err = %v", err)
	}
	if _, err := c.CreateContext(devs); !errors.Is(err, ocl.ErrInvalidDevice) {
		t.Fatalf("cross-manager context err = %v", err)
	}
	if _, err := c.CreateContext(devs[:1]); err != nil {
		t.Fatalf("single-device context: %v", err)
	}
}

func TestEventMachineFromNotifications(t *testing.T) {
	mc := &managerConn{}
	ev := &remoteEvent{BaseEvent: ocl.NewEvent(ocl.CommandWriteBuffer), tag: 1}
	steps := []struct {
		n    wire.OpNotification
		want ocl.ExecStatus
	}{
		{wire.OpNotification{State: wire.OpAccepted}, ocl.Submitted},
		{wire.OpNotification{State: wire.OpRunning}, ocl.Running},
		{wire.OpNotification{State: wire.OpComplete, DeviceNanos: 5000}, ocl.Complete},
	}
	for _, s := range steps {
		ev.machine(mc, &s.n)
		if ev.Status() != s.want {
			t.Fatalf("after %v: status = %v, want %v", s.n.State, ev.Status(), s.want)
		}
	}
	if ev.DeviceTime() != 5*time.Microsecond {
		t.Fatalf("device time = %v", ev.DeviceTime())
	}
}

func TestEventMachineFailure(t *testing.T) {
	mc := &managerConn{}
	ev := &remoteEvent{BaseEvent: ocl.NewEvent(ocl.CommandNDRangeKernel), tag: 2}
	ev.machine(mc, &wire.OpNotification{
		State:  wire.OpFailed,
		Status: int32(ocl.ErrInvalidKernelArgs),
		Error:  "arg 1 unset",
	})
	if !ev.Status().Failed() {
		t.Fatalf("status = %v", ev.Status())
	}
	if !errors.Is(ev.Err(), ocl.ErrInvalidKernelArgs) {
		t.Fatalf("err = %v", ev.Err())
	}
}

func TestReadCompletionCopiesInlineData(t *testing.T) {
	mc := &managerConn{}
	dst := make([]byte, 8)
	ev := &remoteEvent{BaseEvent: ocl.NewEvent(ocl.CommandReadBuffer), tag: 3, dst: dst}
	ev.machine(mc, &wire.OpNotification{State: wire.OpComplete, Data: []byte("ABCDEFGH")})
	if string(dst) != "ABCDEFGH" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestConnectionLossFailsInFlightEvents(t *testing.T) {
	r := newRig(t)
	c, err := Dial(Config{ClientName: "loss", Managers: []string{r.addr}, Transport: TransportGRPC})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, err := c.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(ocl.MemReadWrite, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue work but keep the task unflushed, then kill the server: the
	// events must fail rather than hang.
	ev, err := q.EnqueueWriteBuffer(buf, false, 0, make([]byte, 1<<20), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.srv.Close()
	done := make(chan error, 1)
	go func() { done <- ev.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("event must fail after connection loss")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after connection loss")
	}
}

func TestArenaStagingIsReleased(t *testing.T) {
	r := newRig(t)
	c, err := Dial(Config{
		ClientName: "arena",
		Managers:   []string{r.addr},
		Transport:  TransportShm,
		ShmDir:     t.TempDir(),
		ShmBytes:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mc := c.conns[0]
	free0 := mc.arena.FreeBytes()
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs[:1])
	q, _ := ctx.CreateCommandQueue(devs[0], 0)
	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 64<<10, nil)
	for i := 0; i < 20; i++ {
		if _, err := q.EnqueueWriteBuffer(buf, true, 0, make([]byte, 64<<10), nil); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, 64<<10)
		if _, err := q.EnqueueReadBuffer(buf, true, 0, dst, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := mc.arena.FreeBytes(); got != free0 {
		t.Fatalf("arena leaked: %d free, want %d", got, free0)
	}
}

// openRig dials the rig and opens context + queue — boilerplate for the
// buffer-lifecycle edge tests.
func openRig(t *testing.T, r *rig, name string) (*Client, ocl.Context, ocl.CommandQueue) {
	t.Helper()
	c, err := Dial(Config{ClientName: name, Managers: []string{r.addr}, Transport: TransportGRPC})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, err := c.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, ctx, q
}

func TestDoubleReleaseBufferReturnsTypedError(t *testing.T) {
	r := newRig(t)
	_, ctx, _ := openRig(t, r, "dbl-release")
	buf, err := ctx.CreateBuffer(ocl.MemReadWrite, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Release(); err != nil {
		t.Fatalf("first release: %v", err)
	}
	err = buf.Release()
	if !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("second release err = %v, want ErrInvalidMemObject", err)
	}
}

func TestReleaseWithInFlightEnqueueFailsEventNotClient(t *testing.T) {
	r := newRig(t)
	_, ctx, q := openRig(t, r, "rel-inflight")
	buf, err := ctx.CreateBuffer(ocl.MemReadWrite, 64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue into the unflushed task, release the buffer underneath it,
	// then flush: the op must fail on its event with a typed error — no
	// panic, no hang, and the queue stays usable.
	ev, err := q.EnqueueWriteBuffer(buf, false, 0, make([]byte, 64<<10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Release(); err != nil {
		t.Fatalf("release with in-flight enqueue: %v", err)
	}
	if err := q.Flush(); err != nil {
		t.Fatalf("flush after release: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- ev.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, ocl.ErrInvalidMemObject) {
			t.Fatalf("in-flight op err = %v, want ErrInvalidMemObject", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event hung after buffer release")
	}
	// The session survived: a fresh buffer round-trips.
	buf2, err := ctx.CreateBuffer(ocl.MemReadWrite, 4096, nil)
	if err != nil {
		t.Fatalf("create after failed op: %v", err)
	}
	if _, err := q.EnqueueWriteBuffer(buf2, true, 0, make([]byte, 4096), nil); err != nil {
		t.Fatalf("write after failed op: %v", err)
	}
}

func TestCreateBufferAfterConnectionLossReturnsTypedError(t *testing.T) {
	r := newRig(t)
	_, ctx, _ := openRig(t, r, "create-loss")
	if _, err := ctx.CreateBuffer(ocl.MemReadWrite, 4096, nil); err != nil {
		t.Fatal(err)
	}
	r.srv.Close()
	// Both the plain and the content-hashed create paths must surface the
	// transport failure as the typed manager-down error, not a panic or a
	// leaked handle.
	_, err := ctx.CreateBuffer(ocl.MemReadWrite, 4096, nil)
	if !errors.Is(err, rpc.ErrManagerDown) {
		t.Fatalf("plain create after loss err = %v, want ErrManagerDown", err)
	}
	_, err = ctx.CreateBuffer(ocl.MemReadOnly, 4096, make([]byte, 4096))
	if !errors.Is(err, rpc.ErrManagerDown) {
		t.Fatalf("hashed create after loss err = %v, want ErrManagerDown", err)
	}
}

func TestMarkersAndBarriers(t *testing.T) {
	r := newRig(t)
	c, err := Dial(Config{ClientName: "marker", Managers: []string{r.addr}, Transport: TransportGRPC})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs[:1])
	q, _ := ctx.CreateCommandQueue(devs[0], 0)

	// Marker on an empty queue completes immediately.
	mev, err := q.EnqueueMarker()
	if err != nil {
		t.Fatal(err)
	}
	if mev.Status() != ocl.Complete {
		t.Fatalf("empty-queue marker = %v", mev.Status())
	}

	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 1024, nil)
	var completions atomic.Int32
	for i := 0; i < 3; i++ {
		ev, err := q.EnqueueWriteBuffer(buf, false, 0, make([]byte, 1024), nil)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			if ev.Wait() == nil {
				completions.Add(1)
			}
		}()
	}
	mev, err = q.EnqueueMarker()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.EnqueueBarrier(); err != nil { // barrier flushes the task
		t.Fatal(err)
	}
	if err := mev.Wait(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for completions.Load() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if completions.Load() != 3 {
		t.Fatalf("marker completed before its predecessors (%d/3)", completions.Load())
	}
}

func TestZeroLengthTransfers(t *testing.T) {
	r := newRig(t)
	c, _ := Dial(Config{ClientName: "zero", Managers: []string{r.addr}, Transport: TransportGRPC})
	defer c.Close()
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs[:1])
	q, _ := ctx.CreateCommandQueue(devs[0], 0)
	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 16, nil)
	ev, err := q.EnqueueWriteBuffer(buf, false, 0, nil, nil)
	if err != nil || ev.Status() != ocl.Complete {
		t.Fatalf("zero write: %v, %v", ev, err)
	}
	ev, err = q.EnqueueReadBuffer(buf, false, 0, nil, nil)
	if err != nil || ev.Status() != ocl.Complete {
		t.Fatalf("zero read: %v, %v", ev, err)
	}
}

func TestBufferRangeValidationClientSide(t *testing.T) {
	r := newRig(t)
	c, _ := Dial(Config{ClientName: "range", Managers: []string{r.addr}, Transport: TransportGRPC})
	defer c.Close()
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs[:1])
	q, _ := ctx.CreateCommandQueue(devs[0], 0)
	buf, _ := ctx.CreateBuffer(ocl.MemReadWrite, 16, nil)
	if _, err := q.EnqueueWriteBuffer(buf, false, 8, make([]byte, 16), nil); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("overflow write err = %v", err)
	}
	if _, err := q.EnqueueReadBuffer(buf, false, -1, make([]byte, 4), nil); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("negative offset err = %v", err)
	}
	if _, err := ctx.CreateBuffer(ocl.MemFlags(0), 16, nil); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("bad flags err = %v", err)
	}
	if _, err := ctx.CreateBuffer(ocl.MemReadWrite, 4, make([]byte, 8)); !errors.Is(err, ocl.ErrInvalidBufferSize) {
		t.Fatalf("oversized init err = %v", err)
	}
}

func TestKernelArgValidation(t *testing.T) {
	r := newRig(t)
	c, _ := Dial(Config{ClientName: "args", Managers: []string{r.addr}, Transport: TransportGRPC})
	defer c.Close()
	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs[:1])
	prog, err := ctx.CreateProgramWithBinary(devs[0], accel.LoopbackBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if names := prog.KernelNames(); len(names) != 1 || names[0] != "copy" {
		t.Fatalf("kernels = %v", names)
	}
	k, err := prog.CreateKernel("copy")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArg(-1, int32(0)); !errors.Is(err, ocl.ErrInvalidArgIndex) {
		t.Fatalf("negative index err = %v", err)
	}
	if err := k.SetArg(7, int32(0)); !errors.Is(err, ocl.ErrInvalidArgIndex) {
		t.Fatalf("out-of-range index err = %v", err)
	}
	if err := k.SetArg(0, "a string"); !errors.Is(err, ocl.ErrInvalidArgValue) {
		t.Fatalf("bad value err = %v", err)
	}
	if _, err := prog.CreateKernel("missing"); !errors.Is(err, ocl.ErrInvalidKernelName) {
		t.Fatalf("missing kernel err = %v", err)
	}
}

// TestBuildTimeoutCoversAdvertisedReconfigureTime is the regression test
// for the reconfiguration RPC timeout: the Build deadline must be derived
// from the manager's advertised reconfiguration time (DeviceInfo's
// ReconfigMillis) plus margin, not the flat per-call timeout. The cost
// model is inflated to a 30 s modelled reprogram at TimeScale 0.01 — a
// 300 ms wall flash — while the client's CallTimeout is 50 ms; with the
// old flat deadline the Build call expired mid-flash.
func TestBuildTimeoutCoversAdvertisedReconfigureTime(t *testing.T) {
	cost := *model.WorkerNode()
	cost.ReconfigureTime = 30 * time.Second
	cfg := fpga.DE5aNet(&cost)
	cfg.TimeScale = 0.01
	board := fpga.NewBoard(cfg, accel.Catalog())
	mgr := manager.New(manager.Config{Node: "slownode", DeviceID: "slow0"}, board)
	srv := rpc.NewServer(mgr)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); mgr.Close() }()

	c, err := Dial(Config{
		ClientName:  "slowbuild",
		Managers:    []string{addr},
		Transport:   TransportGRPC,
		CallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if ms := c.conns[0].info.ReconfigMillis; ms != 300 {
		t.Fatalf("advertised ReconfigMillis = %d, want 300 (30s modelled at 0.01 scale)", ms)
	}

	ps, _ := c.Platforms()
	devs, _ := ps[0].Devices(ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs[:1])
	prog, err := ctx.CreateProgramWithBinary(devs[0], accel.LoopbackBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build with advertised reconfigure time failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("build returned after %v — flash did not actually sleep", elapsed)
	}
	if names := prog.KernelNames(); len(names) == 0 {
		t.Fatal("built program reports no kernels")
	}
}
