package apps

import (
	"fmt"
	"math/rand"
	"sync"

	"blastfunction/internal/accel"
	"blastfunction/internal/ocl"
)

// CNNApp is the PipeCNN inference function. Its host code reproduces the
// paper's structure: several kernels launched iteratively per inference
// over multiple parallel command queues, which is why BlastFunction pays
// visibly more control overhead here than for single-kernel functions.
type CNNApp struct {
	mu   sync.Mutex
	spec *accel.CNNSpec
	ctx  ocl.Context

	// q1 carries the data movers + compute kernels, q2 the write-backs —
	// PipeCNN's multi-queue layout.
	q1, q2 ocl.CommandQueue

	kMemRead, kConv, kPool, kFC, kMemWrite ocl.Kernel

	// Per-layer device buffers: activations ping-pong between act[0] and
	// act[1]; weights and biases are uploaded once at construction.
	act     [2]ocl.Buffer
	weights []ocl.Buffer // indexed by layer (nil for pools)
	biases  []ocl.Buffer
}

// NewCNN builds the PipeCNN function for the given network on the idx-th
// device. Weights are deterministic pseudo-random values (seeded by layer)
// — the paper's evaluation measures latency/throughput, not accuracy.
func NewCNN(client ocl.Client, idx int, spec *accel.CNNSpec) (*CNNApp, error) {
	ctx, dev, err := openDevice(client, idx)
	if err != nil {
		return nil, err
	}
	prog, err := ctx.CreateProgramWithBinary(dev, accel.PipeCNNBitstream().Binary())
	if err != nil {
		return nil, err
	}
	if err := prog.Build(""); err != nil {
		return nil, err
	}
	app := &CNNApp{spec: spec, ctx: ctx}
	for _, bind := range []struct {
		dst  *ocl.Kernel
		name string
	}{
		{&app.kMemRead, "memRead"},
		{&app.kConv, "coreConv"},
		{&app.kPool, "maxPool"},
		{&app.kFC, "fc"},
		{&app.kMemWrite, "memWrite"},
	} {
		k, err := prog.CreateKernel(bind.name)
		if err != nil {
			return nil, err
		}
		*bind.dst = k
	}
	if app.q1, err = ctx.CreateCommandQueue(dev, 0); err != nil {
		return nil, err
	}
	if app.q2, err = ctx.CreateCommandQueue(dev, 0); err != nil {
		return nil, err
	}

	// Activation buffers sized to the largest tensor in the chain.
	maxBytes := spec.InputBytes()
	for _, l := range spec.Layers {
		c, h, w := l.OutDims()
		if b := int64(c*h*w) * 4; b > maxBytes {
			maxBytes = b
		}
	}
	for i := range app.act {
		b, err := ctx.CreateBuffer(ocl.MemReadWrite, int(maxBytes), nil)
		if err != nil {
			return nil, err
		}
		app.act[i] = b
	}

	// Upload weights and biases once (CL_MEM_COPY_HOST_PTR style).
	for li, l := range spec.Layers {
		var wb, bb ocl.Buffer
		if wBytes := l.WeightBytes(); wBytes > 0 {
			wb, err = ctx.CreateBuffer(ocl.MemReadOnly, int(wBytes), randomBytes(int(wBytes), int64(li)*7+1))
			if err != nil {
				return nil, err
			}
			bb, err = ctx.CreateBuffer(ocl.MemReadOnly, int(l.BiasBytes()), randomBytes(int(l.BiasBytes()), int64(li)*7+2))
			if err != nil {
				return nil, err
			}
		}
		app.weights = append(app.weights, wb)
		app.biases = append(app.biases, bb)
	}
	return app, nil
}

// randomBytes builds small deterministic float32 weights packed as bytes.
func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, n/4)
	for i := range vals {
		vals[i] = rng.Float32()*0.2 - 0.1
	}
	out := make([]byte, n)
	accel.PutFloat32Slice(out, vals)
	return out
}

// Spec returns the network the app serves.
func (a *CNNApp) Spec() *accel.CNNSpec { return a.spec }

// Infer runs one inference and returns the output tensor. The per-layer
// enqueue/flush pattern follows PipeCNN's host code: convolution layers
// split their kernels across the two queues (two task flushes), pooling
// and fully-connected layers flush once.
func (a *CNNApp) Infer(input []float32) ([]float32, error) {
	if int64(len(input))*4 != a.spec.InputBytes() {
		return nil, fmt.Errorf("cnn: input %d floats, want %d", len(input), a.spec.InputBytes()/4)
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	inBytes := make([]byte, len(input)*4)
	accel.PutFloat32Slice(inBytes, input)
	if _, err := a.q1.EnqueueWriteBuffer(a.act[0], true, 0, inBytes, nil); err != nil {
		return nil, err
	}
	cur := 0
	for li, l := range a.spec.Layers {
		src, dst := a.act[cur], a.act[1-cur]
		if err := a.runLayer(li, l, src, dst); err != nil {
			return nil, fmt.Errorf("cnn: layer %s: %w", l.Name, err)
		}
		cur = 1 - cur
	}
	outBytes := make([]byte, a.spec.OutputBytes())
	if _, err := a.q1.EnqueueReadBuffer(a.act[cur], true, 0, outBytes, nil); err != nil {
		return nil, err
	}
	return accel.Float32Slice(outBytes), nil
}

func (a *CNNApp) runLayer(li int, l accel.Layer, src, dst ocl.Buffer) error {
	relu := int32(0)
	if l.Relu {
		relu = 1
	}
	if err := a.kMemRead.SetArg(0, src); err != nil {
		return err
	}
	if err := a.kMemWrite.SetArg(0, dst); err != nil {
		return err
	}
	switch l.Kind {
	case accel.LayerConv:
		args := []any{src, a.weights[li], a.biases[li], dst,
			int32(l.InC), int32(l.InH), int32(l.InW),
			int32(l.OutC), int32(l.K), int32(l.Stride), int32(l.Pad),
			int32(l.Groups), relu}
		for i, v := range args {
			if err := a.kConv.SetArg(i, v); err != nil {
				return err
			}
		}
		// Queue 1: mover + compute, one task.
		if _, err := a.q1.EnqueueTask(a.kMemRead, nil); err != nil {
			return err
		}
		convEv, err := a.q1.EnqueueTask(a.kConv, nil)
		if err != nil {
			return err
		}
		if err := a.q1.Flush(); err != nil {
			return err
		}
		// Queue 2: write-back, dependent on the compute, second task.
		if _, err := a.q2.EnqueueTask(a.kMemWrite, []ocl.Event{convEv}); err != nil {
			return err
		}
		return a.q2.Finish()
	case accel.LayerPool:
		args := []any{src, dst, int32(l.InC), int32(l.InH), int32(l.InW),
			int32(l.Pool), int32(l.PoolStride)}
		for i, v := range args {
			if err := a.kPool.SetArg(i, v); err != nil {
				return err
			}
		}
		if _, err := a.q1.EnqueueTask(a.kMemRead, nil); err != nil {
			return err
		}
		if _, err := a.q1.EnqueueTask(a.kPool, nil); err != nil {
			return err
		}
		if _, err := a.q1.EnqueueTask(a.kMemWrite, nil); err != nil {
			return err
		}
		return a.q1.Finish()
	case accel.LayerFC:
		args := []any{src, a.weights[li], a.biases[li], dst,
			int32(l.InN), int32(l.OutN), relu}
		for i, v := range args {
			if err := a.kFC.SetArg(i, v); err != nil {
				return err
			}
		}
		if _, err := a.q1.EnqueueTask(a.kMemRead, nil); err != nil {
			return err
		}
		if _, err := a.q1.EnqueueTask(a.kFC, nil); err != nil {
			return err
		}
		if _, err := a.q1.EnqueueTask(a.kMemWrite, nil); err != nil {
			return err
		}
		return a.q1.Finish()
	}
	return fmt.Errorf("unknown layer kind %d", l.Kind)
}

// Close releases the app's resources.
func (a *CNNApp) Close() error { return a.ctx.Release() }

// RandomInput builds a deterministic input tensor for the network.
func (a *CNNApp) RandomInput(seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]float32, a.spec.InputBytes()/4)
	for i := range in {
		in[i] = rng.Float32()
	}
	return in
}
