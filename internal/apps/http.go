package apps

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Reply is the JSON body every function handler returns, small by design
// so the measured path is the accelerator, not the HTTP payload.
type Reply struct {
	Function string  `json:"function"`
	Checksum uint32  `json:"checksum"`
	Millis   float64 `json:"ms"`
	Error    string  `json:"error,omitempty"`
}

func writeReply(w http.ResponseWriter, rep Reply) {
	if rep.Error != "" {
		w.WriteHeader(http.StatusInternalServerError)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// SobelHandler serves the Sobel function over HTTP. Requests select the
// image size with ?w=&h= (default 1920x1080, the paper's largest); the
// input image is a cached synthetic frame so load tests exercise the
// accelerator path rather than HTTP uploads.
func SobelHandler(app *SobelApp, defW, defH int) http.Handler {
	var mu sync.Mutex
	images := make(map[[2]int][]byte)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		width := intParam(r, "w", defW)
		height := intParam(r, "h", defH)
		key := [2]int{width, height}
		mu.Lock()
		img, ok := images[key]
		if !ok {
			img = SyntheticImage(width, height)
			images[key] = img
		}
		mu.Unlock()
		start := time.Now()
		out, err := app.Process(img, width, height)
		rep := Reply{Function: "sobel", Millis: float64(time.Since(start).Microseconds()) / 1000}
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Checksum = crc32.ChecksumIEEE(out)
		}
		writeReply(w, rep)
	})
}

// MMHandler serves the MM function over HTTP. Requests select the matrix
// size with ?n= (default 512); operands are cached random matrices.
func MMHandler(app *MMApp, defN int) http.Handler {
	var mu sync.Mutex
	type operands struct{ a, b []float32 }
	cache := make(map[int]operands)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := intParam(r, "n", defN)
		mu.Lock()
		ops, ok := cache[n]
		if !ok {
			ops = operands{a: RandomMatrix(n, 1), b: RandomMatrix(n, 2)}
			cache[n] = ops
		}
		mu.Unlock()
		start := time.Now()
		out, err := app.Multiply(ops.a, ops.b, n)
		rep := Reply{Function: "mm", Millis: float64(time.Since(start).Microseconds()) / 1000}
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Checksum = checksumFloats(out)
		}
		writeReply(w, rep)
	})
}

// CNNHandler serves the CNN inference function over HTTP. Every request
// runs one inference on a cached input tensor.
func CNNHandler(app *CNNApp) http.Handler {
	input := app.RandomInput(42)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		out, err := app.Infer(input)
		rep := Reply{Function: app.Spec().Name, Millis: float64(time.Since(start).Microseconds()) / 1000}
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Checksum = checksumFloats(out)
		}
		writeReply(w, rep)
	})
}

func checksumFloats(v []float32) uint32 {
	buf := make([]byte, len(v)*4)
	for i, f := range v {
		u := uint32FromFloat(f)
		buf[i*4] = byte(u)
		buf[i*4+1] = byte(u >> 8)
		buf[i*4+2] = byte(u >> 16)
		buf[i*4+3] = byte(u >> 24)
	}
	return crc32.ChecksumIEEE(buf)
}

func uint32FromFloat(f float32) uint32 {
	// Quantize slightly so checksums tolerate float reassociation between
	// runtimes while still catching real corruption.
	return uint32(int32(f * 1024))
}

// String renders the reply for CLI output.
func (r Reply) String() string {
	if r.Error != "" {
		return fmt.Sprintf("%s: error: %s", r.Function, r.Error)
	}
	return fmt.Sprintf("%s: %.3f ms (checksum %08x)", r.Function, r.Millis, r.Checksum)
}
