// Package apps contains the host-side code of the paper's three
// accelerated cloud functions: the Sobel edge detector, the MM matrix
// multiplier and PipeCNN inference.
//
// Each app is written once against the ocl API and therefore runs
// unchanged on the native runtime (exclusive board) and on BlastFunction's
// Remote OpenCL Library (shared board) — the transparency property the
// paper demonstrates. The apps also provide the HTTP handlers that wrap
// them into OpenFaaS-style functions for the gateway.
package apps

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"blastfunction/internal/accel"
	"blastfunction/internal/ocl"
)

// openDevice picks the idx-th accelerator device of the first platform
// and prepares a context.
func openDevice(client ocl.Client, idx int) (ocl.Context, ocl.Device, error) {
	platforms, err := client.Platforms()
	if err != nil {
		return nil, nil, err
	}
	if len(platforms) == 0 {
		return nil, nil, ocl.Errf(ocl.ErrInvalidPlatform, "no OpenCL platforms")
	}
	devs, err := platforms[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil {
		return nil, nil, err
	}
	if idx < 0 || idx >= len(devs) {
		return nil, nil, ocl.Errf(ocl.ErrDeviceNotFound, "device index %d of %d", idx, len(devs))
	}
	ctx, err := client.CreateContext(devs[idx : idx+1])
	if err != nil {
		return nil, nil, err
	}
	return ctx, devs[idx], nil
}

// buildProgram loads and programs a bitstream, returning the named kernel.
func buildProgram(ctx ocl.Context, dev ocl.Device, binary []byte, kernel string) (ocl.Kernel, error) {
	prog, err := ctx.CreateProgramWithBinary(dev, binary)
	if err != nil {
		return nil, err
	}
	if err := prog.Build(""); err != nil {
		return nil, err
	}
	return prog.CreateKernel(kernel)
}

// SobelApp is the Sobel edge-detection function.
type SobelApp struct {
	mu   sync.Mutex
	ctx  ocl.Context
	q    ocl.CommandQueue
	k    ocl.Kernel
	in   ocl.Buffer
	out  ocl.Buffer
	capB int
}

// NewSobel builds the Sobel function on the idx-th device of the client.
// maxW/maxH bound the accepted image sizes; device buffers are allocated
// once at that capacity, like the Spector host code.
func NewSobel(client ocl.Client, idx, maxW, maxH int) (*SobelApp, error) {
	ctx, dev, err := openDevice(client, idx)
	if err != nil {
		return nil, err
	}
	k, err := buildProgram(ctx, dev, accel.SobelBitstream().Binary(), "sobel")
	if err != nil {
		return nil, err
	}
	q, err := ctx.CreateCommandQueue(dev, 0)
	if err != nil {
		return nil, err
	}
	capB := maxW * maxH * accel.SobelBytesPerPixel
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, capB, nil)
	if err != nil {
		return nil, err
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, capB, nil)
	if err != nil {
		return nil, err
	}
	return &SobelApp{ctx: ctx, q: q, k: k, in: in, out: out, capB: capB}, nil
}

// Process runs edge detection over a w x h 16-bit grayscale image and
// returns the gradient magnitude image. One request at a time per app
// instance, matching a function container handling one invocation.
func (a *SobelApp) Process(img []byte, w, h int) ([]byte, error) {
	need := w * h * accel.SobelBytesPerPixel
	if w <= 0 || h <= 0 || len(img) != need {
		return nil, fmt.Errorf("sobel: image %dx%d needs %d bytes, got %d", w, h, need, len(img))
	}
	if need > a.capB {
		return nil, fmt.Errorf("sobel: image exceeds configured capacity (%d > %d)", need, a.capB)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.k.SetArg(0, a.in); err != nil {
		return nil, err
	}
	if err := a.k.SetArg(1, a.out); err != nil {
		return nil, err
	}
	if err := a.k.SetArg(2, int32(w)); err != nil {
		return nil, err
	}
	if err := a.k.SetArg(3, int32(h)); err != nil {
		return nil, err
	}
	if _, err := a.q.EnqueueWriteBuffer(a.in, false, 0, img, nil); err != nil {
		return nil, err
	}
	if _, err := a.q.EnqueueNDRangeKernel(a.k, []int{w, h}, nil, nil); err != nil {
		return nil, err
	}
	res := make([]byte, need)
	if _, err := a.q.EnqueueReadBuffer(a.out, false, 0, res, nil); err != nil {
		return nil, err
	}
	if err := a.q.Finish(); err != nil {
		return nil, err
	}
	return res, nil
}

// Close releases the app's resources.
func (a *SobelApp) Close() error { return a.ctx.Release() }

// MMApp is the matrix-multiply function.
type MMApp struct {
	mu   sync.Mutex
	ctx  ocl.Context
	q    ocl.CommandQueue
	k    ocl.Kernel
	a    ocl.Buffer
	b    ocl.Buffer
	c    ocl.Buffer
	maxN int
}

// NewMM builds the MM function with capacity for maxN x maxN matrices.
func NewMM(client ocl.Client, idx, maxN int) (*MMApp, error) {
	ctx, dev, err := openDevice(client, idx)
	if err != nil {
		return nil, err
	}
	k, err := buildProgram(ctx, dev, accel.MMBitstream().Binary(), "mm")
	if err != nil {
		return nil, err
	}
	q, err := ctx.CreateCommandQueue(dev, 0)
	if err != nil {
		return nil, err
	}
	capB := int(accel.MMMatrixBytes(maxN))
	bufs := make([]ocl.Buffer, 3)
	for i, flags := range []ocl.MemFlags{ocl.MemReadOnly, ocl.MemReadOnly, ocl.MemWriteOnly} {
		b, err := ctx.CreateBuffer(flags, capB, nil)
		if err != nil {
			return nil, err
		}
		bufs[i] = b
	}
	return &MMApp{ctx: ctx, q: q, k: k, a: bufs[0], b: bufs[1], c: bufs[2], maxN: maxN}, nil
}

// Multiply computes C = A x B for n x n row-major float32 matrices.
func (m *MMApp) Multiply(a, b []float32, n int) ([]float32, error) {
	if n <= 0 || n > m.maxN || len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("mm: bad operands n=%d len(a)=%d len(b)=%d (max n %d)", n, len(a), len(b), m.maxN)
	}
	ab := make([]byte, n*n*4)
	bb := make([]byte, n*n*4)
	accel.PutFloat32Slice(ab, a)
	accel.PutFloat32Slice(bb, b)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.k.SetArg(0, m.a); err != nil {
		return nil, err
	}
	if err := m.k.SetArg(1, m.b); err != nil {
		return nil, err
	}
	if err := m.k.SetArg(2, m.c); err != nil {
		return nil, err
	}
	if err := m.k.SetArg(3, int32(n)); err != nil {
		return nil, err
	}
	if _, err := m.q.EnqueueWriteBuffer(m.a, false, 0, ab, nil); err != nil {
		return nil, err
	}
	if _, err := m.q.EnqueueWriteBuffer(m.b, false, 0, bb, nil); err != nil {
		return nil, err
	}
	if _, err := m.q.EnqueueTask(m.k, nil); err != nil {
		return nil, err
	}
	cb := make([]byte, n*n*4)
	if _, err := m.q.EnqueueReadBuffer(m.c, false, 0, cb, nil); err != nil {
		return nil, err
	}
	if err := m.q.Finish(); err != nil {
		return nil, err
	}
	return accel.Float32Slice(cb), nil
}

// Close releases the app's resources.
func (m *MMApp) Close() error { return m.ctx.Release() }

// SyntheticImage builds a deterministic w x h 16-bit grayscale test image
// with gradients and edges, used by examples and load tests.
func SyntheticImage(w, h int) []byte {
	img := make([]byte, w*h*accel.SobelBytesPerPixel)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint16(x * 255 / max(1, w-1) * 128)
			if (x/8+y/8)%2 == 0 {
				v += 9000
			}
			binary.LittleEndian.PutUint16(img[(y*w+x)*2:], v)
		}
	}
	return img
}

// RandomMatrix builds a deterministic pseudo-random n x n matrix.
func RandomMatrix(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float32, n*n)
	for i := range m {
		m[i] = rng.Float32()*2 - 1
	}
	return m
}
