package apps

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/native"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
)

func nativeClient() (*native.Client, *fpga.Board) {
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	return native.New(board), board
}

func remoteClient(t *testing.T) *remote.Client {
	t.Helper()
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	mgr := manager.New(manager.Config{Node: "n1", DeviceID: "fpga0"}, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); mgr.Close() })
	client, err := remote.Dial(remote.Config{
		ClientName: "apps-test",
		Managers:   []string{addr},
		Transport:  remote.TransportShm,
		ShmDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestSobelAppProducesEdges(t *testing.T) {
	client, _ := nativeClient()
	app, err := NewSobel(client, 0, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	img := SyntheticImage(32, 32)
	out, err := app.Process(img, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, b := range out {
		if b != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("sobel produced an all-zero image on a checkered input")
	}
}

func TestSobelAppValidation(t *testing.T) {
	client, _ := nativeClient()
	app, err := NewSobel(client, 0, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.Process(make([]byte, 10), 16, 16); err == nil {
		t.Fatal("wrong byte count must fail")
	}
	if _, err := app.Process(SyntheticImage(64, 64), 64, 64); err == nil {
		t.Fatal("over-capacity image must fail")
	}
}

func TestMMAppMatchesReference(t *testing.T) {
	client, _ := nativeClient()
	app, err := NewMM(client, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	const n = 16
	a := RandomMatrix(n, 1)
	b := RandomMatrix(n, 2)
	got, err := app.Multiply(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float32
			for k := 0; k < n; k++ {
				want += a[i*n+k] * b[k*n+j]
			}
			if math.Abs(float64(got[i*n+j]-want)) > 1e-4 {
				t.Fatalf("C[%d,%d] = %g, want %g", i, j, got[i*n+j], want)
			}
		}
	}
}

func TestCNNAppRunsTinyNetwork(t *testing.T) {
	client, _ := nativeClient()
	app, err := NewCNN(client, 0, accel.TinyCNN())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	out, err := app.Infer(app.RandomInput(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("output = %d classes, want 10", len(out))
	}
	for i, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
	// Deterministic weights + input: a second inference matches.
	out2, err := app.Infer(app.RandomInput(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("inference is not deterministic")
		}
	}
}

func TestAppsTransparencyAcrossRuntimes(t *testing.T) {
	// The same app code must produce identical results on the native
	// runtime and through BlastFunction (remote, shm transport).
	nclient, _ := nativeClient()
	nApp, err := NewMM(nclient, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer nApp.Close()
	rApp, err := NewMM(remoteClient(t), 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer rApp.Close()

	const n = 24
	a := RandomMatrix(n, 3)
	b := RandomMatrix(n, 4)
	nOut, err := nApp.Multiply(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := rApp.Multiply(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nOut {
		if nOut[i] != rOut[i] {
			t.Fatalf("native and remote disagree at %d: %g vs %g", i, nOut[i], rOut[i])
		}
	}
}

func TestCNNTransparencyAcrossRuntimes(t *testing.T) {
	nclient, _ := nativeClient()
	nApp, err := NewCNN(nclient, 0, accel.TinyCNN())
	if err != nil {
		t.Fatal(err)
	}
	defer nApp.Close()
	rApp, err := NewCNN(remoteClient(t), 0, accel.TinyCNN())
	if err != nil {
		t.Fatal(err)
	}
	defer rApp.Close()
	in := nApp.RandomInput(9)
	nOut, err := nApp.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := rApp.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nOut {
		if nOut[i] != rOut[i] {
			t.Fatalf("CNN outputs diverge at %d: %g vs %g", i, nOut[i], rOut[i])
		}
	}
}

func TestHTTPHandlers(t *testing.T) {
	// One board per app: a single board holds a single bitstream, so the
	// three functions cannot share one device without reconfiguring.
	c1, _ := nativeClient()
	sobel, err := NewSobel(c1, 0, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer sobel.Close()
	c2, _ := nativeClient()
	mm, err := NewMM(c2, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	c3, _ := nativeClient()
	cnn, err := NewCNN(c3, 0, accel.TinyCNN())
	if err != nil {
		t.Fatal(err)
	}
	defer cnn.Close()

	for name, h := range map[string]struct {
		srv  *httptest.Server
		path string
	}{
		"sobel": {httptest.NewServer(SobelHandler(sobel, 32, 32)), "/?w=16&h=16"},
		"mm":    {httptest.NewServer(MMHandler(mm, 16)), "/?n=16"},
		"cnn":   {httptest.NewServer(CNNHandler(cnn)), "/"},
	} {
		resp, err := h.srv.Client().Get(h.srv.URL + h.path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var rep Reply
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		resp.Body.Close()
		if rep.Error != "" {
			t.Fatalf("%s: %s", name, rep.Error)
		}
		if rep.Millis < 0 {
			t.Fatalf("%s: millis = %v", name, rep.Millis)
		}
		h.srv.Close()
	}
}

func TestHandlerChecksumStableAcrossRuntimes(t *testing.T) {
	nclient, _ := nativeClient()
	nApp, _ := NewMM(nclient, 0, 32)
	defer nApp.Close()
	rApp, err := NewMM(remoteClient(t), 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer rApp.Close()

	get := func(app *MMApp) Reply {
		srv := httptest.NewServer(MMHandler(app, 16))
		defer srv.Close()
		resp, err := srv.Client().Get(srv.URL + "/?n=16")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep Reply
		json.NewDecoder(resp.Body).Decode(&rep)
		return rep
	}
	if a, b := get(nApp), get(rApp); a.Checksum != b.Checksum {
		t.Fatalf("checksums diverge: %08x vs %08x", a.Checksum, b.Checksum)
	}
}

func TestAlexNetFullScaleInference(t *testing.T) {
	// Full AlexNet-dimension inference through the whole stack: real
	// grouped convolutions over 227x227 inputs. A single inference takes
	// on the order of a second of real compute, so it is skipped in
	// -short runs.
	if testing.Short() {
		t.Skip("full AlexNet compute is slow; skipped with -short")
	}
	client, board := nativeClient()
	app, err := NewCNN(client, 0, accel.AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	out, err := app.Infer(app.RandomInput(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("output classes = %d, want 1000", len(out))
	}
	for i, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
	// The modelled board occupancy of the inference is ~90ms.
	busy := board.Stats().BusyTime
	if busy < 80*time.Millisecond || busy > 3*time.Second {
		t.Fatalf("board busy = %v", busy)
	}
}
