package logx

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"blastfunction/internal/obs"
)

// Query selects a slice of a log ring: minimum level, exact component,
// one trace, and a tail limit. The zero Query selects everything.
type Query struct {
	// N keeps only the most recent N matching events (0 = all).
	N int
	// MinLevel drops events below this severity.
	MinLevel Level
	// Component, when non-empty, keeps only that component's events.
	Component string
	// Trace, when non-zero, keeps only events correlated to that trace.
	Trace obs.TraceID
}

// Values encodes the query as /debug/logs URL parameters.
func (q Query) Values() url.Values {
	v := url.Values{}
	if q.N > 0 {
		v.Set("n", strconv.Itoa(q.N))
	}
	if q.MinLevel > LevelDebug {
		v.Set("level", q.MinLevel.String())
	}
	if q.Component != "" {
		v.Set("component", q.Component)
	}
	if q.Trace != 0 {
		v.Set("trace", q.Trace.String())
	}
	return v
}

// match reports whether the event passes the level/component/trace
// filters (N is applied by obs.ServeTail / Filter afterwards).
func (q Query) match(ev Event) bool {
	if ev.Level < q.MinLevel {
		return false
	}
	if q.Component != "" && ev.Component != q.Component {
		return false
	}
	if q.Trace != 0 && ev.Trace != q.Trace {
		return false
	}
	return true
}

// Filter applies the query to a snapshot, returning the most recent N
// (or all) matching events, oldest first.
func (q Query) Filter(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if q.match(ev) {
			out = append(out, ev)
		}
	}
	if q.N > 0 && q.N < len(out) {
		out = out[len(out)-q.N:]
	}
	return out
}

// parseQuery decodes ?level= ?component= ?trace= (the ?n= tail limit is
// left for obs.ServeTail).
func parseQuery(r *http.Request) (Query, error) {
	var q Query
	vals := r.URL.Query()
	if s := vals.Get("level"); s != "" {
		lv, err := ParseLevel(s)
		if err != nil {
			return q, err
		}
		q.MinLevel = lv
	}
	q.Component = vals.Get("component")
	if s := vals.Get("trace"); s != "" {
		id, err := obs.ParseTraceID(s)
		if err != nil {
			return q, err
		}
		q.Trace = id
	}
	return q, nil
}

// Handler serves the ring at /debug/logs. Query parameters:
// ?level=<debug|info|warn|error> keeps that severity and above,
// ?component=<name> filters to one component, ?trace=<hex id> to one
// trace, and ?n=<count> (via obs.ServeTail) tails the result.
func (l *Logger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, err := parseQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		obs.ServeTail(w, r, q.Filter(l.Tail()))
	})
}

// FetchRing retrieves base's /debug/logs ring filtered by q. It is the
// client half of Handler, shared by `blastctl logs` and the end-to-end
// tests so both exercise the same merge path.
func FetchRing(base string, q Query) ([]Event, error) {
	u := base + "/debug/logs"
	if vals := q.Values(); len(vals) > 0 {
		u += "?" + vals.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", u, resp.Status, body)
	}
	var events []Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		return nil, fmt.Errorf("GET %s: decoding: %w", u, err)
	}
	return events, nil
}

// Merge combines per-process rings into one timeline ordered by event
// time. Equal timestamps — common when coarse clocks or simulated time
// make whole bursts share one instant — tie-break on process name, then
// per-ring sequence, so the interleaving is deterministic regardless of
// the order rings were fetched in.
func Merge(rings ...[]Event) []Event {
	var out []Event
	for _, r := range rings {
		out = append(out, r...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	})
	return out
}
