// Package logx is BlastFunction's structured, leveled logger — the third
// observability pillar next to internal/metrics (series) and internal/obs
// (spans). It is dependency-free by design: events are plain structs with
// a component, a message, key/value string fields and optional
// trace/span IDs borrowed from internal/obs, recorded into a bounded
// in-memory ring that each process serves at /debug/logs. A nil *Logger
// is valid everywhere and reduces every call to one nil check, the same
// contract obs.Tracer gives the RPC hot path.
package logx

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"blastfunction/internal/obs"
)

// Level orders event severities. The zero value is LevelDebug, so a
// zero Config records everything into the ring; sinks usually gate at
// LevelInfo.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level in the fixed-width upper-case form used by
// the text format.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "LEVEL(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel accepts the String form, case-insensitively.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// MarshalJSON renders the level as its lower-case name.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + strings.ToLower(l.String()) + `"`), nil
}

// UnmarshalJSON accepts the name form.
func (l *Level) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// Field is one key/value pair attached to an event. Values are
// stringified at log time so the ring holds no live references.
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one structured log record. Trace and Span, when set, tie the
// event to the distributed trace of the task that caused it, so
// `blastctl logs -trace <id>` and `blastctl trace <id>` describe the
// same incident from two angles.
type Event struct {
	Time      time.Time   `json:"time"`
	Level     Level       `json:"level"`
	Component string      `json:"component"`
	Msg       string      `json:"msg"`
	Trace     obs.TraceID `json:"trace,omitempty"`
	Span      obs.SpanID  `json:"span,omitempty"`
	Fields    []Field     `json:"fields,omitempty"`
	// Proc names the recording process ("manager/fpga-A") and Seq is its
	// ring-assigned sequence number — together the deterministic tie-break
	// when Merge interleaves rings whose clocks collide on a timestamp.
	Proc string `json:"proc,omitempty"`
	Seq  uint64 `json:"seq,omitempty"`
}

// Format renders the event as one grep-friendly text line:
//
//	2006-01-02T15:04:05.000Z INFO  manager: board reconfigured bitstream=copy trace=4bf9…
func (e Event) Format() string {
	var b strings.Builder
	b.WriteString(e.Time.Format("2006-01-02T15:04:05.000Z07:00"))
	b.WriteByte(' ')
	lv := e.Level.String()
	b.WriteString(lv)
	for i := len(lv); i < 5; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte(' ')
	if e.Component != "" {
		b.WriteString(e.Component)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	for _, f := range e.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(f.Value))
	}
	if e.Trace != 0 {
		b.WriteString(" trace=")
		b.WriteString(e.Trace.String())
	}
	if e.Span != 0 {
		b.WriteString(" span=")
		b.WriteString(e.Span.String())
	}
	return b.String()
}

func quoteIfNeeded(v string) string {
	if strings.ContainsAny(v, " \t\n\"") || v == "" {
		return strconv.Quote(v)
	}
	return v
}

// Config configures a logger root. The zero value records every level
// into a default-sized ring with no sink.
type Config struct {
	// Component names the subsystem; Named derives children.
	Component string
	// Level is the minimum severity recorded at all (ring and sink).
	// Defaults to LevelDebug so /debug/logs retains debug events for
	// trace correlation even when the sink stays quiet.
	Level Level
	// RingSize bounds the in-memory ring (default 4096 events).
	RingSize int
	// Sink, when non-nil, receives a copy of every recorded event at or
	// above SinkLevel — typically TextSink(os.Stderr) in binaries or a
	// t.Logf adapter in tests.
	Sink func(Event)
	// SinkLevel gates the sink only; the ring still keeps everything
	// down to Level.
	SinkLevel Level
	// Now is the injectable clock (default time.Now).
	Now func() time.Time
	// Process stamps every event with the recording process's identity
	// (e.g. "manager/fpga-A"); defaults to Component. Merge uses it to
	// order same-timestamp events from different rings deterministically.
	Process string
}

// core is the shared state behind a family of derived loggers: one ring,
// one sink, one clock per process, so /debug/logs serves the merged view
// of every component in the binary.
type core struct {
	min     Level
	sinkMin Level
	sink    func(Event)
	now     func() time.Time
	proc    string
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     uint64
}

// Logger records structured events. Methods on a nil *Logger are no-ops,
// so call sites never guard except to skip expensive argument
// construction (use Enabled for that).
type Logger struct {
	core      *core
	component string
	trace     obs.TraceID
	span      obs.SpanID
	fields    []Field
}

// New builds a root logger from cfg.
func New(cfg Config) *Logger {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Process == "" {
		cfg.Process = cfg.Component
	}
	return &Logger{
		core: &core{
			min:     cfg.Level,
			sinkMin: cfg.SinkLevel,
			sink:    cfg.Sink,
			now:     cfg.Now,
			proc:    cfg.Process,
			buf:     make([]Event, cfg.RingSize),
		},
		component: cfg.Component,
	}
}

// Default returns the production logger used when a component is given
// none: full ring, Info-and-above mirrored to stderr.
func Default(component string) *Logger {
	return New(Config{
		Component: component,
		Sink:      TextSink(os.Stderr),
		SinkLevel: LevelInfo,
	})
}

// NewLogf adapts a printf-style function (typically testing.T.Logf) into
// a logger: every event is rendered through Format and forwarded.
func NewLogf(component string, f func(format string, args ...any)) *Logger {
	return New(Config{
		Component: component,
		Sink:      func(ev Event) { f("%s", ev.Format()) },
	})
}

// TextSink returns a sink that writes one Format line per event to w,
// serialized by an internal mutex.
func TextSink(w io.Writer) func(Event) {
	var mu sync.Mutex
	return func(ev Event) {
		line := ev.Format() + "\n"
		mu.Lock()
		io.WriteString(w, line)
		mu.Unlock()
	}
}

// Named derives a logger for a sub-component sharing this logger's ring,
// sink and clock.
func (l *Logger) Named(component string) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.component = component
	return &d
}

// Component reports the logger's component name.
func (l *Logger) Component() string {
	if l == nil {
		return ""
	}
	return l.component
}

// With derives a logger whose events always carry the given key/value
// pairs (same kv convention as the log methods).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	d := *l
	d.fields = append([]Field(nil), l.fields...)
	d.trace, d.span, d.fields = appendKV(d.trace, d.span, d.fields, kv)
	return &d
}

// WithTrace derives a logger whose events carry the given trace/span
// correlation IDs.
func (l *Logger) WithTrace(trace obs.TraceID, span obs.SpanID) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.trace = trace
	d.span = span
	return &d
}

// Enabled reports whether an event at lv would be recorded — the guard
// hot paths use before building expensive arguments.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && l.core != nil && lv >= l.core.min
}

// Debug records a debug event. kv alternates keys (string) and values
// (any); values of type obs.TraceID / obs.SpanID set the event's
// correlation IDs instead of becoming fields.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }

// Info records an informational event.
func (l *Logger) Info(msg string, kv ...any) { l.Log(LevelInfo, msg, kv...) }

// Warn records a warning event.
func (l *Logger) Warn(msg string, kv ...any) { l.Log(LevelWarn, msg, kv...) }

// Error records an error event.
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

// Log records an event at an explicit level.
func (l *Logger) Log(lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	c := l.core
	ev := Event{
		Time:      c.now(),
		Level:     lv,
		Component: l.component,
		Msg:       msg,
		Trace:     l.trace,
		Span:      l.span,
	}
	fields := l.fields
	if len(kv) > 0 {
		fields = append([]Field(nil), fields...)
		ev.Trace, ev.Span, fields = appendKV(ev.Trace, ev.Span, fields, kv)
	}
	ev.Fields = fields
	ev.Proc = c.proc

	c.mu.Lock()
	c.seq++
	ev.Seq = c.seq
	c.buf[c.next] = ev
	c.next = (c.next + 1) % len(c.buf)
	if c.next == 0 {
		c.full = true
	}
	c.mu.Unlock()

	if c.sink != nil && lv >= c.sinkMin {
		c.sink(ev)
	}
}

// appendKV folds alternating key/value arguments into fields, diverting
// obs IDs to the correlation slots. A trailing key without a value (or a
// non-string key) is recorded as a malformed field rather than dropped.
func appendKV(trace obs.TraceID, span obs.SpanID, fields []Field, kv []any) (obs.TraceID, obs.SpanID, []Field) {
	for i := 0; i < len(kv); i += 2 {
		if i+1 >= len(kv) {
			fields = append(fields, Field{Key: "!MISSING-VALUE", Value: formatValue(kv[i])})
			break
		}
		key, ok := kv[i].(string)
		if !ok {
			fields = append(fields, Field{Key: "!BAD-KEY", Value: formatValue(kv[i])})
			continue
		}
		switch v := kv[i+1].(type) {
		case obs.TraceID:
			if v != 0 {
				trace = v
			}
		case obs.SpanID:
			if v != 0 {
				span = v
			}
		default:
			fields = append(fields, Field{Key: key, Value: formatValue(v)})
		}
	}
	return trace, span, fields
}

func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		if x == nil {
			return "<nil>"
		}
		return x.Error()
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case uint32:
		return strconv.FormatUint(uint64(x), 10)
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprint(v)
	}
}

// Tail returns the retained events, oldest first.
func (l *Logger) Tail() []Event {
	if l == nil || l.core == nil {
		return nil
	}
	c := l.core
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	if c.full {
		out = append(out, c.buf[c.next:]...)
	}
	out = append(out, c.buf[:c.next]...)
	return out
}
