package logx

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/obs"
)

func fixedClock(start time.Time) func() time.Time {
	var mu sync.Mutex
	t := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func testLogger(ring int) *Logger {
	return New(Config{
		Component: "test",
		RingSize:  ring,
		Now:       fixedClock(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)),
	})
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("nothing", "k", "v")
	l.Info("nothing")
	l.Warn("nothing")
	l.Error("nothing", "err", errors.New("x"))
	if l.Enabled(LevelError) {
		t.Error("nil logger reports Enabled")
	}
	if got := l.Tail(); got != nil {
		t.Errorf("nil logger Tail = %v", got)
	}
	if l.Named("sub") != nil || l.WithTrace(1, 2) != nil || l.With("a", "b") != nil {
		t.Error("derivations of a nil logger must stay nil")
	}
}

func TestLevelsAndFields(t *testing.T) {
	l := testLogger(16)
	l.Debug("started", "port", 8080)
	l.Warn("lease expired", "client", "sobel-1", "wait", 250*time.Millisecond)
	evs := l.Tail()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Level != LevelDebug || evs[1].Level != LevelWarn {
		t.Errorf("levels = %v, %v", evs[0].Level, evs[1].Level)
	}
	if evs[0].Fields[0] != (Field{Key: "port", Value: "8080"}) {
		t.Errorf("int field = %+v", evs[0].Fields[0])
	}
	if evs[1].Fields[1] != (Field{Key: "wait", Value: "250ms"}) {
		t.Errorf("duration field = %+v", evs[1].Fields[1])
	}
	line := evs[1].Format()
	for _, want := range []string{"WARN", "test:", "lease expired", "client=sobel-1", "wait=250ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("Format %q missing %q", line, want)
		}
	}
}

func TestMinLevelGate(t *testing.T) {
	var sunk []Event
	l := New(Config{
		Component: "gate",
		Level:     LevelInfo,
		Sink:      func(ev Event) { sunk = append(sunk, ev) },
		SinkLevel: LevelWarn,
	})
	l.Debug("dropped entirely")
	l.Info("ring only")
	l.Warn("ring and sink")
	if evs := l.Tail(); len(evs) != 2 {
		t.Fatalf("ring kept %d events, want 2 (debug gated)", len(evs))
	}
	if len(sunk) != 1 || sunk[0].Msg != "ring and sink" {
		t.Fatalf("sink got %v, want only the warn", sunk)
	}
	if l.Enabled(LevelDebug) || !l.Enabled(LevelInfo) {
		t.Error("Enabled disagrees with Level gate")
	}
}

func TestRingWraps(t *testing.T) {
	l := testLogger(4)
	for i := 0; i < 10; i++ {
		l.Info("event", "i", i)
	}
	evs := l.Tail()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if evs[0].Fields[0].Value != "6" || evs[3].Fields[0].Value != "9" {
		t.Errorf("ring kept wrong window: %v .. %v", evs[0].Fields, evs[3].Fields)
	}
}

func TestTraceCorrelation(t *testing.T) {
	l := testLogger(16)
	l.Warn("task failed", "client", "mm-1", "trace", obs.TraceID(0xdead), "span", obs.SpanID(0xbeef))
	l.WithTrace(0xf00d, 0).Info("derived")
	evs := l.Tail()
	if evs[0].Trace != 0xdead || evs[0].Span != 0xbeef {
		t.Errorf("kv trace/span not diverted: %+v", evs[0])
	}
	for _, f := range evs[0].Fields {
		if f.Key == "trace" || f.Key == "span" {
			t.Errorf("trace/span leaked into fields: %+v", evs[0].Fields)
		}
	}
	if evs[1].Trace != 0xf00d {
		t.Errorf("WithTrace not carried: %+v", evs[1])
	}
	if !strings.Contains(evs[0].Format(), "trace=000000000000dead") {
		t.Errorf("Format lacks trace: %q", evs[0].Format())
	}
}

func TestNamedSharesRing(t *testing.T) {
	root := testLogger(16)
	sub := root.Named("sub")
	root.Info("from root")
	sub.Info("from sub")
	evs := root.Tail()
	if len(evs) != 2 {
		t.Fatalf("ring has %d events, want 2 (Named must share the ring)", len(evs))
	}
	if evs[0].Component != "test" || evs[1].Component != "sub" {
		t.Errorf("components = %q, %q", evs[0].Component, evs[1].Component)
	}
}

func TestWithFields(t *testing.T) {
	l := testLogger(16).With("device", "fpga-A")
	l.Info("first")
	l.Info("second", "extra", 1)
	evs := l.Tail()
	for _, ev := range evs {
		if len(ev.Fields) == 0 || ev.Fields[0] != (Field{Key: "device", Value: "fpga-A"}) {
			t.Errorf("With field missing on %+v", ev)
		}
	}
	if len(evs[1].Fields) != 2 {
		t.Errorf("per-call fields lost: %+v", evs[1].Fields)
	}
	if len(evs[0].Fields) != 1 {
		t.Errorf("per-call fields leaked across events: %+v", evs[0].Fields)
	}
}

func TestHandlerFilters(t *testing.T) {
	l := testLogger(32)
	l.Named("alpha").Info("a info")
	l.Named("alpha").Warn("a warn", "trace", obs.TraceID(0xabc))
	l.Named("beta").Error("b error")

	fetch := func(query string) []Event {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/logs"+query, nil)
		w := httptest.NewRecorder()
		l.Handler().ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("GET %s: %d %s", query, w.Code, w.Body)
		}
		var evs []Event
		if err := json.Unmarshal(w.Body.Bytes(), &evs); err != nil {
			t.Fatalf("decoding: %v", err)
		}
		return evs
	}

	if evs := fetch(""); len(evs) != 3 {
		t.Errorf("unfiltered = %d events, want 3", len(evs))
	}
	if evs := fetch("?level=warn"); len(evs) != 2 {
		t.Errorf("level=warn = %d events, want 2", len(evs))
	}
	if evs := fetch("?component=beta"); len(evs) != 1 || evs[0].Msg != "b error" {
		t.Errorf("component=beta = %v", evs)
	}
	if evs := fetch("?trace=0000000000000abc"); len(evs) != 1 || evs[0].Msg != "a warn" {
		t.Errorf("trace filter = %v", evs)
	}
	if evs := fetch("?n=1"); len(evs) != 1 || evs[0].Msg != "b error" {
		t.Errorf("n=1 = %v", evs)
	}

	req := httptest.NewRequest("GET", "/debug/logs?level=bogus", nil)
	w := httptest.NewRecorder()
	l.Handler().ServeHTTP(w, req)
	if w.Code != 400 {
		t.Errorf("bad level returned %d, want 400", w.Code)
	}
}

func TestFetchRingAndMerge(t *testing.T) {
	a := testLogger(16)
	b := New(Config{
		Component: "b",
		RingSize:  16,
		Now:       fixedClock(time.Date(2026, 8, 5, 12, 0, 0, 500_000_000, time.UTC)),
	})
	a.Info("a one", "trace", obs.TraceID(7))
	b.Info("b one", "trace", obs.TraceID(7))
	a.Info("a untraced")

	srvA := httptest.NewServer(a.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(b.Handler())
	defer srvB.Close()

	ringA, err := FetchRing(srvA.URL, Query{Trace: 7})
	if err != nil {
		t.Fatal(err)
	}
	ringB, err := FetchRing(srvB.URL, Query{Trace: 7})
	if err != nil {
		t.Fatal(err)
	}
	merged := Merge(ringA, ringB)
	if len(merged) != 2 {
		t.Fatalf("merged %d events, want 2: %v", len(merged), merged)
	}
	if !merged[0].Time.Before(merged[1].Time) {
		t.Errorf("merge not time-ordered: %v", merged)
	}
	comps := map[string]bool{}
	for _, ev := range merged {
		comps[ev.Component] = true
	}
	if !comps["test"] || !comps["b"] {
		t.Errorf("merged events missing a component: %v", comps)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := testLogger(4)
	l.Warn("round trip", "k", "v w", "trace", obs.TraceID(0x1234))
	data, err := json.Marshal(l.Tail())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"level":"warn"`) {
		t.Errorf("level not marshalled as name: %s", data)
	}
	if !strings.Contains(string(data), `"trace":"0000000000001234"`) {
		t.Errorf("trace not hex: %s", data)
	}
	var back []Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Level != LevelWarn || back[0].Trace != 0x1234 || back[0].Fields[0].Value != "v w" {
		t.Errorf("round trip mangled event: %+v", back[0])
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("fatal"); err == nil {
		t.Error("ParseLevel accepted unknown level")
	}
}

// TestMergeDeterministic pins the merged-timeline ordering contract:
// identical timestamps sort by process name, then by per-process
// sequence — so two processes logging in the same instant interleave the
// same way on every invocation, regardless of input ring order.
func TestMergeDeterministic(t *testing.T) {
	at := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	ring := func(proc string, n int) []Event {
		evs := make([]Event, n)
		for i := range evs {
			evs[i] = Event{Time: at, Proc: proc, Seq: uint64(i + 1), Msg: proc}
		}
		return evs
	}
	a, b, c := ring("alpha", 3), ring("beta", 3), ring("gamma", 2)

	want := Merge(a, b, c)
	// Every permutation of input rings yields the identical timeline.
	for _, rings := range [][][]Event{
		{c, b, a}, {b, a, c}, {c, a, b}, {a, c, b}, {b, c, a},
	} {
		got := Merge(rings...)
		if len(got) != len(want) {
			t.Fatalf("merge length %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Proc != want[i].Proc || got[i].Seq != want[i].Seq {
				t.Fatalf("permuted merge diverges at %d: got %s/%d, want %s/%d",
					i, got[i].Proc, got[i].Seq, want[i].Proc, want[i].Seq)
			}
		}
	}
	// The canonical order itself: process name breaks the timestamp tie,
	// sequence breaks the process tie.
	for i := 1; i < len(want); i++ {
		p, q := want[i-1], want[i]
		if p.Proc > q.Proc || (p.Proc == q.Proc && p.Seq >= q.Seq) {
			t.Fatalf("order violated at %d: %s/%d before %s/%d", i, p.Proc, p.Seq, q.Proc, q.Seq)
		}
	}
	// Distinct timestamps still dominate every tie-break.
	late := []Event{{Time: at.Add(time.Second), Proc: "aaaa", Seq: 1}}
	merged := Merge(late, ring("zzz", 1))
	if merged[0].Proc != "zzz" || merged[1].Proc != "aaaa" {
		t.Fatalf("time ordering lost to tie-breaks: %+v", merged)
	}
}

// TestLoggerStampsProcSeq pins that Log fills the merge keys: the
// configured process name and a monotonic per-core sequence.
func TestLoggerStampsProcSeq(t *testing.T) {
	l := New(Config{
		Component: "manager",
		Process:   "manager/fpga-A",
		RingSize:  8,
		Now:       fixedClock(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)),
	})
	l.Info("one")
	l.Named("sub").Info("two")
	evs := l.Tail()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Proc != "manager/fpga-A" {
			t.Fatalf("event %d proc = %q", i, ev.Proc)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
	}
	// Process defaults to the component when unset.
	d := testLogger(4)
	d.Info("x")
	if got := d.Tail()[0].Proc; got != "test" {
		t.Fatalf("default proc = %q", got)
	}
}
