package datacache

import (
	"container/list"
	"sync"
)

// BufferKey addresses a cached device buffer. Size is part of the key so a
// truncated payload with a colliding hash cannot alias a longer one: a
// cache entry's contents are fully determined by (hash, size) only when
// the uploaded payload covered the whole buffer, which the manager
// enforces before inserting.
type BufferKey struct {
	Hash uint64
	Size int64
}

// bufEntry is one resident device buffer. refs counts the sessions holding
// a handle to it; an entry stays resident at refs==0 (that idle residency
// IS the reuse) and only then becomes eligible for LRU eviction.
type bufEntry struct {
	key     BufferKey
	boardID uint64
	refs    int
	elem    *list.Element
}

// BufferCache is the content-addressed cache of resident device buffers.
// Entries are read-only board allocations shared across sessions; the
// cache owns their lifetime and calls free when it evicts one. All methods
// are safe for concurrent use.
type BufferCache struct {
	capBytes int64
	free     func(boardID uint64)

	mu       sync.Mutex
	entries  map[BufferKey]*bufEntry
	lru      *list.List // front = most recently used; refs==0 entries only are evictable
	resident int64

	// orphans tracks invalidated-but-pinned buffers by board ID: the entry
	// left the key map (a reflash made its contents stale, so no future
	// Acquire may hit it) but sessions still hold handles; the board memory
	// is freed when the last holder releases.
	orphans map[uint64]int

	hits, misses, evictions, invalidations uint64
	bytesSaved                             int64
}

// NewBufferCache returns a cache bounded to capBytes of resident board
// memory. free releases an evicted entry's board allocation; it is called
// without the cache lock held.
func NewBufferCache(capBytes int64, free func(boardID uint64)) *BufferCache {
	return &BufferCache{
		capBytes: capBytes,
		free:     free,
		entries:  make(map[BufferKey]*bufEntry),
		lru:      list.New(),
		orphans:  make(map[uint64]int),
	}
}

// Acquire looks up k and, on a hit, takes a reference on the shared buffer
// and returns its board allocation ID. On a miss the caller uploads the
// payload and calls Insert.
func (c *BufferCache) Acquire(k BufferKey) (boardID uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[k]
	if !ok {
		c.misses++
		return 0, false
	}
	ent.refs++
	c.lru.MoveToFront(ent.elem)
	c.hits++
	c.bytesSaved += k.Size
	return ent.boardID, true
}

// Insert registers a freshly uploaded board buffer under k with one
// reference (the inserting session's) and returns the canonical board ID.
// If a racing session inserted the same key first, the existing entry wins:
// Insert takes a reference on it and returns (existingID, false), and the
// caller must free its duplicate upload. Inserting may evict idle entries
// to respect the byte bound; an entry larger than the whole bound is still
// admitted (it simply pins the cache to itself until released and evicted).
func (c *BufferCache) Insert(k BufferKey, boardID uint64) (uint64, bool) {
	c.mu.Lock()
	if ent, ok := c.entries[k]; ok {
		ent.refs++
		c.lru.MoveToFront(ent.elem)
		id := ent.boardID
		c.mu.Unlock()
		return id, false
	}
	ent := &bufEntry{key: k, boardID: boardID, refs: 1}
	ent.elem = c.lru.PushFront(ent)
	c.entries[k] = ent
	c.resident += k.Size
	evicted := c.evictLocked()
	c.mu.Unlock()
	for _, id := range evicted {
		c.free(id)
	}
	return boardID, true
}

// Release drops one reference on the buffer a session acquired under k.
// The entry stays resident for future hits; it only becomes evictable once
// every holder has released it. boardID disambiguates: if the entry was
// invalidated while the caller held it (and possibly replaced under the
// same key by a fresh upload), the release lands on the orphan, and the
// orphan's board memory is freed with the last holder.
func (c *BufferCache) Release(k BufferKey, boardID uint64) {
	c.mu.Lock()
	if ent, ok := c.entries[k]; ok && ent.boardID == boardID {
		if ent.refs > 0 {
			ent.refs--
		}
		c.mu.Unlock()
		return
	}
	refs, ok := c.orphans[boardID]
	if !ok {
		c.mu.Unlock()
		return
	}
	refs--
	if refs > 0 {
		c.orphans[boardID] = refs
		c.mu.Unlock()
		return
	}
	delete(c.orphans, boardID)
	c.mu.Unlock()
	c.free(boardID)
}

// evictLocked drops idle (refs==0) entries from the LRU tail until the
// resident total fits capBytes, returning the board IDs to free.
func (c *BufferCache) evictLocked() []uint64 {
	var ids []uint64
	for c.resident > c.capBytes {
		var victim *bufEntry
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			if ent := e.Value.(*bufEntry); ent.refs == 0 {
				victim = ent
				break
			}
		}
		if victim == nil {
			break // everything is pinned; stay over budget until releases
		}
		c.lru.Remove(victim.elem)
		delete(c.entries, victim.key)
		c.resident -= victim.key.Size
		c.evictions++
		ids = append(ids, victim.boardID)
	}
	return ids
}

// Purge drops every idle entry (a reconfiguration that keeps the memory
// geometry does not invalidate buffer contents — DDR survives — but tests
// and shutdown paths use this to return board memory). Pinned entries
// stay. For bitstreams that change the memory geometry, use Invalidate.
// Returns freed board IDs count.
func (c *BufferCache) Purge() int {
	c.mu.Lock()
	var ids []uint64
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		if ent := e.Value.(*bufEntry); ent.refs == 0 {
			c.lru.Remove(e)
			delete(c.entries, ent.key)
			c.resident -= ent.key.Size
			ids = append(ids, ent.boardID)
		}
		e = next
	}
	c.mu.Unlock()
	for _, id := range ids {
		c.free(id)
	}
	return len(ids)
}

// Invalidate drops every entry, pinned or not: a reconfiguration changed
// the board's memory geometry, so no cached buffer's contents can be
// trusted. Idle entries free their board memory immediately; pinned
// entries are orphaned — no future Acquire can hit them, and their memory
// is freed when the last holding session releases. Returns the number of
// entries dropped.
func (c *BufferCache) Invalidate() int {
	c.mu.Lock()
	var ids []uint64
	dropped := 0
	for _, ent := range c.entries {
		dropped++
		c.lru.Remove(ent.elem)
		delete(c.entries, ent.key)
		c.resident -= ent.key.Size
		if ent.refs == 0 {
			ids = append(ids, ent.boardID)
		} else {
			c.orphans[ent.boardID] = ent.refs
		}
	}
	c.invalidations += uint64(dropped)
	c.mu.Unlock()
	for _, id := range ids {
		c.free(id)
	}
	return dropped
}

// BufferStats is a point-in-time snapshot of the cache counters.
type BufferStats struct {
	Entries       int    `json:"entries"`
	ResidentBytes int64  `json:"resident_bytes"`
	PinnedEntries int    `json:"pinned_entries"`
	OrphanedBufs  int    `json:"orphaned_buffers"`
	CapBytes      int64  `json:"cap_bytes"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	BytesSaved    int64  `json:"bytes_saved"`
}

// Stats snapshots the cache.
func (c *BufferCache) Stats() BufferStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	pinned := 0
	for _, ent := range c.entries {
		if ent.refs > 0 {
			pinned++
		}
	}
	return BufferStats{
		Entries:       len(c.entries),
		ResidentBytes: c.resident,
		PinnedEntries: pinned,
		OrphanedBufs:  len(c.orphans),
		CapBytes:      c.capBytes,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		BytesSaved:    c.bytesSaved,
	}
}
