package datacache

// FNV-1a 64-bit parameters. Hand-rolled rather than hash/fnv so the fold
// helpers below can hash discontiguous key parts without allocating a
// hash.Hash64 per call.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ContentHash64 hashes a byte payload for content addressing. The zero
// value is reserved as the "no hash" sentinel on the wire, so a payload
// that happens to hash to 0 maps to 1; both peers apply the same mapping,
// which is all content addressing needs.
func ContentHash64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	if h == 0 {
		return 1
	}
	return h
}

// Hasher folds heterogeneous key parts into one 64-bit FNV-1a digest.
// The manager builds memoization keys with it: owner session, bitstream,
// kernel name, launch geometry, and per-argument content. Each part is
// folded with a leading length/kind byte sequence via the typed methods,
// so adjacent variable-length parts cannot collide by concatenation.
type Hasher struct{ h uint64 }

// NewHasher returns a Hasher at the FNV offset basis.
func NewHasher() Hasher { return Hasher{h: fnvOffset64} }

func (s *Hasher) byte(c byte) {
	s.h ^= uint64(c)
	s.h *= fnvPrime64
}

// U64 folds a fixed-width integer.
func (s *Hasher) U64(v uint64) {
	for i := 0; i < 8; i++ {
		s.byte(byte(v >> (8 * i)))
	}
}

// I64 folds a fixed-width signed integer.
func (s *Hasher) I64(v int64) { s.U64(uint64(v)) }

// Bytes folds a variable-length part, length-prefixed.
func (s *Hasher) Bytes(b []byte) {
	s.U64(uint64(len(b)))
	for _, c := range b {
		s.byte(c)
	}
}

// String folds a string part, length-prefixed.
func (s *Hasher) String(v string) {
	s.U64(uint64(len(v)))
	for i := 0; i < len(v); i++ {
		s.byte(v[i])
	}
}

// Sum returns the digest folded so far.
func (s *Hasher) Sum() uint64 { return s.h }
