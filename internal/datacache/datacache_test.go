package datacache

import (
	"fmt"
	"sync"
	"testing"
)

func TestContentHash64(t *testing.T) {
	a := ContentHash64([]byte("weights-v1"))
	b := ContentHash64([]byte("weights-v2"))
	if a == b {
		t.Fatal("distinct payloads hashed equal")
	}
	if a != ContentHash64([]byte("weights-v1")) {
		t.Fatal("hash not deterministic")
	}
	if ContentHash64(nil) == 0 || ContentHash64([]byte{}) == 0 {
		t.Fatal("zero hash leaked; 0 is the no-hash wire sentinel")
	}
}

func TestHasherPartsDoNotConcatenate(t *testing.T) {
	h1 := NewHasher()
	h1.String("ab")
	h1.String("c")
	h2 := NewHasher()
	h2.String("a")
	h2.String("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("length prefixing failed: split points collide")
	}
}

func TestBufferCacheHitMissRelease(t *testing.T) {
	var freed []uint64
	c := NewBufferCache(1<<20, func(id uint64) { freed = append(freed, id) })
	k := BufferKey{Hash: 42, Size: 1024}

	if _, ok := c.Acquire(k); ok {
		t.Fatal("hit on empty cache")
	}
	if id, inserted := c.Insert(k, 7); !inserted || id != 7 {
		t.Fatalf("Insert = (%d, %v), want (7, true)", id, inserted)
	}
	if id, ok := c.Acquire(k); !ok || id != 7 {
		t.Fatalf("Acquire = (%d, %v), want (7, true)", id, ok)
	}
	// Two holders now; release both — the entry must stay resident.
	c.Release(k, 7)
	c.Release(k, 7)
	if id, ok := c.Acquire(k); !ok || id != 7 {
		t.Fatal("idle entry must stay resident for reuse")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.BytesSaved != 2048 {
		t.Fatalf("stats = %+v", st)
	}
	if len(freed) != 0 {
		t.Fatalf("freed %v without eviction", freed)
	}
}

func TestBufferCacheInsertRace(t *testing.T) {
	c := NewBufferCache(1<<20, func(uint64) {})
	k := BufferKey{Hash: 9, Size: 64}
	c.Insert(k, 1)
	// A second uploader lost the race: the canonical entry wins and the
	// caller learns to free its duplicate.
	id, inserted := c.Insert(k, 2)
	if inserted || id != 1 {
		t.Fatalf("racing Insert = (%d, %v), want (1, false)", id, inserted)
	}
}

func TestBufferCacheEvictsIdleLRUOnly(t *testing.T) {
	var freed []uint64
	c := NewBufferCache(256, func(id uint64) { freed = append(freed, id) })
	kPinned := BufferKey{Hash: 1, Size: 128}
	kIdle := BufferKey{Hash: 2, Size: 128}
	c.Insert(kPinned, 10) // stays referenced
	c.Insert(kIdle, 11)
	c.Release(kIdle, 11) // idle, LRU victim candidate

	// 128 more bytes exceed the 256 cap: the idle entry must go, the
	// pinned one must survive.
	kNew := BufferKey{Hash: 3, Size: 128}
	c.Insert(kNew, 12)
	if len(freed) != 1 || freed[0] != 11 {
		t.Fatalf("freed %v, want [11]", freed)
	}
	if _, ok := c.Acquire(kPinned); !ok {
		t.Fatal("pinned entry evicted")
	}
	if _, ok := c.Acquire(kIdle); ok {
		t.Fatal("evicted entry still resident")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestBufferCachePurgeSkipsPinned(t *testing.T) {
	var freed int
	c := NewBufferCache(1<<20, func(uint64) { freed++ })
	kPinned := BufferKey{Hash: 1, Size: 64}
	kIdle := BufferKey{Hash: 2, Size: 64}
	c.Insert(kPinned, 1)
	c.Insert(kIdle, 2)
	c.Release(kIdle, 2)
	if n := c.Purge(); n != 1 || freed != 1 {
		t.Fatalf("Purge = %d (freed %d), want 1", n, freed)
	}
	if _, ok := c.Acquire(kPinned); !ok {
		t.Fatal("Purge dropped a pinned entry")
	}
}

func TestBufferCacheInvalidateOrphansPinned(t *testing.T) {
	var freed []uint64
	c := NewBufferCache(1<<20, func(id uint64) { freed = append(freed, id) })
	kPinned := BufferKey{Hash: 1, Size: 64}
	kIdle := BufferKey{Hash: 2, Size: 64}
	c.Insert(kPinned, 1) // still held
	c.Insert(kIdle, 2)
	c.Release(kIdle, 2)

	// Geometry changed: everything goes. The idle buffer frees now, the
	// pinned one is orphaned until its holder releases.
	if n := c.Invalidate(); n != 2 {
		t.Fatalf("Invalidate = %d, want 2", n)
	}
	if len(freed) != 1 || freed[0] != 2 {
		t.Fatalf("freed %v, want [2]", freed)
	}
	if _, ok := c.Acquire(kPinned); ok {
		t.Fatal("invalidated entry still acquirable")
	}
	if st := c.Stats(); st.Entries != 0 || st.OrphanedBufs != 1 || st.Invalidations != 2 {
		t.Fatalf("stats after invalidate = %+v", st)
	}

	// A fresh upload reuses the old key with a new board buffer: the
	// holder's eventual release must land on the orphan, not the new entry.
	c.Insert(kPinned, 9)
	c.Release(kPinned, 1)
	if len(freed) != 2 || freed[1] != 1 {
		t.Fatalf("freed %v, want [2 1]", freed)
	}
	if id, ok := c.Acquire(kPinned); !ok || id != 9 {
		t.Fatalf("new entry disturbed by orphan release: (%d, %v)", id, ok)
	}
	if st := c.Stats(); st.OrphanedBufs != 0 {
		t.Fatalf("orphan not cleared: %+v", st)
	}
}

func TestBufferCacheConcurrent(t *testing.T) {
	c := NewBufferCache(4096, func(uint64) {})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := BufferKey{Hash: uint64(i%16 + 1), Size: 256}
				id, ok := c.Acquire(k)
				if !ok {
					id, _ = c.Insert(k, uint64(g*1000+i))
				}
				c.Release(k, id)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.ResidentBytes > 4096 {
		t.Fatalf("resident %d over cap with nothing pinned", st.ResidentBytes)
	}
}

func TestMemoLookupStoreEvict(t *testing.T) {
	c := NewMemoCache(256)
	if _, ok := c.Lookup(1); ok {
		t.Fatal("hit on empty cache")
	}
	entry := func(owner uint64, n int) *MemoEntry {
		return &MemoEntry{Owner: owner, Bitstream: "bs", DeviceNanos: 5, Outputs: []MemoOutput{{BoardArg: 2, Data: make([]byte, n)}}}
	}
	if !c.Store(1, entry(100, 128)) {
		t.Fatal("store rejected")
	}
	if got, ok := c.Lookup(1); !ok || got.DeviceNanos != 5 || got.Outputs[0].BoardArg != 2 {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	// Oversized entries are rejected, not admitted by flushing the cache.
	if c.Store(2, entry(100, 512)) {
		t.Fatal("oversized entry admitted")
	}
	// Filling past the cap evicts the LRU entry (key 1).
	c.Store(3, entry(100, 128))
	c.Store(4, entry(100, 128))
	if _, ok := c.Lookup(1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.ResidentBytes > 256 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemoInvalidateOwnerAndClear(t *testing.T) {
	c := NewMemoCache(1 << 20)
	e := func(owner uint64) *MemoEntry {
		return &MemoEntry{Owner: owner, Outputs: []MemoOutput{{Data: []byte{1}}}}
	}
	c.Store(1, e(100))
	c.Store(2, e(100))
	c.Store(3, e(200))
	if n := c.InvalidateOwner(100); n != 2 {
		t.Fatalf("InvalidateOwner = %d, want 2", n)
	}
	if _, ok := c.Lookup(3); !ok {
		t.Fatal("other owner's entry dropped")
	}
	if n := c.Clear(); n != 1 {
		t.Fatalf("Clear = %d, want 1", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.ResidentBytes != 0 || st.Invalidations != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemoConcurrent(t *testing.T) {
	c := NewMemoCache(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := uint64(i % 32)
				if _, ok := c.Lookup(key); !ok {
					c.Store(key, &MemoEntry{Owner: uint64(g), Outputs: []MemoOutput{{Data: make([]byte, 64)}}})
				}
				if i%10 == 0 {
					c.InvalidateOwner(uint64(g))
				}
			}
		}(g)
	}
	wg.Wait()
	c.Clear()
	if st := c.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("resident %d after Clear", st.ResidentBytes)
	}
}

func BenchmarkContentHash64(b *testing.B) {
	for _, size := range []int{4 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = byte(i)
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ContentHash64(buf)
			}
		})
	}
}
