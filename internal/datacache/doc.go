// Package datacache holds the data-plane reuse caches of the Device
// Manager: a content-addressed cache of resident device buffers (repeated
// inputs such as CNN weights upload once per board) and an opt-in
// memoization cache of idempotent kernel results. Both are bytes-bounded
// LRU structures with explicit invalidation hooks; the manager wires their
// counters into /metrics and /debug/cache.
//
// The package is dependency-free (standard library only) so every layer —
// wire-adjacent client code, the manager, and the simulated board — can
// share the same content hash without import cycles.
package datacache
