package datacache

import (
	"container/list"
	"sync"
)

// MemoOutput is one buffer the memoized kernel run modified: the snapshot
// restores BoardArg's buffer on a hit. BoardArg is the kernel argument
// index, not a buffer handle — the hit may bind different (same-content)
// buffers than the run that populated the entry.
type MemoOutput struct {
	BoardArg int
	Data     []byte
}

// MemoEntry is a memoized kernel result: the modified-buffer snapshots
// plus the modelled device time the original run took, replayed into the
// hit's profiling notification.
type MemoEntry struct {
	Owner       uint64 // session that produced it; invalidated on expiry
	Bitstream   string
	DeviceNanos int64
	Outputs     []MemoOutput

	bytes int64
	elem  *list.Element
	key   uint64
}

// MemoCache memoizes idempotent kernel results keyed by a content-
// canonical digest of (owner, bitstream, kernel, geometry, argument
// contents). Bounded by total snapshot bytes with LRU eviction; explicit
// invalidation on reconfiguration (Clear) and session expiry
// (InvalidateOwner). All methods are safe for concurrent use.
type MemoCache struct {
	capBytes int64

	mu       sync.Mutex
	entries  map[uint64]*MemoEntry
	lru      *list.List
	resident int64

	hits, misses, evictions, invalidations uint64
	bytesSaved                             int64
}

// NewMemoCache returns a memo cache bounded to capBytes of snapshots.
func NewMemoCache(capBytes int64) *MemoCache {
	return &MemoCache{
		capBytes: capBytes,
		entries:  make(map[uint64]*MemoEntry),
		lru:      list.New(),
	}
}

// Lookup returns the entry for key, counting a hit or miss. The returned
// entry's snapshots are shared — callers must not mutate them.
func (c *MemoCache) Lookup(key uint64) (*MemoEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(ent.elem)
	c.hits++
	c.bytesSaved += ent.bytes
	return ent, true
}

// Store inserts a result under key, evicting LRU entries to fit. An entry
// larger than the whole bound is rejected (returns false) rather than
// flushing everything else for one oversized result.
func (c *MemoCache) Store(key uint64, ent *MemoEntry) bool {
	var size int64
	for _, o := range ent.Outputs {
		size += int64(len(o.Data))
	}
	if size > c.capBytes {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	ent.bytes = size
	ent.key = key
	ent.elem = c.lru.PushFront(ent)
	c.entries[key] = ent
	c.resident += size
	for c.resident > c.capBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*MemoEntry))
		c.evictions++
	}
	return true
}

func (c *MemoCache) removeLocked(ent *MemoEntry) {
	c.lru.Remove(ent.elem)
	delete(c.entries, ent.key)
	c.resident -= ent.bytes
}

// InvalidateOwner drops every entry produced by the given session. Called
// on session expiry and disconnect: memoized results are scoped to the
// tenant that computed them.
func (c *MemoCache) InvalidateOwner(owner uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		if ent := e.Value.(*MemoEntry); ent.Owner == owner {
			c.removeLocked(ent)
			n++
		}
		e = next
	}
	c.invalidations += uint64(n)
	return n
}

// Clear drops every entry. Called on board reconfiguration: the key
// already pins the bitstream, but reconfiguration is the explicit
// invalidation barrier the semantics promise.
func (c *MemoCache) Clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[uint64]*MemoEntry)
	c.lru.Init()
	c.resident = 0
	c.invalidations += uint64(n)
	return n
}

// MemoStats is a point-in-time snapshot of the memo cache counters.
type MemoStats struct {
	Entries       int    `json:"entries"`
	ResidentBytes int64  `json:"resident_bytes"`
	CapBytes      int64  `json:"cap_bytes"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	BytesSaved    int64  `json:"bytes_saved"`
}

// Stats snapshots the cache.
func (c *MemoCache) Stats() MemoStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MemoStats{
		Entries:       len(c.entries),
		ResidentBytes: c.resident,
		CapBytes:      c.capBytes,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		BytesSaved:    c.bytesSaved,
	}
}
