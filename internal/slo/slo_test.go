package slo

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"blastfunction/internal/alert"
	"blastfunction/internal/metrics"
)

func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("checkout:p99<50ms:99.9%")
	if err != nil {
		t.Fatal(err)
	}
	near := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	if o.Name != "checkout" || !near(o.Quantile, 0.99) || o.Target != 50*time.Millisecond ||
		!near(o.Goal, 0.999) || o.window() != time.Hour {
		t.Fatalf("parsed %+v", o)
	}
	o, err = ParseObjective("t1:p95<2s:99%:10m")
	if err != nil {
		t.Fatal(err)
	}
	if !near(o.Quantile, 0.95) || o.Target != 2*time.Second || !near(o.Goal, 0.99) || o.Window != 10*time.Minute {
		t.Fatalf("parsed %+v", o)
	}
	for _, bad := range []string{
		"", "justname", "a:b:c", "x:p99:99%", "x:p99<50ms:99.9%:zz",
		"x:p0<50ms:99%", "x:p100<50ms:99%", "x:p99<50ms:0%", "x:p99<50ms:100%",
		":p99<50ms:99%", "x:q99<50ms:99%", "x:p99<-5ms:99%",
	} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) accepted", bad)
		}
	}
}

func TestFlagRepeatable(t *testing.T) {
	var f Flag
	if err := f.Set("a:p99<50ms:99.9%"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("b:p95<1s:99%"); err != nil {
		t.Fatal(err)
	}
	if len(f.Objectives) != 2 || f.Objectives[1].Name != "b" {
		t.Fatalf("objectives %+v", f.Objectives)
	}
	if err := f.Set("nope"); err == nil {
		t.Fatal("bad objective accepted")
	}
}

func TestGoodAtTarget(t *testing.T) {
	buckets := []bkt{{0.05, 60}, {0.1, 80}, {math.Inf(1), 100}}
	if g := goodAtTarget(buckets, 0.1); g != 80 {
		t.Fatalf("at bound: %v", g)
	}
	if g := goodAtTarget(buckets, 0.075); g != 70 { // midway through the 0.05..0.1 bucket
		t.Fatalf("interpolated: %v", g)
	}
	if g := goodAtTarget(buckets, 1); g != 80 { // beyond last finite: conservative
		t.Fatalf("beyond finite: %v", g)
	}
}

// appendLatency appends one scrape of the cumulative latency buckets
// for tenant t1: cum01 requests at/under 100ms, cumInf total. An
// optional exemplar rides on the +Inf bucket.
func appendLatency(db *metrics.TSDB, at time.Time, cum01, cumInf float64, exemplar *metrics.Exemplar) {
	db.Append(at, []metrics.Sample{
		{Name: "bf_task_latency_seconds_bucket",
			Labels: metrics.Labels{"tenant": "t1", "le": "0.1"}, Value: cum01},
		{Name: "bf_task_latency_seconds_bucket",
			Labels: metrics.Labels{"tenant": "t1", "le": "+Inf"}, Value: cumInf,
			Exemplar: exemplar},
	})
}

func stateOf(t *testing.T, eng *alert.Engine, rule, sli string) alert.State {
	t.Helper()
	for _, st := range eng.Statuses() {
		if st.Rule == rule && st.Labels["slo"] == "t1" && st.Labels["sli"] == sli {
			return st.State
		}
	}
	return alert.StateInactive
}

// TestFastBurnGolden drives a known series through the multi-window
// burn math: healthy baseline → total surge → recovery, asserting the
// exact scrape at which the fast-burn rule fires (the long window must
// agree, not just the spiky short one) and the exact scrape at which it
// resolves (the short window clears long before the long one).
func TestFastBurnGolden(t *testing.T) {
	db := metrics.NewTSDB(time.Hour)
	eng := NewEngine(db)
	obj, err := ParseObjective("t1:p99<100ms:99.9%:1m")
	if err != nil {
		t.Fatal(err)
	}
	eng.Add(obj)
	eng.Windows = []BurnWindow{
		{Name: "fast", Severity: "page", Factor: 14.4, Long: 60 * time.Second, Short: 10 * time.Second},
	}

	alerts := alert.NewEngine(alert.Config{})
	alerts.Add(eng.Rules()...)

	start := time.Unix(1700000000, 0)
	now := start
	eng.Now = func() time.Time { return now }

	// Healthy baseline: +10 fast requests per 5s scrape for 60s.
	cum01, cumInf := 0.0, 0.0
	appendLatency(db, now, 0, 0, nil)
	for i := 1; i <= 12; i++ {
		now = start.Add(time.Duration(i) * 5 * time.Second)
		cum01 += 10
		cumInf += 10
		appendLatency(db, now, cum01, cumInf, nil)
		alerts.EvalOnce(now)
	}
	if st := stateOf(t, alerts, "SLOFastBurn", "latency"); st != alert.StateInactive {
		t.Fatalf("healthy baseline: state %v", st)
	}

	// Surge: every request blows the target. Short window burns
	// immediately, but the long window's bad fraction only crosses
	// 14.4 x budget (0.144) at the second surge scrape: 10/120 = 0.083
	// at t+65s, 20/140-ish = 0.167 at t+70s.
	ex := &metrics.Exemplar{TraceID: "00000000deadbeef", Value: 0.5, Time: now}
	now = start.Add(65 * time.Second)
	cumInf += 10
	appendLatency(db, now, cum01, cumInf, ex)
	alerts.EvalOnce(now)
	if st := stateOf(t, alerts, "SLOFastBurn", "latency"); st != alert.StateInactive {
		t.Fatalf("one surge scrape: long window should still veto, state %v", st)
	}

	now = start.Add(70 * time.Second)
	cumInf += 10
	appendLatency(db, now, cum01, cumInf, ex)
	alerts.EvalOnce(now)
	if st := stateOf(t, alerts, "SLOFastBurn", "latency"); st != alert.StateFiring {
		t.Fatalf("two surge scrapes: want firing, state %v", st)
	}

	// Budget over the 1m objective window is gone: bad fraction 0.167
	// against a 0.1% budget.
	rep := eng.ReportAt(now)
	if len(rep) != 1 {
		t.Fatalf("reports: %d", len(rep))
	}
	lat := rep[0].Latency
	if !lat.HasData || lat.BudgetRemaining != 0 {
		t.Fatalf("latency SLI %+v: want depleted budget", lat)
	}
	if lat.ExemplarTrace != "00000000deadbeef" {
		t.Fatalf("exemplar trace %q", lat.ExemplarTrace)
	}
	if len(lat.Burns) != 1 || !lat.Burns[0].Breached {
		t.Fatalf("burns %+v", lat.Burns)
	}

	// Recovery: fast requests again. One clean scrape still leaves bad
	// increase inside the 10s short window; the second clears it and
	// resolves the alert even though the 60s long window stays burnt.
	now = start.Add(75 * time.Second)
	cum01 += 10
	cumInf += 10
	appendLatency(db, now, cum01, cumInf, nil)
	alerts.EvalOnce(now)
	if st := stateOf(t, alerts, "SLOFastBurn", "latency"); st != alert.StateFiring {
		t.Fatalf("one clean scrape: want still firing, state %v", st)
	}

	now = start.Add(80 * time.Second)
	cum01 += 10
	cumInf += 10
	appendLatency(db, now, cum01, cumInf, nil)
	alerts.EvalOnce(now)
	if st := stateOf(t, alerts, "SLOFastBurn", "latency"); st != alert.StateResolved {
		t.Fatalf("short window clean: want resolved, state %v", st)
	}
}

// TestSlowBurnCatchesMildDegradation: a steady 10% bad fraction burns
// 10x budget — under the fast factor (14.4), over the slow one (6).
func TestSlowBurnCatchesMildDegradation(t *testing.T) {
	db := metrics.NewTSDB(time.Hour)
	eng := NewEngine(db)
	obj, err := ParseObjective("t1:p99<100ms:99.9%:10m")
	if err != nil {
		t.Fatal(err)
	}
	eng.Add(obj)
	eng.Windows = []BurnWindow{
		{Name: "fast", Severity: "page", Factor: 14.4, Long: 60 * time.Second, Short: 10 * time.Second},
		{Name: "slow", Severity: "warn", Factor: 6, Long: 60 * time.Second, Short: 10 * time.Second},
	}
	alerts := alert.NewEngine(alert.Config{})
	alerts.Add(eng.Rules()...)

	start := time.Unix(1700000000, 0)
	now := start
	cum01, cumInf := 0.0, 0.0
	appendLatency(db, now, 0, 0, nil)
	for i := 1; i <= 14; i++ {
		now = start.Add(time.Duration(i) * 5 * time.Second)
		cum01 += 9
		cumInf += 10
		appendLatency(db, now, cum01, cumInf, nil)
		alerts.EvalOnce(now)
	}
	if st := stateOf(t, alerts, "SLOSlowBurn", "latency"); st != alert.StateFiring {
		t.Fatalf("slow burn: want firing, state %v", st)
	}
	if st := stateOf(t, alerts, "SLOFastBurn", "latency"); st != alert.StateInactive {
		t.Fatalf("fast burn: want inactive at 10x, state %v", st)
	}
}

func TestAvailabilitySLI(t *testing.T) {
	db := metrics.NewTSDB(time.Hour)
	eng := NewEngine(db)
	obj, err := ParseObjective("fn1:p99<100ms:99%:1m")
	if err != nil {
		t.Fatal(err)
	}
	eng.Add(obj)
	start := time.Unix(1700000000, 0)
	for i := 0; i <= 6; i++ {
		at := start.Add(time.Duration(i) * 10 * time.Second)
		db.Append(at, []metrics.Sample{
			{Name: "bf_function_requests_total",
				Labels: metrics.Labels{"function": "fn1"}, Value: float64(100 * i)},
			{Name: "bf_function_errors_total",
				Labels: metrics.Labels{"function": "fn1"}, Value: float64(5 * i)},
		})
	}
	now := start.Add(60 * time.Second)
	eng.Now = func() time.Time { return now }
	rep := eng.ReportAt(now)
	av := rep[0].Availability
	if !av.HasData {
		t.Fatal("availability SLI has no data")
	}
	if av.Total != 600 || av.Good != 570 {
		t.Fatalf("good/total = %v/%v", av.Good, av.Total)
	}
	// 5% bad against a 1% budget: overspent, clamped to zero.
	if av.BudgetRemaining != 0 {
		t.Fatalf("budget remaining %v", av.BudgetRemaining)
	}
	// Latency SLI has no matching histogram: reports no data, full budget.
	if rep[0].Latency.HasData || rep[0].Latency.BudgetRemaining != 1 {
		t.Fatalf("latency SLI %+v", rep[0].Latency)
	}
}

func TestHandlerServesReports(t *testing.T) {
	db := metrics.NewTSDB(time.Hour)
	eng := NewEngine(db)
	obj, _ := ParseObjective("t1:p99<100ms:99.9%:1m")
	eng.Add(obj)
	now := time.Unix(1700000000, 0)
	eng.Now = func() time.Time { return now }
	appendLatency(db, now.Add(-10*time.Second), 0, 0, nil)
	appendLatency(db, now, 10, 10, nil)

	rec := httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var got []Report
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v (%s)", err, rec.Body.String())
	}
	if len(got) != 1 || got[0].Name != "t1" || !got[0].Latency.HasData {
		t.Fatalf("reports %+v", got)
	}
	if got[0].Latency.BudgetRemaining != 1 {
		t.Fatalf("healthy budget %v", got[0].Latency.BudgetRemaining)
	}

	rec = httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo?slo=absent", nil))
	if body := rec.Body.String(); body != "[]\n" && body != "null\n" {
		t.Fatalf("filtered body %q", body)
	}
}

// TestHandlerFlatSeriesIsValidJSON pins the regression where histogram
// series exist in the TSDB but show zero increase over the window (all
// traffic predates the first scrape): bucketQuantile is NaN there, and
// an unguarded NaN in the report made json.Marshal fail — turning the
// whole /debug/slo page into a 500.
func TestHandlerFlatSeriesIsValidJSON(t *testing.T) {
	db := metrics.NewTSDB(time.Hour)
	eng := NewEngine(db)
	obj, _ := ParseObjective("t1:p99<100ms:99.9%:1m")
	eng.Add(obj)
	now := time.Unix(1700000000, 0)
	eng.Now = func() time.Time { return now }
	// Two scrapes with identical cumulative counts: the series are
	// present (ok=true) but carry zero events in the window.
	appendLatency(db, now.Add(-10*time.Second), 30, 30, nil)
	appendLatency(db, now, 30, 30, nil)

	rec := httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var got []Report
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v (%s)", err, rec.Body.String())
	}
	if len(got) != 1 || got[0].Latency.HasData {
		t.Fatalf("flat series must report no data: %+v", got)
	}
	if q := got[0].Latency.ActualQuantile; q != 0 {
		t.Fatalf("flat series quantile %v, want omitted", q)
	}
}

func TestDefaultBurnWindows(t *testing.T) {
	ws := DefaultBurnWindows(time.Hour)
	if len(ws) != 2 || ws[0].Name != "fast" || ws[1].Name != "slow" {
		t.Fatalf("windows %+v", ws)
	}
	if ws[0].Factor != 14.4 || ws[0].Severity != "page" {
		t.Fatalf("fast %+v", ws[0])
	}
	if ws[1].Factor != 6 || ws[1].Severity != "warn" {
		t.Fatalf("slow %+v", ws[1])
	}
	for _, w := range ws {
		if w.Short >= w.Long {
			t.Fatalf("window %q: short %v >= long %v", w.Name, w.Short, w.Long)
		}
	}
	// Tiny test windows stay usable: shorts are floored, ordering holds.
	for _, w := range DefaultBurnWindows(2 * time.Minute) {
		if w.Short < 10*time.Second || w.Short >= w.Long {
			t.Fatalf("floored window %+v", w)
		}
	}
}
