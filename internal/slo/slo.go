// Package slo turns the raw series the Metrics Gatherer already scrapes
// into declared, per-tenant objectives: a latency quantile target plus
// an availability goal over a rolling window, with error-budget
// accounting and Google-SRE-style multi-window burn-rate alerting.
//
// An objective is declared as a flag ("checkout:p99<50ms:99.9%"), its
// SLIs are reconstructed from the TSDB — task-latency histogram buckets
// for the quantile, request/error counters for availability — and two
// derived burn-rate rules plug into the alert engine: a fast burn
// (factor 14.4, pages) that catches budget-destroying incidents within
// minutes, and a slow burn (factor 6, warns) that catches steady leaks
// before the window's budget quietly drains. Both use the long+short
// window AND-condition so a stale long window cannot keep an alert
// firing after the incident ends.
//
// Because the latency histograms carry exemplars (see
// metrics.Histogram.ObserveExemplar), every burning objective also
// reports the exact trace ID of a recent over-target request —
// `blastctl slo` to `blastctl trace <id>` is one hop.
package slo

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blastfunction/internal/alert"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
)

// Default SLI metrics. The manager exports per-tenant task residency;
// the gateway exports per-function request/error counters. An objective
// whose subject matches neither simply reports no data.
const (
	DefaultLatencyMetric = "bf_task_latency_seconds"
	defaultWindow        = time.Hour
)

// availabilityPairs are the (requests, errors) counter pairs tried in
// order when an objective doesn't name its own.
var availabilityPairs = [][2]string{
	{"bf_function_requests_total", "bf_function_errors_total"},
	{"bf_tenant_tasks_total", "bf_tenant_task_failures_total"},
}

// subjectLabels are the label keys an objective's subject is matched
// against: a series belongs to the objective when any of them equals
// the subject.
var subjectLabels = []string{"tenant", "function", "client"}

// Objective is one declared service-level objective.
type Objective struct {
	// Name identifies the objective in alerts and blastctl.
	Name string
	// Subject is the tenant/function/client label value whose series
	// feed the SLIs (defaults to Name).
	Subject string
	// Quantile is the latency SLI's goal fraction: p99 means 99% of
	// requests must finish under Target.
	Quantile float64
	// Target is the latency bound.
	Target time.Duration
	// Goal is the availability goal as a fraction (99.9% -> 0.999).
	Goal float64
	// Window is the error-budget window (default 1h).
	Window time.Duration
	// LatencyMetric overrides the histogram the latency SLI reads
	// (default bf_task_latency_seconds).
	LatencyMetric string
	// RequestsMetric/ErrorsMetric override the availability counters;
	// both empty tries the built-in pairs.
	RequestsMetric string
	ErrorsMetric   string
}

func (o Objective) subject() string {
	if o.Subject != "" {
		return o.Subject
	}
	return o.Name
}

func (o Objective) window() time.Duration {
	if o.Window > 0 {
		return o.Window
	}
	return defaultWindow
}

func (o Objective) latencyMetric() string {
	if o.LatencyMetric != "" {
		return o.LatencyMetric
	}
	return DefaultLatencyMetric
}

// matches reports whether a series' labels belong to this objective.
func (o Objective) matches(lbl metrics.Labels) bool {
	s := o.subject()
	for _, k := range subjectLabels {
		if lbl[k] == s {
			return true
		}
	}
	return false
}

// String renders the objective in its flag form.
func (o Objective) String() string {
	p := strconv.FormatFloat(o.Quantile*100, 'g', -1, 64)
	g := strconv.FormatFloat(o.Goal*100, 'g', -1, 64)
	return fmt.Sprintf("%s:p%s<%s:%s%%:%s", o.Name, p, o.Target, g, o.window())
}

// ParseObjective parses the flag form:
//
//	name:p99<50ms:99.9%[:window]
//
// name matches the tenant/function/client label of the underlying
// series; p99<50ms is the latency SLI (99% of requests under 50ms);
// 99.9% is the availability goal; the optional window (Go duration)
// defaults to 1h.
func ParseObjective(s string) (Objective, error) {
	var o Objective
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return o, fmt.Errorf("slo: %q: want name:pNN<target:goal%%[:window]", s)
	}
	o.Name = parts[0]
	if o.Name == "" {
		return o, fmt.Errorf("slo: %q: empty name", s)
	}
	lat := parts[1]
	lt := strings.IndexByte(lat, '<')
	if !strings.HasPrefix(lat, "p") || lt < 0 {
		return o, fmt.Errorf("slo: %q: latency part %q: want pNN<duration", s, lat)
	}
	pct, err := strconv.ParseFloat(lat[1:lt], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return o, fmt.Errorf("slo: %q: quantile %q: want a percentile in (0,100)", s, lat[1:lt])
	}
	o.Quantile = pct / 100
	target, err := time.ParseDuration(lat[lt+1:])
	if err != nil || target <= 0 {
		return o, fmt.Errorf("slo: %q: latency target %q: want a positive duration", s, lat[lt+1:])
	}
	o.Target = target
	goalText := strings.TrimSuffix(parts[2], "%")
	goal, err := strconv.ParseFloat(goalText, 64)
	if err != nil || goal <= 0 || goal >= 100 {
		return o, fmt.Errorf("slo: %q: availability goal %q: want a percentage in (0,100)", s, goalText)
	}
	o.Goal = goal / 100
	if len(parts) == 4 {
		w, err := time.ParseDuration(parts[3])
		if err != nil || w <= 0 {
			return o, fmt.Errorf("slo: %q: window %q: want a positive duration", s, parts[3])
		}
		o.Window = w
	}
	return o, nil
}

// Flag is a repeatable -slo flag value collecting objectives.
type Flag struct{ Objectives []Objective }

// String implements flag.Value.
func (f *Flag) String() string {
	names := make([]string, len(f.Objectives))
	for i, o := range f.Objectives {
		names[i] = o.String()
	}
	return strings.Join(names, ",")
}

// Set implements flag.Value, parsing and appending one objective.
func (f *Flag) Set(s string) error {
	o, err := ParseObjective(s)
	if err != nil {
		return err
	}
	f.Objectives = append(f.Objectives, o)
	return nil
}

// BurnWindow is one burn-rate alerting condition: the alert breaches
// while the budget burns faster than Factor× its sustainable rate over
// BOTH the long and the short window. The long window gives confidence
// the burn is real; the short window makes the alert resolve promptly
// once the burn stops (Google SRE workbook, ch. 5).
type BurnWindow struct {
	Name     string        `json:"name"`     // "fast" or "slow"
	Severity string        `json:"severity"` // "page" or "warn"
	Factor   float64       `json:"factor"`
	Long     time.Duration `json:"long_ns"`
	Short    time.Duration `json:"short_ns"`
}

// DefaultBurnWindows derives the two standard conditions from an
// objective's budget window. For the canonical 1h window: fast burn
// factor 14.4 over (5m, 30s) pages — at that rate the hour's budget is
// gone in ~4 minutes; slow burn factor 6 over (15m, 75s) warns. Windows
// scale with W but are floored so sub-minute test windows still have
// multiple scrapes in the short window.
func DefaultBurnWindows(window time.Duration) []BurnWindow {
	if window <= 0 {
		window = defaultWindow
	}
	fastLong := maxDur(window/12, 30*time.Second)
	slowLong := maxDur(window/4, 90*time.Second)
	return []BurnWindow{
		{Name: "fast", Severity: "page", Factor: 14.4, Long: fastLong, Short: maxDur(fastLong/10, 10*time.Second)},
		{Name: "slow", Severity: "warn", Factor: 6, Long: slowLong, Short: maxDur(slowLong/12, 15*time.Second)},
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Engine computes SLI values, error budgets and burn rates for a set of
// objectives over a TSDB.
type Engine struct {
	db *metrics.TSDB
	// Now is the injectable clock (default time.Now).
	Now func() time.Time
	// Windows overrides the burn conditions for every objective; nil
	// derives DefaultBurnWindows from each objective's budget window.
	Windows []BurnWindow

	mu         sync.Mutex
	objectives []Objective
}

// NewEngine creates an engine over db; add objectives with Add.
func NewEngine(db *metrics.TSDB) *Engine {
	return &Engine{db: db, Now: time.Now}
}

// Add registers objectives.
func (e *Engine) Add(objs ...Objective) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objectives = append(e.objectives, objs...)
}

// Objectives snapshots the registered objectives.
func (e *Engine) Objectives() []Objective {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Objective(nil), e.objectives...)
}

func (e *Engine) windowsFor(o Objective) []BurnWindow {
	if e.Windows != nil {
		return e.Windows
	}
	return DefaultBurnWindows(o.window())
}

// bkt is one cumulative histogram bucket reconstructed from the TSDB.
type bkt struct {
	ub  float64
	cum float64
}

// latencyBuckets sums, per le bound, the windowed increase of every
// bucket series of the objective's latency metric that matches its
// subject. ok is false when no matching series produced an increase
// (no traffic, or fewer than two scrapes in the window).
func (e *Engine) latencyBuckets(o Objective, now time.Time, window time.Duration) ([]bkt, bool) {
	byUB := make(map[float64]float64)
	any := false
	bucketMetric := o.latencyMetric() + "_bucket"
	for _, lbl := range e.db.Series(bucketMetric) {
		le, haveLE := lbl["le"]
		if !haveLE || !o.matches(lbl) {
			continue
		}
		ub := math.Inf(1)
		if le != "+Inf" {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			ub = v
		}
		inc, ok := e.db.Increase(bucketMetric, lbl, now, window)
		if !ok {
			continue
		}
		byUB[ub] += inc
		any = true
	}
	if !any {
		return nil, false
	}
	out := make([]bkt, 0, len(byUB))
	for ub, cum := range byUB {
		out = append(out, bkt{ub: ub, cum: cum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ub < out[j].ub })
	return out, true
}

// goodAtTarget linearly interpolates the cumulative count of requests
// at or under the target bound, Prometheus histogram_quantile-style.
// Targets beyond the last finite bucket count only the last finite
// bucket as good — the conservative reading.
func goodAtTarget(buckets []bkt, target float64) float64 {
	prevUB, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if math.IsInf(b.ub, 1) {
			return prevCum
		}
		if target <= b.ub {
			if b.ub <= prevUB {
				return b.cum
			}
			frac := (target - prevUB) / (b.ub - prevUB)
			return prevCum + (b.cum-prevCum)*frac
		}
		prevUB, prevCum = b.ub, b.cum
	}
	return prevCum
}

// bucketQuantile reads the q-quantile off reconstructed buckets.
func bucketQuantile(buckets []bkt, q float64) float64 {
	if len(buckets) == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].cum
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	prevUB, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.ub, 1) {
				return prevUB
			}
			if b.cum <= prevCum {
				return b.ub
			}
			return prevUB + (b.ub-prevUB)*(rank-prevCum)/(b.cum-prevCum)
		}
		prevUB, prevCum = b.ub, b.cum
	}
	return prevUB
}

// latencySLI returns (good, total) events over the window.
func (e *Engine) latencySLI(o Objective, now time.Time, window time.Duration) (good, total float64, ok bool) {
	buckets, ok := e.latencyBuckets(o, now, window)
	if !ok {
		return 0, 0, false
	}
	total = buckets[len(buckets)-1].cum
	if total <= 0 {
		return 0, 0, false
	}
	return goodAtTarget(buckets, o.Target.Seconds()), total, true
}

// availabilitySLI returns (good, total) events over the window from the
// first requests/errors counter pair with matching traffic.
func (e *Engine) availabilitySLI(o Objective, now time.Time, window time.Duration) (good, total float64, ok bool) {
	pairs := availabilityPairs
	if o.RequestsMetric != "" {
		pairs = [][2]string{{o.RequestsMetric, o.ErrorsMetric}}
	}
	for _, pair := range pairs {
		var requests, errors float64
		any := false
		for _, lbl := range e.db.Series(pair[0]) {
			if !o.matches(lbl) {
				continue
			}
			if inc, ok := e.db.Increase(pair[0], lbl, now, window); ok {
				requests += inc
				any = true
			}
		}
		if !any || requests <= 0 {
			continue
		}
		if pair[1] != "" {
			for _, lbl := range e.db.Series(pair[1]) {
				if !o.matches(lbl) {
					continue
				}
				if inc, ok := e.db.Increase(pair[1], lbl, now, window); ok {
					errors += inc
				}
			}
		}
		if errors > requests {
			errors = requests
		}
		return requests - errors, requests, true
	}
	return 0, 0, false
}

// burnRate converts (good, total) into a burn rate against a goal: 1.0
// means the budget drains exactly at the window's sustainable pace.
func burnRate(good, total, goal float64) float64 {
	budget := 1 - goal
	if total <= 0 || budget <= 0 {
		return 0
	}
	return (1 - good/total) / budget
}

// sliFunc is the shared shape of the two SLI extractors.
type sliFunc func(o Objective, now time.Time, window time.Duration) (good, total float64, ok bool)

func (e *Engine) sli(kind string) (sliFunc, func(Objective) float64) {
	if kind == "availability" {
		return e.availabilitySLI, func(o Objective) float64 { return o.Goal }
	}
	return e.latencySLI, func(o Objective) float64 { return o.Quantile }
}

// Rules derives the burn-rate alert rules — one per burn window, each
// observing every objective × SLI with data as a separate labelled
// series {slo, sli}. The observation value is min(long burn, short
// burn): the alert breaches only while both windows burn past the
// factor. For is zero because the long window already is the
// hysteresis.
func (e *Engine) Rules() []alert.Rule {
	canonical := e.Windows
	if canonical == nil {
		canonical = DefaultBurnWindows(defaultWindow)
	}
	rules := make([]alert.Rule, 0, len(canonical))
	for _, w := range canonical {
		name := w.Name
		title := name
		if title != "" {
			title = strings.ToUpper(title[:1]) + title[1:]
		}
		rules = append(rules, alert.Rule{
			Name: "SLO" + title + "Burn",
			Help: fmt.Sprintf("error budget burning over %gx its sustainable rate (%s windows)",
				w.Factor, name),
			Source:    e.burnSource(name),
			Op:        alert.OpGreater,
			Threshold: w.Factor,
			Severity:  w.Severity,
		})
	}
	return rules
}

// burnSource observes min(long, short) burn per objective and SLI for
// the named window.
func (e *Engine) burnSource(windowName string) alert.Source {
	return alert.Func(func(now time.Time) []alert.Observation {
		var out []alert.Observation
		for _, o := range e.Objectives() {
			var w *BurnWindow
			for _, cand := range e.windowsFor(o) {
				if cand.Name == windowName {
					w = &cand
					break
				}
			}
			if w == nil {
				continue
			}
			for _, kind := range []string{"latency", "availability"} {
				fn, goal := e.sli(kind)
				goodL, totalL, okL := fn(o, now, w.Long)
				goodS, totalS, okS := fn(o, now, w.Short)
				if !okL || !okS {
					continue
				}
				burn := math.Min(
					burnRate(goodL, totalL, goal(o)),
					burnRate(goodS, totalS, goal(o)))
				out = append(out, alert.Observation{
					Labels: metrics.Labels{"slo": o.Name, "sli": kind},
					Value:  burn,
				})
			}
		}
		return out
	})
}

// exemplarFor picks the freshest trace exemplar of an over-target
// request from the objective's latency buckets: the exact request
// behind the burning quantile. Falls back to any exemplar of the
// metric when no over-target one exists.
func (e *Engine) exemplarFor(o Objective) string {
	bucketMetric := o.latencyMetric() + "_bucket"
	target := o.Target.Seconds()
	var best metrics.Exemplar
	var fallback metrics.Exemplar
	for _, lbl := range e.db.Series(bucketMetric) {
		if _, haveLE := lbl["le"]; !haveLE || !o.matches(lbl) {
			continue
		}
		ex, ok := e.db.Exemplar(bucketMetric, lbl)
		if !ok {
			continue
		}
		if ex.Value > target && ex.Time.After(best.Time) {
			best = ex
		}
		if ex.Time.After(fallback.Time) {
			fallback = ex
		}
	}
	if best.TraceID != "" {
		return best.TraceID
	}
	return fallback.TraceID
}

// BurnStatus is one burn window's current reading for an SLI.
type BurnStatus struct {
	Window    BurnWindow `json:"window"`
	LongBurn  float64    `json:"long_burn"`
	ShortBurn float64    `json:"short_burn"`
	// Breached is the alert condition: both windows past the factor.
	Breached bool `json:"breached"`
	HasData  bool `json:"has_data"`
}

// SLIReport is one SLI's budget accounting over the objective window.
type SLIReport struct {
	Kind string  `json:"kind"` // "latency" or "availability"
	Goal float64 `json:"goal"` // fraction of events that must be good
	// Good/Total are events over the objective window.
	Good  float64 `json:"good"`
	Total float64 `json:"total"`
	// BadFraction is 1 - Good/Total.
	BadFraction float64 `json:"bad_fraction"`
	// BudgetRemaining is the unspent fraction of the error budget,
	// clamped to [0,1]: 1 = untouched, 0 = depleted (or overspent).
	BudgetRemaining float64 `json:"budget_remaining"`
	// ActualQuantile is the measured latency at the objective's
	// quantile over the window (latency SLI only), in seconds.
	ActualQuantile float64 `json:"actual_quantile,omitempty"`
	// ExemplarTrace is the trace ID of a recent over-target request
	// (latency SLI only; empty when none was sampled).
	ExemplarTrace string       `json:"exemplar_trace,omitempty"`
	Burns         []BurnStatus `json:"burns"`
	HasData       bool         `json:"has_data"`
}

// Report is one objective's full accounting.
type Report struct {
	Name         string        `json:"name"`
	Subject      string        `json:"subject"`
	Spec         string        `json:"spec"`
	Window       time.Duration `json:"window_ns"`
	Latency      SLIReport     `json:"latency"`
	Availability SLIReport     `json:"availability"`
}

// ReportAt computes every objective's report at the given instant.
func (e *Engine) ReportAt(now time.Time) []Report {
	objectives := e.Objectives()
	out := make([]Report, 0, len(objectives))
	for _, o := range objectives {
		r := Report{
			Name:    o.Name,
			Subject: o.subject(),
			Spec:    o.String(),
			Window:  o.window(),
		}
		for _, kind := range []string{"latency", "availability"} {
			fn, goalOf := e.sli(kind)
			goal := goalOf(o)
			sr := SLIReport{Kind: kind, Goal: goal, BudgetRemaining: 1}
			if good, total, ok := fn(o, now, o.window()); ok {
				sr.HasData = true
				sr.Good, sr.Total = good, total
				sr.BadFraction = 1 - good/total
				if budget := 1 - goal; budget > 0 {
					sr.BudgetRemaining = clamp01(1 - sr.BadFraction/budget)
				}
			}
			if kind == "latency" {
				if buckets, ok := e.latencyBuckets(o, now, o.window()); ok {
					// bucketQuantile is NaN while the series exist but
					// carry no events in the window; NaN is not valid
					// JSON, so it would 500 the whole /debug/slo page.
					if q := bucketQuantile(buckets, o.Quantile); !math.IsNaN(q) {
						sr.ActualQuantile = q
					}
				}
				sr.ExemplarTrace = e.exemplarFor(o)
			}
			for _, w := range e.windowsFor(o) {
				bs := BurnStatus{Window: w}
				goodL, totalL, okL := fn(o, now, w.Long)
				goodS, totalS, okS := fn(o, now, w.Short)
				if okL && okS {
					bs.HasData = true
					bs.LongBurn = burnRate(goodL, totalL, goal)
					bs.ShortBurn = burnRate(goodS, totalS, goal)
					bs.Breached = bs.LongBurn > w.Factor && bs.ShortBurn > w.Factor
				}
				sr.Burns = append(sr.Burns, bs)
			}
			if kind == "latency" {
				r.Latency = sr
			} else {
				r.Availability = sr
			}
		}
		out = append(out, r)
	}
	return out
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}

// Handler serves the reports as JSON at /debug/slo. ?slo= filters by
// objective name.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reports := e.ReportAt(e.Now())
		if name := r.URL.Query().Get("slo"); name != "" {
			kept := reports[:0]
			for _, rep := range reports {
				if rep.Name == name {
					kept = append(kept, rep)
				}
			}
			reports = kept
		}
		obs.ServeTail(w, r, reports)
	})
}
