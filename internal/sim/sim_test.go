package sim

import (
	"testing"
	"time"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*time.Millisecond, func() { order = append(order, 3) })
	e.After(10*time.Millisecond, func() { order = append(order, 1) })
	e.After(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != time.Second {
		t.Fatalf("clock = %v, want advanced to until", e.Now())
	}
}

func TestEngineEqualTimesFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of schedule order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.After(10*time.Millisecond, func() {
		times = append(times, e.Now())
		e.After(5*time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run(time.Second)
	if len(times) != 2 || times[0] != 10*time.Millisecond || times[1] != 15*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestEngineRunStopsAtUntil(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(2*time.Second, func() { fired = true })
	e.Run(time.Second)
	if fired {
		t.Fatal("event past the horizon fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(3 * time.Second)
	if !fired {
		t.Fatal("event within horizon did not fire")
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.After(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { at = e.Now() }) // in the past
	})
	e.Run(time.Second)
	if at != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to now", at)
	}
}

func TestServerFIFOAndBusyTime(t *testing.T) {
	e := NewEngine()
	s := e.NewServer()
	var completions []time.Duration
	var waits []time.Duration
	for i := 0; i < 3; i++ {
		s.Enqueue(10*time.Millisecond, func(wait, service time.Duration) {
			completions = append(completions, e.Now())
			waits = append(waits, wait)
		})
	}
	e.Run(time.Second)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v", completions)
		}
	}
	if waits[0] != 0 || waits[1] != 10*time.Millisecond || waits[2] != 20*time.Millisecond {
		t.Fatalf("waits = %v", waits)
	}
	if s.BusyTime() != 30*time.Millisecond {
		t.Fatalf("busy = %v", s.BusyTime())
	}
	// MaxQueue counts waiting jobs: the first was admitted straight into
	// service, so at most two waited.
	if s.Served() != 3 || s.MaxQueue() != 2 {
		t.Fatalf("served=%d maxq=%d", s.Served(), s.MaxQueue())
	}
	if s.TotalWait() != 30*time.Millisecond {
		t.Fatalf("total wait = %v", s.TotalWait())
	}
}

func TestServerInterleavedArrivals(t *testing.T) {
	e := NewEngine()
	s := e.NewServer()
	var log []string
	e.At(0, func() {
		s.Enqueue(20*time.Millisecond, func(w, _ time.Duration) { log = append(log, "a") })
	})
	e.At(5*time.Millisecond, func() {
		s.Enqueue(10*time.Millisecond, func(w, _ time.Duration) {
			log = append(log, "b")
			if w != 15*time.Millisecond {
				t.Errorf("b waited %v, want 15ms", w)
			}
		})
	})
	e.At(50*time.Millisecond, func() {
		s.Enqueue(time.Millisecond, func(w, _ time.Duration) {
			log = append(log, "c")
			if w != 0 {
				t.Errorf("c waited %v on idle server", w)
			}
		})
	})
	e.Run(time.Second)
	if len(log) != 3 || log[0] != "a" || log[1] != "b" || log[2] != "c" {
		t.Fatalf("log = %v", log)
	}
	if !almostEqual(s.BusyTime(), 31*time.Millisecond) {
		t.Fatalf("busy = %v", s.BusyTime())
	}
}

func TestServerUtilizationUnderLoad(t *testing.T) {
	// Open arrivals at 50/s with 10ms service: utilization converges to
	// ~50%.
	e := NewEngine()
	s := e.NewServer()
	interval := 20 * time.Millisecond
	var arrive func()
	n := 0
	arrive = func() {
		if n >= 500 {
			return
		}
		n++
		s.Enqueue(10*time.Millisecond, nil)
		e.After(interval, arrive)
	}
	e.At(0, arrive)
	e.Run(20 * time.Second)
	util := float64(s.BusyTime()) / float64(10*time.Second)
	if util < 0.49 || util > 0.51 {
		t.Fatalf("utilization = %.3f, want ~0.5", util)
	}
}

func almostEqual(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < time.Microsecond
}
