package sim_test

import (
	"fmt"
	"time"

	"blastfunction/internal/sim"
)

// ExampleEngine models two tenants sharing one FIFO board: requests at
// fixed intervals with 10ms service, reporting the utilization.
func ExampleEngine() {
	engine := sim.NewEngine()
	board := engine.NewServer()
	for tenant := 0; tenant < 2; tenant++ {
		offset := time.Duration(tenant) * 5 * time.Millisecond
		var issue func()
		next := offset
		issue = func() {
			if engine.Now() >= time.Second {
				return
			}
			board.Enqueue(10*time.Millisecond, func(wait, service time.Duration) {
				next += 50 * time.Millisecond
				engine.At(next, issue)
			})
		}
		engine.At(offset, issue)
	}
	engine.Run(time.Second)
	fmt.Printf("served %d tasks, utilization %.0f%%\n",
		board.Served(), 100*board.BusyTime().Seconds()/engine.Now().Seconds())
	// Output:
	// served 40 tasks, utilization 40%
}
