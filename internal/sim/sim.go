// Package sim is a small discrete-event simulation kernel.
//
// The paper's utilization experiments (Tables II-IV) run three nodes, five
// functions and hours of HTTP load against real boards. This reproduction
// regenerates them deterministically in milliseconds by simulating the
// same queueing structure in virtual time: closed-loop request generators,
// per-board FIFO servers (the Device Manager's central task queue plus the
// exclusive device), and the calibrated cost models for service times.
//
// The kernel is callback-based: events are (time, func) pairs in a binary
// heap; a Server models a capacity-1 resource with FIFO admission. Events
// scheduled at equal times fire in schedule order, which makes runs fully
// deterministic.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap orders events by time, then schedule order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine is the simulation clock and event queue. Not safe for concurrent
// use: a simulation runs on one goroutine by construction.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// NewEngine creates an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t; past times fire "now".
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d from now.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step fires the next event; it reports false when none remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the queue drains or the clock passes until.
// The clock is left at min(until, last event time).
func (e *Engine) Run(until time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of scheduled events (diagnostics).
func (e *Engine) Pending() int { return len(e.events) }

// Server is a capacity-1 FIFO resource: the combination of a Device
// Manager's central task queue and its exclusive board.
type Server struct {
	engine *Engine
	busy   bool
	queue  []*job

	busyTime  time.Duration
	served    uint64
	maxQueue  int
	waitTotal time.Duration
}

type job struct {
	service  time.Duration
	enqueued time.Duration
	done     func(wait, service time.Duration)
}

// NewServer creates a server on the engine.
func (e *Engine) NewServer() *Server { return &Server{engine: e} }

// Enqueue admits a job with the given service demand. When the job
// completes, done receives the time it waited in queue and its service
// time. FIFO order is strict.
func (s *Server) Enqueue(service time.Duration, done func(wait, service time.Duration)) {
	j := &job{service: service, enqueued: s.engine.Now(), done: done}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
	if !s.busy {
		s.startNext()
	}
}

func (s *Server) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	wait := s.engine.Now() - j.enqueued
	s.waitTotal += wait
	s.engine.After(j.service, func() {
		s.busyTime += j.service
		s.served++
		if j.done != nil {
			j.done(wait, j.service)
		}
		s.startNext()
	})
}

// QueueLen returns the number of waiting jobs (excluding the one in
// service).
func (s *Server) QueueLen() int { return len(s.queue) }

// Busy reports whether a job is in service.
func (s *Server) Busy() bool { return s.busy }

// BusyTime returns the cumulative service time delivered.
func (s *Server) BusyTime() time.Duration { return s.busyTime }

// Served returns the number of completed jobs.
func (s *Server) Served() uint64 { return s.served }

// MaxQueue returns the high-water mark of the queue.
func (s *Server) MaxQueue() int { return s.maxQueue }

// TotalWait returns the cumulative queueing delay across completed jobs.
func (s *Server) TotalWait() time.Duration { return s.waitTotal }

// RRServer is a capacity-1 resource with per-key round-robin admission
// instead of global FIFO: each key (client) has its own queue and the
// server cycles across non-empty queues. It exists for the scheduling
// ablation — the paper's Device Manager uses the FIFO Server.
type RRServer struct {
	engine *Engine
	busy   bool
	queues map[string][]*job
	ring   []string
	next   int

	busyTime time.Duration
	served   uint64
}

// NewRRServer creates a round-robin server on the engine.
func (e *Engine) NewRRServer() *RRServer {
	return &RRServer{engine: e, queues: make(map[string][]*job)}
}

// Enqueue admits a job under the given client key.
func (s *RRServer) Enqueue(key string, service time.Duration, done func(wait, service time.Duration)) {
	j := &job{service: service, enqueued: s.engine.Now(), done: done}
	if _, ok := s.queues[key]; !ok {
		s.ring = append(s.ring, key)
	}
	s.queues[key] = append(s.queues[key], j)
	if !s.busy {
		s.startNext()
	}
}

func (s *RRServer) startNext() {
	// Find the next key with pending work, scanning at most one full ring.
	for scanned := 0; scanned < len(s.ring); scanned++ {
		key := s.ring[s.next%len(s.ring)]
		s.next++
		q := s.queues[key]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.queues[key] = q[1:]
		s.busy = true
		wait := s.engine.Now() - j.enqueued
		s.engine.After(j.service, func() {
			s.busyTime += j.service
			s.served++
			if j.done != nil {
				j.done(wait, j.service)
			}
			s.startNext()
		})
		return
	}
	s.busy = false
}

// BusyTime returns the cumulative service time delivered.
func (s *RRServer) BusyTime() time.Duration { return s.busyTime }

// Served returns the number of completed jobs.
func (s *RRServer) Served() uint64 { return s.served }

// QueueLen returns the number of waiting jobs across all keys.
func (s *RRServer) QueueLen() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}
