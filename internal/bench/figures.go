// Package bench regenerates every figure and table of the paper's
// evaluation section.
//
// Figure 4 (the overhead study) is computed from the calibrated analytic
// models — the same models that drive both the live FPGA simulator and the
// discrete-event experiments — sweeping the exact size ranges the paper
// plots. Tables II-IV run the full multi-node scenarios on the
// discrete-event engine via package simcluster. Renderers produce aligned
// text matching the paper's rows and series, consumed by cmd/blastbench
// and the repository benchmarks.
package bench

import (
	"fmt"
	"strings"
	"time"

	"blastfunction/internal/model"
	"blastfunction/internal/simcluster"
)

// Point is one x-sample of a latency figure: the three series the paper
// plots (Native, BlastFunction over gRPC, BlastFunction over shm).
type Point struct {
	// Label is the x value ("1 KB", "640x480", "1024").
	Label string
	// Bytes is the total payload moved per request, for context columns.
	Bytes  int64
	Native time.Duration
	GRPC   time.Duration
	Shm    time.Duration
}

// Figure is one latency-vs-size figure.
type Figure struct {
	ID      string
	Caption string
	XHeader string
	Points  []Point
}

// rtts evaluates one workload under the three transports on a worker node
// (the paper measures the single-node overhead on a worker).
func rtts(w simcluster.Workload) (native, grpc, shm time.Duration) {
	c := model.WorkerNode()
	native = w.DeviceTime(c)
	grpc = native + w.RemoteOverhead(c, model.TransportGRPC)
	shm = native + w.RemoteOverhead(c, model.TransportShm)
	return native, grpc, shm
}

// Fig4a builds Figure 4a: write+read round-trip time against total
// transfer size, 1 KB to 2 GB.
func Fig4a() *Figure {
	f := &Figure{
		ID:      "fig4a",
		Caption: "Latency overhead for read and write operations (Fig. 4a)",
		XHeader: "total size",
	}
	for _, size := range []int64{
		1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20,
		64 << 20, 256 << 20, 512 << 20, 1 << 30, 2 << 30,
	} {
		n, g, s := rtts(simcluster.RWWorkload(size))
		f.Points = append(f.Points, Point{
			Label: formatBytes(size), Bytes: size, Native: n, GRPC: g, Shm: s,
		})
	}
	return f
}

// Fig4b builds Figure 4b: Sobel round-trip time against image size,
// 10x10 up to 1920x1080.
func Fig4b() *Figure {
	f := &Figure{
		ID:      "fig4b",
		Caption: "Latency overhead for the Sobel operator (Fig. 4b)",
		XHeader: "image",
	}
	for _, dim := range [][2]int{
		{10, 10}, {64, 64}, {160, 120}, {320, 240}, {640, 480},
		{800, 600}, {1024, 768}, {1280, 720}, {1600, 900}, {1920, 1080},
	} {
		w := simcluster.SobelWorkload(dim[0], dim[1])
		n, g, s := rtts(w)
		f.Points = append(f.Points, Point{
			Label:  fmt.Sprintf("%dx%d", dim[0], dim[1]),
			Bytes:  w.Tasks[0].HostBytes,
			Native: n, GRPC: g, Shm: s,
		})
	}
	return f
}

// Fig4c builds Figure 4c: MM round-trip time against matrix size, 16^2 up
// to 4096^2.
func Fig4c() *Figure {
	f := &Figure{
		ID:      "fig4c",
		Caption: "Latency overhead for the MM accelerator (Fig. 4c)",
		XHeader: "matrix n",
	}
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024, 2048, 3072, 4096} {
		w := simcluster.MMWorkload(n)
		nat, g, s := rtts(w)
		f.Points = append(f.Points, Point{
			Label: fmt.Sprintf("%d", n), Bytes: w.Tasks[0].HostBytes,
			Native: nat, GRPC: g, Shm: s,
		})
	}
	return f
}

// Render produces the figure as an aligned text table with the three
// series plus the overhead columns the paper discusses.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Caption)
	fmt.Fprintf(&b, "%-12s %-10s %14s %16s %16s %10s %10s\n",
		f.XHeader, "payload", "Native", "BlastFunction", "BlastFn shm", "grpc/nat", "shm-nat")
	for _, p := range f.Points {
		ratio := 0.0
		if p.Native > 0 {
			ratio = float64(p.GRPC) / float64(p.Native)
		}
		fmt.Fprintf(&b, "%-12s %-10s %14s %16s %16s %9.2fx %10s\n",
			p.Label, formatBytes(p.Bytes),
			fmtDur(p.Native), fmtDur(p.GRPC), fmtDur(p.Shm),
			ratio, fmtDur(p.Shm-p.Native))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3f s", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%d us", d.Microseconds())
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// RenderCSV produces the figure as CSV for external plotting tools:
// label,bytes,native_us,grpc_us,shm_us.
func (f *Figure) RenderCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Caption)
	fmt.Fprintf(&b, "%s,bytes,native_us,blastfunction_us,blastfunction_shm_us\n", f.XHeader)
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d\n",
			p.Label, p.Bytes, p.Native.Microseconds(), p.GRPC.Microseconds(), p.Shm.Microseconds())
	}
	return b.String()
}
