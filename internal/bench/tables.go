package bench

import (
	"fmt"
	"strings"
	"time"

	"blastfunction/internal/simcluster"
)

// ScenarioResult couples one scenario run (system x load level) with its
// identifying labels.
type ScenarioResult struct {
	System string // "BlastFunction" or "Native"
	Level  simcluster.LoadLevel
	Result *simcluster.Result
}

// UtilizationStudy is one of the Tables II-IV: both systems across the use
// case's load levels.
type UtilizationStudy struct {
	ID      string
	Caption string
	UseCase simcluster.UseCase
	Runs    []ScenarioResult
}

// levelsFor returns the load levels evaluated for a use case (AlexNet has
// no low-load configuration).
func levelsFor(uc simcluster.UseCase) []simcluster.LoadLevel {
	if uc == simcluster.UseAlexNet {
		return []simcluster.LoadLevel{simcluster.MediumLoad, simcluster.HighLoad}
	}
	return []simcluster.LoadLevel{simcluster.LowLoad, simcluster.MediumLoad, simcluster.HighLoad}
}

// RunStudy executes the full utilization study of a use case: the
// BlastFunction scenario (5 functions, Algorithm 1 placement, shm) and the
// Native scenario (3 functions pinned 1:1) at every load level.
func RunStudy(uc simcluster.UseCase) (*UtilizationStudy, error) {
	study := &UtilizationStudy{UseCase: uc}
	switch uc {
	case simcluster.UseSobel:
		study.ID, study.Caption = "table2", "Multi-function test results for the Sobel accelerator (Table II)"
	case simcluster.UseMM:
		study.ID, study.Caption = "table3", "Multi-function aggregate results for MM (Table III)"
	case simcluster.UseAlexNet:
		study.ID, study.Caption = "table4", "Multi-function aggregate results for PipeCNN/AlexNet (Table IV)"
	default:
		return nil, fmt.Errorf("bench: unknown use case %q", uc)
	}
	for _, level := range levelsFor(uc) {
		exp, err := simcluster.BlastFunctionExperiment(uc, level)
		if err != nil {
			return nil, err
		}
		res, err := simcluster.Run(exp)
		if err != nil {
			return nil, err
		}
		study.Runs = append(study.Runs, ScenarioResult{System: "BlastFunction", Level: level, Result: res})
	}
	for _, level := range levelsFor(uc) {
		exp, err := simcluster.NativeExperiment(uc, level)
		if err != nil {
			return nil, err
		}
		res, err := simcluster.Run(exp)
		if err != nil {
			return nil, err
		}
		study.Runs = append(study.Runs, ScenarioResult{System: "Native", Level: level, Result: res})
	}
	return study, nil
}

// RenderPerFunction renders the study in Table II's per-function layout.
func (s *UtilizationStudy) RenderPerFunction() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Caption)
	fmt.Fprintf(&b, "%-14s %-12s %-10s %-5s %8s %12s %12s %12s\n",
		"Type", "Config", "Function", "Node", "Util.", "Latency", "Processed", "Target")
	for _, run := range s.Runs {
		for _, fr := range run.Result.Functions {
			fmt.Fprintf(&b, "%-14s %-12s %-10s %-5s %7.2f%% %12s %9.2f rq/s %9.2f rq/s\n",
				run.System, shortLevel(run.Level), fr.Function, fr.Node,
				fr.Utilization*100, fmtDur(fr.AvgLatency), fr.Processed, fr.Target)
		}
	}
	return b.String()
}

// RenderAggregate renders the study in Table III/IV's aggregate layout.
func (s *UtilizationStudy) RenderAggregate() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Caption)
	fmt.Fprintf(&b, "%-14s %-12s %12s %12s %14s %12s\n",
		"Type", "Config", "Utilization", "Latency", "Processed", "Target")
	for _, run := range s.Runs {
		r := run.Result
		fmt.Fprintf(&b, "%-14s %-12s %11.2f%% %12s %11.2f rq/s %8.0f rq/s\n",
			run.System, shortLevel(run.Level),
			r.TotalUtilization*100, fmtDur(r.AvgLatency), r.Processed, r.Target)
	}
	return b.String()
}

func shortLevel(l simcluster.LoadLevel) string {
	return strings.TrimSuffix(string(l), " Load")
}

// RenderTable1 renders Table I: the request rates sent to each function
// per benchmark and load level.
func RenderTable1() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Tests configurations overview (Table I): target rq/s per function")
	fmt.Fprintf(&b, "%-9s %-12s %6s %6s %6s %6s %6s\n", "Use-Case", "Config", "1st", "2nd", "3rd", "4th", "5th")
	for _, uc := range []simcluster.UseCase{simcluster.UseSobel, simcluster.UseMM, simcluster.UseAlexNet} {
		for _, level := range levelsFor(uc) {
			rates, err := simcluster.TableIRates(uc, level)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "%-9s %-12s", uc, shortLevel(level))
			for _, r := range rates {
				fmt.Fprintf(&b, " %6.0f", r)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// Deviation summarizes target-vs-processed shortfall percentages per run,
// the comparison the paper's prose makes ("Native has a difference w.r.t.
// the target of ...%").
func (s *UtilizationStudy) Deviation() map[string]float64 {
	out := make(map[string]float64, len(s.Runs))
	for _, run := range s.Runs {
		key := run.System + "/" + string(run.Level)
		if run.Result.Target > 0 {
			out[key] = 100 * (run.Result.Target - run.Result.Processed) / run.Result.Target
		}
	}
	return out
}

// CheckShape verifies the paper's qualitative claims on a study: at every
// load level BlastFunction processes at least as many requests and reaches
// at least the utilization of Native, and its shortfall from target is no
// worse. It returns a description of any violated claim.
func (s *UtilizationStudy) CheckShape() []string {
	type pair struct{ bf, nat *simcluster.Result }
	byLevel := make(map[simcluster.LoadLevel]*pair)
	for _, run := range s.Runs {
		p := byLevel[run.Level]
		if p == nil {
			p = &pair{}
			byLevel[run.Level] = p
		}
		if run.System == "Native" {
			p.nat = run.Result
		} else {
			p.bf = run.Result
		}
	}
	var problems []string
	for level, p := range byLevel {
		if p.bf == nil || p.nat == nil {
			continue
		}
		if p.bf.Processed < p.nat.Processed {
			problems = append(problems, fmt.Sprintf("%s: BlastFunction processed %.1f < native %.1f",
				level, p.bf.Processed, p.nat.Processed))
		}
		if p.bf.TotalUtilization < p.nat.TotalUtilization {
			problems = append(problems, fmt.Sprintf("%s: BlastFunction utilization %.1f%% < native %.1f%%",
				level, p.bf.TotalUtilization*100, p.nat.TotalUtilization*100))
		}
		if p.bf.AvgLatency > p.nat.AvgLatency*3 {
			problems = append(problems, fmt.Sprintf("%s: BlastFunction latency %v not comparable to native %v",
				level, p.bf.AvgLatency, p.nat.AvgLatency))
		}
	}
	return problems
}

// FigureShapeChecks verifies Figure 4's qualitative claims against the
// generated curves, returning violated claims.
func FigureShapeChecks() []string {
	var problems []string
	a := Fig4a()
	last := a.Points[len(a.Points)-1]
	if ratio := float64(last.GRPC) / float64(last.Native); ratio < 3 || ratio > 5 {
		problems = append(problems, fmt.Sprintf("fig4a: gRPC/native at 2GB = %.2f, want ~4", ratio))
	}
	if over := last.Shm - last.Native; over < 120*time.Millisecond || over > 200*time.Millisecond {
		problems = append(problems, fmt.Sprintf("fig4a: shm overhead at 2GB = %v, want ~155ms", over))
	}
	b := Fig4b()
	if first := b.Points[0]; first.Native < 200*time.Microsecond || first.Native > 350*time.Microsecond {
		problems = append(problems, fmt.Sprintf("fig4b: native 10x10 = %v, want ~0.27ms", first.Native))
	}
	blast := b.Points[len(b.Points)-1]
	if blast.Native < 13500*time.Microsecond || blast.Native > 15500*time.Microsecond {
		problems = append(problems, fmt.Sprintf("fig4b: native 1080p = %v, want ~14.53ms", blast.Native))
	}
	if blast.GRPC < 19*time.Millisecond || blast.GRPC > 27*time.Millisecond {
		problems = append(problems, fmt.Sprintf("fig4b: gRPC 1080p = %v, want ~24ms", blast.GRPC))
	}
	if over := blast.Shm - blast.Native; over < time.Millisecond || over > 4*time.Millisecond {
		problems = append(problems, fmt.Sprintf("fig4b: shm constant overhead = %v, want ~2ms", over))
	}
	c := Fig4c()
	big := c.Points[len(c.Points)-1]
	if big.Native < 3450*time.Millisecond || big.Native > 3700*time.Millisecond {
		problems = append(problems, fmt.Sprintf("fig4c: native 4096 = %v, want ~3.571s", big.Native))
	}
	if over := big.Shm - big.Native; over < 10*time.Millisecond || over > 30*time.Millisecond {
		problems = append(problems, fmt.Sprintf("fig4c: shm overhead at 4096 = %v, want ~17ms", over))
	}
	if over := big.GRPC - big.Native; over < 70*time.Millisecond || over > 160*time.Millisecond {
		problems = append(problems, fmt.Sprintf("fig4c: gRPC overhead at 4096 = %v, want ~104ms", over))
	}
	return problems
}

// SpaceSharingStudy compares time-sharing against the space-sharing
// extension on the mixed Sobel+MM scenario (DESIGN.md section 7).
type SpaceSharingStudy struct {
	Level        simcluster.LoadLevel
	TimeSharing  *simcluster.Result
	SpaceSharing *simcluster.Result
}

// RunSpaceSharingStudy executes both modes at the given load level.
func RunSpaceSharingStudy(level simcluster.LoadLevel) (*SpaceSharingStudy, error) {
	study := &SpaceSharingStudy{Level: level}
	for _, space := range []bool{false, true} {
		exp, err := simcluster.MixedExperiment(level, space)
		if err != nil {
			return nil, err
		}
		res, err := simcluster.Run(exp)
		if err != nil {
			return nil, err
		}
		if space {
			study.SpaceSharing = res
		} else {
			study.TimeSharing = res
		}
	}
	return study, nil
}

// Render produces the comparison as aligned text.
func (s *SpaceSharingStudy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Space-sharing extension study, mixed Sobel+MM (%s)\n", s.Level)
	fmt.Fprintf(&b, "%-14s %12s %12s %14s %12s\n",
		"Mode", "Utilization", "Latency", "Processed", "Target")
	for _, row := range []struct {
		name string
		r    *simcluster.Result
	}{
		{"time-sharing", s.TimeSharing},
		{"space-sharing", s.SpaceSharing},
	} {
		fmt.Fprintf(&b, "%-14s %11.2f%% %12s %11.2f rq/s %8.0f rq/s\n",
			row.name, row.r.TotalUtilization*100, fmtDur(row.r.AvgLatency),
			row.r.Processed, row.r.Target)
	}
	fmt.Fprintln(&b, "\nPer-function placements (space-sharing mode):")
	for _, fr := range s.SpaceSharing.Functions {
		fmt.Fprintf(&b, "  %-10s node %-2s %7.2f%% util %10s %8.2f/%.0f rq/s\n",
			fr.Function, fr.Node, fr.Utilization*100, fmtDur(fr.AvgLatency), fr.Processed, fr.Target)
	}
	return b.String()
}
