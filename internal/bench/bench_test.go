package bench

import (
	"strings"
	"testing"

	"blastfunction/internal/simcluster"
)

func TestFigureShapesMatchPaper(t *testing.T) {
	for _, problem := range FigureShapeChecks() {
		t.Error(problem)
	}
}

func TestFiguresRender(t *testing.T) {
	for _, f := range []*Figure{Fig4a(), Fig4b(), Fig4c()} {
		text := f.Render()
		if !strings.Contains(text, "Native") || !strings.Contains(text, "BlastFunction") {
			t.Errorf("%s render missing series headers:\n%s", f.ID, text)
		}
		if len(f.Points) < 8 {
			t.Errorf("%s has only %d points", f.ID, len(f.Points))
		}
		// Monotone non-decreasing in size for every series.
		for i := 1; i < len(f.Points); i++ {
			if f.Points[i].Native < f.Points[i-1].Native ||
				f.Points[i].GRPC < f.Points[i-1].GRPC ||
				f.Points[i].Shm < f.Points[i-1].Shm {
				t.Errorf("%s: series not monotone at %s", f.ID, f.Points[i].Label)
			}
		}
		// Ordering: native <= shm <= grpc at every point.
		for _, p := range f.Points {
			if p.Shm < p.Native || p.GRPC < p.Shm {
				t.Errorf("%s: transport ordering violated at %s: %v %v %v",
					f.ID, p.Label, p.Native, p.Shm, p.GRPC)
			}
		}
	}
}

func TestTable1Render(t *testing.T) {
	text := RenderTable1()
	for _, want := range []string{"Sobel", "MM", "AlexNet", "60", "84", "Medium"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table I missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "AlexNet   Low") {
		t.Error("AlexNet must not have a low-load row")
	}
}

func TestSobelStudyShape(t *testing.T) {
	study, err := RunStudy(simcluster.UseSobel)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range study.CheckShape() {
		t.Error(p)
	}
	if len(study.Runs) != 6 { // 2 systems x 3 levels
		t.Fatalf("runs = %d", len(study.Runs))
	}
	text := study.RenderPerFunction()
	for _, want := range []string{"sobel-1", "sobel-5", "BlastFunction", "Native", "rq/s"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table II render missing %q", want)
		}
	}
	// Native has 3 function rows per level, BlastFunction 5.
	bfRows := 0
	natRows := 0
	for _, run := range study.Runs {
		if run.System == "Native" {
			natRows += len(run.Result.Functions)
		} else {
			bfRows += len(run.Result.Functions)
		}
	}
	if bfRows != 15 || natRows != 9 {
		t.Fatalf("rows: bf=%d nat=%d, want 15/9", bfRows, natRows)
	}
}

func TestMMStudyShape(t *testing.T) {
	study, err := RunStudy(simcluster.UseMM)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range study.CheckShape() {
		t.Error(p)
	}
	dev := study.Deviation()
	// Native's target shortfall grows with load (the paper's 4% -> 15% ->
	// 40% progression; our magnitudes differ, see EXPERIMENTS.md).
	natLow := dev["Native/"+string(simcluster.LowLoad)]
	natHigh := dev["Native/"+string(simcluster.HighLoad)]
	if natHigh <= natLow {
		t.Errorf("native shortfall must grow with load: low %.1f%% high %.1f%%", natLow, natHigh)
	}
	if dev["BlastFunction/"+string(simcluster.LowLoad)] > 3 {
		t.Errorf("BF low-load shortfall %.1f%%, want near zero", dev["BlastFunction/"+string(simcluster.LowLoad)])
	}
	// At high load BlastFunction serves substantially more absolute
	// traffic (Table III: 262.7 vs 121.9 rq/s in the paper).
	var bfHigh, natHighRes *simcluster.Result
	for _, run := range study.Runs {
		if run.Level == simcluster.HighLoad {
			if run.System == "Native" {
				natHighRes = run.Result
			} else {
				bfHigh = run.Result
			}
		}
	}
	if bfHigh.Processed <= natHighRes.Processed*1.1 {
		t.Errorf("BF high-load processed %.1f, want well above native %.1f",
			bfHigh.Processed, natHighRes.Processed)
	}
	if !strings.Contains(study.RenderAggregate(), "Utilization") {
		t.Error("aggregate render malformed")
	}
}

func TestAlexNetStudyShape(t *testing.T) {
	study, err := RunStudy(simcluster.UseAlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Runs) != 4 { // 2 systems x 2 levels
		t.Fatalf("runs = %d", len(study.Runs))
	}
	for _, p := range study.CheckShape() {
		t.Error(p)
	}
	// The paper: BlastFunction's AlexNet latency is visibly above native
	// (many kernel launches each paying control overhead).
	var bfMed, natMed *simcluster.Result
	for _, run := range study.Runs {
		if run.Level != simcluster.MediumLoad {
			continue
		}
		if run.System == "Native" {
			natMed = run.Result
		} else {
			bfMed = run.Result
		}
	}
	if bfMed.AvgLatency <= natMed.AvgLatency {
		t.Errorf("AlexNet BF latency %v must exceed native %v", bfMed.AvgLatency, natMed.AvgLatency)
	}
	ratio := float64(bfMed.AvgLatency) / float64(natMed.AvgLatency)
	if ratio < 1.1 || ratio > 2.0 {
		t.Errorf("AlexNet latency ratio = %.2f, paper shows ~1.4", ratio)
	}
	// But BlastFunction still processes more (5 vs 3 functions).
	if bfMed.Processed <= natMed.Processed {
		t.Errorf("AlexNet BF processed %.1f <= native %.1f", bfMed.Processed, natMed.Processed)
	}
}

func TestSpaceSharingStudy(t *testing.T) {
	study, err := RunSpaceSharingStudy(simcluster.MediumLoad)
	if err != nil {
		t.Fatal(err)
	}
	if study.TimeSharing == nil || study.SpaceSharing == nil {
		t.Fatal("both modes must run")
	}
	// Space-sharing raises the utilization ceiling (two regions per
	// board) at an area penalty visible in latency.
	if study.SpaceSharing.TotalUtilization <= study.TimeSharing.TotalUtilization {
		t.Errorf("space-sharing utilization %.1f%% <= time-sharing %.1f%%",
			study.SpaceSharing.TotalUtilization*100, study.TimeSharing.TotalUtilization*100)
	}
	if study.SpaceSharing.AvgLatency <= study.TimeSharing.AvgLatency {
		t.Errorf("space-sharing latency %v <= time-sharing %v (area penalty missing)",
			study.SpaceSharing.AvgLatency, study.TimeSharing.AvgLatency)
	}
	text := study.Render()
	for _, want := range []string{"time-sharing", "space-sharing", "Per-function"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
