package alert

import (
	"math"
	"sort"
	"strconv"
	"time"

	"blastfunction/internal/metrics"
)

// Observation is one evaluated sample: a label set and its current
// value. Rules compare the value against their threshold.
type Observation struct {
	Labels metrics.Labels
	Value  float64
}

// Source produces the observations a rule evaluates each tick. Sources
// enumerate every label set of their metric, so one rule covers every
// device/tenant/target without per-series configuration. A series that
// yields no observation is treated as not breaching.
type Source interface {
	Observations(now time.Time) []Observation
}

// Latest observes the most recent value of every series of a gauge
// metric — queue depths, bf_scrape_up, anything where the instantaneous
// value is the signal.
func Latest(db *metrics.TSDB, metric string) Source {
	return sourceFunc(func(now time.Time) []Observation {
		var out []Observation
		for _, lbl := range db.Series(metric) {
			if v, ok := db.Latest(metric, lbl); ok {
				out = append(out, Observation{Labels: lbl, Value: v})
			}
		}
		return out
	})
}

// Rate observes the per-second increase of every series of a counter
// metric over the trailing window — the burn-rate form used for
// bf_device_busy_seconds_total saturation (busy-seconds per wall second
// is utilization).
func Rate(db *metrics.TSDB, metric string, window time.Duration) Source {
	return sourceFunc(func(now time.Time) []Observation {
		var out []Observation
		for _, lbl := range db.Series(metric) {
			if v, ok := db.Rate(metric, lbl, now, window); ok {
				out = append(out, Observation{Labels: lbl, Value: v})
			}
		}
		return out
	})
}

// Delta observes last-minus-first of every series of a gauge metric
// over the trailing window — growth detection for gauges (goroutine
// count, heap bytes) where Rate's counter-reset handling would turn a
// recovery dip into a spurious positive.
func Delta(db *metrics.TSDB, metric string, window time.Duration) Source {
	return sourceFunc(func(now time.Time) []Observation {
		var out []Observation
		for _, lbl := range db.Series(metric) {
			if v, ok := db.Delta(metric, lbl, now, window); ok {
				out = append(out, Observation{Labels: lbl, Value: v})
			}
		}
		return out
	})
}

// Avg observes the windowed mean of every series of a gauge metric.
func Avg(db *metrics.TSDB, metric string, window time.Duration) Source {
	return sourceFunc(func(now time.Time) []Observation {
		var out []Observation
		for _, lbl := range db.Series(metric) {
			if v, ok := db.Avg(metric, lbl, now, window); ok {
				out = append(out, Observation{Labels: lbl, Value: v})
			}
		}
		return out
	})
}

// Quantile observes the q-quantile of a scraped histogram metric over
// the trailing window, reconstructed from its <metric>_bucket series
// (grouped by their non-le labels) with the same linear interpolation
// metrics.Histogram.Quantile uses. Groups with no traffic in the window
// yield no observation.
func Quantile(db *metrics.TSDB, metric string, q float64, window time.Duration) Source {
	bucketMetric := metric + "_bucket"
	return sourceFunc(func(now time.Time) []Observation {
		type bkt struct {
			ub  float64
			cum float64
		}
		groups := map[string]*struct {
			labels  metrics.Labels
			buckets []bkt
		}{}
		for _, lbl := range db.Series(bucketMetric) {
			le, ok := lbl["le"]
			if !ok {
				continue
			}
			ub := math.Inf(1)
			if le != "+Inf" {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					continue
				}
				ub = v
			}
			inc, ok := db.Increase(bucketMetric, lbl, now, window)
			if !ok {
				continue
			}
			base := make(metrics.Labels, len(lbl)-1)
			for k, v := range lbl {
				if k != "le" {
					base[k] = v
				}
			}
			key := base.String()
			g := groups[key]
			if g == nil {
				g = &struct {
					labels  metrics.Labels
					buckets []bkt
				}{labels: base}
				groups[key] = g
			}
			g.buckets = append(g.buckets, bkt{ub: ub, cum: inc})
		}
		var out []Observation
		for _, g := range groups {
			sort.Slice(g.buckets, func(i, j int) bool { return g.buckets[i].ub < g.buckets[j].ub })
			total := g.buckets[len(g.buckets)-1].cum
			if total <= 0 {
				continue
			}
			rank := q * total
			value := 0.0
			prevUB, prevCum := 0.0, 0.0
			for _, b := range g.buckets {
				if b.cum >= rank {
					if math.IsInf(b.ub, 1) {
						value = prevUB
						break
					}
					if b.cum > prevCum {
						value = prevUB + (b.ub-prevUB)*(rank-prevCum)/(b.cum-prevCum)
					} else {
						value = b.ub
					}
					break
				}
				prevUB, prevCum = b.ub, b.cum
			}
			out = append(out, Observation{Labels: g.labels, Value: value})
		}
		return out
	})
}

// Func adapts a plain function into a Source — used to alert on
// non-TSDB state such as Registry.UnhealthyPastGrace.
func Func(f func(now time.Time) []Observation) Source { return sourceFunc(f) }

type sourceFunc func(now time.Time) []Observation

func (f sourceFunc) Observations(now time.Time) []Observation { return f(now) }
