// Package alert evaluates threshold and burn-rate rules over the
// Accelerators Registry's TSDB — the layer that turns the series
// Algorithm 1 already reads (device busy-time, queue depth, tenant
// queue wait, scrape health) into firing/resolved operator signals.
// Rules carry a `for`-duration: a breach must persist that long before
// the alert fires (pending state), and a firing alert resolves on the
// first clean evaluation, Prometheus-style hysteresis without flapping
// on a single noisy scrape. Transitions are logged through logx and the
// current firing set is exported as bf_alerts_firing{rule,...} so the
// alerting layer is itself observable.
package alert

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
)

// State is one alert series' position in the
// inactive→pending→firing→resolved machine.
type State int8

const (
	StateInactive State = iota
	StatePending
	StateFiring
	StateResolved
)

// String names the state as rendered by blastctl and /debug/alerts.
func (s State) String() string {
	switch s {
	case StateInactive:
		return "inactive"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state name.
func (s State) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON accepts the name form.
func (s *State) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"inactive"`:
		*s = StateInactive
	case `"pending"`:
		*s = StatePending
	case `"firing"`:
		*s = StateFiring
	case `"resolved"`:
		*s = StateResolved
	}
	return nil
}

// Op is the comparison a rule applies to each observation.
type Op int8

const (
	// OpGreater breaches when value > threshold.
	OpGreater Op = iota
	// OpLess breaches when value < threshold.
	OpLess
)

func (o Op) String() string {
	if o == OpLess {
		return "<"
	}
	return ">"
}

// Rule is one alerting condition evaluated against every observation
// its source produces.
type Rule struct {
	// Name identifies the rule in bf_alerts_firing{rule=...} and blastctl.
	Name string
	// Help is the operator-facing one-liner.
	Help string
	// Source produces the observations to compare.
	Source Source
	// Op and Threshold define the breach condition.
	Op        Op
	Threshold float64
	// For is the hysteresis: the condition must hold this long before
	// the alert transitions pending→firing. Zero fires immediately.
	For time.Duration
	// Severity routes the firing transition: "page" logs at error level
	// (someone's phone buzzes), anything else — "warn" or empty — logs
	// at warn. Burn-rate rules use it to separate fast from slow burn.
	Severity string
}

func (r Rule) breached(v float64) bool {
	if r.Op == OpLess {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// Status is one alert series' externally visible state, served at
// /debug/alerts and rendered by `blastctl alerts`.
type Status struct {
	Rule      string         `json:"rule"`
	Help      string         `json:"help,omitempty"`
	Labels    metrics.Labels `json:"labels,omitempty"`
	State     State          `json:"state"`
	Severity  string         `json:"severity,omitempty"`
	Value     float64        `json:"value"`
	Threshold float64        `json:"threshold"`
	Op        string         `json:"op"`
	// Since is the time of the last state transition.
	Since      time.Time `json:"since"`
	FiredAt    time.Time `json:"fired_at,omitempty"`
	ResolvedAt time.Time `json:"resolved_at,omitempty"`
}

// Config wires the engine's collaborators.
type Config struct {
	// Log receives a structured event per firing/resolved transition
	// (nil logs nothing).
	Log *logx.Logger
	// Registry, when non-nil, exports bf_alerts_firing{rule,...} gauges.
	Registry *metrics.Registry
	// Now is the injectable clock (default time.Now).
	Now func() time.Time
	// OnFire, when set, is called once per pending→firing transition,
	// after the evaluation pass releases the engine lock (so the hook
	// may call back into the engine). The profile-capture hook hangs
	// here: evidence is snapshotted the moment a rule fires.
	OnFire func(rule Rule, st Status)
}

// seriesState is the per-(rule, label set) state machine.
type seriesState struct {
	labels       metrics.Labels
	state        State
	value        float64
	since        time.Time
	pendingSince time.Time
	firedAt      time.Time
	resolvedAt   time.Time
	gauge        metrics.Gauge
	hasGauge     bool
}

// Engine evaluates a rule set periodically and tracks per-series alert
// state across evaluations.
type Engine struct {
	log    *logx.Logger
	reg    *metrics.Registry
	now    func() time.Time
	onFire func(Rule, Status)

	mu     sync.Mutex
	rules  []Rule
	states []map[string]*seriesState // parallel to rules, keyed by Labels.String()
	fired  []firedEvent              // transitions of the in-progress pass
}

// firedEvent is one pending→firing transition queued for the OnFire
// hook, delivered after EvalOnce drops the engine lock.
type firedEvent struct {
	rule Rule
	st   Status
}

// NewEngine creates an empty engine; add rules with Add.
func NewEngine(cfg Config) *Engine {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Engine{log: cfg.Log, reg: cfg.Registry, now: cfg.Now, onFire: cfg.OnFire}
}

// Add registers rules. Not safe to call concurrently with EvalOnce/Run.
func (e *Engine) Add(rules ...Rule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range rules {
		e.rules = append(e.rules, r)
		e.states = append(e.states, make(map[string]*seriesState))
	}
}

// Run evaluates the rule set every interval until ctx is cancelled.
func (e *Engine) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			e.EvalOnce(e.now())
		}
	}
}

// EvalOnce runs one evaluation pass at the given instant. Exposed (with
// an explicit clock) so tests and the registry loop can drive it
// deterministically.
func (e *Engine) EvalOnce(now time.Time) {
	e.mu.Lock()
	for i, rule := range e.rules {
		states := e.states[i]
		seen := make(map[string]bool, len(states))
		for _, o := range rule.Source.Observations(now) {
			key := o.Labels.String()
			seen[key] = true
			st := states[key]
			if st == nil {
				st = &seriesState{labels: o.Labels, since: now}
				if e.reg != nil {
					lbl := metrics.Labels{"rule": rule.Name}
					for k, v := range o.Labels {
						if k != "rule" {
							lbl[k] = v
						}
					}
					st.gauge = e.reg.Gauge("bf_alerts_firing",
						"Alert rules currently firing (1) per rule and series.", lbl)
					st.hasGauge = true
				}
				states[key] = st
			}
			st.value = o.Value
			e.step(rule, st, rule.breached(o.Value), now)
		}
		// Series the source no longer produces (device gone, no traffic
		// in the window) count as not breaching, so firing alerts on
		// them resolve instead of wedging.
		for key, st := range states {
			if !seen[key] {
				e.step(rule, st, false, now)
			}
		}
	}
	fired := e.fired
	e.fired = nil
	e.mu.Unlock()
	if e.onFire != nil {
		for _, f := range fired {
			e.onFire(f.rule, f.st)
		}
	}
}

// step advances one series' state machine for a breached/clean tick.
func (e *Engine) step(rule Rule, st *seriesState, breached bool, now time.Time) {
	if breached {
		switch st.state {
		case StateInactive, StateResolved:
			st.state = StatePending
			st.pendingSince = now
			st.since = now
			if rule.For <= 0 {
				e.fire(rule, st, now)
			}
		case StatePending:
			if now.Sub(st.pendingSince) >= rule.For {
				e.fire(rule, st, now)
			}
		case StateFiring:
			// still firing
		}
		return
	}
	switch st.state {
	case StatePending:
		st.state = StateInactive
		st.since = now
	case StateFiring:
		st.state = StateResolved
		st.since = now
		st.resolvedAt = now
		if st.hasGauge {
			st.gauge.Set(0)
		}
		e.log.Info("alert resolved",
			"rule", rule.Name, "labels", st.labels.String(),
			"value", st.value, "firing_for", now.Sub(st.firedAt))
	}
}

func (e *Engine) fire(rule Rule, st *seriesState, now time.Time) {
	st.state = StateFiring
	st.since = now
	st.firedAt = now
	if st.hasGauge {
		st.gauge.Set(1)
	}
	logf := e.log.Warn
	if rule.Severity == "page" {
		logf = e.log.Error
	}
	logf("alert firing",
		"rule", rule.Name, "labels", st.labels.String(), "severity", rule.Severity,
		"value", st.value, "threshold", rule.Threshold, "op", rule.Op.String())
	if e.onFire != nil {
		e.fired = append(e.fired, firedEvent{rule: rule, st: Status{
			Rule: rule.Name, Help: rule.Help, Labels: st.labels,
			State: StateFiring, Severity: rule.Severity,
			Value: st.value, Threshold: rule.Threshold, Op: rule.Op.String(),
			Since: now, FiredAt: now,
		}})
	}
}

// Statuses snapshots every series that has ever left inactive, plus
// currently inactive series that exist (so operators see rules are being
// evaluated). Sorted by state severity (firing first), then rule name.
func (e *Engine) Statuses() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Status
	for i, rule := range e.rules {
		for _, st := range e.states[i] {
			out = append(out, Status{
				Rule:       rule.Name,
				Help:       rule.Help,
				Labels:     st.labels,
				State:      st.state,
				Severity:   rule.Severity,
				Value:      st.value,
				Threshold:  rule.Threshold,
				Op:         rule.Op.String(),
				Since:      st.since,
				FiredAt:    st.firedAt,
				ResolvedAt: st.resolvedAt,
			})
		}
	}
	rank := map[State]int{StateFiring: 0, StatePending: 1, StateResolved: 2, StateInactive: 3}
	sort.Slice(out, func(i, j int) bool {
		if rank[out[i].State] != rank[out[j].State] {
			return rank[out[i].State] < rank[out[j].State]
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Labels.String() < out[j].Labels.String()
	})
	return out
}

// FiringCount reports how many series are currently firing.
func (e *Engine) FiringCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, states := range e.states {
		for _, st := range states {
			if st.state == StateFiring {
				n++
			}
		}
	}
	return n
}

// Handler serves the alert statuses as JSON at /debug/alerts.
// ?state=<firing|pending|resolved|inactive> filters; ?n= tails.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		statuses := e.Statuses()
		if s := r.URL.Query().Get("state"); s != "" {
			kept := statuses[:0]
			for _, st := range statuses {
				if st.State.String() == s {
					kept = append(kept, st)
				}
			}
			statuses = kept
		}
		obs.ServeTail(w, r, statuses)
	})
}

// DefaultRules is the stock rule set over the series the registry
// already gathers for Algorithm 1, thresholds chosen for the simulated
// testbed: device saturation (busy-seconds burn rate ≈ utilization),
// central-queue backlog, tenant p95 queue wait, and scrape failure.
func DefaultRules(db *metrics.TSDB) []Rule {
	return []Rule{
		{
			Name:      "DeviceSaturated",
			Help:      "device busy-time rate above 90% of wall time",
			Source:    Rate(db, "bf_device_busy_seconds_total", 30*time.Second),
			Op:        OpGreater,
			Threshold: 0.9,
			For:       30 * time.Second,
		},
		{
			Name:      "QueueBacklog",
			Help:      "central queue depth sustained above 64 tasks",
			Source:    Latest(db, "bf_queue_depth"),
			Op:        OpGreater,
			Threshold: 64,
			For:       15 * time.Second,
		},
		{
			Name:      "TenantStarving",
			Help:      "tenant p95 queue wait above 1s",
			Source:    Quantile(db, "bf_tenant_queue_wait_seconds", 0.95, time.Minute),
			Op:        OpGreater,
			Threshold: 1,
			For:       15 * time.Second,
		},
		{
			Name:      "ScrapeDown",
			Help:      "metrics endpoint unreachable",
			Source:    Latest(db, "bf_scrape_up"),
			Op:        OpLess,
			Threshold: 1,
			For:       10 * time.Second,
		},
		{
			// bf_runtime_goroutines is sampled by every binary's
			// RuntimeCollector; a monotone climb of hundreds over two
			// minutes is a leak (blocked senders, abandoned waiters), not
			// load — load-driven goroutines come and go within a scrape.
			Name:      "GoroutineLeak",
			Help:      "goroutine count grew by more than 500 within 2m",
			Source:    Delta(db, "bf_runtime_goroutines", 2*time.Minute),
			Op:        OpGreater,
			Threshold: 500,
			For:       30 * time.Second,
			Severity:  "page",
		},
		{
			Name:      "HeapGrowth",
			Help:      "live heap grew by more than 256 MiB within 2m",
			Source:    Delta(db, "bf_runtime_heap_alloc_bytes", 2*time.Minute),
			Op:        OpGreater,
			Threshold: 256 << 20,
			For:       30 * time.Second,
			Severity:  "warn",
		},
		{
			// A board reflashing more than ~6 times a minute is thrashing
			// between accelerator families — each 2 s reprogram is pure
			// dead time, so sustained churn means the allocator is flipping
			// boards instead of batching onto flash windows.
			Name:      "ReconfigStorm",
			Help:      "board reconfiguration rate above 0.1/s sustained",
			Source:    Rate(db, "bf_reconfigurations_total", time.Minute),
			Op:        OpGreater,
			Threshold: 0.1,
			For:       30 * time.Second,
		},
	}
}
