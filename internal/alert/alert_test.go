package alert

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
)

var t0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func appendGauge(db *metrics.TSDB, t time.Time, name string, labels metrics.Labels, v float64) {
	db.Append(t, []metrics.Sample{{Name: name, Labels: labels, Value: v}})
}

func stateOf(e *Engine, rule string, labels metrics.Labels) (Status, bool) {
	for _, st := range e.Statuses() {
		if st.Rule == rule && st.Labels.String() == labels.String() {
			return st, true
		}
	}
	return Status{}, false
}

func TestForHysteresisAndTransitions(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	reg := metrics.NewRegistry()
	log := logx.New(logx.Config{Component: "alert"})
	e := NewEngine(Config{Log: log, Registry: reg})
	e.Add(Rule{
		Name: "QueueBacklog", Source: Latest(db, "bf_queue_depth"),
		Op: OpGreater, Threshold: 10, For: 10 * time.Second,
	})
	lbl := metrics.Labels{"device": "fpga-A"}

	// Below threshold: inactive.
	appendGauge(db, t0, "bf_queue_depth", lbl, 5)
	e.EvalOnce(t0)
	if st, _ := stateOf(e, "QueueBacklog", lbl); st.State != StateInactive {
		t.Fatalf("state = %v, want inactive", st.State)
	}

	// Breach: pending, not yet firing.
	appendGauge(db, t0.Add(5*time.Second), "bf_queue_depth", lbl, 20)
	e.EvalOnce(t0.Add(5 * time.Second))
	if st, _ := stateOf(e, "QueueBacklog", lbl); st.State != StatePending {
		t.Fatalf("state = %v, want pending", st.State)
	}
	if e.FiringCount() != 0 {
		t.Fatal("fired before For elapsed")
	}

	// Breach clears before For: back to inactive (hysteresis reset).
	appendGauge(db, t0.Add(10*time.Second), "bf_queue_depth", lbl, 3)
	e.EvalOnce(t0.Add(10 * time.Second))
	if st, _ := stateOf(e, "QueueBacklog", lbl); st.State != StateInactive {
		t.Fatalf("state = %v, want inactive after short breach", st.State)
	}

	// Sustained breach: pending, then firing once For has elapsed.
	appendGauge(db, t0.Add(20*time.Second), "bf_queue_depth", lbl, 30)
	e.EvalOnce(t0.Add(20 * time.Second))
	e.EvalOnce(t0.Add(25 * time.Second)) // 5s < For
	if st, _ := stateOf(e, "QueueBacklog", lbl); st.State != StatePending {
		t.Fatalf("state = %v, want still pending", st.State)
	}
	e.EvalOnce(t0.Add(31 * time.Second))
	st, _ := stateOf(e, "QueueBacklog", lbl)
	if st.State != StateFiring {
		t.Fatalf("state = %v, want firing after For", st.State)
	}
	if st.FiredAt.IsZero() || e.FiringCount() != 1 {
		t.Error("firing bookkeeping missing")
	}
	if !strings.Contains(reg.Render(), `bf_alerts_firing{device="fpga-A",rule="QueueBacklog"} 1`) {
		t.Errorf("gauge not exported:\n%s", reg.Render())
	}

	// Recovery: resolved on the first clean pass.
	appendGauge(db, t0.Add(40*time.Second), "bf_queue_depth", lbl, 1)
	e.EvalOnce(t0.Add(40 * time.Second))
	st, _ = stateOf(e, "QueueBacklog", lbl)
	if st.State != StateResolved || st.ResolvedAt.IsZero() {
		t.Fatalf("state = %+v, want resolved", st)
	}
	if !strings.Contains(reg.Render(), `bf_alerts_firing{device="fpga-A",rule="QueueBacklog"} 0`) {
		t.Errorf("gauge not cleared:\n%s", reg.Render())
	}

	// Both transitions logged.
	var fired, resolved bool
	for _, ev := range log.Tail() {
		switch ev.Msg {
		case "alert firing":
			fired = true
		case "alert resolved":
			resolved = true
		}
	}
	if !fired || !resolved {
		t.Errorf("transitions not logged: fired=%v resolved=%v", fired, resolved)
	}
}

func TestZeroForFiresImmediately(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	e := NewEngine(Config{})
	e.Add(Rule{Name: "Down", Source: Latest(db, "bf_scrape_up"), Op: OpLess, Threshold: 1})
	appendGauge(db, t0, "bf_scrape_up", metrics.Labels{"target": "fpga-A"}, 0)
	e.EvalOnce(t0)
	if e.FiringCount() != 1 {
		t.Fatal("zero-For rule did not fire on first breach")
	}
}

func TestDisappearedSeriesResolves(t *testing.T) {
	obsns := []Observation{{Labels: metrics.Labels{"device": "x"}, Value: 1}}
	src := Func(func(time.Time) []Observation { return obsns })
	e := NewEngine(Config{})
	e.Add(Rule{Name: "Unhealthy", Source: src, Op: OpGreater, Threshold: 0})
	e.EvalOnce(t0)
	if e.FiringCount() != 1 {
		t.Fatal("did not fire")
	}
	obsns = nil // device recovered: source stops producing the series
	e.EvalOnce(t0.Add(time.Second))
	st, ok := stateOf(e, "Unhealthy", metrics.Labels{"device": "x"})
	if !ok || st.State != StateResolved {
		t.Fatalf("state = %+v, want resolved when series disappears", st)
	}
}

func TestRateSourceUtilization(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	lbl := metrics.Labels{"device": "fpga-A"}
	// Busy-seconds counter growing 0.95s per wall second: 95% utilization.
	appendGauge(db, t0, "bf_device_busy_seconds_total", lbl, 100)
	appendGauge(db, t0.Add(10*time.Second), "bf_device_busy_seconds_total", lbl, 109.5)
	src := Rate(db, "bf_device_busy_seconds_total", 30*time.Second)
	obsns := src.Observations(t0.Add(10 * time.Second))
	if len(obsns) != 1 {
		t.Fatalf("observations = %v", obsns)
	}
	if v := obsns[0].Value; v < 0.94 || v > 0.96 {
		t.Errorf("utilization = %v, want ~0.95", v)
	}
}

func TestQuantileSourceFromScrapedBuckets(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	reg := metrics.NewRegistry()
	h := reg.Histogram("bf_tenant_queue_wait_seconds", "wait", metrics.Labels{"tenant": "mm"},
		[]float64{0.1, 0.5, 1, 5})

	scrape := func(at time.Time) {
		samples, err := metrics.Parse(reg.Render())
		if err != nil {
			t.Fatal(err)
		}
		db.Append(at, samples)
	}
	scrape(t0)
	// 10 observations in (0.5, 1]: p95 lands in that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.75)
	}
	scrape(t0.Add(10 * time.Second))

	src := Quantile(db, "bf_tenant_queue_wait_seconds", 0.95, 30*time.Second)
	obsns := src.Observations(t0.Add(10 * time.Second))
	if len(obsns) != 1 {
		t.Fatalf("observations = %v", obsns)
	}
	if obsns[0].Labels["tenant"] != "mm" {
		t.Errorf("labels = %v", obsns[0].Labels)
	}
	if v := obsns[0].Value; v <= 0.5 || v > 1 {
		t.Errorf("p95 = %v, want in (0.5, 1]", v)
	}

	// No traffic since the last scrape pair: windowed increase is zero,
	// the group yields no observation.
	scrape(t0.Add(50 * time.Second))
	if obsns := src.Observations(t0.Add(50*time.Second + time.Nanosecond)); len(obsns) != 0 {
		// window covers only the last scrape (single point) -> no obs
		t.Errorf("idle window produced observations: %v", obsns)
	}
}

func TestHandlerAndStateFilter(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	e := NewEngine(Config{})
	e.Add(Rule{Name: "Down", Help: "endpoint dead", Source: Latest(db, "bf_scrape_up"), Op: OpLess, Threshold: 1})
	appendGauge(db, t0, "bf_scrape_up", metrics.Labels{"target": "a"}, 0)
	appendGauge(db, t0, "bf_scrape_up", metrics.Labels{"target": "b"}, 1)
	e.EvalOnce(t0)

	req := httptest.NewRequest("GET", "/debug/alerts", nil)
	w := httptest.NewRecorder()
	e.Handler().ServeHTTP(w, req)
	var all []Status
	if err := json.Unmarshal(w.Body.Bytes(), &all); err != nil {
		t.Fatalf("decoding %s: %v", w.Body, err)
	}
	if len(all) != 2 {
		t.Fatalf("statuses = %v", all)
	}
	if all[0].State != StateFiring {
		t.Errorf("firing not sorted first: %v", all)
	}

	req = httptest.NewRequest("GET", "/debug/alerts?state=firing", nil)
	w = httptest.NewRecorder()
	e.Handler().ServeHTTP(w, req)
	var firing []Status
	if err := json.Unmarshal(w.Body.Bytes(), &firing); err != nil {
		t.Fatal(err)
	}
	if len(firing) != 1 || firing[0].Labels["target"] != "a" {
		t.Errorf("state filter = %v", firing)
	}
}

func TestDefaultRulesCoverExpectedSeries(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	rules := DefaultRules(db)
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name] = true
		if r.Source == nil {
			t.Errorf("rule %s has no source", r.Name)
		}
	}
	for _, want := range []string{"DeviceSaturated", "QueueBacklog", "TenantStarving", "ScrapeDown"} {
		if !names[want] {
			t.Errorf("default rules missing %s", want)
		}
	}
}
