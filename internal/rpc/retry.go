package rpc

import (
	"errors"
	"time"

	"blastfunction/internal/wire"
)

// Backoff is the retry policy of CallRetry: full-jitter exponential
// backoff, deterministic for a given Seed so tests and the DES harness can
// replay schedules.
type Backoff struct {
	// Attempts is the total number of tries (first call included). Zero or
	// one means no retry.
	Attempts int
	// Base is the backoff before the first retry; it doubles per attempt.
	// Zero selects 50ms.
	Base time.Duration
	// Max caps the (pre-jitter) backoff. Zero selects 2s.
	Max time.Duration
	// Seed drives the jitter; the zero seed is replaced by 1.
	Seed uint64
}

// DefaultBackoff is the policy the Remote Library applies to idempotent
// context/information calls: three tries, 50ms doubling to 2s, full
// jitter.
func DefaultBackoff(seed uint64) Backoff {
	return Backoff{Attempts: 3, Base: 50 * time.Millisecond, Max: 2 * time.Second, Seed: seed}
}

// next returns the jittered backoff for retry i (0-based) and advances the
// jitter state.
func (b *Backoff) next(i int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(i)
	if d > max || d <= 0 {
		d = max
	}
	// splitmix64 step; full jitter in (0, d].
	b.Seed += 0x9e3779b97f4a7c15
	z := b.Seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return 1 + time.Duration(z%uint64(d))
}

// CallRetry performs a unary call, retrying with jittered backoff when the
// per-call deadline expires while the connection stays healthy. Only pass
// idempotent methods (the context/information calls whose repetition is
// harmless — DeviceInfo, Heartbeat): a timed-out call may still execute on
// the manager, so re-sending a non-idempotent method would double-apply
// it. Connection loss (ErrManagerDown, ErrClosed) and application errors
// fail fast: neither a dead manager nor an invalid request gets better
// with repetition.
func (c *Client) CallRetry(b Backoff, timeout time.Duration, method wire.Method, segs ...[]byte) ([]byte, error) {
	if b.Seed == 0 {
		b.Seed = 1
	}
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(b.next(i - 1))
		}
		var body []byte
		body, err = c.CallWithTimeout(method, timeout, segs...)
		if err == nil {
			return body, nil
		}
		if !errors.Is(err, ErrDeadlineExceeded) {
			return nil, err
		}
	}
	return nil, err
}
