// Package rpc is the control/data transport between the Remote OpenCL
// Library and the Device Managers — the reproduction's stand-in for gRPC.
//
// It provides what the paper's flows need and nothing more:
//
//   - unary calls (context and information methods), matched to responses
//     by request ID;
//   - fire-and-forget requests (command-queue methods), whose progress
//     comes back as server-pushed notifications keyed by a client-chosen
//     tag — the paper's "pointer to the newly created event";
//   - a client-side completion queue: the reader goroutine pushes
//     notification payloads into a channel the Remote Library's connection
//     thread drains, exactly the structure of the paper's Figure 2.
//
// Requests on one connection are processed strictly in order by the
// server, which the Device Manager relies on for command-queue
// consistency ("if any operation is received or executed in the wrong
// order ... the results of the execution will change").
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types on the wire.
const (
	frameRequest  byte = 1
	frameResponse byte = 2
	frameNotify   byte = 3
)

// MaxFrameBytes bounds one frame: large enough for the 2 GB inline
// transfers of the Figure 4a sweep.
const MaxFrameBytes = 2<<30 + 1<<20

// ErrFrameTooLarge reports an oversized frame on the wire.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")

// header: 4-byte little-endian payload length + 1-byte frame type.
const headerLen = 5

// writeFrame writes one frame. Callers serialize access to w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	typ = hdr[4]
	if n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}
