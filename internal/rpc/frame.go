package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"blastfunction/internal/wire"
)

// Frame types on the wire.
const (
	frameRequest  byte = 1
	frameResponse byte = 2
	frameNotify   byte = 3
	// frameNotifyBatch carries a wire.OpNotificationBatch payload. Only
	// sent to peers that negotiated wire.ProtoVersionBatch or later.
	frameNotifyBatch byte = 4
)

// MaxFrameBytes bounds one frame: large enough for the 2 GB inline
// transfers of the Figure 4a sweep.
const MaxFrameBytes = 2<<30 + 1<<20

// ErrFrameTooLarge reports an oversized frame on the wire.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")

// header: 4-byte little-endian payload length + 1-byte frame type.
const headerLen = 5

// smallFrameMax is the cut-over between the copy path and the vectored
// path. Below it, copying the segments into one pooled buffer and issuing
// a single Write is cheaper than a writev; above it, the copy itself is
// the cost the vectored path exists to avoid.
const smallFrameMax = 4 << 10

// frameWriter assembles and writes frames without concatenating payloads.
// It is not safe for concurrent use; callers serialize through their write
// lock. The hdr and vec fields are per-writer scratch so steady-state
// writes allocate nothing.
type frameWriter struct {
	w   io.Writer
	hdr [headerLen]byte
	vec net.Buffers
}

// writeFrame writes one frame whose payload is the concatenation of segs.
// Small frames are coalesced into a single pooled buffer (one syscall for
// control traffic); larger frames go out as a vectored write (writev on
// TCP), so payload bytes are never copied into a combined buffer. Segments
// are not retained past the call.
func (fw *frameWriter) writeFrame(typ byte, segs ...[]byte) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	binary.LittleEndian.PutUint32(fw.hdr[:4], uint32(total))
	fw.hdr[4] = typ
	if total <= smallFrameMax {
		buf := wire.GetBuf(headerLen + total)
		copy(buf, fw.hdr[:])
		off := headerLen
		for _, s := range segs {
			off += copy(buf[off:], s)
		}
		_, err := fw.w.Write(buf)
		wire.PutBuf(buf)
		return err
	}
	vec := append(fw.vec[:0], fw.hdr[:])
	for _, s := range segs {
		if len(s) > 0 {
			vec = append(vec, s)
		}
	}
	// WriteTo advances (and nils out) the entries of the slice it is
	// invoked on, so hand it a separate header while keeping vec's backing
	// array as reusable scratch. The nil-out also means no payload slice
	// stays pinned by the scratch between frames.
	fw.vec = vec[:0]
	wr := vec
	_, err := (&wr).WriteTo(fw.w)
	return err
}

// readFrame reads one frame into a pooled buffer. Ownership of payload
// passes to the caller, who releases it with wire.PutBuf (directly or via
// the hand-off points described in doc.go) once decoded values that alias
// it are dead.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	typ = hdr[4]
	if n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload = wire.GetBuf(int(n))
	if _, err = io.ReadFull(r, payload); err != nil {
		wire.PutBuf(payload)
		return 0, nil, err
	}
	return typ, payload, nil
}
