package rpc

import (
	"encoding/binary"
	"testing"

	"blastfunction/internal/wire"
)

// benchHandler serves the transport benchmarks: method 1 is a minimal unary
// round trip, method 2 streams notifications shaped like the manager's
// completion pushes (pooled encoder head + vectored data segment).
type benchHandler struct{}

func (benchHandler) HandleConnect(*Conn)    {}
func (benchHandler) HandleDisconnect(*Conn) {}

func (benchHandler) HandleRequest(c *Conn, method wire.Method, body []byte) ([]byte, error) {
	if method != 2 {
		return nil, nil
	}
	n := int(binary.LittleEndian.Uint32(body[:4]))
	size := int(binary.LittleEndian.Uint32(body[4:8]))
	go func() {
		data := make([]byte, size)
		for i := 0; i < n; i++ {
			e := wire.GetEncoder(64)
			(&wire.OpNotification{Tag: uint64(i), State: wire.OpComplete, Data: data}).EncodeHead(e)
			err := c.Notify(e.Bytes(), data)
			e.Release()
			if err != nil {
				return
			}
		}
	}()
	return nil, nil
}

func benchClient(b *testing.B) *Client {
	b.Helper()
	s := NewServer(benchHandler{})
	s.Log = nil
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkFrameRoundTrip measures one unary request/response over live TCP
// with a 4 KiB body — the framing and pooling hot path without any manager
// logic on top.
func BenchmarkFrameRoundTrip(b *testing.B) {
	c := benchClient(b)
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Call(1, payload)
		if err != nil {
			b.Fatal(err)
		}
		wire.PutBuf(resp)
	}
}

// BenchmarkNotifyBurst measures server-push throughput: the server streams
// completion-shaped notifications with 256-byte payloads while the client
// drains them from the completion queue.
func BenchmarkNotifyBurst(b *testing.B) {
	c := benchClient(b)
	req := make([]byte, 8)
	binary.LittleEndian.PutUint32(req[:4], uint32(b.N))
	binary.LittleEndian.PutUint32(req[4:8], 256)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := c.Call(2, req); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		note, ok := <-c.Notifications()
		if !ok {
			b.Fatal("completion queue closed mid-burst")
		}
		wire.PutBuf(note.Payload)
	}
}
