package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/ocl"
	"blastfunction/internal/wire"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("rpc: client closed")

// DefaultCallTimeout bounds unary calls. Board reconfiguration is the
// slowest legitimate call at a few seconds; anything beyond a minute is a
// wedged manager.
const DefaultCallTimeout = time.Minute

// Client is the Remote OpenCL Library's connection to one Device Manager.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	reqID atomic.Uint64

	pendingMu sync.Mutex
	pending   map[uint64]chan callResult
	closedErr error

	// notifications is the completion queue of the paper's Figure 2: the
	// reader goroutine pushes notification payloads, the Remote Library's
	// connection thread pulls them and advances event state machines.
	notifications chan []byte

	// CallTimeout bounds unary calls; zero means DefaultCallTimeout.
	CallTimeout time.Duration
}

type callResult struct {
	body []byte
	err  error
}

// Dial connects to a Device Manager at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:          conn,
		pending:       make(map[uint64]chan callResult),
		notifications: make(chan []byte, 1024),
	}
	go c.readLoop()
	return c
}

// Notifications returns the completion queue. The channel closes when the
// connection drops.
func (c *Client) Notifications() <-chan []byte { return c.notifications }

// Call performs a unary request and waits for the response body.
func (c *Client) Call(method wire.Method, body []byte) ([]byte, error) {
	id := c.reqID.Add(1)
	ch := make(chan callResult, 1)
	c.pendingMu.Lock()
	if c.closedErr != nil {
		err := c.closedErr
		c.pendingMu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.pendingMu.Unlock()

	if err := c.send(id, method, body); err != nil {
		c.pendingMu.Lock()
		delete(c.pending, id)
		c.pendingMu.Unlock()
		return nil, err
	}
	timeout := c.CallTimeout
	if timeout == 0 {
		timeout = DefaultCallTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.body, res.err
	case <-timer.C:
		c.pendingMu.Lock()
		delete(c.pending, id)
		c.pendingMu.Unlock()
		return nil, fmt.Errorf("rpc: call %s timed out after %v", method, timeout)
	}
}

// Send performs a fire-and-forget request: no response is expected; the
// server reports progress through notifications. Used for the
// command-queue methods.
func (c *Client) Send(method wire.Method, body []byte) error {
	return c.send(0, method, body)
}

func (c *Client) send(reqID uint64, method wire.Method, body []byte) error {
	hdr := make([]byte, 10, 10+len(body))
	binary.LittleEndian.PutUint64(hdr[:8], reqID)
	binary.LittleEndian.PutUint16(hdr[8:10], uint16(method))
	payload := append(hdr, body...)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.pendingMu.Lock()
	closedErr := c.closedErr
	c.pendingMu.Unlock()
	if closedErr != nil {
		return closedErr
	}
	if err := writeFrame(c.conn, frameRequest, payload); err != nil {
		return fmt.Errorf("rpc: send %s: %w", method, err)
	}
	return nil
}

// Close tears the connection down; pending calls fail and the completion
// queue closes.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

func (c *Client) readLoop() {
	for {
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		switch typ {
		case frameResponse:
			c.dispatchResponse(payload)
		case frameNotify:
			c.notifications <- payload
		default:
			c.fail(fmt.Errorf("rpc: unexpected frame type %d", typ))
			return
		}
	}
}

func (c *Client) dispatchResponse(payload []byte) {
	d := wire.NewDecoder(payload)
	reqID := d.U64()
	status := ocl.Status(d.I32())
	errMsg := d.String()
	if d.Err() != nil {
		c.fail(fmt.Errorf("rpc: malformed response: %w", d.Err()))
		return
	}
	body := payload[len(payload)-d.Remaining():]
	c.pendingMu.Lock()
	ch, ok := c.pending[reqID]
	delete(c.pending, reqID)
	c.pendingMu.Unlock()
	if !ok {
		return // timed-out call; drop the late response
	}
	if status != ocl.Success {
		ch <- callResult{err: ocl.Errf(status, "%s", errMsg)}
		return
	}
	ch <- callResult{body: body}
}

// fail poisons the client: pending calls receive err, future calls fail,
// and the completion queue closes.
func (c *Client) fail(err error) {
	c.pendingMu.Lock()
	if c.closedErr != nil {
		c.pendingMu.Unlock()
		return
	}
	c.closedErr = err
	pending := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.pendingMu.Unlock()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
	close(c.notifications)
	c.conn.Close()
}
