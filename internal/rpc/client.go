package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/ocl"
	"blastfunction/internal/wire"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("rpc: client closed")

// ErrManagerDown marks errors caused by a lost or poisoned Device Manager
// connection: the transport failed underneath the caller, as opposed to
// the manager answering with an application error. Every error the client
// returns after its connection drops matches this sentinel under
// errors.Is, so callers can distinguish "the board's manager died" (fail
// over, migrate) from "my request was bad" (don't retry).
var ErrManagerDown = errors.New("rpc: manager down")

// ErrDeadlineExceeded marks a unary call that hit its per-call deadline
// while the connection itself stayed up — the manager is wedged or slow.
// Idempotent calls may be retried (see CallRetry); the late response, if
// it ever arrives, is discarded.
var ErrDeadlineExceeded = errors.New("rpc: call deadline exceeded")

// DefaultCallTimeout bounds unary calls. Board reconfiguration is the
// slowest legitimate call at a few seconds; anything beyond a minute is a
// wedged manager.
const DefaultCallTimeout = time.Minute

// Notification is one server push from the completion queue. Payload is a
// pooled buffer owned by the receiver (release with wire.PutBuf once
// consumed); Batch marks a frameNotifyBatch payload holding a
// wire.OpNotificationBatch instead of a single wire.OpNotification.
type Notification struct {
	Batch   bool
	Payload []byte
}

// Client is the Remote OpenCL Library's connection to one Device Manager.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	fw      frameWriter
	reqHdr  [10]byte // request header scratch, guarded by writeMu
	segTmp  [][]byte // segment scratch, guarded by writeMu

	reqID atomic.Uint64

	pendingMu sync.Mutex
	pending   map[uint64]chan callResult
	closedErr error

	// closed is closed by fail. It lets a blocked notification push and an
	// in-flight send observe teardown without racing the channel close:
	// readLoop is the only goroutine that closes notifications.
	closed chan struct{}

	// notifications is the completion queue of the paper's Figure 2: the
	// reader goroutine pushes notification payloads, the Remote Library's
	// connection thread pulls them and advances event state machines.
	notifications chan Notification

	dec wire.Decoder // response decoder scratch, used only by readLoop

	// CallTimeout bounds unary calls; zero means DefaultCallTimeout.
	CallTimeout time.Duration
}

type callResult struct {
	body []byte
	err  error
}

// Dial connects to a Device Manager at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:          conn,
		pending:       make(map[uint64]chan callResult),
		closed:        make(chan struct{}),
		notifications: make(chan Notification, 1024),
	}
	c.fw.w = conn
	go c.readLoop()
	return c
}

// Notifications returns the completion queue. The channel closes when the
// connection drops. Each Payload is pool-owned; see Notification.
func (c *Client) Notifications() <-chan Notification { return c.notifications }

// Call performs a unary request and waits for the response body. The body
// is assembled from segs without copying. The returned body is a pooled
// buffer: the caller releases it with wire.PutBuf once decoded values
// aliasing it are dead.
func (c *Client) Call(method wire.Method, segs ...[]byte) ([]byte, error) {
	return c.CallWithTimeout(method, 0, segs...)
}

// CallWithTimeout is Call with an explicit per-call deadline; zero selects
// the client's CallTimeout (then DefaultCallTimeout). On expiry it returns
// an error matching ErrDeadlineExceeded.
func (c *Client) CallWithTimeout(method wire.Method, timeout time.Duration, segs ...[]byte) ([]byte, error) {
	id := c.reqID.Add(1)
	ch := make(chan callResult, 1)
	c.pendingMu.Lock()
	if c.closedErr != nil {
		err := c.closedErr
		c.pendingMu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.pendingMu.Unlock()

	if err := c.send(id, method, segs...); err != nil {
		c.pendingMu.Lock()
		delete(c.pending, id)
		c.pendingMu.Unlock()
		// fail may have drained the entry into ch concurrently; a buffered
		// channel makes that send non-blocking either way.
		return nil, err
	}
	if timeout == 0 {
		timeout = c.CallTimeout
	}
	if timeout == 0 {
		timeout = DefaultCallTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.body, res.err
	case <-timer.C:
		c.pendingMu.Lock()
		_, present := c.pending[id]
		delete(c.pending, id)
		c.pendingMu.Unlock()
		if !present {
			// dispatchResponse (or fail) already claimed the entry and is
			// committed to depositing exactly one result into the buffered
			// channel; reclaim its pooled body so the race doesn't bleed
			// pool capacity.
			if res := <-ch; res.body != nil {
				wire.PutBuf(res.body)
			}
		}
		return nil, fmt.Errorf("%w: %s after %v", ErrDeadlineExceeded, method, timeout)
	}
}

// Send performs a fire-and-forget request: no response is expected; the
// server reports progress through notifications. Used for the
// command-queue methods. The request body is the concatenation of segs,
// written without an intermediate copy. Returns ErrClosed (or the close
// cause) promptly once the client is closed.
func (c *Client) Send(method wire.Method, segs ...[]byte) error {
	return c.send(0, method, segs...)
}

func (c *Client) send(reqID uint64, method wire.Method, segs ...[]byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// Check-then-write under the same lock teardown synchronizes with:
	// fail closes c.closed before it returns, so a send racing teardown
	// either sees the signal here or gets the write error mapped below.
	select {
	case <-c.closed:
		return c.closeCause()
	default:
	}
	binary.LittleEndian.PutUint64(c.reqHdr[:8], reqID)
	binary.LittleEndian.PutUint16(c.reqHdr[8:10], uint16(method))
	tmp := append(c.segTmp[:0], c.reqHdr[:])
	tmp = append(tmp, segs...)
	err := c.fw.writeFrame(frameRequest, tmp...)
	for i := range tmp {
		tmp[i] = nil // don't pin payloads in the scratch between sends
	}
	c.segTmp = tmp[:0]
	if err != nil {
		if cause := c.closeCause(); cause != nil {
			return cause
		}
		// A failed write means the transport is gone even if readLoop has
		// not observed it yet; report the loss with its typed sentinel.
		return fmt.Errorf("%w: send %s: %v", ErrManagerDown, method, err)
	}
	return nil
}

// closeCause returns the error fail recorded, or nil while the client is
// live.
func (c *Client) closeCause() error {
	c.pendingMu.Lock()
	defer c.pendingMu.Unlock()
	return c.closedErr
}

// Close tears the connection down; pending calls fail and the completion
// queue closes.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

func (c *Client) readLoop() {
	// readLoop is the sole closer of the completion queue, so a
	// notification push can never race the close (the seed closed it from
	// fail, panicking if a frame arrived during teardown).
	defer close(c.notifications)
	for {
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("%w: connection lost: %v", ErrManagerDown, err))
			return
		}
		switch typ {
		case frameResponse:
			c.dispatchResponse(payload)
		case frameNotify, frameNotifyBatch:
			select {
			case c.notifications <- Notification{Batch: typ == frameNotifyBatch, Payload: payload}:
			case <-c.closed:
				wire.PutBuf(payload)
				return
			}
		default:
			wire.PutBuf(payload)
			c.fail(fmt.Errorf("%w: unexpected frame type %d", ErrManagerDown, typ))
			return
		}
	}
}

func (c *Client) dispatchResponse(payload []byte) {
	d := &c.dec
	d.Reset(payload)
	reqID := d.U64()
	status := ocl.Status(d.I32())
	errMsg := d.String()
	if d.Err() != nil {
		wire.PutBuf(payload)
		c.fail(fmt.Errorf("%w: malformed response: %v", ErrManagerDown, d.Err()))
		return
	}
	body := payload[len(payload)-d.Remaining():]
	c.pendingMu.Lock()
	ch, ok := c.pending[reqID]
	delete(c.pending, reqID)
	c.pendingMu.Unlock()
	if !ok {
		wire.PutBuf(payload) // timed-out call; drop the late response
		return
	}
	if status != ocl.Success {
		wire.PutBuf(payload)
		ch <- callResult{err: ocl.Errf(status, "%s", errMsg)}
		return
	}
	// Ownership of the frame buffer passes to the caller through body
	// (same backing array; PutBuf classifies by capacity).
	ch <- callResult{body: body}
}

// fail poisons the client: pending calls receive err, future sends fail
// promptly, and readLoop (the queue's sole closer) shuts the completion
// queue.
func (c *Client) fail(err error) {
	c.pendingMu.Lock()
	if c.closedErr != nil {
		c.pendingMu.Unlock()
		return
	}
	c.closedErr = err
	pending := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.pendingMu.Unlock()
	close(c.closed) // single close: guarded by the closedErr check above
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
	c.conn.Close()
}
