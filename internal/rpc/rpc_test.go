package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blastfunction/internal/logx"
	"blastfunction/internal/ocl"
	"blastfunction/internal/wire"
)

// echoHandler echoes request bodies; method 99 returns an error; method 98
// pushes the body back as a notification; method 97 blocks briefly.
type echoHandler struct {
	connects    atomic.Int32
	disconnects atomic.Int32
	lastOrder   []byte
	orderMu     sync.Mutex
}

func (h *echoHandler) HandleConnect(c *Conn)    { h.connects.Add(1) }
func (h *echoHandler) HandleDisconnect(c *Conn) { h.disconnects.Add(1) }

func (h *echoHandler) HandleRequest(c *Conn, method wire.Method, body []byte) ([]byte, error) {
	switch method {
	case 99:
		return nil, ocl.Errf(ocl.ErrInvalidOperation, "nope: %s", body)
	case 98:
		if err := c.Notify(append([]byte("notify:"), body...)); err != nil {
			return nil, err
		}
		return []byte("sent"), nil
	case 97:
		time.Sleep(20 * time.Millisecond)
		return []byte("slow"), nil
	case 96: // record arrival order of fire-and-forget requests
		h.orderMu.Lock()
		h.lastOrder = append(h.lastOrder, body...)
		h.orderMu.Unlock()
		return nil, nil
	}
	return append([]byte("echo:"), body...), nil
}

func startServer(t *testing.T) (*Server, *echoHandler, string) {
	t.Helper()
	h := &echoHandler{}
	s := NewServer(h)
	s.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, h, addr
}

func TestUnaryCall(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(1, []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "echo:hello" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestErrorResponseCarriesStatus(t *testing.T) {
	_, _, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(99, []byte("x"))
	if !errors.Is(err, ocl.ErrInvalidOperation) {
		t.Fatalf("err = %v, want CL_INVALID_OPERATION", err)
	}
	// The connection survives an application error.
	if _, err := c.Call(1, []byte("again")); err != nil {
		t.Fatalf("call after error: %v", err)
	}
}

func TestNotificationsReachCompletionQueue(t *testing.T) {
	_, _, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(98, []byte("evt")); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-c.Notifications():
		if n.Batch {
			t.Fatal("single notify arrived marked as batch")
		}
		if string(n.Payload) != "notify:evt" {
			t.Fatalf("notification = %q", n.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("notification did not arrive")
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, _, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := c.Call(1, body)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if !bytes.Equal(resp, append([]byte("echo:"), body...)) {
				t.Errorf("call %d: resp %q", i, resp)
			}
		}(i)
	}
	wg.Wait()
}

func TestFireAndForgetOrdering(t *testing.T) {
	// Command-queue consistency depends on fire-and-forget requests being
	// processed in send order.
	_, h, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	for i := byte(0); i < 50; i++ {
		if err := c.Send(96, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	// A unary call after the sends acts as a barrier: it is processed
	// after them on the same connection.
	if _, err := c.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	h.orderMu.Lock()
	defer h.orderMu.Unlock()
	if len(h.lastOrder) != 50 {
		t.Fatalf("received %d sends, want 50", len(h.lastOrder))
	}
	for i := byte(0); i < 50; i++ {
		if h.lastOrder[i] != i {
			t.Fatalf("order[%d] = %d", i, h.lastOrder[i])
		}
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	_, _, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	big := make([]byte, 8<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	resp, err := c.Call(1, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp[5:], big) {
		t.Fatal("large payload corrupted")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	_, _, addr := startServer(t)
	c, _ := Dial(addr)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(97, nil) // slow call
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call must fail on close")
		}
	case <-time.After(time.Second):
		t.Fatal("pending call hung after close")
	}
	if _, err := c.Call(1, nil); err == nil {
		t.Fatal("call on closed client must fail")
	}
	// Completion queue closes.
	select {
	case _, ok := <-c.Notifications():
		if ok {
			t.Fatal("unexpected notification")
		}
	case <-time.After(time.Second):
		t.Fatal("completion queue did not close")
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	s, h, addr := startServer(t)
	c, _ := Dial(addr)
	if _, err := c.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	deadline := time.Now().Add(time.Second)
	for h.disconnects.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.disconnects.Load() == 0 {
		t.Fatal("disconnect hook did not run")
	}
	if _, err := c.Call(1, nil); err == nil {
		t.Fatal("call must fail after server close")
	}
}

func TestCallTimeout(t *testing.T) {
	_, _, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	c.CallTimeout = 5 * time.Millisecond
	if _, err := c.Call(97, nil); err == nil {
		t.Fatal("expected timeout")
	}
	// Late response to the timed-out call must not break later calls.
	c.CallTimeout = time.Second
	time.Sleep(30 * time.Millisecond)
	if _, err := c.Call(1, []byte("ok")); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
}

func TestSessionState(t *testing.T) {
	var got any
	h := &sessionHandler{check: func(v any) { got = v }}
	s := NewServer(h)
	s.Log = nil // silence expected transport errors
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(2, nil); err != nil {
		t.Fatal(err)
	}
	if got != "state-from-connect" {
		t.Fatalf("session = %v", got)
	}
}

type sessionHandler struct{ check func(any) }

func (h *sessionHandler) HandleConnect(c *Conn)    { c.SetSession("state-from-connect") }
func (h *sessionHandler) HandleDisconnect(c *Conn) {}
func (h *sessionHandler) HandleRequest(c *Conn, method wire.Method, body []byte) ([]byte, error) {
	if method == 2 {
		h.check(c.Session())
	}
	return nil, nil
}

func TestNotificationBurstDelivery(t *testing.T) {
	// The server pushes a large burst of notifications; all arrive in
	// order through the completion queue even while the client is slow to
	// drain (TCP backpressure, not drops).
	const burst = 5000
	h := &burstHandler{n: burst}
	s := NewServer(h)
	s.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	var got uint32
	deadline := time.After(10 * time.Second)
	for got < burst {
		select {
		case note := <-c.Notifications():
			seq := binary.LittleEndian.Uint32(note.Payload)
			if seq != got {
				t.Fatalf("notification %d arrived out of order (want %d)", seq, got)
			}
			got++
			if got%512 == 0 {
				time.Sleep(time.Millisecond) // deliberately slow consumer
			}
		case <-deadline:
			t.Fatalf("received %d/%d notifications", got, burst)
		}
	}
}

type burstHandler struct{ n int }

func (h *burstHandler) HandleConnect(c *Conn)    {}
func (h *burstHandler) HandleDisconnect(c *Conn) {}
func (h *burstHandler) HandleRequest(c *Conn, method wire.Method, body []byte) ([]byte, error) {
	go func() {
		for i := 0; i < h.n; i++ {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(i))
			if err := c.Notify(buf[:]); err != nil {
				return
			}
		}
	}()
	return nil, nil
}

func TestNotifyDuringCloseDoesNotPanic(t *testing.T) {
	// Regression: fail() used to close the completion queue while readLoop
	// could still be pushing a freshly read notification into it, panicking
	// with "send on closed channel". Hammer the race: a server that streams
	// notifications nonstop while the client tears down mid-stream.
	const rounds = 50
	h := &burstHandler{n: 100000}
	s := NewServer(h)
	s.Log = nil // silence expected transport errors
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < rounds; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call(1, nil); err != nil {
			t.Fatal(err)
		}
		// Drain a few, then close while the server is mid-burst.
		for j := 0; j < 3; j++ {
			<-c.Notifications()
		}
		c.Close()
		// The queue must close out even with frames still arriving.
		deadline := time.After(5 * time.Second)
		for open := true; open; {
			select {
			case _, open = <-c.Notifications():
			case <-deadline:
				t.Fatal("completion queue did not close after Close")
			}
		}
	}
}

func TestSendFailsPromptlyAfterClose(t *testing.T) {
	// Regression: Send used to race Close — a send slipping past the
	// closed check could block in the write or surface a bare network
	// error. After Close it must return the close cause, promptly.
	_, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	start := time.Now()
	if err := c.Send(96, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Send took %v after Close", d)
	}
	if _, err := c.Call(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentSendsRacingClose(t *testing.T) {
	// Calls and sends racing teardown must all return — with ErrClosed or
	// a transport error — never hang on a leaked pending entry.
	for round := 0; round < 20; round++ {
		_, _, addr := startServer(t)
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		done := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if _, err := c.Call(1, []byte("ping")); err != nil {
						return
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if err := c.Send(96, []byte{1}); err != nil {
						return
					}
				}
			}()
		}
		time.Sleep(time.Millisecond)
		c.Close()
		close(done)
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Fatal("calls leaked: goroutines still blocked after Close")
		}
	}
}
