package rpc

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is the probabilistic fault plan of a FaultConn. Probabilities are
// evaluated per Write with a deterministic RNG, so a given Seed replays
// the same failure schedule — chaos tests stay reproducible.
type Faults struct {
	// Seed drives the per-write RNG; the zero seed is replaced by 1.
	Seed uint64
	// DropProb silently discards a write (the peer never sees the frame;
	// deadlines, not errors, surface the loss).
	DropProb float64
	// DelayProb stalls a write by Delay before it goes out.
	DelayProb float64
	Delay     time.Duration
	// CloseMidFrameProb writes roughly half of the buffer, then closes the
	// connection — the peer reads a truncated frame.
	CloseMidFrameProb float64
}

// FaultConn wraps a net.Conn with injectable write-path faults: drops,
// delays and mid-frame closes, either probabilistic (Faults) or toggled
// directly from a test. Reads pass through untouched — a dropped response
// is modelled by dropping the peer's write.
type FaultConn struct {
	net.Conn

	mu  sync.Mutex
	rng uint64
	f   Faults

	dropWrites atomic.Bool
	closeNext  atomic.Bool

	// Stats, for asserting the plan actually fired.
	Dropped atomic.Int64
	Delayed atomic.Int64
}

// InjectFaults wraps conn with the given fault plan. Use Faults{} for a
// transparent wrapper driven only by DropWrites/CloseMidFrame toggles.
func InjectFaults(conn net.Conn, f Faults) *FaultConn {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultConn{Conn: conn, rng: seed, f: f}
}

// DropWrites toggles unconditional write blackholing: writes report
// success but never reach the peer. The canonical wedged-client
// simulation — TCP stays open, heartbeats stop arriving.
func (fc *FaultConn) DropWrites(on bool) { fc.dropWrites.Store(on) }

// CloseMidFrame makes the next write send only a prefix of its buffer and
// then close the connection.
func (fc *FaultConn) CloseMidFrame() { fc.closeNext.Store(true) }

// roll draws a uniform float in [0,1) from the deterministic RNG.
func (fc *FaultConn) roll() float64 {
	fc.mu.Lock()
	fc.rng += 0x9e3779b97f4a7c15
	z := fc.rng
	fc.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Write implements net.Conn with the fault plan applied.
func (fc *FaultConn) Write(b []byte) (int, error) {
	if fc.closeNext.CompareAndSwap(true, false) || (fc.f.CloseMidFrameProb > 0 && fc.roll() < fc.f.CloseMidFrameProb) {
		n := len(b) / 2
		if n > 0 {
			fc.Conn.Write(b[:n])
		}
		fc.Conn.Close()
		return n, net.ErrClosed
	}
	if fc.dropWrites.Load() || (fc.f.DropProb > 0 && fc.roll() < fc.f.DropProb) {
		fc.Dropped.Add(1)
		return len(b), nil
	}
	if fc.f.DelayProb > 0 && fc.f.Delay > 0 && fc.roll() < fc.f.DelayProb {
		fc.Delayed.Add(1)
		time.Sleep(fc.f.Delay)
	}
	return fc.Conn.Write(b)
}
