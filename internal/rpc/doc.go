// Package rpc is the control/data transport between the Remote OpenCL
// Library and the Device Managers — the reproduction's stand-in for gRPC.
//
// It provides what the paper's flows need and nothing more:
//
//   - unary calls (context and information methods), matched to responses
//     by request ID;
//   - fire-and-forget requests (command-queue methods), whose progress
//     comes back as server-pushed notifications keyed by a client-chosen
//     tag — the paper's "pointer to the newly created event";
//   - a client-side completion queue: the reader goroutine pushes
//     notification payloads into a channel the Remote Library's connection
//     thread drains, exactly the structure of the paper's Figure 2.
//
// Requests on one connection are processed strictly in order by the
// server, which the Device Manager relies on for command-queue
// consistency ("if any operation is received or executed in the wrong
// order ... the results of the execution will change").
//
// # Frame format
//
// Every frame is a 5-byte header followed by the payload:
//
//	offset  size  field
//	0       4     payload length, little-endian uint32
//	4       1     frame type
//	5       n     payload
//
// Frame types:
//
//	1  request        u64 request ID + u16 method + method-encoded body.
//	                  Request ID 0 marks a fire-and-forget request (no
//	                  response frame will be produced).
//	2  response       u64 request ID + i32 status + string error +
//	                  method-encoded body.
//	3  notify         one wire.OpNotification. The field order follows the
//	                  session's negotiated revision: peers below
//	                  wire.ProtoVersionBatch receive the proto-1 layout
//	                  (Data mid-message), newer peers the head+trailing-data
//	                  layout.
//	4  notify-batch   one wire.OpNotificationBatch: u32 count followed by
//	                  that many consecutive wire.OpNotification encodings.
//	                  Sent only to peers whose Hello negotiated
//	                  wire.ProtoVersionBatch or later; older peers receive
//	                  per-operation notify frames instead.
//
// Frames are written either as one coalesced buffer (payloads up to 4 KiB,
// one syscall) or as a vectored write (writev) of header and payload
// segments, so bulk data crosses the transport without an intermediate
// concatenation copy.
//
// # Trace propagation (proto 4)
//
// Sessions negotiating wire.ProtoVersionTrace may carry distributed-
// tracing identity on the command-queue requests: EnqueueWrite,
// EnqueueRead, EnqueueKernel and Flush each gain two trailing u64 fields
// (TraceID then SpanID), encoded only when the operation is part of a
// sampled trace. Untraced requests omit the fields entirely, so their
// frames stay byte-identical to proto 3 — decoders probe the remaining
// length, the same trailing-field convention every prior revision used.
// The transport itself is trace-agnostic: the fields live in the method
// bodies, and the rpc layer moves them like any other payload bytes.
//
// # Buffer ownership
//
// Frame payloads and encoder buffers come from the tiered pool in package
// wire (wire.GetBuf / wire.PutBuf). Each buffer has exactly one owner at a
// time; the hand-off points are:
//
//   - Client.Call: the returned body is a pooled slice owned by the
//     caller, who releases it with wire.PutBuf after decoding (values
//     decoded by aliasing must be dead or copied first).
//   - Client.Notifications: each Notification's Payload is a pooled slice
//     owned by the receiver (the Remote Library's connection thread),
//     released with wire.PutBuf after the notification — including any
//     aliased Data — has been consumed.
//   - Server handlers: the body passed to HandleRequest aliases the
//     request frame, which the server releases when the handler returns.
//     A handler that needs the payload to outlive the request (the
//     manager's inline EnqueueWrite data) calls Conn.RetainRequestPayload
//     and becomes the owner of the frame buffer, releasing it via
//     wire.PutBuf once consumed.
//   - Handler responses: the returned body's ownership transfers to the
//     server, which releases it after writing the response frame. Return
//     a buffer owned exclusively by the handler (wire.Encoder.Detach), or
//     nil — never a slice aliasing the request body or shared storage.
//   - Conn.Notify / Conn.NotifyBatch: segments are only read during the
//     call and never retained; the caller keeps ownership.
package rpc
