package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"blastfunction/internal/logx"
	"blastfunction/internal/ocl"
	"blastfunction/internal/wire"
)

// Handler implements a service exposed through a Server. The Device
// Manager is the only production implementation; tests provide fakes.
type Handler interface {
	// HandleConnect runs when a client connects, before any request.
	HandleConnect(c *Conn)
	// HandleRequest processes one request and returns the response body.
	// Returning an error produces an error response carrying the
	// ocl.Status extracted from it. Requests on a connection are
	// dispatched sequentially in arrival order.
	//
	// body aliases the request frame's pooled buffer, which the server
	// releases after the handler returns unless the handler called
	// c.RetainRequestPayload. The returned response body's ownership
	// transfers to the server (released after the response is written):
	// return a buffer the handler owns exclusively — typically
	// wire.Encoder.Detach — or nil, never a slice aliasing body or shared
	// storage.
	HandleRequest(c *Conn, method wire.Method, body []byte) ([]byte, error)
	// HandleDisconnect runs after the connection closed, for cleanup of
	// per-client resource pools.
	HandleDisconnect(c *Conn)
}

// Conn is the server-side view of one client connection.
type Conn struct {
	raw net.Conn

	writeMu sync.Mutex
	closed  bool
	fw      frameWriter

	// retained is set by RetainRequestPayload during a HandleRequest and
	// observed by serveConn; both run on the connection's serve goroutine,
	// so no lock is needed.
	retained bool

	sessionMu sync.Mutex
	session   any
}

// SetSession attaches service-private state to the connection.
func (c *Conn) SetSession(v any) {
	c.sessionMu.Lock()
	defer c.sessionMu.Unlock()
	c.session = v
}

// Session returns the state attached with SetSession.
func (c *Conn) Session() any {
	c.sessionMu.Lock()
	defer c.sessionMu.Unlock()
	return c.session
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// RetainRequestPayload transfers ownership of the current request's frame
// buffer from the server to the handler: the server will not release it
// when HandleRequest returns, and the handler (or whoever it hands the
// buffer to) must wire.PutBuf it — through any slice aliasing it — once
// consumed. Only valid while inside HandleRequest for that request.
func (c *Conn) RetainRequestPayload() { c.retained = true }

// Notify pushes a notification frame whose payload is the concatenation
// of segs (written without an intermediate copy). Safe for concurrent
// use; the Device Manager's worker calls it from outside the request
// loop. Segments are not retained past the call.
func (c *Conn) Notify(segs ...[]byte) error {
	return c.push(frameNotify, segs)
}

// NotifyBatch pushes a batch notification frame (wire.OpNotificationBatch
// payload assembled from segs). The caller must have negotiated
// wire.ProtoVersionBatch with this peer. Safe for concurrent use.
func (c *Conn) NotifyBatch(segs ...[]byte) error {
	return c.push(frameNotifyBatch, segs)
}

func (c *Conn) push(typ byte, segs [][]byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return errors.New("rpc: connection closed")
	}
	return c.fw.writeFrame(typ, segs...)
}

func (c *Conn) respond(reqID uint64, status ocl.Status, errMsg string, body []byte) error {
	e := wire.GetEncoder(len(errMsg) + 16)
	e.U64(reqID)
	e.I32(int32(status))
	e.String(errMsg)
	c.writeMu.Lock()
	if c.closed {
		c.writeMu.Unlock()
		e.Release()
		return errors.New("rpc: connection closed")
	}
	err := c.fw.writeFrame(frameResponse, e.Bytes(), body)
	c.writeMu.Unlock()
	e.Release()
	return err
}

// Close terminates the connection.
func (c *Conn) Close() error {
	c.writeMu.Lock()
	c.closed = true
	c.writeMu.Unlock()
	return c.raw.Close()
}

// Server accepts connections and dispatches requests to a Handler.
type Server struct {
	handler Handler
	// Log receives transport-level failures as structured events;
	// defaults to logx.Default("rpc"). Set before Serve/Listen.
	Log *logx.Logger
	// WrapConn, when set, wraps every accepted connection before it is
	// served. Chaos tests install a FaultConn here to inject transport
	// failures on the manager side. Set before Serve/Listen.
	WrapConn func(net.Conn) net.Conn

	mu    sync.Mutex
	ln    net.Listener
	conns map[*Conn]struct{}
	done  bool
}

// NewServer creates a server for the handler.
func NewServer(h Handler) *Server {
	return &Server{handler: h, Log: logx.Default("rpc"), conns: make(map[*Conn]struct{})}
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		raw, err := ln.Accept()
		if err != nil {
			return err
		}
		if s.WrapConn != nil {
			raw = s.WrapConn(raw)
		}
		conn := &Conn{raw: raw}
		conn.fw.w = raw
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			raw.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Listen starts serving on a fresh TCP listener bound to addr (use
// "127.0.0.1:0" for tests) and returns the bound address. Serving proceeds
// on a background goroutine until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
			s.Log.Error("rpc server: serve failed", "err", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener and closes every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	ln := s.ln
	conns := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) serveConn(c *Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.handler.HandleDisconnect(c)
	}()
	s.handler.HandleConnect(c)
	for {
		typ, payload, err := readFrame(c.raw)
		if err != nil {
			return
		}
		if typ != frameRequest {
			wire.PutBuf(payload)
			s.Log.Warn("rpc server: unexpected frame type", "type", int(typ), "peer", c.RemoteAddr().String())
			return
		}
		if len(payload) < 10 {
			wire.PutBuf(payload)
			s.Log.Warn("rpc server: short request", "peer", c.RemoteAddr().String())
			return
		}
		reqID := binary.LittleEndian.Uint64(payload[:8])
		method := wire.Method(binary.LittleEndian.Uint16(payload[8:10]))
		body := payload[10:]
		c.retained = false
		resp, err := s.handler.HandleRequest(c, method, body)
		if reqID == 0 {
			// Fire-and-forget request: any error already travelled to the
			// client as an OpFailed notification from the handler.
			if !c.retained {
				wire.PutBuf(payload)
			}
			continue
		}
		var werr error
		if err != nil {
			werr = c.respond(reqID, ocl.StatusOf(err), err.Error(), nil)
		} else {
			werr = c.respond(reqID, ocl.Success, "", resp)
		}
		if !c.retained {
			wire.PutBuf(payload)
		}
		wire.PutBuf(resp) // handler responses are owned buffers; see Handler
		if werr != nil {
			return
		}
	}
}

// String describes the server for logs.
func (s *Server) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return "rpc.Server(idle)"
	}
	return fmt.Sprintf("rpc.Server(%s)", s.ln.Addr())
}
