package rpc

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blastfunction/internal/logx"
	"blastfunction/internal/wire"
)

// dialFaulty connects to addr with a FaultConn wrapped around the client
// side of the connection.
func dialFaulty(t *testing.T, addr string, f Faults) (*Client, *FaultConn) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := InjectFaults(raw, f)
	c := NewClient(fc)
	t.Cleanup(func() { c.Close() })
	return c, fc
}

// TestCloseMidFrameFailsPendingWithManagerDown kills the connection in the
// middle of a frame while a call is in flight: the pending call must fail
// with ErrManagerDown promptly (bounded by the test timeout, not the
// one-minute default call deadline), and later calls must fail fast too.
func TestCloseMidFrameFailsPendingWithManagerDown(t *testing.T) {
	_, _, addr := startServer(t)
	c, fc := dialFaulty(t, addr, Faults{})

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(97) // server sleeps 20ms before responding
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the request reach the wire

	fc.CloseMidFrame()
	c.Send(96, []byte("x")) // truncated on the wire; connection dies

	select {
	case err := <-errCh:
		if !errors.Is(err, ErrManagerDown) {
			t.Fatalf("pending call error = %v, want ErrManagerDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call did not fail after connection loss")
	}
	if _, err := c.Call(1, []byte("after")); !errors.Is(err, ErrManagerDown) {
		t.Fatalf("post-failure call error = %v, want ErrManagerDown", err)
	}
	if _, ok := <-c.Notifications(); ok {
		t.Fatal("completion queue still open after connection loss")
	}
}

// TestDroppedWriteHitsCallDeadline blackholes client writes: the request
// never reaches the manager, so the per-call deadline — not a transport
// error — surfaces the loss.
func TestDroppedWriteHitsCallDeadline(t *testing.T) {
	_, _, addr := startServer(t)
	c, fc := dialFaulty(t, addr, Faults{})

	fc.DropWrites(true)
	start := time.Now()
	_, err := c.CallWithTimeout(1, 30*time.Millisecond, []byte("void"))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline took %v, want ~30ms", elapsed)
	}
	if fc.Dropped.Load() == 0 {
		t.Fatal("fault plan never dropped a write")
	}

	// The connection itself stayed healthy: once writes flow again the
	// same client completes calls.
	fc.DropWrites(false)
	resp, err := c.Call(1, []byte("back"))
	if err != nil {
		t.Fatalf("call after drop window: %v", err)
	}
	if string(resp) != "echo:back" {
		t.Fatalf("resp = %q", resp)
	}
	wire.PutBuf(resp)
}

// flakyHandler times out the first request (sleeps past the caller's
// deadline) and answers the rest immediately.
type flakyHandler struct {
	calls atomic.Int32
	slow  time.Duration
}

func (h *flakyHandler) HandleConnect(c *Conn)    {}
func (h *flakyHandler) HandleDisconnect(c *Conn) {}
func (h *flakyHandler) HandleRequest(c *Conn, method wire.Method, body []byte) ([]byte, error) {
	if h.calls.Add(1) == 1 {
		time.Sleep(h.slow)
	}
	return []byte("ok"), nil
}

// TestCallRetryRecoversFromDeadline retries an idempotent call whose first
// attempt times out while the connection stays up; the second attempt must
// succeed and the late first response must be discarded without poisoning
// the client.
func TestCallRetryRecoversFromDeadline(t *testing.T) {
	h := &flakyHandler{slow: 80 * time.Millisecond}
	s := NewServer(h)
	s.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b := Backoff{Attempts: 3, Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 42}
	resp, err := c.CallRetry(b, 30*time.Millisecond, 1)
	if err != nil {
		t.Fatalf("CallRetry: %v", err)
	}
	if string(resp) != "ok" {
		t.Fatalf("resp = %q", resp)
	}
	wire.PutBuf(resp)
	if got := h.calls.Load(); got < 2 {
		t.Fatalf("handler saw %d calls, want >= 2 (a retry)", got)
	}
}

// TestCallRetryFailsFastOnManagerDown verifies retry never papers over a
// dead manager: connection loss fails the call on the first attempt.
func TestCallRetryFailsFastOnManagerDown(t *testing.T) {
	_, _, addr := startServer(t)
	c, fc := dialFaulty(t, addr, Faults{})

	fc.CloseMidFrame()
	c.Send(96, []byte("x")) // kill the connection
	start := time.Now()
	_, err := c.CallRetry(DefaultBackoff(7), 50*time.Millisecond, 1)
	if !errors.Is(err, ErrManagerDown) {
		t.Fatalf("err = %v, want ErrManagerDown", err)
	}
	// DefaultBackoff would sleep between attempts; failing fast must not.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

// TestBackoffDeterministic pins the jitter schedule to the seed.
func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Attempts: 4, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 99}
	b := a
	for i := 0; i < 3; i++ {
		da, db := a.next(i), b.next(i)
		if da != db {
			t.Fatalf("attempt %d: %v != %v", i, da, db)
		}
		if da <= 0 || da > 100*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v out of (0, Max]", i, da)
		}
	}
}

// TestServerWrapConnInjectsFaults exercises the server-side hook: a
// manager-side mid-frame close during a notification push must drop the
// client with ErrManagerDown and close its completion queue.
func TestServerWrapConnInjectsFaults(t *testing.T) {
	h := &echoHandler{}
	s := NewServer(h)
	s.Log = logx.NewLogf("rpc", t.Logf)
	var mu sync.Mutex
	var faulty []*FaultConn
	s.WrapConn = func(raw net.Conn) net.Conn {
		fc := InjectFaults(raw, Faults{})
		mu.Lock()
		faulty = append(faulty, fc)
		mu.Unlock()
		return fc
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(1, []byte("warm"))
	if err != nil {
		t.Fatalf("warm-up call through wrapped conn: %v", err)
	}
	wire.PutBuf(resp)

	mu.Lock()
	if len(faulty) != 1 {
		mu.Unlock()
		t.Fatalf("WrapConn ran %d times, want 1", len(faulty))
	}
	fc := faulty[0]
	mu.Unlock()

	fc.CloseMidFrame()
	// Method 98 makes the handler push a notification — the write that the
	// fault plan truncates.
	if _, err := c.CallWithTimeout(98, 2*time.Second, []byte("n")); err == nil {
		t.Fatal("call survived manager-side mid-frame close")
	}
	select {
	case _, ok := <-c.Notifications():
		if ok {
			t.Fatal("got a notification from a truncated frame")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("completion queue did not close after manager-side failure")
	}
}
