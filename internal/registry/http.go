package registry

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// apiDevice is the JSON view of a device record plus live metrics.
type apiDevice struct {
	Device
	Healthy   bool
	Metrics   *DeviceMetrics `json:"Metrics,omitempty"`
	Connected []string       `json:"Connected,omitempty"`
}

// Handler serves the Registry's inspection and registration API:
//
//	GET  /devices    device records with live metrics and placements
//	POST /devices    register a device (JSON Device)
//	GET  /functions  function records
//	POST /functions  register a function (JSON Function)
//	GET  /healthz    liveness
//
// Device Managers self-register through POST /devices on startup, as the
// paper's managers announce themselves to the Registry.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/devices", func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			out := make([]apiDevice, 0)
			for _, d := range r.Devices() {
				ad := apiDevice{Device: d, Healthy: r.DeviceHealthy(d.ID), Connected: r.ConnectedInstances(d.ID)}
				if r.source.Metrics != nil {
					if m, ok := r.source.Metrics.DeviceMetrics(d.ID, d.Node); ok {
						ad.Metrics = &m
					}
				}
				out = append(out, ad)
			}
			writeJSON(w, out)
		case http.MethodPost:
			var d Device
			if err := json.NewDecoder(req.Body).Decode(&d); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := r.RegisterDevice(d); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/functions", func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			writeJSON(w, r.Functions())
		case http.MethodPost:
			var f Function
			if err := json.NewDecoder(req.Body).Decode(&f); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := r.RegisterFunction(f); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
