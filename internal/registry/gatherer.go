package registry

import (
	"sync"
	"time"

	"blastfunction/internal/metrics"
)

// Gatherer is the paper's Metrics Gatherer: it reads Device Manager
// metrics collected by the (mini-)Prometheus scraper and turns them into
// the DeviceMetrics view Algorithm 1 consumes. FPGA time utilization is
// computed as the rate of the device's busy-seconds counter, converted
// from modelled seconds to wall seconds with the manager's advertised
// time scale.
//
// Computed views are cached per TSDB generation: the scraper appends one
// batch per scrape, so between scrapes every allocation sees identical
// series and recomputing TSDB.Rate per candidate inside Allocate's lock
// is pure waste at hundreds of boards. The cache trades a frozen rate
// window endpoint (now is pinned to the first query of the generation)
// for O(1) repeat lookups — well inside one scrape interval of staleness
// the registry already tolerates.
type Gatherer struct {
	db *metrics.TSDB
	// Window is the sliding window of the utilization rate; defaults to
	// 30 seconds.
	Window time.Duration
	// Now is injectable for deterministic tests.
	Now func() time.Time

	mu       sync.Mutex
	gen      uint64
	cache    map[string]cachedDeviceMetrics
	computes uint64
	hits     uint64
}

// cachedDeviceMetrics memoizes one DeviceMetrics answer, including the
// negative ("no data yet") case.
type cachedDeviceMetrics struct {
	m  DeviceMetrics
	ok bool
}

// NewGatherer creates a Gatherer over the TSDB the scraper feeds.
func NewGatherer(db *metrics.TSDB) *Gatherer {
	return &Gatherer{
		db:     db,
		Window: 30 * time.Second,
		Now:    time.Now,
		cache:  make(map[string]cachedDeviceMetrics),
	}
}

// GathererStats counts how the per-generation cache is doing.
type GathererStats struct {
	// Computes is how many DeviceMetrics views were derived from TSDB
	// queries (the expensive path).
	Computes uint64
	// CacheHits is how many lookups were answered from the generation
	// cache without touching the TSDB.
	CacheHits uint64
}

// Stats reports the cache counters.
func (g *Gatherer) Stats() GathererStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GathererStats{Computes: g.computes, CacheHits: g.hits}
}

// DeviceMetrics implements MetricsSource.
func (g *Gatherer) DeviceMetrics(deviceID, node string) (DeviceMetrics, bool) {
	key := deviceID + "\x00" + node
	gen := g.db.Generation()
	g.mu.Lock()
	if gen != g.gen {
		g.gen = gen
		g.cache = make(map[string]cachedDeviceMetrics)
	}
	if c, ok := g.cache[key]; ok {
		g.hits++
		g.mu.Unlock()
		return c.m, c.ok
	}
	g.computes++
	g.mu.Unlock()

	m, ok := g.compute(deviceID, node)

	g.mu.Lock()
	// A scrape may have landed while we computed; only cache the answer
	// if it still belongs to the generation we started from.
	if g.gen == gen {
		g.cache[key] = cachedDeviceMetrics{m: m, ok: ok}
	}
	g.mu.Unlock()
	return m, ok
}

// compute derives the DeviceMetrics view from the TSDB.
func (g *Gatherer) compute(deviceID, node string) (DeviceMetrics, bool) {
	lbl := metrics.Labels{"device": deviceID, "node": node}
	now := g.Now()
	var m DeviceMetrics
	rate, ok := g.db.Rate("bf_device_busy_seconds_total", lbl, now, g.Window)
	if !ok {
		return DeviceMetrics{}, false
	}
	// The busy counter advances in modelled seconds; scale converts one
	// modelled second into wall seconds so the utilization is a wall
	// fraction. An unscaled board (scale 1) needs no conversion; scale 0
	// (no sleeping, tests) leaves the raw rate, which is still a usable
	// relative load signal.
	if scale, ok := g.db.Latest("bf_device_time_scale", lbl); ok && scale > 0 {
		rate *= scale
	}
	m.Utilization = rate
	if v, ok := g.db.Latest("bf_connected_clients", lbl); ok {
		m.Connected = v
	}
	if v, ok := g.db.Latest("bf_queue_depth", lbl); ok {
		m.QueueDepth = v
	}
	return m, true
}

// StaticMetrics is a fixed MetricsSource for tests and the DES harness.
type StaticMetrics map[string]DeviceMetrics

// DeviceMetrics implements MetricsSource.
func (s StaticMetrics) DeviceMetrics(deviceID, node string) (DeviceMetrics, bool) {
	m, ok := s[deviceID]
	return m, ok
}
