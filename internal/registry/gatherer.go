package registry

import (
	"time"

	"blastfunction/internal/metrics"
)

// Gatherer is the paper's Metrics Gatherer: it reads Device Manager
// metrics collected by the (mini-)Prometheus scraper and turns them into
// the DeviceMetrics view Algorithm 1 consumes. FPGA time utilization is
// computed as the rate of the device's busy-seconds counter, converted
// from modelled seconds to wall seconds with the manager's advertised
// time scale.
type Gatherer struct {
	db *metrics.TSDB
	// Window is the sliding window of the utilization rate; defaults to
	// 30 seconds.
	Window time.Duration
	// Now is injectable for deterministic tests.
	Now func() time.Time
}

// NewGatherer creates a Gatherer over the TSDB the scraper feeds.
func NewGatherer(db *metrics.TSDB) *Gatherer {
	return &Gatherer{db: db, Window: 30 * time.Second, Now: time.Now}
}

// DeviceMetrics implements MetricsSource.
func (g *Gatherer) DeviceMetrics(deviceID, node string) (DeviceMetrics, bool) {
	lbl := metrics.Labels{"device": deviceID, "node": node}
	now := g.Now()
	var m DeviceMetrics
	rate, ok := g.db.Rate("bf_device_busy_seconds_total", lbl, now, g.Window)
	if !ok {
		return DeviceMetrics{}, false
	}
	// The busy counter advances in modelled seconds; scale converts one
	// modelled second into wall seconds so the utilization is a wall
	// fraction. An unscaled board (scale 1) needs no conversion; scale 0
	// (no sleeping, tests) leaves the raw rate, which is still a usable
	// relative load signal.
	if scale, ok := g.db.Latest("bf_device_time_scale", lbl); ok && scale > 0 {
		rate *= scale
	}
	m.Utilization = rate
	if v, ok := g.db.Latest("bf_connected_clients", lbl); ok {
		m.Connected = v
	}
	if v, ok := g.db.Latest("bf_queue_depth", lbl); ok {
		m.QueueDepth = v
	}
	return m, true
}

// StaticMetrics is a fixed MetricsSource for tests and the DES harness.
type StaticMetrics map[string]DeviceMetrics

// DeviceMetrics implements MetricsSource.
func (s StaticMetrics) DeviceMetrics(deviceID, node string) (DeviceMetrics, bool) {
	m, ok := s[deviceID]
	return m, ok
}
