package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/flash"
	"blastfunction/internal/metrics"
)

// countingMetrics wraps a MetricsSource and records which devices were
// queried — the probe for Allocate's candidate-pool bound.
type countingMetrics struct {
	mu    sync.Mutex
	inner MetricsSource
	calls map[string]int
}

func (c *countingMetrics) DeviceMetrics(deviceID, node string) (DeviceMetrics, bool) {
	c.mu.Lock()
	c.calls[deviceID]++
	c.mu.Unlock()
	if c.inner == nil {
		return DeviceMetrics{}, false
	}
	return c.inner.DeviceMetrics(deviceID, node)
}

func (c *countingMetrics) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

// TestAllocateUsesAcceleratorIndex: with hundreds of boards already
// serving other accelerator families, an allocation for one family must
// only evaluate that family's boards plus the blank ones — not the whole
// cluster.
func TestAllocateUsesAcceleratorIndex(t *testing.T) {
	src := &countingMetrics{calls: map[string]int{}}
	r := mustNew(t, DefaultPolicy(src))

	// 200 boards pre-configured for "other", 5 for "sobel", 3 blank.
	for i := 0; i < 200; i++ {
		r.RegisterDevice(Device{ID: fmt.Sprintf("other-%03d", i), Node: fmt.Sprintf("n%03d", i),
			Accelerator: "other", Bitstream: "bits-other"})
	}
	for i := 0; i < 5; i++ {
		r.RegisterDevice(Device{ID: fmt.Sprintf("sobel-%d", i), Node: fmt.Sprintf("s%d", i),
			Accelerator: "sobel", Bitstream: "spector-sobel"})
	}
	for i := 0; i < 3; i++ {
		r.RegisterDevice(Device{ID: fmt.Sprintf("blank-%d", i), Node: fmt.Sprintf("b%d", i)})
	}
	r.RegisterFunction(Function{Name: "sobel-1",
		Query: DeviceQuery{Accelerator: "sobel"}, Bitstream: "spector-sobel"})

	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := src.total(); got > 8 { // 5 sobel + 3 blank
		t.Fatalf("allocation evaluated %d devices, want <= 8 (the sobel+blank buckets)", got)
	}
	for id := range src.calls {
		if id[:5] == "other" {
			t.Fatalf("allocation touched foreign-family device %s", id)
		}
	}
	if a := alloc.Device.Accelerator; a != "sobel" && a != "" {
		t.Fatalf("allocated %s (accelerator %q)", alloc.Device.ID, a)
	}
}

// TestAllocateIndexFollowsReconfiguration: a blank board claimed by one
// family must leave the blank bucket, and the reconfiguration fallback
// must still find boards outside the primary pool.
func TestAllocateIndexFollowsReconfiguration(t *testing.T) {
	r := mustNew(t, DefaultPolicy(StaticMetrics{}))
	r.RegisterDevice(Device{ID: "d1", Node: "A"})
	r.RegisterFunction(Function{Name: "f-a", Query: DeviceQuery{Accelerator: "alpha"}, Bitstream: "bit-a"})
	r.RegisterFunction(Function{Name: "f-b", Query: DeviceQuery{Accelerator: "beta"}, Bitstream: "bit-b"})

	// f-a claims the blank board.
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "f-a"}); err != nil {
		t.Fatal(err)
	}
	// The board now serves alpha; another alpha allocation still finds it
	// through the alpha bucket.
	if alloc, err := r.Allocate(AllocRequest{InstanceUID: "u2", InstanceName: "i2", Function: "f-a"}); err != nil {
		t.Fatal(err)
	} else if alloc.NeedsReconfigure {
		t.Fatal("same-family allocation must not reconfigure")
	}
	// Release everything; beta's allocation must reach the board through
	// the reconfiguration fallback (it is in no beta-compatible bucket).
	r.Release("u1")
	r.Release("u2")
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u3", InstanceName: "i3", Function: "f-b"})
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.NeedsReconfigure {
		t.Fatal("cross-family takeover must reconfigure")
	}
	// And the index moved with it: alpha's next allocation has no board.
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u4", InstanceName: "i4", Function: "f-a"}); err == nil {
		t.Fatal("alpha must not find the board reindexed to beta")
	}
}

// TestRemoveDeviceDropsFromIndex: removed boards must vanish from the
// index buckets, not just the device map.
func TestRemoveDeviceDropsFromIndex(t *testing.T) {
	r := mustNew(t, DefaultPolicy(StaticMetrics{}))
	r.RegisterDevice(Device{ID: "d1", Node: "A", Accelerator: "sobel", Bitstream: "bit"})
	r.RegisterFunction(Function{Name: "f", Query: DeviceQuery{Accelerator: "sobel"}, Bitstream: "bit"})
	if err := r.RemoveDevice("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "f"}); err == nil {
		t.Fatal("removed device must not be allocatable")
	}
	// Re-register on a different node: the stale node bucket must be gone.
	r.RegisterDevice(Device{ID: "d1", Node: "B", Accelerator: "sobel", Bitstream: "bit"})
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u2", InstanceName: "i2", Function: "f", Node: "B"})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Device.Node != "B" {
		t.Fatalf("allocated on node %s, want B", alloc.Device.Node)
	}
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u3", InstanceName: "i3", Function: "f", Node: "A"}); err == nil {
		t.Fatal("node A bucket must be empty after the move")
	}
}

// TestGathererCachesPerGeneration: within one scrape generation the
// Gatherer must answer repeat lookups from its cache; a new Append
// invalidates it.
func TestGathererCachesPerGeneration(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	g := NewGatherer(db)
	base := time.Unix(1000, 0)
	g.Now = func() time.Time { return base.Add(20 * time.Second) }
	lbl := metrics.Labels{"device": "d1", "node": "A"}
	db.Append(base, []metrics.Sample{{Name: "bf_device_busy_seconds_total", Labels: lbl, Value: 0}})
	db.Append(base.Add(10*time.Second), []metrics.Sample{{Name: "bf_device_busy_seconds_total", Labels: lbl, Value: 5}})

	for i := 0; i < 50; i++ {
		m, ok := g.DeviceMetrics("d1", "A")
		if !ok || m.Utilization != 0.5 {
			t.Fatalf("lookup %d = %+v ok=%v", i, m, ok)
		}
	}
	st := g.Stats()
	if st.Computes != 1 || st.CacheHits != 49 {
		t.Fatalf("stats = %+v, want 1 compute + 49 hits", st)
	}

	// Negative answers are cached too.
	for i := 0; i < 10; i++ {
		if _, ok := g.DeviceMetrics("ghost", "A"); ok {
			t.Fatal("ghost device must have no metrics")
		}
	}
	if st := g.Stats(); st.Computes != 2 {
		t.Fatalf("negative lookups not cached: %+v", st)
	}

	// A new scrape generation recomputes.
	db.Append(base.Add(20*time.Second), []metrics.Sample{{Name: "bf_device_busy_seconds_total", Labels: lbl, Value: 15}})
	g.Now = func() time.Time { return base.Add(30 * time.Second) }
	m, ok := g.DeviceMetrics("d1", "A")
	if !ok || m.Utilization != 0.75 { // (15-0)/20s
		t.Fatalf("post-append view = %+v ok=%v", m, ok)
	}
	if st := g.Stats(); st.Computes != 3 {
		t.Fatalf("append did not invalidate the cache: %+v", st)
	}
}

// TestConcurrentAllocateFallbackRace drives the reconfiguration fallback
// against concurrent Allocate calls claiming the same blank boards, with
// a planning-mode flash service attached and each winner immediately
// validating its reconfiguration (the Build call racing later
// allocations). Run under -race, it pins the locking around the eager
// bitstream record, the index moves, and the flash window open/close.
func TestConcurrentAllocateFallbackRace(t *testing.T) {
	fl, err := flash.New(flash.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	r, err := New(AllocPolicy{ReconfigPenalty: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	r.SetFlash(fl)

	const boards = 3
	for i := 0; i < boards; i++ {
		if err := r.RegisterDevice(Device{ID: fmt.Sprintf("b%d", i), Node: "n0"}); err != nil {
			t.Fatal(err)
		}
	}
	const fams = 6
	for i := 0; i < fams; i++ {
		if err := r.RegisterFunction(Function{
			Name:      fmt.Sprintf("fn-%d", i),
			Query:     DeviceQuery{Accelerator: fmt.Sprintf("acc-%d", i)},
			Bitstream: fmt.Sprintf("bit-%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 24
	var wg sync.WaitGroup
	okCh := make(chan string, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			uid := fmt.Sprintf("uid-%d", i)
			name := fmt.Sprintf("inst-%d", i)
			fn := fmt.Sprintf("fn-%d", i%fams)
			alloc, err := r.Allocate(AllocRequest{
				InstanceUID:  uid,
				InstanceName: name,
				Function:     fn,
			})
			if err != nil {
				return // fallback legitimately exhausted (not redistributable)
			}
			// The winner's Build call: closes the board's flash window while
			// other goroutines are still allocating.
			_ = r.ValidateReconfiguration(alloc.Device.ID, name, fmt.Sprintf("bit-%d", i%fams))
			okCh <- uid
		}(i)
	}
	wg.Wait()
	close(okCh)

	placed := 0
	for uid := range okCh {
		if _, ok := r.InstancePlacement(uid); !ok {
			t.Fatalf("successful allocation %s has no placement", uid)
		}
		placed++
	}
	if placed == 0 {
		t.Fatal("no allocation succeeded")
	}
	// Every board flip opened a flash window; validated ones were closed
	// into history. Between live jobs and history at least one window must
	// exist and all must be well-formed.
	jobs := append(fl.Jobs(), fl.History("")...)
	if len(jobs) == 0 {
		t.Fatal("no flash window opened despite successful allocations")
	}
	for _, j := range jobs {
		if j.Board == "" || j.Bitstream == "" {
			t.Fatalf("malformed flash job %+v", j)
		}
	}
}
