package registry

import (
	"context"
	"log"
	"sync"

	"blastfunction/internal/cluster"
)

// Environment variables the Registry injects into allocated instances —
// the paper's "patches the notified operation (e.g. adds environment
// variables, volumes for shared memory and forces the host allocation)".
const (
	// EnvManagerAddr is the Device Manager RPC endpoint the instance's
	// Remote OpenCL Library must dial.
	EnvManagerAddr = "BF_MANAGER_ADDR"
	// EnvDeviceID is the allocated device's identifier.
	EnvDeviceID = "BF_DEVICE_ID"
	// EnvNode is the node the instance was placed on.
	EnvNode = "BF_NODE"
)

// ShmVolume is the shared-memory volume mounted into allocated instances.
const ShmVolume = "/dev/shm"

// Controller connects the Registry to the cluster orchestrator: it
// intercepts instance creation, runs the allocation algorithm, patches the
// instance, and performs migrations when a device needs reconfiguration.
type Controller struct {
	reg *Registry
	cl  *cluster.Cluster
	// Logf logs allocation failures; defaults to log.Printf.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	failures map[string]error // instance UID -> last allocation error
}

// NewController creates a controller for the registry and cluster.
func NewController(reg *Registry, cl *cluster.Cluster) *Controller {
	return &Controller{
		reg:      reg,
		cl:       cl,
		Logf:     log.Printf,
		failures: make(map[string]error),
	}
}

// Run consumes cluster events until ctx is cancelled. It processes the
// informer's initial sync first, so a controller started late adopts
// existing instances.
func (c *Controller) Run(ctx context.Context) {
	events, cancel := c.cl.Watch(64)
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			c.handle(ev)
		}
	}
}

// handle processes one cluster event.
func (c *Controller) handle(ev cluster.Event) {
	switch ev.Type {
	case cluster.Added:
		if ev.Instance.Phase == cluster.Pending {
			c.allocate(ev.Instance)
		}
	case cluster.Deleted:
		c.reg.Release(ev.Instance.UID)
	}
}

// allocate runs Algorithm 1 for a pending instance and patches it.
func (c *Controller) allocate(in cluster.Instance) {
	alloc, err := c.reg.Allocate(AllocRequest{
		InstanceUID:  in.UID,
		InstanceName: in.Name,
		Function:     in.Function,
		Node:         in.Node,
	})
	if err != nil {
		c.mu.Lock()
		c.failures[in.UID] = err
		c.mu.Unlock()
		c.Logf("registry: allocation of %s (%s) failed: %v", in.Name, in.Function, err)
		return
	}
	c.mu.Lock()
	delete(c.failures, in.UID)
	c.mu.Unlock()

	// Migrate displaced instances first (create-before-delete): their
	// replacements re-enter this loop as fresh Pending instances and are
	// re-allocated onto still-compatible devices.
	for _, uid := range alloc.Displaced {
		c.reg.Release(uid)
		if _, err := c.cl.ReplaceInstance(uid); err != nil {
			c.Logf("registry: migration of %s off %s failed: %v", uid, alloc.Device.ID, err)
		}
	}

	node := alloc.Node
	_, err = c.cl.PatchInstance(in.UID, cluster.Patch{
		Env: map[string]string{
			EnvManagerAddr: alloc.Device.ManagerAddr,
			EnvDeviceID:    alloc.Device.ID,
			EnvNode:        node,
		},
		AddVolumes: []string{ShmVolume},
		Node:       &node,
	})
	if err != nil {
		c.Logf("registry: patch of %s failed: %v", in.Name, err)
		c.reg.Release(in.UID)
	}
}

// AllocationFailure returns the last allocation error of an instance, if
// any (diagnostics and tests).
func (c *Controller) AllocationFailure(uid string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures[uid]
}
