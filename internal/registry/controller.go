package registry

import (
	"context"
	"strconv"
	"sync"
	"time"

	"blastfunction/internal/cluster"
	"blastfunction/internal/logx"
)

// Environment variables the Registry injects into allocated instances —
// the paper's "patches the notified operation (e.g. adds environment
// variables, volumes for shared memory and forces the host allocation)".
const (
	// EnvManagerAddr is the Device Manager RPC endpoint the instance's
	// Remote OpenCL Library must dial.
	EnvManagerAddr = "BF_MANAGER_ADDR"
	// EnvDeviceID is the allocated device's identifier.
	EnvDeviceID = "BF_DEVICE_ID"
	// EnvNode is the node the instance was placed on.
	EnvNode = "BF_NODE"
	// EnvWeight is the function's fair-share weight; the instance's Remote
	// OpenCL Library declares it to Device Managers at Hello, where
	// weighted scheduling disciplines use it. Absent when unweighted.
	EnvWeight = "BF_TENANT_WEIGHT"
)

// ShmVolume is the shared-memory volume mounted into allocated instances.
const ShmVolume = "/dev/shm"

// Controller connects the Registry to the cluster orchestrator: it
// intercepts instance creation, runs the allocation algorithm, patches the
// instance, and performs migrations when a device needs reconfiguration.
type Controller struct {
	reg *Registry
	cl  *cluster.Cluster
	// Log receives allocation and migration events as structured events;
	// defaults to logx.Default("registry").
	Log *logx.Logger
	// Grace is how long a device may stay unhealthy before its connected
	// instances are migrated to other boards. Zero disables the sweep:
	// transient scrape hiccups then only exclude the device from new
	// allocations. Set before Run.
	Grace time.Duration

	mu       sync.Mutex
	failures map[string]error // instance UID -> last allocation error

	// sweepMu serializes sweeps so overlapping ticks cannot migrate the
	// same instance twice.
	sweepMu sync.Mutex
}

// NewController creates a controller for the registry and cluster.
func NewController(reg *Registry, cl *cluster.Cluster) *Controller {
	return &Controller{
		reg:      reg,
		cl:       cl,
		Log:      logx.Default("registry"),
		failures: make(map[string]error),
	}
}

// Run consumes cluster events until ctx is cancelled. It processes the
// informer's initial sync first, so a controller started late adopts
// existing instances.
func (c *Controller) Run(ctx context.Context) {
	events, cancel := c.cl.Watch(64)
	defer cancel()
	var sweep <-chan time.Time
	if c.Grace > 0 {
		// A quarter of the grace window bounds the detection latency well
		// below the window itself.
		tick := time.NewTicker(c.Grace / 4)
		defer tick.Stop()
		sweep = tick.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-sweep:
			// Off the event loop: migrations emit Added/Deleted events back
			// into our own watch channel, and a sweep blocking on a full
			// channel it is supposed to drain would deadlock.
			go c.SweepUnhealthy()
		case ev, ok := <-events:
			if !ok {
				return
			}
			c.handle(ev)
		}
	}
}

// SweepUnhealthy migrates every instance connected to a device that has
// been unhealthy past the grace window. Migration is create-before-delete:
// the orchestrator spawns the replacement (which re-enters the allocation
// path as a fresh Pending instance and lands on a healthy board — the
// candidate filter skips unhealthy devices) before the stranded instance
// is deleted, so capacity never dips during recovery. Safe to call
// directly from tests and operator endpoints.
func (c *Controller) SweepUnhealthy() {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	for _, devID := range c.reg.UnhealthyPastGrace(c.Grace) {
		for _, uid := range c.reg.ConnectedInstances(devID) {
			if _, err := c.cl.ReplaceInstance(uid); err != nil {
				c.Log.Error("registry: migration off unhealthy device failed",
					"instance", uid, "device", devID, "err", err)
				continue
			}
			// Drop the placement now instead of waiting for the Deleted
			// event, so a sweep racing the watch loop cannot migrate the
			// instance a second time.
			c.reg.Release(uid)
			c.Log.Info("registry: migrated instance off unhealthy device",
				"instance", uid, "device", devID)
		}
	}
}

// handle processes one cluster event.
func (c *Controller) handle(ev cluster.Event) {
	switch ev.Type {
	case cluster.Added:
		if ev.Instance.Phase == cluster.Pending {
			c.allocate(ev.Instance)
		}
	case cluster.Deleted:
		c.reg.Release(ev.Instance.UID)
	}
}

// allocate runs Algorithm 1 for a pending instance and patches it.
func (c *Controller) allocate(in cluster.Instance) {
	alloc, err := c.reg.Allocate(AllocRequest{
		InstanceUID:  in.UID,
		InstanceName: in.Name,
		Function:     in.Function,
		Node:         in.Node,
	})
	if err != nil {
		c.mu.Lock()
		c.failures[in.UID] = err
		c.mu.Unlock()
		c.Log.Warn("registry: allocation failed",
			"instance", in.Name, "function", in.Function, "err", err)
		return
	}
	c.mu.Lock()
	delete(c.failures, in.UID)
	c.mu.Unlock()

	// Migrate displaced instances first (create-before-delete): their
	// replacements re-enter this loop as fresh Pending instances and are
	// re-allocated onto still-compatible devices.
	for _, uid := range alloc.Displaced {
		c.reg.Release(uid)
		if _, err := c.cl.ReplaceInstance(uid); err != nil {
			c.Log.Error("registry: migration off device failed",
				"instance", uid, "device", alloc.Device.ID, "err", err)
		}
	}
	if f := c.reg.FlashService(); f != nil && len(alloc.Displaced) > 0 {
		// Attribute the drained sessions to the board's open flash window so
		// the lifecycle history shows what each reprogram cost the cluster.
		f.RecordDrain(alloc.Device.ID, len(alloc.Displaced))
	}

	node := alloc.Node
	env := map[string]string{
		EnvManagerAddr: alloc.Device.ManagerAddr,
		EnvDeviceID:    alloc.Device.ID,
		EnvNode:        node,
	}
	if alloc.Weight > 0 {
		env[EnvWeight] = strconv.Itoa(alloc.Weight)
	}
	_, err = c.cl.PatchInstance(in.UID, cluster.Patch{
		Env:        env,
		AddVolumes: []string{ShmVolume},
		Node:       &node,
	})
	if err != nil {
		c.Log.Error("registry: instance patch failed", "instance", in.Name, "err", err)
		c.reg.Release(in.UID)
	}
}

// AllocationFailure returns the last allocation error of an instance, if
// any (diagnostics and tests).
func (c *Controller) AllocationFailure(uid string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures[uid]
}
