// Package registry implements the BlastFunction Accelerators Registry.
//
// The Registry is the master component of the paper's Section III-C. It
// registers functions and devices (the Functions Service and Devices
// Service), aggregates Device Manager performance metrics through the
// Metrics Gatherer, allocates devices to function instances with the
// paper's online allocation algorithm (Algorithm 1), and validates
// reconfiguration operations, migrating connected instances through the
// cluster orchestrator when a board must change bitstream.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"blastfunction/internal/flash"
)

// DeviceQuery is a function's device requirements — the paper's
// "instance.devicequery" matched during compatibility filtering.
type DeviceQuery struct {
	// Vendor restricts acceptable device vendors; empty accepts any.
	Vendor string
	// Platform restricts acceptable platforms; empty accepts any.
	Platform string
	// Accelerator is the logical accelerator the function needs (the
	// family of its bitstream, e.g. "sobel").
	Accelerator string
}

// Device is a Devices Service record: one FPGA board under a Device
// Manager.
type Device struct {
	// ID is the device identifier, unique in the cluster.
	ID string
	// Node is the node hosting the board.
	Node string
	// Vendor and Platform describe the board for compatibility checks.
	Vendor   string
	Platform string
	// ManagerAddr is the Device Manager's RPC endpoint, injected into
	// allocated instances' environments.
	ManagerAddr string
	// MetricsURL is the manager's metrics endpoint for the scraper.
	MetricsURL string
	// Bitstream is the currently configured (or expected) bitstream ID.
	Bitstream string
	// Accelerator is the logical accelerator of Bitstream.
	Accelerator string
}

// Function is a Functions Service record.
type Function struct {
	// Name is the serverless function name (e.g. "sobel-1").
	Name string
	// Query is the function's device requirements.
	Query DeviceQuery
	// Bitstream is the bitstream ID the function programs.
	Bitstream string
	// Weight is the function's fair-share weight under weighted Device
	// Manager scheduling; it travels with every instance binding
	// (BF_TENANT_WEIGHT). Zero means unweighted (managers treat it as 1).
	Weight int
}

// instanceInfo tracks one allocated function instance.
type instanceInfo struct {
	uid      string
	name     string
	function string
	node     string
}

// deviceState couples a Device record with its connected instances.
type deviceState struct {
	Device
	instances map[string]instanceInfo // by instance UID
	// unhealthy marks devices whose Device Manager stopped answering
	// metric scrapes; allocation skips them until they recover.
	unhealthy bool
	healthErr string
	// unhealthySince is when the device transitioned to unhealthy; once it
	// stays unhealthy past the controller's grace window, connected
	// instances are migrated off it.
	unhealthySince time.Time
}

// placement records where an allocated instance lives and under which
// name it authenticates; keeping the name here lets Release clean the name
// index even after the device record itself was removed.
type placement struct {
	device string
	name   string
}

// Registry is the Accelerators Registry.
type Registry struct {
	// Now supplies the clock for health-transition timestamps; tests
	// inject a fake. Defaults to time.Now.
	Now func() time.Time

	mu        sync.Mutex
	devices   map[string]*deviceState
	functions map[string]*Function
	// byAccel and byNode index device records by their configured logical
	// accelerator ("" = blank board) and hosting node, so Allocate builds
	// its candidate pool from the relevant buckets instead of scanning
	// every device in the cluster. Maintained by RegisterDevice /
	// RemoveDevice and by Allocate when it claims a board's accelerator.
	byAccel map[string]map[string]*deviceState
	byNode  map[string]map[string]*deviceState
	// byInstance maps an allocated instance UID to its placement.
	byInstance map[string]placement
	// byName maps instance names to UIDs (Device Managers authenticate
	// clients by instance name).
	byName map[string]string

	source AllocPolicy

	// flash, when set, is the planning-mode bitstream lifecycle service:
	// Allocate opens a reprogram window on it whenever a placement commits
	// a board to a new bitstream, the controller records drained sessions,
	// and ValidateReconfiguration closes the window when the client's Build
	// call finally lands. Nil disables lifecycle tracking.
	flash *flash.Service
}

// indexDevice adds a device to the accelerator and node buckets. Called
// with r.mu held.
func (r *Registry) indexDevice(ds *deviceState) {
	if r.byAccel[ds.Accelerator] == nil {
		r.byAccel[ds.Accelerator] = make(map[string]*deviceState)
	}
	r.byAccel[ds.Accelerator][ds.ID] = ds
	if r.byNode[ds.Node] == nil {
		r.byNode[ds.Node] = make(map[string]*deviceState)
	}
	r.byNode[ds.Node][ds.ID] = ds
}

// unindexDevice removes a device from the buckets matching the given
// (possibly stale) accelerator and node. Called with r.mu held.
func (r *Registry) unindexDevice(id, accel, node string) {
	if b := r.byAccel[accel]; b != nil {
		delete(b, id)
		if len(b) == 0 {
			delete(r.byAccel, accel)
		}
	}
	if b := r.byNode[node]; b != nil {
		delete(b, id)
		if len(b) == 0 {
			delete(r.byNode, node)
		}
	}
}

// AllocPolicy supplies the metrics view and the ordering/filtering
// configuration of Algorithm 1.
type AllocPolicy struct {
	// Metrics yields a device's current metrics; nil disables metric
	// filtering and ordering (fresh clusters).
	Metrics MetricsSource
	// Order lists the sort criteria, most significant first.
	Order []Criterion
	// Filters drop overloaded devices before ordering.
	Filters []Filter
	// ReconfigPenalty biases the first ordering criterion against devices
	// that would need a reprogram (neither serving the requested
	// accelerator nor promised to it by a pending flash window). A
	// to-be-flashed board's primary score is inflated by this amount before
	// quantization, so a blank board near a quantum boundary loses to an
	// already-flashed one, while a sufficiently idle blank board still
	// takes the allocation. Zero keeps pure load ordering (flashedness
	// then only breaks exact ties). The default is half a utilization
	// quantum (0.025): enough to tip near-boundary allocations onto open
	// flash windows, never enough to override the connected-count spread
	// between idle boards that the paper's experiments pin.
	ReconfigPenalty float64
}

// MetricsSource yields per-device runtime metrics.
type MetricsSource interface {
	// DeviceMetrics returns the device's current metrics; ok is false
	// when no data is available yet (the device is then treated as idle).
	DeviceMetrics(deviceID, node string) (DeviceMetrics, bool)
}

// DeviceMetrics is the metric set Algorithm 1 consumes.
type DeviceMetrics struct {
	// Utilization is the FPGA time utilization over the recent window,
	// 0..1 (can exceed 1 transiently on scrape jitter).
	Utilization float64
	// Connected is the number of connected function instances.
	Connected float64
	// QueueDepth is the central queue depth.
	QueueDepth float64
}

// value extracts a metric by name.
func (m DeviceMetrics) value(name string) float64 {
	switch name {
	case MetricUtilization:
		return m.Utilization
	case MetricConnected:
		return m.Connected
	case MetricQueueDepth:
		return m.QueueDepth
	}
	return 0
}

// Metric names usable in criteria and filters.
const (
	MetricUtilization = "utilization"
	MetricConnected   = "connected"
	MetricQueueDepth  = "queue_depth"
)

// Criterion is one sort key of the allocation ordering.
type Criterion struct {
	// Metric names the metric (Metric* constants).
	Metric string
	// Desc sorts descending when true (default ascending: less loaded
	// devices first).
	Desc bool
	// Quantum buckets values before comparing, so near-equal devices tie
	// and the accelerator-compatibility tiebreak can prefer a device that
	// avoids a reconfiguration. Zero compares exactly.
	Quantum float64
}

// Filter drops devices whose metric exceeds Max.
type Filter struct {
	Metric string
	Max    float64
}

// DefaultPolicy returns the allocation policy used in the paper's
// experiments: prefer low utilization (5 % buckets), then fewer connected
// instances, never allocate onto a device already above 95 % utilization,
// and charge half a utilization quantum against boards that would need a
// reprogram so near-boundary allocations pile onto open flash windows
// instead of flipping additional boards.
func DefaultPolicy(src MetricsSource) AllocPolicy {
	return AllocPolicy{
		Metrics: src,
		Order: []Criterion{
			{Metric: MetricUtilization, Quantum: 0.05},
			{Metric: MetricConnected},
		},
		Filters:         []Filter{{Metric: MetricUtilization, Max: 0.95}},
		ReconfigPenalty: 0.025,
	}
}

// validMetric reports whether a metric name is one Algorithm 1 can read.
func validMetric(name string) bool {
	switch name {
	case MetricUtilization, MetricConnected, MetricQueueDepth:
		return true
	}
	return false
}

// Validate rejects policies referencing unknown metric names. A typo in a
// criterion or filter would otherwise read as a silent constant zero,
// turning the ordering (or a filter) into a no-op that only shows up as
// skewed placements under load.
func (p AllocPolicy) Validate() error {
	for _, c := range p.Order {
		if !validMetric(c.Metric) {
			return fmt.Errorf("registry: unknown metric %q in ordering criterion (known: %s, %s, %s)",
				c.Metric, MetricUtilization, MetricConnected, MetricQueueDepth)
		}
	}
	for _, f := range p.Filters {
		if !validMetric(f.Metric) {
			return fmt.Errorf("registry: unknown metric %q in filter (known: %s, %s, %s)",
				f.Metric, MetricUtilization, MetricConnected, MetricQueueDepth)
		}
	}
	return nil
}

// New creates a Registry with the given allocation policy. It fails on
// policies naming unknown metrics; see AllocPolicy.Validate.
func New(policy AllocPolicy) (*Registry, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &Registry{
		Now:        time.Now,
		devices:    make(map[string]*deviceState),
		functions:  make(map[string]*Function),
		byAccel:    make(map[string]map[string]*deviceState),
		byNode:     make(map[string]map[string]*deviceState),
		byInstance: make(map[string]placement),
		byName:     make(map[string]string),
		source:     policy,
	}, nil
}

// SetFlash attaches a planning-mode bitstream lifecycle service. Call it
// before the Registry starts serving allocations; the service receives a
// flash-window job for every placement that commits a board to a new
// bitstream and is completed from ValidateReconfiguration.
func (r *Registry) SetFlash(s *flash.Service) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flash = s
}

// FlashService returns the attached bitstream lifecycle service (nil when
// lifecycle tracking is disabled).
func (r *Registry) FlashService() *flash.Service {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flash
}

// RegisterDevice adds (or updates) a Devices Service record.
// Re-registration resets the device's health: a manager announcing itself
// is a fresh incarnation, so the record is allocatable immediately rather
// than carrying its dead predecessor's unhealthy verdict until the next
// successful scrape. Connected instances are preserved across updates.
func (r *Registry) RegisterDevice(d Device) error {
	if d.ID == "" || d.Node == "" {
		return fmt.Errorf("registry: device needs ID and Node")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ds, ok := r.devices[d.ID]; ok {
		r.unindexDevice(ds.ID, ds.Accelerator, ds.Node)
		ds.Device = d
		ds.unhealthy = false
		ds.healthErr = ""
		ds.unhealthySince = time.Time{}
		r.indexDevice(ds)
		return nil
	}
	ds := &deviceState{Device: d, instances: make(map[string]instanceInfo)}
	r.devices[d.ID] = ds
	r.indexDevice(ds)
	return nil
}

// SetDeviceHealth records a device's scrape health. An unhealthy device
// is excluded from allocation until it recovers; existing placements are
// left alone (their clients notice the broken manager themselves).
func (r *Registry) SetDeviceHealth(id string, scrapeErr error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[id]
	if !ok {
		return fmt.Errorf("registry: device %q not found", id)
	}
	if scrapeErr != nil {
		if !ds.unhealthy {
			ds.unhealthySince = r.Now() // transition: start the grace clock
		}
		ds.unhealthy = true
		ds.healthErr = scrapeErr.Error()
	} else {
		ds.unhealthy = false
		ds.healthErr = ""
		ds.unhealthySince = time.Time{}
	}
	return nil
}

// UnhealthyPastGrace returns the IDs of devices that have been unhealthy
// for longer than the grace window, sorted. These are the boards whose
// connected instances the controller migrates.
func (r *Registry) UnhealthyPastGrace(grace time.Duration) []string {
	cutoff := r.Now().Add(-grace)
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id, ds := range r.devices {
		if ds.unhealthy && !ds.unhealthySince.After(cutoff) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// DeviceHealthy reports whether a device is currently allocatable.
func (r *Registry) DeviceHealthy(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[id]
	return ok && !ds.unhealthy
}

// RemoveDevice deletes a device record. Instances connected to it keep
// running until their manager disappears; reallocating them is the
// operator's migration call.
func (r *Registry) RemoveDevice(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[id]
	if !ok {
		return fmt.Errorf("registry: device %q not found", id)
	}
	r.unindexDevice(id, ds.Accelerator, ds.Node)
	delete(r.devices, id)
	return nil
}

// Devices lists device records sorted by ID.
func (r *Registry) Devices() []Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Device, 0, len(r.devices))
	for _, ds := range r.devices {
		out = append(out, ds.Device)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegisterFunction adds (or updates) a Functions Service record.
func (r *Registry) RegisterFunction(f Function) error {
	if f.Name == "" {
		return fmt.Errorf("registry: function needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fn := f
	r.functions[f.Name] = &fn
	return nil
}

// Functions lists function records sorted by name.
func (r *Registry) Functions() []Function {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Function, 0, len(r.functions))
	for _, f := range r.functions {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InstancePlacement reports which device an instance is allocated to.
func (r *Registry) InstancePlacement(uid string) (Device, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.byInstance[uid]
	if !ok {
		return Device{}, false
	}
	ds, ok := r.devices[p.device]
	if !ok {
		return Device{}, false
	}
	return ds.Device, true
}

// ConnectedInstances returns the UIDs of instances allocated to a device,
// sorted.
func (r *Registry) ConnectedInstances(deviceID string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[deviceID]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(ds.instances))
	for uid := range ds.instances {
		out = append(out, uid)
	}
	sort.Strings(out)
	return out
}

// Release removes an instance's allocation. The controller calls it on
// instance deletion events and before migrating a displaced instance; the
// DES harness uses it to model the same migrations.
func (r *Registry) Release(uid string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.byInstance[uid]
	if !ok {
		return
	}
	delete(r.byInstance, uid)
	// The name index is cleaned even when the device record is already
	// gone (RemoveDevice before Release): a leftover entry would shadow a
	// later instance reusing the name and break its reconfiguration
	// validation. Guarded so a newer allocation that took over the name is
	// left alone.
	if r.byName[p.name] == uid {
		delete(r.byName, p.name)
	}
	if ds, ok := r.devices[p.device]; ok {
		delete(ds.instances, uid)
	}
}
