// Package registry implements the BlastFunction Accelerators Registry.
//
// The Registry is the master component of the paper's Section III-C. It
// registers functions and devices (the Functions Service and Devices
// Service), aggregates Device Manager performance metrics through the
// Metrics Gatherer, allocates devices to function instances with the
// paper's online allocation algorithm (Algorithm 1), and validates
// reconfiguration operations, migrating connected instances through the
// cluster orchestrator when a board must change bitstream.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// DeviceQuery is a function's device requirements — the paper's
// "instance.devicequery" matched during compatibility filtering.
type DeviceQuery struct {
	// Vendor restricts acceptable device vendors; empty accepts any.
	Vendor string
	// Platform restricts acceptable platforms; empty accepts any.
	Platform string
	// Accelerator is the logical accelerator the function needs (the
	// family of its bitstream, e.g. "sobel").
	Accelerator string
}

// Device is a Devices Service record: one FPGA board under a Device
// Manager.
type Device struct {
	// ID is the device identifier, unique in the cluster.
	ID string
	// Node is the node hosting the board.
	Node string
	// Vendor and Platform describe the board for compatibility checks.
	Vendor   string
	Platform string
	// ManagerAddr is the Device Manager's RPC endpoint, injected into
	// allocated instances' environments.
	ManagerAddr string
	// MetricsURL is the manager's metrics endpoint for the scraper.
	MetricsURL string
	// Bitstream is the currently configured (or expected) bitstream ID.
	Bitstream string
	// Accelerator is the logical accelerator of Bitstream.
	Accelerator string
}

// Function is a Functions Service record.
type Function struct {
	// Name is the serverless function name (e.g. "sobel-1").
	Name string
	// Query is the function's device requirements.
	Query DeviceQuery
	// Bitstream is the bitstream ID the function programs.
	Bitstream string
}

// instanceInfo tracks one allocated function instance.
type instanceInfo struct {
	uid      string
	name     string
	function string
	node     string
}

// deviceState couples a Device record with its connected instances.
type deviceState struct {
	Device
	instances map[string]instanceInfo // by instance UID
	// unhealthy marks devices whose Device Manager stopped answering
	// metric scrapes; allocation skips them until they recover.
	unhealthy bool
	healthErr string
}

// Registry is the Accelerators Registry.
type Registry struct {
	mu        sync.Mutex
	devices   map[string]*deviceState
	functions map[string]*Function
	// byInstance maps an allocated instance UID to its device ID.
	byInstance map[string]string
	// byName maps instance names to UIDs (Device Managers authenticate
	// clients by instance name).
	byName map[string]string

	source AllocPolicy
}

// AllocPolicy supplies the metrics view and the ordering/filtering
// configuration of Algorithm 1.
type AllocPolicy struct {
	// Metrics yields a device's current metrics; nil disables metric
	// filtering and ordering (fresh clusters).
	Metrics MetricsSource
	// Order lists the sort criteria, most significant first.
	Order []Criterion
	// Filters drop overloaded devices before ordering.
	Filters []Filter
}

// MetricsSource yields per-device runtime metrics.
type MetricsSource interface {
	// DeviceMetrics returns the device's current metrics; ok is false
	// when no data is available yet (the device is then treated as idle).
	DeviceMetrics(deviceID, node string) (DeviceMetrics, bool)
}

// DeviceMetrics is the metric set Algorithm 1 consumes.
type DeviceMetrics struct {
	// Utilization is the FPGA time utilization over the recent window,
	// 0..1 (can exceed 1 transiently on scrape jitter).
	Utilization float64
	// Connected is the number of connected function instances.
	Connected float64
	// QueueDepth is the central queue depth.
	QueueDepth float64
}

// value extracts a metric by name.
func (m DeviceMetrics) value(name string) float64 {
	switch name {
	case MetricUtilization:
		return m.Utilization
	case MetricConnected:
		return m.Connected
	case MetricQueueDepth:
		return m.QueueDepth
	}
	return 0
}

// Metric names usable in criteria and filters.
const (
	MetricUtilization = "utilization"
	MetricConnected   = "connected"
	MetricQueueDepth  = "queue_depth"
)

// Criterion is one sort key of the allocation ordering.
type Criterion struct {
	// Metric names the metric (Metric* constants).
	Metric string
	// Desc sorts descending when true (default ascending: less loaded
	// devices first).
	Desc bool
	// Quantum buckets values before comparing, so near-equal devices tie
	// and the accelerator-compatibility tiebreak can prefer a device that
	// avoids a reconfiguration. Zero compares exactly.
	Quantum float64
}

// Filter drops devices whose metric exceeds Max.
type Filter struct {
	Metric string
	Max    float64
}

// DefaultPolicy returns the allocation policy used in the paper's
// experiments: prefer low utilization (5 % buckets), then fewer connected
// instances, and never allocate onto a device already above 95 %
// utilization.
func DefaultPolicy(src MetricsSource) AllocPolicy {
	return AllocPolicy{
		Metrics: src,
		Order: []Criterion{
			{Metric: MetricUtilization, Quantum: 0.05},
			{Metric: MetricConnected},
		},
		Filters: []Filter{{Metric: MetricUtilization, Max: 0.95}},
	}
}

// New creates a Registry with the given allocation policy.
func New(policy AllocPolicy) *Registry {
	return &Registry{
		devices:    make(map[string]*deviceState),
		functions:  make(map[string]*Function),
		byInstance: make(map[string]string),
		byName:     make(map[string]string),
		source:     policy,
	}
}

// RegisterDevice adds (or updates) a Devices Service record.
func (r *Registry) RegisterDevice(d Device) error {
	if d.ID == "" || d.Node == "" {
		return fmt.Errorf("registry: device needs ID and Node")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ds, ok := r.devices[d.ID]; ok {
		ds.Device = d
		return nil
	}
	r.devices[d.ID] = &deviceState{Device: d, instances: make(map[string]instanceInfo)}
	return nil
}

// SetDeviceHealth records a device's scrape health. An unhealthy device
// is excluded from allocation until it recovers; existing placements are
// left alone (their clients notice the broken manager themselves).
func (r *Registry) SetDeviceHealth(id string, scrapeErr error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[id]
	if !ok {
		return fmt.Errorf("registry: device %q not found", id)
	}
	ds.unhealthy = scrapeErr != nil
	if scrapeErr != nil {
		ds.healthErr = scrapeErr.Error()
	} else {
		ds.healthErr = ""
	}
	return nil
}

// DeviceHealthy reports whether a device is currently allocatable.
func (r *Registry) DeviceHealthy(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[id]
	return ok && !ds.unhealthy
}

// RemoveDevice deletes a device record. Instances connected to it keep
// running until their manager disappears; reallocating them is the
// operator's migration call.
func (r *Registry) RemoveDevice(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.devices[id]; !ok {
		return fmt.Errorf("registry: device %q not found", id)
	}
	delete(r.devices, id)
	return nil
}

// Devices lists device records sorted by ID.
func (r *Registry) Devices() []Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Device, 0, len(r.devices))
	for _, ds := range r.devices {
		out = append(out, ds.Device)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RegisterFunction adds (or updates) a Functions Service record.
func (r *Registry) RegisterFunction(f Function) error {
	if f.Name == "" {
		return fmt.Errorf("registry: function needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fn := f
	r.functions[f.Name] = &fn
	return nil
}

// Functions lists function records sorted by name.
func (r *Registry) Functions() []Function {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Function, 0, len(r.functions))
	for _, f := range r.functions {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InstancePlacement reports which device an instance is allocated to.
func (r *Registry) InstancePlacement(uid string) (Device, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	devID, ok := r.byInstance[uid]
	if !ok {
		return Device{}, false
	}
	ds, ok := r.devices[devID]
	if !ok {
		return Device{}, false
	}
	return ds.Device, true
}

// ConnectedInstances returns the UIDs of instances allocated to a device,
// sorted.
func (r *Registry) ConnectedInstances(deviceID string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[deviceID]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(ds.instances))
	for uid := range ds.instances {
		out = append(out, uid)
	}
	sort.Strings(out)
	return out
}

// Release removes an instance's allocation. The controller calls it on
// instance deletion events and before migrating a displaced instance; the
// DES harness uses it to model the same migrations.
func (r *Registry) Release(uid string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	devID, ok := r.byInstance[uid]
	if !ok {
		return
	}
	delete(r.byInstance, uid)
	if ds, ok := r.devices[devID]; ok {
		if info, ok := ds.instances[uid]; ok {
			delete(r.byName, info.name)
			delete(ds.instances, uid)
		}
	}
}
