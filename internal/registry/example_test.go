package registry_test

import (
	"fmt"

	"blastfunction/internal/registry"
)

// ExampleRegistry_Allocate runs the paper's Algorithm 1: the least-loaded
// compatible device wins, and the Registry records the placement.
func ExampleRegistry_Allocate() {
	src := registry.StaticMetrics{
		"fpga-A": {Utilization: 0.72},
		"fpga-B": {Utilization: 0.15},
		"fpga-C": {Utilization: 0.40},
	}
	reg, _ := registry.New(registry.DefaultPolicy(src))
	for _, n := range []string{"A", "B", "C"} {
		reg.RegisterDevice(registry.Device{
			ID: "fpga-" + n, Node: n,
			Vendor:   "Intel(R) Corporation",
			Platform: "Intel(R) FPGA SDK for OpenCL(TM)",
		})
	}
	reg.RegisterFunction(registry.Function{
		Name:      "sobel-1",
		Query:     registry.DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: "sobel"},
		Bitstream: "spector-sobel",
	})
	alloc, err := reg.Allocate(registry.AllocRequest{
		InstanceUID:  "uid-1",
		InstanceName: "sobel-1-abc",
		Function:     "sobel-1",
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("allocated %s on node %s (reconfigure: %t)\n",
		alloc.Device.ID, alloc.Node, alloc.NeedsReconfigure)
	// Output:
	// allocated fpga-B on node B (reconfigure: false)
}
