package registry

import (
	"context"
	"errors"
	"testing"
	"time"

	"blastfunction/internal/cluster"
	"blastfunction/internal/logx"
)

func mustNew(t *testing.T, policy AllocPolicy) *Registry {
	t.Helper()
	r, err := New(policy)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRejectsUnknownMetricNames(t *testing.T) {
	if _, err := New(AllocPolicy{Order: []Criterion{{Metric: "utilisation"}}}); err == nil {
		t.Fatal("misspelled criterion metric accepted")
	}
	if _, err := New(AllocPolicy{Filters: []Filter{{Metric: "queue", Max: 10}}}); err == nil {
		t.Fatal("misspelled filter metric accepted")
	}
	if _, err := New(DefaultPolicy(nil)); err != nil {
		t.Fatalf("default policy rejected: %v", err)
	}
}

// TestReleaseAfterRemoveDeviceCleansNameIndex is the regression test for
// the byName leak: removing a device before its instance is released used
// to leave the instance's name index entry behind, which then shadowed any
// later instance reusing the name.
func TestReleaseAfterRemoveDeviceCleansNameIndex(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveDevice(alloc.Device.ID); err != nil {
		t.Fatal(err)
	}
	r.Release("u1")
	if uid, ok := r.byName["i1"]; ok {
		t.Fatalf("byName[%q] = %q still present after Release", "i1", uid)
	}

	// The name is reusable: a fresh instance under the same name allocates
	// and passes reconfiguration validation.
	alloc2, err := r.Allocate(AllocRequest{InstanceUID: "u2", InstanceName: "i1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ValidateReconfiguration(alloc2.Device.ID, "i1", "spector-sobel"); err != nil {
		t.Fatalf("reused name fails validation: %v", err)
	}
}

// TestReleaseKeepsNameTakenOverByReplacement covers create-before-delete:
// when a replacement instance claims the name before the old UID is
// released, releasing the old UID must not evict the replacement's entry.
func TestReleaseKeepsNameTakenOverByReplacement(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"}); err != nil {
		t.Fatal(err)
	}
	alloc2, err := r.Allocate(AllocRequest{InstanceUID: "u2", InstanceName: "i1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	r.Release("u1")
	if got := r.byName["i1"]; got != "u2" {
		t.Fatalf("byName[%q] = %q, want the replacement u2", "i1", got)
	}
	if err := r.ValidateReconfiguration(alloc2.Device.ID, "i1", "spector-sobel"); err != nil {
		t.Fatalf("replacement fails validation after old UID released: %v", err)
	}
}

// TestReRegisterResetsHealth documents re-registration semantics: a device
// announcing itself again is a fresh incarnation and must be allocatable
// immediately, not carry its predecessor's unhealthy verdict until the
// next scrape.
func TestReRegisterResetsHealth(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	r.RegisterDevice(Device{ID: "fpga-A", Node: "A", Vendor: "Intel(R) Corporation"})
	r.RegisterFunction(sobelFn())
	if err := r.SetDeviceHealth("fpga-A", errors.New("manager crashed")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"}); err == nil {
		t.Fatal("unhealthy-only cluster still allocated")
	}

	// The manager restarts and self-registers.
	r.RegisterDevice(Device{ID: "fpga-A", Node: "A", Vendor: "Intel(R) Corporation"})
	if !r.DeviceHealthy("fpga-A") {
		t.Fatal("re-registered device still unhealthy")
	}
	if got := r.UnhealthyPastGrace(0); len(got) != 0 {
		t.Fatalf("UnhealthyPastGrace = %v after re-registration", got)
	}
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"}); err != nil {
		t.Fatalf("re-registered device not allocatable: %v", err)
	}
}

func TestUnhealthyPastGraceUsesTransitionTime(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	now := time.Unix(1000, 0)
	r.Now = func() time.Time { return now }
	threeDevices(r)
	r.SetDeviceHealth("fpga-A", errors.New("down"))
	if got := r.UnhealthyPastGrace(time.Minute); len(got) != 0 {
		t.Fatalf("device past grace immediately: %v", got)
	}
	// Repeated failed scrapes must not restart the grace clock.
	now = now.Add(40 * time.Second)
	r.SetDeviceHealth("fpga-A", errors.New("still down"))
	now = now.Add(30 * time.Second)
	if got := r.UnhealthyPastGrace(time.Minute); len(got) != 1 || got[0] != "fpga-A" {
		t.Fatalf("UnhealthyPastGrace = %v, want [fpga-A]", got)
	}
	// Recovery clears the clock.
	r.SetDeviceHealth("fpga-A", nil)
	if got := r.UnhealthyPastGrace(time.Minute); len(got) != 0 {
		t.Fatalf("recovered device still past grace: %v", got)
	}
}

// TestSweepMigratesOffDeadBoard drives the full recovery path: a device
// unhealthy past the grace window has its instance re-placed
// create-before-delete through the orchestrator onto a healthy board.
func TestSweepMigratesOffDeadBoard(t *testing.T) {
	cl := cluster.New()
	for _, n := range []string{"A", "B"} {
		cl.AddNode(cluster.Node{Name: n})
	}
	r := mustNew(t, AllocPolicy{})
	now := time.Unix(2000, 0)
	r.Now = func() time.Time { return now }
	r.RegisterDevice(Device{ID: "fpga-A", Node: "A", Vendor: "Intel(R) Corporation",
		ManagerAddr: "10.0.0.1:5000", Bitstream: "spector-sobel", Accelerator: "sobel"})
	r.RegisterDevice(Device{ID: "fpga-B", Node: "B", Vendor: "Intel(R) Corporation",
		ManagerAddr: "10.0.0.2:5000", Bitstream: "spector-sobel", Accelerator: "sobel"})
	r.RegisterFunction(sobelFn())
	ctrl := NewController(r, cl)
	ctrl.Log = logx.NewLogf("registry", t.Logf)
	ctrl.Grace = time.Minute
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx)

	// Unpinned: the controller allocates it; fpga-A wins the ID tiebreak
	// between the two equally idle boards.
	in, err := cl.CreateInstance(cluster.Instance{Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	waitPlaced := func(uid, wantDev string) cluster.Instance {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if got, _ := cl.Get(uid); got.Phase == cluster.Running {
				if dev, ok := r.InstancePlacement(uid); ok && (wantDev == "" || dev.ID == wantDev) {
					return got
				}
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("instance %s never placed on %q", uid, wantDev)
		return cluster.Instance{}
	}
	waitPlaced(in.UID, "fpga-A")

	// fpga-A's manager dies; its scrapes fail past the grace window.
	r.SetDeviceHealth("fpga-A", errors.New("connection refused"))
	now = now.Add(2 * time.Minute)
	ctrl.SweepUnhealthy()

	// The replacement lands on the healthy board; the stranded instance is
	// gone (delete happens after the replacement was created).
	deadline := time.Now().Add(2 * time.Second)
	var moved []string
	for time.Now().Before(deadline) {
		moved = r.ConnectedInstances("fpga-B")
		if len(moved) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(moved) != 1 {
		t.Fatalf("fpga-B instances = %v, want the migrated replacement", moved)
	}
	if got := r.ConnectedInstances("fpga-A"); len(got) != 0 {
		t.Fatalf("fpga-A still has instances: %v", got)
	}
	rep := waitPlaced(moved[0], "fpga-B")
	if rep.Env[EnvManagerAddr] != "10.0.0.2:5000" {
		t.Fatalf("replacement env = %v, want fpga-B's manager", rep.Env)
	}
	if _, ok := cl.Get(in.UID); ok {
		t.Fatalf("stranded instance %s still exists", in.UID)
	}
	// The replacement's allocation is fully registered: the Device
	// Manager's reconfiguration gate accepts it under its fresh name.
	if err := r.ValidateReconfiguration("fpga-B", rep.Name, "spector-sobel"); err != nil {
		t.Fatalf("replacement rejected by reconfiguration gate: %v", err)
	}
}
