package registry

import (
	"fmt"
	"math"
	"sort"

	"blastfunction/internal/flash"
)

// ErrDeviceNotFound is raised when Algorithm 1 exhausts the candidate list
// — the paper's `raise error "device not found"`.
var ErrDeviceNotFound = fmt.Errorf("registry: device not found")

// AllocRequest describes the function instance to match, the input of
// Algorithm 1.
type AllocRequest struct {
	// InstanceUID and InstanceName identify the instance.
	InstanceUID  string
	InstanceName string
	// Function names the Functions Service record carrying the device
	// query and bitstream.
	Function string
	// Node, when non-empty, is a pre-bound node: only that node's devices
	// qualify, and the final `instance.node` assignment is skipped.
	Node string
}

// Allocation is Algorithm 1's output.
type Allocation struct {
	// Device is the chosen device.
	Device Device
	// Node is the node the instance must run on.
	Node string
	// NeedsReconfigure is true when the chosen device's current bitstream
	// does not serve the function's accelerator; the Registry has already
	// validated that the device's existing workloads are redistributable.
	NeedsReconfigure bool
	// Displaced lists instance UIDs that must migrate off the chosen
	// device before it is reconfigured.
	Displaced []string
	// Weight is the function's fair-share weight, forwarded into the
	// instance environment so the Remote Library declares it at Hello.
	Weight int
}

// candidate is a device under evaluation, with its metrics snapshot.
type candidate struct {
	ds         *deviceState
	metrics    DeviceMetrics
	hasMetrics bool
	compatible bool // accelerator-compatible: no reconfiguration needed
	// flashed means the board already carries (or is promised to, by a
	// pending flash window — Allocate records the expected bitstream
	// eagerly) a bitstream serving the query's accelerator: allocating here
	// costs no reprogram. A blank board is compatible but not flashed.
	flashed bool
}

// Allocate runs the paper's Algorithm 1 and records the resulting
// placement. It must be called once per created instance (the watch loop
// does); the returned Allocation tells the caller how to patch the
// instance and whether a reconfiguration (with migrations) is pending.
func (r *Registry) Allocate(req AllocRequest) (*Allocation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	fn, ok := r.functions[req.Function]
	if !ok {
		return nil, fmt.Errorf("registry: function %q not registered", req.Function)
	}

	// Lines 2-4: filterby_compatibility, filterby_metrics,
	// orderby_metrics_and_acc — but built from the accelerator/node index
	// instead of a full r.devices scan. The primary pool holds only
	// accelerator-compatible devices (the requested family's bucket plus
	// blank boards, or the pinned node's bucket), so at hundreds of
	// boards an allocation touches the handful that can actually serve
	// the function.
	cands := r.candidates(r.compatiblePool(fn.Query, req.Node), fn.Query)
	cands = filterByMetrics(cands, r.source.Filters)
	orderCandidates(cands, r.source.Order, r.source.ReconfigPenalty)

	// Lines 5-12: pick the best-ordered compatible device. Every
	// primary-pool candidate is compatible, so the head of the ordered
	// list wins. Only "when compatible accelerators are missing" (the
	// paper's wording) does the algorithm fall back to the full candidate
	// set, scanning for a device whose current workloads can be
	// redistributed to other boards; eager displacement would let two
	// accelerator families evict each other indefinitely.
	var chosen *candidate
	var displaced []string
	if len(cands) > 0 {
		chosen = cands[0]
	}
	if chosen == nil {
		all := r.candidates(r.fullPool(fn.Query, req.Node), fn.Query)
		all = filterByMetrics(all, r.source.Filters)
		orderCandidates(all, r.source.Order, r.source.ReconfigPenalty)
		for _, c := range all {
			if moved, ok := r.redistributable(c.ds); ok {
				chosen = c
				displaced = moved
				break
			}
		}
		if chosen == nil {
			return nil, fmt.Errorf("%w: function %q needs accelerator %q (%d candidates)",
				ErrDeviceNotFound, fn.Name, fn.Query.Accelerator, len(all))
		}
	}

	// Lines 13-15: bind instance to the chosen device (and its node when
	// the instance was unscheduled).
	alloc := &Allocation{
		Device:           chosen.ds.Device,
		Node:             req.Node,
		NeedsReconfigure: !chosen.compatible,
		Displaced:        displaced,
		Weight:           fn.Weight,
	}
	if alloc.Node == "" {
		alloc.Node = chosen.ds.Node
	}
	r.byInstance[req.InstanceUID] = placement{device: chosen.ds.ID, name: req.InstanceName}
	r.byName[req.InstanceName] = req.InstanceUID
	chosen.ds.instances[req.InstanceUID] = instanceInfo{
		uid:      req.InstanceUID,
		name:     req.InstanceName,
		function: req.Function,
		node:     alloc.Node,
	}
	if !chosen.compatible || chosen.ds.Accelerator == "" {
		// Record the expected bitstream immediately — both for devices
		// that must reconfigure and for fresh, unconfigured ones the
		// client is about to program. Later allocations then see the
		// device's future configuration instead of treating it as a blank
		// board, and the reconfiguration gate can validate the client's
		// Build call. The device moves to its new accelerator bucket so
		// the index keeps matching the record.
		old := chosen.ds.Accelerator
		chosen.ds.Bitstream = fn.Bitstream
		chosen.ds.Accelerator = fn.Query.Accelerator
		if old != chosen.ds.Accelerator {
			if b := r.byAccel[old]; b != nil {
				delete(b, chosen.ds.ID)
				if len(b) == 0 {
					delete(r.byAccel, old)
				}
			}
			if r.byAccel[chosen.ds.Accelerator] == nil {
				r.byAccel[chosen.ds.Accelerator] = make(map[string]*deviceState)
			}
			r.byAccel[chosen.ds.Accelerator][chosen.ds.ID] = chosen.ds
		}
		if r.flash != nil && fn.Bitstream != "" {
			// Open a planning-mode flash window for the board's reprogram.
			// Later allocations wanting the same accelerator land on this
			// board through the eager record above and ride the same window;
			// the Device Manager's Build call closes it via
			// ValidateReconfiguration. Submit never calls back into the
			// Registry, so taking the flash lock under r.mu is safe.
			r.flash.Submit(flash.Request{
				Board:       chosen.ds.ID,
				Bitstream:   fn.Bitstream,
				Accelerator: fn.Query.Accelerator,
				Requester:   req.InstanceName,
				Priority:    fn.Weight,
			})
		}
	}
	return alloc, nil
}

// compatiblePool collects the healthy devices that can serve the query
// without reconfiguration, drawn from the index buckets: a pinned node's
// bucket, or the query's accelerator family plus blank boards. An empty
// query accelerator matches every configured board, so that case walks
// all devices (it cannot narrow by family). Called with r.mu held.
func (r *Registry) compatiblePool(q DeviceQuery, node string) []*deviceState {
	var pool []*deviceState
	keep := func(ds *deviceState) {
		if !ds.unhealthy && queryCompatible(ds.Device, q) && acceleratorCompatible(ds.Device, q) {
			pool = append(pool, ds)
		}
	}
	switch {
	case node != "":
		for _, ds := range r.byNode[node] {
			keep(ds)
		}
	case q.Accelerator == "":
		for _, ds := range r.devices {
			keep(ds)
		}
	default:
		for _, ds := range r.byAccel[q.Accelerator] {
			keep(ds)
		}
		for _, ds := range r.byAccel[""] {
			keep(ds)
		}
	}
	return pool
}

// fullPool collects every healthy vendor/platform/node-compatible device
// regardless of its configured accelerator — the reconfiguration
// fallback's candidate set. Called with r.mu held.
func (r *Registry) fullPool(q DeviceQuery, node string) []*deviceState {
	var pool []*deviceState
	for _, ds := range r.devices {
		if ds.unhealthy || !queryCompatible(ds.Device, q) {
			continue
		}
		if node != "" && ds.Node != node {
			continue
		}
		pool = append(pool, ds)
	}
	return pool
}

// candidates wraps a device pool with its metrics snapshots and
// accelerator-compatibility flags. Called with r.mu held; note the
// MetricsSource call happens under the lock, which is why the Gatherer
// memoizes per scrape generation.
func (r *Registry) candidates(pool []*deviceState, q DeviceQuery) []*candidate {
	cands := make([]*candidate, 0, len(pool))
	for _, ds := range pool {
		c := &candidate{ds: ds, compatible: acceleratorCompatible(ds.Device, q)}
		c.flashed = c.compatible && ds.Accelerator != ""
		if r.source.Metrics != nil {
			c.metrics, c.hasMetrics = r.source.Metrics.DeviceMetrics(ds.ID, ds.Node)
		}
		// The connected-instance count is Devices Service state, not a
		// scraped metric: the Registry itself records every allocation, so
		// placement decisions see their own effects immediately instead of
		// racing the next metrics scrape.
		if own := float64(len(ds.instances)); own > c.metrics.Connected {
			c.metrics.Connected = own
		}
		cands = append(cands, c)
	}
	return cands
}

// queryCompatible implements the vendor/platform part of
// filterby_compatibility.
func queryCompatible(d Device, q DeviceQuery) bool {
	if q.Vendor != "" && q.Vendor != d.Vendor {
		return false
	}
	if q.Platform != "" && q.Platform != d.Platform {
		return false
	}
	return true
}

// acceleratorCompatible reports whether the device already serves the
// requested accelerator (a fresh, unconfigured device counts as
// compatible: programming an idle board displaces nobody).
func acceleratorCompatible(d Device, q DeviceQuery) bool {
	if d.Accelerator == "" {
		return true
	}
	return q.Accelerator == "" || d.Accelerator == q.Accelerator
}

// filterByMetrics implements filterby_metrics. Devices without metric data
// pass every filter (treated as idle).
func filterByMetrics(cands []*candidate, filters []Filter) []*candidate {
	if len(filters) == 0 {
		return cands
	}
	out := cands[:0]
	for _, c := range cands {
		ok := true
		if c.hasMetrics {
			for _, f := range filters {
				if c.metrics.value(f.Metric) > f.Max {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// orderCandidates implements orderby_metrics_and_acc: criteria in
// priority order, with flashedness (already carrying — or promised to —
// the right bitstream) and then accelerator compatibility as tiebreaks so
// that among equally loaded devices the one avoiding a reconfiguration
// wins; device ID breaks the final tie for determinism.
//
// penalty is the reconfiguration bias: a candidate that would need a
// reprogram has its first criterion's value worsened by this amount
// (raised for ascending criteria, lowered for descending) before
// quantization, steering allocations toward already-flashed boards and
// open flash windows unless a to-be-flashed board is more than the
// penalty better on the primary metric.
func orderCandidates(cands []*candidate, order []Criterion, penalty float64) {
	bias := func(c *candidate, crit Criterion, first bool) float64 {
		if !first || c.flashed || penalty == 0 {
			return 0
		}
		if crit.Desc {
			return -penalty
		}
		return penalty
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		for k, crit := range order {
			av := quantize(a.metrics.value(crit.Metric)+bias(a, crit, k == 0), crit.Quantum)
			bv := quantize(b.metrics.value(crit.Metric)+bias(b, crit, k == 0), crit.Quantum)
			if av != bv {
				if crit.Desc {
					return av > bv
				}
				return av < bv
			}
		}
		if a.flashed != b.flashed {
			return a.flashed
		}
		if a.compatible != b.compatible {
			return a.compatible
		}
		return a.ds.ID < b.ds.ID
	})
}

func quantize(v, quantum float64) float64 {
	if quantum <= 0 {
		return v
	}
	return math.Floor(v/quantum) * quantum
}

// redistributable implements the paper's not_redistributable check (lines
// 6-8, inverted): every instance currently connected to the device must
// have at least one other device that is compatible with its function's
// query and already serves its accelerator. It returns the UIDs to
// migrate. Called with r.mu held.
func (r *Registry) redistributable(ds *deviceState) ([]string, bool) {
	var moved []string
	for uid, info := range ds.instances {
		fn, ok := r.functions[info.function]
		if !ok {
			return nil, false
		}
		found := false
		for _, other := range r.devices {
			if other.ID == ds.ID {
				continue
			}
			if queryCompatible(other.Device, fn.Query) &&
				other.Accelerator == fn.Query.Accelerator {
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
		moved = append(moved, uid)
	}
	sort.Strings(moved)
	return moved, true
}

// ValidateReconfiguration is the Device Managers' reconfiguration gate
// (paper: the Registry "validates reconfiguration operations"). The
// requesting client (a function instance, identified by name) may program
// bitID only if it is allocated to the device and the device's expected
// bitstream matches; the common case is the Build call that follows the
// allocation above.
func (r *Registry) ValidateReconfiguration(deviceID, clientName, bitID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.devices[deviceID]
	if !ok {
		return fmt.Errorf("registry: unknown device %q", deviceID)
	}
	uid, ok := r.byName[clientName]
	if !ok {
		return fmt.Errorf("registry: client %q has no allocation", clientName)
	}
	if r.byInstance[uid].device != deviceID {
		return fmt.Errorf("registry: client %q is not allocated to device %q", clientName, deviceID)
	}
	if ds.Bitstream != "" && ds.Bitstream != bitID {
		return fmt.Errorf("registry: device %q expects bitstream %q, client wants %q",
			deviceID, ds.Bitstream, bitID)
	}
	ds.Bitstream = bitID
	if r.flash != nil {
		// The client's Build call is going through: the board's flash window
		// is now being served by the Device Manager. Close it so the history
		// records the queue-to-validate latency and any drained sessions.
		r.flash.Complete(deviceID, bitID, 0, nil)
	}
	return nil
}

// BuildLanded closes the flash window an instance's allocation opened, if
// any. It is the in-process counterpart of ValidateReconfiguration for
// deployments where the gateway — not a Device Manager calling the
// reconfiguration gate — observes the build completing: the gateway's
// OnReady hook calls it once the function's factory returns a live
// endpoint, which implies the program was built on the placed board.
// Unknown instances and boards without a recorded bitstream are ignored.
func (r *Registry) BuildLanded(instanceName string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flash == nil {
		return
	}
	uid, ok := r.byName[instanceName]
	if !ok {
		return
	}
	p, ok := r.byInstance[uid]
	if !ok {
		return
	}
	ds, ok := r.devices[p.device]
	if !ok || ds.Bitstream == "" {
		return
	}
	r.flash.Complete(p.device, ds.Bitstream, 0, nil)
}
