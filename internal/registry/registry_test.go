package registry

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blastfunction/internal/cluster"
	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
)

// threeDevices registers the testbed topology: one board per node, all
// Intel/FPGA-SDK, initially unconfigured.
func threeDevices(r *Registry) {
	for _, n := range []string{"A", "B", "C"} {
		r.RegisterDevice(Device{
			ID:          "fpga-" + n,
			Node:        n,
			Vendor:      "Intel(R) Corporation",
			Platform:    "Intel(R) FPGA SDK for OpenCL(TM)",
			ManagerAddr: "10.0.0." + n + ":5000",
		})
	}
}

func sobelFn() Function {
	return Function{
		Name:      "sobel-1",
		Query:     DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: "sobel"},
		Bitstream: "spector-sobel",
	}
}

func TestAllocatePrefersLowUtilization(t *testing.T) {
	src := StaticMetrics{
		"fpga-A": {Utilization: 0.80},
		"fpga-B": {Utilization: 0.10},
		"fpga-C": {Utilization: 0.40},
	}
	r := mustNew(t, DefaultPolicy(src))
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "sobel-1-a", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Device.ID != "fpga-B" || alloc.Node != "B" {
		t.Fatalf("allocated %s on %s, want fpga-B on B", alloc.Device.ID, alloc.Node)
	}
	if alloc.NeedsReconfigure {
		t.Fatal("unconfigured device must not need displacements")
	}
}

func TestAllocateFiltersOverloadedDevices(t *testing.T) {
	src := StaticMetrics{
		"fpga-A": {Utilization: 0.99},
		"fpga-B": {Utilization: 0.97},
		"fpga-C": {Utilization: 0.50},
	}
	r := mustNew(t, DefaultPolicy(src))
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Device.ID != "fpga-C" {
		t.Fatalf("allocated %s, want fpga-C (others filtered)", alloc.Device.ID)
	}
}

func TestAllocateCompatibilityTiebreak(t *testing.T) {
	// Utilizations within one 5% bucket: the device already configured
	// with the needed accelerator must win, avoiding a reconfiguration.
	src := StaticMetrics{
		"fpga-A": {Utilization: 0.41},
		"fpga-B": {Utilization: 0.44},
		"fpga-C": {Utilization: 0.48},
	}
	r := mustNew(t, DefaultPolicy(src))
	threeDevices(r)
	r.RegisterDevice(Device{
		ID: "fpga-B", Node: "B",
		Vendor: "Intel(R) Corporation", Platform: "Intel(R) FPGA SDK for OpenCL(TM)",
		Bitstream: "spector-sobel", Accelerator: "sobel",
	})
	r.RegisterDevice(Device{
		ID: "fpga-A", Node: "A",
		Vendor: "Intel(R) Corporation", Platform: "Intel(R) FPGA SDK for OpenCL(TM)",
		Bitstream: "spector-mm", Accelerator: "mm",
	})
	r.RegisterFunction(sobelFn())
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	// fpga-A (0.41) and fpga-B (0.44) share the 0.40 bucket; B is
	// accelerator-compatible and must win despite slightly higher load.
	if alloc.Device.ID != "fpga-B" {
		t.Fatalf("allocated %s, want fpga-B (compatibility tiebreak)", alloc.Device.ID)
	}
}

func TestAllocateVendorFilter(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterDevice(Device{ID: "gpu-X", Node: "A", Vendor: "Other Corp", Platform: "OtherCL"})
	r.RegisterFunction(Function{
		Name:  "f",
		Query: DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: "sobel"},
	})
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Device.Vendor != "Intel(R) Corporation" {
		t.Fatalf("vendor filter violated: %+v", alloc.Device)
	}
}

func TestAllocateDeviceNotFound(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	r.RegisterFunction(sobelFn())
	_, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"})
	if !errors.Is(err, ErrDeviceNotFound) {
		t.Fatalf("err = %v, want ErrDeviceNotFound", err)
	}
	if _, err := r.Allocate(AllocRequest{Function: "ghost"}); err == nil {
		t.Fatal("unregistered function must fail")
	}
}

func TestAllocateNodePinned(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1", Node: "C"})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Device.Node != "C" || alloc.Node != "C" {
		t.Fatalf("pinned allocation landed on %s", alloc.Device.Node)
	}
}

func TestAllocateReconfigurationWithRedistribution(t *testing.T) {
	// All devices run sobel; an MM function arrives. The chosen device's
	// sobel instances must be redistributable to the other sobel boards,
	// and the allocation must flag reconfiguration + displacements.
	r := mustNew(t, AllocPolicy{})
	for _, n := range []string{"A", "B", "C"} {
		r.RegisterDevice(Device{
			ID: "fpga-" + n, Node: n,
			Vendor: "Intel(R) Corporation", Platform: "SDK",
			Bitstream: "spector-sobel", Accelerator: "sobel",
		})
	}
	r.RegisterFunction(sobelFn())
	r.RegisterFunction(Function{
		Name:      "mm-1",
		Query:     DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: "mm"},
		Bitstream: "spector-mm",
	})
	// Two sobel instances land on A (the deterministic first pick).
	a1, err := r.Allocate(AllocRequest{InstanceUID: "s1", InstanceName: "sobel-1-1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Allocate(AllocRequest{InstanceUID: "s2", InstanceName: "sobel-1-2", Function: "sobel-1"}); err != nil {
		t.Fatal(err)
	}
	if a1.Device.ID != "fpga-A" {
		t.Fatalf("setup: sobel landed on %s", a1.Device.ID)
	}
	// MM allocation: every device is incompatible; fpga-A is first in
	// order and its two sobel instances can move to B or C.
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "m1", InstanceName: "mm-1-1", Function: "mm-1"})
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.NeedsReconfigure {
		t.Fatal("MM on a sobel board must need reconfiguration")
	}
	if len(alloc.Displaced) != 2 {
		t.Fatalf("displaced = %v, want the 2 sobel instances", alloc.Displaced)
	}
	// The device record now expects the MM bitstream.
	for _, d := range r.Devices() {
		if d.ID == alloc.Device.ID && d.Bitstream != "spector-mm" {
			t.Fatalf("device bitstream = %q", d.Bitstream)
		}
	}
}

func TestAllocateSkipsNonRedistributableDevice(t *testing.T) {
	// Only one sobel board exists: its sobel instance cannot move, so an
	// MM request must NOT displace it; with a second (idle, unconfigured)
	// board the MM lands there instead.
	r := mustNew(t, AllocPolicy{})
	r.RegisterDevice(Device{
		ID: "fpga-A", Node: "A", Vendor: "V", Platform: "P",
		Bitstream: "spector-sobel", Accelerator: "sobel",
	})
	r.RegisterDevice(Device{ID: "fpga-B", Node: "B", Vendor: "V", Platform: "P"})
	r.RegisterFunction(Function{Name: "sobel-1", Query: DeviceQuery{Accelerator: "sobel"}, Bitstream: "spector-sobel"})
	r.RegisterFunction(Function{Name: "mm-1", Query: DeviceQuery{Accelerator: "mm"}, Bitstream: "spector-mm"})
	if _, err := r.Allocate(AllocRequest{InstanceUID: "s1", InstanceName: "s1", Function: "sobel-1"}); err != nil {
		t.Fatal(err)
	}
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "m1", InstanceName: "m1", Function: "mm-1"})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Device.ID != "fpga-B" {
		t.Fatalf("MM landed on %s, want the idle fpga-B", alloc.Device.ID)
	}
	if len(alloc.Displaced) != 0 {
		t.Fatalf("displaced = %v, want none", alloc.Displaced)
	}
}

func TestValidateReconfiguration(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "sobel-1-x", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	dev := alloc.Device.ID
	// The allocated client may program its bitstream.
	if err := r.ValidateReconfiguration(dev, "sobel-1-x", "spector-sobel"); err != nil {
		t.Fatalf("legitimate reconfiguration rejected: %v", err)
	}
	// A second program of the same bitstream is fine.
	if err := r.ValidateReconfiguration(dev, "sobel-1-x", "spector-sobel"); err != nil {
		t.Fatal(err)
	}
	// A different bitstream from the same client is rejected (device now
	// expects sobel).
	if err := r.ValidateReconfiguration(dev, "sobel-1-x", "spector-mm"); err == nil {
		t.Fatal("conflicting bitstream must be rejected")
	}
	// Unknown clients and unallocated devices are rejected.
	if err := r.ValidateReconfiguration(dev, "stranger", "spector-sobel"); err == nil {
		t.Fatal("unknown client must be rejected")
	}
	other := "fpga-A"
	if other == dev {
		other = "fpga-B"
	}
	if err := r.ValidateReconfiguration(other, "sobel-1-x", "spector-sobel"); err == nil {
		t.Fatal("client not allocated to the device must be rejected")
	}
}

func TestControllerAllocatesOnInstanceCreation(t *testing.T) {
	cl := cluster.New()
	for _, n := range []string{"A", "B", "C"} {
		cl.AddNode(cluster.Node{Name: n})
	}
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	ctrl := NewController(r, cl)
	ctrl.Log = logx.NewLogf("registry", t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx)

	in, err := cl.CreateInstance(cluster.Instance{Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	var got cluster.Instance
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		got, _ = cl.Get(in.UID)
		if got.Phase == cluster.Running {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got.Phase != cluster.Running {
		t.Fatalf("instance never scheduled: %+v", got)
	}
	if got.Env[EnvManagerAddr] == "" || got.Env[EnvDeviceID] == "" {
		t.Fatalf("env not injected: %v", got.Env)
	}
	if len(got.Volumes) != 1 || got.Volumes[0] != ShmVolume {
		t.Fatalf("volumes = %v", got.Volumes)
	}
	dev, ok := r.InstancePlacement(in.UID)
	if !ok || dev.Node != got.Node {
		t.Fatalf("placement %v/%v inconsistent with node %s", dev, ok, got.Node)
	}

	// Deletion releases the allocation.
	cl.DeleteInstance(in.UID)
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := r.InstancePlacement(in.UID); !ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("allocation not released after delete")
}

func TestControllerMigratesOnReconfiguration(t *testing.T) {
	cl := cluster.New()
	for _, n := range []string{"A", "B"} {
		cl.AddNode(cluster.Node{Name: n})
	}
	r := mustNew(t, AllocPolicy{})
	r.RegisterDevice(Device{ID: "fpga-A", Node: "A", Vendor: "V", Platform: "P",
		Bitstream: "spector-sobel", Accelerator: "sobel"})
	r.RegisterDevice(Device{ID: "fpga-B", Node: "B", Vendor: "V", Platform: "P",
		Bitstream: "spector-sobel", Accelerator: "sobel"})
	r.RegisterFunction(Function{Name: "sobel-1", Query: DeviceQuery{Accelerator: "sobel"}, Bitstream: "spector-sobel"})
	r.RegisterFunction(Function{Name: "mm-1", Query: DeviceQuery{Accelerator: "mm"}, Bitstream: "spector-mm"})
	ctrl := NewController(r, cl)
	ctrl.Log = logx.NewLogf("registry", t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx)

	sob, _ := cl.CreateInstance(cluster.Instance{Function: "sobel-1"})
	waitRunning(t, cl, sob.UID)
	sobDev, _ := r.InstancePlacement(sob.UID)

	mm, _ := cl.CreateInstance(cluster.Instance{Function: "mm-1"})
	waitRunning(t, cl, mm.UID)
	mmDev, _ := r.InstancePlacement(mm.UID)

	if mmDev.ID == sobDev.ID {
		// The MM displaced the sobel instance: the original sobel
		// instance must be gone, replaced by a new one elsewhere.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if _, ok := cl.Get(sob.UID); !ok {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if _, ok := cl.Get(sob.UID); ok {
			t.Fatal("displaced instance was not migrated")
		}
		replacements := cl.Instances("sobel-1")
		if len(replacements) != 1 {
			t.Fatalf("sobel replacements = %d", len(replacements))
		}
		repl := replacements[0]
		waitRunning(t, cl, repl.UID)
		rd, ok := r.InstancePlacement(repl.UID)
		if !ok || rd.ID == mmDev.ID {
			t.Fatalf("replacement placed on %v (MM device %s)", rd, mmDev.ID)
		}
	}
	// In both outcomes: the two functions end on different devices.
	finalSobel := cl.Instances("sobel-1")[0]
	waitRunning(t, cl, finalSobel.UID)
	sd, _ := r.InstancePlacement(finalSobel.UID)
	md, _ := r.InstancePlacement(mm.UID)
	if sd.ID == md.ID {
		t.Fatalf("sobel and mm share device %s after migration", sd.ID)
	}
}

func waitRunning(t *testing.T, cl *cluster.Cluster, uid string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if in, ok := cl.Get(uid); ok && in.Phase == cluster.Running {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("instance %s never reached Running", uid)
}

func TestGathererComputesUtilization(t *testing.T) {
	db := metrics.NewTSDB(time.Minute)
	g := NewGatherer(db)
	base := time.Unix(9000, 0)
	g.Now = func() time.Time { return base.Add(20 * time.Second) }
	lbl := metrics.Labels{"device": "fpga-A", "node": "A"}
	// 8 modelled-busy seconds over 20 wall seconds at scale 1 -> 40%.
	db.Append(base, []metrics.Sample{
		{Name: "bf_device_busy_seconds_total", Labels: lbl, Value: 2},
		{Name: "bf_device_time_scale", Labels: lbl, Value: 1},
		{Name: "bf_connected_clients", Labels: lbl, Value: 3},
	})
	db.Append(base.Add(20*time.Second), []metrics.Sample{
		{Name: "bf_device_busy_seconds_total", Labels: lbl, Value: 10},
		{Name: "bf_device_time_scale", Labels: lbl, Value: 1},
		{Name: "bf_connected_clients", Labels: lbl, Value: 5},
		{Name: "bf_queue_depth", Labels: lbl, Value: 2},
	})
	m, ok := g.DeviceMetrics("fpga-A", "A")
	if !ok {
		t.Fatal("no metrics")
	}
	if m.Utilization < 0.39 || m.Utilization > 0.41 {
		t.Fatalf("utilization = %v, want 0.4", m.Utilization)
	}
	if m.Connected != 5 || m.QueueDepth != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if _, ok := g.DeviceMetrics("ghost", "X"); ok {
		t.Fatal("unknown device must report no data")
	}
}

func TestRegistryHTTPAPI(t *testing.T) {
	r := mustNew(t, AllocPolicy{Metrics: StaticMetrics{"fpga-A": {Utilization: 0.5}}})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// Register a device and a function over HTTP.
	devBody := `{"ID":"fpga-A","Node":"A","Vendor":"Intel","ManagerAddr":"x:1"}`
	resp, err := http.Post(srv.URL+"/devices", "application/json", strings.NewReader(devBody))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /devices: %v %v", resp.Status, err)
	}
	fnBody := `{"Name":"sobel-1","Query":{"Accelerator":"sobel"},"Bitstream":"spector-sobel"}`
	resp, err = http.Post(srv.URL+"/functions", "application/json", strings.NewReader(fnBody))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /functions: %v %v", resp.Status, err)
	}

	// Read them back.
	resp, err = http.Get(srv.URL + "/devices")
	if err != nil {
		t.Fatal(err)
	}
	var devs []apiDevice
	if err := json.NewDecoder(resp.Body).Decode(&devs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(devs) != 1 || devs[0].ID != "fpga-A" {
		t.Fatalf("devices = %+v", devs)
	}
	if devs[0].Metrics == nil || devs[0].Metrics.Utilization != 0.5 {
		t.Fatalf("metrics not attached: %+v", devs[0].Metrics)
	}
	resp, _ = http.Get(srv.URL + "/functions")
	var fns []Function
	json.NewDecoder(resp.Body).Decode(&fns)
	resp.Body.Close()
	if len(fns) != 1 || fns[0].Name != "sobel-1" {
		t.Fatalf("functions = %+v", fns)
	}
	// Bad payloads are rejected.
	resp, _ = http.Post(srv.URL+"/devices", "application/json", strings.NewReader("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad device POST = %v", resp.Status)
	}
	resp, _ = http.Get(srv.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v", resp.Status)
	}
}

func TestRemoveDevice(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	if err := r.RemoveDevice("fpga-A"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveDevice("fpga-A"); err == nil {
		t.Fatal("double remove must fail")
	}
	if len(r.Devices()) != 2 {
		t.Fatalf("devices = %d", len(r.Devices()))
	}
}

func TestUnhealthyDeviceSkippedByAllocation(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	if err := r.SetDeviceHealth("fpga-A", errors.New("scrape timeout")); err != nil {
		t.Fatal(err)
	}
	if r.DeviceHealthy("fpga-A") {
		t.Fatal("fpga-A must report unhealthy")
	}
	// fpga-A would win the ID tiebreak; while unhealthy, allocation must
	// land elsewhere.
	alloc, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Device.ID == "fpga-A" {
		t.Fatal("allocation chose the unhealthy device")
	}
	// Recovery restores eligibility.
	if err := r.SetDeviceHealth("fpga-A", nil); err != nil {
		t.Fatal(err)
	}
	if !r.DeviceHealthy("fpga-A") {
		t.Fatal("fpga-A must be healthy again")
	}
	if err := r.SetDeviceHealth("ghost", nil); err == nil {
		t.Fatal("unknown device must fail")
	}
}

func TestAllUnhealthyMeansDeviceNotFound(t *testing.T) {
	r := mustNew(t, AllocPolicy{})
	threeDevices(r)
	r.RegisterFunction(sobelFn())
	for _, id := range []string{"fpga-A", "fpga-B", "fpga-C"} {
		r.SetDeviceHealth(id, errors.New("down"))
	}
	if _, err := r.Allocate(AllocRequest{InstanceUID: "u1", InstanceName: "i1", Function: "sobel-1"}); !errors.Is(err, ErrDeviceNotFound) {
		t.Fatalf("err = %v, want ErrDeviceNotFound", err)
	}
}
