package flash

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlasherSerializesPerBoard pins the core invariant: one active flash
// per board, concurrent flashes across boards.
func TestFlasherSerializesPerBoard(t *testing.T) {
	var active sync.Map // board -> *atomic.Int32
	var maxConcurrent atomic.Int32
	s, err := New(Config{
		Flasher: func(job Job, binary []byte) (time.Duration, error) {
			v, _ := active.LoadOrStore(job.Board, new(atomic.Int32))
			ctr := v.(*atomic.Int32)
			if n := ctr.Add(1); n > 1 {
				t.Errorf("board %s: %d concurrent flashes", job.Board, n)
			}
			maxConcurrent.Add(1)
			time.Sleep(5 * time.Millisecond)
			ctr.Add(-1)
			return 2 * time.Second, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		for _, b := range []string{"board-a", "board-b"} {
			tickets = append(tickets, s.Submit(Request{
				Board: b, Bitstream: fmt.Sprintf("bits-%d", i), Requester: "t",
			}))
		}
	}
	for _, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range s.History("board-a") {
		if j.State != StateDone || j.FlashSeconds != 2 {
			t.Fatalf("unexpected terminal job %+v", j)
		}
	}
	if got := len(s.History("board-a")); got != 4 {
		t.Fatalf("board-a history %d jobs, want 4", got)
	}
}

// TestCoalescing pins the batching semantics: submissions for an open
// (board, bitstream) job attach as followers and share one flash.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	var flashes atomic.Int32
	s, err := New(Config{
		Flasher: func(job Job, binary []byte) (time.Duration, error) {
			flashes.Add(1)
			<-release
			return time.Second, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lead := s.Submit(Request{Board: "b", Bitstream: "bits", Requester: "lead"})
	// Wait for the worker to pick the job up so followers hit the active
	// (not queued) coalescing path too.
	for lead.Job().State != StateFlashing {
		time.Sleep(time.Millisecond)
	}
	f1 := s.Submit(Request{Board: "b", Bitstream: "bits", Requester: "f1"})
	f2 := s.Submit(Request{Board: "b", Bitstream: "bits", Requester: "f2"})
	close(release)
	for _, tk := range []*Ticket{lead, f1, f2} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n := flashes.Load(); n != 1 {
		t.Fatalf("%d flashes executed, want 1 (coalesced)", n)
	}
	j := lead.Job()
	if len(j.BatchedRequesters) != 2 {
		t.Fatalf("batched requesters %v, want [f1 f2]", j.BatchedRequesters)
	}
	if f1.Job().ID != j.ID {
		t.Fatal("follower ticket tracks a different job")
	}
}

// TestPriorityWithinBoard pins ordering: higher priority first, FIFO
// within a level.
func TestPriorityWithinBoard(t *testing.T) {
	release := make(chan struct{})
	var order []string
	var mu sync.Mutex
	first := true
	s, err := New(Config{
		Flasher: func(job Job, binary []byte) (time.Duration, error) {
			if first {
				first = false
				<-release // hold the head job so the rest queue up
			}
			mu.Lock()
			order = append(order, job.Bitstream)
			mu.Unlock()
			return 0, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	head := s.Submit(Request{Board: "b", Bitstream: "head"})
	for head.Job().State != StateFlashing {
		time.Sleep(time.Millisecond)
	}
	low1 := s.Submit(Request{Board: "b", Bitstream: "low-1", Priority: 0})
	hi := s.Submit(Request{Board: "b", Bitstream: "hi", Priority: 5})
	low2 := s.Submit(Request{Board: "b", Bitstream: "low-2", Priority: 0})
	close(release)
	for _, tk := range []*Ticket{head, low1, hi, low2} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"head", "hi", "low-1", "low-2"}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

// TestHistorySurvivesRestart is the acceptance criterion: the JSONL
// ledger reloads on a fresh service, and job IDs continue past it.
func TestHistorySurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flash.jsonl")
	s, err := New(Config{
		HistoryPath: path,
		Flasher: func(job Job, binary []byte) (time.Duration, error) {
			if job.Bitstream == "bad" {
				return 0, fmt.Errorf("boom")
			}
			return time.Second, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(Request{Board: "b1", Bitstream: "x", Requester: "alice"}).Wait(context.Background())
	s.Submit(Request{Board: "b1", Bitstream: "bad", Requester: "bob"}).Wait(context.Background())
	s.Submit(Request{Board: "b2", Bitstream: "y", Requester: "carol"}).Wait(context.Background())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{HistoryPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	all := s2.History("")
	if len(all) != 3 {
		t.Fatalf("reloaded %d history entries, want 3", len(all))
	}
	if all[0].Requester != "alice" || all[0].State != StateDone || all[0].FlashSeconds != 1 {
		t.Fatalf("first reloaded job %+v", all[0])
	}
	if all[1].State != StateFailed || all[1].Error == "" {
		t.Fatalf("failed job not preserved: %+v", all[1])
	}
	// IDs continue past the reloaded maximum.
	tk := s2.Submit(Request{Board: "b3", Bitstream: "z"})
	if id := tk.Job().ID; id != 4 {
		t.Fatalf("next job ID %d, want 4", id)
	}
}

// TestPlanningMode pins the registry-side flow: Submit opens a window,
// RecordDrain attributes migrations, Complete finalizes and promotes the
// next window.
func TestPlanningMode(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	w1 := s.Submit(Request{Board: "b", Bitstream: "first", Requester: "fn-1"})
	if st := w1.Job().State; st != StateFlashing {
		t.Fatalf("first window state %s, want flashing", st)
	}
	if bits, ok := s.Pending("b"); !ok || bits != "first" {
		t.Fatalf("Pending = %q,%v", bits, ok)
	}
	w2 := s.Submit(Request{Board: "b", Bitstream: "second", Requester: "fn-2"})
	if st := w2.Job().State; st != StateQueued {
		t.Fatalf("second window state %s, want queued", st)
	}
	s.RecordDrain("b", 3)

	if !s.Complete("b", "first", 2*time.Second, nil) {
		t.Fatal("Complete(first) found no job")
	}
	if err := w1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	j := w1.Job()
	if j.DrainedSessions != 3 || j.FlashSeconds != 2 {
		t.Fatalf("completed job %+v", j)
	}
	// The second window opened on completion of the first.
	if st := w2.Job().State; st != StateFlashing {
		t.Fatalf("second window state %s after first completed", st)
	}
	if s.Complete("b", "nonexistent", 0, nil) {
		t.Fatal("Complete matched a bitstream with no job")
	}
	if !s.Complete("b", "second", time.Second, nil) {
		t.Fatal("Complete(second) found no job")
	}
}

// TestHandler pins the /debug/flash JSON shape.
func TestHandler(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Submit(Request{Board: "b1", Bitstream: "x", Requester: "r"})
	s.Complete("b1", "x", time.Second, nil)
	s.Submit(Request{Board: "b1", Bitstream: "y", Requester: "r2"})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flash", nil))
	var p debugPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Jobs) != 1 || p.Jobs[0].Bitstream != "y" {
		t.Fatalf("live jobs %+v", p.Jobs)
	}
	if p.Queues["b1"] != 1 {
		t.Fatalf("queue depths %+v", p.Queues)
	}
	if len(p.History["b1"]) != 1 || p.History["b1"][0].Bitstream != "x" {
		t.Fatalf("history %+v", p.History)
	}
}
