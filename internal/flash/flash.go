// Package flash is the bitstream lifecycle service: a job queue that
// serializes board reprogramming, batches concurrent demand for the same
// bitstream into one flash window, and keeps a durable history of every
// flash so operators can answer "what was flashed where, when, and why".
//
// Reconfiguration is the most expensive control operation in the system —
// the modelled penalty is seconds while every other call is micro- to
// milliseconds — so it is treated as a first-class scheduled operation
// rather than an inline side effect of an allocation:
//
//   - one active flash per board: jobs on the same board run FIFO within
//     priority, never concurrently;
//   - coalescing: a request for a (board, bitstream) pair that already has
//     an open job attaches to it as a follower and shares its outcome —
//     this is the batching that amortizes the reconfiguration delay across
//     queued demand;
//   - durable history: every terminal job is appended to a JSONL file that
//     is reloaded on restart, so the flash ledger survives the registry;
//   - observability: /debug/flash serves job status, queue depths and
//     per-board history; bf_flash_* metrics export queue wait, flash
//     duration, batched requesters and drained sessions.
//
// The service runs in two modes. With a Flasher configured (the Device
// Manager embeds one around Board.Configure) jobs execute on a per-board
// worker as soon as they reach the head of the queue. Without a Flasher
// (the Accelerators Registry's planning mode) a job that reaches the head
// opens a *flash window* and stays active until Complete is called — the
// registry completes it when the owning client's Build call passes the
// reconfiguration gate. Drain statistics (sessions migrated off the board
// before reprogramming) are attributed to the open job via RecordDrain.
package flash

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"blastfunction/internal/logx"
	"blastfunction/internal/metrics"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: waiting behind another flash on the same board.
	StateQueued State = "queued"
	// StateFlashing: the job is active — executing under a Flasher, or an
	// open flash window awaiting the programming client in planning mode.
	StateFlashing State = "flashing"
	// StateDone: the flash completed.
	StateDone State = "done"
	// StateFailed: the flash errored; Error carries the cause.
	StateFailed State = "failed"
)

// Job is one flash of one board, the unit the history records.
type Job struct {
	ID          uint64 `json:"id"`
	Board       string `json:"board"`
	Bitstream   string `json:"bitstream"`
	Accelerator string `json:"accelerator,omitempty"`
	// Requester identifies who asked first (client or instance name);
	// BatchedRequesters lists followers that coalesced onto this job.
	Requester         string   `json:"requester"`
	BatchedRequesters []string `json:"batched_requesters,omitempty"`
	Priority          int      `json:"priority,omitempty"`
	State             State    `json:"state"`

	Queued   time.Time `json:"queued"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`

	// WaitSeconds is queue wait (Queued→Started); FlashSeconds the
	// modelled reprogramming time the board was blocked for.
	WaitSeconds  float64 `json:"wait_seconds,omitempty"`
	FlashSeconds float64 `json:"flash_seconds,omitempty"`
	// DrainedSessions counts instances migrated off the board before this
	// flash (the create-before-delete controller migration).
	DrainedSessions int    `json:"drained_sessions,omitempty"`
	Error           string `json:"error,omitempty"`
}

// Request submits one flash demand.
type Request struct {
	Board       string
	Bitstream   string
	Accelerator string
	Requester   string
	// Priority orders jobs within a board: higher first, FIFO within a
	// priority level.
	Priority int
	// Binary is the programming payload handed to the Flasher; planning
	// mode ignores it.
	Binary []byte
}

// Flasher executes one flash on the physical (simulated) board and
// returns the modelled duration the board was blocked. It is called from
// the board's worker goroutine, never concurrently for the same board.
type Flasher func(job Job, binary []byte) (time.Duration, error)

// Config parameterizes the service.
type Config struct {
	// Flasher executes jobs; nil selects planning mode (external
	// completion via Complete).
	Flasher Flasher
	// HistoryPath is the append-only JSONL flash ledger, reloaded on
	// restart; empty keeps history in memory only.
	HistoryPath string
	// HistoryLimit bounds the per-board history entries served from
	// /debug/flash (the file itself is never truncated). Zero selects 64.
	HistoryLimit int
	// Metrics, when set, receives the bf_flash_* series under Labels.
	Metrics *metrics.Registry
	Labels  metrics.Labels
	// Log receives flash lifecycle events; nil logs nothing.
	Log *logx.Logger
	// Now is the clock (test hook); nil selects time.Now.
	Now func() time.Time
}

// jobState is a live job plus its non-serialized runtime attachments.
type jobState struct {
	Job
	binary []byte
	err    error
	done   chan struct{}
}

// boardQueue serializes one board's flashes.
type boardQueue struct {
	active  *jobState
	queue   []*jobState
	working bool // a worker goroutine owns this board (Flasher mode)
}

// Service is the bitstream lifecycle service.
type Service struct {
	cfg Config
	now func() time.Time

	mu      sync.Mutex
	boards  map[string]*boardQueue
	history map[string][]Job
	nextID  uint64
	closed  bool
	file    *os.File
	wg      sync.WaitGroup

	metricsOn bool
	hWait     metrics.Histogram
	hDur      metrics.Histogram
	cDone     metrics.Counter
	cFailed   metrics.Counter
	cBatched  metrics.Counter
	cDrained  metrics.Counter
	gDepth    metrics.Gauge
}

// New creates the service, reloading any history at HistoryPath.
func New(cfg Config) (*Service, error) {
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = 64
	}
	s := &Service{
		cfg:     cfg,
		now:     cfg.Now,
		boards:  make(map[string]*boardQueue),
		history: make(map[string][]Job),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if reg := cfg.Metrics; reg != nil {
		s.metricsOn = true
		lbl := cfg.Labels
		s.hWait = reg.Histogram("bf_flash_queue_wait_seconds", "Queue wait of executed flash jobs.", lbl, nil)
		s.hDur = reg.Histogram("bf_flash_duration_seconds", "Modelled board reprogramming time per flash.", lbl, nil)
		s.cDone = reg.Counter("bf_flash_jobs_done_total", "Flash jobs that completed.", lbl)
		s.cFailed = reg.Counter("bf_flash_jobs_failed_total", "Flash jobs that errored.", lbl)
		s.cBatched = reg.Counter("bf_flash_batched_requesters_total", "Requesters that coalesced onto an already-open flash job.", lbl)
		s.cDrained = reg.Counter("bf_flash_drained_sessions_total", "Sessions migrated off a board ahead of a flash.", lbl)
		s.gDepth = reg.Gauge("bf_flash_queue_depth", "Flash jobs queued or active across all boards.", lbl)
	}
	if cfg.HistoryPath != "" {
		if err := s.loadHistory(cfg.HistoryPath); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(cfg.HistoryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("flash: open history: %w", err)
		}
		s.file = f
	}
	return s, nil
}

// loadHistory replays the JSONL ledger into the in-memory rings and
// continues job IDs past the highest recorded one. Unparseable lines are
// skipped: a torn final write must not brick the service.
func (s *Service) loadHistory(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("flash: read history: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(line, &j); err != nil || j.Board == "" {
			continue
		}
		s.appendHistoryLocked(j)
		if j.ID > s.nextID {
			s.nextID = j.ID
		}
	}
	return sc.Err()
}

// appendHistoryLocked records a terminal job in the board's bounded ring.
func (s *Service) appendHistoryLocked(j Job) {
	h := append(s.history[j.Board], j)
	if over := len(h) - s.cfg.HistoryLimit; over > 0 {
		h = h[over:]
	}
	s.history[j.Board] = h
}

// Ticket is a submitted job's handle. Coalesced submissions share one
// ticket outcome.
type Ticket struct {
	s   *Service
	job *jobState
}

// Wait blocks until the job reaches a terminal state (or ctx expires) and
// returns the flash error, if any.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.job.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.job.err
}

// Job snapshots the job's current state.
func (t *Ticket) Job() Job {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.job.Job
}

// Submit enqueues a flash. A request matching an open (non-terminal) job
// for the same board and bitstream coalesces onto it instead of queueing
// a second flash — the returned ticket then tracks the shared job.
func (s *Service) Submit(req Request) *Ticket {
	s.mu.Lock()
	if s.closed {
		js := &jobState{
			Job: Job{Board: req.Board, Bitstream: req.Bitstream, Requester: req.Requester,
				State: StateFailed, Error: "flash service closed", Queued: s.now()},
			err:  fmt.Errorf("flash: service closed"),
			done: make(chan struct{}),
		}
		close(js.done)
		s.mu.Unlock()
		return &Ticket{s: s, job: js}
	}
	bq := s.boards[req.Board]
	if bq == nil {
		bq = &boardQueue{}
		s.boards[req.Board] = bq
	}
	// Coalesce: attach to an open job for the same bitstream.
	if js := bq.openJob(req.Bitstream); js != nil {
		js.BatchedRequesters = append(js.BatchedRequesters, req.Requester)
		if s.metricsOn {
			s.cBatched.Inc()
		}
		s.mu.Unlock()
		s.cfg.Log.Debug("flash request coalesced", "board", req.Board,
			"bitstream", req.Bitstream, "requester", req.Requester, "job", js.ID)
		return &Ticket{s: s, job: js}
	}
	s.nextID++
	js := &jobState{
		Job: Job{
			ID: s.nextID, Board: req.Board, Bitstream: req.Bitstream,
			Accelerator: req.Accelerator, Requester: req.Requester,
			Priority: req.Priority, State: StateQueued, Queued: s.now(),
		},
		binary: req.Binary,
		done:   make(chan struct{}),
	}
	bq.queue = append(bq.queue, js)
	s.syncDepthLocked()
	s.promoteLocked(req.Board, bq)
	s.mu.Unlock()
	s.cfg.Log.Info("flash job queued", "board", req.Board,
		"bitstream", req.Bitstream, "requester", req.Requester, "job", js.ID)
	return &Ticket{s: s, job: js}
}

// openJob returns the board's active or queued job for bitstream, if any.
func (bq *boardQueue) openJob(bitstream string) *jobState {
	if bq.active != nil && bq.active.Bitstream == bitstream {
		return bq.active
	}
	for _, js := range bq.queue {
		if js.Bitstream == bitstream {
			return js
		}
	}
	return nil
}

// popLocked removes and returns the board's next job: highest priority
// first, FIFO (submission order) within a priority level.
func (bq *boardQueue) popLocked() *jobState {
	if len(bq.queue) == 0 {
		return nil
	}
	best := 0
	for i, js := range bq.queue {
		if js.Priority > bq.queue[best].Priority {
			best = i
		}
	}
	js := bq.queue[best]
	bq.queue = append(bq.queue[:best], bq.queue[best+1:]...)
	return js
}

// promoteLocked advances the board's queue: in planning mode it opens the
// next flash window; in Flasher mode it starts the board's worker if one
// is not already running.
func (s *Service) promoteLocked(board string, bq *boardQueue) {
	if s.cfg.Flasher == nil {
		if bq.active != nil {
			return
		}
		js := bq.popLocked()
		if js == nil {
			return
		}
		bq.active = js
		js.State = StateFlashing
		js.Started = s.now()
		js.WaitSeconds = js.Started.Sub(js.Queued).Seconds()
		if s.metricsOn {
			s.hWait.Observe(js.WaitSeconds)
		}
		return
	}
	if bq.working {
		return
	}
	bq.working = true
	s.wg.Add(1)
	go s.boardWorker(board, bq)
}

// boardWorker drains one board's queue, one flash at a time. It exits when
// the queue empties; the next Submit restarts it.
func (s *Service) boardWorker(board string, bq *boardQueue) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		js := bq.popLocked()
		if js == nil {
			bq.working = false
			s.mu.Unlock()
			return
		}
		bq.active = js
		js.State = StateFlashing
		js.Started = s.now()
		js.WaitSeconds = js.Started.Sub(js.Queued).Seconds()
		if s.metricsOn {
			s.hWait.Observe(js.WaitSeconds)
		}
		job, binary := js.Job, js.binary
		s.mu.Unlock()

		d, err := s.cfg.Flasher(job, binary)

		s.mu.Lock()
		s.finishLocked(js, d, err)
		bq.active = nil
		s.mu.Unlock()
	}
}

// finishLocked moves a job to its terminal state, records history and
// metrics, and wakes every waiter.
func (s *Service) finishLocked(js *jobState, d time.Duration, err error) {
	js.Finished = s.now()
	js.FlashSeconds = d.Seconds()
	js.binary = nil
	if err != nil {
		js.State = StateFailed
		js.Error = err.Error()
		js.err = err
		if s.metricsOn {
			s.cFailed.Inc()
		}
		s.cfg.Log.Warn("flash job failed", "board", js.Board, "bitstream", js.Bitstream,
			"job", js.ID, "err", err)
	} else {
		js.State = StateDone
		if s.metricsOn {
			s.cDone.Inc()
		}
		if s.metricsOn {
			s.hDur.Observe(js.FlashSeconds)
		}
		s.cfg.Log.Info("flash job done", "board", js.Board, "bitstream", js.Bitstream,
			"job", js.ID, "batched", len(js.BatchedRequesters),
			"wait_s", js.WaitSeconds, "flash_s", js.FlashSeconds)
	}
	s.appendHistoryLocked(js.Job)
	s.persistLocked(js.Job)
	s.syncDepthLocked()
	close(js.done)
}

// persistLocked appends a terminal job to the JSONL ledger.
func (s *Service) persistLocked(j Job) {
	if s.file == nil {
		return
	}
	line, err := json.Marshal(j)
	if err != nil {
		return
	}
	if _, err := s.file.Write(append(line, '\n')); err != nil {
		s.cfg.Log.Warn("flash history write failed", "path", s.cfg.HistoryPath, "err", err)
	}
}

func (s *Service) syncDepthLocked() {
	if !s.metricsOn {
		return
	}
	depth := 0
	for _, bq := range s.boards {
		depth += len(bq.queue)
		if bq.active != nil {
			depth++
		}
	}
	s.gDepth.Set(float64(depth))
}

// Complete finalizes a board's open flash window in planning mode: the
// active job whose bitstream matches is marked done (or failed), and the
// next queued job, if any, opens the following window. It reports whether
// a job was completed. flashDur is the observed reprogramming time, zero
// when unknown.
func (s *Service) Complete(board, bitstream string, flashDur time.Duration, err error) bool {
	s.mu.Lock()
	bq := s.boards[board]
	if bq == nil {
		s.mu.Unlock()
		return false
	}
	js := bq.active
	if js == nil || js.Bitstream != bitstream {
		// A queued job may match when windows complete out of order (the
		// client raced the active window's owner); finish it in place.
		for i, q := range bq.queue {
			if q.Bitstream == bitstream {
				bq.queue = append(bq.queue[:i], bq.queue[i+1:]...)
				q.State = StateFlashing
				q.Started = s.now()
				q.WaitSeconds = q.Started.Sub(q.Queued).Seconds()
				if s.metricsOn {
					s.hWait.Observe(q.WaitSeconds)
				}
				s.finishLocked(q, flashDur, err)
				s.promoteLocked(board, bq)
				s.mu.Unlock()
				return true
			}
		}
		s.mu.Unlock()
		return false
	}
	s.finishLocked(js, flashDur, err)
	bq.active = nil
	s.promoteLocked(board, bq)
	s.mu.Unlock()
	return true
}

// RecordDrain attributes n drained (migrated) sessions to the board's
// open flash job.
func (s *Service) RecordDrain(board string, n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	if bq := s.boards[board]; bq != nil && bq.active != nil {
		bq.active.DrainedSessions += n
	}
	s.mu.Unlock()
	if s.metricsOn {
		s.cDrained.Add(float64(n))
	}
}

// Pending returns the bitstream of the board's open flash window (active
// or queued), if any. The allocator uses it to treat a board already
// scheduled for a bitstream as flashed for that bitstream — joining the
// window costs no extra reprogramming.
func (s *Service) Pending(board string) (bitstream string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bq := s.boards[board]
	if bq == nil {
		return "", false
	}
	if bq.active != nil {
		return bq.active.Bitstream, true
	}
	if len(bq.queue) > 0 {
		return bq.queue[len(bq.queue)-1].Bitstream, true
	}
	return "", false
}

// Jobs snapshots every live (queued or active) job, ordered by ID.
func (s *Service) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Job
	for _, bq := range s.boards {
		if bq.active != nil {
			out = append(out, bq.active.Job)
		}
		for _, js := range bq.queue {
			out = append(out, js.Job)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History returns the board's retained terminal jobs, oldest first; an
// empty board name merges every board's history ordered by ID.
func (s *Service) History(board string) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if board != "" {
		return append([]Job(nil), s.history[board]...)
	}
	var out []Job
	for _, h := range s.history {
		out = append(out, h...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// QueueDepths reports per-board live job counts (active included).
func (s *Service) QueueDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for b, bq := range s.boards {
		n := len(bq.queue)
		if bq.active != nil {
			n++
		}
		if n > 0 {
			out[b] = n
		}
	}
	return out
}

// Close flushes the ledger and stops accepting jobs. Flasher-mode workers
// finish their in-flight job first; queued jobs past that fail on their
// next promotion... they are failed immediately here so waiters unblock.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Fail every queued job so no Wait blocks forever. Active jobs are
	// left to finish: a flash in progress cannot be interrupted.
	for _, bq := range s.boards {
		for _, js := range bq.queue {
			s.finishLocked(js, 0, fmt.Errorf("flash: service closed"))
		}
		bq.queue = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file != nil {
		err := s.file.Close()
		s.file = nil
		return err
	}
	return nil
}

// debugPayload is the /debug/flash response shape.
type debugPayload struct {
	Jobs    []Job            `json:"jobs"`
	Queues  map[string]int   `json:"queue_depths"`
	History map[string][]Job `json:"history"`
}

// Handler serves the flash state as JSON at /debug/flash. Query
// parameters: board filters to one board, limit bounds history entries
// per board.
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		board := r.URL.Query().Get("board")
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			limit, _ = strconv.Atoi(v)
		}
		p := debugPayload{Queues: s.QueueDepths(), History: make(map[string][]Job)}
		for _, j := range s.Jobs() {
			if board == "" || j.Board == board {
				p.Jobs = append(p.Jobs, j)
			}
		}
		s.mu.Lock()
		for b, h := range s.history {
			if board != "" && b != board {
				continue
			}
			if limit > 0 && len(h) > limit {
				h = h[len(h)-limit:]
			}
			p.History[b] = append([]Job(nil), h...)
		}
		s.mu.Unlock()
		if board != "" {
			for b := range p.Queues {
				if b != board {
					delete(p.Queues, b)
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p)
	})
}
