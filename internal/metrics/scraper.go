package metrics

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// Scraper polls metric endpoints and feeds a TSDB, standing in for the
// Prometheus server of the paper's deployment.
type Scraper struct {
	db       *TSDB
	interval time.Duration
	client   *http.Client
	// Now is injectable for deterministic tests.
	Now func() time.Time
	// Timeout bounds each individual target's scrape. Default 5s.
	Timeout time.Duration
	// OnHealth, when set, is called whenever a target transitions
	// between healthy and failing (including a first scrape that fails).
	// Callbacks run from scrape goroutines; keep them cheap.
	OnHealth func(target string, up bool, err error)
	// NoJitter disables the random start-phase delay in Run. Tests that
	// drive Run against a wall clock set it for determinism.
	NoJitter bool

	mu      sync.Mutex
	targets map[string]string    // target name -> URL
	locals  map[string]*Registry // in-process targets, read without HTTP
	errs    map[string]error     // last scrape error per target
}

// NewScraper creates a scraper feeding db every interval.
func NewScraper(db *TSDB, interval time.Duration) *Scraper {
	if interval <= 0 {
		interval = time.Second
	}
	return &Scraper{
		db:       db,
		interval: interval,
		client:   &http.Client{},
		Now:      time.Now,
		Timeout:  5 * time.Second,
		targets:  make(map[string]string),
		locals:   make(map[string]*Registry),
		errs:     make(map[string]error),
	}
}

// AddTarget registers a named scrape endpoint (e.g. a Device Manager's
// /metrics URL). Re-adding a name replaces its URL.
func (s *Scraper) AddTarget(name, url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.targets[name] = url
}

// AddLocalTarget registers an in-process registry as a scrape target.
// It is rendered and parsed through the same text path as HTTP targets
// — exemplars and all — so a binary's own series (its runtime collector,
// the gateway's per-function counters) land in the TSDB without the
// process scraping itself over loopback.
func (s *Scraper) AddLocalTarget(name string, reg *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locals[name] = reg
}

// RemoveTarget deregisters a target.
func (s *Scraper) RemoveTarget(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.targets, name)
	delete(s.locals, name)
	delete(s.errs, name)
}

// Targets lists registered target names.
func (s *Scraper) Targets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.targets))
	for n := range s.targets {
		out = append(out, n)
	}
	return out
}

// LastError returns the most recent scrape error for a target (nil when
// healthy or unknown).
func (s *Scraper) LastError(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errs[name]
}

// ScrapeOnce polls every target once at the current time. Targets are
// scraped concurrently, each under its own deadline: a hung Device Manager
// costs one timeout, not a serial stall that starves every target behind
// it of fresh samples (and would delay the Registry's health verdicts on
// all of them). Tests and the DES experiments call it directly for
// determinism; all samples share one timestamp.
func (s *Scraper) ScrapeOnce() {
	type job struct {
		name  string
		fetch func() ([]Sample, error)
	}
	s.mu.Lock()
	jobs := make([]job, 0, len(s.targets)+len(s.locals))
	for n, u := range s.targets {
		url := u
		jobs = append(jobs, job{n, func() ([]Sample, error) { return s.fetch(url) }})
	}
	for n, r := range s.locals {
		reg := r
		jobs = append(jobs, job{n, func() ([]Sample, error) { return Parse(reg.Render()) }})
	}
	s.mu.Unlock()
	now := s.Now()
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(name string, fetch func() ([]Sample, error)) {
			defer wg.Done()
			start := time.Now()
			samples, err := fetch()
			elapsed := time.Since(start)
			s.mu.Lock()
			prev, known := s.errs[name]
			s.errs[name] = err
			s.mu.Unlock()
			if s.OnHealth != nil {
				// A never-scraped target is presumed healthy, so the
				// first failure reports a transition but the first
				// success stays quiet.
				healthyBefore := !known || prev == nil
				healthyNow := err == nil
				if healthyBefore != healthyNow {
					s.OnHealth(name, healthyNow, err)
				}
			}
			// Scrape health is itself a pair of series, so alert rules
			// can fire on a dead target without reaching into the
			// scraper's private error map.
			up := 1.0
			if err != nil {
				up = 0
			}
			health := []Sample{
				{Name: "bf_scrape_up", Labels: Labels{"target": name}, Value: up},
				{Name: "bf_scrape_duration_seconds", Labels: Labels{"target": name}, Value: elapsed.Seconds()},
			}
			if err == nil {
				samples = append(samples, health...)
			} else {
				samples = health
			}
			s.db.Append(now, samples) // TSDB appends are lock-protected
		}(j.name, j.fetch)
	}
	wg.Wait()
}

func (s *Scraper) fetch(url string) ([]Sample, error) {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: scrape %s: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	return Parse(string(body))
}

// startJitter picks a random phase in [0, interval): many managers
// started together (one systemd burst, one compose up) would otherwise
// tick in lockstep and hit the registry as a synchronized burst every
// interval forever.
func (s *Scraper) startJitter() time.Duration {
	if s.interval <= 0 {
		return 0
	}
	return rand.N(s.interval)
}

// Run scrapes on the configured interval until ctx is cancelled. The
// first tick waits an extra random fraction of the interval (see
// startJitter) unless NoJitter is set.
func (s *Scraper) Run(ctx context.Context) {
	if !s.NoJitter {
		select {
		case <-ctx.Done():
			return
		case <-time.After(s.startJitter()):
		}
	}
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.ScrapeOnce()
		}
	}
}
