// Package metrics is the reproduction's Prometheus substitute.
//
// The paper's Accelerators Registry consumes Device Manager metrics (FPGA
// time utilization above all) through a Prometheus service. Offline
// modules rule out the real client libraries, so this package provides the
// pieces BlastFunction needs: counters/gauges with labels, the text
// exposition format over HTTP, a polling scraper, and a small in-memory
// TSDB with the windowed rate/average queries the Metrics Gatherer runs.
package metrics

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is an immutable label set. Keep them small: every distinct
// combination creates one time series.
type Labels map[string]string

// key renders labels canonically (sorted) for map keys and exposition.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// String renders labels in exposition syntax: {a="x",b="y"}.
func (l Labels) String() string {
	if len(l) == 0 {
		return ""
	}
	return "{" + l.key() + "}"
}

// series is one (name, labels) time series' current value.
type series struct {
	labels Labels
	mu     sync.Mutex
	value  float64
}

// metric is a named family of series.
type metric struct {
	name    string
	help    string
	typ     string // "counter" or "gauge"
	mu      sync.Mutex
	byLabel map[string]*series
}

func (m *metric) get(l Labels) *series {
	k := l.key()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byLabel[k]
	if !ok {
		copied := make(Labels, len(l))
		for lk, lv := range l {
			copied[lk] = lv
		}
		s = &series{labels: copied}
		m.byLabel[k] = s
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Add increases the counter; negative deltas are ignored to preserve
// monotonicity.
func (c Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.value += v
	c.s.mu.Unlock()
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add adjusts the gauge by v (may be negative).
func (g Gauge) Add(v float64) {
	g.s.mu.Lock()
	g.s.value += v
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// Registry holds metric families and renders the exposition format.
type Registry struct {
	mu        sync.Mutex
	metrics   map[string]*metric
	order     []string
	hists     map[string]*histFamily
	histOrder []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) family(name, help, typ string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok {
		m = &metric{name: name, help: help, typ: typ, byLabel: make(map[string]*series)}
		r.metrics[name] = m
		r.order = append(r.order, name)
	}
	return m
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) Counter {
	return Counter{r.family(name, help, "counter").get(labels)}
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) Gauge {
	return Gauge{r.family(name, help, "gauge").get(labels)}
}

// Render writes the registry in the Prometheus text exposition format.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*metric, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.metrics[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		fam.mu.Lock()
		keys := make([]string, 0, len(fam.byLabel))
		for k := range fam.byLabel {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := fam.byLabel[k]
			s.mu.Lock()
			v := s.value
			s.mu.Unlock()
			fmt.Fprintf(&b, "%s%s %s\n", fam.name, s.labels.String(),
				strconv.FormatFloat(v, 'g', -1, 64))
		}
		fam.mu.Unlock()
	}
	r.renderHistograms(&b)
	return b.String()
}

// Handler serves the exposition format, like promhttp.Handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, r.Render())
	})
}
