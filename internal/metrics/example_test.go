package metrics_test

import (
	"fmt"
	"strings"

	"blastfunction/internal/metrics"
)

// ExampleRegistry exports a utilization counter in the Prometheus text
// format, as every Device Manager does.
func ExampleRegistry() {
	reg := metrics.NewRegistry()
	busy := reg.Counter("bf_device_busy_seconds_total",
		"Seconds the device spent computing OpenCL calls.",
		metrics.Labels{"device": "fpga-B", "node": "B"})
	busy.Add(12.5)
	for _, line := range strings.Split(strings.TrimSpace(reg.Render()), "\n") {
		fmt.Println(line)
	}
	// Output:
	// # HELP bf_device_busy_seconds_total Seconds the device spent computing OpenCL calls.
	// # TYPE bf_device_busy_seconds_total counter
	// bf_device_busy_seconds_total{device="fpga-B",node="B"} 12.5
}
