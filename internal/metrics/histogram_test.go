package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_empty", "", nil, nil)
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("Quantile on empty histogram = %v, want NaN", v)
	}
	// Out-of-range quantiles are NaN even with observations.
	h.Observe(0.01)
	if v := h.Quantile(-0.1); !math.IsNaN(v) {
		t.Fatalf("Quantile(-0.1) = %v, want NaN", v)
	}
	if v := h.Quantile(1.5); !math.IsNaN(v) {
		t.Fatalf("Quantile(1.5) = %v, want NaN", v)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_single", "", nil, []float64{1, 2, 4})
	h.Observe(1.5) // lands in the (1,2] bucket
	for _, q := range []float64{0, 0.5, 1} {
		v := h.Quantile(q)
		if v < 1 || v > 2 {
			t.Fatalf("Quantile(%v) = %v, want within the (1,2] bucket", q, v)
		}
	}
}

func TestQuantileAllInOneBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_one_bucket", "", nil, []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(3) // all observations in (2,4]
	}
	if v := h.Quantile(0.5); v < 2 || v > 4 {
		t.Fatalf("median = %v, want within the (2,4] bucket", v)
	}
	// Interpolation is linear from the bucket's lower bound.
	if lo, hi := h.Quantile(0.1), h.Quantile(0.9); !(lo < hi) {
		t.Fatalf("quantiles not monotonic within the bucket: q10=%v q90=%v", lo, hi)
	}
	// Above the last finite bucket: the estimate clamps to that bound.
	h2 := r.Histogram("h_overflow", "", nil, []float64{1, 2, 4})
	h2.Observe(100)
	if v := h2.Quantile(0.99); v != 4 {
		t.Fatalf("overflow quantile = %v, want 4 (last finite bound)", v)
	}
}

// TestConcurrentObserveAndRender scrapes the registry while writers
// observe, the Metrics Gatherer's steady state; run under -race.
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_race", "", Labels{"device": "fpga0"}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(seed+1+i%10) / 1000)
				h.Quantile(0.5)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		out := r.Render()
		if !strings.Contains(out, "h_race_bucket") {
			t.Fatalf("render missing histogram series:\n%s", out)
		}
	}
	wg.Wait()
	if h.Count() == 0 || h.Sum() <= 0 {
		t.Fatalf("no observations recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
}
