package metrics

import (
	"sort"
	"sync"
	"time"
)

// Point is one timestamped observation.
type Point struct {
	T time.Time
	V float64
}

// TSDB is a small in-memory time-series store with bounded retention —
// the slice of Prometheus the Metrics Gatherer needs.
type TSDB struct {
	mu        sync.Mutex
	retention time.Duration
	series    map[string][]Point  // keyed by Sample.SeriesKey()
	meta      map[string]Sample   // name+labels of each key
	exemplars map[string]Exemplar // latest exemplar per series key
	gen       uint64              // bumped once per Append (scrape generation)
}

// NewTSDB creates a store keeping points for the given retention window.
func NewTSDB(retention time.Duration) *TSDB {
	if retention <= 0 {
		retention = 15 * time.Minute
	}
	return &TSDB{
		retention: retention,
		series:    make(map[string][]Point),
		meta:      make(map[string]Sample),
		exemplars: make(map[string]Exemplar),
	}
}

// Append stores samples observed at time t. Each call advances the
// store's generation (see Generation), even when samples is empty.
func (db *TSDB) Append(t time.Time, samples []Sample) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.gen++
	cutoff := t.Add(-db.retention)
	for _, s := range samples {
		k := s.SeriesKey()
		pts := append(db.series[k], Point{T: t, V: s.Value})
		// Drop points past retention (they are sorted by time).
		i := 0
		for i < len(pts) && pts[i].T.Before(cutoff) {
			i++
		}
		db.series[k] = pts[i:]
		if _, ok := db.meta[k]; !ok {
			db.meta[k] = Sample{Name: s.Name, Labels: s.Labels}
		}
		if s.Exemplar != nil && s.Exemplar.TraceID != "" {
			db.exemplars[k] = *s.Exemplar
		}
	}
}

// Exemplar returns the latest exemplar stored for the series, if any.
func (db *TSDB) Exemplar(name string, labels Labels) (Exemplar, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.exemplars[Sample{Name: name, Labels: labels}.SeriesKey()]
	return e, ok
}

// Generation reports how many Append batches the store has absorbed.
// Between two identical generations no series changed, so derived values
// (rates, windows) computed from the store are still valid — the Metrics
// Gatherer keys its per-scrape DeviceMetrics cache on this.
func (db *TSDB) Generation() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.gen
}

// Latest returns the most recent value of the series, if any.
func (db *TSDB) Latest(name string, labels Labels) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pts := db.series[Sample{Name: name, Labels: labels}.SeriesKey()]
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].V, true
}

// window returns the points of a series within [now-window, now].
func (db *TSDB) window(key string, now time.Time, window time.Duration) []Point {
	pts := db.series[key]
	lo := sort.Search(len(pts), func(i int) bool {
		return !pts[i].T.Before(now.Add(-window))
	})
	return pts[lo:]
}

// Rate computes the per-second increase of a counter series over the
// window ending at now — the equivalent of PromQL's rate(). It needs at
// least two points in the window.
func (db *TSDB) Rate(name string, labels Labels, now time.Time, window time.Duration) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pts := db.window(Sample{Name: name, Labels: labels}.SeriesKey(), now, window)
	if len(pts) < 2 {
		return 0, false
	}
	first, last := pts[0], pts[len(pts)-1]
	dt := last.T.Sub(first.T).Seconds()
	if dt <= 0 {
		return 0, false
	}
	dv := last.V - first.V
	if dv < 0 {
		// Counter reset (manager restart): fall back to the last value
		// accumulated since the reset.
		dv = last.V
	}
	return dv / dt, true
}

// Increase computes the total growth of a counter series over the
// window ending at now — PromQL's increase() without extrapolation. Like
// Rate it needs at least two points in the window and falls back to the
// last value on a counter reset.
func (db *TSDB) Increase(name string, labels Labels, now time.Time, window time.Duration) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pts := db.window(Sample{Name: name, Labels: labels}.SeriesKey(), now, window)
	if len(pts) < 2 {
		return 0, false
	}
	dv := pts[len(pts)-1].V - pts[0].V
	if dv < 0 {
		dv = pts[len(pts)-1].V
	}
	return dv, true
}

// Delta computes last-minus-first of a gauge series over the window
// ending at now. Unlike Increase it has no counter-reset handling and
// may be negative — the right shape for goroutine counts and heap
// sizes, where a drop is a recovery, not a reset.
func (db *TSDB) Delta(name string, labels Labels, now time.Time, window time.Duration) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pts := db.window(Sample{Name: name, Labels: labels}.SeriesKey(), now, window)
	if len(pts) < 2 {
		return 0, false
	}
	return pts[len(pts)-1].V - pts[0].V, true
}

// Avg computes the mean of a gauge series over the window ending at now.
func (db *TSDB) Avg(name string, labels Labels, now time.Time, window time.Duration) (float64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	pts := db.window(Sample{Name: name, Labels: labels}.SeriesKey(), now, window)
	if len(pts) == 0 {
		return 0, false
	}
	var sum float64
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts)), true
}

// Series lists the label sets currently stored for a metric name.
func (db *TSDB) Series(name string) []Labels {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Labels
	for _, m := range db.meta {
		if m.Name == name {
			out = append(out, m.Labels)
		}
	}
	return out
}
