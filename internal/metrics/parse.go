package metrics

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// SeriesKey identifies a time series across scrapes.
func (s Sample) SeriesKey() string { return s.Name + s.Labels.String() }

// Parse reads the text exposition format, skipping comments and blanks.
// It accepts exactly the subset Render produces (names, optional label
// sets, float values) and rejects malformed lines rather than guessing.
func Parse(text string) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

func parseLine(line string) (Sample, error) {
	var s Sample
	// Split metric part from value at the last space.
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	}
	metricPart := strings.TrimSpace(line[:sp])
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	brace := strings.IndexByte(metricPart, '{')
	if brace < 0 {
		s.Name = metricPart
		return s, validName(s.Name)
	}
	if !strings.HasSuffix(metricPart, "}") {
		return s, fmt.Errorf("unterminated label set in %q", line)
	}
	s.Name = metricPart[:brace]
	if err := validName(s.Name); err != nil {
		return s, err
	}
	labelText := metricPart[brace+1 : len(metricPart)-1]
	if labelText == "" {
		return s, nil
	}
	s.Labels = make(Labels)
	for len(labelText) > 0 {
		eq := strings.IndexByte(labelText, '=')
		if eq < 0 || len(labelText) < eq+2 || labelText[eq+1] != '"' {
			return s, fmt.Errorf("malformed label in %q", line)
		}
		key := labelText[:eq]
		rest := labelText[eq+2:]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			return s, fmt.Errorf("unterminated label value in %q", line)
		}
		s.Labels[key] = rest[:end]
		labelText = rest[end+1:]
		labelText = strings.TrimPrefix(labelText, ",")
	}
	return s, nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}
