package metrics

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name     string
	Labels   Labels
	Value    float64
	Exemplar *Exemplar // OpenMetrics exemplar clause, if the line had one
}

// SeriesKey identifies a time series across scrapes.
func (s Sample) SeriesKey() string { return s.Name + s.Labels.String() }

// Parse reads the text exposition format, skipping comments and blanks.
// It accepts exactly the subset Render produces (names, optional label
// sets, float values) and rejects malformed lines rather than guessing.
func Parse(text string) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

func parseLine(line string) (Sample, error) {
	var s Sample
	// An OpenMetrics exemplar rides after " # " — split it off first so
	// the value split below sees only the plain sample.
	if hash := strings.Index(line, " # "); hash >= 0 {
		ex, err := parseExemplar(strings.TrimSpace(line[hash+3:]))
		if err != nil {
			return s, fmt.Errorf("bad exemplar in %q: %w", line, err)
		}
		s.Exemplar = ex
		line = strings.TrimSpace(line[:hash])
	}
	// Split metric part from value at the last space.
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	}
	metricPart := strings.TrimSpace(line[:sp])
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	brace := strings.IndexByte(metricPart, '{')
	if brace < 0 {
		s.Name = metricPart
		return s, validName(s.Name)
	}
	if !strings.HasSuffix(metricPart, "}") {
		return s, fmt.Errorf("unterminated label set in %q", line)
	}
	s.Name = metricPart[:brace]
	if err := validName(s.Name); err != nil {
		return s, err
	}
	labels, err := parseLabels(metricPart[brace+1 : len(metricPart)-1])
	if err != nil {
		return s, fmt.Errorf("%w in %q", err, line)
	}
	s.Labels = labels
	return s, nil
}

// parseLabels parses the inside of a {...} label set (no braces).
func parseLabels(labelText string) (Labels, error) {
	if labelText == "" {
		return nil, nil
	}
	labels := make(Labels)
	for len(labelText) > 0 {
		eq := strings.IndexByte(labelText, '=')
		if eq < 0 || len(labelText) < eq+2 || labelText[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label")
		}
		key := labelText[:eq]
		rest := labelText[eq+2:]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value")
		}
		labels[key] = rest[:end]
		labelText = rest[end+1:]
		labelText = strings.TrimPrefix(labelText, ",")
	}
	return labels, nil
}

// parseExemplar parses the clause after " # ":
//
//	{trace_id="4ba1..."} 0.042 1719321600.123
//
// The timestamp is optional, matching OpenMetrics.
func parseExemplar(text string) (*Exemplar, error) {
	if !strings.HasPrefix(text, "{") {
		return nil, fmt.Errorf("missing label set")
	}
	close := strings.IndexByte(text, '}')
	if close < 0 {
		return nil, fmt.Errorf("unterminated label set")
	}
	labels, err := parseLabels(text[1:close])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(text[close+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("want value [timestamp] after labels")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad value: %w", err)
	}
	e := &Exemplar{TraceID: labels["trace_id"], Value: v}
	if len(fields) == 2 {
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad timestamp: %w", err)
		}
		// Rendered at millisecond resolution; rounding here makes the
		// render/parse loop lossless.
		e.Time = time.UnixMilli(int64(math.Round(ts * 1000)))
	}
	return e, nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}
