package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultLatencyBuckets spans microseconds to seconds, suitable for the
// task-latency distributions the Device Manager exports.
var DefaultLatencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5,
}

// Exemplar pins a trace to a histogram bucket: the trace ID of one
// sampled observation that landed in that bucket, with its value and
// arrival time. Buckets hold at most one exemplar (latest wins), which
// bounds memory regardless of observation churn.
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

// histSeries is one histogram time series.
type histSeries struct {
	labels  Labels
	buckets []float64 // sorted upper bounds, +Inf implied

	mu        sync.Mutex
	counts    []uint64
	sum       float64
	count     uint64
	exemplars []Exemplar // nil until the first exemplar; len(buckets)+1 (+Inf last)
}

// exemplarNow is stubbed in tests that need deterministic exemplar
// timestamps.
var exemplarNow = time.Now

// Histogram observes a distribution into cumulative buckets, exposed in
// the standard <name>_bucket{le=...}/_sum/_count form.
type Histogram struct{ s *histSeries }

// Observe records one value.
func (h Histogram) Observe(v float64) {
	h.s.observe(v, "")
}

// ObserveExemplar records one value and attaches traceID as the
// exemplar of the value's native bucket, replacing any previous one.
// An empty traceID degrades to a plain Observe, so callers can pass
// their trace unconditionally and unsampled requests cost nothing.
// Both wrappers are a single call to the shared observation body —
// each is small enough to inline, so the empty-trace path compiles
// down to exactly the call a plain Observe makes (a two-call wrapper
// exceeds the inliner's budget and was measurably slower).
func (h Histogram) ObserveExemplar(v float64, traceID string) {
	h.s.observe(v, traceID)
}

// observe is the shared observation body: the cumulative bucket walk,
// plus — only when traceID is non-empty — exemplar attachment to the
// value's native bucket. The unsampled path pays one predicted branch
// over the exemplar-free histogram, nothing more.
func (s *histSeries) observe(v float64, traceID string) {
	var now time.Time
	if traceID != "" {
		now = exemplarNow()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	native := len(s.buckets) // +Inf unless a finite bucket holds v
	for i, ub := range s.buckets {
		if v <= ub {
			s.counts[i]++
			if i < native {
				native = i
			}
		}
	}
	s.sum += v
	s.count++
	if traceID == "" {
		return
	}
	if s.exemplars == nil {
		s.exemplars = make([]Exemplar, len(s.buckets)+1)
	}
	s.exemplars[native] = Exemplar{TraceID: traceID, Value: v, Time: now}
}

// Exemplars snapshots the series' bucket exemplars keyed by the le
// bound as rendered ("0.005", "+Inf"). Buckets without an exemplar are
// absent.
func (h Histogram) Exemplars() map[string]Exemplar {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	out := make(map[string]Exemplar)
	for i, e := range h.s.exemplars {
		if e.TraceID == "" {
			continue
		}
		le := "+Inf"
		if i < len(h.s.buckets) {
			le = strconv.FormatFloat(h.s.buckets[i], 'g', -1, 64)
		}
		out[le] = e
	}
	return out
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Sum returns the sum of observations.
func (h Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// Quantile estimates the q-quantile (0..1) from the cumulative buckets by
// linear interpolation inside the containing bucket, like Prometheus'
// histogram_quantile.
func (h Histogram) Quantile(q float64) float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	if h.s.count == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(h.s.count)
	lower := 0.0
	var prev uint64
	for i, ub := range h.s.buckets {
		c := h.s.counts[i]
		if float64(c) >= rank {
			inBucket := c - prev
			if inBucket == 0 {
				return ub
			}
			frac := (rank - float64(prev)) / float64(inBucket)
			return lower + (ub-lower)*frac
		}
		lower = ub
		prev = c
	}
	return lower // above the last finite bucket
}

// histFamily stores histogram series under one metric name.
type histFamily struct {
	name    string
	help    string
	buckets []float64
	mu      sync.Mutex
	byLabel map[string]*histSeries
}

// Histogram returns the histogram series for (name, labels), creating it
// with the given buckets on first use (nil selects
// DefaultLatencyBuckets). Buckets are fixed per metric name.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	r.mu.Lock()
	hf, ok := r.hists[name]
	if !ok {
		sorted := append([]float64(nil), buckets...)
		sort.Float64s(sorted)
		hf = &histFamily{name: name, help: help, buckets: sorted, byLabel: make(map[string]*histSeries)}
		if r.hists == nil {
			r.hists = make(map[string]*histFamily)
		}
		r.hists[name] = hf
		r.histOrder = append(r.histOrder, name)
	}
	r.mu.Unlock()

	k := labels.key()
	hf.mu.Lock()
	defer hf.mu.Unlock()
	s, ok := hf.byLabel[k]
	if !ok {
		copied := make(Labels, len(labels))
		for lk, lv := range labels {
			copied[lk] = lv
		}
		s = &histSeries{labels: copied, buckets: hf.buckets, counts: make([]uint64, len(hf.buckets))}
		hf.byLabel[k] = s
	}
	return Histogram{s}
}

// renderHistograms appends exposition lines for every histogram family.
func (r *Registry) renderHistograms(b *strings.Builder) {
	r.mu.Lock()
	names := append([]string(nil), r.histOrder...)
	fams := make([]*histFamily, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.hists[n])
	}
	r.mu.Unlock()
	for _, hf := range fams {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", hf.name, hf.help, hf.name)
		hf.mu.Lock()
		keys := make([]string, 0, len(hf.byLabel))
		for k := range hf.byLabel {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := hf.byLabel[k]
			s.mu.Lock()
			for i, ub := range s.buckets {
				fmt.Fprintf(b, "%s_bucket%s %d%s\n", hf.name,
					withLE(s.labels, strconv.FormatFloat(ub, 'g', -1, 64)), s.counts[i],
					exemplarSuffix(s.exemplars, i))
			}
			fmt.Fprintf(b, "%s_bucket%s %d%s\n", hf.name, withLE(s.labels, "+Inf"), s.count,
				exemplarSuffix(s.exemplars, len(s.buckets)))
			fmt.Fprintf(b, "%s_sum%s %s\n", hf.name, s.labels.String(),
				strconv.FormatFloat(s.sum, 'g', -1, 64))
			fmt.Fprintf(b, "%s_count%s %d\n", hf.name, s.labels.String(), s.count)
			s.mu.Unlock()
		}
		hf.mu.Unlock()
	}
}

// exemplarSuffix renders the OpenMetrics exemplar clause for bucket i,
// or "" when the bucket has none — series without exemplars render
// byte-identically to the plain format.
func exemplarSuffix(exemplars []Exemplar, i int) string {
	if i >= len(exemplars) || exemplars[i].TraceID == "" {
		return ""
	}
	e := exemplars[i]
	return fmt.Sprintf(" # {trace_id=%q} %s %s", e.TraceID,
		strconv.FormatFloat(e.Value, 'g', -1, 64),
		strconv.FormatFloat(float64(e.Time.UnixMilli())/1000, 'f', 3, 64))
}

// withLE renders a label set extended with an le bucket bound.
func withLE(l Labels, le string) string {
	parts := make([]string, 0, len(l)+1)
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, l[k]))
	}
	parts = append(parts, fmt.Sprintf("le=%q", le))
	return "{" + strings.Join(parts, ",") + "}"
}
