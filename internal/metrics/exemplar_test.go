package metrics

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestObserveExemplarNativeBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", Labels{"tenant": "t1"}, []float64{0.1, 1})
	h.ObserveExemplar(0.05, "aaaaaaaaaaaaaaaa") // native bucket 0.1
	h.ObserveExemplar(0.5, "bbbbbbbbbbbbbbbb")  // native bucket 1
	h.ObserveExemplar(5, "cccccccccccccccc")    // +Inf
	ex := h.Exemplars()
	if ex["0.1"].TraceID != "aaaaaaaaaaaaaaaa" || ex["1"].TraceID != "bbbbbbbbbbbbbbbb" ||
		ex["+Inf"].TraceID != "cccccccccccccccc" {
		t.Fatalf("exemplars %+v", ex)
	}
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	// Cumulative bucket counts are unaffected by the exemplar path.
	if got := h.Quantile(0.5); got <= 0 {
		t.Fatalf("quantile %v", got)
	}
}

func TestExemplarEvictionUnderChurn(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", nil, []float64{1})
	// Thousands of observations churn through one bucket; storage stays
	// one exemplar per bucket and the latest wins.
	for i := 0; i < 5000; i++ {
		h.ObserveExemplar(0.5, fmt.Sprintf("%016x", i))
	}
	ex := h.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("want 1 exemplar, got %d", len(ex))
	}
	if ex["1"].TraceID != fmt.Sprintf("%016x", 4999) {
		t.Fatalf("latest should win, got %q", ex["1"].TraceID)
	}
	if len(h.s.exemplars) != 2 { // one per bucket incl. +Inf, churn-independent
		t.Fatalf("exemplar slots %d", len(h.s.exemplars))
	}
}

func TestEmptyTraceDegradesToObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", nil, []float64{1})
	h.ObserveExemplar(0.5, "")
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	if len(h.Exemplars()) != 0 {
		t.Fatalf("exemplars %+v", h.Exemplars())
	}
}

func TestRenderWithoutExemplarsByteIdentical(t *testing.T) {
	render := func(observe func(Histogram)) string {
		r := NewRegistry()
		h := r.Histogram("bf_x_seconds", "help.", Labels{"tenant": "t"}, []float64{0.1, 1})
		observe(h)
		return r.Render()
	}
	plain := render(func(h Histogram) { h.Observe(0.05); h.Observe(0.5) })
	viaExemplarPath := render(func(h Histogram) {
		h.ObserveExemplar(0.05, "") // empty trace: must not change the text
		h.Observe(0.5)
	})
	if plain != viaExemplarPath {
		t.Fatalf("render diverged:\n%s\nvs\n%s", plain, viaExemplarPath)
	}
	if strings.Contains(plain, " # ") {
		t.Fatalf("plain render leaked exemplar syntax:\n%s", plain)
	}
}

func TestExemplarRenderParseRoundTrip(t *testing.T) {
	oldNow := exemplarNow
	fixed := time.Unix(1700000000, 123e6)
	exemplarNow = func() time.Time { return fixed }
	defer func() { exemplarNow = oldNow }()

	r := NewRegistry()
	h := r.Histogram("bf_x_seconds", "help.", Labels{"tenant": "t"}, []float64{0.1})
	h.ObserveExemplar(0.05, "00000000deadbeef")
	text := r.Render()
	if !strings.Contains(text, `# {trace_id="00000000deadbeef"} 0.05 1700000000.123`) {
		t.Fatalf("render:\n%s", text)
	}
	samples, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	var found *Sample
	for i := range samples {
		if samples[i].Exemplar != nil {
			if found != nil {
				t.Fatalf("multiple exemplars parsed")
			}
			found = &samples[i]
		}
	}
	if found == nil {
		t.Fatalf("no exemplar parsed from:\n%s", text)
	}
	if found.Name != "bf_x_seconds_bucket" || found.Labels["le"] != "0.1" {
		t.Fatalf("exemplar on wrong series: %+v", found)
	}
	e := found.Exemplar
	if e.TraceID != "00000000deadbeef" || e.Value != 0.05 || !e.Time.Equal(fixed) {
		t.Fatalf("exemplar %+v", e)
	}
}

func TestParseExemplarWithoutTimestamp(t *testing.T) {
	samples, err := Parse(`m_bucket{le="1"} 3 # {trace_id="ab"} 0.5` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Exemplar == nil || samples[0].Exemplar.TraceID != "ab" ||
		samples[0].Value != 3 {
		t.Fatalf("sample %+v", samples[0])
	}
	for _, bad := range []string{
		`m 1 # trace 0.5`,
		`m 1 # {trace_id="x"}`,
		`m 1 # {trace_id="x"} notanumber`,
		`m 1 # {trace_id="x} 0.5`,
	} {
		if _, err := Parse(bad + "\n"); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestTSDBStoresLatestExemplar(t *testing.T) {
	db := NewTSDB(time.Hour)
	lbl := Labels{"le": "+Inf", "tenant": "t1"}
	t0 := time.Unix(1700000000, 0)
	db.Append(t0, []Sample{{Name: "m_bucket", Labels: lbl, Value: 1,
		Exemplar: &Exemplar{TraceID: "aa", Value: 0.2, Time: t0}}})
	db.Append(t0.Add(time.Second), []Sample{{Name: "m_bucket", Labels: lbl, Value: 2,
		Exemplar: &Exemplar{TraceID: "bb", Value: 0.3, Time: t0.Add(time.Second)}}})
	db.Append(t0.Add(2*time.Second), []Sample{{Name: "m_bucket", Labels: lbl, Value: 2}})
	e, ok := db.Exemplar("m_bucket", lbl)
	if !ok || e.TraceID != "bb" {
		t.Fatalf("exemplar %+v ok=%v", e, ok)
	}
	if _, ok := db.Exemplar("m_bucket", Labels{"le": "1"}); ok {
		t.Fatal("exemplar for unknown series")
	}
}

// TestIncreaseAtRetentionBoundary covers the window math burn-rate
// rules lean on: points ageing out of retention must not fabricate
// increases, and a window larger than retention degrades to the
// retained points.
func TestIncreaseAtRetentionBoundary(t *testing.T) {
	db := NewTSDB(time.Minute)
	lbl := Labels{"tenant": "t1"}
	t0 := time.Unix(1700000000, 0)
	for i := 0; i <= 9; i++ { // counter +10 every 10s for 90s
		db.Append(t0.Add(time.Duration(i)*10*time.Second),
			[]Sample{{Name: "c", Labels: lbl, Value: float64(10 * i)}})
	}
	now := t0.Add(90 * time.Second)
	// Retention kept [30s..90s]: 7 points, values 30..90.
	if inc, ok := db.Increase("c", lbl, now, 2*time.Minute); !ok || inc != 60 {
		t.Fatalf("over-retention window: inc=%v ok=%v", inc, ok)
	}
	if inc, ok := db.Increase("c", lbl, now, 30*time.Second); !ok || inc != 30 {
		t.Fatalf("in-window increase: inc=%v ok=%v", inc, ok)
	}
	// A window reaching exactly one retained point yields no increase.
	if _, ok := db.Increase("c", lbl, now, 5*time.Second); ok {
		t.Fatal("single-point window should not report an increase")
	}
	// Delta on a shrinking gauge goes negative (no reset fallback).
	for i := 0; i <= 3; i++ {
		db.Append(now.Add(time.Duration(i)*10*time.Second),
			[]Sample{{Name: "g", Labels: lbl, Value: float64(100 - 20*i)}})
	}
	if d, ok := db.Delta("g", lbl, now.Add(30*time.Second), time.Minute); !ok || d != -60 {
		t.Fatalf("delta %v ok=%v", d, ok)
	}
}

func TestScraperLocalTarget(t *testing.T) {
	db := NewTSDB(time.Hour)
	s := NewScraper(db, time.Second)
	now := time.Unix(1700000000, 0)
	s.Now = func() time.Time { return now }

	reg := NewRegistry()
	h := reg.Histogram("bf_x_seconds", "help.", Labels{"tenant": "t"}, []float64{0.1})
	h.ObserveExemplar(0.05, "00000000deadbeef")
	s.AddLocalTarget("self", reg)
	s.ScrapeOnce()

	if v, ok := db.Latest("bf_x_seconds_count", Labels{"tenant": "t"}); !ok || v != 1 {
		t.Fatalf("scraped count %v ok=%v", v, ok)
	}
	if v, ok := db.Latest("bf_scrape_up", Labels{"target": "self"}); !ok || v != 1 {
		t.Fatalf("scrape up %v ok=%v", v, ok)
	}
	// Exemplars ride the same text path as HTTP scrapes.
	e, ok := db.Exemplar("bf_x_seconds_bucket", Labels{"tenant": "t", "le": "0.1"})
	if !ok || e.TraceID != "00000000deadbeef" {
		t.Fatalf("exemplar %+v ok=%v", e, ok)
	}

	s.RemoveTarget("self")
	if targets := len(s.locals); targets != 0 {
		t.Fatalf("local target not removed: %d", targets)
	}
}

func TestScraperStartJitter(t *testing.T) {
	s := NewScraper(NewTSDB(time.Hour), 10*time.Second)
	for i := 0; i < 100; i++ {
		d := s.startJitter()
		if d < 0 || d >= 10*time.Second {
			t.Fatalf("jitter %v out of [0, interval)", d)
		}
	}
}
