package metrics

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.", Labels{"fn": "sobel-1"})
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotonic
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v", c.Value())
	}
	g := r.Gauge("queue_depth", "Tasks queued.", nil)
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	// Same name+labels returns the same series.
	c2 := r.Counter("requests_total", "Total requests.", Labels{"fn": "sobel-1"})
	c2.Inc()
	if c.Value() != 4.5 {
		t.Fatalf("series not shared: %v", c.Value())
	}
}

func TestRenderFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("bf_tasks_total", "Tasks executed.", Labels{"device": "fpga0", "node": "B"}).Add(12)
	r.Gauge("bf_utilization", "FPGA time utilization.", nil).Set(0.42)
	text := r.Render()
	for _, want := range []string{
		"# HELP bf_tasks_total Tasks executed.",
		"# TYPE bf_tasks_total counter",
		`bf_tasks_total{device="fpga0",node="B"} 12`,
		"# TYPE bf_utilization gauge",
		"bf_utilization 0.42",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q in:\n%s", want, text)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", Labels{"x": "1", "y": "two"}).Add(5)
	r.Gauge("b", "B.", nil).Set(-1.5)
	r.Gauge("c", "C.", Labels{"esc": "with space"}).Set(1e9)
	samples, err := Parse(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]float64)
	for _, s := range samples {
		byKey[s.SeriesKey()] = s.Value
	}
	if byKey[`a_total{x="1",y="two"}`] != 5 {
		t.Errorf("a_total = %v (keys %v)", byKey, samples)
	}
	if byKey["b"] != -1.5 {
		t.Errorf("b = %v", byKey["b"])
	}
	if byKey[`c{esc="with space"}`] != 1e9 {
		t.Errorf("c = %v", byKey)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"novalue",
		"name{unterminated 1",
		`name{k=nov} 1`,
		`name{k="open} 1`,
		"1badname 2",
		"name notanumber",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParsePropertyRoundTrip(t *testing.T) {
	// Any counter value and simple label value survives render->parse.
	check := func(v float64, raw uint32) bool {
		if v != v || v < 0 { // NaN/negative not representable by counters
			v = 1
		}
		label := "v" + string(rune('a'+raw%26))
		r := NewRegistry()
		r.Counter("prop_total", "p", Labels{"k": label}).Add(v)
		samples, err := Parse(r.Render())
		if err != nil || len(samples) != 1 {
			return false
		}
		return samples[0].Value == v && samples[0].Labels["k"] == label
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTSDBRateAndAvg(t *testing.T) {
	db := NewTSDB(time.Minute)
	base := time.Unix(1000, 0)
	lbl := Labels{"device": "fpga0"}
	// Counter increasing 2 per second.
	for i := 0; i < 10; i++ {
		db.Append(base.Add(time.Duration(i)*time.Second), []Sample{
			{Name: "busy_total", Labels: lbl, Value: float64(i * 2)},
			{Name: "depth", Labels: lbl, Value: float64(i)},
		})
	}
	now := base.Add(9 * time.Second)
	rate, ok := db.Rate("busy_total", lbl, now, 20*time.Second)
	if !ok || rate < 1.99 || rate > 2.01 {
		t.Fatalf("rate = %v ok=%v, want 2", rate, ok)
	}
	avg, ok := db.Avg("depth", lbl, now, 20*time.Second)
	if !ok || avg != 4.5 {
		t.Fatalf("avg = %v ok=%v, want 4.5", avg, ok)
	}
	latest, ok := db.Latest("depth", lbl)
	if !ok || latest != 9 {
		t.Fatalf("latest = %v", latest)
	}
	if _, ok := db.Rate("missing", nil, now, time.Second); ok {
		t.Fatal("rate of unknown series must report not-ok")
	}
}

func TestTSDBCounterReset(t *testing.T) {
	db := NewTSDB(time.Minute)
	base := time.Unix(2000, 0)
	lbl := Labels{"d": "x"}
	db.Append(base, []Sample{{Name: "c_total", Labels: lbl, Value: 100}})
	// Manager restarts: counter falls back to near zero.
	db.Append(base.Add(10*time.Second), []Sample{{Name: "c_total", Labels: lbl, Value: 5}})
	rate, ok := db.Rate("c_total", lbl, base.Add(10*time.Second), time.Minute)
	if !ok || rate < 0 {
		t.Fatalf("rate after reset = %v ok=%v", rate, ok)
	}
}

func TestTSDBRetention(t *testing.T) {
	db := NewTSDB(10 * time.Second)
	base := time.Unix(3000, 0)
	lbl := Labels{"d": "x"}
	db.Append(base, []Sample{{Name: "g", Labels: lbl, Value: 1}})
	db.Append(base.Add(30*time.Second), []Sample{{Name: "g", Labels: lbl, Value: 2}})
	// Only the recent point remains; Avg over a huge window sees just it.
	avg, ok := db.Avg("g", lbl, base.Add(30*time.Second), time.Hour)
	if !ok || avg != 2 {
		t.Fatalf("avg = %v ok=%v, want 2 (old point must be evicted)", avg, ok)
	}
}

func TestTSDBSeriesDiscovery(t *testing.T) {
	db := NewTSDB(time.Minute)
	now := time.Unix(4000, 0)
	db.Append(now, []Sample{
		{Name: "util", Labels: Labels{"device": "a"}, Value: 1},
		{Name: "util", Labels: Labels{"device": "b"}, Value: 2},
		{Name: "other", Labels: Labels{"device": "c"}, Value: 3},
	})
	got := db.Series("util")
	if len(got) != 2 {
		t.Fatalf("Series = %v", got)
	}
}

func TestScraperEndToEnd(t *testing.T) {
	reg := NewRegistry()
	busy := reg.Counter("bf_busy_seconds_total", "Busy.", Labels{"device": "fpga0"})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	db := NewTSDB(time.Minute)
	sc := NewScraper(db, time.Second)
	now := time.Unix(5000, 0)
	sc.Now = func() time.Time { return now }
	sc.AddTarget("fpga0", srv.URL)

	busy.Add(1.0)
	sc.ScrapeOnce()
	now = now.Add(10 * time.Second)
	busy.Add(5.0)
	sc.ScrapeOnce()

	rate, ok := db.Rate("bf_busy_seconds_total", Labels{"device": "fpga0"}, now, time.Minute)
	if !ok {
		t.Fatal("no rate after two scrapes")
	}
	if rate < 0.49 || rate > 0.51 { // 5 seconds of busy over 10 seconds
		t.Fatalf("rate = %v, want 0.5", rate)
	}
	if err := sc.LastError("fpga0"); err != nil {
		t.Fatalf("scrape error: %v", err)
	}
	if len(sc.Targets()) != 1 {
		t.Fatalf("targets = %v", sc.Targets())
	}
	sc.RemoveTarget("fpga0")
	if len(sc.Targets()) != 0 {
		t.Fatal("target not removed")
	}
}

func TestScraperRecordsErrors(t *testing.T) {
	db := NewTSDB(time.Minute)
	sc := NewScraper(db, time.Second)
	sc.AddTarget("dead", "http://127.0.0.1:1/metrics")
	sc.ScrapeOnce()
	if err := sc.LastError("dead"); err == nil {
		t.Fatal("expected scrape error for dead target")
	}
}

// TestScraperHungTargetDoesNotBlockOthers covers the head-of-line fix: a
// target that accepts the connection but never answers must cost only its
// own deadline, while healthy targets scraped in the same pass still land
// fresh samples.
func TestScraperHungTargetDoesNotBlockOthers(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("bf_live", "Liveness.", Labels{"device": "ok0"})
	g.Set(42)
	healthy := httptest.NewServer(reg.Handler())
	defer healthy.Close()

	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the scrape open until the test ends
	}))
	defer func() { close(release); hung.Close() }()

	db := NewTSDB(time.Minute)
	sc := NewScraper(db, time.Second)
	sc.Timeout = 50 * time.Millisecond
	now := time.Unix(7000, 0)
	sc.Now = func() time.Time { return now }
	sc.AddTarget("ok0", healthy.URL)
	sc.AddTarget("hung0", hung.URL)

	start := time.Now()
	sc.ScrapeOnce()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ScrapeOnce took %v; hung target must only cost its own deadline", elapsed)
	}
	if v, ok := db.Latest("bf_live", Labels{"device": "ok0"}); !ok || v != 42 {
		t.Fatalf("healthy target sample = %v/%v, want 42", v, ok)
	}
	if err := sc.LastError("hung0"); err == nil {
		t.Fatal("hung target must record a deadline error")
	}
	if err := sc.LastError("ok0"); err != nil {
		t.Fatalf("healthy target errored: %v", err)
	}
}

func TestLabelsString(t *testing.T) {
	if got := (Labels{}).String(); got != "" {
		t.Errorf("empty labels = %q", got)
	}
	l := Labels{"b": "2", "a": "1"}
	if got := l.String(); got != `{a="1",b="2"}` {
		t.Errorf("labels = %q (must be sorted)", got)
	}
}

func TestHistogramObserveAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bf_task_seconds", "Task durations.", Labels{"device": "d0"},
		[]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("sum = %v", h.Sum())
	}
	text := r.Render()
	for _, want := range []string{
		"# TYPE bf_task_seconds histogram",
		`bf_task_seconds_bucket{device="d0",le="0.01"} 1`,
		`bf_task_seconds_bucket{device="d0",le="0.1"} 2`,
		`bf_task_seconds_bucket{device="d0",le="1"} 3`,
		`bf_task_seconds_bucket{device="d0",le="+Inf"} 4`,
		`bf_task_seconds_sum{device="d0"} 5.555`,
		`bf_task_seconds_count{device="d0"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	// Rendered histograms parse back (le is an ordinary label).
	samples, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 6 {
		t.Fatalf("parsed %d samples", len(samples))
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "Q.", nil, []float64{1, 2, 4, 8})
	// 100 observations uniform over (0,4]: quantiles interpolate.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if q := h.Quantile(0.5); q < 1.8 || q > 2.2 {
		t.Fatalf("p50 = %v, want ~2", q)
	}
	if q := h.Quantile(0.95); q < 3.4 || q > 4.2 {
		t.Fatalf("p95 = %v, want ~3.8", q)
	}
	if !math.IsNaN(r.Histogram("empty", "E.", nil, nil).Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	if !math.IsNaN(h.Quantile(1.5)) {
		t.Fatal("out-of-range quantile must be NaN")
	}
}

func TestHistogramSeriesSharing(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("shared", "S.", Labels{"x": "1"}, []float64{1})
	b := r.Histogram("shared", "S.", Labels{"x": "1"}, []float64{99}) // buckets fixed at first use
	a.Observe(0.5)
	if b.Count() != 1 {
		t.Fatal("same name+labels must share the series")
	}
	c := r.Histogram("shared", "S.", Labels{"x": "2"}, nil)
	if c.Count() != 0 {
		t.Fatal("different labels must get a fresh series")
	}
}

// --- TSDB retention/rate edge cases the alert engine depends on ---

// A window that covers only one point of a series must not produce a
// rate: the alert engine treats a single-sample window as "no
// observation", not a zero or infinite burn rate.
func TestTSDBRateSinglePointInWindow(t *testing.T) {
	db := NewTSDB(time.Minute)
	base := time.Unix(9000, 0)
	lbl := Labels{"d": "x"}
	db.Append(base, []Sample{{Name: "c_total", Labels: lbl, Value: 1}})
	db.Append(base.Add(30*time.Second), []Sample{{Name: "c_total", Labels: lbl, Value: 2}})
	// 5s window ending now: only the second point qualifies.
	if _, ok := db.Rate("c_total", lbl, base.Add(30*time.Second), 5*time.Second); ok {
		t.Fatal("rate over a single-point window must report not-ok")
	}
	// A series with one point total behaves the same under any window.
	db.Append(base.Add(31*time.Second), []Sample{{Name: "lone_total", Labels: lbl, Value: 7}})
	if _, ok := db.Rate("lone_total", lbl, base.Add(31*time.Second), time.Hour); ok {
		t.Fatal("rate of a one-point series must report not-ok")
	}
	// Increase shares the two-point requirement.
	if _, ok := db.Increase("lone_total", lbl, base.Add(31*time.Second), time.Hour); ok {
		t.Fatal("increase of a one-point series must report not-ok")
	}
}

// A point exactly at the retention cutoff is kept: eviction drops points
// strictly before cutoff, so a scrape landing precisely retention-ago
// still anchors rate windows.
func TestTSDBRetentionCutoffBoundary(t *testing.T) {
	retention := 10 * time.Second
	db := NewTSDB(retention)
	base := time.Unix(9500, 0)
	lbl := Labels{"d": "x"}
	db.Append(base, []Sample{{Name: "c_total", Labels: lbl, Value: 1}})
	// Append exactly retention later: cutoff == base, first point survives.
	db.Append(base.Add(retention), []Sample{{Name: "c_total", Labels: lbl, Value: 3}})
	if rate, ok := db.Rate("c_total", lbl, base.Add(retention), time.Hour); !ok || rate != 0.2 {
		t.Fatalf("rate = %v ok=%v, want 0.2 (boundary point must be retained)", rate, ok)
	}
	// One nanosecond past retention: the first point is evicted and the
	// series collapses to a single sample.
	db2 := NewTSDB(retention)
	db2.Append(base, []Sample{{Name: "c_total", Labels: lbl, Value: 1}})
	db2.Append(base.Add(retention+time.Nanosecond), []Sample{{Name: "c_total", Labels: lbl, Value: 3}})
	if _, ok := db2.Rate("c_total", lbl, base.Add(retention+time.Nanosecond), time.Hour); ok {
		t.Fatal("point past retention must be evicted")
	}
}

// Latest on an expired series: eviction happens at append time, per
// series, so a series that simply stopped being scraped keeps serving
// its stale last value. Alert rules on gauges therefore pair with
// bf_scrape_up (which keeps being appended by the scraper) rather than
// trusting Latest freshness — this test pins the staleness contract.
func TestTSDBLatestOnExpiredSeries(t *testing.T) {
	retention := 10 * time.Second
	db := NewTSDB(retention)
	base := time.Unix(9900, 0)
	stale := Labels{"d": "gone"}
	live := Labels{"d": "alive"}
	db.Append(base, []Sample{{Name: "g", Labels: stale, Value: 42}})
	// Long after retention, only the live series receives appends.
	db.Append(base.Add(5*time.Minute), []Sample{{Name: "g", Labels: live, Value: 1}})
	if v, ok := db.Latest("g", stale); !ok || v != 42 {
		t.Fatalf("Latest(stale) = %v ok=%v; append-time eviction must not touch other series", v, ok)
	}
	// But any windowed query on the stale series reports not-ok...
	if _, ok := db.Avg("g", stale, base.Add(5*time.Minute), 30*time.Second); ok {
		t.Fatal("windowed query on expired series must report not-ok")
	}
	// ...and the next append to the stale series evicts its old points.
	db.Append(base.Add(5*time.Minute), []Sample{{Name: "g", Labels: stale, Value: 7}})
	if v, ok := db.Latest("g", stale); !ok || v != 7 {
		t.Fatalf("Latest after re-append = %v ok=%v, want 7", v, ok)
	}
	if _, ok := db.Rate("g", stale, base.Add(5*time.Minute), time.Hour); ok {
		t.Fatal("expired point must not survive the re-append")
	}
}

// --- scrape-health series ---

// A healthy target exports bf_scrape_up = 1 and a scrape duration; when
// it dies the next pass flips bf_scrape_up to 0 and reports the
// transition through OnHealth.
func TestScraperExportsScrapeHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("bf_live", "Liveness.", Labels{"device": "fpga0"}).Set(1)
	srv := httptest.NewServer(reg.Handler())

	db := NewTSDB(time.Minute)
	sc := NewScraper(db, time.Second)
	sc.Timeout = time.Second
	now := time.Unix(8000, 0)
	sc.Now = func() time.Time { return now }

	type transition struct {
		target string
		up     bool
	}
	var mu sync.Mutex
	var transitions []transition
	sc.OnHealth = func(target string, up bool, err error) {
		mu.Lock()
		transitions = append(transitions, transition{target, up})
		mu.Unlock()
	}
	sc.AddTarget("fpga0", srv.URL)

	sc.ScrapeOnce()
	tgt := Labels{"target": "fpga0"}
	if v, ok := db.Latest("bf_scrape_up", tgt); !ok || v != 1 {
		t.Fatalf("bf_scrape_up = %v ok=%v, want 1", v, ok)
	}
	if d, ok := db.Latest("bf_scrape_duration_seconds", tgt); !ok || d < 0 {
		t.Fatalf("bf_scrape_duration_seconds = %v ok=%v", d, ok)
	}
	if len(transitions) != 0 {
		t.Fatalf("healthy first scrape must not report a transition: %v", transitions)
	}

	// Kill the target: bf_scrape_up flips to 0 even though the payload
	// scrape failed, and OnHealth reports exactly one down transition.
	srv.Close()
	now = now.Add(time.Second)
	sc.ScrapeOnce()
	now = now.Add(time.Second)
	sc.ScrapeOnce() // still down: no duplicate transition
	if v, ok := db.Latest("bf_scrape_up", tgt); !ok || v != 0 {
		t.Fatalf("bf_scrape_up after death = %v ok=%v, want 0", v, ok)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) != 1 || transitions[0] != (transition{"fpga0", false}) {
		t.Fatalf("transitions = %v, want one down transition", transitions)
	}
}
