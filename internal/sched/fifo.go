package sched

import "time"

// fifoPolicy is strict arrival order — the paper's central queue. The
// backing ring reuses its array across pops so the hot path allocates
// only on growth.
type fifoPolicy struct {
	items []*Item
	head  int
}

func newFIFOPolicy() *fifoPolicy { return &fifoPolicy{} }

func (p *fifoPolicy) push(it *Item) {
	p.items = append(p.items, it)
}

func (p *fifoPolicy) pop(time.Time) *Item {
	if p.head >= len(p.items) {
		return nil
	}
	it := p.items[p.head]
	p.items[p.head] = nil // release for GC
	p.head++
	// Reclaim the drained prefix once it dominates the slice, so a
	// long-lived queue does not leak its own history.
	if p.head > 64 && p.head*2 >= len(p.items) {
		n := copy(p.items, p.items[p.head:])
		for i := n; i < len(p.items); i++ {
			p.items[i] = nil
		}
		p.items = p.items[:n]
		p.head = 0
	}
	return it
}

func (p *fifoPolicy) remove(session uint64) []*Item {
	var out []*Item
	kept := p.items[:p.head]
	for _, it := range p.items[p.head:] {
		if it.Session == session {
			out = append(out, it)
			continue
		}
		kept = append(kept, it)
	}
	for i := len(kept); i < len(p.items); i++ {
		p.items[i] = nil
	}
	p.items = kept
	return out
}

func (p *fifoPolicy) len() int { return len(p.items) - p.head }
