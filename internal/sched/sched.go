// Package sched is the Device Manager's pluggable central-queue
// scheduling subsystem.
//
// The paper's Device Manager serializes every client through one strict
// FIFO queue; one greedy tenant submitting large tasks starves everyone
// else sharing the board. This package factors the queue behind a small
// Queue interface and ships three disciplines:
//
//   - fifo: strict arrival order, the paper-faithful default;
//   - drr: deficit round-robin weighted fair queuing keyed by tenant,
//     with configurable per-tenant weights and a starvation guard that
//     bounds any tenant's wait;
//   - deadline: earliest-deadline-first on a client-supplied soft
//     deadline hint, degrading to FIFO among unhinted tasks.
//
// All disciplines share the same blocking envelope: Push applies
// backpressure at capacity, Pop blocks until an item is schedulable (or
// the context is cancelled), Close drains like a closed channel, and
// Remove extracts a dead session's queued work from whichever structure
// holds it.
package sched

import (
	"fmt"
	"sort"
	"time"
)

// Discipline names a scheduling discipline.
type Discipline string

// The shipped disciplines.
const (
	// FIFO serves tasks strictly in arrival order (the paper's design).
	FIFO Discipline = "fifo"
	// DRR is deficit round-robin weighted fair queuing across tenants.
	DRR Discipline = "drr"
	// Deadline is earliest-deadline-first on soft deadline hints, FIFO
	// among unhinted tasks.
	Deadline Discipline = "deadline"
)

// ParseDiscipline validates a discipline name; the empty string selects
// FIFO, the paper's default.
func ParseDiscipline(s string) (Discipline, error) {
	switch Discipline(s) {
	case "":
		return FIFO, nil
	case FIFO, DRR, Deadline:
		return Discipline(s), nil
	}
	return "", fmt.Errorf("sched: unknown discipline %q (want %s, %s or %s)", s, FIFO, DRR, Deadline)
}

// Item is one schedulable unit: a sealed multi-operation task.
type Item struct {
	// Session identifies the submitting session; Remove reclaims by it.
	Session uint64
	// Tenant is the fair-queuing key (the client/function instance name).
	Tenant string
	// Weight is the tenant's fair-share weight under drr; values below 1
	// are lifted to 1 at Push.
	Weight int
	// Cost is the item's service-demand estimate in abstract units (the
	// manager uses the operation count); drr charges it against the
	// tenant's deficit. Values below 1 are lifted to 1 at Push.
	Cost int64
	// Deadline is the soft completion deadline under the deadline
	// discipline; the zero value marks an unhinted item, which is served
	// in FIFO position (effective deadline = submission time).
	Deadline time.Time
	// Submitted is stamped at Push (unless preset by a test) and is the
	// reference point for queue-wait accounting and the starvation guard.
	Submitted time.Time
	// Payload is the opaque task.
	Payload any

	// Depth and Pos are stamped at Push: the queue's total occupancy
	// after admission and this item's arrival position within it. They
	// feed the flight recorder's enqueue milestone so a postmortem can
	// say "entered at position 7 of 7" without re-deriving queue state.
	Depth int
	Pos   int

	// seq is the queue-assigned arrival number breaking all ties
	// deterministically in submission order.
	seq uint64
}

// Config parameterizes a queue.
type Config struct {
	// Capacity bounds queued items; Push blocks when full (backpressure,
	// matching the channel the fifo discipline replaces). Zero selects
	// 1024.
	Capacity int
	// Weights assigns drr weights by tenant name; tenants not listed use
	// the weight carried by their items (propagated from the Registry
	// binding), and failing that DefaultWeight.
	Weights map[string]int
	// DefaultWeight is the weight of tenants with no other source; zero
	// selects 1.
	DefaultWeight int
	// Quantum is the drr per-round credit granted per weight unit; zero
	// selects 4 (a typical small task's operation count, so weight-1
	// tenants still drain multi-op tasks in a bounded number of rounds).
	Quantum int64
	// StarvationGuard bounds any tenant's wait under drr: an item queued
	// longer than the guard is served next regardless of deficits. Zero
	// selects 2s; negative disables the guard.
	StarvationGuard time.Duration
	// Now supplies the clock; tests inject a fake. Nil selects time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = 4
	}
	if c.StarvationGuard == 0 {
		c.StarvationGuard = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a queue snapshot.
type Stats struct {
	// Discipline is the queue's discipline name.
	Discipline Discipline `json:"discipline"`
	// Depth is the number of queued items.
	Depth int `json:"depth"`
	// Pushed, Popped and Removed are lifetime item counters.
	Pushed  uint64 `json:"pushed"`
	Popped  uint64 `json:"popped"`
	Removed uint64 `json:"removed"`
	// Tenants lists per-tenant statistics sorted by tenant name.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's view of the queue.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Weight is the tenant's effective drr weight (informational under
	// other disciplines).
	Weight int `json:"weight"`
	// Depth is the tenant's currently queued item count.
	Depth int `json:"depth"`
	// Popped counts items served; Removed counts items reclaimed.
	Popped  uint64 `json:"popped"`
	Removed uint64 `json:"removed"`
	// WaitTotal is the cumulative queue wait of served items; MaxWait the
	// largest single wait observed.
	WaitTotal time.Duration `json:"wait_total_ns"`
	MaxWait   time.Duration `json:"max_wait_ns"`
}

// policy is a discipline's data structure. Implementations are not
// goroutine-safe; the queue wrapper serializes access.
type policy interface {
	// push admits an item (seq, Cost, Weight, Submitted already set).
	push(it *Item)
	// pop selects and removes the next item to serve; nil when empty.
	pop(now time.Time) *Item
	// remove extracts every queued item of the session, submit order.
	remove(session uint64) []*Item
	// len is the queued item count.
	len() int
}

// New creates a queue of the given discipline.
func New(d Discipline, cfg Config) (Queue, error) {
	cfg = cfg.withDefaults()
	var pol policy
	switch d {
	case "", FIFO:
		d = FIFO
		pol = newFIFOPolicy()
	case DRR:
		pol = newDRRPolicy(cfg.Quantum, cfg.StarvationGuard)
	case Deadline:
		pol = newEDFPolicy()
	default:
		return nil, fmt.Errorf("sched: unknown discipline %q", d)
	}
	return newQueue(d, cfg, pol), nil
}

// sortItemsBySeq orders removed items in submission order; helper shared
// by the policies' remove implementations.
func sortItemsBySeq(items []*Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].seq < items[j].seq })
}
