package sched

import (
	"container/heap"
	"time"
)

// edfPolicy is earliest-deadline-first on the items' soft deadlines.
// Unhinted items use their submission time as the effective deadline, so
// they are served in FIFO order relative to each other and are never
// parked behind hinted work with slack — a queue where nobody hints
// degenerates to exactly FIFO. Deadline ties break by arrival order.
type edfPolicy struct {
	h edfHeap
}

func newEDFPolicy() *edfPolicy { return &edfPolicy{} }

// effDeadline is the EDF sort key.
func effDeadline(it *Item) time.Time {
	if it.Deadline.IsZero() {
		return it.Submitted
	}
	return it.Deadline
}

type edfHeap []*Item

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	di, dj := effDeadline(h[i]), effDeadline(h[j])
	if !di.Equal(dj) {
		return di.Before(dj)
	}
	return h[i].seq < h[j].seq
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(*Item)) }
func (h *edfHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

func (p *edfPolicy) push(it *Item) { heap.Push(&p.h, it) }

func (p *edfPolicy) pop(time.Time) *Item {
	if len(p.h) == 0 {
		return nil
	}
	return heap.Pop(&p.h).(*Item)
}

func (p *edfPolicy) remove(session uint64) []*Item {
	var out []*Item
	kept := p.h[:0]
	for _, it := range p.h {
		if it.Session == session {
			out = append(out, it)
		} else {
			kept = append(kept, it)
		}
	}
	for i := len(kept); i < len(p.h); i++ {
		p.h[i] = nil
	}
	p.h = kept
	heap.Init(&p.h)
	sortItemsBySeq(out)
	return out
}

func (p *edfPolicy) len() int { return len(p.h) }
