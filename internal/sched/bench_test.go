package sched

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkPushPop measures the queue hot path — one Push followed by
// one Pop, the manager's submit/worker handoff — for each discipline at
// growing tenant counts. The fifo numbers bound the overhead the
// scheduler abstraction adds over the channel it replaced; drr and
// deadline show the price of fairness.
func BenchmarkPushPop(b *testing.B) {
	for _, d := range []Discipline{FIFO, DRR, Deadline} {
		for _, tenants := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/tenants=%d", d, tenants), func(b *testing.B) {
				q, err := New(d, Config{Capacity: 1 << 16, StarvationGuard: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer q.Close()
				names := make([]string, tenants)
				for i := range names {
					names[i] = fmt.Sprintf("fn-%d", i)
				}
				deadline := time.Now().Add(time.Hour)
				items := make([]Item, b.N)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					it := &items[i]
					it.Session = uint64(i%tenants) + 1
					it.Tenant = names[i%tenants]
					it.Cost = int64(1 + i%4)
					if d == Deadline && i%2 == 0 {
						it.Deadline = deadline
					}
					if err := q.Push(it); err != nil {
						b.Fatal(err)
					}
					if _, ok := q.Pop(context.Background()); !ok {
						b.Fatal("pop failed")
					}
				}
			})
		}
	}
}

// BenchmarkBacklogPop isolates Pop on a standing backlog: the worst case
// for drr's ring walk and the deadline heap at depth.
func BenchmarkBacklogPop(b *testing.B) {
	const depth = 1024
	for _, d := range []Discipline{FIFO, DRR, Deadline} {
		for _, tenants := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("%s/tenants=%d", d, tenants), func(b *testing.B) {
				q, err := New(d, Config{Capacity: depth + 1, StarvationGuard: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer q.Close()
				names := make([]string, tenants)
				for i := range names {
					names[i] = fmt.Sprintf("fn-%d", i)
				}
				items := make([]Item, depth)
				for i := range items {
					items[i] = Item{Session: uint64(i%tenants) + 1, Tenant: names[i%tenants], Cost: 1}
					q.Push(&items[i])
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					it, ok := q.Pop(context.Background())
					if !ok {
						b.Fatal("pop failed")
					}
					// Keep the backlog standing: recycle the popped item
					// (a fresh copy — the original may still be referenced
					// by the policy's structures until Push restamps it).
					ni := *it
					ni.Deadline = time.Time{}
					ni.Submitted = time.Time{}
					if err := q.Push(&ni); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
