package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("sched: queue closed")

// Queue is the central task queue a Device Manager worker drains. All
// methods are safe for concurrent use.
type Queue interface {
	// Push admits an item, blocking while the queue is at capacity
	// (backpressure, like the channel send it replaces). It fails with
	// ErrClosed once the queue is closed.
	Push(it *Item) error
	// Pop removes the next item under the queue's discipline, blocking
	// until one is available. It returns ok=false when ctx is cancelled
	// or when the queue is closed and drained — closed-channel
	// semantics, so a worker loop terminates only after running
	// everything already submitted.
	Pop(ctx context.Context) (*Item, bool)
	// Remove extracts every queued item of the session (submit order)
	// from whichever structure the discipline holds them in; the lease
	// sweeper fails them without occupying the board.
	Remove(session uint64) []*Item
	// Stats snapshots queue and per-tenant counters.
	Stats() Stats
	// Len is the current queue depth.
	Len() int
	// Close stops admissions; queued items remain poppable (drain).
	Close()
}

// tenantCounters is the wrapper-side per-tenant accounting.
type tenantCounters struct {
	weight    int
	depth     int
	popped    uint64
	removed   uint64
	waitTotal time.Duration
	maxWait   time.Duration
}

// queue wraps a discipline policy with blocking, capacity, close-drain
// and statistics — uniform across disciplines so the fifo hot path and
// the fair-queuing paths share one concurrency envelope.
type queue struct {
	disc Discipline
	cfg  Config

	mu     sync.Mutex
	pol    policy
	closed bool
	seq    uint64
	// notEmpty and notFull are broadcast channels: closed and replaced
	// whenever the respective condition may have become true. Waiters
	// snapshot the current channel under mu and block outside it.
	notEmpty chan struct{}
	notFull  chan struct{}

	pushed, popped, removed uint64
	tenants                 map[string]*tenantCounters
}

func newQueue(d Discipline, cfg Config, pol policy) *queue {
	return &queue{
		disc:     d,
		cfg:      cfg,
		pol:      pol,
		notEmpty: make(chan struct{}),
		notFull:  make(chan struct{}),
		tenants:  make(map[string]*tenantCounters),
	}
}

// wake broadcasts a condition change by closing and replacing a channel.
// Called with mu held.
func wake(ch *chan struct{}) {
	close(*ch)
	*ch = make(chan struct{})
}

func (q *queue) tenant(name string) *tenantCounters {
	tc, ok := q.tenants[name]
	if !ok {
		tc = &tenantCounters{}
		q.tenants[name] = tc
	}
	return tc
}

// effectiveWeight resolves an item's weight: the queue's static table
// first (operator configuration wins), then the item's own weight (the
// Registry-propagated binding), then the default.
func (q *queue) effectiveWeight(it *Item) int {
	if w, ok := q.cfg.Weights[it.Tenant]; ok && w > 0 {
		return w
	}
	if it.Weight > 0 {
		return it.Weight
	}
	return q.cfg.DefaultWeight
}

// Push implements Queue.
func (q *queue) Push(it *Item) error {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return ErrClosed
		}
		if q.pol.len() < q.cfg.Capacity {
			q.seq++
			it.seq = q.seq
			if it.Submitted.IsZero() {
				it.Submitted = q.cfg.Now()
			}
			if it.Cost < 1 {
				it.Cost = 1
			}
			it.Weight = q.effectiveWeight(it)
			q.pol.push(it)
			it.Depth = q.pol.len()
			it.Pos = it.Depth
			q.pushed++
			tc := q.tenant(it.Tenant)
			tc.depth++
			tc.weight = it.Weight
			wake(&q.notEmpty)
			q.mu.Unlock()
			return nil
		}
		full := q.notFull
		q.mu.Unlock()
		<-full // woken by Pop, Remove or Close
	}
}

// Pop implements Queue.
func (q *queue) Pop(ctx context.Context) (*Item, bool) {
	for {
		q.mu.Lock()
		if it := q.pol.pop(q.cfg.Now()); it != nil {
			q.popped++
			tc := q.tenant(it.Tenant)
			tc.depth--
			tc.popped++
			if w := q.cfg.Now().Sub(it.Submitted); w > 0 {
				tc.waitTotal += w
				if w > tc.maxWait {
					tc.maxWait = w
				}
			}
			wake(&q.notFull)
			q.mu.Unlock()
			return it, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		empty := q.notEmpty
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, false
		case <-empty:
		}
	}
}

// Remove implements Queue.
func (q *queue) Remove(session uint64) []*Item {
	q.mu.Lock()
	items := q.pol.remove(session)
	if len(items) > 0 {
		q.removed += uint64(len(items))
		for _, it := range items {
			tc := q.tenant(it.Tenant)
			tc.depth--
			tc.removed++
		}
		wake(&q.notFull)
	}
	q.mu.Unlock()
	return items
}

// Stats implements Queue.
func (q *queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Discipline: q.disc,
		Depth:      q.pol.len(),
		Pushed:     q.pushed,
		Popped:     q.popped,
		Removed:    q.removed,
	}
	for name, tc := range q.tenants {
		st.Tenants = append(st.Tenants, TenantStats{
			Tenant:    name,
			Weight:    tc.weight,
			Depth:     tc.depth,
			Popped:    tc.popped,
			Removed:   tc.removed,
			WaitTotal: tc.waitTotal,
			MaxWait:   tc.maxWait,
		})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// Len implements Queue.
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pol.len()
}

// Close implements Queue.
func (q *queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		// Wake blocked pushers (they fail with ErrClosed) and poppers
		// (they drain, then observe closed).
		wake(&q.notFull)
		wake(&q.notEmpty)
	}
	q.mu.Unlock()
}
