package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pop is a test helper: a non-blocking-expectation Pop that fails the
// test if the queue has nothing schedulable.
func pop(t *testing.T, q Queue) *Item {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	it, ok := q.Pop(ctx)
	if !ok {
		t.Fatal("Pop returned no item")
	}
	return it
}

func mustNew(t *testing.T, d Discipline, cfg Config) Queue {
	t.Helper()
	q, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestParseDiscipline(t *testing.T) {
	for in, want := range map[string]Discipline{"": FIFO, "fifo": FIFO, "drr": DRR, "deadline": Deadline} {
		got, err := ParseDiscipline(in)
		if err != nil || got != want {
			t.Errorf("ParseDiscipline(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDiscipline("lottery"); err == nil {
		t.Error("unknown discipline accepted")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := mustNew(t, FIFO, Config{})
	defer q.Close()
	for i := 0; i < 100; i++ {
		q.Push(&Item{Session: 1, Tenant: "a", Payload: i})
	}
	for i := 0; i < 100; i++ {
		if got := pop(t, q).Payload.(int); got != i {
			t.Fatalf("pop %d: got payload %d", i, got)
		}
	}
}

func TestFIFORemovePreservesOrder(t *testing.T) {
	q := mustNew(t, FIFO, Config{})
	defer q.Close()
	for i := 0; i < 10; i++ {
		sess := uint64(1 + i%2)
		q.Push(&Item{Session: sess, Tenant: "a", Payload: i})
	}
	removed := q.Remove(2) // the odd payloads
	if len(removed) != 5 {
		t.Fatalf("removed %d items, want 5", len(removed))
	}
	for i, it := range removed {
		if it.Payload.(int) != 2*i+1 {
			t.Fatalf("removed[%d] = %d, want submit order", i, it.Payload)
		}
	}
	for i := 0; i < 10; i += 2 {
		if got := pop(t, q).Payload.(int); got != i {
			t.Fatalf("post-remove pop: got %d, want %d", got, i)
		}
	}
}

// TestDRRWeightedShares pins the weight-proportional service pattern:
// with quantum 1 and unit costs, a weight-3 tenant is served three items
// per visit against a weight-1 tenant's one.
func TestDRRWeightedShares(t *testing.T) {
	q := mustNew(t, DRR, Config{
		Quantum:         1,
		Weights:         map[string]int{"heavy": 3, "light": 1},
		StarvationGuard: -1, // isolate pure DRR behavior
	})
	defer q.Close()
	for i := 0; i < 30; i++ {
		q.Push(&Item{Session: 1, Tenant: "heavy", Payload: i})
	}
	for i := 0; i < 10; i++ {
		q.Push(&Item{Session: 2, Tenant: "light", Payload: i})
	}
	counts := map[string]int{}
	var order []string
	for i := 0; i < 16; i++ {
		it := pop(t, q)
		counts[it.Tenant]++
		order = append(order, it.Tenant)
	}
	if counts["heavy"] != 12 || counts["light"] != 4 {
		t.Fatalf("16 pops served heavy=%d light=%d (order %v), want 12/4", counts["heavy"], counts["light"], order)
	}
}

// TestDRRCostCharging verifies multi-op tasks are charged by cost: a
// tenant submitting cost-16 tasks gets roughly the same service-units as
// an equal-weight tenant submitting cost-1 tasks, not 16x.
func TestDRRCostCharging(t *testing.T) {
	q := mustNew(t, DRR, Config{Quantum: 4, StarvationGuard: -1})
	defer q.Close()
	for i := 0; i < 20; i++ {
		q.Push(&Item{Session: 1, Tenant: "bulk", Cost: 16, Payload: i})
	}
	for i := 0; i < 200; i++ {
		q.Push(&Item{Session: 2, Tenant: "lean", Cost: 1, Payload: i})
	}
	units := map[string]int64{}
	// Serve 10 full bulk tasks' worth of rounds.
	for units["bulk"] < 160 {
		it := pop(t, q)
		units[it.Tenant] += it.Cost
	}
	ratio := float64(units["bulk"]) / float64(units["lean"])
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("service units bulk=%d lean=%d (ratio %.2f), want near parity", units["bulk"], units["lean"], ratio)
	}
}

// TestDRRRemoveMidRound reclaims a session while the ring cursor is
// mid-round, including the tenant currently holding the cursor.
func TestDRRRemoveMidRound(t *testing.T) {
	q := mustNew(t, DRR, Config{Quantum: 1, StarvationGuard: -1})
	defer q.Close()
	tenants := []string{"a", "b", "c"}
	for i, tn := range tenants {
		for j := 0; j < 5; j++ {
			q.Push(&Item{Session: uint64(i + 1), Tenant: tn, Payload: j})
		}
	}
	// Advance the cursor into the round: serve one item ("a" keeps the
	// cursor position or it moved on — either way a real mid-round state).
	first := pop(t, q)
	// Remove the cursor tenant's session and one other.
	gone := map[string]bool{first.Tenant: true}
	var sess uint64
	for i, tn := range tenants {
		if tn == first.Tenant {
			sess = uint64(i + 1)
		}
	}
	removed := q.Remove(sess)
	if len(removed) != 4 {
		t.Fatalf("removed %d items of the cursor tenant, want 4", len(removed))
	}
	// All remaining items must still be served, from the live tenants.
	want := 10 // two tenants x 5
	for i := 0; i < want; i++ {
		it := pop(t, q)
		if gone[it.Tenant] {
			t.Fatalf("served item of removed tenant %s", it.Tenant)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// TestDRRStarvationGuard serves an over-age head out of turn.
func TestDRRStarvationGuard(t *testing.T) {
	now := time.Unix(1000, 0)
	q := mustNew(t, DRR, Config{
		Quantum:         1,
		StarvationGuard: time.Second,
		Now:             func() time.Time { return now },
	})
	defer q.Close()
	// "busy" is first in the ring and would win a pure DRR round.
	for i := 0; i < 10; i++ {
		q.Push(&Item{Session: 1, Tenant: "busy", Payload: i})
	}
	// "starved" queued an item two seconds ago (beyond the guard).
	q.Push(&Item{Session: 2, Tenant: "starved", Submitted: now.Add(-2 * time.Second), Payload: 0})
	if it := pop(t, q); it.Tenant != "starved" {
		t.Fatalf("guard did not fire: served %s first", it.Tenant)
	}
	// Guarded service charged the cost: the tenant repays the advance.
	if it := pop(t, q); it.Tenant != "busy" {
		t.Fatalf("after the guarded pop, served %s, want busy", it.Tenant)
	}
}

func TestDeadlineOrder(t *testing.T) {
	now := time.Unix(2000, 0)
	q := mustNew(t, Deadline, Config{Now: func() time.Time { return now }})
	defer q.Close()
	q.Push(&Item{Session: 1, Tenant: "a", Deadline: now.Add(500 * time.Millisecond), Payload: "far"})
	q.Push(&Item{Session: 1, Tenant: "a", Deadline: now.Add(100 * time.Millisecond), Payload: "near"})
	q.Push(&Item{Session: 1, Tenant: "a", Payload: "unhinted"}) // eff deadline = now
	for _, want := range []string{"unhinted", "near", "far"} {
		if got := pop(t, q).Payload.(string); got != want {
			t.Fatalf("pop order: got %q, want %q", got, want)
		}
	}
}

// TestDeadlineUnhintedIsFIFO pins the fallback: a queue where nobody
// hints behaves exactly like fifo.
func TestDeadlineUnhintedIsFIFO(t *testing.T) {
	tick := time.Unix(3000, 0)
	q := mustNew(t, Deadline, Config{Now: func() time.Time {
		tick = tick.Add(time.Microsecond)
		return tick
	}})
	defer q.Close()
	for i := 0; i < 50; i++ {
		q.Push(&Item{Session: 1, Tenant: "a", Payload: i})
	}
	for i := 0; i < 50; i++ {
		if got := pop(t, q).Payload.(int); got != i {
			t.Fatalf("unhinted deadline queue broke FIFO at %d (got %d)", i, got)
		}
	}
}

// TestDeadlineTies breaks equal deadlines by arrival order.
func TestDeadlineTies(t *testing.T) {
	now := time.Unix(4000, 0)
	q := mustNew(t, Deadline, Config{Now: func() time.Time { return now }})
	defer q.Close()
	dl := now.Add(time.Second)
	for i := 0; i < 20; i++ {
		q.Push(&Item{Session: 1, Tenant: "a", Deadline: dl, Payload: i})
	}
	for i := 0; i < 20; i++ {
		if got := pop(t, q).Payload.(int); got != i {
			t.Fatalf("deadline tie broke arrival order at %d (got %d)", i, got)
		}
	}
}

func TestDeadlineRemove(t *testing.T) {
	now := time.Unix(5000, 0)
	q := mustNew(t, Deadline, Config{Now: func() time.Time { return now }})
	defer q.Close()
	for i := 0; i < 10; i++ {
		q.Push(&Item{Session: uint64(1 + i%2), Tenant: "a", Deadline: now.Add(time.Duration(10-i) * time.Second), Payload: i})
	}
	removed := q.Remove(2)
	if len(removed) != 5 {
		t.Fatalf("removed %d, want 5", len(removed))
	}
	for i := 1; i < len(removed); i++ {
		if removed[i-1].Payload.(int) > removed[i].Payload.(int) {
			t.Fatal("removed items not in submit order")
		}
	}
	// Remaining five (even payloads) pop in deadline order: 8, 6, 4, 2, 0.
	for _, want := range []int{8, 6, 4, 2, 0} {
		if got := pop(t, q).Payload.(int); got != want {
			t.Fatalf("post-remove EDF order: got %d, want %d", got, want)
		}
	}
}

func TestPopContextCancel(t *testing.T) {
	for _, d := range []Discipline{FIFO, DRR, Deadline} {
		q := mustNew(t, d, Config{})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan bool, 1)
		go func() {
			_, ok := q.Pop(ctx)
			done <- ok
		}()
		time.Sleep(10 * time.Millisecond) // let Pop block on the empty queue
		cancel()
		select {
		case ok := <-done:
			if ok {
				t.Fatalf("%s: cancelled Pop returned an item", d)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s: cancelled Pop did not return", d)
		}
		q.Close()
	}
}

func TestCloseDrain(t *testing.T) {
	for _, d := range []Discipline{FIFO, DRR, Deadline} {
		q := mustNew(t, d, Config{})
		for i := 0; i < 3; i++ {
			if err := q.Push(&Item{Session: 1, Tenant: "a", Payload: i}); err != nil {
				t.Fatalf("%s: push: %v", d, err)
			}
		}
		q.Close()
		if err := q.Push(&Item{Session: 1, Tenant: "a"}); !errors.Is(err, ErrClosed) {
			t.Fatalf("%s: push after close: %v, want ErrClosed", d, err)
		}
		for i := 0; i < 3; i++ {
			if _, ok := q.Pop(context.Background()); !ok {
				t.Fatalf("%s: closed queue did not drain item %d", d, i)
			}
		}
		if _, ok := q.Pop(context.Background()); ok {
			t.Fatalf("%s: drained closed queue returned an item", d)
		}
	}
}

func TestPushBlocksAtCapacity(t *testing.T) {
	q := mustNew(t, FIFO, Config{Capacity: 2})
	defer q.Close()
	q.Push(&Item{Session: 1, Tenant: "a", Payload: 0})
	q.Push(&Item{Session: 1, Tenant: "a", Payload: 1})
	unblocked := make(chan struct{})
	go func() {
		q.Push(&Item{Session: 1, Tenant: "a", Payload: 2})
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("push beyond capacity did not block")
	case <-time.After(50 * time.Millisecond):
	}
	pop(t, q)
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("push did not unblock after a pop freed capacity")
	}
}

// TestEffectiveWeight pins the resolution order: static table beats the
// item's declared weight beats the default.
func TestEffectiveWeight(t *testing.T) {
	q := mustNew(t, DRR, Config{Weights: map[string]int{"tabled": 7}})
	defer q.Close()
	q.Push(&Item{Session: 1, Tenant: "tabled", Weight: 2})
	q.Push(&Item{Session: 2, Tenant: "declared", Weight: 3})
	q.Push(&Item{Session: 3, Tenant: "bare"})
	got := map[string]int{}
	for _, ts := range q.Stats().Tenants {
		got[ts.Tenant] = ts.Weight
	}
	want := map[string]int{"tabled": 7, "declared": 3, "bare": 1}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("weight of %s = %d, want %d", k, got[k], w)
		}
	}
}

// TestStatsAccounting checks the lifetime and per-tenant counters add up
// after pops and removes.
func TestStatsAccounting(t *testing.T) {
	now := time.Unix(6000, 0)
	q := mustNew(t, FIFO, Config{Now: func() time.Time { return now }})
	defer q.Close()
	for i := 0; i < 6; i++ {
		q.Push(&Item{Session: uint64(1 + i%2), Tenant: []string{"a", "b"}[i%2], Payload: i})
	}
	now = now.Add(30 * time.Millisecond)
	pop(t, q) // one of a's
	q.Remove(2)
	st := q.Stats()
	if st.Pushed != 6 || st.Popped != 1 || st.Removed != 3 || st.Depth != 2 {
		t.Fatalf("stats = %+v", st)
	}
	for _, ts := range st.Tenants {
		switch ts.Tenant {
		case "a":
			if ts.Popped != 1 || ts.Depth != 2 || ts.WaitTotal != 30*time.Millisecond || ts.MaxWait != 30*time.Millisecond {
				t.Fatalf("tenant a stats = %+v", ts)
			}
		case "b":
			if ts.Removed != 3 || ts.Depth != 0 {
				t.Fatalf("tenant b stats = %+v", ts)
			}
		}
	}
}

// TestConcurrentStress hammers every discipline with concurrent pushers,
// poppers and removers — the -race workout for the blocking envelope.
func TestConcurrentStress(t *testing.T) {
	for _, d := range []Discipline{FIFO, DRR, Deadline} {
		t.Run(string(d), func(t *testing.T) {
			q := mustNew(t, d, Config{Capacity: 64})
			const pushers, perPusher = 4, 200
			var popped, removed atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < pushers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perPusher; i++ {
						it := &Item{Session: uint64(p + 1), Tenant: string(rune('a' + p)), Cost: int64(1 + i%4)}
						if p == 0 && i%3 == 0 {
							it.Deadline = time.Now().Add(time.Duration(i) * time.Millisecond)
						}
						if err := q.Push(it); err != nil {
							return // closed under us: fine
						}
					}
				}(p)
			}
			var popWG sync.WaitGroup
			for c := 0; c < 2; c++ {
				popWG.Add(1)
				go func() {
					defer popWG.Done()
					for {
						if _, ok := q.Pop(context.Background()); !ok {
							return
						}
						popped.Add(1)
					}
				}()
			}
			// A remover racing the poppers, like the lease sweeper does.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					removed.Add(int64(len(q.Remove(2))))
					time.Sleep(time.Millisecond)
				}
			}()
			wg.Wait()
			q.Close()
			popWG.Wait()
			st := q.Stats()
			if got := popped.Load() + removed.Load(); got != int64(st.Pushed) {
				t.Fatalf("accounting: pushed %d, popped+removed %d", st.Pushed, got)
			}
			if st.Depth != 0 {
				t.Fatalf("drained queue depth = %d", st.Depth)
			}
		})
	}
}
