package sched

import "time"

// drrPolicy is deficit round-robin weighted fair queuing keyed by
// tenant: each tenant holds a private FIFO, and the policy cycles over
// tenants with pending work, granting quantum*weight credit per visit
// and serving a tenant while its accumulated credit covers the head
// item's cost. Tenants with larger weights therefore drain
// proportionally more service-demand per round, and a multi-op task
// never lets its owner exceed its share for long.
//
// A starvation guard bounds worst-case wait: an item queued longer than
// the guard is served next regardless of deficits (its cost is still
// charged, so a guarded tenant repays the advance in later rounds).
type drrPolicy struct {
	quantum int64
	guard   time.Duration

	byKey map[string]*drrTenant
	// ring holds tenants with pending items; idx is the tenant currently
	// inside its service quantum.
	ring []*drrTenant
	idx  int
}

type drrTenant struct {
	key     string
	weight  int
	deficit int64
	items   []*Item
	active  bool
	// credited marks that this tenant already received its quantum for
	// the current visit: DRR credits once per visit, then serves while
	// the deficit covers the head. Without it, the tenant under the ring
	// cursor would be re-credited on every pop and never yield.
	credited bool
}

func newDRRPolicy(quantum int64, guard time.Duration) *drrPolicy {
	return &drrPolicy{quantum: quantum, guard: guard, byKey: make(map[string]*drrTenant)}
}

func (p *drrPolicy) push(it *Item) {
	t, ok := p.byKey[it.Tenant]
	if !ok {
		t = &drrTenant{key: it.Tenant}
		p.byKey[it.Tenant] = t
	}
	t.weight = it.Weight // latest binding wins
	t.items = append(t.items, it)
	if !t.active {
		t.active = true
		p.ring = append(p.ring, t)
	}
}

// deactivate drops ring[i], resetting its deficit: an emptied tenant
// must not bank credit while idle (standard DRR).
func (p *drrPolicy) deactivate(i int) {
	t := p.ring[i]
	t.active = false
	t.deficit = 0
	t.credited = false
	p.ring = append(p.ring[:i], p.ring[i+1:]...)
	if p.idx > i {
		p.idx--
	}
	if len(p.ring) == 0 {
		p.idx = 0
	} else {
		p.idx %= len(p.ring)
	}
}

func (p *drrPolicy) pop(now time.Time) *Item {
	if len(p.ring) == 0 {
		return nil
	}
	if p.guard > 0 {
		if it := p.popStarved(now); it != nil {
			return it
		}
	}
	for {
		t := p.ring[p.idx]
		if len(t.items) == 0 {
			// Emptied out-of-band (Remove); drop from the ring.
			p.deactivate(p.idx)
			if len(p.ring) == 0 {
				return nil
			}
			continue
		}
		head := t.items[0]
		if !t.credited {
			t.deficit += p.quantum * int64(t.weight)
			t.credited = true
		}
		if t.deficit >= head.Cost {
			t.deficit -= head.Cost
			t.items = t.items[1:]
			if len(t.items) == 0 {
				p.deactivate(p.idx)
			}
			// idx stays: the tenant keeps its turn while credit lasts.
			return head
		}
		// Visit over: the banked deficit carries to the next round.
		t.credited = false
		p.idx = (p.idx + 1) % len(p.ring)
	}
}

// popStarved serves the oldest head item that has waited past the guard,
// if any. Cost is charged (deficit may go negative), so guarded service
// is an advance against the tenant's share, not free capacity.
func (p *drrPolicy) popStarved(now time.Time) *Item {
	besti := -1
	for i, t := range p.ring {
		if len(t.items) == 0 {
			continue
		}
		h := t.items[0]
		if now.Sub(h.Submitted) < p.guard {
			continue
		}
		if besti < 0 || h.seq < p.ring[besti].items[0].seq {
			besti = i
		}
	}
	if besti < 0 {
		return nil
	}
	t := p.ring[besti]
	it := t.items[0]
	t.items = t.items[1:]
	t.deficit -= it.Cost
	if len(t.items) == 0 {
		p.deactivate(besti)
	}
	return it
}

func (p *drrPolicy) remove(session uint64) []*Item {
	var out []*Item
	// Walk the ring backwards so deactivating emptied tenants does not
	// skip entries.
	for i := len(p.ring) - 1; i >= 0; i-- {
		t := p.ring[i]
		kept := t.items[:0]
		for _, it := range t.items {
			if it.Session == session {
				out = append(out, it)
			} else {
				kept = append(kept, it)
			}
		}
		for j := len(kept); j < len(t.items); j++ {
			t.items[j] = nil
		}
		t.items = kept
		if len(t.items) == 0 {
			p.deactivate(i)
		}
	}
	sortItemsBySeq(out)
	return out
}

func (p *drrPolicy) len() int {
	n := 0
	for _, t := range p.ring {
		n += len(t.items)
	}
	return n
}
