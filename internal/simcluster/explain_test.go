package simcluster

// End-to-end postmortem test: a real Remote Library <-> Device Manager
// pair runs a transfer-heavy task under full trace sampling, then the
// Explainer — pointed at both processes' debug endpoints exactly as
// `blastctl explain` would be — must reconstruct the flight. The wait
// breakdown has to account for the wall-clock latency the client
// measured (within 5%), and the verdict must name the stage that was
// engineered to dominate. A second test overflows a tiny span ring and
// checks the explicit partial-timeline warning.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/flightrec"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
)

// explainServers mounts the two debug endpoints the Explainer reads from
// each process. The remaining signals (logs, alerts, slo, flash) are
// soft misses, as with a process that does not serve them.
func explainServers(t *testing.T, mgr *manager.Manager, client *remote.Client, tracer *obs.Tracer) []string {
	t.Helper()
	mgrMux := http.NewServeMux()
	mgrMux.Handle("/debug/flight", mgr.FlightHandler())
	mgrMux.Handle("/debug/spans", mgr.SpanHandler())
	mgrSrv := httptest.NewServer(mgrMux)
	t.Cleanup(mgrSrv.Close)

	libMux := http.NewServeMux()
	libMux.Handle("/debug/flight", client.Flight().Handler())
	libMux.Handle("/debug/spans", tracer.Handler())
	libSrv := httptest.NewServer(libMux)
	t.Cleanup(libSrv.Close)
	return []string{mgrSrv.URL, libSrv.URL}
}

// waitComplete polls a recorder until the flight holds its terminal
// milestone — completion is recorded by the client's event machine just
// as Finish unblocks, so the test must not race it.
func waitComplete(t *testing.T, rec *flightrec.Recorder, trace obs.TraceID) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if f, ok := rec.FlightFor(trace); ok {
			for _, ev := range f.Events {
				if ev.Kind == flightrec.KindComplete {
					return
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("flight %s never recorded completion", trace)
}

func TestExplainEndToEnd(t *testing.T) {
	rig := newSLORig(t) // 0.05 GB/s PCIe: a 4 MiB transfer sleeps ~80ms

	tracer := obs.New(obs.Config{Component: "library", SampleRate: 1})
	client, err := remote.Dial(remote.Config{
		ClientName: "payments",
		Managers:   []string{rig.addr},
		Transport:  remote.TransportGRPC,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cctx, q, k := openLoopback(t, client)

	// Asymmetric copy task: a 4 KiB input makes the device write cheap,
	// while reading the full 4 MiB output buffer keeps the modelled
	// device->host transfer — part of the manager's execute loop — the
	// dominant latency contributor by an order of magnitude.
	const inBytes, outBytes = 4096, 4 << 20
	in, err := cctx.CreateBuffer(ocl.MemReadOnly, inBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cctx.CreateBuffer(ocl.MemWriteOnly, outBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Release()
	defer out.Release()
	for i, arg := range []any{in, out, int32(inBytes)} {
		if err := k.SetArg(i, arg); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	if _, err := q.EnqueueWriteBuffer(in, false, 0, make([]byte, inBytes), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, outBytes)
	if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	measured := time.Since(start)

	spans := tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("sampled task left no client spans")
	}
	trace := spans[0].Trace
	waitComplete(t, client.Flight(), trace)
	waitComplete(t, rig.mgr.Flight(), trace)

	ex := &flightrec.Explainer{Bases: explainServers(t, rig.mgr, client, tracer)}
	pm, err := ex.Explain(trace)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}

	// Both processes answered and both contributed a flight skeleton.
	for _, src := range pm.Sources {
		if src.Err != "" {
			t.Fatalf("source %s unreachable: %s", src.Base, src.Err)
		}
		if src.Flights == 0 {
			t.Fatalf("source %s (%s) contributed no flight", src.Base, src.Process)
		}
	}
	if len(pm.Timeline) == 0 {
		t.Fatal("postmortem has an empty timeline")
	}

	// The client-observed total must match what the client measured on
	// its own clock: within 5%, per the acceptance bar.
	if pm.Total <= 0 {
		t.Fatalf("postmortem total %v, want > 0", pm.Total)
	}
	diff := measured - pm.Total
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(measured) {
		t.Fatalf("postmortem total %v vs measured %v: off by %v (> 5%%)", pm.Total, measured, diff)
	}

	// The stages plus the unattributed remainder are the breakdown of
	// the total — so they too must sum to the measured latency within 5%.
	var attributed time.Duration
	for _, s := range pm.Stages {
		attributed += s.Dur
	}
	sum := attributed + pm.Unattributed
	if d := sum - measured; d > time.Duration(0.05*float64(measured)) || -d > time.Duration(0.05*float64(measured)) {
		t.Fatalf("stage sum %v (+%v unattributed) vs measured %v: outside 5%%", attributed, pm.Unattributed, measured)
	}

	// Verdict: the 4 MiB device->host read dominates, and it lives in
	// the execute stage.
	if !strings.HasPrefix(pm.Verdict, "execute dominated") {
		t.Fatalf("verdict %q, want execute dominated", pm.Verdict)
	}
	var execDur time.Duration
	for _, s := range pm.Stages {
		if s.Name == "execute" {
			execDur = s.Dur
		}
	}
	if float64(execDur) < 0.5*float64(pm.Total) {
		t.Fatalf("execute stage %v is under half the %v total", execDur, pm.Total)
	}

	// No rings overflowed, so the rendered report must carry no partial
	// warning — and must state the verdict.
	var buf bytes.Buffer
	pm.Render(&buf)
	if strings.Contains(buf.String(), "WARNING") {
		t.Fatalf("unexpected partial warning:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "verdict: execute dominated") {
		t.Fatalf("rendered report lacks the verdict:\n%s", buf.String())
	}
}

func TestExplainPartialSpanWarning(t *testing.T) {
	// A manager with a tiny span ring: later tasks evict the first
	// task's spans, and the postmortem must say so instead of silently
	// rendering a gap-ridden timeline.
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	mgr := manager.New(manager.Config{Node: "evict", DeviceID: "evict-A", TraceRing: 8}, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); mgr.Close() }()

	tracer := obs.New(obs.Config{Component: "library", SampleRate: 1})
	client, err := remote.Dial(remote.Config{
		ClientName: "payments",
		Managers:   []string{addr},
		Transport:  remote.TransportGRPC,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cctx, q, k := openLoopback(t, client)

	runCopyTask(t, cctx, q, k, 4096)
	first := tracer.Spans()[0].Trace
	waitComplete(t, client.Flight(), first)

	// Each later task records several manager spans into the 8-slot
	// ring; a dozen tasks guarantee the first trace has been evicted.
	for i := 0; i < 12; i++ {
		runCopyTask(t, cctx, q, k, 4096)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := mgr.Tracer().EvictedFor(first); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("manager ring never evicted the first trace's spans")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ex := &flightrec.Explainer{Bases: explainServers(t, mgr, client, tracer)}
	pm, err := ex.Explain(first)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if pm.SpansEvicted == 0 {
		t.Fatal("postmortem reports no evicted spans after a forced overflow")
	}
	var buf bytes.Buffer
	pm.Render(&buf)
	if !strings.Contains(buf.String(), "spans evicted, timeline partial") {
		t.Fatalf("rendered report lacks the partial warning:\n%s", buf.String())
	}
}
