package simcluster

import (
	"fmt"
	"sort"
	"time"

	"blastfunction/internal/model"
	"blastfunction/internal/registry"
	"blastfunction/internal/sim"
)

// NodeSpec is one testbed node hosting one board.
type NodeSpec struct {
	// Name is the node name ("A", "B", "C").
	Name string
	// Cost is the node's cost model (the master node is slower).
	Cost *model.CostModel
}

// Testbed returns the paper's three-node deployment: master node A (Xeon,
// PCIe Gen2) plus worker nodes B and C (i7, PCIe Gen3), each with one
// DE5a-Net board.
func Testbed() []NodeSpec {
	return []NodeSpec{
		{Name: "A", Cost: model.MasterNode()},
		{Name: "B", Cost: model.WorkerNode()},
		{Name: "C", Cost: model.WorkerNode()},
	}
}

// FunctionSpec is one deployed serverless function under load.
type FunctionSpec struct {
	// Name is the function name ("sobel-1" ... "sobel-5").
	Name string
	// Workload is the per-request profile.
	Workload Workload
	// TargetRPS is the hey rate limit (Table I).
	TargetRPS float64
	// Connections is the number of closed-loop connections; the paper
	// uses one per function.
	Connections int
	// Node pins the function (Native scenario); empty lets Algorithm 1
	// place it.
	Node string
}

// Experiment describes one Table II/III/IV run.
type Experiment struct {
	// Nodes is the testbed.
	Nodes []NodeSpec
	// Functions are the deployed functions with their loads.
	Functions []FunctionSpec
	// Transport is the BlastFunction data path (TransportShm in the
	// paper's runs) or TransportNative for the baseline.
	Transport model.Transport
	// StaggerDelay separates function deployments so Algorithm 1 sees the
	// load of earlier functions — the paper deploys and ramps functions
	// through the live registry the same way. Zero deploys all at once.
	StaggerDelay time.Duration
	// Warmup excludes the initial ramp from measurement.
	Warmup time.Duration
	// Measure is the measured load interval.
	Measure time.Duration

	// Scheduling selects the Device Manager queue discipline; the paper's
	// system uses FIFO. RoundRobin exists for the scheduling ablation.
	Scheduling Discipline
	// OverlapDMA enables the pipelining ablation: each board gets a
	// separate DMA engine so one task's transfers overlap another task's
	// kernel (the paper's board executes one operation at a time).
	OverlapDMA bool
	// SpaceSharing enables the paper's future-work mode: each board hosts
	// up to two concurrently resident accelerators (partial
	// reconfiguration), removing the accelerator-affinity constraint from
	// allocation at the cost of slower per-design kernels (the area split
	// shrinks each design; see SpaceSharePenalty).
	SpaceSharing bool
	// Order and Filters override Algorithm 1's default policy for the
	// allocation ablation; nil selects registry.DefaultPolicy.
	Order   []registry.Criterion
	Filters []registry.Filter
}

// Discipline is the central-queue service discipline.
type Discipline int

// Queue disciplines.
const (
	// FIFO serves tasks strictly in arrival order (the paper's design).
	FIFO Discipline = iota
	// RoundRobin cycles across clients' private queues.
	RoundRobin
)

// FunctionResult is one row of the per-function tables.
type FunctionResult struct {
	Function string
	Node     string
	// Utilization is the share of the measurement window the function
	// occupied its board (the paper's per-function FPGA time
	// utilization).
	Utilization float64
	// AvgLatency is the mean end-to-end request latency.
	AvgLatency time.Duration
	// Processed is the achieved request rate; Target the configured one.
	Processed float64
	Target    float64
}

// Result is one experiment's outcome.
type Result struct {
	Functions []FunctionResult
	// TotalUtilization sums per-function utilizations (the paper's
	// "overall maximum 300%" scale for three boards).
	TotalUtilization float64
	// AvgLatency is the request-weighted mean latency.
	AvgLatency time.Duration
	// Processed and Target are aggregate request rates.
	Processed float64
	Target    float64
}

// boardQueue abstracts the central-queue discipline (FIFO vs the
// round-robin ablation).
type boardQueue interface {
	Enqueue(key string, service time.Duration, done func(wait, service time.Duration))
	BusyTime() time.Duration
	QueueLen() int
}

// fifoQueue adapts sim.Server (global FIFO, the paper's discipline).
type fifoQueue struct{ *sim.Server }

// Enqueue implements boardQueue, discarding the client key.
func (f fifoQueue) Enqueue(_ string, service time.Duration, done func(wait, service time.Duration)) {
	f.Server.Enqueue(service, done)
}

// SpaceSharePenalty scales kernel service times when two designs share
// the fabric: each gets roughly half the logic, so the unrolled pipelines
// shrink. 1.6x is in line with halving the Spector designs' parallelism.
const SpaceSharePenalty = 1.6

// maxResidentDesigns bounds concurrently resident accelerators per board
// in space-sharing mode (two partial-reconfiguration regions).
const maxResidentDesigns = 2

// board is the DES stand-in for a Device Manager + FPGA.
type board struct {
	id     string
	node   string
	cost   *model.CostModel
	server boardQueue

	// Space-sharing mode: one sub-server per resident accelerator, each
	// running at SpaceSharePenalty. nil when time-sharing.
	slots    map[string]boardQueue
	makeSlot func() boardQueue

	// Pipelining ablation: a separate DMA engine. nil when the board
	// serializes transfers and kernels (the paper's design).
	dma boardQueue

	connected int
	// busy history for the utilization metric Algorithm 1 consumes:
	// samples of cumulative busy time, appended every second.
	samples []busySample
}

type busySample struct {
	at   time.Duration
	busy time.Duration
}

// queueFor returns the queue serving the given accelerator: the single
// central queue when time-sharing, the accelerator's slot (created on
// demand, up to maxResidentDesigns) when space-sharing.
func (b *board) queueFor(accelerator string) (boardQueue, error) {
	if b.slots == nil {
		return b.server, nil
	}
	if q, ok := b.slots[accelerator]; ok {
		return q, nil
	}
	if len(b.slots) >= maxResidentDesigns {
		return nil, fmt.Errorf("simcluster: board %s has no free region for %q", b.id, accelerator)
	}
	q := b.makeSlot()
	b.slots[accelerator] = q
	return q, nil
}

// busyTime sums device busy time across the board's queues.
func (b *board) busyTime() time.Duration {
	var total time.Duration
	if b.dma != nil {
		total += b.dma.BusyTime()
	}
	if b.slots == nil {
		return total + b.server.BusyTime()
	}
	for _, q := range b.slots {
		total += q.BusyTime()
	}
	return total
}

// queueLen sums waiting tasks across the board's queues.
func (b *board) queueLen() int {
	if b.slots == nil {
		return b.server.QueueLen()
	}
	n := 0
	for _, q := range b.slots {
		n += q.QueueLen()
	}
	return n
}

// utilization returns the busy fraction over the trailing window.
func (b *board) utilization(now, window time.Duration) float64 {
	if len(b.samples) == 0 {
		return 0
	}
	cur := busySample{at: now, busy: b.busyTime()}
	// Find the earliest sample inside the window.
	lo := sort.Search(len(b.samples), func(i int) bool {
		return b.samples[i].at >= now-window
	})
	var prev busySample
	if lo < len(b.samples) {
		prev = b.samples[lo]
	}
	dt := cur.at - prev.at
	if dt <= 0 {
		return 0
	}
	return float64(cur.busy-prev.busy) / float64(dt)
}

// simMetrics adapts the boards to the registry's MetricsSource.
type simMetrics struct {
	engine *sim.Engine
	boards map[string]*board
	window time.Duration
}

// DeviceMetrics implements registry.MetricsSource.
func (m *simMetrics) DeviceMetrics(deviceID, node string) (registry.DeviceMetrics, bool) {
	b, ok := m.boards[deviceID]
	if !ok {
		return registry.DeviceMetrics{}, false
	}
	return registry.DeviceMetrics{
		Utilization: b.utilization(m.engine.Now(), m.window),
		Connected:   float64(b.connected),
		QueueDepth:  float64(b.queueLen()),
	}, true
}

// functionState is one function's generator and accounting.
type functionState struct {
	spec      FunctionSpec
	transport model.Transport
	board     *board

	issuedInWindow    int
	completedInWindow int
	latencySum        time.Duration
	busyInWindow      time.Duration
}

// Run executes the experiment and reports per-function and aggregate
// results.
func Run(exp Experiment) (*Result, error) {
	if len(exp.Nodes) == 0 || len(exp.Functions) == 0 {
		return nil, fmt.Errorf("simcluster: experiment needs nodes and functions")
	}
	if exp.Measure <= 0 {
		exp.Measure = 60 * time.Second
	}
	if exp.Warmup <= 0 {
		exp.Warmup = 10 * time.Second
	}

	engine := sim.NewEngine()
	boards := make(map[string]*board, len(exp.Nodes))
	var boardList []*board
	for _, n := range exp.Nodes {
		var q boardQueue
		if exp.Scheduling == RoundRobin {
			q = engine.NewRRServer()
		} else {
			q = fifoQueue{engine.NewServer()}
		}
		b := &board{
			id:     "fpga-" + n.Name,
			node:   n.Name,
			cost:   n.Cost,
			server: q,
		}
		if exp.SpaceSharing {
			b.slots = make(map[string]boardQueue, maxResidentDesigns)
			b.makeSlot = func() boardQueue { return fifoQueue{engine.NewServer()} }
		}
		if exp.OverlapDMA {
			b.dma = fifoQueue{engine.NewServer()}
		}
		boards[b.id] = b
		boardList = append(boardList, b)
	}

	// Metrics sampling every second, like the Prometheus scrape loop.
	var sample func()
	sample = func() {
		for _, b := range boardList {
			b.samples = append(b.samples, busySample{at: engine.Now(), busy: b.busyTime()})
		}
		engine.After(time.Second, sample)
	}
	engine.At(0, sample)

	// The real Accelerators Registry performs the placements.
	src := &simMetrics{engine: engine, boards: boards, window: 10 * time.Second}
	policy := registry.DefaultPolicy(src)
	if exp.Order != nil {
		policy.Order = exp.Order
	}
	if exp.Filters != nil {
		policy.Filters = exp.Filters
	}
	reg, err := registry.New(policy)
	if err != nil {
		return nil, err
	}
	for _, b := range boardList {
		if err := reg.RegisterDevice(registry.Device{
			ID: b.id, Node: b.node,
			Vendor: "Intel(R) Corporation", Platform: "Intel(R) FPGA SDK for OpenCL(TM)",
		}); err != nil {
			return nil, err
		}
	}

	lastDeploy := time.Duration(0)
	states := make([]*functionState, len(exp.Functions))
	statesByUID := make(map[string]*functionState, len(exp.Functions))
	var allocErr error
	for i, fn := range exp.Functions {
		if fn.Connections <= 0 {
			fn.Connections = 1
		}
		st := &functionState{spec: fn, transport: exp.Transport}
		states[i] = st
		deployAt := time.Duration(i) * exp.StaggerDelay
		if deployAt > lastDeploy {
			lastDeploy = deployAt
		}
		query := registry.DeviceQuery{Vendor: "Intel(R) Corporation", Accelerator: fn.Workload.Name}
		if exp.SpaceSharing {
			// Space-sharing lifts the accelerator-affinity constraint: any
			// board can host the design in a free region.
			query.Accelerator = ""
		}
		if err := reg.RegisterFunction(registry.Function{
			Name:      fn.Name,
			Query:     query,
			Bitstream: fn.Workload.Name,
		}); err != nil {
			return nil, err
		}
		i := i
		engine.At(deployAt, func() {
			fnSpec := states[i].spec
			var chosen *board
			if fnSpec.Node != "" {
				for _, b := range boardList {
					if b.node == fnSpec.Node {
						chosen = b
						break
					}
				}
				if chosen == nil {
					allocErr = fmt.Errorf("simcluster: function %q pinned to unknown node %q", fnSpec.Name, fnSpec.Node)
					return
				}
			} else {
				uid := fmt.Sprintf("uid-%d", i)
				alloc, err := reg.Allocate(registry.AllocRequest{
					InstanceUID:  uid,
					InstanceName: fnSpec.Name,
					Function:     fnSpec.Name,
				})
				if err != nil {
					allocErr = fmt.Errorf("simcluster: allocating %q: %w", fnSpec.Name, err)
					return
				}
				chosen = boards[alloc.Device.ID]
				statesByUID[uid] = states[i]
				// Migrate displaced instances: the controller would replace
				// them through the orchestrator (create-before-delete) and
				// re-run the allocation; here the generator simply switches
				// boards for its subsequent requests.
				for _, displaced := range alloc.Displaced {
					moved := statesByUID[displaced]
					if moved == nil {
						continue
					}
					reg.Release(displaced)
					realloc, err := reg.Allocate(registry.AllocRequest{
						InstanceUID:  displaced,
						InstanceName: moved.spec.Name,
						Function:     moved.spec.Name,
					})
					if err != nil {
						allocErr = fmt.Errorf("simcluster: migrating %q: %w", moved.spec.Name, err)
						return
					}
					moved.board.connected -= moved.spec.Connections
					moved.board = boards[realloc.Device.ID]
					moved.board.connected += moved.spec.Connections
				}
			}
			states[i].board = chosen
			chosen.connected += fnSpec.Connections
			startGenerators(engine, states[i], exp)
		})
	}

	measureStart := lastDeploy + exp.Warmup
	end := measureStart + exp.Measure
	engine.Run(end)
	if allocErr != nil {
		return nil, allocErr
	}

	// Assemble results.
	res := &Result{}
	var latWeighted time.Duration
	for _, st := range states {
		fr := FunctionResult{
			Function:    st.spec.Name,
			Utilization: float64(st.busyInWindow) / float64(exp.Measure),
			Processed:   float64(st.completedInWindow) / exp.Measure.Seconds(),
			Target:      st.spec.TargetRPS,
		}
		if st.board != nil {
			fr.Node = st.board.node
		}
		if st.completedInWindow > 0 {
			fr.AvgLatency = st.latencySum / time.Duration(st.completedInWindow)
		}
		res.Functions = append(res.Functions, fr)
		res.TotalUtilization += fr.Utilization
		res.Processed += fr.Processed
		res.Target += fr.Target
		latWeighted += time.Duration(st.completedInWindow) * fr.AvgLatency
	}
	if res.Processed > 0 {
		res.AvgLatency = latWeighted / time.Duration(res.Processed*exp.Measure.Seconds())
	}
	return res, nil
}

// startGenerators launches the function's closed-loop connections. Each
// connection is hey with a rate limit: the next request goes out at the
// later of the previous completion and the next rate slot; a saturated
// connection reschedules from "now" rather than building a backlog.
func startGenerators(engine *sim.Engine, st *functionState, exp Experiment) {
	perConn := st.spec.TargetRPS / float64(st.spec.Connections)
	var interval time.Duration
	if perConn > 0 {
		interval = time.Duration(float64(time.Second) / perConn)
	}
	measureStart := time.Duration(len(exp.Functions)-1)*exp.StaggerDelay + exp.Warmup
	measureEnd := measureStart + exp.Measure

	for conn := 0; conn < st.spec.Connections; conn++ {
		var issue func()
		// Deterministic per-connection phase offset. Without it, functions
		// with harmonically related rates fire in lockstep forever and
		// every request of the slower function queues behind the faster
		// one — an artifact real deployments don't exhibit.
		offset := phaseOffset(st.spec.Name, conn, interval)
		nextSlot := engine.Now() + offset
		// Deterministic LCG for +-8% inter-arrival jitter: closed loops
		// with identical service times re-lock phases after any collision;
		// real HTTP load has natural jitter that prevents it.
		rng := uint64(offset) | 1
		jitter := func() time.Duration {
			if interval <= 0 {
				return 0
			}
			rng = rng*6364136223846793005 + 1442695040888963407
			span := int64(interval) / 25 * 4 // 16% total width
			if span <= 0 {
				return 0
			}
			return time.Duration(int64(rng>>33)%span - span/2)
		}
		issue = func() {
			if engine.Now() >= measureEnd {
				return
			}
			t0 := engine.Now()
			measured := t0 >= measureStart
			if measured {
				st.issuedInWindow++
			}
			cost := st.board.cost
			// Serverless path: gateway + function runtime.
			engine.After(HTTPOverhead(cost), func() {
				runTasks(engine, st, 0, t0, measured, func() {
					if measured && engine.Now() <= measureEnd {
						st.completedInWindow++
						st.latencySum += engine.Now() - t0
					}
					// Closed loop with rate limit.
					nextSlot += interval + jitter()
					if nextSlot < engine.Now() {
						nextSlot = engine.Now()
					}
					engine.At(nextSlot, issue)
				})
			})
		}
		engine.At(nextSlot, issue)
	}
}

// phaseOffset spreads generator start times deterministically inside one
// rate interval, seeded by the function name and connection index.
func phaseOffset(name string, conn int, interval time.Duration) time.Duration {
	h := uint64(1469598103934665603) // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(conn)
	h *= 1099511628211
	span := interval
	if span <= 0 || span > 50*time.Millisecond {
		span = 50 * time.Millisecond
	}
	return time.Duration(h % uint64(span))
}

// runTasks executes the request's tasks sequentially: transport overhead
// as host-side delay, then the board's FIFO queue for the device time.
func runTasks(engine *sim.Engine, st *functionState, idx int, t0 time.Duration, measured bool, done func()) {
	if idx >= len(st.spec.Workload.Tasks) {
		done()
		return
	}
	task := st.spec.Workload.Tasks[idx]
	cost := st.board.cost
	overhead := cost.ControlOverhead(st.transport, task.Ops) + cost.DataOverhead(st.transport, task.HostBytes)
	engine.After(overhead, func() {
		queue, err := st.board.queueFor(st.spec.Workload.Name)
		if err != nil {
			// No free region: drop the request (counts as unprocessed).
			done()
			return
		}
		finish := func(extraBusy time.Duration) func(wait, service time.Duration) {
			return func(wait, service time.Duration) {
				if measured {
					st.busyInWindow += service + extraBusy
				}
				runTasks(engine, st, idx+1, t0, measured, done)
			}
		}
		service := task.Device(cost)
		if st.board.slots != nil {
			service = time.Duration(float64(service) * SpaceSharePenalty)
		}
		if st.board.dma != nil && task.Split != nil {
			// Pipelining ablation: the DMA engine moves data while the
			// kernel engine computes another task.
			dmaTime, kernelTime := task.Split(cost)
			st.board.dma.Enqueue(st.spec.Name, dmaTime, func(_, dmaService time.Duration) {
				if kernelTime <= 0 {
					finish(0)(0, dmaService)
					return
				}
				queue.Enqueue(st.spec.Name, kernelTime, finish(dmaService))
			})
			return
		}
		queue.Enqueue(st.spec.Name, service, finish(0))
	})
}
