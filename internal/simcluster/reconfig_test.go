package simcluster

import "testing"

// TestReconfigStormExperiment runs the churn DES at the default scale and
// checks the tentpole's headline claim both ways: batched flash windows
// beat naive per-allocation flipping on tail latency AND on total
// reconfiguration time, with each batched window amortized over several
// same-family tenants.
func TestReconfigStormExperiment(t *testing.T) {
	naive, err := RunReconfigStorm(ReconfigConfig{})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunReconfigStorm(ReconfigConfig{Batched: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("naive:   p50=%.2fms p99=%.2fms reconfigs=%d (%.0fs) util=%.2f",
		naive.P50Ms, naive.P99Ms, naive.Reconfigs, naive.ReconfigSeconds, naive.MeanUtil)
	t.Logf("batched: p50=%.2fms p99=%.2fms reconfigs=%d (%.0fs) riding=%.1f/window util=%.2f",
		batched.P50Ms, batched.P99Ms, batched.Reconfigs, batched.ReconfigSeconds,
		batched.TenantsPerWindow, batched.MeanUtil)

	if batched.P99Ms >= naive.P99Ms {
		t.Fatalf("batched p99 %.2fms did not beat naive %.2fms", batched.P99Ms, naive.P99Ms)
	}
	if batched.ReconfigSeconds >= naive.ReconfigSeconds {
		t.Fatalf("batched reconfig time %.0fs did not beat naive %.0fs",
			batched.ReconfigSeconds, naive.ReconfigSeconds)
	}
	if batched.Reconfigs == 0 {
		t.Fatal("batched arm never flashed — cold boards must be programmed")
	}
	if batched.TenantsPerWindow < 2 {
		t.Fatalf("tenants per window = %.1f — windows are not amortizing", batched.TenantsPerWindow)
	}
	// Both arms see the same arrival stream; only placement differs.
	if naive.Arrivals != batched.Arrivals {
		t.Fatalf("arrival streams diverged: %d vs %d", naive.Arrivals, batched.Arrivals)
	}
	if naive.Completed == 0 || batched.Completed == 0 {
		t.Fatal("no completed requests measured")
	}

	// Determinism: the same config reproduces the same outcome.
	again, err := RunReconfigStorm(ReconfigConfig{Batched: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.P99Ms != batched.P99Ms || again.Reconfigs != batched.Reconfigs {
		t.Fatalf("experiment not deterministic: %+v vs %+v", again, batched)
	}

	// Accels > Boards is rejected, not silently mis-simulated.
	if _, err := RunReconfigStorm(ReconfigConfig{Boards: 4, Accels: 8}); err == nil {
		t.Fatal("Accels > Boards must be rejected")
	}
}
