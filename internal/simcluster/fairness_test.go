package simcluster

import (
	"testing"
	"time"
)

// TestFairnessAblation pins the pure-simulation prediction: under strict
// FIFO a 16-op tenant sharing a board with a 1-op tenant takes almost
// all device time (closed loop serves equal TASK counts, so occupancy
// splits 16:1), while per-tenant fair queuing at op granularity splits
// it evenly.
func TestFairnessAblation(t *testing.T) {
	fifoLight, fairLight := FairnessAblation(16, 1, time.Millisecond, 16, 4*time.Second)
	t.Logf("ablation light share: fifo=%.3f fair=%.3f", fifoLight, fairLight)
	if fifoLight > 0.15 {
		t.Errorf("fifo light share = %.3f, want <= 0.15 (starved minority)", fifoLight)
	}
	if fairLight < 0.25 {
		t.Errorf("fair light share = %.3f, want >= 0.25 (within 2x of equal split)", fairLight)
	}
	if fairLight <= fifoLight {
		t.Errorf("fair share %.3f not above fifo share %.3f", fairLight, fifoLight)
	}
}

// TestFairnessSkewWorkload runs the same two-tenant skew workload on the
// REAL Device Manager — RPC transport, session handshake, central queue,
// simulated board — under fifo and then drr, and asserts the ordering
// the ablation predicts: drr holds the light tenant's occupancy within
// 2x of its equal-weight share while fifo starves it.
func TestFairnessSkewWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock fairness experiment; skipped in -short")
	}
	fifo, err := RunFairness(FairnessConfig{Discipline: "fifo"})
	if err != nil {
		t.Fatalf("fifo run: %v", err)
	}
	drr, err := RunFairness(FairnessConfig{Discipline: "drr"})
	if err != nil {
		t.Fatalf("drr run: %v", err)
	}
	t.Logf("fifo: heavy %d tasks %.3f share, light %d tasks %.3f share (max wait %v)",
		fifo.Heavy.Tasks, fifo.Heavy.Share, fifo.Light.Tasks, fifo.Light.Share, fifo.Light.MaxWait)
	t.Logf("drr:  heavy %d tasks %.3f share, light %d tasks %.3f share (max wait %v)",
		drr.Heavy.Tasks, drr.Heavy.Share, drr.Light.Tasks, drr.Light.Share, drr.Light.MaxWait)
	if fifo.Light.Share > 0.15 {
		t.Errorf("fifo light share = %.3f, want <= 0.15 (fifo should starve the minority tenant)", fifo.Light.Share)
	}
	if drr.Light.Share < 0.25 {
		t.Errorf("drr light share = %.3f, want >= 0.25 (within 2x of equal weight 0.5)", drr.Light.Share)
	}
	if drr.Light.Share <= fifo.Light.Share {
		t.Errorf("drr light share %.3f not above fifo's %.3f — live run contradicts the ablation ordering",
			drr.Light.Share, fifo.Light.Share)
	}
}
