package simcluster

// Chaos tests: kill or wedge one end of the Remote Library <-> Device
// Manager pair mid-task and assert bounded-time recovery — pending events
// fail with the typed rpc.ErrManagerDown sentinel instead of hanging,
// lease expiry reclaims a wedged client's board resources, and nothing
// leaks goroutines. Faults are injected with rpc.FaultConn so the
// schedules are deterministic.

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/metrics"
	"blastfunction/internal/model"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
)

// chaosRig is one manager over real TCP, closed explicitly (not via
// t.Cleanup) so tests can assert goroutine counts after teardown.
type chaosRig struct {
	mgr   *manager.Manager
	srv   *rpc.Server
	addr  string
	board *fpga.Board
}

func newChaosRig(t *testing.T, cfg manager.Config) *chaosRig {
	t.Helper()
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), accel.Catalog())
	if cfg.Node == "" {
		cfg.Node = "chaosnode"
	}
	mgr := manager.New(cfg, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return &chaosRig{mgr: mgr, srv: srv, addr: addr, board: board}
}

func (r *chaosRig) close() {
	r.srv.Close()
	r.mgr.Close()
}

// dialChaos connects a Remote Library client through a FaultConn.
func dialChaos(t *testing.T, rig *chaosRig) (*remote.Client, *rpc.FaultConn) {
	t.Helper()
	var fc *rpc.FaultConn
	client, err := remote.Dial(remote.Config{
		ClientName:  "chaos-client",
		Managers:    []string{rig.addr},
		Transport:   remote.TransportGRPC,
		CallTimeout: 2 * time.Second,
		DialConn: func(addr string) (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			fc = rpc.InjectFaults(raw, rpc.Faults{})
			return fc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return client, fc
}

// openLoopback builds context, queue and the loopback copy kernel.
func openLoopback(t *testing.T, client ocl.Client) (ocl.Context, ocl.CommandQueue, ocl.Kernel) {
	t.Helper()
	platforms, err := client.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := platforms[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil || len(devs) == 0 {
		t.Fatalf("devices: %v (%d)", err, len(devs))
	}
	ctx, err := client.CreateContext(devs[:1])
	if err != nil {
		t.Fatal(err)
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ctx.CreateProgramWithBinary(devs[0], accel.LoopbackBitstream().Binary())
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("copy")
	if err != nil {
		t.Fatal(err)
	}
	return ctx, q, k
}

// goroutineWatch asserts leak-freedom through the same runtime collector
// the production binaries export as bf_runtime_goroutines — the series
// the GoroutineLeak alert rule watches — instead of hand-rolled
// runtime.NumGoroutine polling.
type goroutineWatch struct {
	col  *obs.RuntimeCollector
	base int
}

// watchGoroutines snapshots the current goroutine count as the baseline.
func watchGoroutines() *goroutineWatch {
	col := obs.NewRuntimeCollector(metrics.NewRegistry(), metrics.Labels{"component": "chaos"})
	return &goroutineWatch{col: col, base: col.Goroutines()}
}

// waitDrained asserts the collector's goroutine gauge drains back to
// around the baseline, catching leaked readers, workers, sweepers or
// heartbeat loops.
func (g *goroutineWatch) waitDrained(t *testing.T, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.col.SampleOnce()
		if g.col.Goroutines() <= g.base+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d still running (baseline %d, slack %d)\n%s",
		g.col.Goroutines(), g.base, slack, buf[:n])
}

// TestChaosManagerKilledMidTaskFailsPendingEvents wedges the uplink so a
// flushed task never reaches the manager, then kills the manager: every
// pending event must fail within a bounded time and match
// rpc.ErrManagerDown, and teardown must not leak goroutines.
func TestChaosManagerKilledMidTaskFailsPendingEvents(t *testing.T) {
	gw := watchGoroutines()
	rig := newChaosRig(t, manager.Config{DeviceID: "chaos-A"})
	client, fc := dialChaos(t, rig)
	ctx, q, k := openLoopback(t, client)

	payload := []byte("chaos payload")
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, arg := range []any{in, out, int32(len(payload))} {
		if err := k.SetArg(i, arg); err != nil {
			t.Fatal(err)
		}
	}

	// Wedge the uplink: from here on, enqueues and the flush vanish on the
	// wire, so the task stays in flight from the client's point of view.
	fc.DropWrites(true)
	evW, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	evK, err := q.EnqueueTask(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	evR, err := q.EnqueueReadBuffer(out, false, 0, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	finishErr := make(chan error, 1)
	go func() { finishErr <- q.Finish() }()
	time.Sleep(50 * time.Millisecond) // let Finish block on the events

	killed := time.Now()
	rig.close() // the manager dies with the task in flight

	select {
	case err := <-finishErr:
		if !errors.Is(err, rpc.ErrManagerDown) {
			t.Fatalf("Finish error = %v, want rpc.ErrManagerDown", err)
		}
		if !errors.Is(err, ocl.ErrDeviceNotAvailable) {
			t.Fatalf("Finish error = %v, want CL_DEVICE_NOT_AVAILABLE status", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending task did not fail within 5s of the manager dying")
	}
	if elapsed := time.Since(killed); elapsed > 5*time.Second {
		t.Fatalf("recovery took %v", elapsed)
	}
	for _, ev := range []ocl.Event{evW, evK, evR} {
		if err := ev.Wait(); !errors.Is(err, rpc.ErrManagerDown) {
			t.Fatalf("event error = %v, want rpc.ErrManagerDown", err)
		}
	}

	client.Close()
	gw.waitDrained(t, 3)
}

// TestChaosLeaseExpiryReclaimsWedgedClient wedges a client's uplink (TCP
// stays open, heartbeats stop arriving) and asserts the manager's lease
// sweeper reclaims the session within a bounded time: board buffers are
// freed, the session is gone, and the deferred-ack operation receives a
// terminal OpFailed while the downlink can still carry it.
func TestChaosLeaseExpiryReclaimsWedgedClient(t *testing.T) {
	gw := watchGoroutines()
	lease := 300 * time.Millisecond
	rig := newChaosRig(t, manager.Config{DeviceID: "chaos-B", LeaseDuration: lease})
	client, fc := dialChaos(t, rig)
	ctx, q, _ := openLoopback(t, client)

	payload := make([]byte, 4096)
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rig.board.Allocated() == 0 {
		t.Fatal("board reports no allocation after CreateBuffer")
	}
	// Enqueue without flushing: the manager records the op with its
	// acknowledgement deferred to flush time (batch protocol), which is
	// exactly the state expiry must clean up.
	ev, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the enqueue reach the manager
	if rig.mgr.Sessions() != 1 {
		t.Fatalf("sessions = %d before wedge", rig.mgr.Sessions())
	}

	fc.DropWrites(true) // wedged: heartbeats stop, connection stays open

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rig.mgr.Sessions() == 0 && rig.board.Allocated() == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := rig.mgr.Sessions(); n != 0 {
		t.Fatalf("sessions = %d, lease never expired", n)
	}
	if alloc := rig.board.Allocated(); alloc != 0 {
		t.Fatalf("board still holds %d bytes after lease expiry", alloc)
	}

	// The deferred-ack op was terminated with OpFailed over the live
	// downlink before the manager closed the connection.
	evErr := make(chan error, 1)
	go func() { evErr <- ev.Wait() }()
	select {
	case err := <-evErr:
		if err == nil {
			t.Fatal("wedged op completed successfully")
		}
		if !strings.Contains(err.Error(), "lease expired") {
			t.Fatalf("event error = %v, want the lease-expiry OpFailed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wedged op never terminated")
	}

	client.Close()
	rig.close()
	gw.waitDrained(t, 3)
}
