package simcluster

// End-to-end ops-plane tests: the alert engine must notice a faulted
// Device Manager through the scrape pipeline (firing after the rule's
// `for`-duration, resolving after recovery), and one traced task must
// leave correlated structured log events in more than one process's
// ring, retrievable through the same fetch/merge path `blastctl logs
// -trace` uses.

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/alert"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/metrics"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
)

// faultListener wraps every accepted connection in an rpc.FaultConn and
// lets the test blackhole all of them at once — the canonical wedged
// metrics endpoint: TCP accepts, responses never arrive.
type faultListener struct {
	net.Listener

	mu        sync.Mutex
	conns     []*rpc.FaultConn
	blackhole bool
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := rpc.InjectFaults(c, rpc.Faults{})
	l.mu.Lock()
	fc.DropWrites(l.blackhole)
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// SetBlackhole toggles write-dropping on every live and future conn.
func (l *faultListener) SetBlackhole(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.blackhole = on
	for _, fc := range l.conns {
		fc.DropWrites(on)
	}
}

// TestScrapeAlertFiresAndResolves drives the full detection pipeline
// against a manager whose metrics endpoint wedges mid-run: scraper →
// bf_scrape_up series → ScrapeDown rule (10s For) → firing gauge and
// logged transition → resolution once the endpoint answers again.
func TestScrapeAlertFiresAndResolves(t *testing.T) {
	rig := newChaosRig(t, manager.Config{DeviceID: "ops-A"})
	defer rig.close()

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &faultListener{Listener: raw}
	metricsSrv := &http.Server{Handler: rig.mgr.MetricsHandler()}
	go metricsSrv.Serve(fl)
	defer metricsSrv.Close()

	// Simulated time drives scrape timestamps and rule evaluation; real
	// time only bounds the wedged scrapes' timeouts.
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	db := metrics.NewTSDB(time.Minute)
	scraper := metrics.NewScraper(db, time.Second)
	scraper.Timeout = 200 * time.Millisecond
	scraper.Now = func() time.Time { return now }
	scraper.AddTarget("fpga-ops-A", "http://"+raw.Addr().String()+"/metrics")

	log := logx.New(logx.Config{Component: "registry"})
	scraper.OnHealth = func(target string, up bool, err error) {
		if up {
			log.Info("scrape target recovered", "target", target)
		} else {
			log.Warn("scrape target down", "target", target, "err", err)
		}
	}
	reg := metrics.NewRegistry()
	engine := alert.NewEngine(alert.Config{Log: log.Named("alert"), Registry: reg})
	engine.Add(alert.DefaultRules(db)...)

	step := func() {
		scraper.ScrapeOnce()
		engine.EvalOnce(now)
		now = now.Add(2 * time.Second)
	}

	alertState := func(rule string) (alert.Status, bool) {
		for _, st := range engine.Statuses() {
			if st.Rule == rule {
				return st, true
			}
		}
		return alert.Status{}, false
	}

	// Healthy baseline: the series exists, the rule stays inactive.
	step()
	if st, ok := alertState("ScrapeDown"); !ok || st.State != alert.StateInactive {
		t.Fatalf("after healthy scrape: status %+v ok=%v, want inactive", st, ok)
	}

	// Wedge the endpoint. The first failing scrape puts the rule in
	// pending; it must NOT fire before the 10s For elapses.
	fl.SetBlackhole(true)
	step() // t+2s: first failure -> pending
	if st, _ := alertState("ScrapeDown"); st.State != alert.StatePending {
		t.Fatalf("first failing scrape: state = %v, want pending", st.State)
	}
	if engine.FiringCount() != 0 {
		t.Fatal("ScrapeDown fired before its For duration")
	}
	step() // t+4s
	step() // t+6s
	step() // t+8s
	step() // t+10s
	step() // t+12s: >= 10s since the breach began -> firing
	st, _ := alertState("ScrapeDown")
	if st.State != alert.StateFiring {
		t.Fatalf("after sustained failures: state = %v, want firing", st.State)
	}
	if !strings.Contains(reg.Render(), `bf_alerts_firing{rule="ScrapeDown",target="fpga-ops-A"} 1`) {
		t.Errorf("firing gauge not exported:\n%s", reg.Render())
	}

	// Recover: the next healthy scrape resolves the alert.
	fl.SetBlackhole(false)
	step()
	if st, _ := alertState("ScrapeDown"); st.State != alert.StateResolved {
		t.Fatalf("after recovery: state = %v, want resolved", st.State)
	}
	if !strings.Contains(reg.Render(), `bf_alerts_firing{rule="ScrapeDown",target="fpga-ops-A"} 0`) {
		t.Errorf("firing gauge not cleared:\n%s", reg.Render())
	}

	// The whole incident is reconstructable from the log ring alone.
	var down, recovered, fired, resolved bool
	for _, ev := range log.Tail() {
		switch ev.Msg {
		case "scrape target down":
			down = true
		case "scrape target recovered":
			recovered = true
		case "alert firing":
			fired = true
		case "alert resolved":
			resolved = true
		}
	}
	if !down || !recovered || !fired || !resolved {
		t.Errorf("incident not fully logged: down=%v recovered=%v fired=%v resolved=%v\n%v",
			down, recovered, fired, resolved, log.Tail())
	}
}

// TestLogsCorrelatedAcrossProcesses runs one traced task through a real
// Remote Library <-> Device Manager pair, each with its own log ring
// served over HTTP, and asserts that fetching both rings filtered by
// the task's trace ID — the exact path `blastctl logs -trace <id>`
// takes — yields correlated events from at least two components.
func TestLogsCorrelatedAcrossProcesses(t *testing.T) {
	mgrLog := logx.New(logx.Config{Component: "manager"})
	libLog := logx.New(logx.Config{Component: "library"})

	rig := newChaosRig(t, manager.Config{DeviceID: "ops-B", Log: mgrLog})
	defer rig.close()

	tracer := obs.New(obs.Config{Component: "library", SampleRate: 1})
	client, err := remote.Dial(remote.Config{
		ClientName: "ops-client",
		Managers:   []string{rig.addr},
		Transport:  remote.TransportGRPC,
		Tracer:     tracer,
		Log:        libLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, q, k := openLoopback(t, client)

	payload := []byte("correlate me")
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, arg := range []any{in, out, int32(len(payload))} {
		if err := k.SetArg(i, arg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}

	spans := tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans at sample rate 1")
	}
	trace := spans[0].Trace

	// Each process serves its own ring, as cmd/devicemanager and
	// cmd/gateway do.
	mgrSrv := httptest.NewServer(mgrLog.Handler())
	defer mgrSrv.Close()
	libSrv := httptest.NewServer(libLog.Handler())
	defer libSrv.Close()

	// The manager's "task executed" event lands after the notification is
	// on the wire; poll the fetch/merge path briefly.
	q1 := logx.Query{Trace: trace}
	var merged []logx.Event
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var rings [][]logx.Event
		for _, base := range []string{mgrSrv.URL, libSrv.URL} {
			ring, err := logx.FetchRing(base, q1)
			if err != nil {
				t.Fatal(err)
			}
			rings = append(rings, ring)
		}
		merged = logx.Merge(rings...)
		if len(componentsOf(merged)) >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	comps := componentsOf(merged)
	if !comps["manager"] || !comps["library"] {
		t.Fatalf("trace %s not correlated across processes: components %v in\n%v",
			trace, comps, merged)
	}
	for _, ev := range merged {
		if ev.Trace != trace {
			t.Errorf("event %q carries trace %s, want %s", ev.Msg, ev.Trace, trace)
		}
	}
	var executed, flushed bool
	for _, ev := range merged {
		switch ev.Msg {
		case "task executed":
			executed = true
		case "task flushed":
			flushed = true
		}
	}
	if !executed || !flushed {
		t.Errorf("per-task events missing: executed=%v flushed=%v\n%v", executed, flushed, merged)
	}
}

func componentsOf(events []logx.Event) map[string]bool {
	out := make(map[string]bool)
	for _, ev := range events {
		out[ev.Component] = true
	}
	return out
}
