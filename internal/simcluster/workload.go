// Package simcluster models the paper's multi-node utilization
// experiments (Section IV-B, Tables II-IV) on the discrete-event engine.
//
// It rebuilds the same structure as the live system — closed-loop load
// generators per function (hey with one connection), per-board FIFO task
// queues, Algorithm 1 placements through the real registry package — with
// all service times taken from the calibrated cost models, so a full
// three-node, five-function, minutes-long campaign reproduces in
// milliseconds of wall time.
package simcluster

import (
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/model"
)

// Task is one flushed BlastFunction task of a request: the unit that
// enters a board's central FIFO queue.
type Task struct {
	// Ops is the number of operations in the task (drives per-op control
	// overhead on the remote paths).
	Ops int
	// HostBytes is the payload the transport moves for this task (drives
	// the copy/serialization overhead of the remote paths).
	HostBytes int64
	// Device yields the board occupancy of the task under a node's cost
	// model (DMA transfers + kernel time).
	Device func(c *model.CostModel) time.Duration
	// Split optionally separates the occupancy into DMA and kernel parts
	// for the pipelining ablation (overlapping one task's transfers with
	// another's compute). Nil treats the whole task as unsplittable.
	Split func(c *model.CostModel) (dma, kernel time.Duration)
}

// Workload is the per-request profile of one accelerated function.
type Workload struct {
	// Name labels the workload ("sobel", "mm", "alexnet").
	Name string
	// Tasks execute sequentially; each is one flush.
	Tasks []Task
}

// DeviceTime returns the total board occupancy of one request.
func (w Workload) DeviceTime(c *model.CostModel) time.Duration {
	var total time.Duration
	for _, t := range w.Tasks {
		total += t.Device(c)
	}
	return total
}

// RemoteOverhead returns the per-request control + data overhead the
// given transport adds over native.
func (w Workload) RemoteOverhead(c *model.CostModel, tr model.Transport) time.Duration {
	var total time.Duration
	for _, t := range w.Tasks {
		total += c.ControlOverhead(tr, t.Ops)
		total += c.DataOverhead(tr, t.HostBytes)
	}
	return total
}

// httpOverheadBase is the gateway + function-runtime cost per request on a
// worker node (OpenFaaS routing, JSON handling, HTTP). Scaled by the
// node's HostFactor.
const httpOverheadBase = 7 * time.Millisecond

// HTTPOverhead returns the serverless-path cost of one request on a node.
func HTTPOverhead(c *model.CostModel) time.Duration {
	return time.Duration(float64(httpOverheadBase) * c.HostFactor)
}

// SobelWorkload is one Sobel request over a w x h image: a single task
// carrying write + kernel + read.
func SobelWorkload(w, h int) Workload {
	pixels := int64(w) * int64(h)
	dir := accel.SobelImageBytes(w, h)
	return Workload{
		Name: "sobel",
		Tasks: []Task{{
			Ops:       3,
			HostBytes: 2 * dir,
			Device: func(c *model.CostModel) time.Duration {
				return c.PCIeTransfer(dir) + accel.SobelModel(pixels) + c.PCIeTransfer(dir)
			},
			Split: func(c *model.CostModel) (time.Duration, time.Duration) {
				return 2 * c.PCIeTransfer(dir), accel.SobelModel(pixels)
			},
		}},
	}
}

// MMWorkload is one MM request over n x n matrices: a single task carrying
// two writes + kernel + read.
func MMWorkload(n int) Workload {
	mat := accel.MMMatrixBytes(n)
	return Workload{
		Name: "mm",
		Tasks: []Task{{
			Ops:       4,
			HostBytes: 3 * mat,
			Device: func(c *model.CostModel) time.Duration {
				return 2*c.PCIeTransfer(mat) + accel.MMModel(int64(n)) + c.PCIeTransfer(mat)
			},
			Split: func(c *model.CostModel) (time.Duration, time.Duration) {
				return 3 * c.PCIeTransfer(mat), accel.MMModel(int64(n))
			},
		}},
	}
}

// CNNWorkload is one PipeCNN inference: the input upload, the per-layer
// kernel launches with PipeCNN's flush pattern (convolutions split across
// two queues -> two tasks, pools and FCs one task), and the output read.
// The many small tasks are what makes the remote path pay visibly more
// control overhead here, as the paper observes for AlexNet.
func CNNWorkload(spec *accel.CNNSpec) Workload {
	in := spec.InputBytes()
	out := spec.OutputBytes()
	tasks := []Task{{
		Ops:       1,
		HostBytes: in,
		Device: func(c *model.CostModel) time.Duration {
			return c.PCIeTransfer(in)
		},
		Split: func(c *model.CostModel) (time.Duration, time.Duration) {
			return c.PCIeTransfer(in), 0
		},
	}}
	for _, l := range spec.Layers {
		layerTime := l.ModelTime()
		if l.Kind == accel.LayerConv {
			// Task 1: memRead + coreConv on queue 1.
			tasks = append(tasks, Task{
				Ops: 2,
				Device: func(c *model.CostModel) time.Duration {
					return layerTime + 20*time.Microsecond
				},
			})
			// Task 2: memWrite on queue 2.
			tasks = append(tasks, Task{
				Ops: 1,
				Device: func(c *model.CostModel) time.Duration {
					return 20 * time.Microsecond
				},
			})
		} else {
			tasks = append(tasks, Task{
				Ops: 3,
				Device: func(c *model.CostModel) time.Duration {
					return layerTime + 40*time.Microsecond
				},
			})
		}
	}
	tasks = append(tasks, Task{
		Ops:       1,
		HostBytes: out,
		Device: func(c *model.CostModel) time.Duration {
			return c.PCIeTransfer(out)
		},
		Split: func(c *model.CostModel) (time.Duration, time.Duration) {
			return c.PCIeTransfer(out), 0
		},
	})
	return Workload{Name: spec.Name, Tasks: tasks}
}

// RWWorkload is the pure write+read diagnostic of Figure 4a: one task
// writing half the payload and reading it back, no kernel.
func RWWorkload(totalBytes int64) Workload {
	half := totalBytes / 2
	return Workload{
		Name: "rw",
		Tasks: []Task{{
			Ops:       2,
			HostBytes: totalBytes,
			Device: func(c *model.CostModel) time.Duration {
				return c.PCIeTransfer(half) + c.PCIeTransfer(totalBytes-half)
			},
			Split: func(c *model.CostModel) (time.Duration, time.Duration) {
				return c.PCIeTransfer(half) + c.PCIeTransfer(totalBytes-half), 0
			},
		}},
	}
}
