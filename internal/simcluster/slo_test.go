package simcluster

// End-to-end SLO test: a real Remote Library <-> Device Manager pair runs
// healthy traffic, then a tenant surge blows the latency objective. The
// scraper feeds the manager's /metrics (exemplars and all) into a TSDB on
// a simulated clock, the SLO engine's fast-burn rule must fire within its
// window, /debug/slo must show the depleted budget with a non-empty
// exemplar trace that resolves to spans on BOTH sides of the RPC, and the
// page must leave a pprof snapshot on disk via the alert-capture hook.

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/alert"
	"blastfunction/internal/fpga"
	"blastfunction/internal/logx"
	"blastfunction/internal/manager"
	"blastfunction/internal/metrics"
	"blastfunction/internal/model"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
	"blastfunction/internal/slo"
)

// sloRig is a manager whose board sleeps real wall time for transfers, so
// payload size controls the measured task latency: small payloads stay
// far under the objective's target, 1 MiB payloads reliably blow it.
type sloRig struct {
	mgr  *manager.Manager
	srv  *rpc.Server
	addr string
}

func newSLORig(t *testing.T) *sloRig {
	t.Helper()
	cost := model.WorkerNode()
	cost.PCIeGBps = 0.05                    // 1 MiB transfer ~= 20 ms modelled
	cost.ReconfigureTime = time.Millisecond // keep programming cheap
	cfg := fpga.DE5aNet(cost)
	cfg.TimeScale = 1.0 // modelled time is slept for real
	board := fpga.NewBoard(cfg, accel.Catalog())
	mgr := manager.New(manager.Config{Node: "slonode", DeviceID: "slo-A"}, board)
	srv := rpc.NewServer(mgr)
	srv.Log = logx.NewLogf("rpc", t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); mgr.Close() })
	return &sloRig{mgr: mgr, srv: srv, addr: addr}
}

// runCopyTask pushes one write -> copy -> read task of n bytes through the
// queue and waits for completion.
func runCopyTask(t *testing.T, ctx ocl.Context, q ocl.CommandQueue, k ocl.Kernel, n int) {
	t.Helper()
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Release()
	defer out.Release()
	for i, arg := range []any{in, out, int32(n)} {
		if err := k.SetArg(i, arg); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, n)
	if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, n)
	if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
}

func burnState(eng *alert.Engine, sloName string) alert.State {
	for _, st := range eng.Statuses() {
		if st.Rule == "SLOFastBurn" && st.Labels["slo"] == sloName && st.Labels["sli"] == "latency" {
			return st.State
		}
	}
	return alert.StateInactive
}

func TestSLOSurgeEndToEnd(t *testing.T) {
	rig := newSLORig(t)

	tracer := obs.New(obs.Config{Component: "library", SampleRate: 1})
	client, err := remote.Dial(remote.Config{
		ClientName: "payments", // the SLO subject: manager labels series tenant=payments
		Managers:   []string{rig.addr},
		Transport:  remote.TransportGRPC,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	cctx, q, k := openLoopback(t, client)

	// Observability plane: the scraper pulls the manager's real /metrics
	// endpoint into a TSDB on a simulated clock, the SLO engine derives
	// burn-rate rules, and a page captures pprof snapshots on disk.
	metricsSrv := httptest.NewServer(rig.mgr.MetricsHandler())
	defer metricsSrv.Close()
	db := metrics.NewTSDB(time.Hour)
	scraper := metrics.NewScraper(db, 5*time.Second)
	scraper.AddTarget("slo-A", metricsSrv.URL)
	start := time.Unix(1700000000, 0)
	now := start
	scraper.Now = func() time.Time { return now }

	obj, err := slo.ParseObjective("payments:p99<25ms:99.9%:10m")
	if err != nil {
		t.Fatal(err)
	}
	sloEng := slo.NewEngine(db)
	sloEng.Add(obj)
	sloEng.Now = func() time.Time { return now }
	sloEng.Windows = []slo.BurnWindow{
		{Name: "fast", Severity: "page", Factor: 14.4, Long: 60 * time.Second, Short: 10 * time.Second},
	}

	captureDir := t.TempDir()
	capture := &obs.ProfileCapture{Dir: captureDir}
	alerts := alert.NewEngine(alert.Config{
		OnFire: func(rule alert.Rule, _ alert.Status) {
			if _, err := capture.Capture(rule.Name); err != nil {
				t.Errorf("profile capture: %v", err)
			}
		},
	})
	alerts.Add(sloEng.Rules()...)

	// Healthy baseline: 4 KiB tasks finish in well under a millisecond of
	// board time; scrape and evaluate every simulated 5s for a minute.
	for i := 1; i <= 12; i++ {
		runCopyTask(t, cctx, q, k, 4096)
		runCopyTask(t, cctx, q, k, 4096)
		now = start.Add(time.Duration(i) * 5 * time.Second)
		scraper.ScrapeOnce()
		alerts.EvalOnce(now)
	}
	if st := burnState(alerts, "payments"); st != alert.StateInactive {
		t.Fatalf("healthy baseline: SLOFastBurn state %v", st)
	}

	// Tenant surge: every 1 MiB task sleeps ~40ms of modelled PCIe time,
	// far past the 25ms target. The fast-burn page must fire within the
	// 60s long window — i.e. within a handful of surge scrapes.
	fired := false
	for i := 1; i <= 12 && !fired; i++ {
		for j := 0; j < 3; j++ {
			runCopyTask(t, cctx, q, k, 1<<20)
		}
		now = now.Add(5 * time.Second)
		scraper.ScrapeOnce()
		alerts.EvalOnce(now)
		fired = burnState(alerts, "payments") == alert.StateFiring
	}
	if !fired {
		t.Fatal("SLOFastBurn never fired during a full-surge minute")
	}

	// The page captured goroutine+heap profiles through the OnFire hook.
	files := capture.SortedFiles()
	if len(files) < 2 {
		t.Fatalf("alert-triggered capture left %d files, want goroutine+heap", len(files))
	}

	// /debug/slo shows the depleted budget and carries an exemplar trace.
	rr := httptest.NewRecorder()
	sloEng.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	var reports []slo.Report
	if err := json.Unmarshal(rr.Body.Bytes(), &reports); err != nil {
		t.Fatalf("decoding /debug/slo: %v\n%s", err, rr.Body.String())
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	lat := reports[0].Latency
	if !lat.HasData {
		t.Fatal("latency SLI has no data")
	}
	if lat.BudgetRemaining > 0.01 {
		t.Fatalf("budget remaining %.3f after a full surge, want depleted", lat.BudgetRemaining)
	}
	if lat.ExemplarTrace == "" {
		t.Fatal("burning latency SLI carries no exemplar trace")
	}

	// The exemplar is a real distributed trace: it must resolve to spans
	// in the manager's ring AND the client library's ring — the operator
	// can go straight from the burning budget to the latency breakdown.
	traceID, err := obs.ParseTraceID(lat.ExemplarTrace)
	if err != nil {
		t.Fatalf("exemplar trace %q: %v", lat.ExemplarTrace, err)
	}
	var mgrSpans []obs.Span
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mgrSpans = rig.mgr.Tracer().SpansFor(traceID)
		if len(mgrSpans) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(mgrSpans) == 0 {
		t.Fatalf("exemplar trace %s has no manager spans", lat.ExemplarTrace)
	}
	clientHasTrace := false
	for _, sp := range tracer.Spans() {
		if sp.Trace == traceID {
			clientHasTrace = true
			break
		}
	}
	if !clientHasTrace {
		t.Fatalf("exemplar trace %s has no client-library spans", lat.ExemplarTrace)
	}
}
