package simcluster

import (
	"testing"
	"time"
)

// TestScaleExperiment runs the cluster-scale front-door DES at the
// acceptance floor (100 boards, 500 tenants, past saturation) and checks
// the headline claims: admission+least-inflight beats the bare
// round-robin baseline on p99, rejections only happen with admission on,
// and the placement pass's metric queries are bounded by the board count
// (one Gatherer compute per device per scrape generation, not one per
// candidate per allocation).
func TestScaleExperiment(t *testing.T) {
	base := ScaleConfig{
		Boards:  100,
		Tenants: 500,
		Warmup:  time.Second,
		Measure: 3 * time.Second,
	}

	baseline, err := RunScale(base)
	if err != nil {
		t.Fatal(err)
	}
	treated := base
	treated.Admission = true
	treated.Router = "least-inflight"
	treatment, err := RunScale(treated)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("baseline:  p50=%.2fms p99=%.2fms rejected=%.1f%% completed=%d",
		baseline.P50Ms, baseline.P99Ms, 100*baseline.RejectionRate, baseline.Completed)
	t.Logf("treatment: p50=%.2fms p99=%.2fms rejected=%.1f%% completed=%d",
		treatment.P50Ms, treatment.P99Ms, 100*treatment.RejectionRate, treatment.Completed)

	if baseline.Rejected != 0 {
		t.Fatalf("baseline rejected %d requests without admission control", baseline.Rejected)
	}
	if treatment.Rejected == 0 {
		t.Fatal("admission past saturation must reject something")
	}
	if treatment.RejectionRate > 0.5 {
		t.Fatalf("rejection rate %.2f implausibly high for a 0.9-capacity budget", treatment.RejectionRate)
	}
	if treatment.P99Ms >= baseline.P99Ms {
		t.Fatalf("admission+least-inflight p99 %.2fms did not beat baseline %.2fms",
			treatment.P99Ms, baseline.P99Ms)
	}
	if treatment.P99Ms*2 > baseline.P99Ms {
		t.Fatalf("p99 improvement under 2x (%.2fms vs %.2fms) — queues should be unbounded at 1.05 load",
			treatment.P99Ms, baseline.P99Ms)
	}

	for _, r := range []*ScaleResult{baseline, treatment} {
		if r.Allocations != base.Tenants*2 {
			t.Fatalf("allocations = %d, want %d", r.Allocations, base.Tenants*2)
		}
		// All placements happen within one scrape generation: one compute
		// per board, everything else served from the Gatherer cache.
		if r.GathererComputes > uint64(base.Boards) {
			t.Fatalf("gatherer computed %d device views, want <= %d (one per board)",
				r.GathererComputes, base.Boards)
		}
		if r.GathererCacheHits == 0 {
			t.Fatal("placement pass never hit the gatherer cache")
		}
		if r.Completed == 0 {
			t.Fatal("no completed requests measured")
		}
	}

	// Determinism: the same config reproduces the same percentiles.
	again, err := RunScale(treated)
	if err != nil {
		t.Fatal(err)
	}
	if again.P99Ms != treatment.P99Ms || again.Completed != treatment.Completed {
		t.Fatalf("experiment not deterministic: %+v vs %+v", again, treatment)
	}
}
