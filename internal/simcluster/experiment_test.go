package simcluster

import (
	"testing"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/model"
)

func TestWorkloadDeviceTimes(t *testing.T) {
	w := model.WorkerNode()
	// Sobel 1080p: ~14.5 ms board occupancy (Fig. 4b native).
	sob := SobelWorkload(1920, 1080).DeviceTime(w)
	if sob < 13*time.Millisecond || sob > 16*time.Millisecond {
		t.Fatalf("sobel 1080p device time = %v", sob)
	}
	// MM 512: ~8 ms.
	mm := MMWorkload(512).DeviceTime(w)
	if mm < 6*time.Millisecond || mm > 10*time.Millisecond {
		t.Fatalf("mm 512 device time = %v", mm)
	}
	// AlexNet: ~90 ms.
	cnn := CNNWorkload(accel.AlexNet()).DeviceTime(w)
	if cnn < 85*time.Millisecond || cnn > 97*time.Millisecond {
		t.Fatalf("alexnet device time = %v", cnn)
	}
	// Master node is slower for transfer-heavy workloads.
	if SobelWorkload(1920, 1080).DeviceTime(model.MasterNode()) <= sob {
		t.Fatal("sobel on node A must be slower")
	}
}

func TestRemoteOverheadShapes(t *testing.T) {
	w := model.WorkerNode()
	sob := SobelWorkload(1920, 1080)
	shm := sob.RemoteOverhead(w, model.TransportShm)
	grpc := sob.RemoteOverhead(w, model.TransportGRPC)
	if shm >= grpc {
		t.Fatalf("shm overhead %v must undercut gRPC %v", shm, grpc)
	}
	// Sobel shm: ~2ms control + ~1.2ms copy.
	if shm < 2*time.Millisecond || shm > 5*time.Millisecond {
		t.Fatalf("sobel shm overhead = %v", shm)
	}
	// AlexNet pays per-flush control overhead across many tasks: the
	// paper measures ~35 ms extra.
	cnn := CNNWorkload(accel.AlexNet()).RemoteOverhead(w, model.TransportShm)
	if cnn < 28*time.Millisecond || cnn > 45*time.Millisecond {
		t.Fatalf("alexnet remote overhead = %v, want ~35ms", cnn)
	}
}

func TestTableIRates(t *testing.T) {
	r, err := TableIRates(UseSobel, HighLoad)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{60, 50, 35, 30, 15}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("sobel high = %v", r)
		}
	}
	if _, err := TableIRates(UseAlexNet, LowLoad); err == nil {
		t.Fatal("AlexNet has no low-load configuration")
	}
	if _, err := TableIRates(UseCase("bogus"), LowLoad); err == nil {
		t.Fatal("unknown use case must fail")
	}
}

func TestLowLoadBothSystemsMeetTargets(t *testing.T) {
	for _, build := range []func(UseCase, LoadLevel) (Experiment, error){
		BlastFunctionExperiment, NativeExperiment,
	} {
		exp, err := build(UseSobel, LowLoad)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(exp)
		if err != nil {
			t.Fatal(err)
		}
		if res.Processed < res.Target*0.93 {
			t.Fatalf("low load processed %.1f of %.1f", res.Processed, res.Target)
		}
		for _, fr := range res.Functions {
			if fr.AvgLatency <= 0 {
				t.Fatalf("function %s has no latency", fr.Function)
			}
			if fr.AvgLatency > 60*time.Millisecond {
				t.Fatalf("function %s latency %v too high for low load", fr.Function, fr.AvgLatency)
			}
			if fr.Node == "" {
				t.Fatalf("function %s unplaced", fr.Function)
			}
		}
	}
}

func TestBlastFunctionSpreadsFunctions(t *testing.T) {
	exp, err := BlastFunctionExperiment(UseSobel, MediumLoad)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]int{}
	for _, fr := range res.Functions {
		nodes[fr.Node]++
	}
	if len(nodes) != 3 {
		t.Fatalf("allocation used %d nodes (%v), want all 3", len(nodes), nodes)
	}
	for n, count := range nodes {
		if count > 2 {
			t.Fatalf("node %s hosts %d of 5 functions", n, count)
		}
	}
}

func TestHighLoadBlastFunctionBeatsNative(t *testing.T) {
	// The paper's headline: with 5 shared functions vs 3 pinned ones,
	// BlastFunction achieves higher utilization and processed throughput.
	bf, err := BlastFunctionExperiment(UseSobel, HighLoad)
	if err != nil {
		t.Fatal(err)
	}
	bfRes, err := Run(bf)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := NativeExperiment(UseSobel, HighLoad)
	if err != nil {
		t.Fatal(err)
	}
	natRes, err := Run(nat)
	if err != nil {
		t.Fatal(err)
	}
	if bfRes.Processed <= natRes.Processed {
		t.Fatalf("BF processed %.1f <= native %.1f", bfRes.Processed, natRes.Processed)
	}
	if bfRes.TotalUtilization <= natRes.TotalUtilization {
		t.Fatalf("BF utilization %.1f%% <= native %.1f%%",
			bfRes.TotalUtilization*100, natRes.TotalUtilization*100)
	}
	// Utilization cannot exceed the 300% ceiling (3 boards).
	if bfRes.TotalUtilization > 3.0 {
		t.Fatalf("utilization %.2f exceeds 3 boards", bfRes.TotalUtilization)
	}
	// Latency stays comparable: within 2x of native.
	if bfRes.AvgLatency > 2*natRes.AvgLatency {
		t.Fatalf("BF latency %v vs native %v", bfRes.AvgLatency, natRes.AvgLatency)
	}
}

func TestClosedLoopSaturation(t *testing.T) {
	// One connection cannot exceed 1/latency: sobel-1 at 60 rq/s on a
	// ~21ms end-to-end path processes well below target in both systems,
	// the saturation Table II shows.
	nat, _ := NativeExperiment(UseSobel, HighLoad)
	res, err := Run(nat)
	if err != nil {
		t.Fatal(err)
	}
	f1 := res.Functions[0]
	if f1.Target != 60 {
		t.Fatalf("f1 target = %v", f1.Target)
	}
	if f1.Processed > 45 {
		t.Fatalf("f1 processed %.1f, closed loop must cap near 1/latency", f1.Processed)
	}
	maxRate := 1 / f1.AvgLatency.Seconds()
	if f1.Processed > maxRate*1.05 {
		t.Fatalf("f1 processed %.1f exceeds closed-loop bound %.1f", f1.Processed, maxRate)
	}
}

func TestAlexNetConfigurations(t *testing.T) {
	for _, level := range []LoadLevel{MediumLoad, HighLoad} {
		bf, err := BlastFunctionExperiment(UseAlexNet, level)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(bf)
		if err != nil {
			t.Fatal(err)
		}
		// AlexNet latency lands around the paper's 120-135 ms once the
		// remote control overhead is paid.
		if res.AvgLatency < 100*time.Millisecond || res.AvgLatency > 250*time.Millisecond {
			t.Fatalf("%s alexnet latency = %v", level, res.AvgLatency)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Experiment{}); err == nil {
		t.Fatal("empty experiment must fail")
	}
	exp, _ := BlastFunctionExperiment(UseSobel, LowLoad)
	exp.Functions[0].Node = "Z"
	if _, err := Run(exp); err == nil {
		t.Fatal("unknown pinned node must fail")
	}
}

func TestDeterminism(t *testing.T) {
	exp, _ := BlastFunctionExperiment(UseMM, MediumLoad)
	a, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Processed != b.Processed || a.TotalUtilization != b.TotalUtilization || a.AvgLatency != b.AvgLatency {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Functions {
		if a.Functions[i] != b.Functions[i] {
			t.Fatalf("function %d diverges", i)
		}
	}
}

func TestMixedExperimentTimeSharingSegregates(t *testing.T) {
	exp, err := MixedExperiment(MediumLoad, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	// Time-sharing: Algorithm 1 must never co-locate sobel and mm on the
	// same board (a board holds one bitstream).
	byNode := map[string]map[string]bool{}
	for _, fr := range res.Functions {
		if byNode[fr.Node] == nil {
			byNode[fr.Node] = map[string]bool{}
		}
		kind := "sobel"
		if fr.Function[0] == 'm' {
			kind = "mm"
		}
		byNode[fr.Node][kind] = true
	}
	for node, kinds := range byNode {
		if len(kinds) > 1 {
			t.Fatalf("node %s hosts both accelerators under time-sharing", node)
		}
	}
	if res.Processed <= 0 {
		t.Fatal("no requests processed")
	}
}

func TestMixedExperimentSpaceSharingCoLocates(t *testing.T) {
	exp, err := MixedExperiment(MediumLoad, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	// Space-sharing lifts the affinity constraint: with 6 functions on 3
	// boards and load-aware ordering, at least one board hosts both.
	byNode := map[string]map[string]bool{}
	for _, fr := range res.Functions {
		if byNode[fr.Node] == nil {
			byNode[fr.Node] = map[string]bool{}
		}
		kind := "sobel"
		if fr.Function[0] == 'm' {
			kind = "mm"
		}
		byNode[fr.Node][kind] = true
	}
	coLocated := 0
	for _, kinds := range byNode {
		if len(kinds) > 1 {
			coLocated++
		}
	}
	if coLocated == 0 {
		t.Fatal("space-sharing never co-located the two accelerators")
	}
	// Kernels run slower (area penalty), so latency must exceed the
	// time-shared mixed run's — the trade-off the ablation quantifies.
	tsExp, _ := MixedExperiment(MediumLoad, false)
	tsRes, err := Run(tsExp)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency <= tsRes.AvgLatency/2 {
		t.Fatalf("space-sharing latency %v implausibly below time-sharing %v",
			res.AvgLatency, tsRes.AvgLatency)
	}
}

func TestOverlapDMANeverHurts(t *testing.T) {
	// Pipelining transfers with compute must not reduce throughput or
	// increase latency: DMA leaves the kernel engine's critical path.
	base, err := BlastFunctionExperiment(UseSobel, HighLoad)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.OverlapDMA = true
	overlapped, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Processed < serial.Processed*0.99 {
		t.Fatalf("overlap processed %.1f < serialized %.1f", overlapped.Processed, serial.Processed)
	}
	if overlapped.AvgLatency > serial.AvgLatency*101/100 {
		t.Fatalf("overlap latency %v > serialized %v", overlapped.AvgLatency, serial.AvgLatency)
	}
}
