package simcluster

import (
	"fmt"
	"sort"
	"time"

	"blastfunction/internal/sim"
)

// ReconfigConfig parameterizes the reconfiguration-storm experiment: a
// DES of serverless churn across more accelerator families than the
// allocator can keep resident, contrasting a lifecycle-unaware placement
// pass (spread by load, flash whatever board you land on) with the
// bitstream lifecycle service's batched flash windows (pile a phase's
// same-family allocations onto one reprogram).
type ReconfigConfig struct {
	// Boards is the cluster size; default 8.
	Boards int
	// Accels is the number of accelerator families tenants draw from;
	// default equals Boards (every family can stay resident — the regime
	// where batching converges to zero reprograms).
	Accels int
	// Tenants is the number of function instances re-placed each phase;
	// default 32.
	Tenants int
	// ServiceTime is the per-request board service demand; default 8ms.
	ServiceTime time.Duration
	// ReconfigTime is the modelled board reprogramming latency; default 2s
	// (the paper's full-region reconfiguration).
	ReconfigTime time.Duration
	// PhaseEvery is the churn period: at each phase boundary every tenant
	// is torn down and re-placed (a new serverless incarnation); default 5s.
	PhaseEvery time.Duration
	// Phases is the number of churn phases; default 6.
	Phases int
	// Load is the offered request load as a fraction of aggregate cluster
	// capacity; default 0.4 (reconfiguration stalls, not queueing, should
	// dominate the naive arm's tail).
	Load float64
	// Batched selects the lifecycle-aware placement pass; false is the
	// naive per-allocation-flipping baseline.
	Batched bool
	// Seed perturbs the arrival jitter and family-choice streams; default 1.
	Seed uint64
}

func (c ReconfigConfig) withDefaults() ReconfigConfig {
	if c.Boards <= 0 {
		c.Boards = 8
	}
	if c.Accels <= 0 {
		c.Accels = c.Boards
	}
	if c.Tenants <= 0 {
		c.Tenants = 32
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 8 * time.Millisecond
	}
	if c.ReconfigTime <= 0 {
		c.ReconfigTime = 2 * time.Second
	}
	if c.PhaseEvery <= 0 {
		c.PhaseEvery = 5 * time.Second
	}
	if c.Phases <= 0 {
		c.Phases = 6
	}
	if c.Load <= 0 {
		c.Load = 0.4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ReconfigResult is the experiment outcome.
type ReconfigResult struct {
	Boards  int  `json:"boards"`
	Accels  int  `json:"accels"`
	Tenants int  `json:"tenants"`
	Phases  int  `json:"phases"`
	Batched bool `json:"batched"`

	Arrivals  int     `json:"arrivals"`
	Completed int     `json:"completed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanUtil  float64 `json:"mean_utilization"`

	// Reconfigs counts board reprograms; ReconfigSeconds is the total
	// board time they consumed. In batched mode each reprogram is one
	// flash window shared by every same-family allocation of the phase, so
	// TenantsPerWindow reports the amortization factor.
	Reconfigs        int     `json:"reconfigs"`
	ReconfigSeconds  float64 `json:"reconfig_seconds"`
	TenantsPerWindow float64 `json:"tenants_per_window"`
}

// RunReconfigStorm drives Phases churn rounds: at each phase boundary
// every tenant picks an accelerator family (deterministic per seed) and is
// re-placed. The naive arm spreads placements by load and reprograms
// whichever board each allocation lands on when the bitstream mismatches —
// per-allocation flipping. The batched arm groups the phase's allocations
// by family, reuses boards already flashed with that family, and opens at
// most one reprogram window per family, onto which the whole group rides.
// Requests flow open-loop throughout, queueing behind reprograms on the
// same board FIFO, so the arms' p99 difference is the storm's cost.
func RunReconfigStorm(cfg ReconfigConfig) (*ReconfigResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Accels > cfg.Boards {
		// More families than boards would force batched-mode groups to
		// steal each other's freshly flashed boards within one phase; the
		// experiment keeps the regimes comparable instead.
		return nil, fmt.Errorf("simcluster: Accels (%d) must not exceed Boards (%d)", cfg.Accels, cfg.Boards)
	}

	engine := sim.NewEngine()
	servers := make([]*sim.Server, cfg.Boards)
	for i := range servers {
		servers[i] = engine.NewServer()
	}

	boardAccel := make([]int, cfg.Boards) // -1 = blank
	for i := range boardAccel {
		boardAccel[i] = -1
	}
	tenantBoard := make([]int, cfg.Tenants)
	tenantAccel := make([]int, cfg.Tenants)
	for i := range tenantBoard {
		tenantBoard[i] = -1
	}

	var reconfigs, ridingTenants int
	flashBoard := func(b, accel int) {
		boardAccel[b] = accel
		reconfigs++
		servers[b].Enqueue(cfg.ReconfigTime, nil)
	}

	famRng := cfg.Seed ^ 0xA5A5A5A5A5A5A5A5
	rePlace := func() {
		// New incarnation: every tenant draws a family for this phase.
		for t := range tenantAccel {
			tenantAccel[t] = int(scaleRng(&famRng) * float64(cfg.Accels))
			if tenantAccel[t] >= cfg.Accels {
				tenantAccel[t] = cfg.Accels - 1
			}
		}
		assigned := make([]int, cfg.Boards) // placements made this phase

		if !cfg.Batched {
			// Naive: least-assigned board wins regardless of its bitstream;
			// a mismatch reprograms it on the spot.
			for t := 0; t < cfg.Tenants; t++ {
				b := 0
				for i := 1; i < cfg.Boards; i++ {
					if assigned[i] < assigned[b] {
						b = i
					}
				}
				if boardAccel[b] != tenantAccel[t] {
					flashBoard(b, tenantAccel[t])
				}
				tenantBoard[t] = b
				assigned[b]++
			}
			return
		}

		// Batched: group the phase's tenants by family, then give each
		// group one board — an already-flashed one when available,
		// otherwise the least-loaded unclaimed victim, reprogrammed once
		// for the whole group.
		groups := make([][]int, cfg.Accels)
		for t := 0; t < cfg.Tenants; t++ {
			groups[tenantAccel[t]] = append(groups[tenantAccel[t]], t)
		}
		claimed := make([]bool, cfg.Boards)
		for accel, group := range groups {
			if len(group) == 0 {
				continue
			}
			b := -1
			for i := 0; i < cfg.Boards; i++ {
				if !claimed[i] && boardAccel[i] == accel {
					b = i
					break
				}
			}
			if b == -1 {
				for i := 0; i < cfg.Boards; i++ {
					if claimed[i] {
						continue
					}
					if b == -1 || assigned[i] < assigned[b] {
						b = i
					}
				}
				flashBoard(b, accel)
				ridingTenants += len(group)
			}
			claimed[b] = true
			for _, t := range group {
				tenantBoard[t] = b
				assigned[b]++
			}
		}
	}

	end := time.Duration(cfg.Phases) * cfg.PhaseEvery
	warmup := cfg.PhaseEvery // the cold first phase flashes in both arms
	for p := 0; p < cfg.Phases; p++ {
		engine.At(time.Duration(p)*cfg.PhaseEvery, rePlace)
	}

	perTenantRate := cfg.Load * (float64(cfg.Boards) / cfg.ServiceTime.Seconds()) / float64(cfg.Tenants)
	meanGap := time.Duration(float64(time.Second) / perTenantRate)

	var arrivals, completed int
	var latencies []time.Duration
	rngs := make([]uint64, cfg.Tenants)
	for t := range rngs {
		rngs[t] = cfg.Seed + uint64(t)*0x9E3779B97F4A7C15
	}
	var arrive func(t int)
	arrive = func(t int) {
		now := engine.Now()
		measured := now >= warmup && now < end
		if b := tenantBoard[t]; b >= 0 {
			if measured {
				arrivals++
			}
			servers[b].Enqueue(cfg.ServiceTime, func(wait, service time.Duration) {
				if measured {
					completed++
					latencies = append(latencies, wait+service)
				}
			})
		}
		gap := time.Duration((0.5 + scaleRng(&rngs[t])) * float64(meanGap))
		if next := now + gap; next < end {
			engine.After(gap, func() { arrive(t) })
		}
	}
	for t := 0; t < cfg.Tenants; t++ {
		// Offset past the phase-0 placement so every arrival has a board.
		engine.At(time.Duration(1+scaleRng(&rngs[t])*float64(meanGap-1)), func(t int) func() {
			return func() { arrive(t) }
		}(t))
	}
	for engine.Step() {
	}

	res := &ReconfigResult{
		Boards:  cfg.Boards,
		Accels:  cfg.Accels,
		Tenants: cfg.Tenants,
		Phases:  cfg.Phases,
		Batched: cfg.Batched,

		Arrivals:  arrivals,
		Completed: completed,

		Reconfigs:       reconfigs,
		ReconfigSeconds: float64(reconfigs) * cfg.ReconfigTime.Seconds(),
	}
	if cfg.Batched && reconfigs > 0 {
		res.TenantsPerWindow = float64(ridingTenants) / float64(reconfigs)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50Ms = float64(latencies[(len(latencies)-1)*50/100].Microseconds()) / 1000
		res.P99Ms = float64(latencies[(len(latencies)-1)*99/100].Microseconds()) / 1000
	}
	var busy time.Duration
	for _, s := range servers {
		busy += s.BusyTime()
	}
	if elapsed := engine.Now(); elapsed > 0 {
		res.MeanUtil = busy.Seconds() / (float64(cfg.Boards) * elapsed.Seconds())
	}
	return res, nil
}
