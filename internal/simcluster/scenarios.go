package simcluster

import (
	"fmt"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/model"
)

// LoadLevel selects one of Table I's configurations.
type LoadLevel string

// Table I load levels.
const (
	LowLoad    LoadLevel = "Low Load"
	MediumLoad LoadLevel = "Medium Load"
	HighLoad   LoadLevel = "High Load"
)

// UseCase selects one of the paper's three benchmarks.
type UseCase string

// Use cases of the evaluation.
const (
	UseSobel   UseCase = "Sobel"
	UseMM      UseCase = "MM"
	UseAlexNet UseCase = "AlexNet"
)

// TableIRates returns the per-function request rates of Table I for a use
// case and load level (five functions; the Native scenario uses the first
// three).
func TableIRates(uc UseCase, level LoadLevel) ([]float64, error) {
	rates := map[UseCase]map[LoadLevel][]float64{
		UseSobel: {
			LowLoad:    {20, 15, 10, 5, 5},
			MediumLoad: {35, 30, 25, 20, 15},
			HighLoad:   {60, 50, 35, 30, 15},
		},
		UseMM: {
			LowLoad:    {28, 21, 14, 7, 7},
			MediumLoad: {49, 42, 35, 28, 21},
			HighLoad:   {84, 70, 49, 42, 21},
		},
		UseAlexNet: {
			MediumLoad: {6, 3, 3, 3, 3},
			HighLoad:   {9, 9, 6, 6, 3},
		},
	}
	byLevel, ok := rates[uc]
	if !ok {
		return nil, fmt.Errorf("simcluster: unknown use case %q", uc)
	}
	r, ok := byLevel[level]
	if !ok {
		return nil, fmt.Errorf("simcluster: use case %s has no %s configuration", uc, level)
	}
	return r, nil
}

// workloadFor returns the request profile of a use case, using the
// evaluation's operating points: 1920x1080 Sobel frames, 512x512 MM
// operands, full AlexNet inference.
func workloadFor(uc UseCase) (Workload, error) {
	switch uc {
	case UseSobel:
		return SobelWorkload(1920, 1080), nil
	case UseMM:
		return MMWorkload(512), nil
	case UseAlexNet:
		return CNNWorkload(accel.AlexNet()), nil
	}
	return Workload{}, fmt.Errorf("simcluster: unknown use case %q", uc)
}

// funcName builds the paper's function names ("sobel-1" ...).
func funcName(uc UseCase, i int) string {
	prefix := map[UseCase]string{UseSobel: "sobel", UseMM: "mm", UseAlexNet: "alexnet"}[uc]
	return fmt.Sprintf("%s-%d", prefix, i+1)
}

// BlastFunctionExperiment builds the shared-board scenario: five identical
// functions, placements by Algorithm 1, shm transport, staggered
// deployment so the allocator sees live utilization.
func BlastFunctionExperiment(uc UseCase, level LoadLevel) (Experiment, error) {
	rates, err := TableIRates(uc, level)
	if err != nil {
		return Experiment{}, err
	}
	wl, err := workloadFor(uc)
	if err != nil {
		return Experiment{}, err
	}
	exp := Experiment{
		Nodes:        Testbed(),
		Transport:    model.TransportShm,
		StaggerDelay: 5 * time.Second,
		Warmup:       10 * time.Second,
		Measure:      60 * time.Second,
	}
	for i, r := range rates {
		exp.Functions = append(exp.Functions, FunctionSpec{
			Name:        funcName(uc, i),
			Workload:    wl,
			TargetRPS:   r,
			Connections: 1,
		})
	}
	return exp, nil
}

// NativeExperiment builds the baseline scenario: three functions (Table
// I's first three columns), each pinned to its own node/board with direct
// access.
func NativeExperiment(uc UseCase, level LoadLevel) (Experiment, error) {
	rates, err := TableIRates(uc, level)
	if err != nil {
		return Experiment{}, err
	}
	wl, err := workloadFor(uc)
	if err != nil {
		return Experiment{}, err
	}
	nodes := Testbed()
	exp := Experiment{
		Nodes:        nodes,
		Transport:    model.TransportNative,
		StaggerDelay: 5 * time.Second,
		Warmup:       10 * time.Second,
		Measure:      60 * time.Second,
	}
	for i := 0; i < 3; i++ {
		exp.Functions = append(exp.Functions, FunctionSpec{
			Name:        funcName(uc, i),
			Workload:    wl,
			TargetRPS:   rates[i],
			Connections: 1,
			Node:        nodes[i].Name,
		})
	}
	return exp, nil
}

// MixedExperiment builds the heterogeneous scenario exercising the
// space-sharing extension (the paper's future work): three Sobel and three
// MM functions compete for the three boards. With time-sharing, Algorithm 1
// must segregate functions by accelerator (a board holds one bitstream);
// with space-sharing every board hosts both designs concurrently at a
// per-kernel area penalty, trading kernel speed for placement freedom.
func MixedExperiment(level LoadLevel, spaceSharing bool) (Experiment, error) {
	sobelRates, err := TableIRates(UseSobel, level)
	if err != nil {
		return Experiment{}, err
	}
	mmRates, err := TableIRates(UseMM, level)
	if err != nil {
		return Experiment{}, err
	}
	exp := Experiment{
		Nodes:        Testbed(),
		Transport:    model.TransportShm,
		StaggerDelay: 5 * time.Second,
		Warmup:       10 * time.Second,
		Measure:      60 * time.Second,
		SpaceSharing: spaceSharing,
	}
	sobel := SobelWorkload(1920, 1080)
	mm := MMWorkload(512)
	for i := 0; i < 3; i++ {
		exp.Functions = append(exp.Functions,
			FunctionSpec{
				Name:        fmt.Sprintf("sobel-%d", i+1),
				Workload:    sobel,
				TargetRPS:   sobelRates[i],
				Connections: 1,
			},
			FunctionSpec{
				Name:        fmt.Sprintf("mm-%d", i+1),
				Workload:    mm,
				TargetRPS:   mmRates[i],
				Connections: 1,
			})
	}
	return exp, nil
}
