// Fairness experiment: the two-tenant skew workload on the REAL Device
// Manager (RPC transport, simulated board, wall-clock sleeps scaled by
// TimeScale), run under different central-queue disciplines. It is the
// live counterpart of the internal/sim scheduling ablation: the pure
// simulation predicts the fairness ordering, this experiment reproduces
// it through the full manager/remote stack.
package simcluster

import (
	"fmt"
	"sync"
	"time"

	"blastfunction/internal/accel"
	"blastfunction/internal/fpga"
	"blastfunction/internal/manager"
	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
	"blastfunction/internal/rpc"
	"blastfunction/internal/sim"
)

// FairnessConfig parameterizes one fairness run.
type FairnessConfig struct {
	// Discipline is the manager's central-queue discipline ("fifo",
	// "drr", "deadline").
	Discipline string
	// Weights is the manager's static per-tenant weight table (drr).
	Weights map[string]int
	// HeavyOps and LightOps are the per-task kernel counts of the two
	// tenants; the skew is the experiment. Defaults 16 and 1.
	HeavyOps, LightOps int
	// Window is each tenant's closed-loop pipeline depth (tasks in
	// flight); it is what gives the scheduler a backlog to reorder.
	// Default 16.
	Window int
	// PayloadBytes sizes the loopback buffers (kernel device time scales
	// with it). Default 1 MiB.
	PayloadBytes int
	// TimeScale is the board's wall-seconds-per-modelled-second knob.
	// Default 0.05.
	TimeScale float64
	// Duration is the wall-clock load window. Default 1200ms.
	Duration time.Duration
}

func (c FairnessConfig) withDefaults() FairnessConfig {
	if c.HeavyOps <= 0 {
		c.HeavyOps = 16
	}
	if c.LightOps <= 0 {
		c.LightOps = 1
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 1 << 20
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.05
	}
	if c.Duration <= 0 {
		c.Duration = 1200 * time.Millisecond
	}
	return c
}

// TenantOutcome is one tenant's end-of-run accounting.
type TenantOutcome struct {
	// Tasks is the number of tasks the tenant executed.
	Tasks uint64
	// DeviceTime is the tenant's cumulative modelled board occupancy.
	DeviceTime time.Duration
	// Share is DeviceTime over the board total — the fairness metric.
	Share float64
	// MaxWait is the tenant's worst single queue wait.
	MaxWait time.Duration
}

// FairnessResult is the outcome of one fairness run.
type FairnessResult struct {
	Discipline string
	// Heavy and Light are the two tenants ("fn-heavy" submits HeavyOps
	// kernels per task, "fn-light" submits LightOps).
	Heavy, Light TenantOutcome
}

// Tenant names of the skew workload.
const (
	heavyTenant = "fn-heavy"
	lightTenant = "fn-light"
)

// RunFairness stands up a real Device Manager on a simulated board,
// drives the two-tenant skew workload against it over real RPC for the
// configured duration, and reports per-tenant occupancy.
func RunFairness(cfg FairnessConfig) (*FairnessResult, error) {
	cfg = cfg.withDefaults()
	bcfg := fpga.DE5aNet(model.WorkerNode())
	bcfg.TimeScale = cfg.TimeScale
	board := fpga.NewBoard(bcfg, accel.Catalog())
	mgr := manager.New(manager.Config{
		Node:          "sim",
		DeviceID:      "fpga-fair",
		Scheduler:     cfg.Discipline,
		TenantWeights: cfg.Weights,
	}, board)
	defer mgr.Close()
	srv := rpc.NewServer(mgr)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	stop := make(chan struct{})
	errc := make(chan error, 2)
	var wg sync.WaitGroup
	for _, tn := range []struct {
		name string
		ops  int
	}{{heavyTenant, cfg.HeavyOps}, {lightTenant, cfg.LightOps}} {
		wg.Add(1)
		go func(name string, ops int) {
			defer wg.Done()
			if err := driveTenant(stop, addr, name, ops, cfg.PayloadBytes, cfg.Window); err != nil {
				errc <- fmt.Errorf("tenant %s: %w", name, err)
			}
		}(tn.name, tn.ops)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	st := mgr.SchedStats()
	res := &FairnessResult{Discipline: string(st.Discipline)}
	for _, ts := range st.Tenants {
		out := TenantOutcome{
			Tasks:      ts.Popped,
			DeviceTime: ts.DeviceTime,
			Share:      ts.OccupancyShare,
			MaxWait:    ts.MaxWait,
		}
		switch ts.Tenant {
		case heavyTenant:
			res.Heavy = out
		case lightTenant:
			res.Light = out
		}
	}
	if res.Heavy.Tasks == 0 || res.Light.Tasks == 0 {
		return nil, fmt.Errorf("degenerate run: heavy=%d light=%d tasks", res.Heavy.Tasks, res.Light.Tasks)
	}
	return res, nil
}

// driveTenant runs one tenant's closed loop: tasks of `ops` loopback
// kernel launches each, `window` tasks pipelined, until stop closes.
func driveTenant(stop <-chan struct{}, addr, name string, ops, payloadBytes, window int) error {
	client, err := remote.Dial(remote.Config{
		ClientName: name,
		Managers:   []string{addr},
		Transport:  remote.TransportGRPC,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	platforms, err := client.Platforms()
	if err != nil {
		return err
	}
	devs, err := platforms[0].Devices(ocl.DeviceTypeAccelerator)
	if err != nil {
		return err
	}
	ctx, err := client.CreateContext(devs[:1])
	if err != nil {
		return err
	}
	q, err := ctx.CreateCommandQueue(devs[0], 0)
	if err != nil {
		return err
	}
	prog, err := ctx.CreateProgramWithBinary(devs[0], accel.LoopbackBitstream().Binary())
	if err != nil {
		return err
	}
	if err := prog.Build(""); err != nil {
		return err
	}
	k, err := prog.CreateKernel("copy")
	if err != nil {
		return err
	}
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, payloadBytes, nil)
	if err != nil {
		return err
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, payloadBytes, nil)
	if err != nil {
		return err
	}
	if err := k.SetArg(0, in); err != nil {
		return err
	}
	if err := k.SetArg(1, out); err != nil {
		return err
	}
	if err := k.SetArg(2, int32(payloadBytes)); err != nil {
		return err
	}
	var inflight []ocl.Event
	for {
		select {
		case <-stop:
			return q.Finish() // drain so the final accounting is settled
		default:
		}
		var last ocl.Event
		for i := 0; i < ops; i++ {
			ev, err := q.EnqueueTask(k, nil)
			if err != nil {
				return err
			}
			last = ev
		}
		if err := q.Flush(); err != nil {
			return err
		}
		inflight = append(inflight, last)
		if len(inflight) >= window {
			if err := ocl.WaitForEvents(inflight[0]); err != nil {
				return err
			}
			inflight = inflight[1:]
		}
	}
}

// FairnessAblation runs the skew workload through the pure
// discrete-event simulation (sim.Server vs sim.RRServer) and returns the
// light tenant's occupancy share under each — the prediction the live
// experiment must reproduce: fair queuing lifts the minority tenant's
// share, strict FIFO starves it.
//
// Jobs are enqueued at OP granularity (a heavy task is heavyOps unit
// jobs, re-armed closed-loop when its last op completes), because that
// is what the real drr discipline equalizes: Item.Cost is the task's op
// count, so fairness is measured in service demand, not task count.
func FairnessAblation(heavyOps, lightOps int, opService time.Duration, window int, horizon time.Duration) (fifoLightShare, fairLightShare float64) {
	run := func(fair bool) float64 {
		eng := sim.NewEngine()
		busy := map[string]time.Duration{}
		var enqueueTask func(name string, ops int)
		// unit accounts one op's service; the task's last op re-arms the
		// closed loop.
		unit := func(name string, ops int, last bool) func(wait, service time.Duration) {
			return func(_, service time.Duration) {
				busy[name] += service
				if last && eng.Now() < horizon {
					enqueueTask(name, ops)
				}
			}
		}
		if fair {
			srv := eng.NewRRServer()
			enqueueTask = func(name string, ops int) {
				for i := 0; i < ops; i++ {
					srv.Enqueue(name, opService, unit(name, ops, i == ops-1))
				}
			}
		} else {
			srv := eng.NewServer()
			enqueueTask = func(name string, ops int) {
				for i := 0; i < ops; i++ {
					srv.Enqueue(opService, unit(name, ops, i == ops-1))
				}
			}
		}
		for i := 0; i < window; i++ {
			enqueueTask("heavy", heavyOps)
			enqueueTask("light", lightOps)
		}
		eng.Run(horizon)
		total := busy["heavy"] + busy["light"]
		if total == 0 {
			return 0
		}
		return float64(busy["light"]) / float64(total)
	}
	return run(false), run(true)
}
