package simcluster

// End-to-end distributed-tracing test: a write -> copy-kernel -> read task
// runs through a real Remote Library <-> Device Manager pair, and the
// spans recorded on both sides must share one trace ID and decompose the
// call end to end — client call issue, RPC send, deferred-ack wait,
// central-queue wait, device execution, notification delivery.

import (
	"testing"
	"time"

	"blastfunction/internal/manager"
	"blastfunction/internal/obs"
	"blastfunction/internal/ocl"
	"blastfunction/internal/remote"
)

func TestTraceEndToEnd(t *testing.T) {
	rig := newChaosRig(t, manager.Config{DeviceID: "trace-A"})
	defer rig.close()

	tracer := obs.New(obs.Config{Component: "library", SampleRate: 1})
	client, err := remote.Dial(remote.Config{
		ClientName: "trace-client",
		Managers:   []string{rig.addr},
		Transport:  remote.TransportGRPC,
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, q, k := openLoopback(t, client)

	payload := []byte("trace me end to end")
	in, err := ctx.CreateBuffer(ocl.MemReadOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.CreateBuffer(ocl.MemWriteOnly, len(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, arg := range []any{in, out, int32(len(payload))} {
		if err := k.SetArg(i, arg); err != nil {
			t.Fatal(err)
		}
	}

	// One flush-formed task: write -> kernel -> read, sealed by Finish.
	if _, err := q.EnqueueWriteBuffer(in, false, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueTask(k, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	if _, err := q.EnqueueReadBuffer(out, false, 0, dst, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(payload) {
		t.Fatalf("loopback corrupted payload: %q", dst)
	}

	clientSpans := tracer.Spans()
	if len(clientSpans) == 0 {
		t.Fatal("no client spans recorded at sample rate 1")
	}
	trace := clientSpans[0].Trace
	if trace == 0 {
		t.Fatal("client span with zero trace id")
	}
	for _, sp := range clientSpans {
		if sp.Trace != trace {
			t.Fatalf("client spans span multiple traces: %s and %s", trace, sp.Trace)
		}
	}

	// The manager's spans arrive asynchronously (its notify span is
	// recorded after the batch frame is on the wire); poll briefly.
	var mgrSpans []obs.Span
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mgrSpans = rig.mgr.Tracer().SpansFor(trace)
		if countStage(mgrSpans, "notify") > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Client-side decomposition: per-op call/send/ack-wait plus the task
	// root span.
	for stage, want := range map[string]int{"call": 3, "send": 3, "ack-wait": 3, "task": 1} {
		if got := countStage(clientSpans, stage); got != want {
			t.Errorf("client %q spans = %d, want %d\n%v", stage, got, want, clientSpans)
		}
	}
	// Manager-side decomposition, continuing the same trace.
	for stage, want := range map[string]int{"queue-wait": 1, "execute": 1, "op": 3, "notify": 1} {
		if got := countStage(mgrSpans, stage); got != want {
			t.Errorf("manager %q spans = %d, want %d\n%v", stage, got, want, mgrSpans)
		}
	}
	for _, sp := range mgrSpans {
		if sp.Component != "manager" {
			t.Errorf("manager span has component %q", sp.Component)
		}
	}

	// The merged timeline covers the call end to end: the client's call
	// spans open before anything else and close after the board is done,
	// so queue wait and device execution nest inside the client window.
	var start, callEnd time.Time
	for _, sp := range clientSpans {
		if start.IsZero() || sp.Start.Before(start) {
			start = sp.Start
		}
		if sp.Stage == "call" && sp.End().After(callEnd) {
			callEnd = sp.End()
		}
	}
	if !callEnd.After(start) {
		t.Fatalf("degenerate client window [%v, %v]", start, callEnd)
	}
	for _, sp := range mgrSpans {
		if sp.Stage == "notify" {
			continue // delivery races the client's terminal processing
		}
		if sp.Start.Before(start) || sp.End().After(callEnd) {
			t.Errorf("manager %q span [%v, %v] outside client window [%v, %v]",
				sp.Stage, sp.Start, sp.End(), start, callEnd)
		}
	}
}

func countStage(spans []obs.Span, stage string) int {
	n := 0
	for _, sp := range spans {
		if sp.Stage == stage {
			n++
		}
	}
	return n
}
