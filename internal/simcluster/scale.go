package simcluster

import (
	"fmt"
	"sort"
	"time"

	"blastfunction/internal/metrics"
	"blastfunction/internal/registry"
	"blastfunction/internal/sim"
)

// ScaleConfig parameterizes the cluster-scale front-door experiment: a
// DES of hundreds of boards and hundreds of tenants driving the gateway's
// admission + routing plane near saturation, with the placement pass run
// through the real Registry/Gatherer/TSDB stack so the experiment also
// measures Algorithm 1's cost at scale.
type ScaleConfig struct {
	// Boards is the cluster size (simulated FPGA boards, one per node);
	// default 100.
	Boards int
	// Tenants is the number of independent request sources; default 500.
	Tenants int
	// ReplicasPerTenant is each tenant's function replica count; every
	// replica is placed on a board by the real Allocate. Default 2.
	ReplicasPerTenant int
	// ServiceTime is the per-request board service demand; default 8ms.
	ServiceTime time.Duration
	// Load is the offered load as a fraction of aggregate cluster
	// capacity; default 1.05 (5 % past saturation — the regime where the
	// front door earns its keep).
	Load float64
	// Admission enables per-tenant token buckets at the front door.
	Admission bool
	// AdmitRate is the per-tenant admitted rate (requests/second); zero
	// derives 90 % of the tenant's fair capacity share.
	AdmitRate float64
	// AdmitBurst is the bucket capacity; default 5.
	AdmitBurst float64
	// Router selects the routing policy over each tenant's replicas:
	// "roundrobin" (default) or "least-inflight".
	Router string
	// Warmup is discarded before measurement; default 2s.
	Warmup time.Duration
	// Measure is the measured window; default 10s.
	Measure time.Duration
	// Seed perturbs the arrival jitter streams; default 1.
	Seed uint64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Boards <= 0 {
		c.Boards = 100
	}
	if c.Tenants <= 0 {
		c.Tenants = 500
	}
	if c.ReplicasPerTenant <= 0 {
		c.ReplicasPerTenant = 2
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 8 * time.Millisecond
	}
	if c.Load <= 0 {
		c.Load = 1.05
	}
	if c.AdmitBurst <= 0 {
		c.AdmitBurst = 5
	}
	if c.Router == "" {
		c.Router = "roundrobin"
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.AdmitRate <= 0 {
		capacity := float64(c.Boards) / c.ServiceTime.Seconds()
		c.AdmitRate = 0.9 * capacity / float64(c.Tenants)
	}
	return c
}

// ScaleResult is the experiment outcome.
type ScaleResult struct {
	Boards   int     `json:"boards"`
	Tenants  int     `json:"tenants"`
	Replicas int     `json:"replicas_per_tenant"`
	Router   string  `json:"router"`
	Admitted bool    `json:"admission"`
	Load     float64 `json:"offered_load"`

	Arrivals      int     `json:"arrivals"`
	Completed     int     `json:"completed"`
	Rejected      int     `json:"rejected"`
	RejectionRate float64 `json:"rejection_rate"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanUtil      float64 `json:"mean_utilization"`

	// Placement-pass cost: the real Allocate run once per replica over
	// the real Gatherer/TSDB.
	Allocations       int     `json:"allocations"`
	GathererComputes  uint64  `json:"gatherer_computes"`
	GathererCacheHits uint64  `json:"gatherer_cache_hits"`
	AllocWallMs       float64 `json:"alloc_wall_ms"`
}

// scaleRng is the deterministic LCG jitter stream used across the DES
// harness (same constants as experiment.go's generators).
func scaleRng(state *uint64) float64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return float64(*state>>11) / float64(1<<53)
}

// RunScale places Tenants×Replicas function instances on Boards simulated
// boards through the real Registry (Algorithm 1 over a Gatherer-backed
// TSDB), then drives open-loop arrivals through a front-door model —
// optional per-tenant token buckets plus a routing policy over each
// tenant's replicas — into per-board FIFO servers, and reports tail
// latency, rejection rate and the placement pass's metric-query cost.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()

	// Placement: real TSDB + Gatherer + Registry. Two scrape generations
	// seed every board's busy-seconds series so Rate() has a window.
	db := metrics.NewTSDB(15 * time.Minute)
	gatherer := registry.NewGatherer(db)
	base := time.Unix(0, 0)
	gatherer.Now = func() time.Time { return base.Add(20 * time.Second) }
	// The scale experiment isolates the front door (admission + routing):
	// the reconfiguration penalty is zeroed so placements spread by load
	// exactly as in the paper's Algorithm 1, instead of piling onto
	// already-flashed boards. The reconfig-storm experiment studies that
	// tradeoff separately.
	policy := registry.DefaultPolicy(gatherer)
	policy.ReconfigPenalty = 0
	reg, err := registry.New(policy)
	if err != nil {
		return nil, err
	}
	var samples0, samples1 []metrics.Sample
	for i := 0; i < cfg.Boards; i++ {
		id := fmt.Sprintf("board-%03d", i)
		node := fmt.Sprintf("node-%03d", i)
		if err := reg.RegisterDevice(registry.Device{ID: id, Node: node}); err != nil {
			return nil, err
		}
		lbl := metrics.Labels{"device": id, "node": node}
		samples0 = append(samples0, metrics.Sample{Name: "bf_device_busy_seconds_total", Labels: lbl, Value: 0})
		samples1 = append(samples1, metrics.Sample{Name: "bf_device_busy_seconds_total", Labels: lbl, Value: 0.1})
	}
	db.Append(base, samples0)
	db.Append(base.Add(10*time.Second), samples1)

	// One accelerator family: every tenant's function claims blank boards
	// on first touch and shares them afterwards.
	boardIdx := make(map[string]int, cfg.Boards)
	for i := 0; i < cfg.Boards; i++ {
		boardIdx[fmt.Sprintf("board-%03d", i)] = i
	}
	endpoints := make([][]int, cfg.Tenants) // tenant -> board index per replica
	allocStart := time.Now()
	allocations := 0
	for t := 0; t < cfg.Tenants; t++ {
		fn := fmt.Sprintf("tenant-%04d", t)
		if err := reg.RegisterFunction(registry.Function{
			Name:      fn,
			Query:     registry.DeviceQuery{Accelerator: "bench"},
			Bitstream: "bench-bits",
		}); err != nil {
			return nil, err
		}
		for rep := 0; rep < cfg.ReplicasPerTenant; rep++ {
			uid := fmt.Sprintf("%s-r%d", fn, rep)
			alloc, err := reg.Allocate(registry.AllocRequest{
				InstanceUID: uid, InstanceName: uid, Function: fn,
			})
			if err != nil {
				return nil, fmt.Errorf("placing %s: %w", uid, err)
			}
			endpoints[t] = append(endpoints[t], boardIdx[alloc.Device.ID])
			allocations++
		}
	}
	allocWall := time.Since(allocStart)
	gstats := gatherer.Stats()

	// DES: per-board FIFO servers with live in-flight counters.
	engine := sim.NewEngine()
	servers := make([]*sim.Server, cfg.Boards)
	inflight := make([]int, cfg.Boards)
	for i := range servers {
		servers[i] = engine.NewServer()
	}

	end := cfg.Warmup + cfg.Measure
	perTenantRate := cfg.Load * (float64(cfg.Boards) / cfg.ServiceTime.Seconds()) / float64(cfg.Tenants)
	meanGap := time.Duration(float64(time.Second) / perTenantRate)

	var arrivals, completed, rejected int
	var latencies []time.Duration

	type tenantState struct {
		rng    uint64
		rr     int
		tokens float64
		lastT  time.Duration
	}
	tenants := make([]*tenantState, cfg.Tenants)
	for t := range tenants {
		tenants[t] = &tenantState{rng: cfg.Seed + uint64(t)*0x9E3779B97F4A7C15, tokens: cfg.AdmitBurst}
	}

	route := func(ts *tenantState, eps []int) int {
		switch cfg.Router {
		case "least-inflight":
			start := ts.rr % len(eps)
			ts.rr++
			best := eps[start]
			for k := 1; k < len(eps); k++ {
				if b := eps[(start+k)%len(eps)]; inflight[b] < inflight[best] {
					best = b
				}
			}
			return best
		default: // roundrobin
			b := eps[ts.rr%len(eps)]
			ts.rr++
			return b
		}
	}

	var arrive func(t int)
	arrive = func(t int) {
		ts := tenants[t]
		now := engine.Now()
		measured := now >= cfg.Warmup && now < end

		admitted := true
		if cfg.Admission {
			// Virtual-time token bucket.
			dt := (now - ts.lastT).Seconds()
			ts.lastT = now
			ts.tokens += cfg.AdmitRate * dt
			if ts.tokens > cfg.AdmitBurst {
				ts.tokens = cfg.AdmitBurst
			}
			if ts.tokens >= 1 {
				ts.tokens--
			} else {
				admitted = false
			}
		}
		if measured {
			arrivals++
			if !admitted {
				rejected++
			}
		}
		if admitted {
			b := route(ts, endpoints[t])
			inflight[b]++
			servers[b].Enqueue(cfg.ServiceTime, func(wait, service time.Duration) {
				inflight[b]--
				if measured {
					completed++
					latencies = append(latencies, wait+service)
				}
			})
		}
		// Jittered open-loop arrivals, mean gap preserved.
		gap := time.Duration((0.5 + scaleRng(&ts.rng)) * float64(meanGap))
		if next := now + gap; next < end {
			engine.After(gap, func() { arrive(t) })
		}
	}

	for t := 0; t < cfg.Tenants; t++ {
		// Deterministic phase offsets spread the tenants over the first gap.
		ts := tenants[t]
		engine.At(time.Duration(scaleRng(&ts.rng)*float64(meanGap)), func(t int) func() {
			return func() { arrive(t) }
		}(t))
	}
	// Drain completely so every measured arrival's completion is counted
	// (arrivals stop scheduling at end, so the queue empties).
	for engine.Step() {
	}

	res := &ScaleResult{
		Boards:   cfg.Boards,
		Tenants:  cfg.Tenants,
		Replicas: cfg.ReplicasPerTenant,
		Router:   cfg.Router,
		Admitted: cfg.Admission,
		Load:     cfg.Load,

		Arrivals:  arrivals,
		Completed: completed,
		Rejected:  rejected,

		Allocations:       allocations,
		GathererComputes:  gstats.Computes,
		GathererCacheHits: gstats.CacheHits,
		AllocWallMs:       float64(allocWall.Microseconds()) / 1000,
	}
	if arrivals > 0 {
		res.RejectionRate = float64(rejected) / float64(arrivals)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50Ms = float64(latencies[(len(latencies)-1)*50/100].Microseconds()) / 1000
		res.P99Ms = float64(latencies[(len(latencies)-1)*99/100].Microseconds()) / 1000
	}
	var busy time.Duration
	for _, s := range servers {
		busy += s.BusyTime()
	}
	if elapsed := engine.Now(); elapsed > 0 {
		res.MeanUtil = busy.Seconds() / (float64(cfg.Boards) * elapsed.Seconds())
	}
	return res, nil
}
