package flightrec

import (
	"testing"
	"time"
)

// BenchmarkLifecycle is the milestone-at-a-time shape: one lock
// acquisition per recorded event.
func BenchmarkLifecycle(b *testing.B) {
	rec := New(Config{Process: "bench"})
	defer rec.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := rec.Begin(0, "bench")
		rec.Record(key, Event{Kind: KindEnqueued, Depth: 1, Pos: 1})
		rec.Record(key, Event{Kind: KindScheduled, Dur: time.Millisecond})
		rec.Record(key, Event{Kind: KindBufferMiss})
		rec.Record(key, Event{Kind: KindUpload, Dur: time.Millisecond, Detail: "device-write"})
		rec.Record(key, Event{Kind: KindExecute, Dur: time.Millisecond, Detail: "copy"})
		rec.Record(key, Event{Kind: KindNotify, Dur: time.Microsecond})
		rec.Complete(key, 3*time.Millisecond, false, "")
	}
}

// BenchmarkLifecycleBatched is the shape the hot paths actually use:
// milestones accumulated lock-free and applied by CompleteWith in one
// locked pass — three lock acquisitions per task instead of eight.
func BenchmarkLifecycleBatched(b *testing.B) {
	rec := New(Config{Process: "bench"})
	defer rec.Close()
	batch := []Event{
		{Kind: KindEnqueued, Depth: 1, Pos: 1},
		{Kind: KindScheduled, Dur: time.Millisecond},
		{Kind: KindUpload, Dur: time.Millisecond, Detail: "device-write"},
		{Kind: KindExecute, Dur: time.Millisecond, Detail: "copy"},
		{Kind: KindNotify, Dur: time.Microsecond},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := rec.Begin(0, "bench")
		rec.Record(key, Event{Kind: KindBufferMiss})
		rec.CompleteWith(key, "bench", batch, 3*time.Millisecond, false, "")
	}
}
