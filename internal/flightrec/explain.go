package flightrec

// The postmortem engine: given a trace ID, pull every signal the stack
// produces — flight skeletons, sampled spans, trace-correlated logs,
// alert states, SLO burn reports, flash history — from every reachable
// process concurrently, merge them into one causal timeline, attribute
// the end-to-end latency to wait-breakdown stages (admission, queue,
// flash-wait, upload, execute, notify), and render a dominant-contributor
// verdict with the evidence lines that support it. `blastctl explain`
// is a thin wrapper around Explainer; SLO fast-burn pages call
// CaptureExplain from their OnFire hook so the report lands on disk next
// to the pprof snapshots while the incident is still live.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blastfunction/internal/alert"
	"blastfunction/internal/flash"
	"blastfunction/internal/logx"
	"blastfunction/internal/obs"
	"blastfunction/internal/slo"
)

// Stage names in attribution order. "unattributed" is the remainder of
// the client-observed total no stage claims (wire transit, client-side
// serialization).
var stageOrder = []string{"admission", "queue", "flash-wait", "upload", "execute", "notify"}

// StageShare is one wait-breakdown row.
type StageShare struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
	// Frac is the stage's share of the client-observed total (0..1).
	Frac float64 `json:"frac"`
}

// Source records what one process contributed to the postmortem.
type Source struct {
	Base    string `json:"base"`
	Process string `json:"process,omitempty"`
	Flights int    `json:"flights"`
	Spans   int    `json:"spans"`
	Logs    int    `json:"logs"`
	// SpansEvicted is the process's report of spans for this trace that
	// its ring already overwrote (X-Spans-Evicted).
	SpansEvicted int `json:"spans_evicted,omitempty"`
	// Err marks an unreachable process; the timeline is partial.
	Err string `json:"err,omitempty"`
}

// TimelineEntry is one merged causal-timeline line.
type TimelineEntry struct {
	Time    time.Time `json:"time"`
	Process string    `json:"process"`
	// Origin is the signal the entry came from: "flight", "span", "log".
	Origin string        `json:"origin"`
	Text   string        `json:"text"`
	Dur    time.Duration `json:"dur_ns,omitempty"`
	Seq    uint64        `json:"seq,omitempty"`
}

// Postmortem is the full cross-signal explanation of one trace.
type Postmortem struct {
	Trace   obs.TraceID `json:"trace"`
	Sources []Source    `json:"sources"`
	// SpansEvicted totals ring evictions for this trace across processes;
	// when non-zero the span timeline is explicitly partial.
	SpansEvicted int             `json:"spans_evicted,omitempty"`
	Timeline     []TimelineEntry `json:"timeline"`
	// Total is the client-observed end-to-end latency (the longest
	// terminal flight milestone across processes).
	Total        time.Duration `json:"total_ns"`
	Stages       []StageShare  `json:"stages"`
	Unattributed time.Duration `json:"unattributed_ns"`
	// Verdict names the dominant latency contributor.
	Verdict  string   `json:"verdict"`
	Evidence []string `json:"evidence,omitempty"`
	// Alerts carries currently firing/pending alert states; Burning the
	// SLOs whose budget is actively burning.
	Alerts  []alert.Status `json:"alerts,omitempty"`
	Burning []string       `json:"burning,omitempty"`
	// FlashJobs is reconfiguration history correlated to the flight's
	// flash-join bitstreams.
	FlashJobs []flash.Job `json:"flash_jobs,omitempty"`
}

// Explainer fetches and correlates. Bases are process base URLs
// (http://host:port, no path); duplicates are tolerated.
type Explainer struct {
	Bases []string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// procFlight is a flight tagged with the process that recorded it.
type procFlight struct {
	proc   string
	flight Flight
}

// baseResult accumulates one base's fetches.
type baseResult struct {
	src     Source
	flights []procFlight
	spans   []obs.Span
	logs    []logx.Event
	alerts  []alert.Status
	reports []slo.Report
	flash   *flashDoc
}

// flashDoc mirrors the flash service's /debug/flash payload.
type flashDoc struct {
	Jobs    []flash.Job            `json:"jobs"`
	Queues  map[string]int         `json:"queue_depths"`
	History map[string][]flash.Job `json:"history"`
}

func (e *Explainer) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

// getJSON fetches and decodes one endpoint; a non-200 or unreachable
// endpoint is a soft miss (not every process serves every signal).
func (e *Explainer) getJSON(u string, v any) (*http.Response, error) {
	resp, err := e.client().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return resp, fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp, fmt.Errorf("GET %s: decoding: %w", u, err)
	}
	return resp, nil
}

// fetchBase pulls every signal one process exposes. Only a base where
// ALL endpoints fail is marked unreachable.
func (e *Explainer) fetchBase(base string, trace obs.TraceID) baseResult {
	res := baseResult{src: Source{Base: base}}
	hits := 0

	var snap Snapshot
	if _, err := e.getJSON(base+"/debug/flight?trace="+trace.String(), &snap); err == nil {
		hits++
		res.src.Process = snap.Process
		for _, f := range snap.Flights {
			res.flights = append(res.flights, procFlight{proc: snap.Process, flight: f})
		}
		res.src.Flights = len(snap.Flights)
	}
	if resp, err := e.getJSON(base+"/debug/spans?trace="+trace.String(), &res.spans); err == nil {
		hits++
		res.src.Spans = len(res.spans)
		if s := resp.Header.Get("X-Spans-Evicted"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				res.src.SpansEvicted = n
			}
		}
	}
	if _, err := e.getJSON(base+"/debug/logs?trace="+trace.String(), &res.logs); err == nil {
		hits++
		res.src.Logs = len(res.logs)
	}
	if _, err := e.getJSON(base+"/debug/alerts", &res.alerts); err == nil {
		hits++
	}
	if _, err := e.getJSON(base+"/debug/slo", &res.reports); err == nil {
		hits++
	}
	var fd flashDoc
	if _, err := e.getJSON(base+"/debug/flash", &fd); err == nil {
		hits++
		res.flash = &fd
	}
	if hits == 0 {
		res.src.Err = "unreachable: no debug endpoint answered"
	}
	return res
}

// Explain builds the postmortem for one trace, querying all bases
// concurrently.
func (e *Explainer) Explain(trace obs.TraceID) (*Postmortem, error) {
	if trace == 0 {
		return nil, fmt.Errorf("explain: zero trace ID")
	}
	bases := dedupeBases(e.Bases)
	if len(bases) == 0 {
		return nil, fmt.Errorf("explain: no process base URLs")
	}
	results := make([]baseResult, len(bases))
	var wg sync.WaitGroup
	for i, b := range bases {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			results[i] = e.fetchBase(b, trace)
		}(i, b)
	}
	wg.Wait()

	pm := &Postmortem{Trace: trace}
	var flights []procFlight
	var spans []obs.Span
	var logs []logx.Event
	var flashDocs []*flashDoc
	seenAlert := map[string]bool{}
	seenSLO := map[string]bool{}
	for _, res := range results {
		pm.Sources = append(pm.Sources, res.src)
		pm.SpansEvicted += res.src.SpansEvicted
		flights = append(flights, res.flights...)
		spans = append(spans, res.spans...)
		logs = append(logs, res.logs...)
		if res.flash != nil {
			flashDocs = append(flashDocs, res.flash)
		}
		for _, st := range res.alerts {
			if st.State != alert.StateFiring && st.State != alert.StatePending {
				continue
			}
			key := st.Rule + "|" + fmt.Sprint(st.Labels)
			if !seenAlert[key] {
				seenAlert[key] = true
				pm.Alerts = append(pm.Alerts, st)
			}
		}
		for _, rep := range res.reports {
			for _, sli := range []slo.SLIReport{rep.Latency, rep.Availability} {
				if !sli.HasData {
					continue
				}
				for _, b := range sli.Burns {
					if b.Breached && !seenSLO[rep.Name+"/"+sli.Kind] {
						seenSLO[rep.Name+"/"+sli.Kind] = true
						pm.Burning = append(pm.Burning, rep.Name+" ("+sli.Kind+")")
					}
				}
			}
		}
	}
	if len(flights) == 0 && len(spans) == 0 && len(logs) == 0 {
		return pm, fmt.Errorf("explain: no process holds signals for trace %s", trace)
	}

	pm.Timeline = buildTimeline(flights, spans, logs)
	attribute(pm, flights)
	correlateFlash(pm, flights, flashDocs)
	return pm, nil
}

func dedupeBases(in []string) []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range in {
		b = strings.TrimRight(b, "/")
		if b != "" && !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// buildTimeline merges flight events, spans, and log lines into one
// time-ordered causal timeline. Ties break on process name then sequence
// — the same determinism contract logx.Merge gives interleaved rings.
func buildTimeline(flights []procFlight, spans []obs.Span, logs []logx.Event) []TimelineEntry {
	var tl []TimelineEntry
	for _, pf := range flights {
		for _, ev := range pf.flight.Events {
			text := string(ev.Kind)
			if ev.Detail != "" {
				text += " (" + ev.Detail + ")"
			}
			if ev.Kind == KindEnqueued && ev.Depth > 0 {
				text += fmt.Sprintf(" depth=%d pos=%d", ev.Depth, ev.Pos)
			}
			if ev.Count > 1 {
				text += fmt.Sprintf(" ×%d", ev.Count)
			}
			tl = append(tl, TimelineEntry{Time: ev.Time, Process: pf.proc, Origin: "flight", Text: text, Dur: ev.Dur, Seq: ev.Seq})
		}
	}
	for _, sp := range spans {
		text := sp.Stage
		if sp.Note != "" {
			text += " (" + sp.Note + ")"
		}
		tl = append(tl, TimelineEntry{Time: sp.Start, Process: sp.Component, Origin: "span", Text: text, Dur: sp.Duration, Seq: uint64(sp.ID)})
	}
	for _, ev := range logs {
		proc := ev.Proc
		if proc == "" {
			proc = ev.Component
		}
		tl = append(tl, TimelineEntry{Time: ev.Time, Process: proc, Origin: "log", Text: "[" + ev.Level.String() + "] " + ev.Msg, Seq: ev.Seq})
	}
	sort.SliceStable(tl, func(i, j int) bool {
		a, b := tl[i], tl[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Process != b.Process {
			return a.Process < b.Process
		}
		return a.Seq < b.Seq
	})
	return tl
}

// attribute computes the wait breakdown. Flight events carry measured
// durations; each stage sums its kind across processes, with one
// asymmetry: a process that ran the execute loop reports its device
// write time separately (KindUpload), so its execute share is the loop
// minus its own uploads — keeping "upload" and "execute" disjoint.
func attribute(pm *Postmortem, flights []procFlight) {
	stage := map[string]time.Duration{}
	var evidence []string
	// Per-process upload sums for the execute subtraction.
	uploadBy := map[string]time.Duration{}
	execBy := map[string]time.Duration{}
	for _, pf := range flights {
		for _, ev := range pf.flight.Events {
			switch ev.Kind {
			case KindAdmitted:
				stage["admission"] += ev.Dur
			case KindScheduled:
				stage["queue"] += ev.Dur
				if ev.Dur > time.Millisecond {
					evidence = append(evidence, fmt.Sprintf("queue: waited %s before a worker popped the task (%s)", round(ev.Dur), ev.Detail))
				}
			case KindFlashWait:
				stage["flash-wait"] += ev.Dur
				evidence = append(evidence, fmt.Sprintf("flash: blocked %s for bitstream %s", round(ev.Dur), ev.Detail))
			case KindUpload:
				stage["upload"] += ev.Dur
				uploadBy[pf.proc] += ev.Dur
			case KindExecute:
				stage["execute"] += ev.Dur
				execBy[pf.proc] += ev.Dur
			case KindNotify:
				stage["notify"] += ev.Dur
			case KindEnqueued:
				if ev.Depth > 1 {
					evidence = append(evidence, fmt.Sprintf("queue: entered at position %d of %d queued tasks", ev.Pos, ev.Depth))
				}
			case KindBufferHit:
				evidence = append(evidence, withCount("data: buffer-cache hit skipped an upload", ev.Count))
			case KindMemoHit:
				evidence = append(evidence, fmt.Sprintf("data: kernel served from memo cache in %s", round(ev.Dur)))
			case KindFailure:
				evidence = append(evidence, "failure: "+ev.Detail)
			case KindRetry:
				evidence = append(evidence, withCount("retry: "+ev.Detail, ev.Count))
			case KindComplete:
				if ev.Dur > pm.Total {
					pm.Total = ev.Dur
				}
			}
		}
		if pf.flight.Notable != "" {
			evidence = append(evidence, fmt.Sprintf("%s flagged the flight notable: %s", pf.proc, pf.flight.Notable))
		}
		if pf.flight.Dropped > 0 {
			evidence = append(evidence, fmt.Sprintf("%s dropped %d milestones past the per-flight cap", pf.proc, pf.flight.Dropped))
		}
	}
	// The execute loop wall-clocks its own device writes; keep the stages
	// disjoint by moving that share to "upload".
	for proc, up := range uploadBy {
		if ex := execBy[proc]; ex > 0 {
			if up > ex {
				up = ex
			}
			stage["execute"] -= up
		}
	}

	var attributed time.Duration
	for _, name := range stageOrder {
		d := stage[name]
		if d < 0 {
			d = 0
		}
		attributed += d
		share := StageShare{Name: name, Dur: d}
		if pm.Total > 0 {
			share.Frac = float64(d) / float64(pm.Total)
		}
		pm.Stages = append(pm.Stages, share)
	}
	if pm.Total > attributed {
		pm.Unattributed = pm.Total - attributed
	}

	dominant := StageShare{Name: "unattributed", Dur: pm.Unattributed}
	for _, s := range pm.Stages {
		if s.Dur > dominant.Dur {
			dominant = s
		}
	}
	if pm.Total <= 0 {
		pm.Verdict = "no terminal milestone recorded: the task never completed (or completion was not observed)"
	} else {
		pct := 100 * float64(dominant.Dur) / float64(pm.Total)
		pm.Verdict = fmt.Sprintf("%s dominated: %s of the %s client-observed latency (%.1f%%)",
			dominant.Name, round(dominant.Dur), round(pm.Total), pct)
	}
	pm.Evidence = evidence
}

// correlateFlash attaches reconfiguration jobs whose bitstream matches a
// flash-join milestone on the flight.
func correlateFlash(pm *Postmortem, flights []procFlight, docs []*flashDoc) {
	want := map[string]bool{}
	for _, pf := range flights {
		for _, ev := range pf.flight.Events {
			if ev.Kind == KindFlashJoin || ev.Kind == KindFlashWait {
				if ev.Detail != "" {
					want[ev.Detail] = true
				}
			}
		}
	}
	if len(want) == 0 {
		return
	}
	seen := map[uint64]bool{}
	for _, doc := range docs {
		for _, j := range doc.Jobs {
			if want[j.Bitstream] && !seen[j.ID] {
				seen[j.ID] = true
				pm.FlashJobs = append(pm.FlashJobs, j)
			}
		}
		for _, hist := range doc.History {
			for _, j := range hist {
				if want[j.Bitstream] && !seen[j.ID] {
					seen[j.ID] = true
					pm.FlashJobs = append(pm.FlashJobs, j)
				}
			}
		}
	}
	sort.Slice(pm.FlashJobs, func(i, j int) bool { return pm.FlashJobs[i].ID < pm.FlashJobs[j].ID })
}

// Render writes the human-readable postmortem report.
func (pm *Postmortem) Render(w io.Writer) {
	fmt.Fprintf(w, "postmortem: trace %s\n", pm.Trace)
	reachable := 0
	for _, s := range pm.Sources {
		if s.Err == "" {
			reachable++
		}
	}
	fmt.Fprintf(w, "sources: %d/%d processes answered\n", reachable, len(pm.Sources))
	for _, s := range pm.Sources {
		if s.Err != "" {
			fmt.Fprintf(w, "  %-28s %s\n", s.Base, s.Err)
			continue
		}
		name := s.Process
		if name == "" {
			name = s.Base
		}
		fmt.Fprintf(w, "  %-28s %d flight(s), %d span(s), %d log line(s)\n", name, s.Flights, s.Spans, s.Logs)
	}
	if pm.SpansEvicted > 0 {
		fmt.Fprintf(w, "WARNING: %d spans evicted, timeline partial\n", pm.SpansEvicted)
	}

	if len(pm.Timeline) > 0 {
		fmt.Fprintf(w, "\ntimeline:\n")
		for _, e := range pm.Timeline {
			dur := ""
			if e.Dur > 0 {
				dur = " [" + round(e.Dur).String() + "]"
			}
			fmt.Fprintf(w, "  %s  %-22s %-6s %s%s\n",
				e.Time.Format("15:04:05.000000"), e.Process, e.Origin, e.Text, dur)
		}
	}

	fmt.Fprintf(w, "\nwait breakdown (total %s client-observed):\n", round(pm.Total))
	for _, s := range pm.Stages {
		fmt.Fprintf(w, "  %-12s %10s  %5.1f%%\n", s.Name, round(s.Dur), 100*s.Frac)
	}
	if pm.Total > 0 {
		fmt.Fprintf(w, "  %-12s %10s  %5.1f%%\n", "unattributed", round(pm.Unattributed),
			100*float64(pm.Unattributed)/float64(pm.Total))
	}
	fmt.Fprintf(w, "\nverdict: %s\n", pm.Verdict)
	if len(pm.Evidence) > 0 {
		fmt.Fprintf(w, "evidence:\n")
		for _, ev := range pm.Evidence {
			fmt.Fprintf(w, "  - %s\n", ev)
		}
	}
	for _, st := range pm.Alerts {
		fmt.Fprintf(w, "alert: %s %s %v since %s\n", st.Rule, st.State, st.Labels, st.Since.Format(time.RFC3339))
	}
	for _, name := range pm.Burning {
		fmt.Fprintf(w, "slo: %s is burning error budget\n", name)
	}
	for _, j := range pm.FlashJobs {
		fmt.Fprintf(w, "flash: job %d bitstream %s on %s: wait %.3fs flash %.3fs state %s\n",
			j.ID, j.Bitstream, j.Board, j.WaitSeconds, j.FlashSeconds, j.State)
	}
}

func withCount(s string, count int) string {
	if count > 1 {
		return fmt.Sprintf("%s ×%d", s, count)
	}
	return s
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// CaptureExplain runs a postmortem and writes the rendered report into
// dir, next to the pprof snapshots obs.ProfileCapture leaves there —
// called from SLO fast-burn OnFire hooks with the burning SLI's exemplar
// trace. Returns the written path.
func CaptureExplain(dir, tag string, bases []string, trace obs.TraceID) (string, error) {
	if dir == "" {
		return "", nil
	}
	e := &Explainer{Bases: bases, Client: &http.Client{Timeout: 5 * time.Second}}
	pm, err := e.Explain(trace)
	if pm == nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	stamp := time.Now().UTC().Format("20060102T150405.000")
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.explain.txt", stamp, obs.SanitizeTag(tag)))
	var sb strings.Builder
	pm.Render(&sb)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
