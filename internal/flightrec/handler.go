package flightrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"blastfunction/internal/obs"
)

// Handler serves the flight ring at /debug/flight. Query parameters:
// ?trace=<hex id> returns just that flight's snapshot (consulting the
// durable ledger when the ring has already evicted it), ?n=<count> tails
// the flight list. A nil recorder serves an empty snapshot so binaries
// can mount the endpoint unconditionally.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if s := req.URL.Query().Get("trace"); s != "" {
			id, err := obs.ParseTraceID(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			snap := Snapshot{Process: r.Process()}
			if r != nil {
				r.mu.Lock()
				snap.Evicted = r.evicted
				snap.Spilled = r.spilled
				r.mu.Unlock()
			}
			if f, ok := r.FlightFor(id); ok {
				snap.Flights = []Flight{f}
			}
			writeJSON(w, snap)
			return
		}
		snap := r.Snapshot()
		if s := req.URL.Query().Get("n"); s != "" {
			// Reuse obs.ServeTail's ?n= semantics on the flight list while
			// keeping the snapshot envelope (process stamp + counters).
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 {
				http.Error(w, "bad n parameter: want a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(snap.Flights) {
				snap.Flights = snap.Flights[len(snap.Flights)-n:]
			}
		}
		writeJSON(w, snap)
	})
}

// writeJSON mirrors obs.ServeTail's encode-to-memory-first discipline.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// FetchFlight retrieves one trace's flight snapshot from base's
// /debug/flight endpoint — the client half of Handler, shared by
// `blastctl explain` and the end-to-end tests.
func FetchFlight(base string, trace obs.TraceID) (Snapshot, error) {
	u := base + "/debug/flight?trace=" + trace.String()
	resp, err := http.Get(u)
	if err != nil {
		return Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Snapshot{}, fmt.Errorf("GET %s: %s: %s", u, resp.Status, body)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("GET %s: decoding: %w", u, err)
	}
	return snap, nil
}
