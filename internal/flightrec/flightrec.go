// Package flightrec is BlastFunction's task flight recorder: a
// per-process, always-on, bounded journal of task-lifecycle milestones.
// Where internal/obs records sampled spans (rich but probabilistic) and
// internal/logx records discrete events, the flight recorder guarantees
// that EVERY task leaves a compact skeleton — admitted, routed, enqueued
// with queue depth, scheduled by policy decision, cache hits, flash-window
// waits, lease renewals, execute, notify, failure cause — keyed by the
// task's trace ID when the client sampled one and by a synthetic local ID
// otherwise.
//
// Flights live in a bounded in-memory ring (oldest whole flights evicted
// under churn) served at /debug/flight. Notable flights — failed tasks and
// per-tenant tail-quantile outliers — additionally spill to a durable,
// size-capped JSONL ledger so the evidence survives the ring.
//
// A nil *Recorder is valid everywhere and records nothing, the same
// contract obs.Tracer and logx.Logger give the hot path.
package flightrec

import (
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/obs"
)

// Kind names one task-lifecycle milestone.
type Kind string

// The milestone vocabulary. Hooks across the stack record these; the
// postmortem engine keys its wait-breakdown attribution off them.
const (
	// KindAdmitted is the gateway front door's admission decision.
	KindAdmitted Kind = "admitted"
	// KindRouted is the gateway's endpoint pick (detail: router + target).
	KindRouted Kind = "routed"
	// KindEnqueued is the task landing in the manager's central queue;
	// Depth and Pos capture the queue state at admission.
	KindEnqueued Kind = "enqueued"
	// KindScheduled is the worker popping the task (detail: discipline;
	// Dur: central-queue wait).
	KindScheduled Kind = "scheduled"
	// KindBufferHit / KindBufferMiss are content-addressed buffer-cache
	// probes (session-scoped: buffers are created outside tasks).
	KindBufferHit  Kind = "buffer-cache-hit"
	KindBufferMiss Kind = "buffer-cache-miss"
	// KindMemoHit is a kernel launch served from the memoization cache.
	KindMemoHit Kind = "memo-hit"
	// KindFlashJoin is a reconfiguration request joining a flash window;
	// KindFlashWait is the blocking wait for that window to land.
	KindFlashJoin Kind = "flash-join"
	KindFlashWait Kind = "flash-wait"
	// KindLease is a session lease renewal (heartbeat or any request);
	// consecutive renewals coalesce into one event with a Count.
	KindLease Kind = "lease-renewal"
	// KindUpload is data moving toward the board: the client's wire write
	// of an enqueued payload, and the manager's write-op device time.
	KindUpload Kind = "upload"
	// KindExecute is the worker running the task's operations on the board.
	KindExecute Kind = "execute"
	// KindNotify is the completion-notification batch leaving the manager.
	KindNotify Kind = "notify"
	// KindFailure carries a failure cause (op error, lease expiry,
	// connection loss, admission rejection).
	KindFailure Kind = "failure"
	// KindRetry is a retry attempt (detail: what and why; e.g. an
	// admission-rejected request told to come back after a budget refill).
	KindRetry Kind = "retry"
	// KindComplete is terminal: Dur is the flight's end-to-end latency as
	// observed by the recording process.
	KindComplete Kind = "complete"
)

// Event is one recorded milestone. Events are compact value structs — no
// maps, no interfaces — so a flight skeleton costs a few cache lines.
type Event struct {
	Kind Kind      `json:"kind"`
	Time time.Time `json:"time"`
	// Dur is the milestone's measured duration, when it has one (queue
	// wait, execute, flash wait, ...).
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Detail carries small free-form context: the failure cause, the
	// scheduling policy, the routed endpoint.
	Detail string `json:"detail,omitempty"`
	// Depth and Pos snapshot the central queue at enqueue: total queued
	// tasks and this task's arrival position.
	Depth int `json:"depth,omitempty"`
	Pos   int `json:"pos,omitempty"`
	// Count > 1 marks a coalesced run of identical consecutive milestones
	// (lease renewals, cache hits); Time is the latest occurrence and Dur
	// the accumulated duration.
	Count int `json:"count,omitempty"`
	// Seq is the process-wide recording sequence, a deterministic
	// tie-break for merged timelines.
	Seq uint64 `json:"seq"`
}

// Flight is one task's (or session's) recorded skeleton.
type Flight struct {
	Trace obs.TraceID `json:"trace"`
	// Synthetic marks locally generated keys: the task was not sampled by
	// the tracer, so the skeleton cannot be joined across processes.
	Synthetic bool   `json:"synthetic,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	// Notable is the reason the flight spilled to the ledger ("failed:
	// ...", "tail-latency", "lease-expired"); empty for routine flights.
	Notable string  `json:"notable,omitempty"`
	Events  []Event `json:"events"`
	// Dropped counts events beyond the per-flight cap that were not
	// retained (the skeleton keeps the earliest milestones).
	Dropped int `json:"dropped,omitempty"`
}

// Config parameterizes a Recorder.
type Config struct {
	// Process stamps snapshots and ledger lines ("manager/fpga-A",
	// "library/payments", "gateway").
	Process string
	// Flights bounds the ring (whole flights; default 1024). Under churn
	// the oldest flights are evicted — the newest skeletons survive.
	Flights int
	// EventsPerFlight bounds one flight's retained milestones (default 48).
	EventsPerFlight int
	// LedgerPath, when set, is the durable JSONL spill file for notable
	// flights. When the file would exceed LedgerMaxBytes it rotates once
	// to LedgerPath+".1" (previous rotation replaced).
	LedgerPath string
	// LedgerMaxBytes caps the ledger file before rotation (default 1 MiB).
	LedgerMaxBytes int64
	// TailFactor marks a completion notable when its latency exceeds
	// TailFactor times the tenant's running mean (default 4; negative
	// disables tail detection).
	TailFactor float64
	// TailMinSamples is the per-tenant completion count before tail
	// detection engages (default 16).
	TailMinSamples int
	// Now is the injectable clock (default time.Now).
	Now func() time.Time
}

// tailStats is one tenant's decayed completion-latency estimate, the
// baseline for tail-quantile notability.
type tailStats struct {
	count int
	mean  float64 // EWMA of latency seconds
}

// Recorder is the per-process flight journal. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Recorder struct {
	cfg Config

	synth atomic.Uint64 // synthetic key counter

	mu      sync.Mutex
	flights map[obs.TraceID]*Flight
	order   []obs.TraceID // arrival order; front = eviction candidate
	head    int           // index of the oldest live entry in order
	free    []*Flight     // recycled evicted flights; reuse keeps the hot path allocation-free
	seq     uint64
	evicted uint64
	spilled uint64
	tenants map[string]*tailStats

	ledger     *os.File
	ledgerSize int64
}

// New creates a Recorder. An unopenable ledger degrades to in-memory
// recording rather than refusing to start.
func New(cfg Config) *Recorder {
	if cfg.Flights <= 0 {
		cfg.Flights = 1024
	}
	if cfg.EventsPerFlight <= 0 {
		cfg.EventsPerFlight = 48
	}
	if cfg.LedgerMaxBytes <= 0 {
		cfg.LedgerMaxBytes = 1 << 20
	}
	if cfg.TailFactor == 0 {
		cfg.TailFactor = 4
	}
	if cfg.TailMinSamples <= 0 {
		cfg.TailMinSamples = 16
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	r := &Recorder{
		cfg:     cfg,
		flights: make(map[obs.TraceID]*Flight),
		tenants: make(map[string]*tailStats),
	}
	if cfg.LedgerPath != "" {
		if f, err := os.OpenFile(cfg.LedgerPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			r.ledger = f
			if st, serr := f.Stat(); serr == nil {
				r.ledgerSize = st.Size()
			}
		}
	}
	return r
}

// Process reports the recorder's process stamp.
func (r *Recorder) Process() string {
	if r == nil {
		return ""
	}
	return r.cfg.Process
}

// synthBase sets the high bits of synthetic keys so they are visually
// distinct from sampled trace IDs in dumps (collision with a real random
// trace ID is as unlikely as any other 64-bit collision).
const synthBase = uint64(0xF1A9) << 48

// Begin opens a flight. A zero trace gets a synthetic local key — the
// always-on guarantee: unsampled tasks still leave a skeleton, they just
// cannot be joined across processes. The returned key identifies the
// flight in every later call. Re-beginning a live key is a no-op (the
// existing flight continues).
func (r *Recorder) Begin(trace obs.TraceID, tenant string) obs.TraceID {
	if r == nil {
		return 0
	}
	synthetic := trace == 0
	if synthetic {
		trace = obs.TraceID(synthBase | r.synth.Add(1))
	}
	r.mu.Lock()
	if _, ok := r.flights[trace]; !ok {
		r.admitLocked(trace, r.newFlightLocked(trace, synthetic, tenant))
	}
	r.mu.Unlock()
	return trace
}

// Alloc reserves a flight key without opening the flight: one atomic
// increment, no lock. The per-task hot paths use it — they batch their
// milestones lock-free and the flight is admitted by the task's single
// CompleteWith (or by any stray Record on the key). Sessions and
// connections, whose flights accrue events incrementally and should be
// visible while live, keep using Begin. Key semantics match Begin: the
// sampled trace when non-zero, a synthetic local key otherwise.
func (r *Recorder) Alloc(trace obs.TraceID) obs.TraceID {
	if r == nil {
		return 0
	}
	if trace == 0 {
		trace = obs.TraceID(synthBase | r.synth.Add(1))
	}
	return trace
}

// newFlightLocked hands out a flight struct, reusing a recycled one (and
// its grown event array) when available — every read path deep-copies
// events, so recycling never aliases a snapshot. Called with mu held.
func (r *Recorder) newFlightLocked(trace obs.TraceID, synthetic bool, tenant string) *Flight {
	if n := len(r.free); n > 0 {
		f := r.free[n-1]
		r.free = r.free[:n-1]
		*f = Flight{Trace: trace, Synthetic: synthetic, Tenant: tenant, Events: f.Events[:0]}
		return f
	}
	return &Flight{Trace: trace, Synthetic: synthetic, Tenant: tenant, Events: make([]Event, 0, 8)}
}

// admitLocked inserts a flight, evicting the oldest one at capacity.
// Called with mu held.
func (r *Recorder) admitLocked(trace obs.TraceID, f *Flight) {
	for len(r.flights) >= r.cfg.Flights {
		// order can carry stale entries for already-evicted keys; skip them.
		old := r.order[r.head]
		r.order[r.head] = 0
		r.head++
		if victim, live := r.flights[old]; live {
			delete(r.flights, old)
			r.evicted++
			if len(r.free) < 64 {
				r.free = append(r.free, victim)
			}
		}
	}
	r.flights[trace] = f
	r.order = append(r.order, trace)
	// Compact the order slice once the dead prefix dominates, so the
	// backing array does not grow without bound.
	if r.head > len(r.order)/2 && r.head > 64 {
		r.order = append(r.order[:0], r.order[r.head:]...)
		r.head = 0
	}
}

// Record appends one milestone to a flight. Unknown keys open a flight on
// the fly (late milestones after an eviction still leave a skeleton).
// A milestone identical in kind and detail to the flight's last retained
// event coalesces into it: Count increments, Time advances, Dur
// accumulates — the representation lease renewals and cache-hit runs want.
func (r *Recorder) Record(trace obs.TraceID, ev Event) {
	if r == nil || trace == 0 {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = r.cfg.Now()
	}
	r.mu.Lock()
	f, ok := r.flights[trace]
	if !ok {
		f = r.newFlightLocked(trace, uint64(trace)&synthBase == synthBase, "")
		r.admitLocked(trace, f)
	}
	r.appendEventLocked(f, ev)
	r.mu.Unlock()
}

// appendEventLocked stamps the sequence and appends (or coalesces) one
// event. Called with mu held.
func (r *Recorder) appendEventLocked(f *Flight, ev Event) {
	r.seq++
	ev.Seq = r.seq
	if n := len(f.Events); n > 0 {
		last := &f.Events[n-1]
		if last.Kind == ev.Kind && last.Detail == ev.Detail && last.Depth == ev.Depth && last.Pos == ev.Pos {
			if last.Count == 0 {
				last.Count = 1
			}
			last.Count++
			last.Time = ev.Time
			last.Dur += ev.Dur
			last.Seq = ev.Seq
			return
		}
	}
	if len(f.Events) >= r.cfg.EventsPerFlight {
		f.Dropped++
		return
	}
	f.Events = append(f.Events, ev)
}

// MarkNotable tags a flight and spills it to the ledger immediately.
// Repeated marks append reasons but spill only once.
func (r *Recorder) MarkNotable(trace obs.TraceID, reason string) {
	if r == nil || trace == 0 {
		return
	}
	r.mu.Lock()
	f, ok := r.flights[trace]
	if !ok {
		r.mu.Unlock()
		return
	}
	already := f.Notable != ""
	if already {
		if f.Notable != reason {
			f.Notable += "; " + reason
		}
	} else {
		f.Notable = reason
	}
	var line []byte
	if !already {
		line = r.ledgerLineLocked(f)
	}
	r.mu.Unlock()
	r.appendLedger(line)
}

// Complete terminates a flight: records the KindComplete milestone with
// the end-to-end latency, runs per-tenant tail detection, and spills the
// flight when it is notable (failed, marked, or a tail outlier).
func (r *Recorder) Complete(trace obs.TraceID, total time.Duration, failed bool, cause string) {
	r.CompleteWith(trace, "", nil, total, failed, cause)
}

// CompleteWith is Complete with a batch of accumulated milestones applied
// first, all under one lock acquisition. The hot paths collect their
// per-task milestones lock-free (the manager worker in a per-worker
// scratch slice, the client library on the command queue) and pay the
// recorder's mutex — which bounces between goroutines' cache lines —
// once per task instead of once per milestone. Events keep their
// caller-stamped times, so the merged timeline is identical to
// milestone-at-a-time recording. tenant backfills the flight's tenant
// when it is not already known — Alloc-keyed flights are admitted right
// here. The evs slice is not retained.
func (r *Recorder) CompleteWith(trace obs.TraceID, tenant string, evs []Event, total time.Duration, failed bool, cause string) {
	if r == nil || trace == 0 {
		return
	}
	detail := ""
	if failed {
		detail = "failed"
	}
	now := r.cfg.Now()
	r.mu.Lock()
	f, ok := r.flights[trace]
	if !ok {
		f = r.newFlightLocked(trace, uint64(trace)&synthBase == synthBase, tenant)
		r.admitLocked(trace, f)
	}
	if f.Tenant == "" {
		f.Tenant = tenant
	}
	for _, ev := range evs {
		if ev.Time.IsZero() {
			ev.Time = now
		}
		r.appendEventLocked(f, ev)
	}
	r.appendEventLocked(f, Event{Kind: KindComplete, Dur: total, Detail: detail, Time: now})
	notable := ""
	if failed {
		notable = "failed"
		if cause != "" {
			notable = "failed: " + cause
		}
	} else if f.Tenant != "" && r.cfg.TailFactor > 0 {
		ts := r.tenants[f.Tenant]
		if ts == nil {
			ts = &tailStats{}
			r.tenants[f.Tenant] = ts
		}
		sec := total.Seconds()
		if ts.count >= r.cfg.TailMinSamples && ts.mean > 0 && sec > r.cfg.TailFactor*ts.mean {
			notable = "tail-latency"
		}
		// EWMA with a 1/16 step: stable against single outliers, adapts
		// within a few dozen completions when the workload shifts.
		ts.count++
		if ts.mean == 0 {
			ts.mean = sec
		} else {
			ts.mean += (sec - ts.mean) / 16
		}
	}
	var line []byte
	if notable != "" && f.Notable == "" {
		f.Notable = notable
		line = r.ledgerLineLocked(f)
	}
	r.mu.Unlock()
	r.appendLedger(line)
}

// ledgerRecord is one JSONL ledger line.
type ledgerRecord struct {
	Process string    `json:"process"`
	Spilled time.Time `json:"spilled"`
	Flight  Flight    `json:"flight"`
}

// ledgerLineLocked serializes a flight for the ledger (nil when no ledger
// is configured). Called with mu held; the actual write happens outside
// the lock.
func (r *Recorder) ledgerLineLocked(f *Flight) []byte {
	if r.ledger == nil {
		return nil
	}
	r.spilled++
	cp := *f
	cp.Events = append([]Event(nil), f.Events...)
	line, err := json.Marshal(ledgerRecord{Process: r.cfg.Process, Spilled: r.cfg.Now(), Flight: cp})
	if err != nil {
		return nil
	}
	return append(line, '\n')
}

// appendLedger writes one spill line, rotating the file at the size cap.
func (r *Recorder) appendLedger(line []byte) {
	if len(line) == 0 || r.ledger == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ledgerSize+int64(len(line)) > r.cfg.LedgerMaxBytes && r.ledgerSize > 0 {
		r.ledger.Close()
		os.Rename(r.cfg.LedgerPath, r.cfg.LedgerPath+".1")
		f, err := os.OpenFile(r.cfg.LedgerPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			r.ledger = nil
			return
		}
		r.ledger = f
		r.ledgerSize = 0
	}
	if n, err := r.ledger.Write(line); err == nil {
		r.ledgerSize += int64(n)
	}
}

// Close releases the ledger file.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ledger != nil {
		r.ledger.Close()
		r.ledger = nil
	}
}

// Snapshot is the /debug/flight document.
type Snapshot struct {
	Process string   `json:"process"`
	Flights []Flight `json:"flights"`
	// Evicted counts whole flights dropped from the ring; Spilled counts
	// notable flights written to the ledger.
	Evicted uint64 `json:"evicted"`
	Spilled uint64 `json:"spilled"`
}

// Snapshot copies the ring, oldest flight first.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Process: r.cfg.Process, Evicted: r.evicted, Spilled: r.spilled}
	for i := r.head; i < len(r.order); i++ {
		f, ok := r.flights[r.order[i]]
		if !ok {
			continue
		}
		cp := *f
		cp.Events = append([]Event(nil), f.Events...)
		snap.Flights = append(snap.Flights, cp)
	}
	return snap
}

// FlightFor returns one trace's flight, consulting the ring first and the
// durable ledger (current file, then the rotated one) as fallback.
func (r *Recorder) FlightFor(trace obs.TraceID) (Flight, bool) {
	if r == nil {
		return Flight{}, false
	}
	r.mu.Lock()
	if f, ok := r.flights[trace]; ok {
		cp := *f
		cp.Events = append([]Event(nil), f.Events...)
		r.mu.Unlock()
		return cp, true
	}
	path := r.cfg.LedgerPath
	r.mu.Unlock()
	if path == "" {
		return Flight{}, false
	}
	for _, p := range []string{path, path + ".1"} {
		if f, ok := scanLedger(p, trace); ok {
			return f, true
		}
	}
	return Flight{}, false
}

// scanLedger searches one JSONL ledger file for a trace's newest spill.
func scanLedger(path string, trace obs.TraceID) (Flight, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Flight{}, false
	}
	var found Flight
	ok := false
	start := 0
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != '\n' {
			continue
		}
		line := data[start:i]
		start = i + 1
		if len(line) == 0 {
			continue
		}
		var rec ledgerRecord
		if json.Unmarshal(line, &rec) == nil && rec.Flight.Trace == trace {
			found, ok = rec.Flight, true // keep scanning: newest spill wins
		}
	}
	return found, ok
}
