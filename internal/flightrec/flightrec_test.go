package flightrec

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/obs"
)

// TestNilRecorder pins the nil-safety contract: every method on a nil
// *Recorder is a no-op, so hot paths and binaries need no nil checks.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if key := r.Begin(0, "t"); key != 0 {
		t.Fatalf("nil Begin returned %v", key)
	}
	r.Record(1, Event{Kind: KindExecute})
	r.MarkNotable(1, "x")
	r.Complete(1, time.Second, true, "cause")
	r.Close()
	if s := r.Snapshot(); len(s.Flights) != 0 {
		t.Fatalf("nil Snapshot returned flights: %+v", s)
	}
	if _, ok := r.FlightFor(1); ok {
		t.Fatal("nil FlightFor found a flight")
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	snap, err := FetchFlight(srv.URL, 42)
	if err != nil {
		t.Fatalf("nil handler fetch: %v", err)
	}
	if len(snap.Flights) != 0 {
		t.Fatalf("nil handler served flights: %+v", snap)
	}
}

// TestSyntheticKeys pins the always-on guarantee: unsampled tasks (zero
// trace) get distinct synthetic keys marked Synthetic, sampled ones keep
// their trace identity.
func TestSyntheticKeys(t *testing.T) {
	r := New(Config{Process: "test"})
	a := r.Begin(0, "ten")
	b := r.Begin(0, "ten")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("synthetic keys not distinct: %v, %v", a, b)
	}
	real := r.Begin(0xdeadbeef, "ten")
	if real != 0xdeadbeef {
		t.Fatalf("sampled trace rekeyed to %v", real)
	}
	fa, _ := r.FlightFor(a)
	fr, _ := r.FlightFor(real)
	if !fa.Synthetic || fr.Synthetic {
		t.Fatalf("synthetic flags wrong: a=%v real=%v", fa.Synthetic, fr.Synthetic)
	}
}

// TestRingOverflowKeepsNewest fills the ring past capacity and checks
// the oldest whole flights are evicted while the newest skeletons
// survive intact.
func TestRingOverflowKeepsNewest(t *testing.T) {
	const cap = 8
	r := New(Config{Process: "test", Flights: cap})
	keys := make([]obs.TraceID, 3*cap)
	for i := range keys {
		keys[i] = r.Begin(obs.TraceID(i+1), "ten")
		r.Record(keys[i], Event{Kind: KindExecute, Dur: time.Duration(i)})
	}
	snap := r.Snapshot()
	if len(snap.Flights) != cap {
		t.Fatalf("ring holds %d flights, want %d", len(snap.Flights), cap)
	}
	if snap.Evicted != uint64(2*cap) {
		t.Fatalf("evicted %d, want %d", snap.Evicted, 2*cap)
	}
	// The survivors are exactly the newest cap keys, oldest first.
	for i, f := range snap.Flights {
		want := keys[2*cap+i]
		if f.Trace != want {
			t.Fatalf("flight %d is %v, want %v", i, f.Trace, want)
		}
		if len(f.Events) != 1 {
			t.Fatalf("flight %v lost its events: %+v", f.Trace, f.Events)
		}
	}
	// Evicted keys are gone from the ring.
	if _, ok := r.FlightFor(keys[0]); ok {
		t.Fatal("evicted flight still resident")
	}
}

// TestCoalescing pins the identical-consecutive-event rule: Count
// increments, Dur accumulates, and a differing event breaks the run.
func TestCoalescing(t *testing.T) {
	r := New(Config{Process: "test"})
	key := r.Begin(0, "ten")
	for i := 0; i < 5; i++ {
		r.Record(key, Event{Kind: KindLease, Dur: time.Millisecond})
	}
	r.Record(key, Event{Kind: KindBufferHit})
	r.Record(key, Event{Kind: KindLease, Dur: time.Millisecond})
	f, _ := r.FlightFor(key)
	if len(f.Events) != 3 {
		t.Fatalf("got %d events, want 3 (coalesced lease run, hit, lease): %+v", len(f.Events), f.Events)
	}
	if f.Events[0].Count != 5 || f.Events[0].Dur != 5*time.Millisecond {
		t.Fatalf("coalesced run: count=%d dur=%v, want 5 and 5ms", f.Events[0].Count, f.Events[0].Dur)
	}
	if f.Events[2].Count != 0 {
		t.Fatalf("fresh lease event after a break has count %d", f.Events[2].Count)
	}
}

// TestEventCapDrops pins the per-flight cap: the earliest milestones are
// retained and the overflow is counted in Dropped.
func TestEventCapDrops(t *testing.T) {
	r := New(Config{Process: "test", EventsPerFlight: 4})
	key := r.Begin(0, "ten")
	for i := 0; i < 10; i++ {
		// Distinct details defeat coalescing.
		r.Record(key, Event{Kind: KindUpload, Detail: strings.Repeat("x", i+1)})
	}
	f, _ := r.FlightFor(key)
	if len(f.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(f.Events))
	}
	if f.Dropped != 6 {
		t.Fatalf("dropped %d, want 6", f.Dropped)
	}
	if f.Events[0].Detail != "x" {
		t.Fatalf("cap did not keep the earliest milestones: %+v", f.Events)
	}
}

// TestLedgerSpill exercises the notable paths: failures spill
// immediately, routine completions do not, and FlightFor falls back to
// the ledger after a ring eviction.
func TestLedgerSpill(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	r := New(Config{Process: "test", Flights: 2, LedgerPath: path})
	defer r.Close()

	failed := r.Begin(0x1, "ten")
	r.Record(failed, Event{Kind: KindFailure, Detail: "boom"})
	r.Complete(failed, 3*time.Millisecond, true, "boom")

	fine := r.Begin(0x2, "ten")
	r.Complete(fine, time.Millisecond, false, "")

	// Push both out of the tiny ring.
	for i := 10; i < 14; i++ {
		r.Begin(obs.TraceID(i), "ten")
	}
	if _, ok := r.flights[0x1]; ok {
		t.Fatal("setup: failed flight still in ring")
	}

	// The failed flight survives in the ledger; the routine one is gone.
	f, ok := r.FlightFor(0x1)
	if !ok {
		t.Fatal("failed flight not recovered from ledger")
	}
	if !strings.HasPrefix(f.Notable, "failed") {
		t.Fatalf("recovered flight notable = %q", f.Notable)
	}
	if len(f.Events) != 2 {
		t.Fatalf("recovered flight has %d events, want failure+complete: %+v", len(f.Events), f.Events)
	}
	if _, ok := r.FlightFor(0x2); ok {
		t.Fatal("routine completion spilled to the ledger")
	}

	// Each JSONL line decodes and carries the process stamp.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec ledgerRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("malformed ledger line %q: %v", line, err)
		}
		if rec.Process != "test" {
			t.Fatalf("ledger line process %q", rec.Process)
		}
	}
}

// TestMarkNotableSpillsOnce pins the single-spill rule: repeated marks
// append reasons in memory but write one ledger line.
func TestMarkNotableSpillsOnce(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	r := New(Config{Process: "test", LedgerPath: path})
	defer r.Close()
	key := r.Begin(0x7, "ten")
	r.MarkNotable(key, "lease-expired")
	r.MarkNotable(key, "connection lost")
	f, _ := r.FlightFor(key)
	if f.Notable != "lease-expired; connection lost" {
		t.Fatalf("notable = %q", f.Notable)
	}
	data, _ := os.ReadFile(path)
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("ledger holds %d lines, want 1", n)
	}
	snap := r.Snapshot()
	if snap.Spilled != 1 {
		t.Fatalf("spilled counter %d, want 1", snap.Spilled)
	}
}

// TestLedgerRotation drives the ledger past its byte cap and checks the
// rename-to-.1 rotation, plus FlightFor's fallback into the rotated file.
func TestLedgerRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	r := New(Config{Process: "test", LedgerPath: path, LedgerMaxBytes: 2048})
	defer r.Close()
	for i := 1; i <= 40; i++ {
		key := r.Begin(obs.TraceID(i), "ten")
		r.Record(key, Event{Kind: KindFailure, Detail: strings.Repeat("e", 64)})
		r.Complete(key, time.Millisecond, true, "overflow driver")
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("ledger did not rotate: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2048+1024 {
		t.Fatalf("active ledger %d bytes, cap 2048", st.Size())
	}
	// A spill that now lives only in the rotated file is still reachable
	// through a fresh recorder (empty ring) — the FlightFor fallback chain.
	data, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	var rec ledgerRecord
	firstLine := strings.SplitN(strings.TrimSpace(string(data)), "\n", 2)[0]
	if err := json.Unmarshal([]byte(firstLine), &rec); err != nil {
		t.Fatalf("rotated ledger line %q: %v", firstLine, err)
	}
	r2 := New(Config{Process: "test", Flights: 2, LedgerPath: path, LedgerMaxBytes: 2048})
	defer r2.Close()
	if _, ok := r2.FlightFor(rec.Flight.Trace); !ok {
		t.Fatalf("spill %v not found via rotated ledger", rec.Flight.Trace)
	}
}

// TestTailDetection pins per-tenant tail notability: after the sample
// floor, a completion far beyond the tenant's mean spills as
// "tail-latency"; normal completions never do.
func TestTailDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	r := New(Config{Process: "test", LedgerPath: path, TailMinSamples: 8})
	defer r.Close()
	for i := 1; i <= 20; i++ {
		key := r.Begin(obs.TraceID(i), "ten")
		r.Complete(key, 10*time.Millisecond, false, "")
	}
	slow := r.Begin(0x100, "ten")
	r.Complete(slow, 500*time.Millisecond, false, "")
	f, _ := r.FlightFor(slow)
	if f.Notable != "tail-latency" {
		t.Fatalf("slow completion notable = %q, want tail-latency", f.Notable)
	}
	// A different tenant with no history never marks.
	other := r.Begin(0x101, "fresh")
	r.Complete(other, 500*time.Millisecond, false, "")
	if f, _ := r.FlightFor(0x101); f.Notable != "" {
		t.Fatalf("fresh tenant marked notable: %q", f.Notable)
	}
}

// TestHandlerQueries pins the /debug/flight query surface: ?trace= for a
// single flight (including the ledger fallback) and ?n= tailing.
func TestHandlerQueries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	r := New(Config{Process: "test", Flights: 4, LedgerPath: path})
	defer r.Close()
	for i := 1; i <= 6; i++ {
		key := r.Begin(obs.TraceID(i), "ten")
		failed := i == 1
		cause := ""
		if failed {
			cause = "boom"
		}
		r.Complete(key, time.Millisecond, failed, cause)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// ?trace= finds a resident flight.
	snap, err := FetchFlight(srv.URL, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Flights) != 1 || snap.Flights[0].Trace != 5 {
		t.Fatalf("?trace=5 returned %+v", snap.Flights)
	}
	if snap.Process != "test" {
		t.Fatalf("snapshot process %q", snap.Process)
	}

	// ?trace= falls back to the ledger for the evicted failed flight.
	snap, err = FetchFlight(srv.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Flights) != 1 || !strings.HasPrefix(snap.Flights[0].Notable, "failed") {
		t.Fatalf("?trace=1 (ledger fallback) returned %+v", snap.Flights)
	}

	// ?n= tails the list, keeping the envelope.
	resp, err := http.Get(srv.URL + "/debug/flight?n=2")
	if err != nil {
		t.Fatal(err)
	}
	var tailed Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&tailed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tailed.Flights) != 2 || tailed.Flights[1].Trace != 6 {
		t.Fatalf("?n=2 returned %+v", tailed.Flights)
	}
	if tailed.Evicted != 2 {
		t.Fatalf("?n=2 envelope evicted=%d, want 2", tailed.Evicted)
	}
}

// TestConcurrentUse hammers one recorder from many goroutines; run under
// -race this is the data-race gate for the always-on hot path.
func TestConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{Process: "test", Flights: 32, LedgerPath: filepath.Join(dir, "l.jsonl")})
	defer r.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := r.Begin(0, "ten")
				r.Record(key, Event{Kind: KindEnqueued, Depth: i})
				r.Record(key, Event{Kind: KindExecute, Dur: time.Microsecond})
				r.Complete(key, time.Millisecond, i%17 == 0, "chaos")
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
				r.FlightFor(0x1)
			}
		}
	}()
	wg.Wait()
	close(done)
}

// TestCompleteWithBatch pins the batched completion path the hot loops
// use: accumulated milestones land in order under one call, keep their
// caller timestamps, zero times are stamped, and the terminal Complete
// event follows the batch. Unknown keys still open a flight on the fly,
// and the caller's slice is never retained.
func TestCompleteWithBatch(t *testing.T) {
	base := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	r := New(Config{Process: "test", Now: func() time.Time { return base.Add(time.Hour) }})
	defer r.Close()

	key := r.Begin(0, "tenant-a")
	batch := []Event{
		{Kind: KindEnqueued, Depth: 3, Pos: 2, Time: base},
		{Kind: KindScheduled, Dur: 5 * time.Millisecond, Time: base.Add(time.Millisecond)},
		{Kind: KindExecute, Dur: 10 * time.Millisecond}, // zero Time: stamped at completion
	}
	r.CompleteWith(key, "tenant-a", batch, 20*time.Millisecond, false, "")

	f, ok := r.FlightFor(key)
	if !ok {
		t.Fatal("flight not found after CompleteWith")
	}
	kinds := make([]Kind, len(f.Events))
	for i, ev := range f.Events {
		kinds[i] = ev.Kind
	}
	want := []Kind{KindEnqueued, KindScheduled, KindExecute, KindComplete}
	if len(kinds) != len(want) {
		t.Fatalf("got events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
	if !f.Events[0].Time.Equal(base) {
		t.Fatalf("batched event lost its caller timestamp: %v", f.Events[0].Time)
	}
	if !f.Events[2].Time.Equal(base.Add(time.Hour)) {
		t.Fatalf("zero-time batched event not stamped with the clock: %v", f.Events[2].Time)
	}
	if f.Events[3].Dur != 20*time.Millisecond {
		t.Fatalf("complete event Dur = %v", f.Events[3].Dur)
	}
	// Mutating the caller's slice after the call must not leak into the
	// recorded flight.
	batch[0].Detail = "mutated"
	if f2, _ := r.FlightFor(key); f2.Events[0].Detail == "mutated" {
		t.Fatal("recorder retained the caller's event slice")
	}

	// A failed batched completion on an unknown key admits a flight and
	// spills it as notable.
	r.CompleteWith(777, "tenant-b", []Event{{Kind: KindFailure, Detail: "boom"}}, time.Second, true, "boom")
	ff, ok := r.FlightFor(777)
	if !ok {
		t.Fatal("unknown-key CompleteWith left no flight")
	}
	if ff.Notable != "failed: boom" {
		t.Fatalf("Notable = %q, want %q", ff.Notable, "failed: boom")
	}
	if ff.Events[0].Kind != KindFailure || ff.Events[1].Kind != KindComplete {
		t.Fatalf("unknown-key flight events: %+v", ff.Events)
	}
}
