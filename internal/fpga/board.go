package fpga

import (
	"sync"
	"sync/atomic"
	"time"

	"blastfunction/internal/datacache"
	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
)

// Config describes one simulated board and its host link.
type Config struct {
	// Name is the board name reported through the OpenCL device info
	// queries, e.g. "de5a_net : Arria 10 GX".
	Name string
	// Vendor is the device vendor string.
	Vendor string
	// MemBytes is the on-board DDR capacity.
	MemBytes int64
	// Cost is the host-link cost model (PCIe bandwidth, reconfiguration
	// time). Nil selects the worker-node model.
	Cost *model.CostModel
	// TimeScale converts modelled durations into real sleeps: a kernel
	// modelled at 10 ms occupies the board for 10ms*TimeScale of wall
	// time. Zero disables sleeping entirely (unit tests); 1.0 is faithful.
	TimeScale float64
}

// DE5aNet returns the configuration of the testbed boards: Terasic
// DE5a-Net with an Intel Arria 10 GX 1150 and 8 GB of DDR.
func DE5aNet(cost *model.CostModel) Config {
	return Config{
		Name:     "de5a_net : Arria 10 GX 1150",
		Vendor:   "Intel(R) Corporation",
		MemBytes: 8 << 30,
		Cost:     cost,
	}
}

// Board simulates one FPGA board. All operations serialize on the board —
// the device executes one DMA or kernel at a time, which is exactly the
// contention the time-sharing experiments measure.
type Board struct {
	cfg     Config
	catalog *Catalog

	mu        sync.Mutex
	bs        *Bitstream
	buffers   map[uint64][]byte
	nextBuf   uint64
	allocated int64

	// Virtual-time accounting (atomic, nanoseconds).
	busyNanos   atomic.Int64
	bytesIn     atomic.Int64
	bytesOut    atomic.Int64
	kernelRuns  atomic.Int64
	reconfigs   atomic.Int64
	transferOps atomic.Int64
	copyOps     atomic.Int64
	copyBytes   atomic.Int64
}

// NewBoard creates a board resolving binaries against catalog.
func NewBoard(cfg Config, catalog *Catalog) *Board {
	if cfg.Cost == nil {
		cfg.Cost = model.WorkerNode()
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 8 << 30
	}
	return &Board{
		cfg:     cfg,
		catalog: catalog,
		buffers: make(map[uint64][]byte),
		nextBuf: 1,
	}
}

// Config returns the board configuration.
func (b *Board) Config() Config { return b.cfg }

// Cost returns the board's host-link cost model.
func (b *Board) Cost() *model.CostModel { return b.cfg.Cost }

// occupy accounts d of device busy time and optionally sleeps scaled wall
// time. Called with b.mu held so the board stays exclusive for the span.
func (b *Board) occupy(d time.Duration) {
	if d <= 0 {
		return
	}
	b.busyNanos.Add(int64(d))
	if b.cfg.TimeScale > 0 {
		time.Sleep(time.Duration(float64(d) * b.cfg.TimeScale))
	}
}

// Configure programs the board with the given simulated .aocx binary,
// blocking for the modelled reconfiguration time. Reconfiguring to the
// already-configured bitstream is a cheap no-op, as the Intel runtime
// behaves. It returns the modelled duration the board was blocked for.
func (b *Board) Configure(binary []byte) (time.Duration, error) {
	bs, err := b.catalog.Parse(binary)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bs != nil && b.bs.ID == bs.ID {
		return 0, nil
	}
	b.bs = bs
	b.reconfigs.Add(1)
	d := b.cfg.Cost.ReconfigureTime
	b.occupy(d)
	return d, nil
}

// ConfiguredID returns the ID of the configured bitstream, or "".
func (b *Board) ConfiguredID() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bs == nil {
		return ""
	}
	return b.bs.ID
}

// ConfiguredAccelerator returns the logical accelerator name of the
// configured bitstream, or "".
func (b *Board) ConfiguredAccelerator() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bs == nil {
		return ""
	}
	return b.bs.Accelerator
}

// MemGeometry returns the configured bitstream's DDR layout name ("" for
// the platform default or a blank board). The Device Manager compares it
// across a reconfiguration to decide whether resident cached buffers are
// still addressable.
func (b *Board) MemGeometry() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bs == nil {
		return ""
	}
	return b.bs.MemGeometry
}

// Alloc reserves a DDR buffer and returns its board-local ID.
func (b *Board) Alloc(size int64) (uint64, error) {
	if size <= 0 {
		return 0, ocl.Errf(ocl.ErrInvalidBufferSize, "buffer size %d", size)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.allocated+size > b.cfg.MemBytes {
		return 0, ocl.Errf(ocl.ErrMemObjectAllocFailure,
			"board DDR exhausted: %d allocated, %d requested, %d capacity",
			b.allocated, size, b.cfg.MemBytes)
	}
	id := b.nextBuf
	b.nextBuf++
	b.buffers[id] = make([]byte, size)
	b.allocated += size
	return id, nil
}

// Free releases a DDR buffer.
func (b *Board) Free(id uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, ok := b.buffers[id]
	if !ok {
		return ocl.Errf(ocl.ErrInvalidMemObject, "buffer %d", id)
	}
	b.allocated -= int64(len(buf))
	delete(b.buffers, id)
	return nil
}

// Allocated returns the currently reserved DDR bytes.
func (b *Board) Allocated() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allocated
}

// Write DMAs data into buffer id at offset and returns the modelled
// transfer time.
func (b *Board) Write(id uint64, offset int64, data []byte) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, ok := b.buffers[id]
	if !ok {
		return 0, ocl.Errf(ocl.ErrInvalidMemObject, "write: buffer %d", id)
	}
	if offset < 0 || offset+int64(len(data)) > int64(len(buf)) {
		return 0, ocl.Errf(ocl.ErrInvalidValue,
			"write out of range: off=%d len=%d buf=%d", offset, len(data), len(buf))
	}
	copy(buf[offset:], data)
	d := b.cfg.Cost.PCIeTransfer(int64(len(data)))
	b.bytesIn.Add(int64(len(data)))
	b.transferOps.Add(1)
	b.occupy(d)
	return d, nil
}

// Read DMAs buffer id at offset into dst and returns the modelled transfer
// time.
func (b *Board) Read(id uint64, offset int64, dst []byte) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, ok := b.buffers[id]
	if !ok {
		return 0, ocl.Errf(ocl.ErrInvalidMemObject, "read: buffer %d", id)
	}
	if offset < 0 || offset+int64(len(dst)) > int64(len(buf)) {
		return 0, ocl.Errf(ocl.ErrInvalidValue,
			"read out of range: off=%d len=%d buf=%d", offset, len(dst), len(buf))
	}
	copy(dst, buf[offset:])
	d := b.cfg.Cost.PCIeTransfer(int64(len(dst)))
	b.bytesOut.Add(int64(len(dst)))
	b.transferOps.Add(1)
	b.occupy(d)
	return d, nil
}

// Copy moves n bytes from buffer src at srcOff to buffer dst at dstOff
// on the board (DDR to DDR, never crossing the host link) and returns the
// modelled copy time. It is the execution primitive of zero-copy task
// chaining: the intermediate of a multi-stage pipeline moves at DDR
// bandwidth instead of round-tripping through the client. src == dst is
// allowed for non-overlapping ranges.
func (b *Board) Copy(src, dst uint64, srcOff, dstOff, n int64) (time.Duration, error) {
	if n < 0 {
		return 0, ocl.Errf(ocl.ErrInvalidValue, "copy: negative length %d", n)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	sbuf, ok := b.buffers[src]
	if !ok {
		return 0, ocl.Errf(ocl.ErrInvalidMemObject, "copy: src buffer %d", src)
	}
	dbuf, ok := b.buffers[dst]
	if !ok {
		return 0, ocl.Errf(ocl.ErrInvalidMemObject, "copy: dst buffer %d", dst)
	}
	if srcOff < 0 || srcOff+n > int64(len(sbuf)) {
		return 0, ocl.Errf(ocl.ErrInvalidValue,
			"copy src out of range: off=%d len=%d buf=%d", srcOff, n, len(sbuf))
	}
	if dstOff < 0 || dstOff+n > int64(len(dbuf)) {
		return 0, ocl.Errf(ocl.ErrInvalidValue,
			"copy dst out of range: off=%d len=%d buf=%d", dstOff, n, len(dbuf))
	}
	if src == dst && srcOff < dstOff+n && dstOff < srcOff+n {
		return 0, ocl.Errf(ocl.ErrInvalidValue,
			"copy ranges overlap: src=[%d,%d) dst=[%d,%d)", srcOff, srcOff+n, dstOff, dstOff+n)
	}
	copy(dbuf[dstOff:dstOff+n], sbuf[srcOff:srcOff+n])
	d := b.cfg.Cost.DDRCopy(n)
	b.copyOps.Add(1)
	b.copyBytes.Add(n)
	b.occupy(d)
	return d, nil
}

// ContentHash returns the content digest of buffer id. Host-side
// bookkeeping for the memoization cache — it models no device time (the
// real system would track content identity on the host as buffers are
// written, not re-scan DDR).
func (b *Board) ContentHash(id uint64) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, ok := b.buffers[id]
	if !ok {
		return 0, ocl.Errf(ocl.ErrInvalidMemObject, "hash: buffer %d", id)
	}
	return datacache.ContentHash64(buf), nil
}

// SnapshotBuffer returns a copy of buffer id's contents. Host-side
// bookkeeping for the memoization cache (no device time modelled).
func (b *Board) SnapshotBuffer(id uint64) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, ok := b.buffers[id]
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "snapshot: buffer %d", id)
	}
	return append([]byte(nil), buf...), nil
}

// RestoreBuffer overwrites buffer id with a memoized snapshot, modelled as
// an on-device DDR move (the snapshot conceptually lives in spare board
// memory; the paper's boards have 8 GB). Returns the modelled time.
func (b *Board) RestoreBuffer(id uint64, data []byte) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf, ok := b.buffers[id]
	if !ok {
		return 0, ocl.Errf(ocl.ErrInvalidMemObject, "restore: buffer %d", id)
	}
	if len(data) > len(buf) {
		return 0, ocl.Errf(ocl.ErrInvalidValue,
			"restore out of range: snapshot=%d buf=%d", len(data), len(buf))
	}
	copy(buf, data)
	d := b.cfg.Cost.DDRCopy(int64(len(data)))
	b.copyOps.Add(1)
	b.copyBytes.Add(int64(len(data)))
	b.occupy(d)
	return d, nil
}

// boardMem adapts the board's buffer table to MemAccess for kernel runs.
// It is only valid while the board mutex is held.
type boardMem struct{ b *Board }

func (m boardMem) Bytes(id uint64) ([]byte, error) {
	buf, ok := m.b.buffers[id]
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "kernel references unknown buffer %d", id)
	}
	return buf, nil
}

// Run launches the named kernel of the configured bitstream with the given
// arguments and NDRange. It validates argument count and buffer references,
// executes the kernel's real computation, and returns the modelled
// execution time.
func (b *Board) Run(kernel string, args []ocl.Arg, global []int) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bs == nil {
		return 0, ocl.Errf(ocl.ErrInvalidProgramExec, "board %q has no configured bitstream", b.cfg.Name)
	}
	spec, err := b.bs.Kernel(kernel)
	if err != nil {
		return 0, err
	}
	if len(args) != spec.NumArgs {
		return 0, ocl.Errf(ocl.ErrInvalidKernelArgs,
			"kernel %q expects %d args, got %d", kernel, spec.NumArgs, len(args))
	}
	for i, a := range args {
		if a.Kind == ocl.ArgBuffer {
			if _, ok := b.buffers[a.BufferID]; !ok {
				return 0, ocl.Errf(ocl.ErrInvalidMemObject,
					"kernel %q arg %d references unknown buffer %d", kernel, i, a.BufferID)
			}
		}
	}
	if spec.Run != nil {
		if err := spec.Run(boardMem{b}, args, global); err != nil {
			return 0, err
		}
	}
	var d time.Duration
	if spec.Model != nil {
		d = spec.Model(args, global)
	}
	b.kernelRuns.Add(1)
	b.occupy(d)
	return d, nil
}

// BusyTime returns the cumulative modelled device-busy time. The Device
// Manager differentiates it over scrape intervals to produce the FPGA time
// utilization metric of the paper.
func (b *Board) BusyTime() time.Duration { return time.Duration(b.busyNanos.Load()) }

// Stats is a snapshot of the board counters.
type Stats struct {
	BusyTime    time.Duration
	BytesIn     int64
	BytesOut    int64
	KernelRuns  int64
	Reconfigs   int64
	TransferOps int64
	CopyOps     int64
	CopyBytes   int64
	Allocated   int64
}

// Stats snapshots the board counters.
func (b *Board) Stats() Stats {
	return Stats{
		BusyTime:    b.BusyTime(),
		BytesIn:     b.bytesIn.Load(),
		BytesOut:    b.bytesOut.Load(),
		KernelRuns:  b.kernelRuns.Load(),
		Reconfigs:   b.reconfigs.Load(),
		TransferOps: b.transferOps.Load(),
		CopyOps:     b.copyOps.Load(),
		CopyBytes:   b.copyBytes.Load(),
		Allocated:   b.Allocated(),
	}
}

// Catalog returns the bitstream catalog the board resolves binaries
// against. The Device Manager uses it to validate programs and look up
// kernel signatures without configuring the board.
func (b *Board) Catalog() *Catalog { return b.catalog }
