package fpga

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
)

// testBitstream returns a catalog holding one bitstream with an "echo"
// kernel (copies in->out, 3 args) and a "tick" kernel (timing only).
func testCatalog() *Catalog {
	echo := func(mem MemAccess, args []ocl.Arg, _ []int) error {
		in, err := mem.Bytes(args[0].BufferID)
		if err != nil {
			return err
		}
		out, err := mem.Bytes(args[1].BufferID)
		if err != nil {
			return err
		}
		n := int(args[2].IntValue())
		copy(out[:n], in[:n])
		return nil
	}
	return NewCatalog(&Bitstream{
		ID:          "test-echo",
		Accelerator: "echo",
		Vendor:      "TestVendor",
		Kernels: []KernelSpec{
			{Name: "echo", NumArgs: 3, Run: echo,
				Model: func(args []ocl.Arg, _ []int) time.Duration {
					return time.Duration(args[2].IntValue()) * time.Microsecond
				}},
			{Name: "tick", NumArgs: 0,
				Model: func([]ocl.Arg, []int) time.Duration { return time.Millisecond }},
		},
	})
}

func testBoard(t *testing.T) *Board {
	t.Helper()
	cfg := DE5aNet(model.WorkerNode())
	cfg.MemBytes = 1 << 20 // keep the capacity tests cheap
	return NewBoard(cfg, testCatalog())
}

func configure(t *testing.T, b *Board) {
	t.Helper()
	bs, err := b.catalog.Lookup("test-echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Configure(bs.Binary()); err != nil {
		t.Fatalf("Configure: %v", err)
	}
}

func TestBoardConfigure(t *testing.T) {
	b := testBoard(t)
	if b.ConfiguredID() != "" {
		t.Fatal("fresh board must be unconfigured")
	}
	bs, _ := b.catalog.Lookup("test-echo")
	d, err := b.Configure(bs.Binary())
	if err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if d != b.Cost().ReconfigureTime {
		t.Fatalf("first configure took %v, want %v", d, b.Cost().ReconfigureTime)
	}
	if b.ConfiguredID() != "test-echo" || b.ConfiguredAccelerator() != "echo" {
		t.Fatalf("configured = %q/%q", b.ConfiguredID(), b.ConfiguredAccelerator())
	}
	// Same bitstream again: cheap no-op.
	d, err = b.Configure(bs.Binary())
	if err != nil || d != 0 {
		t.Fatalf("re-configure: d=%v err=%v", d, err)
	}
	if b.Stats().Reconfigs != 1 {
		t.Fatalf("reconfigs = %d, want 1", b.Stats().Reconfigs)
	}
}

func TestBoardConfigureRejectsGarbage(t *testing.T) {
	b := testBoard(t)
	if _, err := b.Configure([]byte("not a bitstream")); !errors.Is(err, ocl.ErrInvalidBinary) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.Configure([]byte("AOCX0:nonexistent")); !errors.Is(err, ocl.ErrInvalidBinary) {
		t.Fatalf("err = %v", err)
	}
}

func TestBoardAllocFreeCapacity(t *testing.T) {
	b := testBoard(t)
	id1, err := b.Alloc(512 << 10)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	id2, err := b.Alloc(512 << 10)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if id1 == id2 {
		t.Fatal("buffer IDs must be unique")
	}
	if _, err := b.Alloc(1); !errors.Is(err, ocl.ErrMemObjectAllocFailure) {
		t.Fatalf("over-capacity alloc err = %v", err)
	}
	if err := b.Free(id1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := b.Alloc(256 << 10); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if err := b.Free(id1); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("double free err = %v", err)
	}
	if _, err := b.Alloc(0); !errors.Is(err, ocl.ErrInvalidBufferSize) {
		t.Fatalf("zero alloc err = %v", err)
	}
}

func TestBoardWriteReadRoundTrip(t *testing.T) {
	b := testBoard(t)
	id, _ := b.Alloc(64)
	data := []byte("hello fpga world")
	wd, err := b.Write(id, 8, data)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if wd <= 0 {
		t.Fatal("write must cost modelled time")
	}
	dst := make([]byte, len(data))
	if _, err := b.Read(id, 8, dst); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatalf("round trip = %q, want %q", dst, data)
	}
}

func TestBoardTransferBounds(t *testing.T) {
	b := testBoard(t)
	id, _ := b.Alloc(16)
	if _, err := b.Write(id, 12, make([]byte, 8)); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("overflow write err = %v", err)
	}
	if _, err := b.Write(id, -1, make([]byte, 4)); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("negative offset err = %v", err)
	}
	if _, err := b.Read(id, 10, make([]byte, 8)); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("overflow read err = %v", err)
	}
	if _, err := b.Write(999, 0, make([]byte, 1)); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("unknown buffer write err = %v", err)
	}
	if _, err := b.Read(999, 0, make([]byte, 1)); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("unknown buffer read err = %v", err)
	}
}

func TestBoardCopyMovesDataOnDevice(t *testing.T) {
	b := testBoard(t)
	src, _ := b.Alloc(64)
	dst, _ := b.Alloc(64)
	data := []byte("intermediate result")
	b.Write(src, 4, data)
	d, err := b.Copy(src, dst, 4, 16, int64(len(data)))
	if err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if d <= 0 {
		t.Fatal("copy must cost modelled DDR time")
	}
	got := make([]byte, len(data))
	b.Read(dst, 16, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("copied bytes = %q, want %q", got, data)
	}
	st := b.Stats()
	if st.CopyOps != 1 || st.CopyBytes != int64(len(data)) {
		t.Fatalf("copy counters = %d ops / %d bytes", st.CopyOps, st.CopyBytes)
	}
	// Same-buffer copies are fine while the ranges are disjoint.
	if _, err := b.Copy(src, src, 0, 32, 16); err != nil {
		t.Fatalf("disjoint same-buffer copy: %v", err)
	}
}

func TestBoardCopyValidation(t *testing.T) {
	b := testBoard(t)
	src, _ := b.Alloc(32)
	dst, _ := b.Alloc(16)
	if _, err := b.Copy(999, dst, 0, 0, 8); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("unknown src err = %v", err)
	}
	if _, err := b.Copy(src, 999, 0, 0, 8); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("unknown dst err = %v", err)
	}
	if _, err := b.Copy(src, dst, 0, 0, -1); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("negative length err = %v", err)
	}
	if _, err := b.Copy(src, dst, 28, 0, 8); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("src overflow err = %v", err)
	}
	if _, err := b.Copy(src, dst, 0, 12, 8); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("dst overflow err = %v", err)
	}
	if _, err := b.Copy(src, src, 0, 4, 8); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("overlapping same-buffer copy err = %v", err)
	}
}

func TestBoardSnapshotRestoreHash(t *testing.T) {
	b := testBoard(t)
	id, _ := b.Alloc(32)
	b.Write(id, 0, []byte("snapshot me"))
	h1, err := b.ContentHash(id)
	if err != nil || h1 == 0 {
		t.Fatalf("ContentHash: %#x, %v", h1, err)
	}
	snap, err := b.SnapshotBuffer(id)
	if err != nil {
		t.Fatalf("SnapshotBuffer: %v", err)
	}
	b.Write(id, 0, []byte("overwritten"))
	if h2, _ := b.ContentHash(id); h2 == h1 {
		t.Fatal("hash must change when content changes")
	}
	d, err := b.RestoreBuffer(id, snap)
	if err != nil {
		t.Fatalf("RestoreBuffer: %v", err)
	}
	if d <= 0 {
		t.Fatal("restore must cost modelled DDR time")
	}
	if h3, _ := b.ContentHash(id); h3 != h1 {
		t.Fatal("hash must return to the snapshotted value after restore")
	}
	if _, err := b.RestoreBuffer(id, make([]byte, 64)); !errors.Is(err, ocl.ErrInvalidValue) {
		t.Fatalf("oversized restore err = %v", err)
	}
	if _, err := b.ContentHash(999); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("unknown buffer hash err = %v", err)
	}
	if _, err := b.SnapshotBuffer(999); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("unknown buffer snapshot err = %v", err)
	}
	if _, err := b.RestoreBuffer(999, snap); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("unknown buffer restore err = %v", err)
	}
}

func TestBoardRunKernel(t *testing.T) {
	b := testBoard(t)
	configure(t, b)
	in, _ := b.Alloc(32)
	out, _ := b.Alloc(32)
	payload := []byte("0123456789abcdef")
	if _, err := b.Write(in, 0, payload); err != nil {
		t.Fatal(err)
	}
	n, _ := ocl.PackArg(int32(len(payload)))
	d, err := b.Run("echo", []ocl.Arg{ocl.BufferArg(in), ocl.BufferArg(out), n}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := time.Duration(len(payload)) * time.Microsecond; d != want {
		t.Fatalf("modelled time = %v, want %v", d, want)
	}
	dst := make([]byte, len(payload))
	if _, err := b.Read(out, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatalf("kernel output = %q, want %q", dst, payload)
	}
}

func TestBoardRunValidation(t *testing.T) {
	b := testBoard(t)
	// No bitstream configured.
	if _, err := b.Run("echo", nil, nil); !errors.Is(err, ocl.ErrInvalidProgramExec) {
		t.Fatalf("unconfigured run err = %v", err)
	}
	configure(t, b)
	if _, err := b.Run("nosuch", nil, nil); !errors.Is(err, ocl.ErrInvalidKernelName) {
		t.Fatalf("unknown kernel err = %v", err)
	}
	if _, err := b.Run("echo", []ocl.Arg{ocl.BufferArg(1)}, nil); !errors.Is(err, ocl.ErrInvalidKernelArgs) {
		t.Fatalf("arity err = %v", err)
	}
	n, _ := ocl.PackArg(int32(1))
	args := []ocl.Arg{ocl.BufferArg(12345), ocl.BufferArg(12346), n}
	if _, err := b.Run("echo", args, nil); !errors.Is(err, ocl.ErrInvalidMemObject) {
		t.Fatalf("dangling buffer err = %v", err)
	}
}

func TestBoardBusyAccounting(t *testing.T) {
	b := testBoard(t)
	configure(t, b)
	busy0 := b.BusyTime()
	if _, err := b.Run("tick", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.BusyTime() - busy0; got != time.Millisecond {
		t.Fatalf("busy delta = %v, want 1ms", got)
	}
	id, _ := b.Alloc(1 << 10)
	wd, _ := b.Write(id, 0, make([]byte, 1<<10))
	if got := b.BusyTime() - busy0; got != time.Millisecond+wd {
		t.Fatalf("busy after write = %v", got)
	}
	st := b.Stats()
	if st.KernelRuns != 1 || st.TransferOps != 1 || st.BytesIn != 1<<10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBoardConcurrentClients(t *testing.T) {
	// Many goroutines hammer the board concurrently; the board must stay
	// consistent (run with -race). This models multiple Device Manager
	// worker interactions plus native clients sharing one device.
	b := testBoard(t)
	configure(t, b)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id, err := b.Alloc(128)
			if err != nil {
				t.Error(err)
				return
			}
			buf := bytes.Repeat([]byte{byte(w)}, 128)
			for i := 0; i < 20; i++ {
				if _, err := b.Write(id, 0, buf); err != nil {
					t.Error(err)
					return
				}
				dst := make([]byte, 128)
				if _, err := b.Read(id, 0, dst); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(dst, buf) {
					t.Errorf("worker %d read corrupted data", w)
					return
				}
				if _, err := b.Run("tick", nil, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := b.Stats().KernelRuns; got != workers*20 {
		t.Fatalf("kernel runs = %d, want %d", got, workers*20)
	}
}

func TestBoardTimeScaleSleeps(t *testing.T) {
	cfg := DE5aNet(model.WorkerNode())
	cfg.TimeScale = 0.001 // 1ms modelled -> 1us wall
	b := NewBoard(cfg, testCatalog())
	configure(t, b)
	start := time.Now()
	for i := 0; i < 10; i++ {
		if _, err := b.Run("tick", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 10 ticks at 1ms modelled, scaled by 1e-3 -> ~10us plus scheduling
	// noise; the assertion just checks sleeping happened but stayed far
	// below the modelled 10ms.
	if elapsed > 50*time.Millisecond {
		t.Fatalf("scaled sleeps took %v", elapsed)
	}
}

func TestCatalogParse(t *testing.T) {
	c := testCatalog()
	bs, _ := c.Lookup("test-echo")
	got, err := c.Parse(bs.Binary())
	if err != nil || got.ID != "test-echo" {
		t.Fatalf("Parse = %v, %v", got, err)
	}
	if _, err := c.Parse([]byte("garbage")); !errors.Is(err, ocl.ErrInvalidBinary) {
		t.Fatalf("garbage err = %v", err)
	}
	if id, err := ParseBinaryID(bs.Binary()); err != nil || id != "test-echo" {
		t.Fatalf("ParseBinaryID = %q, %v", id, err)
	}
	if _, err := ParseBinaryID([]byte("AOCX0:")); !errors.Is(err, ocl.ErrInvalidBinary) {
		t.Fatalf("empty id err = %v", err)
	}
	if len(c.IDs()) != 1 {
		t.Fatalf("IDs = %v", c.IDs())
	}
}

func TestBitstreamKernelLookup(t *testing.T) {
	c := testCatalog()
	bs, _ := c.Lookup("test-echo")
	if _, err := bs.Kernel("echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Kernel("bogus"); !errors.Is(err, ocl.ErrInvalidKernelName) {
		t.Fatalf("err = %v", err)
	}
	if names := bs.KernelNames(); len(names) != 2 || names[0] != "echo" {
		t.Fatalf("KernelNames = %v", names)
	}
}
