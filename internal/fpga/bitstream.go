// Package fpga simulates the FPGA boards of the paper's testbed.
//
// The paper runs on Terasic DE5a-Net boards (Intel Arria 10 GX 1150, 8 GB
// DDR, PCIe x8). No hardware is available to this reproduction, so Board
// emulates the observable behaviour the rest of BlastFunction depends on:
//
//   - a configured bitstream that must match the kernels a client launches,
//     with a multi-second reconfiguration penalty to swap it;
//   - on-board DDR buffers written and read over a PCIe link with modelled
//     DMA cost;
//   - exclusive kernel execution: one operation occupies the device at a
//     time, with service times from calibrated analytic models; kernels
//     additionally run real software implementations so outputs are
//     bit-checkable;
//   - busy-time accounting, the raw input of the paper's "FPGA time
//     utilization" metric.
//
// Durations returned by Board methods are the modelled (virtual) hardware
// times. A TimeScale knob optionally converts them into real sleeps so live
// end-to-end runs exhibit hardware-like queueing without hardware-scale
// waits.
package fpga

import (
	"bytes"
	"fmt"
	"time"

	"blastfunction/internal/ocl"
)

// binaryMagic prefixes every simulated .aocx binary. The rest of the binary
// is the bitstream identifier resolved against a Catalog.
const binaryMagic = "AOCX0:"

// MemAccess gives kernel implementations access to board memory during a
// launch. Buffers are addressed by the IDs carried in kernel arguments.
type MemAccess interface {
	// Bytes returns the backing storage of a buffer.
	Bytes(id uint64) ([]byte, error)
}

// KernelModel computes the modelled hardware execution time of one kernel
// launch from its bound arguments and the NDRange global size (nil for
// clEnqueueTask-style single work-item launches).
type KernelModel func(args []ocl.Arg, global []int) time.Duration

// KernelFunc performs the kernel's real computation against board memory.
// It may be nil for timing-only kernels.
type KernelFunc func(mem MemAccess, args []ocl.Arg, global []int) error

// KernelSpec describes one kernel inside a bitstream.
type KernelSpec struct {
	// Name is the kernel name used by clCreateKernel.
	Name string
	// NumArgs is the number of arguments the kernel expects; launches with
	// unbound arguments fail with CL_INVALID_KERNEL_ARGS.
	NumArgs int
	// Model yields the modelled execution latency of a launch.
	Model KernelModel
	// Run executes the kernel's computation; nil means no data movement.
	Run KernelFunc
}

// Bitstream is a synthesized FPGA design: a set of kernels plus the
// metadata the Accelerators Registry matches on.
type Bitstream struct {
	// ID uniquely identifies the bitstream (e.g. "spector-sobel").
	ID string
	// Accelerator is the logical accelerator family, used for
	// compatibility checks during allocation (e.g. "sobel").
	Accelerator string
	// Vendor is the platform vendor the design was synthesized for.
	Vendor string
	// MemGeometry names the design's DDR bank/interleaving layout. Two
	// bitstreams with the same geometry address board memory identically,
	// so buffer contents survive swapping between them; a geometry change
	// invalidates every resident buffer. Empty means the platform default
	// (single interleaved bank), which most designs use.
	MemGeometry string
	// Kernels lists the kernels the design contains.
	Kernels []KernelSpec
}

// Kernel returns the spec of the named kernel.
func (b *Bitstream) Kernel(name string) (*KernelSpec, error) {
	for i := range b.Kernels {
		if b.Kernels[i].Name == name {
			return &b.Kernels[i], nil
		}
	}
	return nil, ocl.Errf(ocl.ErrInvalidKernelName, "bitstream %q has no kernel %q", b.ID, name)
}

// KernelNames lists the kernel names in declaration order.
func (b *Bitstream) KernelNames() []string {
	names := make([]string, len(b.Kernels))
	for i := range b.Kernels {
		names[i] = b.Kernels[i].Name
	}
	return names
}

// Binary renders the simulated .aocx bytes that clCreateProgramWithBinary
// accepts for this bitstream.
func (b *Bitstream) Binary() []byte {
	return []byte(binaryMagic + b.ID)
}

// Catalog resolves bitstream binaries, playing the role of the offline
// synthesis flow's artifact store.
type Catalog struct {
	byID map[string]*Bitstream
}

// NewCatalog builds a catalog from the given bitstreams.
func NewCatalog(streams ...*Bitstream) *Catalog {
	c := &Catalog{byID: make(map[string]*Bitstream, len(streams))}
	for _, s := range streams {
		c.byID[s.ID] = s
	}
	return c
}

// Add registers a bitstream, replacing any previous one with the same ID.
func (c *Catalog) Add(s *Bitstream) { c.byID[s.ID] = s }

// Lookup returns the bitstream with the given ID.
func (c *Catalog) Lookup(id string) (*Bitstream, error) {
	s, ok := c.byID[id]
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidBinary, "unknown bitstream %q", id)
	}
	return s, nil
}

// Parse resolves a simulated .aocx binary to its bitstream.
func (c *Catalog) Parse(binary []byte) (*Bitstream, error) {
	if !bytes.HasPrefix(binary, []byte(binaryMagic)) {
		return nil, ocl.Errf(ocl.ErrInvalidBinary, "binary is not a simulated aocx (missing %q prefix)", binaryMagic)
	}
	return c.Lookup(string(binary[len(binaryMagic):]))
}

// IDs lists the catalog's bitstream IDs (unordered).
func (c *Catalog) IDs() []string {
	ids := make([]string, 0, len(c.byID))
	for id := range c.byID {
		ids = append(ids, id)
	}
	return ids
}

// ParseBinaryID extracts the bitstream ID from a simulated binary without a
// catalog; the Device Manager uses it to report the configured design.
func ParseBinaryID(binary []byte) (string, error) {
	if !bytes.HasPrefix(binary, []byte(binaryMagic)) {
		return "", ocl.Errf(ocl.ErrInvalidBinary, "binary is not a simulated aocx")
	}
	id := string(binary[len(binaryMagic):])
	if id == "" {
		return "", ocl.Errf(ocl.ErrInvalidBinary, "empty bitstream id")
	}
	return id, nil
}

// String implements fmt.Stringer.
func (b *Bitstream) String() string {
	return fmt.Sprintf("%s(acc=%s, kernels=%d)", b.ID, b.Accelerator, len(b.Kernels))
}
