// Package wire implements the binary protocol between the Remote OpenCL
// Library and the Device Manager.
//
// The paper uses gRPC with protobuf messages; Go modules are offline in
// this reproduction, so wire provides the equivalent: a compact, explicit
// little-endian encoding with length-prefixed byte fields, plus the typed
// request/response/notification messages of the Device Manager service.
// Message encoding is hand-rolled rather than reflective both to keep the
// dependency surface at the standard library and to make the serialization
// cost the paper measures an explicit, testable code path.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a decode past the end of the message.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge reports a length field exceeding the configured limit.
var ErrTooLarge = errors.New("wire: field exceeds size limit")

// MaxFieldBytes bounds a single length-prefixed field. Large enough for the
// 2 GB transfers of the paper's Figure 4a sweep plus framing slack.
const MaxFieldBytes = 2<<30 + 4096

// Encoder appends primitive values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity hint.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I32 appends a little-endian int32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a little-endian float64.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes32 appends a length-prefixed byte field.
func (e *Encoder) Bytes32(v []byte) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Raw appends bytes with no length prefix. Used by the vectored-write
// paths to complete a message whose head was encoded with a bare length.
func (e *Encoder) Raw(v []byte) {
	e.buf = append(e.buf, v...)
}

// SetU32 overwrites a little-endian uint32 previously reserved at off —
// the batch encoder patches its notification count this way once the batch
// is sealed.
func (e *Encoder) SetU32(off int, v uint32) {
	binary.LittleEndian.PutUint32(e.buf[off:off+4], v)
}

// String appends a length-prefixed string.
func (e *Encoder) String(v string) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// I64Slice appends a count-prefixed slice of int64.
func (e *Encoder) I64Slice(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// StringSlice appends a count-prefixed slice of strings.
func (e *Encoder) StringSlice(v []string) {
	e.U32(uint32(len(v)))
	for _, s := range v {
		e.String(s)
	}
}

// Decoder consumes primitive values from a buffer with a sticky error: the
// first failure poisons all subsequent reads, so call sites check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset rewinds the decoder onto a new buffer, clearing any sticky error.
// Hot loops (the connection thread draining notification batches) reuse
// one decoder this way instead of allocating per payload.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
	d.err = nil
}

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the undecoded byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a little-endian float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes32 reads a length-prefixed byte field. The returned slice aliases
// the decoder's buffer; callers that retain it past the buffer's lifetime
// must copy.
func (d *Decoder) Bytes32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > MaxFieldBytes {
		d.err = fmt.Errorf("%w: field of %d bytes", ErrTooLarge, n)
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes32()) }

// I64Slice reads a count-prefixed slice of int64.
func (d *Decoder) I64Slice() []int64 {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n)*8 > uint64(d.Remaining()) {
		d.err = fmt.Errorf("%w: slice of %d int64", ErrTruncated, n)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// StringSlice reads a count-prefixed slice of strings.
func (d *Decoder) StringSlice() []string {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(d.Remaining()) {
		d.err = fmt.Errorf("%w: slice of %d strings", ErrTruncated, n)
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
	}
	return out
}
