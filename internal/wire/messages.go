package wire

import (
	"fmt"

	"blastfunction/internal/ocl"
)

// Method identifies a Device Manager service method.
type Method uint16

// Device Manager service methods. The first group contains the paper's
// "context and information" methods, executed synchronously; the second
// group contains the "command-queue" methods, which join the client's
// current task and complete asynchronously through notifications.
const (
	MethodHello Method = iota + 1
	MethodDeviceInfo
	MethodCreateContext
	MethodReleaseContext
	MethodCreateQueue
	MethodReleaseQueue
	MethodCreateBuffer
	MethodReleaseBuffer
	MethodCreateProgram
	MethodBuildProgram // the blocking board-reconfiguration request
	MethodCreateKernel
	MethodReleaseKernel
	MethodSetKernelArg
	MethodSetupShm

	MethodEnqueueWrite
	MethodEnqueueRead
	MethodEnqueueKernel
	MethodFlush

	// MethodHeartbeat renews the client's session lease (proto >=
	// ProtoVersionLease). It carries no body and returns no body; its only
	// effect is refreshing the manager-side lease deadline.
	MethodHeartbeat

	// MethodEnqueueCopy moves bytes between two device buffers without
	// routing them through the client (proto >= ProtoVersionReuse). It is
	// the chaining primitive: a pipeline stage's output buffer becomes the
	// next stage's input with a device-local copy.
	MethodEnqueueCopy
)

var methodNames = map[Method]string{
	MethodHello:          "Hello",
	MethodDeviceInfo:     "DeviceInfo",
	MethodCreateContext:  "CreateContext",
	MethodReleaseContext: "ReleaseContext",
	MethodCreateQueue:    "CreateQueue",
	MethodReleaseQueue:   "ReleaseQueue",
	MethodCreateBuffer:   "CreateBuffer",
	MethodReleaseBuffer:  "ReleaseBuffer",
	MethodCreateProgram:  "CreateProgram",
	MethodBuildProgram:   "BuildProgram",
	MethodCreateKernel:   "CreateKernel",
	MethodReleaseKernel:  "ReleaseKernel",
	MethodSetKernelArg:   "SetKernelArg",
	MethodSetupShm:       "SetupShm",
	MethodEnqueueWrite:   "EnqueueWrite",
	MethodEnqueueRead:    "EnqueueRead",
	MethodEnqueueKernel:  "EnqueueKernel",
	MethodFlush:          "Flush",
	MethodHeartbeat:      "Heartbeat",
	MethodEnqueueCopy:    "EnqueueCopy",
}

// String names the method.
func (m Method) String() string {
	if n, ok := methodNames[m]; ok {
		return n
	}
	return fmt.Sprintf("Method(%d)", uint16(m))
}

// CommandQueueMethod reports whether the method belongs to the
// command-queue group (asynchronous, task-forming).
func (m Method) CommandQueueMethod() bool {
	switch m {
	case MethodEnqueueWrite, MethodEnqueueRead, MethodEnqueueKernel, MethodEnqueueCopy, MethodFlush:
		return true
	}
	return false
}

// DataVia selects the data path of a buffer transfer.
type DataVia uint8

// Transfer data paths.
const (
	// ViaInline carries the payload inside the RPC message (the gRPC data
	// path of the paper, with its serialization and copy costs).
	ViaInline DataVia = 0
	// ViaShm references a range of the session's shared-memory segment.
	ViaShm DataVia = 1
)

// EncodeArg appends a kernel argument.
func EncodeArg(e *Encoder, a ocl.Arg) {
	e.U8(uint8(a.Kind))
	switch a.Kind {
	case ocl.ArgBuffer:
		e.U64(a.BufferID)
	default:
		e.U8(a.ScalarLen)
		e.buf = append(e.buf, a.Scalar[:]...)
	}
}

// DecodeArg reads a kernel argument.
func DecodeArg(d *Decoder) ocl.Arg {
	var a ocl.Arg
	a.Kind = ocl.ArgKind(d.U8())
	switch a.Kind {
	case ocl.ArgBuffer:
		a.BufferID = d.U64()
	default:
		a.ScalarLen = d.U8()
		copy(a.Scalar[:], d.take(len(a.Scalar)))
	}
	return a
}

// HelloRequest opens a session.
type HelloRequest struct {
	// ClientName identifies the function instance (paper: functions are
	// registered entities; the manager tracks per-client resource pools).
	ClientName string
	// ProtoVersion guards against protocol skew.
	ProtoVersion uint32
	// Weight is the client's fair-share weight under weighted scheduling
	// disciplines, propagated from the Registry binding. Trailing field:
	// zero means unweighted and is not encoded, so pre-scheduler frames
	// stay byte-identical.
	Weight uint32
}

// Protocol revisions. A Hello carries the client's version; the manager
// accepts anything in [MinProtoVersion, ProtoVersion] and answers with the
// negotiated (client's) version, so a newer manager keeps serving older
// libraries. Capabilities are gated on the negotiated version: batch
// notification frames (OpNotificationBatch) are only ever sent to peers
// that negotiated ProtoVersionBatch or later.
const (
	// ProtoVersion is the current protocol revision.
	ProtoVersion = 5
	// ProtoVersionBatch is the first revision with coalesced notification
	// batch frames.
	ProtoVersionBatch = 2
	// ProtoVersionLease is the first revision with session leases: the
	// manager advertises a lease duration in HelloResponse and the client
	// renews it with MethodHeartbeat. Sessions negotiated below this
	// revision are never lease-expired (old clients do not heartbeat).
	ProtoVersionLease = 3
	// ProtoVersionTrace is the first revision whose command-queue
	// requests may carry trailing distributed-tracing IDs. Untraced
	// frames omit them and stay byte-identical to earlier revisions; the
	// client only emits them to managers that negotiated this version.
	ProtoVersionTrace = 4
	// ProtoVersionReuse is the first revision with the data-plane reuse
	// features: CreateBuffer may carry a trailing content hash addressing
	// the manager's device buffer cache, and MethodEnqueueCopy chains one
	// task's output buffer into the next task's input without moving the
	// bytes through the client. Unhashed frames omit the tail and stay
	// byte-identical to earlier revisions.
	ProtoVersionReuse = 5
	// MinProtoVersion is the oldest revision a manager still serves.
	MinProtoVersion = 1
)

// encodeTraceTail appends the trailing trace IDs of a command-queue
// request. An untraced request (TraceID zero) appends nothing, keeping
// the frame byte-identical to the pre-trace layout.
func encodeTraceTail(e *Encoder, traceID, spanID uint64) {
	if traceID != 0 {
		e.U64(traceID)
		e.U64(spanID)
	}
}

// decodeTraceTail reads the trailing trace IDs if present. Both IDs
// travel together, so anything shorter than the pair is not a trace tail.
func decodeTraceTail(d *Decoder) (traceID, spanID uint64) {
	if d.Remaining() >= 16 {
		return d.U64(), d.U64()
	}
	return 0, 0
}

// Encode serializes the message.
func (m *HelloRequest) Encode(e *Encoder) {
	e.String(m.ClientName)
	e.U32(m.ProtoVersion)
	if m.Weight > 0 {
		e.U32(m.Weight)
	}
}

// Decode deserializes the message.
func (m *HelloRequest) Decode(d *Decoder) {
	m.ClientName = d.String()
	m.ProtoVersion = d.U32()
	m.Weight = 0
	if d.Remaining() > 0 {
		m.Weight = d.U32()
	}
}

// HelloResponse confirms a session.
type HelloResponse struct {
	SessionID uint64
	// Node is the manager's node name, used by the shm transport to check
	// co-location.
	Node string
	// Proto is the protocol revision the manager negotiated for this
	// session (the client's offered version, clamped to what the manager
	// speaks). It is a trailing field: version-1 managers don't send it and
	// version-1 decoders ignore it, so Hello itself stays cross-version.
	Proto uint32
	// LeaseMillis is the session lease duration in milliseconds; the
	// client must send a MethodHeartbeat at least that often or the
	// manager reclaims the session. Zero disables leasing. Trailing field,
	// only sent to sessions negotiated at ProtoVersionLease or later.
	LeaseMillis uint32
}

// Encode serializes the message.
func (m *HelloResponse) Encode(e *Encoder) {
	e.U64(m.SessionID)
	e.String(m.Node)
	e.U32(m.Proto)
	if m.Proto >= ProtoVersionLease {
		e.U32(m.LeaseMillis)
	}
}

// Decode deserializes the message.
func (m *HelloResponse) Decode(d *Decoder) {
	m.SessionID = d.U64()
	m.Node = d.String()
	if d.Remaining() > 0 {
		m.Proto = d.U32()
	} else {
		m.Proto = 1
	}
	m.LeaseMillis = 0
	if m.Proto >= ProtoVersionLease && d.Remaining() > 0 {
		m.LeaseMillis = d.U32()
	}
}

// DeviceInfoResponse describes the managed board.
type DeviceInfoResponse struct {
	Name          string
	Vendor        string
	PlatformName  string
	GlobalMem     int64
	ConfiguredBit string
	Accelerator   string
	// ReconfigMillis advertises the board's wall-clock reprogramming cost
	// so clients can derive a BuildProgram deadline that outlives the
	// flash instead of tripping the generic call timeout mid-reconfigure.
	// Trailing field: zero (unknown) is not encoded, so frames from
	// managers without the advertisement stay byte-identical.
	ReconfigMillis uint32
}

// Encode serializes the message.
func (m *DeviceInfoResponse) Encode(e *Encoder) {
	e.String(m.Name)
	e.String(m.Vendor)
	e.String(m.PlatformName)
	e.I64(m.GlobalMem)
	e.String(m.ConfiguredBit)
	e.String(m.Accelerator)
	if m.ReconfigMillis > 0 {
		e.U32(m.ReconfigMillis)
	}
}

// Decode deserializes the message.
func (m *DeviceInfoResponse) Decode(d *Decoder) {
	m.Name = d.String()
	m.Vendor = d.String()
	m.PlatformName = d.String()
	m.GlobalMem = d.I64()
	m.ConfiguredBit = d.String()
	m.Accelerator = d.String()
	m.ReconfigMillis = 0
	if d.Remaining() >= 4 {
		m.ReconfigMillis = d.U32()
	}
}

// IDRequest addresses an object by server-issued handle. Used by the
// Release* methods and BuildProgram.
type IDRequest struct{ ID uint64 }

// Encode serializes the message.
func (m *IDRequest) Encode(e *Encoder) { e.U64(m.ID) }

// Decode deserializes the message.
func (m *IDRequest) Decode(d *Decoder) { m.ID = d.U64() }

// IDResponse returns a server-issued handle.
type IDResponse struct{ ID uint64 }

// Encode serializes the message.
func (m *IDResponse) Encode(e *Encoder) { e.U64(m.ID) }

// Decode deserializes the message.
func (m *IDResponse) Decode(d *Decoder) { m.ID = d.U64() }

// CreateBufferRequest allocates a device buffer. Buffer management is a
// context/information method (synchronous) in the paper's taxonomy, so the
// optional CL_MEM_COPY_HOST_PTR initialization data travels inline and the
// call returns only after the transfer.
type CreateBufferRequest struct {
	Context  uint64
	Flags    uint32
	Size     int64
	InitData []byte
	// ContentHash addresses the manager's content-keyed device buffer
	// cache (proto >= ProtoVersionReuse). With InitData it labels the
	// upload for later reuse; without InitData it is a cache probe — the
	// manager answers with a shared buffer handle on a hit or ID 0 on a
	// miss. Trailing field after the payload: unhashed frames omit it and
	// stay byte-identical to earlier revisions.
	ContentHash uint64
}

// Encode serializes the message.
func (m *CreateBufferRequest) Encode(e *Encoder) {
	m.EncodeHead(e)
	e.Raw(m.InitData)
	m.EncodeTail(e)
}

// EncodeHead serializes everything up to and including the u32 init-data
// length; the InitData bytes are expected to follow as their own write
// segment (vectored write) or Raw append, then EncodeTail.
func (m *CreateBufferRequest) EncodeHead(e *Encoder) {
	e.U64(m.Context)
	e.U32(m.Flags)
	e.I64(m.Size)
	e.U32(uint32(len(m.InitData)))
}

// EncodeTail serializes the trailing content hash (nothing when zero).
func (m *CreateBufferRequest) EncodeTail(e *Encoder) {
	if m.ContentHash != 0 {
		e.U64(m.ContentHash)
	}
}

// Decode deserializes the message.
func (m *CreateBufferRequest) Decode(d *Decoder) {
	m.Context = d.U64()
	m.Flags = d.U32()
	m.Size = d.I64()
	// InitData aliases the decode buffer; the handler consumes it before
	// returning (board.Write during CreateBuffer), so no copy is needed.
	m.InitData = nil
	if b := d.Bytes32(); len(b) > 0 {
		m.InitData = b
	}
	m.ContentHash = 0
	if d.Remaining() >= 8 {
		m.ContentHash = d.U64()
	}
}

// CreateProgramRequest loads a bitstream binary.
type CreateProgramRequest struct {
	Context uint64
	Binary  []byte
}

// Encode serializes the message.
func (m *CreateProgramRequest) Encode(e *Encoder) {
	e.U64(m.Context)
	e.Bytes32(m.Binary)
}

// Decode deserializes the message.
func (m *CreateProgramRequest) Decode(d *Decoder) {
	m.Context = d.U64()
	m.Binary = append([]byte(nil), d.Bytes32()...)
}

// CreateProgramResponse returns the program handle and its kernels.
type CreateProgramResponse struct {
	ID      uint64
	Kernels []string
}

// Encode serializes the message.
func (m *CreateProgramResponse) Encode(e *Encoder) {
	e.U64(m.ID)
	e.StringSlice(m.Kernels)
}

// Decode deserializes the message.
func (m *CreateProgramResponse) Decode(d *Decoder) {
	m.ID = d.U64()
	m.Kernels = d.StringSlice()
}

// CreateKernelRequest instantiates a kernel from a program.
type CreateKernelRequest struct {
	Program uint64
	Name    string
}

// Encode serializes the message.
func (m *CreateKernelRequest) Encode(e *Encoder) {
	e.U64(m.Program)
	e.String(m.Name)
}

// Decode deserializes the message.
func (m *CreateKernelRequest) Decode(d *Decoder) {
	m.Program = d.U64()
	m.Name = d.String()
}

// SetKernelArgRequest binds one kernel argument.
type SetKernelArgRequest struct {
	Kernel uint64
	Index  uint32
	Arg    ocl.Arg
}

// Encode serializes the message.
func (m *SetKernelArgRequest) Encode(e *Encoder) {
	e.U64(m.Kernel)
	e.U32(m.Index)
	EncodeArg(e, m.Arg)
}

// Decode deserializes the message.
func (m *SetKernelArgRequest) Decode(d *Decoder) {
	m.Kernel = d.U64()
	m.Index = d.U32()
	m.Arg = DecodeArg(d)
}

// SetupShmRequest asks the manager to open the client's shared-memory
// segment.
type SetupShmRequest struct {
	// Path is the segment's filesystem path (under /dev/shm).
	Path string
	// Size is the segment length in bytes.
	Size int64
}

// Encode serializes the message.
func (m *SetupShmRequest) Encode(e *Encoder) {
	e.String(m.Path)
	e.I64(m.Size)
}

// Decode deserializes the message.
func (m *SetupShmRequest) Decode(d *Decoder) {
	m.Path = d.String()
	m.Size = d.I64()
}

// EnqueueWriteRequest transfers host data into a device buffer.
type EnqueueWriteRequest struct {
	// Tag is the client-side event identity echoed in notifications — the
	// paper's "pointer to the newly created event".
	Tag    uint64
	Queue  uint64
	Buffer uint64
	Offset int64
	Via    DataVia
	// Data carries the payload for ViaInline.
	Data []byte
	// ShmOff/ShmLen reference the payload for ViaShm.
	ShmOff int64
	ShmLen int64
	// TraceID/SpanID are the operation's distributed-tracing identity
	// (proto >= ProtoVersionTrace). Trailing fields after the payload:
	// untraced requests omit them and stay byte-identical to the
	// pre-trace layout.
	TraceID uint64
	SpanID  uint64
}

// Encode serializes the message.
func (m *EnqueueWriteRequest) Encode(e *Encoder) {
	m.EncodeHead(e)
	if m.Via == ViaInline {
		e.Raw(m.Data)
	}
	m.EncodeTail(e)
}

// EncodeHead serializes everything except the inline payload bytes: for
// ViaInline the head ends with the u32 data length, and the Data slice is
// expected to follow as its own write segment (vectored write) or Raw
// append. For ViaShm the head is the whole message.
func (m *EnqueueWriteRequest) EncodeHead(e *Encoder) {
	e.U64(m.Tag)
	e.U64(m.Queue)
	e.U64(m.Buffer)
	e.I64(m.Offset)
	e.U8(uint8(m.Via))
	if m.Via == ViaInline {
		e.U32(uint32(len(m.Data)))
	} else {
		e.I64(m.ShmOff)
		e.I64(m.ShmLen)
	}
}

// EncodeTail serializes the trailing trace IDs (nothing when untraced).
// It follows the inline payload on the wire, so a vectored sender encodes
// head and tail into one buffer and slots the Data segment between them.
func (m *EnqueueWriteRequest) EncodeTail(e *Encoder) {
	encodeTraceTail(e, m.TraceID, m.SpanID)
}

// Decode deserializes the message. Data aliases the decode buffer: the
// manager retains the request payload (rpc.Conn.RetainRequestPayload) and
// releases it once the bytes reach the board.
func (m *EnqueueWriteRequest) Decode(d *Decoder) {
	m.Tag = d.U64()
	m.Queue = d.U64()
	m.Buffer = d.U64()
	m.Offset = d.I64()
	m.Via = DataVia(d.U8())
	if m.Via == ViaInline {
		m.Data = d.Bytes32()
	} else {
		m.ShmOff = d.I64()
		m.ShmLen = d.I64()
	}
	m.TraceID, m.SpanID = decodeTraceTail(d)
}

// EnqueueReadRequest transfers device data back to the host.
type EnqueueReadRequest struct {
	Tag    uint64
	Queue  uint64
	Buffer uint64
	Offset int64
	Length int64
	Via    DataVia
	// ShmOff is the destination offset inside the segment for ViaShm.
	ShmOff int64
	// TraceID/SpanID: trailing trace identity, as on EnqueueWriteRequest.
	TraceID uint64
	SpanID  uint64
}

// Encode serializes the message.
func (m *EnqueueReadRequest) Encode(e *Encoder) {
	e.U64(m.Tag)
	e.U64(m.Queue)
	e.U64(m.Buffer)
	e.I64(m.Offset)
	e.I64(m.Length)
	e.U8(uint8(m.Via))
	e.I64(m.ShmOff)
	encodeTraceTail(e, m.TraceID, m.SpanID)
}

// Decode deserializes the message.
func (m *EnqueueReadRequest) Decode(d *Decoder) {
	m.Tag = d.U64()
	m.Queue = d.U64()
	m.Buffer = d.U64()
	m.Offset = d.I64()
	m.Length = d.I64()
	m.Via = DataVia(d.U8())
	m.ShmOff = d.I64()
	m.TraceID, m.SpanID = decodeTraceTail(d)
}

// EnqueueKernelRequest launches a kernel.
type EnqueueKernelRequest struct {
	Tag    uint64
	Queue  uint64
	Kernel uint64
	Global []int64
	Local  []int64
	// TraceID/SpanID: trailing trace identity, as on EnqueueWriteRequest.
	TraceID uint64
	SpanID  uint64
}

// Encode serializes the message.
func (m *EnqueueKernelRequest) Encode(e *Encoder) {
	e.U64(m.Tag)
	e.U64(m.Queue)
	e.U64(m.Kernel)
	e.I64Slice(m.Global)
	e.I64Slice(m.Local)
	encodeTraceTail(e, m.TraceID, m.SpanID)
}

// Decode deserializes the message.
func (m *EnqueueKernelRequest) Decode(d *Decoder) {
	m.Tag = d.U64()
	m.Queue = d.U64()
	m.Kernel = d.U64()
	m.Global = d.I64Slice()
	m.Local = d.I64Slice()
	m.TraceID, m.SpanID = decodeTraceTail(d)
}

// EnqueueCopyRequest moves Length bytes from one device buffer to another
// on the board, joining the client's current task like the other enqueues
// (proto >= ProtoVersionReuse). The bytes never leave the device, which is
// what makes multi-stage pipelines zero-copy from the client's viewpoint.
type EnqueueCopyRequest struct {
	Tag       uint64
	Queue     uint64
	SrcBuffer uint64
	DstBuffer uint64
	SrcOffset int64
	DstOffset int64
	Length    int64
	// TraceID/SpanID: trailing trace identity, as on EnqueueWriteRequest.
	TraceID uint64
	SpanID  uint64
}

// Encode serializes the message.
func (m *EnqueueCopyRequest) Encode(e *Encoder) {
	e.U64(m.Tag)
	e.U64(m.Queue)
	e.U64(m.SrcBuffer)
	e.U64(m.DstBuffer)
	e.I64(m.SrcOffset)
	e.I64(m.DstOffset)
	e.I64(m.Length)
	encodeTraceTail(e, m.TraceID, m.SpanID)
}

// Decode deserializes the message.
func (m *EnqueueCopyRequest) Decode(d *Decoder) {
	m.Tag = d.U64()
	m.Queue = d.U64()
	m.SrcBuffer = d.U64()
	m.DstBuffer = d.U64()
	m.SrcOffset = d.I64()
	m.DstOffset = d.I64()
	m.Length = d.I64()
	m.TraceID, m.SpanID = decodeTraceTail(d)
}

// FlushRequest seals the client's current task on a queue and submits it
// to the manager's central queue.
type FlushRequest struct {
	Queue uint64
	// DeadlineMillis is the client's soft completion hint, relative to
	// submission; the deadline discipline orders tasks by it. Trailing
	// field: zero (no hint) is not encoded, keeping unhinted frames
	// byte-identical to pre-scheduler ones.
	DeadlineMillis uint32
	// TraceID/SpanID carry the flush-formed task's trace identity (the
	// task's root span). Trailing after DeadlineMillis; a traced flush
	// always encodes DeadlineMillis — even a zero one — so the decoder
	// can tell a bare deadline (4 trailing bytes) from a trace tail
	// (4+16) without ambiguity. Untraced unhinted flushes stay
	// byte-identical to the proto-1 layout.
	TraceID uint64
	SpanID  uint64
}

// Encode serializes the message.
func (m *FlushRequest) Encode(e *Encoder) {
	e.U64(m.Queue)
	if m.DeadlineMillis > 0 || m.TraceID != 0 {
		e.U32(m.DeadlineMillis)
	}
	encodeTraceTail(e, m.TraceID, m.SpanID)
}

// Decode deserializes the message.
func (m *FlushRequest) Decode(d *Decoder) {
	m.Queue = d.U64()
	m.DeadlineMillis = 0
	if d.Remaining() > 0 {
		m.DeadlineMillis = d.U32()
	}
	m.TraceID, m.SpanID = decodeTraceTail(d)
}

// OpState is the state carried by an operation notification.
type OpState uint8

// Operation notification states, mirroring the event state machine of the
// Remote OpenCL Library (INIT is client-local and never crosses the wire).
const (
	// OpAccepted confirms the manager appended the operation to the
	// client's task (the FIRST step of the paper's state machine).
	OpAccepted OpState = 1
	// OpRunning signals the task containing the operation started on the
	// device.
	OpRunning OpState = 2
	// OpComplete signals the operation finished; reads carry data.
	OpComplete OpState = 3
	// OpFailed signals the operation failed; Status holds the code.
	OpFailed OpState = 4
)

// String names the state.
func (s OpState) String() string {
	switch s {
	case OpAccepted:
		return "accepted"
	case OpRunning:
		return "running"
	case OpComplete:
		return "complete"
	case OpFailed:
		return "failed"
	}
	return "unknown"
}

// OpNotification is pushed from the Device Manager to the client as an
// operation progresses. Tag identifies the client-side event.
//
// Wire order puts Data LAST (proto v2 reordered it from the middle) so the
// head — every fixed field plus the u32 data length — can be encoded
// separately from the payload bytes, which then travel as their own
// vectored-write segment without ever being copied into the encoder.
// Sessions negotiated below ProtoVersionBatch still speak the original
// field order: use EncodeV1/DecodeV1 for those peers.
type OpNotification struct {
	Tag    uint64
	State  OpState
	Status int32
	Error  string
	// ShmLen tells a ViaShm read how many bytes landed at its ShmOff.
	ShmLen int64
	// DeviceNanos is the modelled device time the operation occupied,
	// exposed for profiling (CL_PROFILING_COMMAND_* analog) and metrics.
	DeviceNanos int64
	// Data carries read results for ViaInline reads.
	Data []byte
}

// Encode serializes the message.
func (m *OpNotification) Encode(e *Encoder) {
	m.EncodeHead(e)
	e.Raw(m.Data)
}

// EncodeHead serializes everything up to and including the u32 data
// length; the Data bytes themselves are expected to follow as a separate
// write segment (or Raw append).
func (m *OpNotification) EncodeHead(e *Encoder) {
	e.U64(m.Tag)
	e.U8(uint8(m.State))
	e.I32(m.Status)
	e.String(m.Error)
	e.I64(m.ShmLen)
	e.I64(m.DeviceNanos)
	e.U32(uint32(len(m.Data)))
}

// Decode deserializes the message. Data aliases the decode buffer; the
// remote library's connection thread copies read results into their
// destinations before releasing the frame.
func (m *OpNotification) Decode(d *Decoder) {
	m.Tag = d.U64()
	m.State = OpState(d.U8())
	m.Status = d.I32()
	m.Error = d.String()
	m.ShmLen = d.I64()
	m.DeviceNanos = d.I64()
	m.Data = nil
	if b := d.Bytes32(); len(b) > 0 {
		m.Data = b
	}
}

// EncodeV1 serializes the proto-1 field order, where Data sits mid-message
// as a length-prefixed field instead of trailing the fixed head. Pre-batch
// peers decode exactly this layout, so the manager must emit it verbatim to
// any session negotiated below ProtoVersionBatch.
func (m *OpNotification) EncodeV1(e *Encoder) {
	e.U64(m.Tag)
	e.U8(uint8(m.State))
	e.I32(m.Status)
	e.String(m.Error)
	e.Bytes32(m.Data)
	e.I64(m.ShmLen)
	e.I64(m.DeviceNanos)
}

// DecodeV1 deserializes the proto-1 field order. Data aliases the decode
// buffer, as in Decode.
func (m *OpNotification) DecodeV1(d *Decoder) {
	m.Tag = d.U64()
	m.State = OpState(d.U8())
	m.Status = d.I32()
	m.Error = d.String()
	m.Data = nil
	if b := d.Bytes32(); len(b) > 0 {
		m.Data = b
	}
	m.ShmLen = d.I64()
	m.DeviceNanos = d.I64()
}

// minEncodedNotificationSize is the smallest possible OpNotification
// encoding — all fixed fields plus empty Error and Data length prefixes
// (8+1+4+4+8+8+4 bytes). Bounds the batch count a frame can plausibly
// claim.
const minEncodedNotificationSize = 37

// OpNotificationBatch coalesces the notifications a task emits into one
// frame (proto >= ProtoVersionBatch only). Wire layout: u32 count followed
// by count consecutive OpNotification encodings. The manager's notify
// batcher assembles the frame incrementally (reserving the count with
// U32(0) and patching it via SetU32 at flush), so this type exists for
// whole-batch encodes in tests and for streaming decodes on the client.
type OpNotificationBatch struct {
	Notes []OpNotification
}

// Encode serializes the message.
func (m *OpNotificationBatch) Encode(e *Encoder) {
	e.U32(uint32(len(m.Notes)))
	for i := range m.Notes {
		m.Notes[i].Encode(e)
	}
}

// Decode deserializes the message. Each notification's Data aliases the
// decode buffer.
func (m *OpNotificationBatch) Decode(d *Decoder) {
	n := d.U32()
	// Bounding by the minimum encoding size keeps a hostile count from
	// forcing a huge slice allocation before the first element decode fails.
	if d.err != nil || uint64(n) > uint64(d.Remaining())/minEncodedNotificationSize {
		if d.err == nil {
			d.err = fmt.Errorf("%w: batch of %d notifications", ErrTruncated, n)
		}
		return
	}
	m.Notes = make([]OpNotification, n)
	for i := range m.Notes {
		m.Notes[i].Decode(d)
	}
}
