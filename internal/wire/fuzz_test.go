package wire

import (
	"testing"
	"testing/quick"
)

// decodeAll runs every message decoder over the same buffer; none may
// panic regardless of content (a malicious or corrupted peer must not be
// able to crash a Device Manager or client).
func decodeAll(buf []byte) {
	msgs := []codec{
		&HelloRequest{}, &HelloResponse{}, &DeviceInfoResponse{},
		&IDRequest{}, &IDResponse{}, &CreateBufferRequest{},
		&CreateProgramRequest{}, &CreateProgramResponse{},
		&CreateKernelRequest{}, &SetKernelArgRequest{}, &SetupShmRequest{},
		&EnqueueWriteRequest{}, &EnqueueReadRequest{}, &EnqueueKernelRequest{},
		&EnqueueCopyRequest{}, &FlushRequest{}, &OpNotification{},
	}
	for _, m := range msgs {
		m.Decode(NewDecoder(buf))
	}
}

func TestDecodersNeverPanicOnRandomBytes(t *testing.T) {
	if err := quick.Check(func(buf []byte) bool {
		decodeAll(buf)
		return true // reaching here without panic is the property
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodersNeverPanicOnTruncatedValidMessages(t *testing.T) {
	// Encode a representative message and decode every possible prefix.
	e := NewEncoder(256)
	(&EnqueueKernelRequest{
		Tag: 7, Queue: 8, Kernel: 9,
		Global: []int64{100, 200}, Local: []int64{10},
	}).Encode(e)
	full := e.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		decodeAll(full[:cut])
	}
}

func TestDecodersNeverPanicOnBitFlips(t *testing.T) {
	e := NewEncoder(256)
	(&OpNotification{Tag: 1, State: OpComplete, Data: []byte("payload")}).Encode(e)
	base := e.Bytes()
	for i := 0; i < len(base); i++ {
		for _, mask := range []byte{0x01, 0x80, 0xFF} {
			buf := append([]byte(nil), base...)
			buf[i] ^= mask
			decodeAll(buf)
		}
	}
}
