package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodePrimitives(t *testing.T) {
	e := NewEncoder(64)
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U16(65535)
	e.U32(1 << 31)
	e.U64(1 << 62)
	e.I32(-42)
	e.I64(-1 << 50)
	e.F64(3.14159)
	e.Bytes32([]byte("payload"))
	e.String("hello")
	e.I64Slice([]int64{1, -2, 3})
	e.StringSlice([]string{"a", "bb"})

	d := NewDecoder(e.Bytes())
	if d.U8() != 7 || !d.Bool() || d.Bool() {
		t.Fatal("u8/bool mismatch")
	}
	if d.U16() != 65535 || d.U32() != 1<<31 || d.U64() != 1<<62 {
		t.Fatal("unsigned mismatch")
	}
	if d.I32() != -42 || d.I64() != -1<<50 {
		t.Fatal("signed mismatch")
	}
	if d.F64() != 3.14159 {
		t.Fatal("float mismatch")
	}
	if !bytes.Equal(d.Bytes32(), []byte("payload")) {
		t.Fatal("bytes mismatch")
	}
	if d.String() != "hello" {
		t.Fatal("string mismatch")
	}
	s := d.I64Slice()
	if len(s) != 3 || s[0] != 1 || s[1] != -2 || s[2] != 3 {
		t.Fatalf("i64 slice = %v", s)
	}
	ss := d.StringSlice()
	if len(ss) != 2 || ss[0] != "a" || ss[1] != "bb" {
		t.Fatalf("string slice = %v", ss)
	}
	if d.Err() != nil {
		t.Fatalf("decoder error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(16)
	e.U64(12345)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.U64()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut=%d err=%v, want ErrTruncated", cut, d.Err())
		}
		// Sticky error: further reads keep failing and return zeros.
		if d.U32() != 0 || d.Err() == nil {
			t.Fatal("error must be sticky")
		}
	}
}

func TestDecoderRejectsHugeField(t *testing.T) {
	e := NewEncoder(8)
	e.U32(0xFFFFFFFF) // 4 GB length prefix
	d := NewDecoder(e.Bytes())
	d.Bytes32()
	if !errors.Is(d.Err(), ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", d.Err())
	}
}

func TestDecoderRejectsLyingSliceCounts(t *testing.T) {
	e := NewEncoder(8)
	e.U32(1 << 30) // claims a billion elements with no data
	d := NewDecoder(e.Bytes())
	d.I64Slice()
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("i64 slice err = %v", d.Err())
	}
	d2 := NewDecoder(e.Bytes())
	d2.StringSlice()
	if !errors.Is(d2.Err(), ErrTruncated) {
		t.Fatalf("string slice err = %v", d2.Err())
	}
}

func TestPrimitiveRoundTripProperties(t *testing.T) {
	roundTrip := func(u8 uint8, u16 uint16, u32 uint32, u64 uint64, i64 int64, f float64, b []byte, s string) bool {
		e := NewEncoder(64)
		e.U8(u8)
		e.U16(u16)
		e.U32(u32)
		e.U64(u64)
		e.I64(i64)
		e.F64(f)
		e.Bytes32(b)
		e.String(s)
		d := NewDecoder(e.Bytes())
		ok := d.U8() == u8 && d.U16() == u16 && d.U32() == u32 &&
			d.U64() == u64 && d.I64() == i64
		gotF := d.F64()
		ok = ok && (gotF == f || (f != f && gotF != gotF)) // NaN-safe
		ok = ok && bytes.Equal(d.Bytes32(), b) && d.String() == s
		return ok && d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyFields(t *testing.T) {
	e := NewEncoder(8)
	e.Bytes32(nil)
	e.String("")
	e.I64Slice(nil)
	e.StringSlice(nil)
	d := NewDecoder(e.Bytes())
	if len(d.Bytes32()) != 0 || d.String() != "" || len(d.I64Slice()) != 0 || len(d.StringSlice()) != 0 {
		t.Fatal("empty fields must round-trip empty")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}
