package wire

import "sync"

// Buffer pooling for the transport hot path. Frame payloads, encoder
// buffers and read staging buffers cycle through a small tier of size
// classes instead of being allocated per message — the allocation half of
// the copy/allocation overhead the paper attributes to the gRPC data path.
//
// Ownership is explicit: a buffer obtained from GetBuf (directly or behind
// readFrame/GetEncoder) has exactly one owner at a time, and the owner
// either passes it on (documented at each hand-off point) or returns it
// with PutBuf. PutBuf accepts any slice: it classifies by capacity, so the
// usual "strip a header, keep the rest" sub-slices stay poolable. Slices
// too small or too large to be worth retaining are simply dropped.

// Pool size classes. Allocations carry a little slack beyond the class
// base so a buffer that loses a few header bytes to re-slicing still
// classifies back into the class it came from.
const (
	poolSmallBase  = 4 << 10
	poolMediumBase = 64 << 10
	poolLargeBase  = 1 << 20
	poolSlack      = 512
	// poolRetainMax bounds what PutBuf keeps: a one-off giant frame must
	// not pin megabytes inside the large class forever.
	poolRetainMax = 4 << 20
)

var poolBases = [...]int{poolSmallBase, poolMediumBase, poolLargeBase}

// bufPools holds *[]byte so steady-state Get/Put stays allocation-free;
// headerPool recycles the slice headers themselves.
var bufPools [len(poolBases)]sync.Pool

var headerPool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuf returns a buffer of length n backed by the pool. Buffers larger
// than the biggest class are plain allocations.
func GetBuf(n int) []byte {
	if n <= 0 {
		return []byte{}
	}
	for i, base := range poolBases {
		if n > base {
			continue
		}
		if h, _ := bufPools[i].Get().(*[]byte); h != nil {
			b := *h
			*h = nil
			headerPool.Put(h)
			// The class invariant (cap >= base) guarantees the fit.
			return b[:n]
		}
		return make([]byte, n, base+poolSlack)
	}
	return make([]byte, n)
}

// PutBuf returns a buffer to the pool. The caller must not touch b (or any
// slice aliasing it) afterwards. Classification is by capacity: b lands in
// the largest class whose base it still covers.
func PutBuf(b []byte) {
	c := cap(b)
	if c < poolSmallBase || c > poolRetainMax {
		return
	}
	for i := len(poolBases) - 1; i >= 0; i-- {
		if c >= poolBases[i] {
			h := headerPool.Get().(*[]byte)
			*h = b[:0:c]
			bufPools[i].Put(h)
			return
		}
	}
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled encoder whose buffer comes from the buffer
// pool. Pair it with Release (buffer returns to the pool) or Detach
// (buffer ownership transfers to the caller).
func GetEncoder(sizeHint int) *Encoder {
	e := encoderPool.Get().(*Encoder)
	if sizeHint < 64 {
		sizeHint = 64
	}
	e.buf = GetBuf(sizeHint)[:0]
	return e
}

// Release recycles the encoder and its buffer. The caller must be done
// with every slice previously returned by Bytes.
func (e *Encoder) Release() {
	PutBuf(e.buf)
	e.buf = nil
	encoderPool.Put(e)
}

// Detach returns the encoded bytes, transferring their ownership to the
// caller (who should eventually PutBuf them), and recycles the encoder
// itself.
func (e *Encoder) Detach() []byte {
	b := e.buf
	e.buf = nil
	encoderPool.Put(e)
	return b
}
