package wire

import (
	"bytes"
	"reflect"
	"testing"

	"blastfunction/internal/ocl"
)

// codec is implemented by every protocol message.
type codec interface {
	Encode(*Encoder)
	Decode(*Decoder)
}

// roundTrip encodes msg and decodes it into out, failing on any codec error
// or leftover bytes.
func roundTrip(t *testing.T, msg, out codec) {
	t.Helper()
	e := NewEncoder(64)
	msg.Encode(e)
	d := NewDecoder(e.Bytes())
	out.Decode(d)
	if d.Err() != nil {
		t.Fatalf("%T decode: %v", msg, d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%T: %d leftover bytes", msg, d.Remaining())
	}
}

func TestMessageRoundTrips(t *testing.T) {
	argBuf := ocl.BufferArg(77)
	argScalar, _ := ocl.PackArg(int32(-5))
	cases := []struct{ in, out codec }{
		{&HelloRequest{ClientName: "sobel-1", ProtoVersion: ProtoVersion}, &HelloRequest{}},
		{&HelloResponse{SessionID: 9, Node: "nodeB"}, &HelloResponse{}},
		{&DeviceInfoResponse{Name: "de5a_net", Vendor: "Intel", PlatformName: "FPGA SDK",
			GlobalMem: 8 << 30, ConfiguredBit: "spector-sobel", Accelerator: "sobel"}, &DeviceInfoResponse{}},
		{&IDRequest{ID: 4}, &IDRequest{}},
		{&IDResponse{ID: 5}, &IDResponse{}},
		{&CreateBufferRequest{Context: 1, Flags: 3, Size: 1 << 20}, &CreateBufferRequest{}},
		{&CreateProgramRequest{Context: 2, Binary: []byte("AOCX0:spector-mm")}, &CreateProgramRequest{}},
		{&CreateProgramResponse{ID: 8, Kernels: []string{"mm"}}, &CreateProgramResponse{}},
		{&CreateKernelRequest{Program: 8, Name: "mm"}, &CreateKernelRequest{}},
		{&SetKernelArgRequest{Kernel: 3, Index: 1, Arg: argBuf}, &SetKernelArgRequest{}},
		{&SetKernelArgRequest{Kernel: 3, Index: 2, Arg: argScalar}, &SetKernelArgRequest{}},
		{&SetupShmRequest{Path: "/dev/shm/bf-1", Size: 1 << 24}, &SetupShmRequest{}},
		{&EnqueueWriteRequest{Tag: 11, Queue: 1, Buffer: 2, Offset: 64,
			Via: ViaInline, Data: []byte("abcdef")}, &EnqueueWriteRequest{}},
		{&EnqueueWriteRequest{Tag: 12, Queue: 1, Buffer: 2, Offset: 0,
			Via: ViaShm, ShmOff: 4096, ShmLen: 512}, &EnqueueWriteRequest{}},
		{&EnqueueReadRequest{Tag: 13, Queue: 1, Buffer: 2, Offset: 8, Length: 100,
			Via: ViaShm, ShmOff: 8192}, &EnqueueReadRequest{}},
		{&EnqueueKernelRequest{Tag: 14, Queue: 1, Kernel: 3,
			Global: []int64{1024, 8}, Local: []int64{16}}, &EnqueueKernelRequest{}},
		{&FlushRequest{Queue: 1}, &FlushRequest{}},
		{&OpNotification{Tag: 14, State: OpComplete, DeviceNanos: 12345,
			Data: []byte("result")}, &OpNotification{}},
		{&OpNotification{Tag: 15, State: OpFailed, Status: int32(ocl.ErrInvalidMemObject),
			Error: "buffer 9"}, &OpNotification{}},
	}
	for _, c := range cases {
		roundTrip(t, c.in, c.out)
		if !reflect.DeepEqual(c.in, c.out) {
			t.Errorf("%T round trip:\n in: %+v\nout: %+v", c.in, c.in, c.out)
		}
	}
}

func TestArgEncodeDecode(t *testing.T) {
	args := []ocl.Arg{ocl.BufferArg(123)}
	for _, v := range []any{int32(-1), uint32(2), int64(-3), uint64(4), float32(1.5), float64(-2.5)} {
		a, err := ocl.PackArg(v)
		if err != nil {
			t.Fatal(err)
		}
		args = append(args, a)
	}
	for _, a := range args {
		e := NewEncoder(16)
		EncodeArg(e, a)
		d := NewDecoder(e.Bytes())
		got := DecodeArg(d)
		if d.Err() != nil {
			t.Fatalf("decode %v: %v", a.Kind, d.Err())
		}
		if got != a {
			t.Errorf("arg %v round trip: got %+v want %+v", a.Kind, got, a)
		}
	}
}

func TestMethodNames(t *testing.T) {
	if MethodHello.String() != "Hello" || MethodFlush.String() != "Flush" {
		t.Fatal("method names wrong")
	}
	if Method(999).String() != "Method(999)" {
		t.Fatalf("unknown method = %q", Method(999).String())
	}
}

func TestCommandQueueMethodClassification(t *testing.T) {
	// The split drives the Device Manager's sync-vs-task dispatch, the
	// paper's Section III-B distinction.
	cq := []Method{MethodEnqueueWrite, MethodEnqueueRead, MethodEnqueueKernel, MethodFlush}
	for _, m := range cq {
		if !m.CommandQueueMethod() {
			t.Errorf("%v must be a command-queue method", m)
		}
	}
	sync := []Method{MethodHello, MethodDeviceInfo, MethodCreateContext, MethodCreateBuffer,
		MethodCreateProgram, MethodBuildProgram, MethodCreateKernel, MethodSetKernelArg, MethodSetupShm}
	for _, m := range sync {
		if m.CommandQueueMethod() {
			t.Errorf("%v must be a context/information method", m)
		}
	}
}

func TestOpNotificationEmptyData(t *testing.T) {
	n := &OpNotification{Tag: 1, State: OpComplete}
	e := NewEncoder(32)
	n.Encode(e)
	var out OpNotification
	d := NewDecoder(e.Bytes())
	out.Decode(d)
	if out.Data != nil {
		t.Fatalf("empty data decoded as %v", out.Data)
	}
}

func TestEnqueueWriteDataIsCopied(t *testing.T) {
	// Decode must not alias the network buffer: the manager retains the
	// payload in the task after the frame buffer is reused.
	src := &EnqueueWriteRequest{Tag: 1, Queue: 1, Buffer: 1, Via: ViaInline, Data: []byte("precious")}
	e := NewEncoder(64)
	src.Encode(e)
	raw := append([]byte(nil), e.Bytes()...)
	var dst EnqueueWriteRequest
	dst.Decode(NewDecoder(raw))
	for i := range raw {
		raw[i] = 0xFF
	}
	if !bytes.Equal(dst.Data, []byte("precious")) {
		t.Fatal("decoded payload aliases the frame buffer")
	}
}

func TestOpStateString(t *testing.T) {
	for s, want := range map[OpState]string{
		OpAccepted: "accepted", OpRunning: "running",
		OpComplete: "complete", OpFailed: "failed", OpState(0): "unknown",
	} {
		if s.String() != want {
			t.Errorf("OpState(%d) = %q", s, s.String())
		}
	}
}
