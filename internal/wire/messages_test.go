package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"blastfunction/internal/ocl"
)

// codec is implemented by every protocol message.
type codec interface {
	Encode(*Encoder)
	Decode(*Decoder)
}

// roundTrip encodes msg and decodes it into out, failing on any codec error
// or leftover bytes.
func roundTrip(t *testing.T, msg, out codec) {
	t.Helper()
	e := NewEncoder(64)
	msg.Encode(e)
	d := NewDecoder(e.Bytes())
	out.Decode(d)
	if d.Err() != nil {
		t.Fatalf("%T decode: %v", msg, d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%T: %d leftover bytes", msg, d.Remaining())
	}
}

func TestMessageRoundTrips(t *testing.T) {
	argBuf := ocl.BufferArg(77)
	argScalar, _ := ocl.PackArg(int32(-5))
	cases := []struct{ in, out codec }{
		{&HelloRequest{ClientName: "sobel-1", ProtoVersion: ProtoVersion}, &HelloRequest{}},
		{&HelloRequest{ClientName: "sobel-2", ProtoVersion: ProtoVersion, Weight: 4}, &HelloRequest{}},
		{&HelloResponse{SessionID: 9, Node: "nodeB"}, &HelloResponse{}},
		{&DeviceInfoResponse{Name: "de5a_net", Vendor: "Intel", PlatformName: "FPGA SDK",
			GlobalMem: 8 << 30, ConfiguredBit: "spector-sobel", Accelerator: "sobel"}, &DeviceInfoResponse{}},
		{&IDRequest{ID: 4}, &IDRequest{}},
		{&IDResponse{ID: 5}, &IDResponse{}},
		{&CreateBufferRequest{Context: 1, Flags: 3, Size: 1 << 20}, &CreateBufferRequest{}},
		{&CreateBufferRequest{Context: 1, Flags: 1, Size: 4,
			InitData: []byte("abcd"), ContentHash: 0xfeedface}, &CreateBufferRequest{}},
		{&CreateBufferRequest{Context: 1, Flags: 1, Size: 1 << 20,
			ContentHash: 0xfeedface}, &CreateBufferRequest{}},
		{&EnqueueCopyRequest{Tag: 21, Queue: 1, SrcBuffer: 2, DstBuffer: 3,
			SrcOffset: 64, DstOffset: 128, Length: 4096}, &EnqueueCopyRequest{}},
		{&EnqueueCopyRequest{Tag: 22, Queue: 1, SrcBuffer: 2, DstBuffer: 3,
			Length: 4096, TraceID: 0xdead, SpanID: 0xbeef}, &EnqueueCopyRequest{}},
		{&CreateProgramRequest{Context: 2, Binary: []byte("AOCX0:spector-mm")}, &CreateProgramRequest{}},
		{&CreateProgramResponse{ID: 8, Kernels: []string{"mm"}}, &CreateProgramResponse{}},
		{&CreateKernelRequest{Program: 8, Name: "mm"}, &CreateKernelRequest{}},
		{&SetKernelArgRequest{Kernel: 3, Index: 1, Arg: argBuf}, &SetKernelArgRequest{}},
		{&SetKernelArgRequest{Kernel: 3, Index: 2, Arg: argScalar}, &SetKernelArgRequest{}},
		{&SetupShmRequest{Path: "/dev/shm/bf-1", Size: 1 << 24}, &SetupShmRequest{}},
		{&EnqueueWriteRequest{Tag: 11, Queue: 1, Buffer: 2, Offset: 64,
			Via: ViaInline, Data: []byte("abcdef")}, &EnqueueWriteRequest{}},
		{&EnqueueWriteRequest{Tag: 12, Queue: 1, Buffer: 2, Offset: 0,
			Via: ViaShm, ShmOff: 4096, ShmLen: 512}, &EnqueueWriteRequest{}},
		{&EnqueueReadRequest{Tag: 13, Queue: 1, Buffer: 2, Offset: 8, Length: 100,
			Via: ViaShm, ShmOff: 8192}, &EnqueueReadRequest{}},
		{&EnqueueKernelRequest{Tag: 14, Queue: 1, Kernel: 3,
			Global: []int64{1024, 8}, Local: []int64{16}}, &EnqueueKernelRequest{}},
		{&EnqueueWriteRequest{Tag: 16, Queue: 1, Buffer: 2, Offset: 64,
			Via: ViaInline, Data: []byte("abcdef"), TraceID: 0xdead, SpanID: 0xbeef}, &EnqueueWriteRequest{}},
		{&EnqueueWriteRequest{Tag: 17, Queue: 1, Buffer: 2,
			Via: ViaShm, ShmOff: 4096, ShmLen: 512, TraceID: 0xdead, SpanID: 0xbeef}, &EnqueueWriteRequest{}},
		{&EnqueueReadRequest{Tag: 18, Queue: 1, Buffer: 2, Offset: 8, Length: 100,
			Via: ViaShm, ShmOff: 8192, TraceID: 0xdead, SpanID: 0xbeef}, &EnqueueReadRequest{}},
		{&EnqueueKernelRequest{Tag: 19, Queue: 1, Kernel: 3,
			Global: []int64{1024, 8}, Local: []int64{16}, TraceID: 0xdead, SpanID: 0xbeef}, &EnqueueKernelRequest{}},
		{&FlushRequest{Queue: 1}, &FlushRequest{}},
		{&FlushRequest{Queue: 2, DeadlineMillis: 250}, &FlushRequest{}},
		{&FlushRequest{Queue: 3, TraceID: 0xdead, SpanID: 0xbeef}, &FlushRequest{}},
		{&FlushRequest{Queue: 4, DeadlineMillis: 250, TraceID: 0xdead, SpanID: 0xbeef}, &FlushRequest{}},
		{&OpNotification{Tag: 14, State: OpComplete, DeviceNanos: 12345,
			Data: []byte("result")}, &OpNotification{}},
		{&OpNotification{Tag: 15, State: OpFailed, Status: int32(ocl.ErrInvalidMemObject),
			Error: "buffer 9"}, &OpNotification{}},
	}
	for _, c := range cases {
		roundTrip(t, c.in, c.out)
		if !reflect.DeepEqual(c.in, c.out) {
			t.Errorf("%T round trip:\n in: %+v\nout: %+v", c.in, c.in, c.out)
		}
	}
}

// TestSchedulerFieldsTrailing pins the compatibility contract of the
// scheduler's trailing fields: unweighted Hellos and unhinted Flushes
// encode byte-identically to the pre-scheduler layout, and pre-scheduler
// frames decode with the fields zeroed.
func TestSchedulerFieldsTrailing(t *testing.T) {
	// Pre-scheduler HelloRequest layout: string name, u32 proto.
	old := NewEncoder(32)
	old.String("fn-1")
	old.U32(ProtoVersion)
	now := NewEncoder(32)
	(&HelloRequest{ClientName: "fn-1", ProtoVersion: ProtoVersion}).Encode(now)
	if !bytes.Equal(old.Bytes(), now.Bytes()) {
		t.Fatalf("unweighted Hello changed on the wire:\nold %x\nnew %x", old.Bytes(), now.Bytes())
	}
	var h HelloRequest
	d := NewDecoder(old.Bytes())
	h.Decode(d)
	if d.Err() != nil || h.Weight != 0 {
		t.Fatalf("pre-scheduler Hello decode: weight=%d err=%v", h.Weight, d.Err())
	}

	// Pre-scheduler FlushRequest layout: u64 queue.
	old = NewEncoder(16)
	old.U64(7)
	now = NewEncoder(16)
	(&FlushRequest{Queue: 7}).Encode(now)
	if !bytes.Equal(old.Bytes(), now.Bytes()) {
		t.Fatalf("unhinted Flush changed on the wire:\nold %x\nnew %x", old.Bytes(), now.Bytes())
	}
	var f FlushRequest
	d = NewDecoder(old.Bytes())
	f.Decode(d)
	if d.Err() != nil || f.DeadlineMillis != 0 {
		t.Fatalf("pre-scheduler Flush decode: deadline=%d err=%v", f.DeadlineMillis, d.Err())
	}
}

// TestTraceFieldsTrailing pins the compatibility contract of the tracing
// tail: untraced command-queue requests encode byte-identically to the
// pre-trace (proto <= 3) layout, pre-trace frames decode with the trace
// IDs zeroed, and the Flush tail stays unambiguous against the deadline
// hint that precedes it.
func TestTraceFieldsTrailing(t *testing.T) {
	// Pre-trace EnqueueWrite (inline): tag, queue, buffer, offset, via,
	// length-prefixed data.
	old := NewEncoder(64)
	old.U64(11)
	old.U64(1)
	old.U64(2)
	old.I64(64)
	old.U8(uint8(ViaInline))
	old.Bytes32([]byte("abcdef"))
	now := NewEncoder(64)
	(&EnqueueWriteRequest{Tag: 11, Queue: 1, Buffer: 2, Offset: 64,
		Via: ViaInline, Data: []byte("abcdef")}).Encode(now)
	if !bytes.Equal(old.Bytes(), now.Bytes()) {
		t.Fatalf("untraced EnqueueWrite changed on the wire:\nold %x\nnew %x", old.Bytes(), now.Bytes())
	}
	var w EnqueueWriteRequest
	d := NewDecoder(old.Bytes())
	w.Decode(d)
	if d.Err() != nil || w.TraceID != 0 || w.SpanID != 0 {
		t.Fatalf("pre-trace EnqueueWrite decode: trace=%d span=%d err=%v", w.TraceID, w.SpanID, d.Err())
	}

	// Pre-trace EnqueueRead.
	old = NewEncoder(64)
	old.U64(13)
	old.U64(1)
	old.U64(2)
	old.I64(8)
	old.I64(100)
	old.U8(uint8(ViaShm))
	old.I64(8192)
	now = NewEncoder(64)
	(&EnqueueReadRequest{Tag: 13, Queue: 1, Buffer: 2, Offset: 8, Length: 100,
		Via: ViaShm, ShmOff: 8192}).Encode(now)
	if !bytes.Equal(old.Bytes(), now.Bytes()) {
		t.Fatalf("untraced EnqueueRead changed on the wire:\nold %x\nnew %x", old.Bytes(), now.Bytes())
	}

	// Pre-trace EnqueueKernel.
	old = NewEncoder(64)
	old.U64(14)
	old.U64(1)
	old.U64(3)
	old.I64Slice([]int64{1024, 8})
	old.I64Slice([]int64{16})
	now = NewEncoder(64)
	(&EnqueueKernelRequest{Tag: 14, Queue: 1, Kernel: 3,
		Global: []int64{1024, 8}, Local: []int64{16}}).Encode(now)
	if !bytes.Equal(old.Bytes(), now.Bytes()) {
		t.Fatalf("untraced EnqueueKernel changed on the wire:\nold %x\nnew %x", old.Bytes(), now.Bytes())
	}

	// Untraced hinted Flush keeps the scheduler-era layout: u64 queue,
	// u32 deadline.
	old = NewEncoder(16)
	old.U64(7)
	old.U32(250)
	now = NewEncoder(16)
	(&FlushRequest{Queue: 7, DeadlineMillis: 250}).Encode(now)
	if !bytes.Equal(old.Bytes(), now.Bytes()) {
		t.Fatalf("untraced hinted Flush changed on the wire:\nold %x\nnew %x", old.Bytes(), now.Bytes())
	}

	// A traced unhinted Flush must encode the zero deadline so the tail
	// cannot be misread as a bare hint: u64 + u32 + u64 + u64 = 28 bytes.
	now = NewEncoder(32)
	(&FlushRequest{Queue: 7, TraceID: 0xdead, SpanID: 0xbeef}).Encode(now)
	if got := len(now.Bytes()); got != 28 {
		t.Fatalf("traced unhinted Flush is %d bytes, want 28", got)
	}
	var f FlushRequest
	d = NewDecoder(now.Bytes())
	f.Decode(d)
	if d.Err() != nil || f.DeadlineMillis != 0 || f.TraceID != 0xdead || f.SpanID != 0xbeef {
		t.Fatalf("traced unhinted Flush decode: %+v err=%v", f, d.Err())
	}
}

// TestReuseFieldsTrailing pins the compatibility contract of the
// data-plane reuse tail: unhashed CreateBuffers encode byte-identically
// to the pre-reuse (proto <= 4) layout, and pre-reuse frames decode with
// the content hash zeroed — so v4 peers interoperate unchanged.
func TestReuseFieldsTrailing(t *testing.T) {
	// Pre-reuse CreateBuffer layout: context, flags, size, length-prefixed
	// init data.
	old := NewEncoder(64)
	old.U64(3)
	old.U32(1)
	old.I64(6)
	old.Bytes32([]byte("abcdef"))
	now := NewEncoder(64)
	(&CreateBufferRequest{Context: 3, Flags: 1, Size: 6, InitData: []byte("abcdef")}).Encode(now)
	if !bytes.Equal(old.Bytes(), now.Bytes()) {
		t.Fatalf("unhashed CreateBuffer changed on the wire:\nold %x\nnew %x", old.Bytes(), now.Bytes())
	}
	var c CreateBufferRequest
	d := NewDecoder(old.Bytes())
	c.Decode(d)
	if d.Err() != nil || c.ContentHash != 0 {
		t.Fatalf("pre-reuse CreateBuffer decode: hash=%#x err=%v", c.ContentHash, d.Err())
	}
	if !bytes.Equal(c.InitData, []byte("abcdef")) {
		t.Fatalf("pre-reuse CreateBuffer init data: %q", c.InitData)
	}
}

// TestCreateBufferHeadTailMatchesEncode pins the vectored-write split:
// EncodeHead + payload segment + EncodeTail must equal Encode, with and
// without the content-hash tail.
func TestCreateBufferHeadTailMatchesEncode(t *testing.T) {
	for _, hash := range []uint64{0, 0xfeedface} {
		msg := CreateBufferRequest{Context: 3, Flags: 1, Size: 6,
			InitData: []byte("abcdef"), ContentHash: hash}
		whole := NewEncoder(64)
		msg.Encode(whole)
		split := NewEncoder(64)
		msg.EncodeHead(split)
		head := split.Len()
		msg.EncodeTail(split)
		got := append(append([]byte(nil), split.Bytes()[:head]...), msg.InitData...)
		got = append(got, split.Bytes()[head:]...)
		if !bytes.Equal(got, whole.Bytes()) {
			t.Fatalf("hash %#x: head+data+tail != Encode:\nsplit %x\nwhole %x", hash, got, whole.Bytes())
		}
	}
}

func TestArgEncodeDecode(t *testing.T) {
	args := []ocl.Arg{ocl.BufferArg(123)}
	for _, v := range []any{int32(-1), uint32(2), int64(-3), uint64(4), float32(1.5), float64(-2.5)} {
		a, err := ocl.PackArg(v)
		if err != nil {
			t.Fatal(err)
		}
		args = append(args, a)
	}
	for _, a := range args {
		e := NewEncoder(16)
		EncodeArg(e, a)
		d := NewDecoder(e.Bytes())
		got := DecodeArg(d)
		if d.Err() != nil {
			t.Fatalf("decode %v: %v", a.Kind, d.Err())
		}
		if got != a {
			t.Errorf("arg %v round trip: got %+v want %+v", a.Kind, got, a)
		}
	}
}

func TestMethodNames(t *testing.T) {
	if MethodHello.String() != "Hello" || MethodFlush.String() != "Flush" {
		t.Fatal("method names wrong")
	}
	if Method(999).String() != "Method(999)" {
		t.Fatalf("unknown method = %q", Method(999).String())
	}
}

func TestCommandQueueMethodClassification(t *testing.T) {
	// The split drives the Device Manager's sync-vs-task dispatch, the
	// paper's Section III-B distinction.
	cq := []Method{MethodEnqueueWrite, MethodEnqueueRead, MethodEnqueueKernel, MethodFlush}
	for _, m := range cq {
		if !m.CommandQueueMethod() {
			t.Errorf("%v must be a command-queue method", m)
		}
	}
	sync := []Method{MethodHello, MethodDeviceInfo, MethodCreateContext, MethodCreateBuffer,
		MethodCreateProgram, MethodBuildProgram, MethodCreateKernel, MethodSetKernelArg, MethodSetupShm}
	for _, m := range sync {
		if m.CommandQueueMethod() {
			t.Errorf("%v must be a context/information method", m)
		}
	}
}

func TestOpNotificationEmptyData(t *testing.T) {
	n := &OpNotification{Tag: 1, State: OpComplete}
	e := NewEncoder(32)
	n.Encode(e)
	var out OpNotification
	d := NewDecoder(e.Bytes())
	out.Decode(d)
	if out.Data != nil {
		t.Fatalf("empty data decoded as %v", out.Data)
	}
}

func TestEnqueueWriteDataAliasesFrame(t *testing.T) {
	// Decode aliases the network buffer by contract: instead of copying,
	// the manager retains the whole request frame
	// (rpc.Conn.RetainRequestPayload) and releases it after board.Write.
	// Aliasing is what makes the inline write path zero-copy, so a silent
	// return to copying would be a performance regression — pin it down.
	src := &EnqueueWriteRequest{Tag: 1, Queue: 1, Buffer: 1, Via: ViaInline, Data: []byte("precious")}
	e := NewEncoder(64)
	src.Encode(e)
	raw := append([]byte(nil), e.Bytes()...)
	var dst EnqueueWriteRequest
	dst.Decode(NewDecoder(raw))
	if !bytes.Equal(dst.Data, []byte("precious")) {
		t.Fatalf("decoded payload = %q", dst.Data)
	}
	raw[len(raw)-len(dst.Data)] = 'X'
	if dst.Data[0] != 'X' {
		t.Fatal("decoded payload no longer aliases the frame buffer; the manager's retain/release ownership scheme depends on it")
	}
}

func TestEncodeHeadPlusDataMatchesEncode(t *testing.T) {
	// The vectored write path sends EncodeHead output and the Data slice as
	// separate segments; together they must be byte-identical to Encode.
	w := &EnqueueWriteRequest{Tag: 7, Queue: 2, Buffer: 3, Offset: 16, Via: ViaInline, Data: []byte("payload")}
	whole, head := NewEncoder(64), NewEncoder(64)
	w.Encode(whole)
	w.EncodeHead(head)
	if got := append(append([]byte(nil), head.Bytes()...), w.Data...); !bytes.Equal(got, whole.Bytes()) {
		t.Errorf("EnqueueWriteRequest head+data != whole:\n%x\n%x", got, whole.Bytes())
	}
	n := &OpNotification{Tag: 9, State: OpComplete, DeviceNanos: 5, Data: []byte("result")}
	whole, head = NewEncoder(64), NewEncoder(64)
	n.Encode(whole)
	n.EncodeHead(head)
	if got := append(append([]byte(nil), head.Bytes()...), n.Data...); !bytes.Equal(got, whole.Bytes()) {
		t.Errorf("OpNotification head+data != whole:\n%x\n%x", got, whole.Bytes())
	}
}

func TestOpNotificationV1GoldenLayout(t *testing.T) {
	// EncodeV1 must emit the seed's exact byte layout (Data mid-message as a
	// length-prefixed field): a proto-1 peer decodes with that layout, so
	// any drift silently corrupts every field after the divergence point.
	n := &OpNotification{Tag: 7, State: OpComplete, Status: -30, Error: "eh",
		ShmLen: 9, DeviceNanos: 11, Data: []byte{0xAA, 0xBB, 0xCC}}
	want := NewEncoder(64)
	want.U64(7)
	want.U8(uint8(OpComplete))
	want.I32(-30)
	want.String("eh")
	want.Bytes32([]byte{0xAA, 0xBB, 0xCC})
	want.I64(9)
	want.I64(11)
	e := NewEncoder(64)
	n.EncodeV1(e)
	if !bytes.Equal(e.Bytes(), want.Bytes()) {
		t.Fatalf("EncodeV1 drifted from the seed layout:\ngot  %x\nwant %x", e.Bytes(), want.Bytes())
	}
	var out OpNotification
	d := NewDecoder(e.Bytes())
	out.DecodeV1(d)
	if d.Err() != nil {
		t.Fatalf("decode: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d leftover bytes", d.Remaining())
	}
	if !reflect.DeepEqual(n, &out) {
		t.Fatalf("v1 round trip:\n in: %+v\nout: %+v", n, &out)
	}
}

func TestOpNotificationBatchRoundTrip(t *testing.T) {
	in := &OpNotificationBatch{Notes: []OpNotification{
		{Tag: 1, State: OpAccepted},
		{Tag: 1, State: OpRunning},
		{Tag: 1, State: OpComplete, DeviceNanos: 42, Data: []byte("abc")},
		{Tag: 2, State: OpFailed, Status: int32(ocl.ErrInvalidMemObject), Error: "buffer 9"},
	}}
	e := NewEncoder(128)
	in.Encode(e)
	var out OpNotificationBatch
	d := NewDecoder(e.Bytes())
	out.Decode(d)
	if d.Err() != nil {
		t.Fatalf("decode: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d leftover bytes", d.Remaining())
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("batch round trip:\n in: %+v\nout: %+v", in, &out)
	}
}

func TestOpNotificationBatchHostileCount(t *testing.T) {
	// A frame claiming far more notifications than its bytes could encode
	// must fail before the slice allocation, not after a ~100x amplified
	// make([]OpNotification, n).
	e := NewEncoder(64)
	e.U32(1 << 30)
	e.Raw(make([]byte, 40)) // room for barely one notification
	var out OpNotificationBatch
	d := NewDecoder(e.Bytes())
	out.Decode(d)
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("hostile count decoded with err = %v, want ErrTruncated", d.Err())
	}
	if out.Notes != nil {
		t.Fatalf("hostile count still allocated %d notes", len(out.Notes))
	}
}

func TestHelloResponseProtoBackCompat(t *testing.T) {
	// A proto-1 manager encodes no trailing Proto field; a current decoder
	// must read that as proto 1 rather than failing or reporting 0.
	e := NewEncoder(32)
	e.U64(5)
	e.String("nodeA")
	var out HelloResponse
	d := NewDecoder(e.Bytes())
	out.Decode(d)
	if d.Err() != nil {
		t.Fatalf("decode: %v", d.Err())
	}
	if out.Proto != 1 {
		t.Fatalf("missing trailing Proto decoded as %d, want 1", out.Proto)
	}
	// And the current encoding round-trips the negotiated version.
	e = NewEncoder(32)
	(&HelloResponse{SessionID: 5, Node: "nodeA", Proto: ProtoVersionBatch}).Encode(e)
	out = HelloResponse{}
	out.Decode(NewDecoder(e.Bytes()))
	if out.Proto != ProtoVersionBatch {
		t.Fatalf("Proto = %d, want %d", out.Proto, ProtoVersionBatch)
	}
}

func TestOpStateString(t *testing.T) {
	for s, want := range map[OpState]string{
		OpAccepted: "accepted", OpRunning: "running",
		OpComplete: "complete", OpFailed: "failed", OpState(0): "unknown",
	} {
		if s.String() != want {
			t.Errorf("OpState(%d) = %q", s, s.String())
		}
	}
}
