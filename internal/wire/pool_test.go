package wire

import "testing"

func TestGetBufSizesAndClasses(t *testing.T) {
	for _, n := range []int{0, 1, 100, poolSmallBase, poolSmallBase + 1, poolMediumBase, poolLargeBase, poolLargeBase + 1} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d) len = %d", n, len(b))
		}
		PutBuf(b)
	}
}

func TestPutBufRecyclesWithinClass(t *testing.T) {
	// A buffer returned to the pool should come back out for a same-class
	// request. sync.Pool may drop entries under GC pressure, so probe a few
	// times rather than asserting a single round trip.
	hit := false
	for i := 0; i < 16 && !hit; i++ {
		b := GetBuf(poolSmallBase)
		b[0] = 0xAB
		PutBuf(b)
		c := GetBuf(16)
		hit = cap(c) == cap(b) && &c[:1][0] == &b[:1][0]
		PutBuf(c)
	}
	if !hit {
		t.Skip("pool dropped every probe (GC pressure); nothing to assert")
	}
}

func TestPutBufKeepsStrippedSubSlices(t *testing.T) {
	// The usual lifecycle strips a header before release: the sub-slice
	// must still classify into the class it came from (the allocation
	// slack exists for exactly this).
	b := GetBuf(poolSmallBase)
	stripped := b[64:]
	if cap(stripped) < poolSmallBase {
		t.Fatalf("stripped cap %d fell out of the small class (%d)", cap(stripped), poolSmallBase)
	}
	PutBuf(stripped)
	c := GetBuf(poolSmallBase)
	if len(c) != poolSmallBase {
		t.Fatalf("len = %d", len(c))
	}
	PutBuf(c)
}

func TestEncoderDetachTransfersOwnership(t *testing.T) {
	e := GetEncoder(16)
	e.U64(42)
	b := e.Detach()
	if len(b) != 8 {
		t.Fatalf("detached len = %d", len(b))
	}
	// The encoder is recycled; a fresh Get must not resurrect b's bytes.
	e2 := GetEncoder(16)
	e2.U64(7)
	if got := e2.Bytes(); len(got) != 8 {
		t.Fatalf("recycled encoder len = %d", len(got))
	}
	e2.Release()
	PutBuf(b)
}

func BenchmarkEncoderPooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder(64)
		e.U64(uint64(i))
		e.U8(3)
		e.I32(0)
		e.String("")
		e.I64(0)
		e.I64(12345)
		e.U32(0)
		e.Release()
	}
}

func BenchmarkEncoderUnpooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(64)
		e.U64(uint64(i))
		e.U8(3)
		e.I32(0)
		e.String("")
		e.I64(0)
		e.I64(12345)
		e.U32(0)
		_ = e.Bytes()
	}
}
