package model

import (
	"testing"
	"time"
)

func TestPCIeTransferScalesLinearly(t *testing.T) {
	m := WorkerNode()
	small := m.PCIeTransfer(1 << 20)
	big := m.PCIeTransfer(1 << 30)
	if small <= m.PCIeBaseLatency {
		t.Fatalf("1MB transfer %v not above base latency", small)
	}
	// 1 GB at 6 GB/s is ~166 ms.
	want := time.Second / 6
	if diff := big - m.PCIeBaseLatency - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("1GB transfer = %v, want ~%v", big, want)
	}
	if m.PCIeTransfer(0) != 0 || m.PCIeTransfer(-5) != 0 {
		t.Fatal("degenerate transfers must cost nothing")
	}
}

func TestShmOverheadCalibration(t *testing.T) {
	// Paper: transferring 2 GB through the shm path costs ~155 ms of
	// copy overhead (one staging copy at ~13 GB/s).
	m := WorkerNode()
	got := m.ShmDataOverhead(2 << 30)
	want := 155 * time.Millisecond
	if got < want-10*time.Millisecond || got > want+10*time.Millisecond {
		t.Fatalf("shm overhead at 2GB = %v, want ~%v", got, want)
	}
}

func TestGRPCRoughlyFourTimesNative(t *testing.T) {
	// Paper Fig. 4a: the pure gRPC path shows ~4x the native RTT at large
	// sizes. Native large-transfer RTT is dominated by PCIe; the gRPC path
	// adds 3 copies + serialization.
	m := WorkerNode()
	size := int64(2 << 30)
	native := m.PCIeTransfer(size)
	grpc := native + m.GRPCDataOverhead(size) + m.ControlRTT
	ratio := float64(grpc) / float64(native)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("gRPC/native ratio = %.2f, want ~4", ratio)
	}
}

func TestControlOverheadPerOp(t *testing.T) {
	m := WorkerNode()
	if m.TaskControlOverhead(0) != 0 {
		t.Fatal("empty task must cost nothing")
	}
	one := m.TaskControlOverhead(1)
	if one != m.ControlRTT {
		t.Fatalf("1-op task = %v, want %v", one, m.ControlRTT)
	}
	three := m.TaskControlOverhead(3)
	if three != m.ControlRTT+2*m.PerOpControl {
		t.Fatalf("3-op task = %v", three)
	}
}

func TestMasterNodeIsSlower(t *testing.T) {
	w, a := WorkerNode(), MasterNode()
	size := int64(8 << 20)
	if a.PCIeTransfer(size) <= w.PCIeTransfer(size) {
		t.Fatal("master node PCIe Gen2 must be slower than worker Gen3")
	}
	if a.HostCopy(size) <= w.HostCopy(size) {
		t.Fatal("master node host copies must be slower")
	}
	if a.HostFactor <= w.HostFactor {
		t.Fatal("master node host factor must exceed worker")
	}
}

func TestTransportString(t *testing.T) {
	cases := map[Transport]string{
		TransportNative: "Native",
		TransportGRPC:   "BlastFunction",
		TransportShm:    "BlastFunction shm",
		Transport(99):   "unknown",
	}
	for tr, want := range cases {
		if tr.String() != want {
			t.Errorf("%d.String() = %q, want %q", tr, tr.String(), want)
		}
	}
}

func TestDataOverheadByTransport(t *testing.T) {
	m := WorkerNode()
	n := int64(1 << 20)
	if m.DataOverhead(TransportNative, n) != 0 {
		t.Fatal("native transport has no data overhead")
	}
	if m.DataOverhead(TransportShm, n) != m.ShmDataOverhead(n) {
		t.Fatal("shm overhead mismatch")
	}
	if m.DataOverhead(TransportGRPC, n) != m.GRPCDataOverhead(n) {
		t.Fatal("grpc overhead mismatch")
	}
	if m.DataOverhead(TransportGRPC, n) <= m.DataOverhead(TransportShm, n) {
		t.Fatal("gRPC path must cost more than shm path")
	}
	if m.ControlOverhead(TransportNative, 3) != 0 {
		t.Fatal("native pays no control overhead")
	}
	if m.ControlOverhead(TransportShm, 3) != m.TaskControlOverhead(3) {
		t.Fatal("shm control overhead mismatch")
	}
}

func TestOverheadMonotonicInSize(t *testing.T) {
	m := WorkerNode()
	prevG, prevS := time.Duration(0), time.Duration(0)
	for _, n := range []int64{1 << 10, 1 << 16, 1 << 20, 1 << 26, 1 << 30} {
		g, s := m.GRPCDataOverhead(n), m.ShmDataOverhead(n)
		if g < prevG || s < prevS {
			t.Fatalf("overheads not monotonic at %d bytes", n)
		}
		prevG, prevS = g, s
	}
}
