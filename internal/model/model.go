// Package model holds the calibrated cost models of the reproduction.
//
// The paper evaluates BlastFunction on a three-node testbed with one Terasic
// DE5a-Net (Intel Arria 10 GX 1150) per node. No FPGA hardware is available
// to this reproduction, so every latency the hardware or the transports
// would produce is computed from analytic models calibrated against the
// measurements the paper reports (Figure 4 and Tables II-IV). The live
// system (RPC + shared memory + Device Manager) and the discrete-event
// experiments share these models, which keeps the two views consistent.
//
// Calibration anchors taken from the paper:
//
//   - R/W RTT (Fig. 4a): gRPC path about 4x native at large sizes (3 extra
//     buffer copies + serialization); shm path overhead 155 ms at 2 GB
//     total (about 13 GB/s effective one-copy bandwidth); roughly 2 ms of
//     gRPC control signalling in both remote paths.
//   - Sobel (Fig. 4b): native RTT 0.27 ms at 10x10 up to 14.53 ms at
//     1920x1080, linear in pixels; remote gRPC from 2.46 ms up to 24 ms;
//     shm a constant ~2 ms above native.
//   - MM (Fig. 4c): native 0.45 ms at 16^2 up to 3.571 s at 4096^2 (cubic
//     kernel, ~38.4 GFLOP/s = 256 MACs/cycle at 150 MHz for the 16x16
//     fully unrolled Spector design); gRPC max 3.675 s; shm max 3.588 s.
//   - AlexNet/PipeCNN: native ~92-94 ms per inference; remote ~125-133 ms
//     because the host launches many kernels per inference, each paying
//     control overhead.
package model

import "time"

// GB is one gigabyte in bytes, used by bandwidth conversions.
const GB = 1 << 30

// CostModel captures the transport and host-side costs of one node class.
// All bandwidths are effective (measured-style), not theoretical peaks.
type CostModel struct {
	// PCIeGBps is the effective host-to-board DMA bandwidth. The worker
	// nodes hold PCIe Gen3 x8 links (~6 GB/s effective); the master node
	// has a Gen2 x8 link (~3 GB/s effective).
	PCIeGBps float64
	// PCIeBaseLatency is the fixed cost of one DMA transaction setup.
	PCIeBaseLatency time.Duration
	// MemcpyGBps is the host memory copy bandwidth; the single staging
	// copy of the shared-memory path runs at this speed.
	MemcpyGBps float64
	// SerializeGBps is the effective protobuf-style serialization
	// bandwidth of the gRPC data path (encode + decode amortized).
	SerializeGBps float64
	// GRPCDataCopies is the number of extra full-buffer copies the gRPC
	// data path performs over the shm path (the paper counts 3: user ->
	// protobuf arena -> socket -> manager staging).
	GRPCDataCopies int
	// ControlRTT is the control-plane round-trip cost a flushed task pays
	// (request + async completion signalling). Both remote paths pay it.
	ControlRTT time.Duration
	// PerOpControl is the extra control cost of each additional operation
	// inside a task (argument marshalling, event bookkeeping).
	PerOpControl time.Duration
	// HostFactor scales host-side CPU work (copies, serialization, HTTP
	// handling). 1.0 for the i7-6700 workers; >1 for the older Xeon
	// W3530 master node.
	HostFactor float64
	// ReconfigureTime is the board reprogramming latency for a full
	// bitstream (Arria 10 via CvP takes on the order of seconds).
	ReconfigureTime time.Duration
	// DDRGBps is the effective on-board DDR4 copy bandwidth, paid by
	// device-to-device buffer copies (task chaining) and memoized-result
	// restores. Roughly 2x the PCIe link: the DE5a-Net's two DDR4-2133
	// banks sustain ~12 GB/s for a read+write stream.
	DDRGBps float64
}

// WorkerNode returns the cost model of the testbed worker nodes
// (i7-6700, PCIe Gen3 x8, DDR4).
func WorkerNode() *CostModel {
	return &CostModel{
		PCIeGBps:        6.0,
		PCIeBaseLatency: 10 * time.Microsecond,
		MemcpyGBps:      13.0,
		SerializeGBps:   3.7,
		GRPCDataCopies:  3,
		ControlRTT:      2 * time.Millisecond,
		PerOpControl:    150 * time.Microsecond,
		HostFactor:      1.0,
		ReconfigureTime: 2 * time.Second,
		DDRGBps:         12.0,
	}
}

// MasterNode returns the cost model of the testbed master node
// (Xeon W3530, PCIe Gen2 x8, DDR3). Its slower link and older memory
// subsystem are what make node A saturate first in the paper's high-load
// Sobel experiment.
func MasterNode() *CostModel {
	return &CostModel{
		PCIeGBps:        3.0,
		PCIeBaseLatency: 12 * time.Microsecond,
		MemcpyGBps:      8.0,
		SerializeGBps:   2.3,
		GRPCDataCopies:  3,
		ControlRTT:      2400 * time.Microsecond,
		PerOpControl:    220 * time.Microsecond,
		HostFactor:      1.45,
		ReconfigureTime: 2 * time.Second,
		DDRGBps:         12.0,
	}
}

// bw converts bytes at gbps gigabytes per second into a duration.
func bw(bytes int64, gbps float64) time.Duration {
	if bytes <= 0 || gbps <= 0 {
		return 0
	}
	sec := float64(bytes) / (gbps * GB)
	return time.Duration(sec * float64(time.Second))
}

// PCIeTransfer returns the DMA time to move n bytes between host and board.
func (m *CostModel) PCIeTransfer(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.PCIeBaseLatency + bw(n, m.PCIeGBps)
}

// HostCopy returns the time of one host-side memcpy of n bytes.
func (m *CostModel) HostCopy(n int64) time.Duration {
	return time.Duration(float64(bw(n, m.MemcpyGBps)) * m.HostFactor)
}

// Serialize returns the protobuf-style encode+decode time for n bytes.
func (m *CostModel) Serialize(n int64) time.Duration {
	return time.Duration(float64(bw(n, m.SerializeGBps)) * m.HostFactor)
}

// GRPCDataOverhead returns the data-plane overhead the gRPC path adds over
// the native path for n transferred bytes: the extra copies plus
// serialization. This is what turns the native RTT into the roughly 4x
// curve of Figure 4a.
func (m *CostModel) GRPCDataOverhead(n int64) time.Duration {
	copies := time.Duration(m.GRPCDataCopies) * m.HostCopy(n)
	return copies + m.Serialize(n)
}

// ShmDataOverhead returns the data-plane overhead of the shared-memory
// path: exactly one staging copy, kept for OpenCL compatibility (the paper
// keeps one copy so clEnqueueRead/WriteBuffer semantics hold).
func (m *CostModel) ShmDataOverhead(n int64) time.Duration {
	return m.HostCopy(n)
}

// DDRCopy returns the on-board time to move n bytes between two device
// buffers (the zero-copy chaining path: a read and a write stream through
// the board's DDR banks, never crossing PCIe). A zero DDRGBps falls back
// to 12 GB/s so hand-built cost models keep working.
func (m *CostModel) DDRCopy(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	gbps := m.DDRGBps
	if gbps <= 0 {
		gbps = 12.0
	}
	return m.PCIeBaseLatency + bw(n, gbps)
}

// TaskControlOverhead returns the control-plane cost of one flushed task
// carrying ops operations.
func (m *CostModel) TaskControlOverhead(ops int) time.Duration {
	if ops <= 0 {
		return 0
	}
	return m.ControlRTT + time.Duration(ops-1)*m.PerOpControl
}

// Transport identifies the data path between the Remote OpenCL Library and
// the Device Manager.
type Transport int

// Transports the Remote OpenCL Library can use.
const (
	// TransportNative means no manager at all: the baseline runtime that
	// owns the board via PCIe passthrough.
	TransportNative Transport = iota
	// TransportGRPC moves buffers through the RPC channel (3 extra copies
	// plus serialization).
	TransportGRPC
	// TransportShm moves buffers through a mmap'd shared-memory segment
	// (1 extra copy).
	TransportShm
)

// String names the transport as the paper's figures label them.
func (t Transport) String() string {
	switch t {
	case TransportNative:
		return "Native"
	case TransportGRPC:
		return "BlastFunction"
	case TransportShm:
		return "BlastFunction shm"
	}
	return "unknown"
}

// DataOverhead returns the extra per-transfer cost of the transport over
// native for n bytes of payload.
func (m *CostModel) DataOverhead(t Transport, n int64) time.Duration {
	switch t {
	case TransportGRPC:
		return m.GRPCDataOverhead(n)
	case TransportShm:
		return m.ShmDataOverhead(n)
	default:
		return 0
	}
}

// ControlOverhead returns the control-plane cost of one flushed task with
// ops operations for the transport (native pays none).
func (m *CostModel) ControlOverhead(t Transport, ops int) time.Duration {
	if t == TransportNative {
		return 0
	}
	return m.TaskControlOverhead(ops)
}
