// Package cluster is the reproduction's cloud orchestrator — the slice of
// Kubernetes the paper's Accelerators Registry integrates with.
//
// The Registry uses exactly four orchestrator capabilities, all provided
// here: watching function-instance creation and deletion; patching a
// notified instance (environment variables, shared-memory volumes, forced
// host allocation); binding instances to nodes; and replacing instances
// with create-before-delete ordering, which is what makes BlastFunction's
// migrations safe ("Kubernetes creates new instances before deleting the
// previous ones: in this way the Registry can patch and schedule them on a
// different node").
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Phase is an instance's lifecycle phase.
type Phase string

// Instance phases.
const (
	// Pending instances exist but are not bound to a node yet.
	Pending Phase = "Pending"
	// Running instances are bound and serving.
	Running Phase = "Running"
	// Terminating instances are being torn down (still visible).
	Terminating Phase = "Terminating"
)

// Node is a cluster member.
type Node struct {
	// Name identifies the node (e.g. "A", "B", "C").
	Name string
	// Labels carry scheduling hints (e.g. "fpga": "arria10").
	Labels map[string]string
}

// Instance is the function-instance (pod) object.
type Instance struct {
	// UID is the orchestrator-assigned unique identity.
	UID string
	// Name is the instance name, e.g. "sobel-1-7f9c".
	Name string
	// Function is the owning serverless function, e.g. "sobel-1".
	Function string
	// Node is the bound node name; empty while unscheduled.
	Node string
	// Env carries environment variables; the Registry injects the Device
	// Manager address and transport settings here.
	Env map[string]string
	// Volumes lists mounted volumes; the Registry adds the shared-memory
	// volume for co-located data transfers.
	Volumes []string
	// Phase is the lifecycle phase.
	Phase Phase
	// CreatedAt is the creation timestamp.
	CreatedAt time.Time
}

// clone returns a deep copy so watchers cannot mutate stored state.
func (in Instance) clone() Instance {
	out := in
	if in.Env != nil {
		out.Env = make(map[string]string, len(in.Env))
		for k, v := range in.Env {
			out.Env[k] = v
		}
	}
	out.Volumes = append([]string(nil), in.Volumes...)
	return out
}

// EventType discriminates watch events.
type EventType int

// Watch event types.
const (
	Added EventType = iota
	Modified
	Deleted
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case Added:
		return "ADDED"
	case Modified:
		return "MODIFIED"
	case Deleted:
		return "DELETED"
	}
	return "UNKNOWN"
}

// Event is one watch notification.
type Event struct {
	Type     EventType
	Instance Instance
}

// Patch describes a partial instance update, mirroring the strategic-merge
// patch the Registry applies when it intercepts a creation.
type Patch struct {
	// Env entries are merged into the instance environment.
	Env map[string]string
	// AddVolumes are appended (duplicates skipped).
	AddVolumes []string
	// Node, when non-nil, force-binds the instance to the node and moves
	// it to Running (the paper's "forces the host allocation").
	Node *string
}

// Cluster is the in-memory API server.
type Cluster struct {
	mu        sync.Mutex
	nodes     map[string]Node
	instances map[string]*Instance
	watchers  map[int]chan Event
	nextWatch int
	nextUID   int
	// Now is injectable for deterministic tests.
	Now func() time.Time
}

// New creates an empty cluster.
func New() *Cluster {
	return &Cluster{
		nodes:     make(map[string]Node),
		instances: make(map[string]*Instance),
		watchers:  make(map[int]chan Event),
		Now:       time.Now,
	}
}

// AddNode registers a node.
func (c *Cluster) AddNode(n Node) error {
	if n.Name == "" {
		return fmt.Errorf("cluster: node needs a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[n.Name]; ok {
		return fmt.Errorf("cluster: node %q already registered", n.Name)
	}
	c.nodes[n.Name] = n
	return nil
}

// Nodes lists registered nodes sorted by name.
func (c *Cluster) Nodes() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// notify broadcasts an event to every watcher. Called with c.mu held.
func (c *Cluster) notify(ev Event) {
	for _, ch := range c.watchers {
		ch <- ev
	}
}

// CreateInstance stores a new instance in Pending phase (or Running if the
// spec pre-binds a node) and notifies watchers.
func (c *Cluster) CreateInstance(spec Instance) (Instance, error) {
	if spec.Function == "" {
		return Instance{}, fmt.Errorf("cluster: instance needs a function name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if spec.Node != "" {
		if _, ok := c.nodes[spec.Node]; !ok {
			return Instance{}, fmt.Errorf("cluster: unknown node %q", spec.Node)
		}
	}
	c.nextUID++
	in := spec.clone()
	in.UID = fmt.Sprintf("uid-%d", c.nextUID)
	if in.Name == "" {
		in.Name = fmt.Sprintf("%s-%d", in.Function, c.nextUID)
	}
	in.Phase = Pending
	if in.Node != "" {
		in.Phase = Running
	}
	in.CreatedAt = c.Now()
	c.instances[in.UID] = &in
	c.notify(Event{Type: Added, Instance: in.clone()})
	return in.clone(), nil
}

// Get returns an instance by UID.
func (c *Cluster) Get(uid string) (Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.instances[uid]
	if !ok {
		return Instance{}, false
	}
	return in.clone(), true
}

// Instances lists instances sorted by UID; filter by function name unless
// empty.
func (c *Cluster) Instances(function string) []Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Instance, 0, len(c.instances))
	for _, in := range c.instances {
		if function == "" || in.Function == function {
			out = append(out, in.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out
}

// PatchInstance applies a partial update and notifies watchers.
func (c *Cluster) PatchInstance(uid string, p Patch) (Instance, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.instances[uid]
	if !ok {
		return Instance{}, fmt.Errorf("cluster: instance %q not found", uid)
	}
	if p.Node != nil {
		if _, ok := c.nodes[*p.Node]; !ok {
			return Instance{}, fmt.Errorf("cluster: unknown node %q", *p.Node)
		}
		in.Node = *p.Node
		in.Phase = Running
	}
	if len(p.Env) > 0 && in.Env == nil {
		in.Env = make(map[string]string, len(p.Env))
	}
	for k, v := range p.Env {
		in.Env[k] = v
	}
	for _, v := range p.AddVolumes {
		dup := false
		for _, have := range in.Volumes {
			if have == v {
				dup = true
				break
			}
		}
		if !dup {
			in.Volumes = append(in.Volumes, v)
		}
	}
	c.notify(Event{Type: Modified, Instance: in.clone()})
	return in.clone(), nil
}

// DeleteInstance removes an instance and notifies watchers.
func (c *Cluster) DeleteInstance(uid string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	in, ok := c.instances[uid]
	if !ok {
		return fmt.Errorf("cluster: instance %q not found", uid)
	}
	in.Phase = Terminating
	delete(c.instances, uid)
	c.notify(Event{Type: Deleted, Instance: in.clone()})
	return nil
}

// ReplaceInstance performs the create-before-delete migration primitive:
// it creates a fresh unbound clone of the instance (same function, env and
// volumes, no node) and only then deletes the original. The returned
// instance is Pending, ready for the Registry to patch onto another node.
func (c *Cluster) ReplaceInstance(uid string) (Instance, error) {
	c.mu.Lock()
	old, ok := c.instances[uid]
	if !ok {
		c.mu.Unlock()
		return Instance{}, fmt.Errorf("cluster: instance %q not found", uid)
	}
	spec := old.clone()
	c.mu.Unlock()

	spec.UID = ""
	spec.Name = ""
	spec.Node = ""
	created, err := c.CreateInstance(spec)
	if err != nil {
		return Instance{}, err
	}
	if err := c.DeleteInstance(uid); err != nil {
		return created, err
	}
	return created, nil
}

// Watch subscribes to instance events. The channel first receives
// synthetic Added events for every existing instance (informer-style
// initial sync), then live events. Call the returned cancel to
// unsubscribe; the channel closes afterwards. Watchers must drain the
// channel promptly: the API server blocks on slow watchers rather than
// dropping events the Registry depends on.
func (c *Cluster) Watch(buffer int) (<-chan Event, func()) {
	if buffer < 16 {
		buffer = 16
	}
	c.mu.Lock()
	// Size the buffer to hold the initial sync outright, so pushing it
	// under the lock cannot block.
	ch := make(chan Event, buffer+len(c.instances))
	id := c.nextWatch
	c.nextWatch++
	// Initial sync while holding the lock so no event is missed between
	// the snapshot and the subscription.
	uids := make([]string, 0, len(c.instances))
	for uid := range c.instances {
		uids = append(uids, uid)
	}
	sort.Strings(uids)
	for _, uid := range uids {
		ch <- Event{Type: Added, Instance: c.instances[uid].clone()}
	}
	c.watchers[id] = ch
	c.mu.Unlock()

	cancel := func() {
		c.mu.Lock()
		if w, ok := c.watchers[id]; ok {
			delete(c.watchers, id)
			close(w)
		}
		c.mu.Unlock()
	}
	return ch, cancel
}

// InstancesOnNode lists running instances bound to a node.
func (c *Cluster) InstancesOnNode(node string) []Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Instance
	for _, in := range c.instances {
		if in.Node == node {
			out = append(out, in.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out
}
