package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c := New()
	for _, n := range []string{"A", "B", "C"} {
		if err := c.AddNode(Node{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func recvEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
		return Event{}
	}
}

func TestNodeRegistration(t *testing.T) {
	c := newTestCluster(t)
	nodes := c.Nodes()
	if len(nodes) != 3 || nodes[0].Name != "A" || nodes[2].Name != "C" {
		t.Fatalf("nodes = %v", nodes)
	}
	if err := c.AddNode(Node{Name: "A"}); err == nil {
		t.Fatal("duplicate node must fail")
	}
	if err := c.AddNode(Node{}); err == nil {
		t.Fatal("anonymous node must fail")
	}
}

func TestCreateInstanceLifecycle(t *testing.T) {
	c := newTestCluster(t)
	in, err := c.CreateInstance(Instance{Function: "sobel-1"})
	if err != nil {
		t.Fatal(err)
	}
	if in.UID == "" || in.Name == "" {
		t.Fatalf("instance lacks identity: %+v", in)
	}
	if in.Phase != Pending {
		t.Fatalf("phase = %v, want Pending", in.Phase)
	}
	got, ok := c.Get(in.UID)
	if !ok || got.Function != "sobel-1" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if err := c.DeleteInstance(in.UID); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(in.UID); ok {
		t.Fatal("deleted instance still visible")
	}
	if err := c.DeleteInstance(in.UID); err == nil {
		t.Fatal("double delete must fail")
	}
}

func TestCreateValidation(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.CreateInstance(Instance{}); err == nil {
		t.Fatal("instance without function must fail")
	}
	if _, err := c.CreateInstance(Instance{Function: "f", Node: "nope"}); err == nil {
		t.Fatal("unknown node must fail")
	}
	in, err := c.CreateInstance(Instance{Function: "f", Node: "B"})
	if err != nil {
		t.Fatal(err)
	}
	if in.Phase != Running {
		t.Fatalf("pre-bound instance phase = %v", in.Phase)
	}
}

func TestPatchInstance(t *testing.T) {
	c := newTestCluster(t)
	in, _ := c.CreateInstance(Instance{Function: "mm-1"})
	node := "C"
	patched, err := c.PatchInstance(in.UID, Patch{
		Env:        map[string]string{"BF_MANAGER": "10.0.0.3:5000"},
		AddVolumes: []string{"/dev/shm", "/dev/shm"},
		Node:       &node,
	})
	if err != nil {
		t.Fatal(err)
	}
	if patched.Node != "C" || patched.Phase != Running {
		t.Fatalf("patched = %+v", patched)
	}
	if patched.Env["BF_MANAGER"] != "10.0.0.3:5000" {
		t.Fatalf("env = %v", patched.Env)
	}
	if len(patched.Volumes) != 1 {
		t.Fatalf("volumes = %v (duplicates must collapse)", patched.Volumes)
	}
	if _, err := c.PatchInstance("uid-404", Patch{}); err == nil {
		t.Fatal("patching a missing instance must fail")
	}
	bad := "nope"
	if _, err := c.PatchInstance(in.UID, Patch{Node: &bad}); err == nil {
		t.Fatal("patching onto an unknown node must fail")
	}
}

func TestWatchReceivesLifecycle(t *testing.T) {
	c := newTestCluster(t)
	ch, cancel := c.Watch(16)
	defer cancel()

	in, _ := c.CreateInstance(Instance{Function: "sobel-1"})
	ev := recvEvent(t, ch)
	if ev.Type != Added || ev.Instance.UID != in.UID {
		t.Fatalf("event = %+v", ev)
	}
	node := "A"
	c.PatchInstance(in.UID, Patch{Node: &node})
	ev = recvEvent(t, ch)
	if ev.Type != Modified || ev.Instance.Node != "A" {
		t.Fatalf("event = %+v", ev)
	}
	c.DeleteInstance(in.UID)
	ev = recvEvent(t, ch)
	if ev.Type != Deleted {
		t.Fatalf("event = %+v", ev)
	}
	cancel()
	if _, ok := <-ch; ok {
		// Drain until closed; at most the buffered events remain.
		for range ch {
		}
	}
}

func TestWatchInitialSync(t *testing.T) {
	c := newTestCluster(t)
	for i := 0; i < 40; i++ { // more than the minimum buffer
		if _, err := c.CreateInstance(Instance{Function: "f"}); err != nil {
			t.Fatal(err)
		}
	}
	ch, cancel := c.Watch(4)
	defer cancel()
	seen := 0
	timeout := time.After(2 * time.Second)
	for seen < 40 {
		select {
		case ev := <-ch:
			if ev.Type != Added {
				t.Fatalf("initial sync event = %v", ev.Type)
			}
			seen++
		case <-timeout:
			t.Fatalf("initial sync delivered %d/40", seen)
		}
	}
}

func TestWatchersIsolatedFromMutation(t *testing.T) {
	c := newTestCluster(t)
	in, _ := c.CreateInstance(Instance{Function: "f", Env: map[string]string{"k": "v"}})
	ch, cancel := c.Watch(16)
	defer cancel()
	ev := recvEvent(t, ch)
	ev.Instance.Env["k"] = "mutated"
	got, _ := c.Get(in.UID)
	if got.Env["k"] != "v" {
		t.Fatal("watcher mutation leaked into the store")
	}
}

func TestReplaceInstanceCreateBeforeDelete(t *testing.T) {
	c := newTestCluster(t)
	node := "B"
	orig, _ := c.CreateInstance(Instance{
		Function: "alexnet-1",
		Env:      map[string]string{"BF_MANAGER": "old"},
		Volumes:  []string{"/dev/shm"},
	})
	c.PatchInstance(orig.UID, Patch{Node: &node})

	ch, cancel := c.Watch(16)
	defer cancel()
	recvEvent(t, ch) // initial sync of orig

	repl, err := c.ReplaceInstance(orig.UID)
	if err != nil {
		t.Fatal(err)
	}
	// Order matters: Added (new) strictly before Deleted (old).
	ev1 := recvEvent(t, ch)
	ev2 := recvEvent(t, ch)
	if ev1.Type != Added || ev1.Instance.UID != repl.UID {
		t.Fatalf("first event = %+v, want Added(new)", ev1)
	}
	if ev2.Type != Deleted || ev2.Instance.UID != orig.UID {
		t.Fatalf("second event = %+v, want Deleted(old)", ev2)
	}
	if repl.Node != "" || repl.Phase != Pending {
		t.Fatalf("replacement must be unbound: %+v", repl)
	}
	if repl.Env["BF_MANAGER"] != "old" || len(repl.Volumes) != 1 {
		t.Fatalf("replacement lost spec: %+v", repl)
	}
	if repl.Function != "alexnet-1" {
		t.Fatalf("function = %q", repl.Function)
	}
}

func TestInstancesQueries(t *testing.T) {
	c := newTestCluster(t)
	nodeA, nodeB := "A", "B"
	i1, _ := c.CreateInstance(Instance{Function: "sobel-1"})
	i2, _ := c.CreateInstance(Instance{Function: "sobel-1"})
	i3, _ := c.CreateInstance(Instance{Function: "mm-1"})
	c.PatchInstance(i1.UID, Patch{Node: &nodeA})
	c.PatchInstance(i2.UID, Patch{Node: &nodeB})
	c.PatchInstance(i3.UID, Patch{Node: &nodeA})

	if got := c.Instances("sobel-1"); len(got) != 2 {
		t.Fatalf("sobel-1 instances = %d", len(got))
	}
	if got := c.Instances(""); len(got) != 3 {
		t.Fatalf("all instances = %d", len(got))
	}
	onA := c.InstancesOnNode("A")
	if len(onA) != 2 {
		t.Fatalf("instances on A = %d", len(onA))
	}
}

func TestWatchStreamConsistencyProperty(t *testing.T) {
	// Property: for any random sequence of create/patch/delete operations,
	// replaying the watch event stream reconstructs exactly the final
	// instance set of the API server.
	check := func(ops []uint16) bool {
		c := New()
		c.AddNode(Node{Name: "N"})
		ch, cancel := c.Watch(len(ops) + 16)
		defer cancel()
		var uids []string
		node := "N"
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // create (more likely)
				in, err := c.CreateInstance(Instance{Function: "f"})
				if err != nil {
					return false
				}
				uids = append(uids, in.UID)
			case 2: // patch a random live instance
				if len(uids) > 0 {
					c.PatchInstance(uids[int(op)%len(uids)], Patch{Node: &node})
				}
			case 3: // delete a random instance (may already be gone)
				if len(uids) > 0 {
					i := int(op) % len(uids)
					c.DeleteInstance(uids[i])
					uids = append(uids[:i], uids[i+1:]...)
				}
			}
		}
		cancel()
		// Replay the stream.
		replayed := map[string]Instance{}
		for ev := range ch {
			switch ev.Type {
			case Added, Modified:
				replayed[ev.Instance.UID] = ev.Instance
			case Deleted:
				delete(replayed, ev.Instance.UID)
			}
		}
		want := c.Instances("")
		if len(want) != len(replayed) {
			return false
		}
		for _, in := range want {
			got, ok := replayed[in.UID]
			if !ok || got.Node != in.Node || got.Phase != in.Phase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
