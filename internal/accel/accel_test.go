package accel

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"blastfunction/internal/fpga"
	"blastfunction/internal/model"
	"blastfunction/internal/ocl"
)

// fakeMem is an in-memory MemAccess for kernel unit tests.
type fakeMem map[uint64][]byte

func (m fakeMem) Bytes(id uint64) ([]byte, error) {
	b, ok := m[id]
	if !ok {
		return nil, ocl.Errf(ocl.ErrInvalidMemObject, "buffer %d", id)
	}
	return b, nil
}

func i32(t *testing.T, v int) ocl.Arg {
	t.Helper()
	a, err := ocl.PackArg(int32(v))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// --- Sobel ---

func sobelRef(img []uint16, w, h, x, y int) uint16 {
	if x == 0 || y == 0 || x == w-1 || y == h-1 {
		return 0
	}
	p := func(dx, dy int) int32 { return int32(img[(y+dy)*w+x+dx]) }
	gx := -p(-1, -1) + p(1, -1) - 2*p(-1, 0) + 2*p(1, 0) - p(-1, 1) + p(1, 1)
	gy := -p(-1, -1) - 2*p(0, -1) - p(1, -1) + p(-1, 1) + 2*p(0, 1) + p(1, 1)
	mag := math.Sqrt(float64(gx)*float64(gx) + float64(gy)*float64(gy))
	if mag > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(mag)
}

func TestSobelCorrectness(t *testing.T) {
	const w, h = 17, 11
	rng := rand.New(rand.NewSource(7))
	img := make([]uint16, w*h)
	for i := range img {
		img[i] = uint16(rng.Intn(1 << 16))
	}
	in := make([]byte, w*h*2)
	for i, v := range img {
		binary.LittleEndian.PutUint16(in[i*2:], v)
	}
	mem := fakeMem{1: in, 2: make([]byte, w*h*2)}
	args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), i32(t, w), i32(t, h)}
	if err := sobelRun(mem, args, nil); err != nil {
		t.Fatalf("sobelRun: %v", err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			got := binary.LittleEndian.Uint16(mem[2][(y*w+x)*2:])
			want := sobelRef(img, w, h, x, y)
			if got != want {
				t.Fatalf("pixel (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestSobelEdgeDetectsStep(t *testing.T) {
	// A vertical step edge must produce a strong response along the edge
	// and zero in flat regions.
	const w, h = 8, 8
	in := make([]byte, w*h*2)
	for y := 0; y < h; y++ {
		for x := w / 2; x < w; x++ {
			binary.LittleEndian.PutUint16(in[(y*w+x)*2:], 1000)
		}
	}
	mem := fakeMem{1: in, 2: make([]byte, w*h*2)}
	args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), i32(t, w), i32(t, h)}
	if err := sobelRun(mem, args, nil); err != nil {
		t.Fatal(err)
	}
	edge := binary.LittleEndian.Uint16(mem[2][(3*w+w/2)*2:])
	flat := binary.LittleEndian.Uint16(mem[2][(3*w+1)*2:])
	if edge == 0 {
		t.Fatal("no response on the step edge")
	}
	if flat != 0 {
		t.Fatalf("flat region response = %d", flat)
	}
}

func TestSobelValidation(t *testing.T) {
	mem := fakeMem{1: make([]byte, 8), 2: make([]byte, 8)}
	args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), i32(t, 0), i32(t, 2)}
	if err := sobelRun(mem, args, nil); ocl.StatusOf(err) != ocl.ErrInvalidKernelArgs {
		t.Fatalf("zero width err = %v", err)
	}
	args = []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), i32(t, 100), i32(t, 100)}
	if err := sobelRun(mem, args, nil); ocl.StatusOf(err) != ocl.ErrInvalidBufferSize {
		t.Fatalf("small buffer err = %v", err)
	}
}

func TestSobelModelCalibration(t *testing.T) {
	// Native RTT = write + kernel + read must land near the paper's
	// measurements: 0.27 ms at 10x10, 14.53 ms at 1920x1080.
	m := model.WorkerNode()
	rtt := func(w, h int) time.Duration {
		n := SobelImageBytes(w, h)
		return m.PCIeTransfer(n) + SobelModel(int64(w)*int64(h)) + m.PCIeTransfer(n)
	}
	small := rtt(10, 10)
	if small < 200*time.Microsecond || small > 350*time.Microsecond {
		t.Fatalf("10x10 native RTT = %v, want ~270us", small)
	}
	large := rtt(1920, 1080)
	if large < 13500*time.Microsecond || large > 15500*time.Microsecond {
		t.Fatalf("1080p native RTT = %v, want ~14.53ms", large)
	}
}

// --- MM ---

func mmRef(a, b []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

func TestMMCorrectness(t *testing.T) {
	const n = 13
	rng := rand.New(rand.NewSource(11))
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	abuf := make([]byte, n*n*4)
	bbuf := make([]byte, n*n*4)
	PutFloat32Slice(abuf, a)
	PutFloat32Slice(bbuf, b)
	mem := fakeMem{1: abuf, 2: bbuf, 3: make([]byte, n*n*4)}
	args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), ocl.BufferArg(3), i32(t, n)}
	if err := mmRun(mem, args, nil); err != nil {
		t.Fatalf("mmRun: %v", err)
	}
	got := Float32Slice(mem[3])
	want := mmRef(a, b, n)
	for i := range want {
		if diff := math.Abs(float64(got[i] - want[i])); diff > 1e-4 {
			t.Fatalf("C[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMMIdentityProperty(t *testing.T) {
	// A x I == A for random matrices.
	if err := quick.Check(func(seed int64) bool {
		const n = 8
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, n*n)
		for i := range a {
			a[i] = rng.Float32()
		}
		id := make([]float32, n*n)
		for i := 0; i < n; i++ {
			id[i*n+i] = 1
		}
		abuf := make([]byte, n*n*4)
		ibuf := make([]byte, n*n*4)
		PutFloat32Slice(abuf, a)
		PutFloat32Slice(ibuf, id)
		mem := fakeMem{1: abuf, 2: ibuf, 3: make([]byte, n*n*4)}
		n32, _ := ocl.PackArg(int32(n))
		args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), ocl.BufferArg(3), n32}
		if err := mmRun(mem, args, nil); err != nil {
			return false
		}
		got := Float32Slice(mem[3])
		for i := range a {
			if got[i] != a[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMMValidation(t *testing.T) {
	mem := fakeMem{1: make([]byte, 16), 2: make([]byte, 16), 3: make([]byte, 16)}
	args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), ocl.BufferArg(3), i32(t, -1)}
	if err := mmRun(mem, args, nil); ocl.StatusOf(err) != ocl.ErrInvalidKernelArgs {
		t.Fatalf("negative n err = %v", err)
	}
	args[3] = i32(t, 64)
	if err := mmRun(mem, args, nil); ocl.StatusOf(err) != ocl.ErrInvalidBufferSize {
		t.Fatalf("small buffer err = %v", err)
	}
}

func TestMMModelCalibration(t *testing.T) {
	// Native RTT: 0.45 ms at n=16, 3.571 s at n=4096 (paper Fig. 4c).
	m := model.WorkerNode()
	rtt := func(n int) time.Duration {
		mb := MMMatrixBytes(n)
		return m.PCIeTransfer(mb) + m.PCIeTransfer(mb) + MMModel(int64(n)) + m.PCIeTransfer(mb)
	}
	small := rtt(16)
	if small < 400*time.Microsecond || small > 500*time.Microsecond {
		t.Fatalf("16x16 native RTT = %v, want ~450us", small)
	}
	large := rtt(4096)
	if large < 3450*time.Millisecond || large > 3700*time.Millisecond {
		t.Fatalf("4096 native RTT = %v, want ~3.571s", large)
	}
}

// --- PipeCNN ---

func TestConvKnownResult(t *testing.T) {
	// 1 input channel 3x3 of ones, one 3x3 kernel of ones, pad 1:
	// center output = 9, corner = 4, edge middle = 6.
	in := make([]float32, 9)
	for i := range in {
		in[i] = 1
	}
	w := make([]float32, 9)
	for i := range w {
		w[i] = 1
	}
	inB := make([]byte, 36)
	wB := make([]byte, 36)
	PutFloat32Slice(inB, in)
	PutFloat32Slice(wB, w)
	mem := fakeMem{1: inB, 2: wB, 3: make([]byte, 4), 4: make([]byte, 36)}
	args := []ocl.Arg{
		ocl.BufferArg(1), ocl.BufferArg(2), ocl.BufferArg(3), ocl.BufferArg(4),
		i32(t, 1), i32(t, 3), i32(t, 3), // inC, inH, inW
		i32(t, 1), i32(t, 3), i32(t, 1), i32(t, 1), // outC, k, stride, pad
		i32(t, 1), i32(t, 0), // groups, relu
	}
	if err := convRun(mem, args, nil); err != nil {
		t.Fatalf("convRun: %v", err)
	}
	out := Float32Slice(mem[4])
	want := []float32{4, 6, 4, 6, 9, 6, 4, 6, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %g, want %g (out=%v)", i, out[i], want[i], out)
		}
	}
}

func TestConvGroupsAndRelu(t *testing.T) {
	// Two input channels, two output channels, groups=2, 1x1 kernels:
	// each output channel sees only its own group. Negative weights with
	// relu=1 must clamp to zero.
	in := []float32{2, 2, 2, 2, 3, 3, 3, 3} // ch0=2s, ch1=3s (2x2 maps)
	w := []float32{5, -5}                   // oc0: w=5 on ch0; oc1: w=-5 on ch1
	inB := make([]byte, len(in)*4)
	wB := make([]byte, len(w)*4)
	PutFloat32Slice(inB, in)
	PutFloat32Slice(wB, w)
	mem := fakeMem{1: inB, 2: wB, 3: make([]byte, 8), 4: make([]byte, 32)}
	args := []ocl.Arg{
		ocl.BufferArg(1), ocl.BufferArg(2), ocl.BufferArg(3), ocl.BufferArg(4),
		i32(t, 2), i32(t, 2), i32(t, 2),
		i32(t, 2), i32(t, 1), i32(t, 1), i32(t, 0),
		i32(t, 2), i32(t, 1),
	}
	if err := convRun(mem, args, nil); err != nil {
		t.Fatalf("convRun: %v", err)
	}
	out := Float32Slice(mem[4])
	if out[0] != 10 { // 2*5
		t.Fatalf("group 0 out = %g, want 10", out[0])
	}
	if out[4] != 0 { // 3*-5 clamped by relu
		t.Fatalf("group 1 out = %g, want 0 (relu)", out[4])
	}
}

func TestPoolKnownResult(t *testing.T) {
	in := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	inB := make([]byte, 64)
	PutFloat32Slice(inB, in)
	mem := fakeMem{1: inB, 2: make([]byte, 16)}
	args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2),
		i32(t, 1), i32(t, 4), i32(t, 4), i32(t, 2), i32(t, 2)}
	if err := poolRun(mem, args, nil); err != nil {
		t.Fatalf("poolRun: %v", err)
	}
	out := Float32Slice(mem[2])
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pool out = %v, want %v", out, want)
		}
	}
}

func TestFCKnownResult(t *testing.T) {
	in := []float32{1, 2, 3}
	w := []float32{1, 0, 0, 0, 1, 1, -1, -1, -1} // rows per output
	bias := []float32{10, 0, 0}
	inB := make([]byte, 12)
	wB := make([]byte, 36)
	bB := make([]byte, 12)
	PutFloat32Slice(inB, in)
	PutFloat32Slice(wB, w)
	PutFloat32Slice(bB, bias)
	mem := fakeMem{1: inB, 2: wB, 3: bB, 4: make([]byte, 12)}
	args := []ocl.Arg{ocl.BufferArg(1), ocl.BufferArg(2), ocl.BufferArg(3), ocl.BufferArg(4),
		i32(t, 3), i32(t, 3), i32(t, 1)}
	if err := fcRun(mem, args, nil); err != nil {
		t.Fatalf("fcRun: %v", err)
	}
	out := Float32Slice(mem[4])
	want := []float32{11, 5, 0} // last clamps at relu
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("fc out = %v, want %v", out, want)
		}
	}
}

func TestAlexNetSpecDimensions(t *testing.T) {
	spec := AlexNet()
	// Layer outputs must chain: each layer's input dims equal the
	// previous layer's output dims.
	prevC, prevH, prevW := 3, 227, 227
	for _, l := range spec.Layers {
		switch l.Kind {
		case LayerConv, LayerPool:
			if l.InC != prevC || l.InH != prevH || l.InW != prevW {
				t.Fatalf("layer %s input %dx%dx%d, expected %dx%dx%d",
					l.Name, l.InC, l.InH, l.InW, prevC, prevH, prevW)
			}
		case LayerFC:
			if l.InN != prevC*prevH*prevW {
				t.Fatalf("layer %s InN=%d, expected %d", l.Name, l.InN, prevC*prevH*prevW)
			}
		}
		prevC, prevH, prevW = l.OutDims()
	}
	if prevC != 1000 || prevH != 1 || prevW != 1 {
		t.Fatalf("final output %dx%dx%d, want 1000x1x1", prevC, prevH, prevW)
	}
}

func TestAlexNetBoardTimeCalibration(t *testing.T) {
	// One AlexNet inference must occupy the board for ~90 ms so that the
	// native end-to-end latency lands at the paper's 91.7-94.3 ms.
	bt := AlexNet().BoardTime()
	if bt < 85*time.Millisecond || bt > 95*time.Millisecond {
		t.Fatalf("AlexNet board time = %v, want ~90ms", bt)
	}
}

func TestAlexNetMACCount(t *testing.T) {
	var convMACs, fcMACs int64
	for _, l := range AlexNet().Layers {
		switch l.Kind {
		case LayerConv:
			convMACs += l.MACs()
		case LayerFC:
			fcMACs += l.MACs()
		}
	}
	// Grouped AlexNet: ~666M conv MACs, ~58.6M FC MACs.
	if convMACs < 600e6 || convMACs > 700e6 {
		t.Fatalf("conv MACs = %d, want ~666M", convMACs)
	}
	if fcMACs < 55e6 || fcMACs > 62e6 {
		t.Fatalf("fc MACs = %d, want ~58.6M", fcMACs)
	}
}

func TestTinyCNNEndToEndOnBoard(t *testing.T) {
	// Run the whole TinyCNN on a simulated board through the raw kernels,
	// checking the final output is finite and the layer chain is
	// dimensionally consistent.
	cat := Catalog()
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), cat)
	if _, err := board.Configure(PipeCNNBitstream().Binary()); err != nil {
		t.Fatal(err)
	}
	spec := TinyCNN()
	rng := rand.New(rand.NewSource(3))

	alloc := func(n int64) uint64 {
		id, err := board.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	writeRand := func(id uint64, n int64) {
		buf := make([]byte, n)
		vals := make([]float32, n/4)
		for i := range vals {
			vals[i] = rng.Float32()*0.2 - 0.1
		}
		PutFloat32Slice(buf, vals)
		if _, err := board.Write(id, 0, buf); err != nil {
			t.Fatal(err)
		}
	}

	cur := alloc(spec.InputBytes())
	writeRand(cur, spec.InputBytes())
	for _, l := range spec.Layers {
		oc, oh, ow := l.OutDims()
		out := alloc(int64(oc*oh*ow) * 4)
		switch l.Kind {
		case LayerConv:
			w := alloc(l.WeightBytes())
			b := alloc(l.BiasBytes())
			writeRand(w, l.WeightBytes())
			writeRand(b, l.BiasBytes())
			relu := 0
			if l.Relu {
				relu = 1
			}
			args := []ocl.Arg{ocl.BufferArg(cur), ocl.BufferArg(w), ocl.BufferArg(b), ocl.BufferArg(out),
				i32(t, l.InC), i32(t, l.InH), i32(t, l.InW),
				i32(t, l.OutC), i32(t, l.K), i32(t, l.Stride), i32(t, l.Pad),
				i32(t, l.Groups), i32(t, relu)}
			if _, err := board.Run("coreConv", args, nil); err != nil {
				t.Fatalf("layer %s: %v", l.Name, err)
			}
		case LayerPool:
			args := []ocl.Arg{ocl.BufferArg(cur), ocl.BufferArg(out),
				i32(t, l.InC), i32(t, l.InH), i32(t, l.InW), i32(t, l.Pool), i32(t, l.PoolStride)}
			if _, err := board.Run("maxPool", args, nil); err != nil {
				t.Fatalf("layer %s: %v", l.Name, err)
			}
		case LayerFC:
			w := alloc(l.WeightBytes())
			b := alloc(l.BiasBytes())
			writeRand(w, l.WeightBytes())
			writeRand(b, l.BiasBytes())
			relu := 0
			if l.Relu {
				relu = 1
			}
			args := []ocl.Arg{ocl.BufferArg(cur), ocl.BufferArg(w), ocl.BufferArg(b), ocl.BufferArg(out),
				i32(t, l.InN), i32(t, l.OutN), i32(t, relu)}
			if _, err := board.Run("fc", args, nil); err != nil {
				t.Fatalf("layer %s: %v", l.Name, err)
			}
		}
		cur = out
	}
	final := make([]byte, spec.OutputBytes())
	if _, err := board.Read(cur, 0, final); err != nil {
		t.Fatal(err)
	}
	for i, v := range Float32Slice(final) {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("output[%d] = %g", i, v)
		}
	}
}

func TestLoopbackKernel(t *testing.T) {
	cat := Catalog()
	board := fpga.NewBoard(fpga.DE5aNet(model.WorkerNode()), cat)
	if _, err := board.Configure(LoopbackBitstream().Binary()); err != nil {
		t.Fatal(err)
	}
	in, _ := board.Alloc(64)
	out, _ := board.Alloc(64)
	payload := []byte("loopback payload for fig4a!!")
	if _, err := board.Write(in, 0, payload); err != nil {
		t.Fatal(err)
	}
	args := []ocl.Arg{ocl.BufferArg(in), ocl.BufferArg(out), i32(t, len(payload))}
	if _, err := board.Run("copy", args, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	if _, err := board.Read(out, 0, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(payload) {
		t.Fatalf("loopback = %q", dst)
	}
}

func TestCatalogContents(t *testing.T) {
	cat := Catalog()
	for _, id := range []string{SobelBitstreamID, MMBitstreamID, PipeCNNBitstreamID, LoopbackBitstreamID} {
		if _, err := cat.Lookup(id); err != nil {
			t.Errorf("catalog missing %q: %v", id, err)
		}
	}
}

func TestModelsMonotonic(t *testing.T) {
	if SobelModel(100) >= SobelModel(10000) {
		t.Error("SobelModel must grow with pixels")
	}
	if MMModel(16) >= MMModel(64) {
		t.Error("MMModel must grow with n")
	}
	if ConvModel(1000) >= ConvModel(1000000) {
		t.Error("ConvModel must grow with MACs")
	}
	if FCModel(1000) >= FCModel(100000) {
		t.Error("FCModel must grow with MACs")
	}
	if PoolModel(100) >= PoolModel(100000) {
		t.Error("PoolModel must grow with elements")
	}
}

func TestTaskFlushesAndLaunches(t *testing.T) {
	spec := AlexNet()
	// 5 conv layers flush twice, 3 pools + 3 FCs flush once: 16 flushes.
	if got := spec.TaskFlushes(); got != 16 {
		t.Fatalf("TaskFlushes = %d, want 16", got)
	}
	if got := spec.KernelLaunches(); got != 33 {
		t.Fatalf("KernelLaunches = %d, want 33", got)
	}
}
