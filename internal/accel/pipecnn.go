package accel

import (
	"time"

	"blastfunction/internal/fpga"
	"blastfunction/internal/ocl"
)

// PipeCNN latency model. PipeCNN is a pipelined OpenCL CNN engine whose
// host code launches data-mover and compute kernels per layer over several
// command queues. Per-layer times are calibrated so an AlexNet inference
// occupies the board for ~90 ms, matching the paper's native latency
// (91.7-94.3 ms including transfers and launch overhead).
const (
	convLaunchBase = 50 * time.Microsecond
	convPerMACNs   = 0.098 // ~10.2 GMAC/s sustained conv throughput
	fcPerMACNs     = 0.410 // fully-connected layers are bandwidth-bound
	poolLaunchBase = 30 * time.Microsecond
	poolPerElemNs  = 2.0
	moverLaunchFee = 20 * time.Microsecond
)

// PipeCNNBitstreamID identifies the PipeCNN AlexNet design.
const PipeCNNBitstreamID = "pipecnn-alexnet"

// Kernel argument layouts (indices) for the PipeCNN kernels.
//
//	coreConv: in, weights, bias, out, inC, inH, inW, outC, k, stride, pad, groups, relu
//	maxPool:  in, out, c, h, w, pool, stride
//	fc:       in, weights, bias, out, inN, outN, relu
//	memRead:  buf        (streams DDR into the on-chip channels)
//	memWrite: buf        (streams channel output back to DDR)
const (
	convArgCount = 13
	poolArgCount = 7
	fcArgCount   = 7
)

// ConvMACs returns the multiply-accumulate count of a convolution layer.
func ConvMACs(inC, outC, outH, outW, k, groups int) int64 {
	if groups < 1 {
		groups = 1
	}
	return int64(outC) * int64(outH) * int64(outW) * int64(inC/groups) * int64(k) * int64(k)
}

// ConvModel returns the modelled execution time of a convolution layer.
func ConvModel(macs int64) time.Duration {
	return convLaunchBase + time.Duration(float64(macs)*convPerMACNs)*time.Nanosecond
}

// FCModel returns the modelled execution time of a fully-connected layer.
func FCModel(macs int64) time.Duration {
	return convLaunchBase + time.Duration(float64(macs)*fcPerMACNs)*time.Nanosecond
}

// PoolModel returns the modelled execution time of a pooling layer over
// outElems output elements.
func PoolModel(outElems int64) time.Duration {
	return poolLaunchBase + time.Duration(float64(outElems)*poolPerElemNs)*time.Nanosecond
}

func convOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

func convModelArgs(args []ocl.Arg, _ []int) time.Duration {
	inC := int(args[4].IntValue())
	inH := int(args[5].IntValue())
	inW := int(args[6].IntValue())
	outC := int(args[7].IntValue())
	k := int(args[8].IntValue())
	stride := int(args[9].IntValue())
	pad := int(args[10].IntValue())
	groups := int(args[11].IntValue())
	outH := convOut(inH, k, stride, pad)
	outW := convOut(inW, k, stride, pad)
	return ConvModel(ConvMACs(inC, outC, outH, outW, k, groups))
}

func poolModelArgs(args []ocl.Arg, _ []int) time.Duration {
	c := args[2].IntValue()
	h := int(args[3].IntValue())
	w := int(args[4].IntValue())
	pool := int(args[5].IntValue())
	stride := int(args[6].IntValue())
	oh := (h-pool)/stride + 1
	ow := (w-pool)/stride + 1
	return PoolModel(c * int64(oh) * int64(ow))
}

func fcModelArgs(args []ocl.Arg, _ []int) time.Duration {
	return FCModel(args[4].IntValue() * args[5].IntValue())
}

func moverModel(_ []ocl.Arg, _ []int) time.Duration { return moverLaunchFee }

// convRun computes a grouped 2D convolution with optional ReLU over
// float32 CHW tensors.
func convRun(mem fpga.MemAccess, args []ocl.Arg, _ []int) error {
	in, err := mem.Bytes(args[0].BufferID)
	if err != nil {
		return err
	}
	weights, err := mem.Bytes(args[1].BufferID)
	if err != nil {
		return err
	}
	bias, err := mem.Bytes(args[2].BufferID)
	if err != nil {
		return err
	}
	out, err := mem.Bytes(args[3].BufferID)
	if err != nil {
		return err
	}
	inC := int(args[4].IntValue())
	inH := int(args[5].IntValue())
	inW := int(args[6].IntValue())
	outC := int(args[7].IntValue())
	k := int(args[8].IntValue())
	stride := int(args[9].IntValue())
	pad := int(args[10].IntValue())
	groups := int(args[11].IntValue())
	relu := args[12].IntValue() != 0
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || groups <= 0 ||
		inC%groups != 0 || outC%groups != 0 {
		return ocl.Errf(ocl.ErrInvalidKernelArgs, "conv: bad shape inC=%d outC=%d k=%d stride=%d groups=%d",
			inC, outC, k, stride, groups)
	}
	outH := convOut(inH, k, stride, pad)
	outW := convOut(inW, k, stride, pad)
	if outH <= 0 || outW <= 0 {
		return ocl.Errf(ocl.ErrInvalidKernelArgs, "conv: empty output %dx%d", outH, outW)
	}
	gIn := inC / groups
	gOut := outC / groups
	needIn := inC * inH * inW * 4
	needW := outC * gIn * k * k * 4
	needB := outC * 4
	needOut := outC * outH * outW * 4
	if len(in) < needIn || len(weights) < needW || len(bias) < needB || len(out) < needOut {
		return ocl.Errf(ocl.ErrInvalidBufferSize,
			"conv: buffers too small (in %d/%d, w %d/%d, b %d/%d, out %d/%d)",
			len(in), needIn, len(weights), needW, len(bias), needB, len(out), needOut)
	}
	inF := Float32Slice(in[:needIn])
	wF := Float32Slice(weights[:needW])
	bF := Float32Slice(bias[:needB])
	outF := make([]float32, outC*outH*outW)
	for oc := 0; oc < outC; oc++ {
		g := oc / gOut
		icBase := g * gIn
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				acc := bF[oc]
				for ic := 0; ic < gIn; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= inW {
								continue
							}
							acc += inF[((icBase+ic)*inH+iy)*inW+ix] *
								wF[((oc*gIn+ic)*k+ky)*k+kx]
						}
					}
				}
				if relu && acc < 0 {
					acc = 0
				}
				outF[(oc*outH+oy)*outW+ox] = acc
			}
		}
	}
	PutFloat32Slice(out, outF)
	return nil
}

// poolRun computes max pooling over float32 CHW tensors.
func poolRun(mem fpga.MemAccess, args []ocl.Arg, _ []int) error {
	in, err := mem.Bytes(args[0].BufferID)
	if err != nil {
		return err
	}
	out, err := mem.Bytes(args[1].BufferID)
	if err != nil {
		return err
	}
	c := int(args[2].IntValue())
	h := int(args[3].IntValue())
	w := int(args[4].IntValue())
	pool := int(args[5].IntValue())
	stride := int(args[6].IntValue())
	if c <= 0 || pool <= 0 || stride <= 0 || h < pool || w < pool {
		return ocl.Errf(ocl.ErrInvalidKernelArgs, "pool: bad shape c=%d h=%d w=%d pool=%d stride=%d",
			c, h, w, pool, stride)
	}
	oh := (h-pool)/stride + 1
	ow := (w-pool)/stride + 1
	needIn := c * h * w * 4
	needOut := c * oh * ow * 4
	if len(in) < needIn || len(out) < needOut {
		return ocl.Errf(ocl.ErrInvalidBufferSize, "pool: buffers too small")
	}
	inF := Float32Slice(in[:needIn])
	outF := make([]float32, c*oh*ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := inF[(ch*h+oy*stride)*w+ox*stride]
				for ky := 0; ky < pool; ky++ {
					for kx := 0; kx < pool; kx++ {
						v := inF[(ch*h+oy*stride+ky)*w+ox*stride+kx]
						if v > best {
							best = v
						}
					}
				}
				outF[(ch*oh+oy)*ow+ox] = best
			}
		}
	}
	PutFloat32Slice(out, outF)
	return nil
}

// fcRun computes a fully-connected layer with optional ReLU.
func fcRun(mem fpga.MemAccess, args []ocl.Arg, _ []int) error {
	in, err := mem.Bytes(args[0].BufferID)
	if err != nil {
		return err
	}
	weights, err := mem.Bytes(args[1].BufferID)
	if err != nil {
		return err
	}
	bias, err := mem.Bytes(args[2].BufferID)
	if err != nil {
		return err
	}
	out, err := mem.Bytes(args[3].BufferID)
	if err != nil {
		return err
	}
	inN := int(args[4].IntValue())
	outN := int(args[5].IntValue())
	relu := args[6].IntValue() != 0
	if inN <= 0 || outN <= 0 {
		return ocl.Errf(ocl.ErrInvalidKernelArgs, "fc: bad shape in=%d out=%d", inN, outN)
	}
	if len(in) < inN*4 || len(weights) < inN*outN*4 || len(bias) < outN*4 || len(out) < outN*4 {
		return ocl.Errf(ocl.ErrInvalidBufferSize, "fc: buffers too small")
	}
	inF := Float32Slice(in[:inN*4])
	wF := Float32Slice(weights[:inN*outN*4])
	bF := Float32Slice(bias[:outN*4])
	outF := make([]float32, outN)
	for o := 0; o < outN; o++ {
		acc := bF[o]
		wrow := wF[o*inN : o*inN+inN]
		for i, v := range inF {
			acc += v * wrow[i]
		}
		if relu && acc < 0 {
			acc = 0
		}
		outF[o] = acc
	}
	PutFloat32Slice(out, outF)
	return nil
}

// PipeCNNBitstream builds the PipeCNN design with its five kernels.
func PipeCNNBitstream() *fpga.Bitstream {
	return &fpga.Bitstream{
		ID:          PipeCNNBitstreamID,
		Accelerator: "pipecnn",
		Vendor:      "Intel(R) Corporation",
		// PipeCNN stripes its feature maps across all four DDR banks; the
		// other designs use the platform's default single-bank layout, so
		// flashing to or from PipeCNN relocates resident device buffers.
		MemGeometry: "banked4",
		Kernels: []fpga.KernelSpec{
			{Name: "memRead", NumArgs: 1, Model: moverModel},
			{Name: "coreConv", NumArgs: convArgCount, Model: convModelArgs, Run: convRun},
			{Name: "maxPool", NumArgs: poolArgCount, Model: poolModelArgs, Run: poolRun},
			{Name: "fc", NumArgs: fcArgCount, Model: fcModelArgs, Run: fcRun},
			{Name: "memWrite", NumArgs: 1, Model: moverModel},
		},
	}
}
