package accel

import (
	"encoding/binary"
	"math"
	"time"

	"blastfunction/internal/fpga"
	"blastfunction/internal/ocl"
)

// MM latency model, calibrated to Figure 4c: native RTT = PCIe transfers +
// mmBase + n^3 * mmPerMACPs, hitting 0.45 ms at 16x16 and 3.571 s at
// 4096x4096 with the worker-node PCIe model. The per-MAC time corresponds
// to the fully unrolled 16x16 Spector block (256 MACs/cycle at ~150 MHz,
// about 38.4 GFLOP/s).
// mmBase covers kernel launch and drain of the unrolled block pipeline.
const mmBase = 419 * time.Microsecond

// mmPerMACNs is the steady-state time per multiply-accumulate in
// nanoseconds (51.5 ps).
const mmPerMACNs = 0.0515

// MMBitstreamID identifies the Spector MM design.
const MMBitstreamID = "spector-mm"

// MMModel returns the modelled kernel execution time for an n x n
// single-precision matrix multiplication.
func MMModel(n int64) time.Duration {
	macs := n * n * n
	// macs reaches 6.9e10 at n=4096; 6.9e10 * 51.5 ps = 3.54 s, far inside
	// float64 precision.
	ns := float64(macs) * mmPerMACNs
	return mmBase + time.Duration(ns)*time.Nanosecond
}

// mmModelArgs adapts MMModel to the kernel argument convention.
func mmModelArgs(args []ocl.Arg, _ []int) time.Duration {
	return MMModel(args[3].IntValue())
}

// mmRun computes C = A x B for n x n row-major float32 matrices.
// Arguments: A buffer, B buffer, C buffer, n.
func mmRun(mem fpga.MemAccess, args []ocl.Arg, _ []int) error {
	a, err := mem.Bytes(args[0].BufferID)
	if err != nil {
		return err
	}
	b, err := mem.Bytes(args[1].BufferID)
	if err != nil {
		return err
	}
	c, err := mem.Bytes(args[2].BufferID)
	if err != nil {
		return err
	}
	n := int(args[3].IntValue())
	if n <= 0 {
		return ocl.Errf(ocl.ErrInvalidKernelArgs, "mm: bad size %d", n)
	}
	need := n * n * 4
	if len(a) < need || len(b) < need || len(c) < need {
		return ocl.Errf(ocl.ErrInvalidBufferSize,
			"mm: n=%d needs %d bytes, a=%d b=%d c=%d", n, need, len(a), len(b), len(c))
	}
	af := Float32Slice(a[:need])
	bf := Float32Slice(b[:need])
	// Blocked i-k-j loop ordering: accumulate rows of C in a scratch row to
	// keep the inner loop sequential over B, mirroring the unrolled-block
	// dataflow of the hardware design (and staying cache-friendly).
	row := make([]float32, n)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := af[i*n+k]
			if aik == 0 {
				continue
			}
			brow := bf[k*n : k*n+n]
			for j, bv := range brow {
				row[j] += aik * bv
			}
		}
		for j, v := range row {
			binary.LittleEndian.PutUint32(c[(i*n+j)*4:], math.Float32bits(v))
		}
	}
	return nil
}

// MMBitstream builds the Spector MM bitstream: a single "mm" kernel taking
// (A, B, C, n).
func MMBitstream() *fpga.Bitstream {
	return &fpga.Bitstream{
		ID:          MMBitstreamID,
		Accelerator: "mm",
		Vendor:      "Intel(R) Corporation",
		Kernels: []fpga.KernelSpec{{
			Name:    "mm",
			NumArgs: 4,
			Model:   mmModelArgs,
			Run:     mmRun,
		}},
	}
}

// MMMatrixBytes returns the byte size of one n x n float32 matrix.
func MMMatrixBytes(n int) int64 { return int64(n) * int64(n) * 4 }

// Float32Slice decodes little-endian bytes into float32 values. The byte
// length must be a multiple of 4.
func Float32Slice(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// PutFloat32Slice encodes float32 values into little-endian bytes. dst must
// hold at least 4*len(src) bytes.
func PutFloat32Slice(dst []byte, src []float32) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(v))
	}
}
