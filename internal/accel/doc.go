// Package accel provides the accelerator bitstreams the paper evaluates.
//
// Three accelerated cloud functions drive the paper's experiments:
//
//   - Sobel edge detector from the Spector benchmark suite, synthesized
//     with 32x8 blocks, 4x1 window, no SIMD, one compute unit (the
//     best-latency design point);
//   - Matrix Multiply (MM) from Spector, one compute unit, 8 work-items,
//     fully unrolled 16x16 block (~38 GFLOP/s);
//   - PipeCNN running AlexNet: a pipelined CNN engine whose host code
//     launches several kernels per inference over multiple command queues.
//
// Each bitstream couples a real software implementation (so outputs can be
// verified bit-for-bit in tests and examples) with an analytic latency
// model calibrated to the paper's Figure 4 measurements (see package
// model for the calibration anchors). Timing and computation are
// independent: the computation validates correctness, the model drives the
// simulated clock.
package accel
