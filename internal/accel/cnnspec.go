package accel

import "time"

// LayerKind discriminates CNN layer types.
type LayerKind int

// CNN layer kinds.
const (
	LayerConv LayerKind = iota
	LayerPool
	LayerFC
)

// Layer describes one CNN layer's geometry. Conv layers use InC..Groups,
// pool layers use InC/InH/InW/Pool/PoolStride, FC layers use InN/OutN.
type Layer struct {
	Kind LayerKind
	Name string

	// Convolution parameters (CHW tensors).
	InC, InH, InW        int
	OutC, K, Stride, Pad int
	Groups               int
	Relu                 bool

	// Pooling parameters.
	Pool, PoolStride int

	// Fully-connected parameters.
	InN, OutN int
}

// OutDims returns the layer's output tensor dimensions.
func (l Layer) OutDims() (c, h, w int) {
	switch l.Kind {
	case LayerConv:
		return l.OutC, convOut(l.InH, l.K, l.Stride, l.Pad), convOut(l.InW, l.K, l.Stride, l.Pad)
	case LayerPool:
		return l.InC, (l.InH-l.Pool)/l.PoolStride + 1, (l.InW-l.Pool)/l.PoolStride + 1
	case LayerFC:
		return l.OutN, 1, 1
	}
	return 0, 0, 0
}

// MACs returns the layer's multiply-accumulate count (0 for pooling).
func (l Layer) MACs() int64 {
	switch l.Kind {
	case LayerConv:
		_, oh, ow := l.OutDims()
		return ConvMACs(l.InC, l.OutC, oh, ow, l.K, l.Groups)
	case LayerFC:
		return int64(l.InN) * int64(l.OutN)
	}
	return 0
}

// ModelTime returns the layer's modelled board occupancy.
func (l Layer) ModelTime() time.Duration {
	switch l.Kind {
	case LayerConv:
		return ConvModel(l.MACs())
	case LayerPool:
		c, h, w := l.OutDims()
		return PoolModel(int64(c) * int64(h) * int64(w))
	case LayerFC:
		return FCModel(l.MACs())
	}
	return 0
}

// WeightBytes returns the byte size of the layer's weight buffer.
func (l Layer) WeightBytes() int64 {
	switch l.Kind {
	case LayerConv:
		g := l.Groups
		if g < 1 {
			g = 1
		}
		return int64(l.OutC) * int64(l.InC/g) * int64(l.K) * int64(l.K) * 4
	case LayerFC:
		return int64(l.InN) * int64(l.OutN) * 4
	}
	return 0
}

// BiasBytes returns the byte size of the layer's bias buffer.
func (l Layer) BiasBytes() int64 {
	switch l.Kind {
	case LayerConv:
		return int64(l.OutC) * 4
	case LayerFC:
		return int64(l.OutN) * 4
	}
	return 0
}

// CNNSpec describes a network for the PipeCNN host runner.
type CNNSpec struct {
	Name   string
	Layers []Layer
}

// InputBytes returns the byte size of the network input tensor.
func (s *CNNSpec) InputBytes() int64 {
	l := s.Layers[0]
	if l.Kind == LayerFC {
		return int64(l.InN) * 4
	}
	return int64(l.InC) * int64(l.InH) * int64(l.InW) * 4
}

// OutputBytes returns the byte size of the network output tensor.
func (s *CNNSpec) OutputBytes() int64 {
	c, h, w := s.Layers[len(s.Layers)-1].OutDims()
	return int64(c) * int64(h) * int64(w) * 4
}

// BoardTime returns the modelled board occupancy of one full inference
// (kernel time only, excluding transfers and control overhead).
func (s *CNNSpec) BoardTime() time.Duration {
	var total time.Duration
	for _, l := range s.Layers {
		total += l.ModelTime()
		// Each layer is fed and drained by the memRead/memWrite movers.
		total += 2 * moverLaunchFee
	}
	return total
}

// KernelLaunches returns the number of kernel launches one inference
// performs (movers included), which determines the per-call overhead the
// remote path pays.
func (s *CNNSpec) KernelLaunches() int {
	return 3 * len(s.Layers)
}

// TaskFlushes returns the number of command-queue flushes the PipeCNN host
// code performs per inference: conv layers split work across two queues
// (movers+conv, then writer), pool and FC layers flush once.
func (s *CNNSpec) TaskFlushes() int {
	n := 0
	for _, l := range s.Layers {
		if l.Kind == LayerConv {
			n += 2
		} else {
			n++
		}
	}
	return n
}

// AlexNet returns the paper's AlexNet configuration as synthesized for
// PipeCNN: five convolution stages (conv2, conv4, conv5 grouped as in the
// original network), three max-pool stages and three fully-connected
// layers. Board occupancy models to ~90 ms per inference.
func AlexNet() *CNNSpec {
	return &CNNSpec{
		Name: "alexnet",
		Layers: []Layer{
			{Kind: LayerConv, Name: "conv1", InC: 3, InH: 227, InW: 227, OutC: 96, K: 11, Stride: 4, Pad: 0, Groups: 1, Relu: true},
			{Kind: LayerPool, Name: "pool1", InC: 96, InH: 55, InW: 55, Pool: 3, PoolStride: 2},
			{Kind: LayerConv, Name: "conv2", InC: 96, InH: 27, InW: 27, OutC: 256, K: 5, Stride: 1, Pad: 2, Groups: 2, Relu: true},
			{Kind: LayerPool, Name: "pool2", InC: 256, InH: 27, InW: 27, Pool: 3, PoolStride: 2},
			{Kind: LayerConv, Name: "conv3", InC: 256, InH: 13, InW: 13, OutC: 384, K: 3, Stride: 1, Pad: 1, Groups: 1, Relu: true},
			{Kind: LayerConv, Name: "conv4", InC: 384, InH: 13, InW: 13, OutC: 384, K: 3, Stride: 1, Pad: 1, Groups: 2, Relu: true},
			{Kind: LayerConv, Name: "conv5", InC: 384, InH: 13, InW: 13, OutC: 256, K: 3, Stride: 1, Pad: 1, Groups: 2, Relu: true},
			{Kind: LayerPool, Name: "pool5", InC: 256, InH: 13, InW: 13, Pool: 3, PoolStride: 2},
			{Kind: LayerFC, Name: "fc6", InN: 256 * 6 * 6, OutN: 4096, Relu: true},
			{Kind: LayerFC, Name: "fc7", InN: 4096, OutN: 4096, Relu: true},
			{Kind: LayerFC, Name: "fc8", InN: 4096, OutN: 1000},
		},
	}
}

// TinyCNN returns a reduced network with the same layer mix as AlexNet,
// small enough that its real software computation runs in microseconds.
// Tests and the live inference example use it.
func TinyCNN() *CNNSpec {
	return &CNNSpec{
		Name: "tinycnn",
		Layers: []Layer{
			{Kind: LayerConv, Name: "conv1", InC: 3, InH: 16, InW: 16, OutC: 8, K: 3, Stride: 1, Pad: 1, Groups: 1, Relu: true},
			{Kind: LayerPool, Name: "pool1", InC: 8, InH: 16, InW: 16, Pool: 2, PoolStride: 2},
			{Kind: LayerConv, Name: "conv2", InC: 8, InH: 8, InW: 8, OutC: 16, K: 3, Stride: 1, Pad: 1, Groups: 2, Relu: true},
			{Kind: LayerPool, Name: "pool2", InC: 16, InH: 8, InW: 8, Pool: 2, PoolStride: 2},
			{Kind: LayerFC, Name: "fc3", InN: 16 * 4 * 4, OutN: 10},
		},
	}
}
