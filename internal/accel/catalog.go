package accel

import (
	"time"

	"blastfunction/internal/fpga"
	"blastfunction/internal/ocl"
)

// LoopbackBitstreamID identifies the diagnostic pass-through design used by
// the R/W overhead experiment (Figure 4a) and transport tests.
const LoopbackBitstreamID = "diag-loopback"

// loopbackRun copies the input buffer into the output buffer.
// Arguments: in, out, n (bytes).
func loopbackRun(mem fpga.MemAccess, args []ocl.Arg, _ []int) error {
	in, err := mem.Bytes(args[0].BufferID)
	if err != nil {
		return err
	}
	out, err := mem.Bytes(args[1].BufferID)
	if err != nil {
		return err
	}
	n := int(args[2].IntValue())
	if n < 0 || n > len(in) || n > len(out) {
		return ocl.Errf(ocl.ErrInvalidBufferSize, "loopback: n=%d in=%d out=%d", n, len(in), len(out))
	}
	copy(out[:n], in[:n])
	return nil
}

// LoopbackBitstream builds the diagnostic design: a "copy" kernel moving n
// bytes at on-chip bandwidth (modelled as negligible next to PCIe).
func LoopbackBitstream() *fpga.Bitstream {
	return &fpga.Bitstream{
		ID:          LoopbackBitstreamID,
		Accelerator: "loopback",
		Vendor:      "Intel(R) Corporation",
		Kernels: []fpga.KernelSpec{{
			Name:    "copy",
			NumArgs: 3,
			Model: func(args []ocl.Arg, _ []int) time.Duration {
				// On-chip copy at ~25 GB/s through DDR, dwarfed by PCIe.
				n := args[2].IntValue()
				return time.Duration(float64(n) * 0.04)
			},
			Run: loopbackRun,
		}},
	}
}

// Catalog returns the bitstream catalog of the reproduction: every design
// the paper evaluates plus the diagnostic loopback.
func Catalog() *fpga.Catalog {
	return fpga.NewCatalog(
		SobelBitstream(),
		MMBitstream(),
		PipeCNNBitstream(),
		LoopbackBitstream(),
	)
}
