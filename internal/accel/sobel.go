package accel

import (
	"encoding/binary"
	"math"
	"time"

	"blastfunction/internal/fpga"
	"blastfunction/internal/ocl"
)

// Sobel latency model, calibrated to Figure 4b:
// native RTT = PCIe transfers + sobelFill + pixels*sobelPerPixel, hitting
// 0.27 ms at 10x10 and 14.53 ms at 1920x1080 with the worker-node PCIe
// model.
const (
	// sobelFill covers kernel launch plus pipeline fill of the 32x8-block,
	// 4x1-window single-CU Spector design.
	sobelFill = 250 * time.Microsecond
	// sobelPerPixelPs is the steady-state per-pixel time in picoseconds
	// (about 160 Mpixel/s at the design's clock).
	sobelPerPixelPs = 6256
)

// SobelBitstreamID identifies the Spector Sobel design.
const SobelBitstreamID = "spector-sobel"

// SobelBytesPerPixel is the wire size of one pixel in each direction:
// 16-bit grayscale in, 16-bit gradient magnitude out.
const SobelBytesPerPixel = 2

// SobelModel returns the modelled kernel execution time for an image of
// width*height pixels. Exported for the analytic experiment harness.
func SobelModel(pixels int64) time.Duration {
	return sobelFill + time.Duration(pixels*sobelPerPixelPs/1000)*time.Nanosecond
}

// sobelModelArgs adapts SobelModel to the kernel argument convention.
func sobelModelArgs(args []ocl.Arg, _ []int) time.Duration {
	w := args[2].IntValue()
	h := args[3].IntValue()
	return SobelModel(w * h)
}

// sobelRun computes the 3x3 Sobel gradient magnitude over a 16-bit
// grayscale image. Arguments: in buffer, out buffer, width, height.
// Border pixels (where the window falls outside the image) produce 0,
// matching the Spector kernel's behaviour.
func sobelRun(mem fpga.MemAccess, args []ocl.Arg, _ []int) error {
	in, err := mem.Bytes(args[0].BufferID)
	if err != nil {
		return err
	}
	out, err := mem.Bytes(args[1].BufferID)
	if err != nil {
		return err
	}
	w := int(args[2].IntValue())
	h := int(args[3].IntValue())
	if w <= 0 || h <= 0 {
		return ocl.Errf(ocl.ErrInvalidKernelArgs, "sobel: bad dimensions %dx%d", w, h)
	}
	need := w * h * SobelBytesPerPixel
	if len(in) < need || len(out) < need {
		return ocl.Errf(ocl.ErrInvalidBufferSize,
			"sobel: image %dx%d needs %d bytes, in=%d out=%d", w, h, need, len(in), len(out))
	}
	px := func(x, y int) int32 {
		return int32(binary.LittleEndian.Uint16(in[(y*w+x)*2:]))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var v uint16
			if x > 0 && y > 0 && x < w-1 && y < h-1 {
				gx := -px(x-1, y-1) + px(x+1, y-1) +
					-2*px(x-1, y) + 2*px(x+1, y) +
					-px(x-1, y+1) + px(x+1, y+1)
				gy := -px(x-1, y-1) - 2*px(x, y-1) - px(x+1, y-1) +
					px(x-1, y+1) + 2*px(x, y+1) + px(x+1, y+1)
				mag := math.Sqrt(float64(gx)*float64(gx) + float64(gy)*float64(gy))
				if mag > math.MaxUint16 {
					mag = math.MaxUint16
				}
				v = uint16(mag)
			}
			binary.LittleEndian.PutUint16(out[(y*w+x)*2:], v)
		}
	}
	return nil
}

// SobelBitstream builds the Spector Sobel bitstream: a single "sobel"
// kernel taking (in, out, width, height).
func SobelBitstream() *fpga.Bitstream {
	return &fpga.Bitstream{
		ID:          SobelBitstreamID,
		Accelerator: "sobel",
		Vendor:      "Intel(R) Corporation",
		Kernels: []fpga.KernelSpec{{
			Name:    "sobel",
			NumArgs: 4,
			Model:   sobelModelArgs,
			Run:     sobelRun,
		}},
	}
}

// SobelImageBytes returns the transfer size of a w x h image in one
// direction.
func SobelImageBytes(w, h int) int64 { return int64(w) * int64(h) * SobelBytesPerPixel }
