package ocl

import "fmt"

// Status is an OpenCL status code. The numeric values match the OpenCL 1.2
// specification so that logs and traces can be compared against host code
// written for the real Intel FPGA runtime.
type Status int32

// OpenCL status codes used by BlastFunction.
const (
	Success                    Status = 0
	ErrDeviceNotFound          Status = -1
	ErrDeviceNotAvailable      Status = -2
	ErrCompilerNotAvailable    Status = -3
	ErrMemObjectAllocFailure   Status = -4
	ErrOutOfResources          Status = -5
	ErrOutOfHostMemory         Status = -6
	ErrMemCopyOverlap          Status = -8
	ErrBuildProgramFailure     Status = -11
	ErrMisalignedSubBuffer     Status = -13
	ErrExecStatusErrorInWait   Status = -14
	ErrInvalidValue            Status = -30
	ErrInvalidDeviceType       Status = -31
	ErrInvalidPlatform         Status = -32
	ErrInvalidDevice           Status = -33
	ErrInvalidContext          Status = -34
	ErrInvalidQueueProperties  Status = -35
	ErrInvalidCommandQueue     Status = -36
	ErrInvalidMemObject        Status = -38
	ErrInvalidBinary           Status = -42
	ErrInvalidBuildOptions     Status = -43
	ErrInvalidProgram          Status = -44
	ErrInvalidProgramExec      Status = -45
	ErrInvalidKernelName       Status = -46
	ErrInvalidKernelDefinition Status = -47
	ErrInvalidKernel           Status = -48
	ErrInvalidArgIndex         Status = -49
	ErrInvalidArgValue         Status = -50
	ErrInvalidArgSize          Status = -51
	ErrInvalidKernelArgs       Status = -52
	ErrInvalidWorkDimension    Status = -53
	ErrInvalidWorkGroupSize    Status = -54
	ErrInvalidWorkItemSize     Status = -55
	ErrInvalidGlobalOffset     Status = -56
	ErrInvalidEventWaitList    Status = -57
	ErrInvalidEvent            Status = -58
	ErrInvalidOperation        Status = -59
	ErrInvalidBufferSize       Status = -61
	ErrInvalidGlobalWorkSize   Status = -63
)

var statusNames = map[Status]string{
	Success:                    "CL_SUCCESS",
	ErrDeviceNotFound:          "CL_DEVICE_NOT_FOUND",
	ErrDeviceNotAvailable:      "CL_DEVICE_NOT_AVAILABLE",
	ErrCompilerNotAvailable:    "CL_COMPILER_NOT_AVAILABLE",
	ErrMemObjectAllocFailure:   "CL_MEM_OBJECT_ALLOCATION_FAILURE",
	ErrOutOfResources:          "CL_OUT_OF_RESOURCES",
	ErrOutOfHostMemory:         "CL_OUT_OF_HOST_MEMORY",
	ErrMemCopyOverlap:          "CL_MEM_COPY_OVERLAP",
	ErrBuildProgramFailure:     "CL_BUILD_PROGRAM_FAILURE",
	ErrMisalignedSubBuffer:     "CL_MISALIGNED_SUB_BUFFER_OFFSET",
	ErrExecStatusErrorInWait:   "CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST",
	ErrInvalidValue:            "CL_INVALID_VALUE",
	ErrInvalidDeviceType:       "CL_INVALID_DEVICE_TYPE",
	ErrInvalidPlatform:         "CL_INVALID_PLATFORM",
	ErrInvalidDevice:           "CL_INVALID_DEVICE",
	ErrInvalidContext:          "CL_INVALID_CONTEXT",
	ErrInvalidQueueProperties:  "CL_INVALID_QUEUE_PROPERTIES",
	ErrInvalidCommandQueue:     "CL_INVALID_COMMAND_QUEUE",
	ErrInvalidMemObject:        "CL_INVALID_MEM_OBJECT",
	ErrInvalidBinary:           "CL_INVALID_BINARY",
	ErrInvalidBuildOptions:     "CL_INVALID_BUILD_OPTIONS",
	ErrInvalidProgram:          "CL_INVALID_PROGRAM",
	ErrInvalidProgramExec:      "CL_INVALID_PROGRAM_EXECUTABLE",
	ErrInvalidKernelName:       "CL_INVALID_KERNEL_NAME",
	ErrInvalidKernelDefinition: "CL_INVALID_KERNEL_DEFINITION",
	ErrInvalidKernel:           "CL_INVALID_KERNEL",
	ErrInvalidArgIndex:         "CL_INVALID_ARG_INDEX",
	ErrInvalidArgValue:         "CL_INVALID_ARG_VALUE",
	ErrInvalidArgSize:          "CL_INVALID_ARG_SIZE",
	ErrInvalidKernelArgs:       "CL_INVALID_KERNEL_ARGS",
	ErrInvalidWorkDimension:    "CL_INVALID_WORK_DIMENSION",
	ErrInvalidWorkGroupSize:    "CL_INVALID_WORK_GROUP_SIZE",
	ErrInvalidWorkItemSize:     "CL_INVALID_WORK_ITEM_SIZE",
	ErrInvalidGlobalOffset:     "CL_INVALID_GLOBAL_OFFSET",
	ErrInvalidEventWaitList:    "CL_INVALID_EVENT_WAIT_LIST",
	ErrInvalidEvent:            "CL_INVALID_EVENT",
	ErrInvalidOperation:        "CL_INVALID_OPERATION",
	ErrInvalidBufferSize:       "CL_INVALID_BUFFER_SIZE",
	ErrInvalidGlobalWorkSize:   "CL_INVALID_GLOBAL_WORK_SIZE",
}

// String returns the OpenCL specification name of the status code.
func (s Status) String() string {
	if name, ok := statusNames[s]; ok {
		return name
	}
	return fmt.Sprintf("CL_UNKNOWN_STATUS(%d)", int32(s))
}

// Error makes non-success statuses usable as error values. Calling Error on
// Success is a programming bug; it returns a recognizable string rather than
// panicking so that logs stay readable.
func (s Status) Error() string { return s.String() }

// Errf wraps a status code with a formatted context message. The returned
// error matches the status under errors.Is.
func Errf(s Status, format string, args ...any) error {
	return &StatusError{Status: s, Context: fmt.Sprintf(format, args...)}
}

// ErrfCause is Errf with an underlying cause attached: the returned error
// matches both the status and the cause under errors.Is. The transport
// layer uses it so callers can test for sentinels like rpc.ErrManagerDown
// while the error still carries an OpenCL status.
func ErrfCause(s Status, cause error, format string, args ...any) error {
	return &StatusError{Status: s, Context: fmt.Sprintf(format, args...), Cause: cause}
}

// StatusError is a Status with human-readable context attached.
type StatusError struct {
	Status  Status
	Context string
	// Cause, when non-nil, is an underlying error (typically a transport
	// sentinel) also exposed through Unwrap.
	Cause error
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	if e.Context == "" {
		return e.Status.String()
	}
	return e.Status.String() + ": " + e.Context
}

// Unwrap exposes the underlying Status (and the Cause, when present) so
// errors.Is works against both on wrapped errors.
func (e *StatusError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Status, e.Cause}
	}
	return []error{e.Status}
}

// StatusOf extracts the Status from an error produced by this package. It
// returns Success for nil and ErrInvalidValue for foreign errors.
func StatusOf(err error) Status {
	if err == nil {
		return Success
	}
	if s, ok := err.(Status); ok {
		return s
	}
	var se *StatusError
	for e := err; e != nil; {
		if s, ok := e.(Status); ok {
			return s
		}
		if es, ok := e.(*StatusError); ok {
			se = es
			break
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	if se != nil {
		return se.Status
	}
	return ErrInvalidValue
}
