package ocl

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPackArgScalars(t *testing.T) {
	cases := []struct {
		in   any
		kind ArgKind
		len  uint8
	}{
		{int32(-7), ArgInt32, 4},
		{uint32(42), ArgUint32, 4},
		{int(123456789), ArgInt64, 8},
		{int64(-1 << 40), ArgInt64, 8},
		{uint64(1 << 63), ArgUint64, 8},
		{float32(3.25), ArgFloat32, 4},
		{float64(-2.5), ArgFloat64, 8},
	}
	for _, c := range cases {
		a, err := PackArg(c.in)
		if err != nil {
			t.Fatalf("PackArg(%T): %v", c.in, err)
		}
		if a.Kind != c.kind || a.ScalarLen != c.len {
			t.Errorf("PackArg(%T) kind=%v len=%d, want %v/%d", c.in, a.Kind, a.ScalarLen, c.kind, c.len)
		}
	}
}

func TestPackArgRejectsUnsupported(t *testing.T) {
	for _, v := range []any{"str", []byte{1}, 3.0 + 1i, struct{}{}, nil, true} {
		if _, err := PackArg(v); !errors.Is(err, ErrInvalidArgValue) {
			t.Errorf("PackArg(%T) err = %v, want CL_INVALID_ARG_VALUE", v, err)
		}
	}
}

func TestBufferArg(t *testing.T) {
	a := BufferArg(99)
	if a.Kind != ArgBuffer || a.BufferID != 99 {
		t.Fatalf("BufferArg = %+v", a)
	}
}

func TestArgRoundTripProperties(t *testing.T) {
	if err := quick.Check(func(v int32) bool {
		a, _ := PackArg(v)
		return a.Int32() == v && a.IntValue() == int64(v)
	}, nil); err != nil {
		t.Error("int32 round-trip:", err)
	}
	if err := quick.Check(func(v uint32) bool {
		a, _ := PackArg(v)
		return a.Uint32() == v && a.IntValue() == int64(v)
	}, nil); err != nil {
		t.Error("uint32 round-trip:", err)
	}
	if err := quick.Check(func(v int64) bool {
		a, _ := PackArg(v)
		return a.Int64() == v && a.IntValue() == v
	}, nil); err != nil {
		t.Error("int64 round-trip:", err)
	}
	if err := quick.Check(func(v uint64) bool {
		a, _ := PackArg(v)
		return a.Uint64() == v
	}, nil); err != nil {
		t.Error("uint64 round-trip:", err)
	}
	if err := quick.Check(func(v float32) bool {
		a, _ := PackArg(v)
		got := a.Float32()
		return got == v || (math.IsNaN(float64(v)) && math.IsNaN(float64(got)))
	}, nil); err != nil {
		t.Error("float32 round-trip:", err)
	}
	if err := quick.Check(func(v float64) bool {
		a, _ := PackArg(v)
		got := a.Float64()
		return got == v || (math.IsNaN(v) && math.IsNaN(got))
	}, nil); err != nil {
		t.Error("float64 round-trip:", err)
	}
}

func TestArgKindString(t *testing.T) {
	names := map[ArgKind]string{
		ArgBuffer:  "buffer",
		ArgInt32:   "int32",
		ArgUint32:  "uint32",
		ArgInt64:   "int64",
		ArgUint64:  "uint64",
		ArgFloat32: "float32",
		ArgFloat64: "float64",
		ArgKind(0): "invalid",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("ArgKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
