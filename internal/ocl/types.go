package ocl

// DeviceType selects device classes during discovery, as in clGetDeviceIDs.
type DeviceType uint32

// Device type bit flags.
const (
	DeviceTypeDefault     DeviceType = 1 << 0
	DeviceTypeCPU         DeviceType = 1 << 1
	DeviceTypeGPU         DeviceType = 1 << 2
	DeviceTypeAccelerator DeviceType = 1 << 3 // FPGAs enumerate as accelerators
	DeviceTypeAll         DeviceType = 0xFFFFFFFF
)

// String returns a short human-readable name for the device type.
func (t DeviceType) String() string {
	switch t {
	case DeviceTypeDefault:
		return "default"
	case DeviceTypeCPU:
		return "cpu"
	case DeviceTypeGPU:
		return "gpu"
	case DeviceTypeAccelerator:
		return "accelerator"
	case DeviceTypeAll:
		return "all"
	}
	return "mixed"
}

// MemFlags configure buffer allocation, as in clCreateBuffer.
type MemFlags uint32

// Buffer allocation flags.
const (
	MemReadWrite MemFlags = 1 << 0
	MemWriteOnly MemFlags = 1 << 1
	MemReadOnly  MemFlags = 1 << 2
)

// Valid reports whether exactly one access mode is set.
func (f MemFlags) Valid() bool {
	mode := f & (MemReadWrite | MemWriteOnly | MemReadOnly)
	return mode == MemReadWrite || mode == MemWriteOnly || mode == MemReadOnly
}

// QueueProps configure command-queue behaviour, as in clCreateCommandQueue.
type QueueProps uint32

// Command queue property flags.
const (
	// QueueOutOfOrder allows the runtime to reorder commands within the
	// queue. BlastFunction preserves in-order semantics inside a task even
	// when this is set, matching the Intel FPGA runtime behaviour for
	// single-device queues.
	QueueOutOfOrder QueueProps = 1 << 0
	// QueueProfiling enables timestamp collection on events.
	QueueProfiling QueueProps = 1 << 1
)

// CommandType identifies the operation an event tracks, as in
// clGetEventInfo(CL_EVENT_COMMAND_TYPE).
type CommandType int32

// Command types. Values follow the OpenCL specification constants.
const (
	CommandNDRangeKernel CommandType = 0x11F0
	CommandTask          CommandType = 0x11F1
	CommandReadBuffer    CommandType = 0x11F3
	CommandWriteBuffer   CommandType = 0x11F4
	CommandCopyBuffer    CommandType = 0x11F5
	CommandMarker        CommandType = 0x11F8
	CommandBarrier       CommandType = 0x1205
	CommandUser          CommandType = 0x11FB
)

// String returns the OpenCL-style name of the command type.
func (c CommandType) String() string {
	switch c {
	case CommandNDRangeKernel:
		return "NDRANGE_KERNEL"
	case CommandTask:
		return "TASK"
	case CommandReadBuffer:
		return "READ_BUFFER"
	case CommandWriteBuffer:
		return "WRITE_BUFFER"
	case CommandCopyBuffer:
		return "COPY_BUFFER"
	case CommandMarker:
		return "MARKER"
	case CommandBarrier:
		return "BARRIER"
	case CommandUser:
		return "USER"
	}
	return "UNKNOWN_COMMAND"
}

// ExecStatus is the execution status of an event, as returned by
// clGetEventInfo(CL_EVENT_COMMAND_EXECUTION_STATUS). Lower values are more
// complete; negative values signal an error, matching the specification.
type ExecStatus int32

// Event execution states. A normally progressing command moves
// Queued -> Submitted -> Running -> Complete.
const (
	Complete  ExecStatus = 0
	Running   ExecStatus = 1
	Submitted ExecStatus = 2
	Queued    ExecStatus = 3
)

// String returns the OpenCL-style name of the execution status.
func (s ExecStatus) String() string {
	switch {
	case s < 0:
		return "ERROR(" + Status(s).String() + ")"
	case s == Complete:
		return "CL_COMPLETE"
	case s == Running:
		return "CL_RUNNING"
	case s == Submitted:
		return "CL_SUBMITTED"
	case s == Queued:
		return "CL_QUEUED"
	}
	return "CL_UNKNOWN"
}

// Done reports whether the status is terminal (complete or failed).
func (s ExecStatus) Done() bool { return s <= Complete }

// Failed reports whether the status carries an error code.
func (s ExecStatus) Failed() bool { return s < 0 }
