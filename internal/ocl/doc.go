// Package ocl defines the OpenCL host-API subset used by BlastFunction.
//
// The package mirrors the parts of the OpenCL 1.2 host specification that
// FPGA-accelerated cloud functions use: platform and device discovery,
// contexts, command queues, memory buffers, programs (bitstreams), kernels
// and events. It is deliberately backend-agnostic: the same application code
// runs unchanged against the direct runtime (package native, the paper's
// "Native" baseline, which owns the board exclusively) and against the
// Remote OpenCL Library (package remote, the BlastFunction client, which
// time-shares boards through a Device Manager).
//
// The API is Go-idiomatic rather than a literal C binding: objects are
// interfaces with methods instead of opaque handles passed to free
// functions, errors are returned as error values wrapping Status codes, and
// events satisfy a small Event interface that supports the polling and
// waiting semantics of clWaitForEvents / clGetEventInfo.
package ocl
